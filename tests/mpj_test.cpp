// The mpiJava 1.2 / MPJ compatibility adapter: legacy-style code (offsets
// everywhere, Capitalised methods) running on the MVAPICH2-J bindings.
#include <gtest/gtest.h>

#include "jhpc/mpj/mpj.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mpj {
namespace {

mv2j::RunOptions fast_opts(int ranks) {
  mv2j::RunOptions o;
  o.ranks = ranks;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;
  return o;
}

TEST(MpjTest, LegacySendRecvWithOffsets) {
  mv2j::run(fast_opts(2), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    if (world.Rank() == 0) {
      auto arr = env.newArray<minijvm::jint>(12);
      for (std::size_t i = 0; i < 12; ++i) arr[i] = static_cast<int>(i);
      world.Send(arr, 4, 6, INT, 1, 9);
    } else {
      auto arr = env.newArray<minijvm::jint>(12);
      Status st = world.Recv(arr, 2, 6, INT, 0, 9);
      EXPECT_EQ(st.Get_count(INT), 6);
      EXPECT_EQ(st.Source(), 0);
      EXPECT_EQ(st.Tag(), 9);
      EXPECT_EQ(arr[2], 4);
      EXPECT_EQ(arr[7], 9);
      EXPECT_EQ(arr[0], 0);
      EXPECT_EQ(arr[8], 0);
    }
  });
}

TEST(MpjTest, LegacyNonBlocking) {
  mv2j::run(fast_opts(2), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    if (world.Rank() == 0) {
      auto arr = env.newArray<minijvm::jdouble>(8);
      for (std::size_t i = 0; i < 8; ++i) arr[i] = 0.5 * static_cast<double>(i);
      Request r = world.Isend(arr, 0, 8, DOUBLE, 1, 0);
      r.Wait();
    } else {
      auto arr = env.newArray<minijvm::jdouble>(8);
      Request r = world.Irecv(arr, 0, 8, DOUBLE, 0, 0);
      Status st = r.Wait();
      EXPECT_EQ(st.Get_count(DOUBLE), 8);
      EXPECT_DOUBLE_EQ(arr[7], 3.5);
    }
  });
}

TEST(MpjTest, LegacyBcastWithOffset) {
  mv2j::run(fast_opts(4), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    auto arr = env.newArray<minijvm::jint>(10);
    if (world.Rank() == 2)
      for (int i = 0; i < 5; ++i)
        arr[static_cast<std::size_t>(3 + i)] = 100 + i;
    world.Bcast(arr, 3, 5, INT, 2);
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(arr[static_cast<std::size_t>(3 + i)], 100 + i);
    EXPECT_EQ(arr[0], 0);
    EXPECT_EQ(arr[9], 0);
  });
}

TEST(MpjTest, LegacyAllreduceWithOffsets) {
  mv2j::run(fast_opts(3), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    auto send = env.newArray<minijvm::jlong>(6);
    auto recv = env.newArray<minijvm::jlong>(6);
    send[2] = world.Rank() + 1;
    send[3] = 10;
    world.Allreduce(send, 2, recv, 4, 2, LONG, SUM);
    EXPECT_EQ(recv[4], 1 + 2 + 3);
    EXPECT_EQ(recv[5], 30);
    EXPECT_EQ(recv[0], 0);
  });
}

TEST(MpjTest, LegacyReduceAndGather) {
  mv2j::run(fast_opts(3), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    const int n = world.Size();

    auto send = env.newArray<minijvm::jint>(3);
    auto recv = env.newArray<minijvm::jint>(3);
    send[1] = (world.Rank() + 1) * 2;
    world.Reduce(send, 1, recv, 2, 1, INT, MAX, 0);
    if (world.Rank() == 0) {
      EXPECT_EQ(recv[2], n * 2);
    }

    auto mine = env.newArray<minijvm::jint>(4);
    mine[1] = world.Rank() + 7;
    auto all = env.newArray<minijvm::jint>(static_cast<std::size_t>(n + 2));
    world.Gather(mine, 1, 1, all, 2, INT, 0);
    if (world.Rank() == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 + r)], r + 7);
      }
    }
  });
}

TEST(MpjTest, LegacyAlltoall) {
  mv2j::run(fast_opts(4), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    const int n = world.Size();
    auto send = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    auto recv = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      send[static_cast<std::size_t>(r)] = world.Rank() * 10 + r;
    world.Alltoall(send, 0, 1, recv, 0, INT);
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(recv[static_cast<std::size_t>(r)], r * 10 + world.Rank());
  });
}

TEST(MpjTest, OffsetBoundsRejected) {
  mv2j::run(fast_opts(2), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    auto arr = env.newArray<minijvm::jint>(4);
    EXPECT_THROW(world.Send(arr, 3, 4, INT, 1 - world.Rank(), 0),
                 InvalidArgumentError);
    EXPECT_THROW(world.Bcast(arr, -1, 2, INT, 0), InvalidArgumentError);
    world.Barrier();
  });
}

TEST(MpjTest, ProbeWorksThroughAdapter) {
  mv2j::run(fast_opts(2), [](mv2j::Env& env) {
    Comm world = COMM_WORLD(env);
    if (world.Rank() == 0) {
      auto arr = env.newArray<minijvm::jshort>(5);
      world.Send(arr, 0, 5, SHORT, 1, 3);
    } else {
      Status st = world.Probe(0, 3);
      EXPECT_EQ(st.Get_count(SHORT), 5);
      auto arr = env.newArray<minijvm::jshort>(5);
      world.Recv(arr, 0, st.Get_count(SHORT), SHORT, 0, 3);
    }
  });
}

}  // namespace
}  // namespace jhpc::mpj
