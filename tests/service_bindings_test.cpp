// The bindings' service facades: mv2j::Service and ompij::Service
// submit Env-wrapped jobs to a resident jhpcd fleet. Exercises the
// submit/await path each binding exposes, mixed-class scheduling and
// quota surfacing through the facade (label: service).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "jhpc/jhpcd/jhpcd.hpp"
#include "jhpc/mv2j/service.hpp"
#include "jhpc/ompij/service.hpp"
#include "jhpc/support/clock.hpp"

namespace jhpc {
namespace {

mv2j::RunOptions fast_mv2j(int ranks) {
  mv2j::RunOptions o;
  o.ranks = ranks;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;
  return o;
}

ompij::RunOptions fast_ompij(int ranks) {
  ompij::RunOptions o;
  o.ranks = ranks;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;
  return o;
}

TEST(Mv2jServiceTest, SubmitAwaitPingpong) {
  mv2j::Service svc;
  std::atomic<int> exchanged{0};
  jhpcd::JobHandle h = svc.submit(
      "pp", fast_mv2j(2), [&exchanged](mv2j::Env& env) {
        mv2j::Comm& world = env.COMM_WORLD();
        auto buf = env.newDirectBuffer(64);
        if (world.getRank() == 0) {
          world.send(buf, 64, mv2j::BYTE, 1, 5);
          world.recv(buf, 64, mv2j::BYTE, 1, 5);
        } else {
          world.recv(buf, 64, mv2j::BYTE, 0, 5);
          world.send(buf, 64, mv2j::BYTE, 0, 5);
        }
        exchanged.fetch_add(1, std::memory_order_relaxed);
      });
  const jhpcd::JobResult r = h.await();
  EXPECT_EQ(r.state, jhpcd::JobState::kCompleted) << r.error_what;
  EXPECT_EQ(exchanged.load(), 2);
  EXPECT_EQ(svc.stats().completed, 1u);
}

TEST(Mv2jServiceTest, QuotaSurfacesThroughFacade) {
  mv2j::Service svc;
  mv2j::ServiceJobOptions job;
  job.name = "hog";
  job.run = fast_mv2j(2);
  job.quota.max_wall_ns = 10'000'000;  // 10 ms
  jhpcd::JobHandle h = svc.submit(job, [](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(8);
    const std::int64_t start = now_ns();
    while (now_ns() - start < 2'000'000'000) {
      if (world.getRank() == 0) {
        world.send(buf, 8, mv2j::BYTE, 1, 5);
        world.recv(buf, 8, mv2j::BYTE, 1, 5);
      } else {
        world.recv(buf, 8, mv2j::BYTE, 0, 5);
        world.send(buf, 8, mv2j::BYTE, 0, 5);
      }
    }
  });
  const jhpcd::JobResult r = h.await();
  EXPECT_EQ(r.state, jhpcd::JobState::kFailed);
  EXPECT_EQ(r.code, ErrorCode::kQuotaExceeded);
}

TEST(Mv2jServiceTest, MixedClassStream) {
  jhpcd::ServiceConfig cfg;
  cfg.workers = 2;
  mv2j::Service svc(cfg);
  std::vector<jhpcd::JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    mv2j::ServiceJobOptions job;
    job.name = "mix" + std::to_string(i);
    job.run = fast_mv2j(2);
    job.job_class = (i % 2 == 0) ? jhpcd::JobClass::kLatency
                                 : jhpcd::JobClass::kBandwidth;
    handles.push_back(svc.submit(
        job, [](mv2j::Env& env) { env.COMM_WORLD().barrier(); }));
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.await().state, jhpcd::JobState::kCompleted);
  }
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 6u);
}

TEST(OmpijServiceTest, SubmitAwaitBarrier) {
  ompij::Service svc;
  jhpcd::JobHandle h = svc.submit("bar", fast_ompij(3), [](ompij::Env& env) {
    env.COMM_WORLD().barrier();
  });
  const jhpcd::JobResult r = h.await();
  EXPECT_EQ(r.state, jhpcd::JobState::kCompleted) << r.error_what;
  EXPECT_EQ(svc.stats().admitted, 1u);
}

TEST(OmpijServiceTest, RanksQuotaRejectsAtSubmit) {
  ompij::Service svc;
  ompij::ServiceJobOptions job;
  job.name = "fat";
  job.run = fast_ompij(8);
  job.quota.max_ranks = 4;
  EXPECT_THROW(
      svc.submit(job, [](ompij::Env& env) { env.COMM_WORLD().barrier(); }),
      jhpcd::QuotaExceededError);
}

}  // namespace
}  // namespace jhpc
