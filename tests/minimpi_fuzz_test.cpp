// Randomized schedule fuzzing: long seeded sequences of mixed collectives
// and point-to-point traffic, on random communicator splits, verified
// against locally computed expectations — run on all three blocking
// algorithm suites (mv2, basic, hier).
//
// Reproducibility: every assertion carries the case's replay recipe
// (suite + seed), and `JHPC_FUZZ_SEED` replays one seed across all
// suites (the FuzzReplay ctest shard pins one in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"

namespace jhpc::minimpi {
namespace {

const char* suite_name(CollectiveSuite suite) {
  switch (suite) {
    case CollectiveSuite::kMv2:
      return "mv2";
    case CollectiveSuite::kOmpiBasic:
      return "basic";
    case CollectiveSuite::kHier:
      return "hier";
  }
  return "?";
}

/// One fuzz round: all ranks derive the SAME schedule from the shared
/// seed (so the collective call sequence matches), with per-op randomized
/// roots, counts and payload values.
void fuzz_job(CollectiveSuite suite, unsigned seed, int world_size) {
  UniverseConfig cfg;
  cfg.world_size = world_size;
  cfg.suite = suite;
  cfg.eager_limit = 1024;  // mix protocols
  cfg.fabric.ranks_per_node = 3;  // multi-node geometry

  // Every assertion below inherits this trace, so a red run prints the
  // exact replay recipe: JHPC_COLL=<suite> JHPC_FUZZ_SEED=<seed>.
  SCOPED_TRACE(std::string("fuzz replay: JHPC_COLL=") + suite_name(suite) +
               " JHPC_FUZZ_SEED=" + std::to_string(seed));

  Universe::launch(cfg, [seed](Comm& world) {
    std::mt19937 schedule_rng(seed);  // identical on every rank
    const int n = world.size();
    const int me = world.rank();

    for (int round = 0; round < 40; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " rank=" + std::to_string(world.rank()));
      const int op = static_cast<int>(schedule_rng() % 6);
      const int root = static_cast<int>(schedule_rng() % n);
      const auto count =
          static_cast<std::size_t>(1 + schedule_rng() % 700);
      const auto salt = static_cast<std::int32_t>(schedule_rng() % 1000);

      switch (op) {
        case 0: {  // bcast
          std::vector<std::int32_t> buf(count);
          if (me == root)
            for (std::size_t i = 0; i < count; ++i)
              buf[i] = salt + static_cast<std::int32_t>(i);
          world.bcast(buf.data(), count * 4, root);
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(buf[i], salt + static_cast<std::int32_t>(i));
          break;
        }
        case 1: {  // allreduce sum
          std::vector<std::int32_t> mine(count), out(count);
          for (std::size_t i = 0; i < count; ++i)
            mine[i] = me + salt + static_cast<std::int32_t>(i % 13);
          world.allreduce(mine.data(), out.data(), count, BasicKind::kInt,
                          ReduceOp::kSum);
          const int ranksum = n * (n - 1) / 2;
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(out[i],
                      ranksum + n * (salt +
                                     static_cast<std::int32_t>(i % 13)));
          break;
        }
        case 2: {  // gather at random root
          std::int64_t mine = me * 1000 + salt;
          std::vector<std::int64_t> all(static_cast<std::size_t>(n));
          world.gather(&mine, sizeof(mine), all.data(), root);
          if (me == root) {
            for (int r = 0; r < n; ++r) {
              ASSERT_EQ(all[static_cast<std::size_t>(r)], r * 1000 + salt);
            }
          }
          break;
        }
        case 3: {  // ring p2p with the round's tag
          const int tag = salt % (1 << 16);
          const int right = (me + 1) % n;
          const int left = (me - 1 + n) % n;
          std::vector<std::int32_t> out_msg(count, me + salt);
          std::vector<std::int32_t> in_msg(count, -1);
          world.sendrecv(out_msg.data(), count * 4, right, tag,
                         in_msg.data(), count * 4, left, tag);
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(in_msg[i], left + salt);
          break;
        }
        case 4: {  // scan
          std::int32_t v = me + 1;
          std::int32_t out = 0;
          world.scan(&v, &out, 1, BasicKind::kInt, ReduceOp::kSum);
          ASSERT_EQ(out, (me + 1) * (me + 2) / 2);
          break;
        }
        default: {  // split into random halves, allreduce inside, free
          const int color = (me + salt) % 2;
          Comm half = world.split(color, me);
          ASSERT_TRUE(half.valid());
          std::int32_t v = 1, total = 0;
          half.allreduce(&v, &total, 1, BasicKind::kInt, ReduceOp::kSum);
          ASSERT_EQ(total, half.size());
          break;
        }
      }
    }
  });
}

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<CollectiveSuite, unsigned>> {
};

TEST_P(FuzzTest, RandomScheduleStaysCorrect) {
  const auto [suite, seed] = GetParam();
  fuzz_job(suite, seed, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzTest,
    ::testing::Combine(::testing::Values(CollectiveSuite::kMv2,
                                         CollectiveSuite::kOmpiBasic,
                                         CollectiveSuite::kHier),
                       ::testing::Values(1u, 7u, 42u, 1303u)),
    [](const auto& info) {
      return std::string(suite_name(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- One-sided fuzzing -------------------------------------------------------
// Seeded random epoch/op interleavings over RMA windows: every round
// picks a sync mode (fence / pscw / lock), every rank derives the SAME
// global op list from the shared seed and maintains a shadow copy of
// EVERY window, so each rank can verify its own memory — and anything it
// gets — against a locally computed expectation. Puts keep per-origin
// slices disjoint inside an epoch; accumulates fold commutative integer
// sums; so the shadow is exact regardless of interleaving. The faulted
// variant replays the identical schedule under a drop/jitter plan: the
// reliable path's retransmit dedup must keep results bit-identical.

constexpr std::size_t kRmaSlice = 32;
constexpr int kRmaAccInts = 16;

void rma_fuzz_job(unsigned seed, int world_size, bool faults) {
  UniverseConfig cfg;
  cfg.world_size = world_size;
  cfg.fabric.ranks_per_node = 2;
  if (faults) {
    cfg.fabric.faults.seed = seed * 2654435761u + 1;
    cfg.fabric.faults.link_defaults.drop_prob = 0.04;
    cfg.fabric.faults.link_defaults.jitter_ns = 250;
  }
  SCOPED_TRACE(std::string("rma fuzz replay: JHPC_FUZZ_SEED=") +
               std::to_string(seed) + (faults ? " (faulted run)" : ""));

  Universe::launch(cfg, [seed, faults](Comm& world) {
    (void)faults;               // same schedule with and without the plan
    std::mt19937 rng(seed);     // identical on every rank
    const int n = world.size();
    const int me = world.rank();
    const std::size_t acc_off = static_cast<std::size_t>(n) * kRmaSlice;
    const std::size_t wbytes = acc_off + kRmaAccInts * sizeof(std::int32_t);
    Win win = world.win_allocate(wbytes);
    std::vector<int> others;
    for (int r = 0; r < n; ++r)
      if (r != me) others.push_back(r);

    // Shadow of every rank's window, identical on all ranks.
    std::vector<std::vector<std::uint8_t>> shadow(
        static_cast<std::size_t>(n),
        std::vector<std::uint8_t>(wbytes, 0));

    struct WOp {
      int origin, target;
      bool acc;
      std::int32_t salt;
    };

    for (int round = 0; round < 24; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " rank=" + std::to_string(me));
      const int mode = static_cast<int>(rng() % 3);  // 0 fence 1 pscw 2 lock

      auto open_epoch = [&] {
        if (mode == 0) win.fence();
        if (mode == 1) {
          win.post(others);
          win.start(others);
        }
      };
      auto close_epoch = [&] {
        if (mode == 0) win.fence();
        if (mode == 1) {
          win.complete();
          win.wait();
          world.barrier();
        }
        if (mode == 2) world.barrier();
      };
      auto locked = [&](int t, const std::function<void()>& body) {
        if (mode == 2) {
          win.lock(LockType::kExclusive, t);
          body();
          win.unlock(t);
        } else {
          body();
        }
      };

      // Write epoch: derive the global op list, execute my share, fold
      // ALL of it into the shadow (disjoint slices + commutative sums
      // make the shadow exact for any interleaving).
      std::vector<WOp> ops;
      for (int o = 0; o < n; ++o) {
        const int nops = static_cast<int>(rng() % 3);
        for (int k = 0; k < nops; ++k) {
          WOp w;
          w.origin = o;
          w.target = static_cast<int>(rng() % (n - 1));
          if (w.target >= o) ++w.target;
          w.acc = (rng() & 1u) != 0;
          w.salt = static_cast<std::int32_t>(rng() % 100000);
          ops.push_back(w);
        }
      }
      open_epoch();
      for (const WOp& w : ops) {
        auto& tgt_shadow = shadow[static_cast<std::size_t>(w.target)];
        if (w.acc) {
          std::int32_t addend[kRmaAccInts];
          for (int i = 0; i < kRmaAccInts; ++i) addend[i] = w.salt + i;
          if (w.origin == me) {
            locked(w.target, [&] {
              win.accumulate(addend, kRmaAccInts,
                             Datatype::basic(BasicKind::kInt),
                             ReduceOp::kSum, w.target, acc_off);
            });
          }
          for (int i = 0; i < kRmaAccInts; ++i) {
            std::int32_t cur;
            std::memcpy(&cur, tgt_shadow.data() + acc_off + i * 4, 4);
            cur += addend[i];
            std::memcpy(tgt_shadow.data() + acc_off + i * 4, &cur, 4);
          }
        } else {
          std::uint8_t payload[kRmaSlice];
          for (std::size_t i = 0; i < kRmaSlice; ++i)
            payload[i] = static_cast<std::uint8_t>(
                (w.salt + static_cast<int>(i) * 31) & 0xff);
          const std::size_t off =
              static_cast<std::size_t>(w.origin) * kRmaSlice;
          if (w.origin == me) {
            locked(w.target,
                   [&] { win.put(payload, kRmaSlice, w.target, off); });
          }
          std::memcpy(tgt_shadow.data() + off, payload, kRmaSlice);
        }
      }
      close_epoch();

      // My window must now equal its shadow exactly.
      std::vector<std::uint8_t> mine(wbytes);
      std::memcpy(mine.data(), win.base(), wbytes);
      ASSERT_EQ(mine, shadow[static_cast<std::size_t>(me)]);

      // Read epoch: every rank gets one random remote slice and checks
      // it against the shadow (stable: no writes in this epoch).
      std::vector<int> get_tgt(static_cast<std::size_t>(n));
      std::vector<int> get_slice(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        get_tgt[static_cast<std::size_t>(r)] =
            static_cast<int>(rng() % (n - 1));
        if (get_tgt[static_cast<std::size_t>(r)] >= r)
          ++get_tgt[static_cast<std::size_t>(r)];
        get_slice[static_cast<std::size_t>(r)] =
            static_cast<int>(rng() % n);
      }
      const int t = get_tgt[static_cast<std::size_t>(me)];
      const std::size_t s_off =
          static_cast<std::size_t>(get_slice[static_cast<std::size_t>(me)]) *
          kRmaSlice;
      std::uint8_t got[kRmaSlice];
      open_epoch();
      locked(t, [&] { win.get(got, kRmaSlice, t, s_off); });
      close_epoch();
      ASSERT_EQ(0, std::memcmp(
                       got,
                       shadow[static_cast<std::size_t>(t)].data() + s_off,
                       kRmaSlice));
    }
    world.barrier();
    win.free();
  });
}

class RmaFuzzTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(RmaFuzzTest, RandomEpochInterleavingsStayCorrect) {
  const auto [seed, faults] = GetParam();
  rma_fuzz_job(seed, 5, faults);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RmaFuzzTest,
    ::testing::Combine(::testing::Values(3u, 11u, 99u, 2718u),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_faults" : "_clean");
    });

// --- Seed replay -------------------------------------------------------------
// `JHPC_FUZZ_SEED=<n>` replays one schedule across all three suites —
// the debugging entry point the SCOPED_TRACE recipe above points at.
// CI pins a fixed seed through this test (the minimpi_fuzz_replay ctest
// shard), so one deterministic schedule is always on the record.

TEST(FuzzReplay, ReplaysSeedFromEnvironmentOnEverySuite) {
  const char* env = std::getenv("JHPC_FUZZ_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set JHPC_FUZZ_SEED=<n> to replay a failing schedule";
  }
  const auto seed = static_cast<unsigned>(std::stoul(env));
  for (const CollectiveSuite suite :
       {CollectiveSuite::kMv2, CollectiveSuite::kOmpiBasic,
        CollectiveSuite::kHier}) {
    fuzz_job(suite, seed, 6);
  }
}

// Same entry point for the one-sided fuzzer: replays the env seed's
// epoch/op interleaving clean AND under the drop/jitter plan (the
// minimpi_rma_fuzz_replay ctest shard pins seed 314159 through this).
TEST(RmaFuzzReplay, ReplaysSeedFromEnvironmentCleanAndFaulted) {
  const char* env = std::getenv("JHPC_FUZZ_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set JHPC_FUZZ_SEED=<n> to replay a failing schedule";
  }
  const auto seed = static_cast<unsigned>(std::stoul(env));
  rma_fuzz_job(seed, 5, /*faults=*/false);
  rma_fuzz_job(seed, 5, /*faults=*/true);
}

}  // namespace
}  // namespace jhpc::minimpi
