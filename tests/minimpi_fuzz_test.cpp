// Randomized schedule fuzzing: long seeded sequences of mixed collectives
// and point-to-point traffic, on random communicator splits, verified
// against locally computed expectations — run on all three blocking
// algorithm suites (mv2, basic, hier).
//
// Reproducibility: every assertion carries the case's replay recipe
// (suite + seed), and `JHPC_FUZZ_SEED` replays one seed across all
// suites (the FuzzReplay ctest shard pins one in CI).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"

namespace jhpc::minimpi {
namespace {

const char* suite_name(CollectiveSuite suite) {
  switch (suite) {
    case CollectiveSuite::kMv2:
      return "mv2";
    case CollectiveSuite::kOmpiBasic:
      return "basic";
    case CollectiveSuite::kHier:
      return "hier";
  }
  return "?";
}

/// One fuzz round: all ranks derive the SAME schedule from the shared
/// seed (so the collective call sequence matches), with per-op randomized
/// roots, counts and payload values.
void fuzz_job(CollectiveSuite suite, unsigned seed, int world_size) {
  UniverseConfig cfg;
  cfg.world_size = world_size;
  cfg.suite = suite;
  cfg.eager_limit = 1024;  // mix protocols
  cfg.fabric.ranks_per_node = 3;  // multi-node geometry

  // Every assertion below inherits this trace, so a red run prints the
  // exact replay recipe: JHPC_COLL=<suite> JHPC_FUZZ_SEED=<seed>.
  SCOPED_TRACE(std::string("fuzz replay: JHPC_COLL=") + suite_name(suite) +
               " JHPC_FUZZ_SEED=" + std::to_string(seed));

  Universe::launch(cfg, [seed](Comm& world) {
    std::mt19937 schedule_rng(seed);  // identical on every rank
    const int n = world.size();
    const int me = world.rank();

    for (int round = 0; round < 40; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " rank=" + std::to_string(world.rank()));
      const int op = static_cast<int>(schedule_rng() % 6);
      const int root = static_cast<int>(schedule_rng() % n);
      const auto count =
          static_cast<std::size_t>(1 + schedule_rng() % 700);
      const auto salt = static_cast<std::int32_t>(schedule_rng() % 1000);

      switch (op) {
        case 0: {  // bcast
          std::vector<std::int32_t> buf(count);
          if (me == root)
            for (std::size_t i = 0; i < count; ++i)
              buf[i] = salt + static_cast<std::int32_t>(i);
          world.bcast(buf.data(), count * 4, root);
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(buf[i], salt + static_cast<std::int32_t>(i));
          break;
        }
        case 1: {  // allreduce sum
          std::vector<std::int32_t> mine(count), out(count);
          for (std::size_t i = 0; i < count; ++i)
            mine[i] = me + salt + static_cast<std::int32_t>(i % 13);
          world.allreduce(mine.data(), out.data(), count, BasicKind::kInt,
                          ReduceOp::kSum);
          const int ranksum = n * (n - 1) / 2;
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(out[i],
                      ranksum + n * (salt +
                                     static_cast<std::int32_t>(i % 13)));
          break;
        }
        case 2: {  // gather at random root
          std::int64_t mine = me * 1000 + salt;
          std::vector<std::int64_t> all(static_cast<std::size_t>(n));
          world.gather(&mine, sizeof(mine), all.data(), root);
          if (me == root) {
            for (int r = 0; r < n; ++r) {
              ASSERT_EQ(all[static_cast<std::size_t>(r)], r * 1000 + salt);
            }
          }
          break;
        }
        case 3: {  // ring p2p with the round's tag
          const int tag = salt % (1 << 16);
          const int right = (me + 1) % n;
          const int left = (me - 1 + n) % n;
          std::vector<std::int32_t> out_msg(count, me + salt);
          std::vector<std::int32_t> in_msg(count, -1);
          world.sendrecv(out_msg.data(), count * 4, right, tag,
                         in_msg.data(), count * 4, left, tag);
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(in_msg[i], left + salt);
          break;
        }
        case 4: {  // scan
          std::int32_t v = me + 1;
          std::int32_t out = 0;
          world.scan(&v, &out, 1, BasicKind::kInt, ReduceOp::kSum);
          ASSERT_EQ(out, (me + 1) * (me + 2) / 2);
          break;
        }
        default: {  // split into random halves, allreduce inside, free
          const int color = (me + salt) % 2;
          Comm half = world.split(color, me);
          ASSERT_TRUE(half.valid());
          std::int32_t v = 1, total = 0;
          half.allreduce(&v, &total, 1, BasicKind::kInt, ReduceOp::kSum);
          ASSERT_EQ(total, half.size());
          break;
        }
      }
    }
  });
}

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<CollectiveSuite, unsigned>> {
};

TEST_P(FuzzTest, RandomScheduleStaysCorrect) {
  const auto [suite, seed] = GetParam();
  fuzz_job(suite, seed, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzTest,
    ::testing::Combine(::testing::Values(CollectiveSuite::kMv2,
                                         CollectiveSuite::kOmpiBasic,
                                         CollectiveSuite::kHier),
                       ::testing::Values(1u, 7u, 42u, 1303u)),
    [](const auto& info) {
      return std::string(suite_name(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- Seed replay -------------------------------------------------------------
// `JHPC_FUZZ_SEED=<n>` replays one schedule across all three suites —
// the debugging entry point the SCOPED_TRACE recipe above points at.
// CI pins a fixed seed through this test (the minimpi_fuzz_replay ctest
// shard), so one deterministic schedule is always on the record.

TEST(FuzzReplay, ReplaysSeedFromEnvironmentOnEverySuite) {
  const char* env = std::getenv("JHPC_FUZZ_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set JHPC_FUZZ_SEED=<n> to replay a failing schedule";
  }
  const auto seed = static_cast<unsigned>(std::stoul(env));
  for (const CollectiveSuite suite :
       {CollectiveSuite::kMv2, CollectiveSuite::kOmpiBasic,
        CollectiveSuite::kHier}) {
    fuzz_job(suite, seed, 6);
  }
}

}  // namespace
}  // namespace jhpc::minimpi
