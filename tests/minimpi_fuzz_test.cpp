// Randomized schedule fuzzing: long seeded sequences of mixed collectives
// and point-to-point traffic, on random communicator splits, verified
// against locally computed expectations — run on both algorithm suites.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"

namespace jhpc::minimpi {
namespace {

/// One fuzz round: all ranks derive the SAME schedule from the shared
/// seed (so the collective call sequence matches), with per-op randomized
/// roots, counts and payload values.
void fuzz_job(CollectiveSuite suite, unsigned seed, int world_size) {
  UniverseConfig cfg;
  cfg.world_size = world_size;
  cfg.suite = suite;
  cfg.eager_limit = 1024;  // mix protocols
  cfg.fabric.ranks_per_node = 3;  // multi-node geometry

  Universe::launch(cfg, [seed](Comm& world) {
    std::mt19937 schedule_rng(seed);  // identical on every rank
    const int n = world.size();
    const int me = world.rank();

    for (int round = 0; round < 40; ++round) {
      const int op = static_cast<int>(schedule_rng() % 6);
      const int root = static_cast<int>(schedule_rng() % n);
      const auto count =
          static_cast<std::size_t>(1 + schedule_rng() % 700);
      const auto salt = static_cast<std::int32_t>(schedule_rng() % 1000);

      switch (op) {
        case 0: {  // bcast
          std::vector<std::int32_t> buf(count);
          if (me == root)
            for (std::size_t i = 0; i < count; ++i)
              buf[i] = salt + static_cast<std::int32_t>(i);
          world.bcast(buf.data(), count * 4, root);
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(buf[i], salt + static_cast<std::int32_t>(i));
          break;
        }
        case 1: {  // allreduce sum
          std::vector<std::int32_t> mine(count), out(count);
          for (std::size_t i = 0; i < count; ++i)
            mine[i] = me + salt + static_cast<std::int32_t>(i % 13);
          world.allreduce(mine.data(), out.data(), count, BasicKind::kInt,
                          ReduceOp::kSum);
          const int ranksum = n * (n - 1) / 2;
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(out[i],
                      ranksum + n * (salt +
                                     static_cast<std::int32_t>(i % 13)));
          break;
        }
        case 2: {  // gather at random root
          std::int64_t mine = me * 1000 + salt;
          std::vector<std::int64_t> all(static_cast<std::size_t>(n));
          world.gather(&mine, sizeof(mine), all.data(), root);
          if (me == root) {
            for (int r = 0; r < n; ++r) {
              ASSERT_EQ(all[static_cast<std::size_t>(r)], r * 1000 + salt);
            }
          }
          break;
        }
        case 3: {  // ring p2p with the round's tag
          const int tag = salt % (1 << 16);
          const int right = (me + 1) % n;
          const int left = (me - 1 + n) % n;
          std::vector<std::int32_t> out_msg(count, me + salt);
          std::vector<std::int32_t> in_msg(count, -1);
          world.sendrecv(out_msg.data(), count * 4, right, tag,
                         in_msg.data(), count * 4, left, tag);
          for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(in_msg[i], left + salt);
          break;
        }
        case 4: {  // scan
          std::int32_t v = me + 1;
          std::int32_t out = 0;
          world.scan(&v, &out, 1, BasicKind::kInt, ReduceOp::kSum);
          ASSERT_EQ(out, (me + 1) * (me + 2) / 2);
          break;
        }
        default: {  // split into random halves, allreduce inside, free
          const int color = (me + salt) % 2;
          Comm half = world.split(color, me);
          ASSERT_TRUE(half.valid());
          std::int32_t v = 1, total = 0;
          half.allreduce(&v, &total, 1, BasicKind::kInt, ReduceOp::kSum);
          ASSERT_EQ(total, half.size());
          break;
        }
      }
    }
  });
}

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<CollectiveSuite, unsigned>> {
};

TEST_P(FuzzTest, RandomScheduleStaysCorrect) {
  const auto [suite, seed] = GetParam();
  fuzz_job(suite, seed, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzTest,
    ::testing::Combine(::testing::Values(CollectiveSuite::kMv2,
                                         CollectiveSuite::kOmpiBasic),
                       ::testing::Values(1u, 7u, 42u, 1303u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == CollectiveSuite::kMv2
                             ? "mv2"
                             : "basic") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace jhpc::minimpi
