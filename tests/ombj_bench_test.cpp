// OMB-J benchmark machinery: options, the benchmark bodies (tiny runs),
// the figure harness, and the virtual-time properties benchmarks rely on.
#include <gtest/gtest.h>

#include "jhpc/minimpi/universe.hpp"
#include "jhpc/ombj/benchmarks.hpp"
#include "jhpc/ombj/harness.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::ombj {
namespace {

BenchOptions tiny() {
  BenchOptions opt;
  opt.min_size = 1;
  opt.max_size = 256;
  opt.warmup_small = 2;
  opt.iters_small = 10;
  opt.warmup_large = 1;
  opt.iters_large = 3;
  opt.window = 8;
  return opt;
}

FigureSpec tiny_fig(BenchKind kind, std::vector<SeriesSpec> series,
                    int ranks = 2, int ppn = 0) {
  FigureSpec fig;
  fig.id = "test";
  fig.title = "test";
  fig.kind = kind;
  fig.options = tiny();
  fig.ranks = ranks;
  fig.ppn = ppn;
  fig.series = std::move(series);
  return fig;
}

TEST(OptionsTest, BenchNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(BenchKind::kGetBandwidth); ++k) {
    const auto kind = static_cast<BenchKind>(k);
    EXPECT_EQ(bench_from_name(bench_name(kind)), kind);
  }
  EXPECT_THROW(bench_from_name("nope"), InvalidArgumentError);
}

TEST(OptionsTest, IterationScalingBySize) {
  BenchOptions opt;
  opt.iters_small = 100;
  opt.iters_large = 10;
  opt.large_threshold = 8192;
  EXPECT_EQ(opt.iterations_for(8192), 100);
  EXPECT_EQ(opt.iterations_for(8193), 10);
}

TEST(VirtualTimeTest, VtimeAdvancesWithCpuWork) {
  minimpi::UniverseConfig cfg;
  cfg.world_size = 1;
  minimpi::Universe::launch(cfg, [](minimpi::Comm& world) {
    const auto t0 = world.vtime_ns();
    volatile double sink = 1.0;
    for (int i = 0; i < 2'000'000; ++i) sink = sink * 1.0000001;
    const auto t1 = world.vtime_ns();
    EXPECT_GT(t1 - t0, 100'000) << "real compute must advance virtual time";
  });
}

TEST(VirtualTimeTest, InterNodeLatencyDominatedByModel) {
  // A 2-rank ping-pong across a high-latency virtual link must measure
  // roughly 2x the configured one-way latency per round trip, regardless
  // of host scheduling.
  minimpi::UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.fabric.ranks_per_node = 1;
  cfg.fabric.inter_latency_ns = 50'000;  // 50 us, dwarfs CPU costs
  minimpi::Universe::launch(cfg, [](minimpi::Comm& world) {
    char byte = 0;
    // Warm up and synchronise.
    world.barrier();
    const auto t0 = world.vtime_ns();
    constexpr int kIters = 10;
    for (int i = 0; i < kIters; ++i) {
      if (world.rank() == 0) {
        world.send(&byte, 1, 1, 0);
        world.recv(&byte, 1, 1, 0);
      } else {
        world.recv(&byte, 1, 0, 0);
        world.send(&byte, 1, 0, 0);
      }
    }
    const auto per_round = (world.vtime_ns() - t0) / kIters;
    EXPECT_GT(per_round, 95'000);   // ~2 x 50 us
    EXPECT_LT(per_round, 140'000);  // plus bounded CPU overhead
  });
}

TEST(VirtualTimeTest, BandwidthSaturatesAtModelledRate) {
  const auto fig =
      tiny_fig(BenchKind::kBandwidth,
               {{Library::kNativeMv2, Api::kBuffer, "native"}}, 2, 1);
  FigureSpec f = fig;
  f.options.min_size = 1 << 20;
  f.options.max_size = 1 << 20;  // a single 1 MB point
  f.options.iters_large = 5;
  f.fabric.inter_bandwidth_mbps = 2000.0;
  const auto results = run_figure(f);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].supported);
  ASSERT_EQ(results[0].rows.size(), 1u);
  const double mbps = results[0].rows[0].value;
  EXPECT_GT(mbps, 1000.0) << "should approach the 2000 MB/s line rate";
  EXPECT_LT(mbps, 2100.0) << "cannot exceed the line rate";
}

TEST(BenchTest, LatencyProducesAllSizes) {
  const auto results = run_figure(
      tiny_fig(BenchKind::kLatency,
               {{Library::kMv2j, Api::kBuffer, ""},
                {Library::kMv2j, Api::kArrays, ""},
                {Library::kOmpij, Api::kBuffer, ""},
                {Library::kOmpij, Api::kArrays, ""}}));
  for (const auto& r : results) {
    ASSERT_TRUE(r.supported) << r.error;
    EXPECT_EQ(r.rows.size(), 9u);  // 1..256 powers of two
    for (const auto& row : r.rows) EXPECT_GT(row.value, 0.0);
  }
}

TEST(BenchTest, BandwidthUnsupportedForOmpijArrays) {
  const auto results = run_figure(
      tiny_fig(BenchKind::kBandwidth, {{Library::kOmpij, Api::kArrays, ""},
                                       {Library::kOmpij, Api::kBuffer, ""}}));
  EXPECT_FALSE(results[0].supported);
  EXPECT_NE(results[0].error.find("non-blocking"), std::string::npos);
  EXPECT_TRUE(results[1].supported);
}

TEST(BenchTest, ValidationModeStillMeasures) {
  auto fig = tiny_fig(BenchKind::kLatency, {{Library::kMv2j, Api::kArrays,
                                             ""}});
  fig.options.validate = true;
  const auto results = run_figure(fig);
  ASSERT_TRUE(results[0].supported);
  EXPECT_EQ(results[0].rows.size(), 9u);
}

TEST(BenchTest, MultiLatencyAveragesPairs) {
  const auto results = run_figure(tiny_fig(
      BenchKind::kMultiLat, {{Library::kMv2j, Api::kBuffer, ""}}, 4, 2));
  ASSERT_TRUE(results[0].supported) << results[0].error;
  EXPECT_EQ(results[0].rows.size(), 9u);
  for (const auto& row : results[0].rows) EXPECT_GT(row.value, 0.0);
}

TEST(BenchTest, CollectivesRunOnAllKinds) {
  for (const BenchKind kind :
       {BenchKind::kBcast, BenchKind::kReduce, BenchKind::kAllreduce,
        BenchKind::kReduceScatter, BenchKind::kScan, BenchKind::kGather,
        BenchKind::kScatter, BenchKind::kAllgather,
        BenchKind::kAlltoall, BenchKind::kGatherv, BenchKind::kScatterv,
        BenchKind::kAllgatherv, BenchKind::kAlltoallv}) {
    for (const Api api : {Api::kBuffer, Api::kArrays}) {
      auto fig = tiny_fig(kind, {{Library::kMv2j, api, ""}}, 3, 0);
      const auto results = run_figure(fig);
      ASSERT_TRUE(results[0].supported)
          << bench_name(kind) << ": " << results[0].error;
      EXPECT_FALSE(results[0].rows.empty()) << bench_name(kind);
    }
  }
}

TEST(BenchTest, MultiPairBandwidthAggregates) {
  // osu_mbw_mr on 4 ranks over a modelled link: two pairs must aggregate
  // to roughly twice the per-pair line rate when links are independent.
  auto fig = tiny_fig(BenchKind::kMultiBw,
                      {{Library::kMv2j, Api::kBuffer, ""}}, 4, 1);
  fig.options.min_size = 1 << 20;
  fig.options.max_size = 1 << 20;
  fig.options.iters_large = 5;
  fig.fabric.inter_bandwidth_mbps = 1000.0;
  const auto results = run_figure(fig);
  ASSERT_TRUE(results[0].supported) << results[0].error;
  ASSERT_EQ(results[0].rows.size(), 1u);
  const double mbps = results[0].rows[0].value;
  EXPECT_GT(mbps, 1100.0) << "two pairs on distinct links beat one link";
  EXPECT_LT(mbps, 2100.0) << "cannot exceed 2x the line rate";
}

TEST(BenchTest, MultiPairBandwidthOddRankSitsOut) {
  auto fig = tiny_fig(BenchKind::kMultiBw,
                      {{Library::kMv2j, Api::kArrays, ""}}, 5, 0);
  const auto results = run_figure(fig);
  ASSERT_TRUE(results[0].supported) << results[0].error;
  EXPECT_FALSE(results[0].rows.empty());
}

TEST(BenchTest, BarrierGivesOneRow) {
  const auto results = run_figure(tiny_fig(
      BenchKind::kBarrier, {{Library::kMv2j, Api::kBuffer, ""}}, 4, 2));
  ASSERT_TRUE(results[0].supported);
  ASSERT_EQ(results[0].rows.size(), 1u);
  EXPECT_GT(results[0].rows[0].value, 0.0);
}

TEST(BenchTest, OverlapBenchmarksReportLatencyAndOverlap) {
  // osu_ibcast / osu_iallreduce over the nonblocking schedule engine:
  // every row must carry a positive pure latency and an overlap
  // percentage in [0, 100], and the engine must hide at least *some*
  // communication behind the calibrated compute across the sweep.
  for (const BenchKind kind : {BenchKind::kIbcast, BenchKind::kIallreduce}) {
    for (const Library lib : {Library::kMv2j, Library::kNativeMv2}) {
      auto fig = tiny_fig(kind, {{lib, Api::kBuffer, ""}}, 4, 2);
      fig.options.max_size = 4096;
      const auto results = run_figure(fig);
      ASSERT_TRUE(results[0].supported)
          << bench_name(kind) << ": " << results[0].error;
      ASSERT_FALSE(results[0].rows.empty()) << bench_name(kind);
      double overlap_sum = 0.0;
      for (const auto& row : results[0].rows) {
        EXPECT_GT(row.value, 0.0) << bench_name(kind);
        EXPECT_GE(row.overlap, 0.0) << bench_name(kind);
        EXPECT_LE(row.overlap, 100.0) << bench_name(kind);
        overlap_sum += row.overlap;
      }
      EXPECT_GT(overlap_sum, 0.0)
          << bench_name(kind) << " on " << library_name(lib)
          << ": no size showed any communication/computation overlap";
    }
  }
}

TEST(BenchTest, OverlapBenchmarksAreBufferOnly) {
  const auto results = run_figure(tiny_fig(
      BenchKind::kIbcast, {{Library::kMv2j, Api::kArrays, ""}}, 3, 0));
  ASSERT_FALSE(results[0].supported);
  EXPECT_NE(results[0].error.find("ByteBuffer"), std::string::npos);
}

TEST(BenchTest, OverlapBenchmarksChargeNbcPvars) {
  // The schedule engine must show up in the MPI_T-style counters: after
  // an ibcast sweep every rank charged coll.nbc.bcast once per
  // operation, and the per-round spans rode the same recorder.
  minimpi::UniverseConfig cfg;
  cfg.world_size = 3;
  cfg.obs = obs::ObsConfig{};
  cfg.obs.trace_path = testing::TempDir() + "ombj_nbc_pvars.json";
  minimpi::Universe::launch(cfg, [](minimpi::Comm& world) {
    std::vector<std::byte> buf(512);
    for (int i = 0; i < 4; ++i) world.ibcast(buf.data(), buf.size(), 0).wait();
    float in = 1.0F;
    float out = 0.0F;
    world
        .iallreduce(&in, &out, 1, minimpi::BasicKind::kFloat,
                    minimpi::ReduceOp::kSum)
        .wait();
    world.barrier();
    obs::PvarRegistry& reg = *world.pvars();
    const auto total = [&reg](const char* name) {
      return reg.total(reg.find(name));
    };
    EXPECT_EQ(total("coll.nbc.bcast"), 4 * world.size());
    EXPECT_EQ(total("coll.nbc.allreduce"), world.size());
    EXPECT_EQ(total("coll.nbc.barrier"), 0);
  });
}

TEST(BenchTest, NativeSeriesRun) {
  for (const Library lib : {Library::kNativeMv2, Library::kNativeOmpi}) {
    const auto results = run_figure(
        tiny_fig(BenchKind::kAllreduce, {{lib, Api::kBuffer, ""}}, 4, 2));
    ASSERT_TRUE(results[0].supported);
    EXPECT_FALSE(results[0].rows.empty());
  }
}

TEST(HarnessTest, FigureTableMergesBySize) {
  auto fig = tiny_fig(BenchKind::kLatency,
                      {{Library::kMv2j, Api::kBuffer, "A"},
                       {Library::kNativeMv2, Api::kBuffer, "B"}});
  const auto results = run_figure(fig);
  const Table t = figure_table(fig, results);
  EXPECT_EQ(t.headers().size(), 3u);
  EXPECT_EQ(t.rows(), 9u);
  EXPECT_EQ(t.headers()[1], "A us");
}

TEST(HarnessTest, OverlapTableAddsColumnPerSeries) {
  auto fig = tiny_fig(BenchKind::kIallreduce,
                      {{Library::kNativeMv2, Api::kBuffer, "N"}}, 3, 0);
  fig.options.max_size = 1024;
  const auto results = run_figure(fig);
  const Table t = figure_table(fig, results);
  ASSERT_EQ(t.headers().size(), 3u);
  EXPECT_EQ(t.headers()[1], "N us");
  EXPECT_EQ(t.headers()[2], "N ovl%");
  ASSERT_GT(t.rows(), 0u);
  EXPECT_NE(t.data()[0][2], "-");
}

TEST(HarnessTest, UnsupportedSeriesShowsNa) {
  auto fig = tiny_fig(BenchKind::kBandwidth,
                      {{Library::kMv2j, Api::kBuffer, "ok"},
                       {Library::kOmpij, Api::kArrays, "nope"}});
  const auto results = run_figure(fig);
  const Table t = figure_table(fig, results);
  ASSERT_GT(t.rows(), 0u);
  EXPECT_EQ(t.data()[0][2], "n/a");
}

TEST(HarnessTest, AverageRatioGeometricMean) {
  std::vector<SeriesResult> results(2);
  results[0].label = "slow";
  results[0].rows = {{1, 10.0}, {2, 40.0}};
  results[1].label = "fast";
  results[1].rows = {{1, 5.0}, {2, 10.0}};
  // Ratios: 2 and 4 -> geometric mean sqrt(8) ~= 2.828.
  EXPECT_NEAR(average_ratio(results, "slow", "fast"), 2.8284, 1e-3);
  EXPECT_EQ(average_ratio(results, "slow", "missing"), 0.0);
  results[1].supported = false;
  EXPECT_EQ(average_ratio(results, "slow", "fast"), 0.0);
}

TEST(HarnessTest, LibraryAndApiNames) {
  EXPECT_STREQ(library_name(Library::kMv2j), "MVAPICH2-J");
  EXPECT_STREQ(library_name(Library::kOmpij), "Open MPI-J");
  EXPECT_STREQ(api_name(Api::kArrays), "arrays");
}

}  // namespace
}  // namespace jhpc::ombj
