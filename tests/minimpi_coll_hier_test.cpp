// Property tests for the topology-aware hier collective suite.
//
// Four contracts beyond the differential oracle in
// minimpi_coll_diff_test.cpp:
//   1. Topology independence: for ANY rank->node placement (seeded random
//      node_map shuffles, uneven node sizes, leaders that are not rank 0),
//      the hier suite's results are bit-identical to the mv2 suite's on
//      the same inputs.
//   2. Chaos: seeded link drops and jitter on the inter-node legs never
//      corrupt a result — the reliable transport under the leader team
//      keeps the hier schedule exactly-once.
//   3. Rank failure: a scheduled kill inside a hier collective surfaces
//      as a typed RankFailedError/CommRevokedError on every survivor
//      (never a hang on a shared flag).
//   4. Accounting: the single-copy fast path is observable — the
//      coll.hier.single_copy* pvars count exactly the direct out-of-
//      publisher-buffer copies, and stay zero when the suite is off.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

UniverseConfig hier_cfg(int ranks) {
  UniverseConfig c;
  c.world_size = ranks;
  c.suite = CollectiveSuite::kHier;
  c.obs = obs::ObsConfig{};  // hermetic: ignore JHPC_PVARS/JHPC_TRACE
  return c;
}

/// A seeded random rank->node map over `nodes` nodes, every node
/// non-empty (the fabric requires contiguous node ids with at least one
/// resident each).
std::vector<int> shuffled_node_map(std::mt19937& rng, int ranks, int nodes) {
  std::vector<int> map(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) map[static_cast<std::size_t>(r)] = r % nodes;
  std::shuffle(map.begin(), map.end(), rng);
  return map;
}

/// Run the four hier-specialised data collectives plus a barrier on one
/// config and return every rank's concatenated outputs.
std::vector<std::vector<std::int32_t>> run_suite_outputs(UniverseConfig c,
                                                         std::uint32_t seed) {
  constexpr std::size_t kCount = 96;
  const auto n = static_cast<std::size_t>(c.world_size);
  std::vector<std::vector<std::int32_t>> out(n);
  Universe::launch(c, [&](Comm& world) {
    const int r = world.rank();
    const int size = world.size();
    std::mt19937 rng(seed + static_cast<std::uint32_t>(r) * 7919u);
    std::vector<std::int32_t> mine(kCount);
    for (auto& v : mine)
      v = static_cast<std::int32_t>(rng() % 2001) - 1000;

    std::vector<std::int32_t> bc(kCount);
    if (r == size - 1) bc = mine;
    world.bcast(bc.data(), kCount * sizeof(std::int32_t), size - 1);

    std::vector<std::int32_t> red(kCount, -1);
    world.reduce(mine.data(), red.data(), kCount, BasicKind::kInt,
                 ReduceOp::kSum, 0);
    if (r != 0) red.assign(kCount, -1);

    std::vector<std::int32_t> all(kCount, -1);
    world.allreduce(mine.data(), all.data(), kCount, BasicKind::kInt,
                    ReduceOp::kMax);

    world.barrier();

    std::vector<std::int32_t> gat(
        r == 1 % size ? kCount * static_cast<std::size_t>(size) : 0, -1);
    world.gather(mine.data(), kCount * sizeof(std::int32_t), gat.data(),
                 1 % size);

    auto& slot = out[static_cast<std::size_t>(r)];
    slot.insert(slot.end(), bc.begin(), bc.end());
    slot.insert(slot.end(), red.begin(), red.end());
    slot.insert(slot.end(), all.begin(), all.end());
    slot.insert(slot.end(), gat.begin(), gat.end());
  });
  return out;
}

// --- 1. Randomized-topology property test ----------------------------------

TEST(CollHierTopologyTest, RandomNodeMapShufflesMatchMv2BitForBit) {
  std::mt19937 rng(20260809u);
  for (int trial = 0; trial < 12; ++trial) {
    const int ranks = 2 + static_cast<int>(rng() % 7u);  // 2..8
    const int nodes =
        1 + static_cast<int>(rng() % static_cast<unsigned>(
                                 std::min(ranks, 4)));  // 1..min(ranks,4)
    const std::vector<int> map = shuffled_node_map(rng, ranks, nodes);
    const auto seed = static_cast<std::uint32_t>(rng());

    UniverseConfig hier = hier_cfg(ranks);
    hier.fabric.node_map = map;
    UniverseConfig mv2 = hier;
    mv2.suite = CollectiveSuite::kMv2;

    const auto got = run_suite_outputs(hier, seed);
    const auto want = run_suite_outputs(mv2, seed);
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)],
                want[static_cast<std::size_t>(r)])
          << "trial=" << trial << " ranks=" << ranks << " nodes=" << nodes
          << " rank=" << r;
    }
  }
}

TEST(CollHierTopologyTest, SubCommunicatorsSpanningNodes) {
  // split() halves of a 2x4 block topology: each half holds two ranks per
  // node with non-identity world mapping, and each communicator gets its
  // own shared segments (keyed by context id). dup() exercises segment
  // reuse under a fresh context on the same membership.
  UniverseConfig c = hier_cfg(8);
  c.fabric.ranks_per_node = 4;
  Universe::launch(c, [](Comm& world) {
    Comm half = world.split(world.rank() % 2, world.rank());
    ASSERT_TRUE(half.valid());
    std::int32_t in = world.rank() + 1, sum = 0;
    half.allreduce(&in, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
    // Evens 1+3+5+7, odds 2+4+6+8.
    EXPECT_EQ(sum, world.rank() % 2 == 0 ? 16 : 20);

    Comm dup = half.dup();
    std::int32_t bc = dup.rank() == 0 ? 4242 : 0;
    dup.bcast(&bc, sizeof(bc), 0);
    EXPECT_EQ(bc, 4242);

    std::vector<std::int32_t> gat(dup.rank() == 0 ? 4u : 0u, -1);
    dup.gather(&in, sizeof(in), gat.data(), 0);
    if (dup.rank() == 0) {
      const std::vector<std::int32_t> want =
          world.rank() % 2 == 0 ? std::vector<std::int32_t>{1, 3, 5, 7}
                                : std::vector<std::int32_t>{2, 4, 6, 8};
      EXPECT_EQ(gat, want);
    }
    world.barrier();
  });
}

TEST(CollHierTopologyTest, RepeatedOpsReuseSegmentsAcrossJobs) {
  // Back-to-back collectives stress the per-op sequence numbers; a
  // second job on the same Universe must restart cleanly (hier_reset).
  UniverseConfig c = hier_cfg(6);
  c.fabric.ranks_per_node = 3;
  Universe u(c);
  for (int job = 0; job < 2; ++job) {
    u.run([&](Comm& world) {
      for (int i = 0; i < 25; ++i) {
        std::int32_t in = world.rank() + i, sum = -1;
        world.allreduce(&in, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
        EXPECT_EQ(sum, 15 + 6 * i);
        world.barrier();
      }
    });
  }
}

// --- 2. Chaos: drops and jitter on the inter-node legs ----------------------

TEST(CollHierChaosTest, SurvivesSeededDropsAndJitter) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    UniverseConfig c = hier_cfg(6);
    c.fabric.ranks_per_node = 2;
    c.fabric.faults.seed = seed;
    c.fabric.faults.link_defaults.drop_prob = 0.05;
    c.fabric.faults.link_defaults.jitter_ns = 400;
    Universe::launch(c, [](Comm& world) {
      for (int i = 0; i < 10; ++i) {
        std::vector<std::int32_t> v(129, world.rank() == 2 ? 7 + i : -1);
        world.bcast(v.data(), v.size() * sizeof(std::int32_t), 2);
        for (const std::int32_t x : v) ASSERT_EQ(x, 7 + i);
        std::int64_t in = world.rank(), sum = -1;
        world.allreduce(&in, &sum, 1, BasicKind::kLong, ReduceOp::kSum);
        ASSERT_EQ(sum, 0 + 1 + 2 + 3 + 4 + 5);
        world.barrier();
      }
    });
  }
}

// --- 3. Rank failure: typed errors, never hangs -----------------------------

void expect_kill_surfaces_typed_error(int victim) {
  UniverseConfig c = hier_cfg(6);
  c.fabric.ranks_per_node = 3;  // leaders: ranks 0 and 3
  c.fabric.faults.kills = {{victim, 0}};
  std::atomic<int> typed{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == victim) {
      // Dies at its first collective entry; the internal kill exception
      // unwinds past this frame and run() swallows it as planned.
      std::int32_t in = 0, sum = 0;
      world.allreduce(&in, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
      ADD_FAILURE() << "victim outlived its scheduled death";
      return;
    }
    try {
      for (int i = 0; i < 100; ++i) {
        std::int32_t in = world.rank(), sum = -1;
        world.allreduce(&in, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
        world.barrier();
      }
      ADD_FAILURE() << "rank " << world.rank()
                    << " completed despite the kill of rank " << victim;
    } catch (const RankFailedError& e) {
      EXPECT_TRUE(std::find(e.failed_ranks().begin(), e.failed_ranks().end(),
                            victim) != e.failed_ranks().end());
      typed.fetch_add(1);
    } catch (const CommRevokedError&) {
      // A sibling detected the death first and auto-revoked the comm.
      typed.fetch_add(1);
    }
  });
  // Every survivor got a typed error (the victim unwinds internally).
  EXPECT_EQ(typed.load(), 5) << "victim=" << victim;
}

TEST(CollHierFailureTest, MemberDeathRaisesTypedErrorOnSurvivors) {
  expect_kill_surfaces_typed_error(4);  // non-leader member of node 1
}

TEST(CollHierFailureTest, LeaderDeathRaisesTypedErrorOnSurvivors) {
  expect_kill_surfaces_typed_error(3);  // leader of node 1
}

TEST(CollHierFailureTest, SurvivorsShrinkAndContinueOnHier) {
  // Full ULFM recovery loop on the hier suite: kill, typed error,
  // shrink, and the survivor communicator's hier collectives still work
  // (fresh context id -> fresh shared segments).
  UniverseConfig c = hier_cfg(6);
  c.fabric.ranks_per_node = 3;
  c.fabric.faults.kills = {{1, 0}};
  std::atomic<int> recovered{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 1) {
      world.barrier();  // dies here (first collective entry, kill at t=0)
      return;
    }
    try {
      for (int i = 0; i < 100; ++i) world.barrier();
      ADD_FAILURE() << "barrier loop outlived the kill";
    } catch (const jhpc::Error& e) {
      ASSERT_TRUE(e.code() == ErrorCode::kRankFailed ||
                  e.code() == ErrorCode::kCommRevoked);
      Comm next = world.shrink();
      EXPECT_EQ(next.size(), 5);
      std::int32_t in = 1, sum = 0;
      next.allreduce(&in, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
      EXPECT_EQ(sum, 5);
      recovered.fetch_add(1);
    }
  });
  EXPECT_EQ(recovered.load(), 5);
}

// --- 4. Single-copy pvar accounting -----------------------------------------

UniverseConfig traced_hier_cfg(int ranks, const std::string& tag) {
  UniverseConfig c = hier_cfg(ranks);
  c.obs.trace_path = testing::TempDir() + "hier_" + tag + ".json";
  return c;
}

TEST(CollHierPvarsTest, IntraNodeBcastCountsSingleCopies) {
  // 4 ranks on one node, root is the leader: the three members each copy
  // the payload once, directly out of the root's buffer. No other copy
  // exists, so the counter is exactly 3 and the bytes exactly 3 * N.
  constexpr std::size_t kBytes = 1024;
  UniverseConfig c = traced_hier_cfg(4, "bcast");
  std::int64_t copies = -1, bytes = -1, flag_waits = -1;
  Universe::launch(c, [&](Comm& world) {
    std::vector<std::uint8_t> v(kBytes,
                                world.rank() == 0 ? std::uint8_t{0x5a}
                                                  : std::uint8_t{0});
    world.bcast(v.data(), v.size(), 0);
    EXPECT_EQ(v, std::vector<std::uint8_t>(kBytes, 0x5a));
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      copies = reg.total(reg.find("coll.hier.single_copy"));
      bytes = reg.total(reg.find("coll.hier.single_copy_bytes"));
      flag_waits = reg.total(reg.find("coll.hier.flag_wait_ns"));
    }
  });
  EXPECT_EQ(copies, 3);
  EXPECT_EQ(bytes, 3 * static_cast<std::int64_t>(kBytes));
  EXPECT_GE(flag_waits, 0);
}

TEST(CollHierPvarsTest, AllreduceCountsFoldAndFanoutCopies) {
  // 4 ranks, one node: the leader folds 3 member inputs straight out of
  // their buffers (3), then the members copy the published result (3).
  constexpr std::size_t kCount = 256;
  constexpr std::size_t kBytes = kCount * sizeof(std::int32_t);
  UniverseConfig c = traced_hier_cfg(4, "allreduce");
  std::int64_t copies = -1, bytes = -1;
  Universe::launch(c, [&](Comm& world) {
    std::vector<std::int32_t> in(kCount, world.rank() + 1), out(kCount, -1);
    world.allreduce(in.data(), out.data(), kCount, BasicKind::kInt,
                    ReduceOp::kSum);
    EXPECT_EQ(out, std::vector<std::int32_t>(kCount, 10));
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      copies = reg.total(reg.find("coll.hier.single_copy"));
      bytes = reg.total(reg.find("coll.hier.single_copy_bytes"));
    }
  });
  EXPECT_EQ(copies, 6);
  EXPECT_EQ(bytes, 6 * static_cast<std::int64_t>(kBytes));
}

TEST(CollHierPvarsTest, CountersStayZeroWhenSuiteIsOff) {
  // Same workload on the mv2 suite: the coll.hier.* pvars are registered
  // (stable tooling surface) but must never tick.
  UniverseConfig c = traced_hier_cfg(4, "off");
  c.suite = CollectiveSuite::kMv2;
  std::int64_t copies = -1, bytes = -1, waits = -1;
  Universe::launch(c, [&](Comm& world) {
    std::vector<std::uint8_t> v(512, world.rank() == 0 ? 0x7e : 0);
    world.bcast(v.data(), v.size(), 0);
    std::int32_t in = 1, out = 0;
    world.allreduce(&in, &out, 1, BasicKind::kInt, ReduceOp::kSum);
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      copies = reg.total(reg.find("coll.hier.single_copy"));
      bytes = reg.total(reg.find("coll.hier.single_copy_bytes"));
      waits = reg.total(reg.find("coll.hier.flag_wait_ns"));
    }
  });
  EXPECT_EQ(copies, 0);
  EXPECT_EQ(bytes, 0);
  EXPECT_EQ(waits, 0);
}

TEST(CollHierPvarsTest, CollAlgInvocationPvarsTick) {
  UniverseConfig c = traced_hier_cfg(3, "alg");
  std::int64_t bcasts = -1, barriers = -1;
  Universe::launch(c, [&](Comm& world) {
    std::uint8_t b = world.rank() == 0 ? 9 : 0;
    world.bcast(&b, 1, 0);
    world.barrier();
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      bcasts = reg.total(reg.find("coll.hier.bcast"));
      barriers = reg.total(reg.find("coll.hier.barrier"));
    }
  });
  EXPECT_EQ(bcasts, 3);        // one invocation per rank
  EXPECT_EQ(barriers, 2 * 3);  // two barriers, entered by all three ranks
}

// --- Config plumbing ---------------------------------------------------------

TEST(CollHierConfigTest, EnvSelectsSuiteAndValidatesFlagCost) {
  ::setenv("JHPC_COLL", "hier", 1);
  ::setenv("JHPC_HIER_FLAG_NS", "55", 1);
  UniverseConfig c;
  c.world_size = 2;
  c.apply_env();
  EXPECT_EQ(c.suite, CollectiveSuite::kHier);
  EXPECT_EQ(c.hier_flag_ns, 55);

  ::setenv("JHPC_HIER_FLAG_NS", "-2", 1);
  EXPECT_THROW(c.apply_env(), jhpc::Error);
  ::unsetenv("JHPC_HIER_FLAG_NS");

  ::setenv("JHPC_COLL", "sideways", 1);
  EXPECT_THROW(c.apply_env(), jhpc::Error);
  ::unsetenv("JHPC_COLL");
}

}  // namespace
}  // namespace jhpc::minimpi
