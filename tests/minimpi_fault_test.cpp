// Seeded chaos suite for the fault-injection layer and the reliable
// transport (docs/FAULTS.md): under deterministic drop/jitter/link-down
// plans every payload must arrive intact, exactly once and in order, the
// virtual clocks must stay monotone, the fault pvars must satisfy the
// protocol's accounting invariants, timeouts must surface as
// TransportTimeoutError instead of hangs — and all of it bit-identically
// for a fixed JHPC_FAULT_SEED.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

UniverseConfig chaos_cfg(int ranks, int ppn, double drop,
                         std::int64_t jitter_ns, std::uint64_t seed,
                         const std::string& tag) {
  UniverseConfig c;
  c.world_size = ranks;
  c.fabric.ranks_per_node = ppn;
  c.fabric.faults.seed = seed;
  c.fabric.faults.link_defaults.drop_prob = drop;
  c.fabric.faults.link_defaults.jitter_ns = jitter_ns;
  c.obs = obs::ObsConfig{};  // discard env so the test is hermetic
  // Enabling the recorder (trace to a scratch file) gives the test the
  // pvar registry without printing the finalize table.
  c.obs.trace_path = testing::TempDir() + "fault_" + tag + ".json";
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n, unsigned key) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>((i * 31 + key * 17) & 0xff);
  return v;
}

std::int64_t total(obs::PvarRegistry& reg, const char* name) {
  return reg.total(reg.find(name));
}

/// The reliable protocol's books must balance: every lost data packet or
/// lost ack triggers exactly one retransmit, unless the budget ran out
/// (timeout); a duplicate can only exist where an ack was lost.
void expect_fault_accounting(obs::PvarRegistry& reg) {
  const std::int64_t data_drops = total(reg, "fault.data_drops");
  const std::int64_t ack_drops = total(reg, "fault.ack_drops");
  const std::int64_t retransmits = total(reg, "fault.retransmits");
  const std::int64_t timeouts = total(reg, "fault.timeouts");
  const std::int64_t dups = total(reg, "fault.dups");
  EXPECT_EQ(retransmits + timeouts, data_drops + ack_drops);
  EXPECT_LE(dups, ack_drops);
  EXPECT_GE(data_drops, 0);
  EXPECT_GE(ack_drops, 0);
}

/// Every rank but 0 reports in; rank 0 collecting all tokens is the
/// happens-before edge that makes a subsequent pvar read race-free (all
/// other ranks' transport calls have returned).
void drain_to_rank0(Comm& world, int tag = kMaxUserTag) {
  char token = 1;
  if (world.rank() == 0) {
    for (int r = 1; r < world.size(); ++r)
      world.recv(&token, sizeof(token), r, tag);
  } else {
    world.send(&token, sizeof(token), 0, tag);
  }
}

// --- Point-to-point under drop/jitter plans --------------------------------

TEST(FaultP2PTest, EagerBlockingStreamSurvivesDrops) {
  UniverseConfig c = chaos_cfg(2, 1, 0.05, 200, 12345, "eager_stream");
  constexpr int kMsgs = 200;
  bool accounting_done = false;
  Universe::launch(c, [&](Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        const auto payload =
            pattern(64 + static_cast<std::size_t>(i) % 512,
                    static_cast<unsigned>(i));
        world.send(payload.data(), payload.size(), 1, i);
      }
    } else {
      std::int64_t last_v = world.vtime_ns();
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::uint8_t> buf(1024);
        Status st;
        // Wildcard tag: per-(src,comm) FIFO must hold even when message i
        // needed more retransmit rounds than message i+1.
        world.recv(buf.data(), buf.size(), 0, kAnyTag, &st);
        EXPECT_EQ(st.tag, i) << "FIFO order broken under faults";
        EXPECT_EQ(st.count_bytes, 64 + static_cast<std::size_t>(i) % 512);
        buf.resize(st.count_bytes);
        EXPECT_EQ(buf, pattern(st.count_bytes, static_cast<unsigned>(i)));
        EXPECT_GE(world.vtime_ns(), last_v) << "virtual clock went backwards";
        last_v = world.vtime_ns();
      }
    }
    drain_to_rank0(world);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
      EXPECT_GT(total(reg, "fault.data_drops") +
                    total(reg, "fault.ack_drops"),
                0)
          << "a 5% plan over 200 messages should have dropped something";
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
      // Delivered exactly once: nothing lost, nothing double-counted.
      EXPECT_EQ(total(reg, "mpi.msgs_recvd"), total(reg, "mpi.msgs_sent"));
      accounting_done = true;
    }
  });
  EXPECT_TRUE(accounting_done);
}

TEST(FaultP2PTest, RendezvousSurvivesDropsBothDirections) {
  UniverseConfig c = chaos_cfg(2, 1, 0.08, 500, 777, "rndv");
  c.eager_limit = 256;  // 4 KB payloads go rendezvous
  Universe::launch(c, [&](Comm& world) {
    const int peer = 1 - world.rank();
    for (int i = 0; i < 30; ++i) {
      const auto mine =
          pattern(4096, static_cast<unsigned>(world.rank() * 100 + i));
      std::vector<std::uint8_t> theirs(4096);
      // Both directions at once: RTS, CTS and payload all cross faulty
      // links concurrently.
      world.sendrecv(mine.data(), mine.size(), peer, i, theirs.data(),
                     theirs.size(), peer, i);
      EXPECT_EQ(theirs, pattern(4096, static_cast<unsigned>(peer * 100 + i)));
    }
    drain_to_rank0(world);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
      EXPECT_EQ(total(reg, "mpi.rndv_sent"), 2 * 30);
    }
  });
}

TEST(FaultP2PTest, NonBlockingBatchCompletesAndStaysOrdered) {
  UniverseConfig c = chaos_cfg(2, 1, 0.05, 0, 4242, "nonblocking");
  c.eager_limit = 512;  // mix: 128-byte eager, 2-KB rendezvous
  constexpr int kMsgs = 60;
  Universe::launch(c, [&](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::vector<std::uint8_t>> payloads;
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t n = i % 2 == 0 ? 128 : 2048;
        payloads.push_back(pattern(n, static_cast<unsigned>(i)));
        reqs.push_back(
            world.isend(payloads.back().data(), n, 1, /*tag=*/i % 4));
      }
      for (auto& r : reqs) r.wait();
    } else {
      std::map<int, int> seen_by_tag;  // tag -> messages received so far
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::uint8_t> buf(2048);
        Status st;
        Request r = world.irecv(buf.data(), buf.size(), 0, i % 4);
        r.wait(&st);
        // Within one tag, messages must arrive in the order sent: the
        // k-th tag-t message carries key k*4 + t.
        const int key = seen_by_tag[st.tag] * 4 + st.tag;
        ++seen_by_tag[st.tag];
        buf.resize(st.count_bytes);
        EXPECT_EQ(buf, pattern(st.count_bytes, static_cast<unsigned>(key)));
      }
    }
    drain_to_rank0(world);
    if (world.rank() == 0) expect_fault_accounting(*world.pvars());
  });
}

// --- Collectives under faults, both algorithm suites ------------------------

/// One pass over every collective, sized to exercise both the small- and
/// large-message algorithm of each threshold pair, with full result
/// verification.
void run_all_collectives(Comm& world) {
  const int n = world.size();
  const int me = world.rank();

  world.barrier();

  for (const std::size_t sz : {64u, 96u * 1024u}) {  // binomial + scatter_ring
    auto buf = me == 0 ? pattern(sz, 9) : std::vector<std::uint8_t>(sz);
    world.bcast(buf.data(), buf.size(), 0);
    EXPECT_EQ(buf, pattern(sz, 9));
  }

  {
    std::vector<int> mine(16), out(16);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = me + static_cast<int>(i);
    world.reduce(mine.data(), out.data(), mine.size(), BasicKind::kInt,
                 ReduceOp::kSum, 0);
    if (me == 0) {
      for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], n * (n - 1) / 2 + n * static_cast<int>(i));
    }
  }

  for (const std::size_t count : {8u, 8u * 1024u}) {  // rec-dbl + ring
    std::vector<int> mine(count, me + 1), out(count);
    world.allreduce(mine.data(), out.data(), count, BasicKind::kInt,
                    ReduceOp::kSum);
    for (const int v : out) EXPECT_EQ(v, n * (n + 1) / 2);
  }

  {
    std::vector<int> mine(static_cast<std::size_t>(n) * 4, me), out(4);
    world.reduce_scatter_block(mine.data(), out.data(), 4, BasicKind::kInt,
                               ReduceOp::kSum);
    for (const int v : out) EXPECT_EQ(v, n * (n - 1) / 2);
  }

  {
    int v = me + 1, out = 0;
    world.scan(&v, &out, 1, BasicKind::kInt, ReduceOp::kSum);
    EXPECT_EQ(out, (me + 1) * (me + 2) / 2);
  }

  {
    const auto mine = pattern(32, static_cast<unsigned>(me));
    std::vector<std::uint8_t> all(static_cast<std::size_t>(n) * 32);
    world.gather(mine.data(), 32, all.data(), 0);
    if (me == 0) {
      for (int r = 0; r < n; ++r) {
        const std::vector<std::uint8_t> got(
            all.begin() + r * 32, all.begin() + (r + 1) * 32);
        EXPECT_EQ(got, pattern(32, static_cast<unsigned>(r)));
      }
    }
    std::vector<std::uint8_t> back(32);
    world.scatter(all.data(), 32, back.data(), 0);
    // Round trip: every rank gets back exactly what it contributed.
    EXPECT_EQ(back, mine);
  }

  for (const std::size_t per : {16u, 12u * 1024u}) {  // rec-dbl + ring
    const auto mine = pattern(per, static_cast<unsigned>(me + 50));
    std::vector<std::uint8_t> all(static_cast<std::size_t>(n) * per);
    world.allgather(mine.data(), per, all.data());
    for (int r = 0; r < n; ++r) {
      const std::vector<std::uint8_t> got(
          all.begin() + static_cast<std::ptrdiff_t>(r * per),
          all.begin() + static_cast<std::ptrdiff_t>((r + 1) * per));
      EXPECT_EQ(got, pattern(per, static_cast<unsigned>(r + 50)));
    }
  }

  {
    std::vector<std::uint8_t> send(static_cast<std::size_t>(n) * 24),
        recv(static_cast<std::size_t>(n) * 24);
    for (int r = 0; r < n; ++r) {
      const auto block = pattern(24, static_cast<unsigned>(me * n + r));
      std::memcpy(send.data() + r * 24, block.data(), 24);
    }
    world.alltoall(send.data(), 24, recv.data());
    for (int r = 0; r < n; ++r) {
      const std::vector<std::uint8_t> got(
          recv.begin() + r * 24, recv.begin() + (r + 1) * 24);
      EXPECT_EQ(got, pattern(24, static_cast<unsigned>(r * n + me)));
    }
  }

  {
    // Vectored collectives: rank r contributes r+1 bytes.
    std::vector<std::size_t> counts(static_cast<std::size_t>(n)),
        displs(static_cast<std::size_t>(n));
    std::size_t total_bytes = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r) + 1;
      displs[static_cast<std::size_t>(r)] = total_bytes;
      total_bytes += static_cast<std::size_t>(r) + 1;
    }
    const auto mine =
        pattern(static_cast<std::size_t>(me) + 1, static_cast<unsigned>(me));
    std::vector<std::uint8_t> all(total_bytes);
    world.gatherv(mine.data(), mine.size(), all.data(), counts, displs, 0);
    if (me == 0) {
      for (int r = 0; r < n; ++r) {
        const std::vector<std::uint8_t> got(
            all.begin() +
                static_cast<std::ptrdiff_t>(
                    displs[static_cast<std::size_t>(r)]),
            all.begin() +
                static_cast<std::ptrdiff_t>(
                    displs[static_cast<std::size_t>(r)] +
                    counts[static_cast<std::size_t>(r)]));
        EXPECT_EQ(got, pattern(static_cast<std::size_t>(r) + 1,
                               static_cast<unsigned>(r)));
      }
    }
    std::vector<std::uint8_t> back(static_cast<std::size_t>(me) + 1);
    world.scatterv(all.data(), counts, displs, back.data(), back.size(), 0);
    EXPECT_EQ(back, mine);

    std::vector<std::uint8_t> all2(total_bytes);
    world.allgatherv(mine.data(), mine.size(), all2.data(), counts, displs);
    for (int r = 0; r < n; ++r) {
      const std::vector<std::uint8_t> got(
          all2.begin() + static_cast<std::ptrdiff_t>(
                             displs[static_cast<std::size_t>(r)]),
          all2.begin() + static_cast<std::ptrdiff_t>(
                             displs[static_cast<std::size_t>(r)] +
                             counts[static_cast<std::size_t>(r)]));
      EXPECT_EQ(got, pattern(static_cast<std::size_t>(r) + 1,
                             static_cast<unsigned>(r)));
    }
  }

  {
    // alltoallv: rank s sends s+d+1 bytes to rank d.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(n)),
        sdispls(static_cast<std::size_t>(n)),
        rcounts(static_cast<std::size_t>(n)),
        rdispls(static_cast<std::size_t>(n));
    std::size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < n; ++d) {
      scounts[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(me + d) + 1;
      sdispls[static_cast<std::size_t>(d)] = stotal;
      stotal += scounts[static_cast<std::size_t>(d)];
      rcounts[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(d + me) + 1;
      rdispls[static_cast<std::size_t>(d)] = rtotal;
      rtotal += rcounts[static_cast<std::size_t>(d)];
    }
    std::vector<std::uint8_t> send(stotal), recv(rtotal);
    for (int d = 0; d < n; ++d) {
      const auto block =
          pattern(scounts[static_cast<std::size_t>(d)],
                  static_cast<unsigned>(me * n + d));
      std::memcpy(send.data() + sdispls[static_cast<std::size_t>(d)],
                  block.data(), block.size());
    }
    world.alltoallv(send.data(), scounts, sdispls, recv.data(), rcounts,
                    rdispls);
    for (int s = 0; s < n; ++s) {
      const std::vector<std::uint8_t> got(
          recv.begin() + static_cast<std::ptrdiff_t>(
                             rdispls[static_cast<std::size_t>(s)]),
          recv.begin() + static_cast<std::ptrdiff_t>(
                             rdispls[static_cast<std::size_t>(s)] +
                             rcounts[static_cast<std::size_t>(s)]));
      EXPECT_EQ(got, pattern(rcounts[static_cast<std::size_t>(s)],
                             static_cast<unsigned>(s * n + me)));
    }
  }

  world.barrier();
}

TEST(FaultCollectivesTest, Mv2SuiteCorrectUnderDrops) {
  UniverseConfig c = chaos_cfg(4, 2, 0.05, 300, 31337, "coll_mv2");
  c.suite = CollectiveSuite::kMv2;
  Universe::launch(c, [&](Comm& world) {
    std::int64_t last_v = world.vtime_ns();
    run_all_collectives(world);
    EXPECT_GE(world.vtime_ns(), last_v);
    drain_to_rank0(world);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
      // The sized passes above must have hit both algorithm choices of
      // every threshold pair — under faults, not around them.
      EXPECT_GT(total(reg, "coll.bcast.binomial"), 0);
      EXPECT_GT(total(reg, "coll.bcast.scatter_ring"), 0);
      EXPECT_GT(total(reg, "coll.allreduce.recursive_doubling"), 0);
      EXPECT_GT(total(reg, "coll.allreduce.ring"), 0);
      EXPECT_GT(total(reg, "coll.allgather.recursive_doubling"), 0);
      EXPECT_GT(total(reg, "coll.allgather.ring"), 0);
    }
  });
}

TEST(FaultCollectivesTest, BasicSuiteCorrectUnderDrops) {
  UniverseConfig c = chaos_cfg(4, 2, 0.05, 300, 31337, "coll_basic");
  c.suite = CollectiveSuite::kOmpiBasic;
  Universe::launch(c, [&](Comm& world) {
    run_all_collectives(world);
    drain_to_rank0(world);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
      EXPECT_GT(total(reg, "coll.bcast.linear"), 0);
      EXPECT_GT(total(reg, "coll.allreduce.linear"), 0);
      EXPECT_EQ(total(reg, "coll.bcast.binomial"), 0);
    }
  });
}

TEST(FaultCollectivesTest, NbcScheduleEngineCorrectUnderDrops) {
  // The nonblocking schedule engine rides the same reliable transport as
  // the blocking suites: a seeded drop+jitter plan must cost retransmits,
  // never correctness — and never a hang (the ctest TIMEOUT is part of
  // this contract).
  UniverseConfig c = chaos_cfg(4, 2, 0.05, 300, 424243, "coll_nbc");
  c.suite = CollectiveSuite::kMv2;
  Universe::launch(c, [&](Comm& world) {
    const int r = world.rank();
    const int n = world.size();
    const auto nn = static_cast<std::size_t>(n);

    for (int iter = 0; iter < 3; ++iter) {
      world.ibarrier().wait();

      std::vector<std::uint8_t> bc =
          r == 1 ? pattern(3000, 7u + static_cast<unsigned>(iter))
                 : std::vector<std::uint8_t>(3000, 0);
      world.ibcast(bc.data(), bc.size(), 1).wait();
      ASSERT_EQ(bc, pattern(3000, 7u + static_cast<unsigned>(iter)));

      std::vector<std::int32_t> in(64, r + 1);
      std::vector<std::int32_t> out(64, 0);
      world
          .iallreduce(in.data(), out.data(), in.size(), BasicKind::kInt,
                      ReduceOp::kSum)
          .wait();
      for (const std::int32_t v : out) ASSERT_EQ(v, n * (n + 1) / 2);

      std::vector<std::int32_t> red(64, 0);
      world
          .ireduce(in.data(), red.data(), in.size(), BasicKind::kInt,
                   ReduceOp::kMax, 2)
          .wait();
      if (r == 2) {
        for (const std::int32_t v : red) ASSERT_EQ(v, n);
      }

      const auto mine = pattern(257, static_cast<unsigned>(r));
      std::vector<std::uint8_t> all(257 * nn, 0);
      world.iallgather(mine.data(), mine.size(), all.data()).wait();
      for (int s = 0; s < n; ++s) {
        const auto want = pattern(257, static_cast<unsigned>(s));
        ASSERT_TRUE(std::equal(want.begin(), want.end(),
                               all.begin() + static_cast<std::ptrdiff_t>(
                                                 s * 257)));
      }

      // Two schedules in flight at once, completed in opposite orders on
      // odd/even ranks: the timed-park progress loop must drive both.
      std::int64_t a_in = r, a_out = -1;
      std::vector<std::uint8_t> b2 =
          r == 0 ? pattern(513, 99u) : std::vector<std::uint8_t>(513, 0);
      Request ra = world.iallreduce(&a_in, &a_out, 1, BasicKind::kLong,
                                    ReduceOp::kSum);
      Request rb = world.ibcast(b2.data(), b2.size(), 0);
      if (r % 2 == 0) {
        ra.wait();
        rb.wait();
      } else {
        rb.wait();
        ra.wait();
      }
      ASSERT_EQ(a_out, n * (n - 1) / 2);
      ASSERT_EQ(b2, pattern(513, 99u));
    }

    drain_to_rank0(world);
    if (r == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
      EXPECT_EQ(total(reg, "coll.nbc.barrier"), 3 * n);
      EXPECT_EQ(total(reg, "coll.nbc.bcast"), 2 * 3 * n);
      EXPECT_EQ(total(reg, "coll.nbc.allreduce"), 2 * 3 * n);
      EXPECT_EQ(total(reg, "coll.nbc.reduce"), 3 * n);
      EXPECT_EQ(total(reg, "coll.nbc.allgather"), 3 * n);
    }
  });
}

// --- Determinism regression --------------------------------------------------

struct ChaosFingerprint {
  std::vector<std::int64_t> final_vtimes;
  std::map<std::string, std::vector<std::int64_t>> fault_pvars;

  bool operator==(const ChaosFingerprint& o) const {
    return final_vtimes == o.final_vtimes && fault_pvars == o.fault_pvars;
  }
};

/// A fixed ping-pong workload under a drop+jitter plan, with the CPU
/// passthrough disabled (deterministic clock) and one rank per node so
/// every directed link has a single writer: the run's observable outcome
/// must be a pure function of the seed.
ChaosFingerprint run_seeded_chaos(std::uint64_t seed, const std::string& tag) {
  UniverseConfig c = chaos_cfg(2, 1, 0.1, 500, seed, tag);
  c.deterministic_clock = true;
  ChaosFingerprint fp;
  fp.final_vtimes.resize(2);
  Universe::launch(c, [&](Comm& world) {
    std::vector<std::uint8_t> buf(512);
    const auto mine = pattern(512, static_cast<unsigned>(world.rank()));
    for (int i = 0; i < 100; ++i) {
      if (world.rank() == 0) {
        world.send(mine.data(), mine.size(), 1, i);
        world.recv(buf.data(), buf.size(), 1, i);
      } else {
        world.recv(buf.data(), buf.size(), 0, i);
        world.send(mine.data(), mine.size(), 0, i);
      }
    }
    fp.final_vtimes[static_cast<std::size_t>(world.rank())] =
        world.vtime_ns();
    drain_to_rank0(world);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      for (const char* name :
           {"fault.data_drops", "fault.ack_drops", "fault.retransmits",
            "fault.dups", "fault.timeouts"}) {
        const obs::PvarId id = reg.find(name);
        fp.fault_pvars[name] = {reg.read(id, 0), reg.read(id, 1)};
      }
    }
  });
  return fp;
}

TEST(FaultDeterminismTest, SameSeedSameCountersAndClocks) {
  const ChaosFingerprint a = run_seeded_chaos(20260807, "det_a");
  const ChaosFingerprint b = run_seeded_chaos(20260807, "det_b");
  EXPECT_GT(a.fault_pvars.at("fault.retransmits")[0] +
                a.fault_pvars.at("fault.retransmits")[1],
            0)
      << "the plan must actually inject faults for this test to mean much";
  EXPECT_EQ(a.final_vtimes, b.final_vtimes);
  EXPECT_EQ(a.fault_pvars, b.fault_pvars);
}

TEST(FaultDeterminismTest, DifferentSeedsDiverge) {
  const ChaosFingerprint a = run_seeded_chaos(1, "seed1");
  const ChaosFingerprint b = run_seeded_chaos(2, "seed2");
  // 100 round trips x several attempts x a 500 ns jitter draw each: two
  // seeds agreeing on every draw is astronomically unlikely.
  EXPECT_FALSE(a == b) << "different seeds produced identical runs";
}

/// Nonblocking collectives under the same regime: one schedule
/// outstanding at a time (overlapped with local compute), so every post
/// and wait happens at a fixed program point in a fixed order and the
/// whole run — final clocks included — is a pure function of the seed.
ChaosFingerprint run_seeded_nbc_chaos(std::uint64_t seed,
                                      const std::string& tag) {
  UniverseConfig c = chaos_cfg(3, 1, 0.08, 400, seed, tag);
  c.deterministic_clock = true;
  c.suite = CollectiveSuite::kMv2;
  ChaosFingerprint fp;
  fp.final_vtimes.resize(3);
  Universe::launch(c, [&](Comm& world) {
    const int r = world.rank();
    const int n = world.size();
    for (int i = 0; i < 25; ++i) {
      std::vector<std::int64_t> in(32, r + i);
      std::vector<std::int64_t> out(32, 0);
      Request req = world.iallreduce(in.data(), out.data(), in.size(),
                                     BasicKind::kLong, ReduceOp::kSum);
      // Overlapped compute; under the deterministic clock it costs zero
      // virtual time, so it cannot perturb the fingerprint.
      volatile std::int64_t sink = 0;
      for (int k = 0; k < 1000; ++k) sink = sink + k;
      req.wait();
      for (const std::int64_t v : out) {
        ASSERT_EQ(v, static_cast<std::int64_t>(n) * i + n * (n - 1) / 2);
      }

      std::vector<std::uint8_t> bc =
          r == i % n ? pattern(777, static_cast<unsigned>(i))
                     : std::vector<std::uint8_t>(777, 0);
      world.ibcast(bc.data(), bc.size(), i % n).wait();
      ASSERT_EQ(bc, pattern(777, static_cast<unsigned>(i)));
    }
    fp.final_vtimes[static_cast<std::size_t>(r)] = world.vtime_ns();
    drain_to_rank0(world);
    if (r == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      for (const char* name :
           {"fault.data_drops", "fault.ack_drops", "fault.retransmits",
            "fault.dups", "fault.timeouts"}) {
        const obs::PvarId id = reg.find(name);
        fp.fault_pvars[name] = {reg.read(id, 0), reg.read(id, 1),
                                reg.read(id, 2)};
      }
    }
  });
  return fp;
}

TEST(FaultDeterminismTest, NbcSameSeedBitReproducible) {
  const ChaosFingerprint a = run_seeded_nbc_chaos(20260807, "nbc_det_a");
  const ChaosFingerprint b = run_seeded_nbc_chaos(20260807, "nbc_det_b");
  EXPECT_GT(a.fault_pvars.at("fault.retransmits")[0] +
                a.fault_pvars.at("fault.retransmits")[1] +
                a.fault_pvars.at("fault.retransmits")[2],
            0)
      << "the plan must actually inject faults for this test to mean much";
  EXPECT_EQ(a.final_vtimes, b.final_vtimes);
  EXPECT_EQ(a.fault_pvars, b.fault_pvars);
}

TEST(FaultDeterminismTest, NbcDifferentSeedsDiverge) {
  const ChaosFingerprint a = run_seeded_nbc_chaos(11, "nbc_seed11");
  const ChaosFingerprint b = run_seeded_nbc_chaos(12, "nbc_seed12");
  EXPECT_FALSE(a == b) << "different seeds produced identical NBC runs";
}

// --- Timeout paths (graceful degradation, not hangs) ------------------------

TEST(FaultTimeoutTest, FullDropLinkRaisesTransportTimeout) {
  UniverseConfig c = chaos_cfg(2, 1, 1.0, 0, 5, "full_drop");
  c.fabric.faults.delivery_timeout_ns = 2'000'000;  // 2 ms of virtual time
  EXPECT_THROW(
      Universe::launch(c,
                       [](Comm& world) {
                         char t = 7;
                         if (world.rank() == 0) {
                           world.send(&t, sizeof(t), 1, 0);
                         } else {
                           world.recv(&t, sizeof(t), 0, 0);
                         }
                       }),
      TransportTimeoutError);
}

TEST(FaultTimeoutTest, TimeoutDumpsFlightRecorderReport) {
  // A job dying on TransportTimeoutError must leave a black-box dump
  // naming the involved ranks and their last protocol events.
  UniverseConfig c = chaos_cfg(2, 1, 1.0, 0, 5, "flight_dump");
  c.fabric.faults.delivery_timeout_ns = 2'000'000;
  const std::string dump = testing::TempDir() + "flight_timeout.txt";
  std::remove(dump.c_str());
  c.obs.flight_dump_path = dump;
  EXPECT_THROW(
      Universe::launch(c,
                       [](Comm& world) {
                         char t = 7;
                         if (world.rank() == 0) {
                           world.send(&t, sizeof(t), 1, 0);
                         } else {
                           world.recv(&t, sizeof(t), 0, 0);
                         }
                       }),
      TransportTimeoutError);
  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "flight dump not written to " << dump;
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("flight recorder"), std::string::npos);
  EXPECT_NE(report.find("involved ranks: 0 1"), std::string::npos);
  EXPECT_NE(report.find("rank 0:"), std::string::npos);  // the sender...
  EXPECT_NE(report.find("rank 1:"), std::string::npos);  // ...and receiver
  EXPECT_NE(report.find("eager_send"), std::string::npos);
  EXPECT_NE(report.find("retransmit"), std::string::npos);
  EXPECT_NE(report.find("timeout"), std::string::npos);
  EXPECT_NE(report.find("post"), std::string::npos);
}

TEST(FaultTimeoutTest, FlightRecorderCanBeOptedOut) {
  UniverseConfig c = chaos_cfg(2, 1, 1.0, 0, 5, "flight_off");
  c.fabric.faults.delivery_timeout_ns = 2'000'000;
  const std::string dump = testing::TempDir() + "flight_off.txt";
  std::remove(dump.c_str());
  c.obs.flight_dump_path = dump;
  c.obs.flight_recorder = false;
  EXPECT_THROW(
      Universe::launch(c,
                       [](Comm& world) {
                         char t = 7;
                         if (world.rank() == 0) {
                           world.send(&t, sizeof(t), 1, 0);
                         } else {
                           world.recv(&t, sizeof(t), 0, 0);
                         }
                       }),
      TransportTimeoutError);
  EXPECT_FALSE(std::ifstream(dump).good())
      << "opted-out flight recorder must not dump";
}

TEST(FaultTimeoutTest, WaitSurfacesTimeoutOnBothSides) {
  // RTS direction (0->1) is clean; the CTS answer (1->0) is black-holed,
  // so the rendezvous times out after the handshake began. Both the
  // sender's wait and the receiver's recv must raise
  // TransportTimeoutError — and the job must not hang or abort.
  UniverseConfig c = chaos_cfg(2, 1, 0.0, 0, 5, "cts_drop");
  c.fabric.faults.parse_links("1>0:drop=1.0");
  c.fabric.faults.delivery_timeout_ns = 2'000'000;
  c.eager_limit = 64;  // 1 KB payload -> rendezvous
  bool sender_timed_out = false, receiver_timed_out = false;
  Universe::launch(c, [&](Comm& world) {
    std::vector<std::uint8_t> buf(1024);
    if (world.rank() == 0) {
      try {
        Request r = world.isend(buf.data(), buf.size(), 1, 0);
        r.wait();
      } catch (const TransportTimeoutError&) {
        sender_timed_out = true;
      }
    } else {
      try {
        world.recv(buf.data(), buf.size(), 0, 0);
      } catch (const TransportTimeoutError&) {
        receiver_timed_out = true;
      }
    }
  });
  EXPECT_TRUE(sender_timed_out);
  EXPECT_TRUE(receiver_timed_out);
}

TEST(FaultTimeoutTest, RecoveredDownWindowCompletesLateButCorrect) {
  UniverseConfig c = chaos_cfg(2, 1, 0.0, 0, 5, "down_window");
  c.fabric.faults.link_defaults.down_from_ns = 0;
  c.fabric.faults.link_defaults.down_until_ns = 200'000;
  c.fabric.faults.rto_ns = 50'000;
  c.deterministic_clock = true;  // the send leaves at exactly t=0
  Universe::launch(c, [&](Comm& world) {
    const auto payload = pattern(128, 3);
    if (world.rank() == 0) {
      world.send(payload.data(), payload.size(), 1, 0);
    } else {
      std::vector<std::uint8_t> buf(128);
      world.recv(buf.data(), buf.size(), 0, 0);
      EXPECT_EQ(buf, payload);
      // Attempts at t=0, 50us, 150us start inside the outage; the t=350us
      // retransmit is the first to cross. Arrival must reflect the wait.
      EXPECT_GE(world.vtime_ns(), 350'000);
    }
    drain_to_rank0(world);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      EXPECT_EQ(reg.read(reg.find("fault.data_drops"), 0), 3);
      EXPECT_EQ(reg.read(reg.find("fault.retransmits"), 0), 3);
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
    }
  });
}

// --- Zero-cost-off ------------------------------------------------------------

TEST(FaultZeroCostTest, FaultPvarsAbsentWhenDisabled) {
  UniverseConfig c = chaos_cfg(2, 1, /*drop=*/0.0, /*jitter=*/0, 1, "off");
  ASSERT_FALSE(c.fabric.faults.enabled());
  Universe::launch(c, [](Comm& world) {
    char t = 0;
    if (world.rank() == 0) {
      world.send(&t, sizeof(t), 1, 0);
    } else {
      world.recv(&t, sizeof(t), 0, 0);
    }
    world.barrier();
    // The pvar table of a fault-free job is identical to one built before
    // the fault layer existed: no fault.* rows at all.
    obs::PvarRegistry& reg = *world.pvars();
    EXPECT_FALSE(reg.find("fault.data_drops").valid());
    EXPECT_FALSE(reg.find("fault.retransmits").valid());
    EXPECT_FALSE(reg.find("fault.timeouts").valid());
    for (const auto& snap : reg.snapshot())
      EXPECT_TRUE(snap.name.rfind("fault.", 0) != 0)
          << "unexpected fault pvar in a fault-free job: " << snap.name;
  });
}

TEST(FaultZeroCostTest, InactivePlanBehavesIdenticallyToNoPlan) {
  // A seed alone (no drop/jitter/window/degradation) must not enable the
  // fault machinery: the virtual timeline is bit-identical to a default
  // run. Deterministic clock + one rank per node makes "bit-identical"
  // checkable as an exact vtime comparison.
  auto run = [](std::uint64_t seed) {
    UniverseConfig c;
    c.world_size = 2;
    c.fabric.ranks_per_node = 1;
    c.fabric.faults.seed = seed;
    c.obs = obs::ObsConfig{};
    c.deterministic_clock = true;
    std::vector<std::int64_t> vtimes(2);
    Universe::launch(c, [&](Comm& world) {
      std::vector<std::uint8_t> buf(256);
      for (int i = 0; i < 20; ++i) {
        if (world.rank() == 0) {
          world.send(buf.data(), buf.size(), 1, i);
          world.recv(buf.data(), buf.size(), 1, i);
        } else {
          world.recv(buf.data(), buf.size(), 0, i);
          world.send(buf.data(), buf.size(), 0, i);
        }
      }
      vtimes[static_cast<std::size_t>(world.rank())] = world.vtime_ns();
    });
    return vtimes;
  };
  EXPECT_EQ(run(1), run(987654321));
}

// --- One-sided traffic under drop/jitter plans -----------------------------

TEST(FaultRmaTest, PutAccumulateStreamSurvivesDropsWithExactAccounting) {
  // A put+accumulate stream over every droppable link: the RDMA path
  // rides the same reliable protocol as two-sided traffic, so the fault
  // books must balance over RMA-only traffic too — and the window
  // contents must come out exactly as a fault-free run would leave them
  // (the retransmit-dedup floors at work).
  UniverseConfig c = chaos_cfg(4, 1, 0.06, 400, 24680, "rma_chaos");
  constexpr int kEpochs = 12;
  constexpr std::size_t kSlice = 128;
  bool accounting_done = false;
  Universe::launch(c, [&](Comm& world) {
    const int n = world.size();
    const int me = world.rank();
    const std::size_t acc_off = static_cast<std::size_t>(n) * kSlice;
    Win win = world.win_allocate(acc_off + sizeof(std::int64_t));
    win.fence();
    for (int e = 0; e < kEpochs; ++e) {
      const std::int64_t one = 1;
      for (int t = 0; t < n; ++t) {
        if (t == me) continue;
        const auto payload =
            pattern(kSlice, static_cast<unsigned>(e * 100 + me));
        win.put(payload.data(), payload.size(), t,
                static_cast<std::size_t>(me) * kSlice);
        win.accumulate(&one, 1, Datatype::basic(BasicKind::kLong),
                       ReduceOp::kSum, t, acc_off);
      }
      win.fence();
      // Each peer's final-round slice and the shared counter are exact.
      for (int o = 0; o < n; ++o) {
        if (o == me) continue;
        const auto* mem = static_cast<const std::uint8_t*>(win.base());
        const auto want =
            pattern(kSlice, static_cast<unsigned>(e * 100 + o));
        EXPECT_EQ(0, std::memcmp(mem + static_cast<std::size_t>(o) * kSlice,
                                 want.data(), kSlice))
            << "epoch " << e << ": slice from origin " << o
            << " corrupted under faults";
      }
      std::int64_t count;
      std::memcpy(&count, static_cast<const std::uint8_t*>(win.base()) +
                              acc_off, sizeof(count));
      EXPECT_EQ(count, static_cast<std::int64_t>(e + 1) * (n - 1))
          << "accumulate lost or double-applied under faults";
      // Peers must not race ahead into the next epoch's puts while this
      // rank is still reading its own window.
      world.barrier();
    }
    drain_to_rank0(world);
    if (me == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
      EXPECT_GT(total(reg, "fault.data_drops") +
                    total(reg, "fault.ack_drops"),
                0)
          << "a 6% plan over this much RMA traffic should drop something";
      EXPECT_EQ(total(reg, "fault.timeouts"), 0);
      EXPECT_EQ(total(reg, "rma.put_bytes"),
                static_cast<std::int64_t>(kEpochs) * 4 * 3 * kSlice);
      accounting_done = true;
    }
    world.barrier();
    win.free();
  });
  EXPECT_TRUE(accounting_done);
}

TEST(FaultRmaTest, LockUnlockUnderJitterKeepsRmwAtomic) {
  // Passive target under jitter: n-1 ranks hammer a fetch_op ticket
  // counter plus an exclusive-lock read-modify-write on rank 0's window;
  // neither may lose an update however the retransmits land.
  UniverseConfig c = chaos_cfg(3, 1, 0.05, 600, 13579, "rma_lock_chaos");
  constexpr int kIters = 15;
  Universe::launch(c, [&](Comm& world) {
    const int n = world.size();
    Win win = world.win_allocate(2 * sizeof(std::int64_t));
    win.fence();
    win.fence();  // window contents zeroed and visible everywhere
    for (int i = 0; i < kIters; ++i) {
      const std::int64_t one = 1;
      std::int64_t ticket = -1;
      win.fetch_op(&one, &ticket, BasicKind::kLong, ReduceOp::kSum, 0, 0);
      EXPECT_GE(ticket, 0);
      EXPECT_LT(ticket, static_cast<std::int64_t>(n) * kIters);
      win.lock(LockType::kExclusive, 0);
      std::int64_t cur;
      win.get(&cur, sizeof(cur), 0, sizeof(std::int64_t));
      ++cur;
      win.put(&cur, sizeof(cur), 0, sizeof(std::int64_t));
      win.unlock(0);
    }
    world.barrier();
    if (world.rank() == 0) {
      const auto* mem = static_cast<const std::int64_t*>(win.base());
      EXPECT_EQ(mem[0], static_cast<std::int64_t>(n) * kIters)
          << "fetch_op tickets lost under faults";
      EXPECT_EQ(mem[1], static_cast<std::int64_t>(n) * kIters)
          << "locked RMW lost an update under faults";
      obs::PvarRegistry& reg = *world.pvars();
      expect_fault_accounting(reg);
    }
    world.barrier();
    win.free();
  });
}

}  // namespace
}  // namespace jhpc::minimpi
