// Configuration plumbing: environment overrides, suite profiles, run
// options of both binding libraries.
#include <gtest/gtest.h>

#include <cstdlib>

#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/minimpi/universe.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/netsim/fabric.hpp"
#include "jhpc/ompij/ompij.hpp"

namespace jhpc {
namespace {

class EnvOverrideTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* v :
         {"JHPC_PPN", "JHPC_INTER_LAT_NS", "JHPC_INTER_BW_MBPS",
          "JHPC_INTRA_LAT_NS", "JHPC_EAGER_LIMIT", "JHPC_JNI_CROSS_NS",
          "JHPC_HEAP_MB", "JHPC_PLACEMENT", "JHPC_POOL_MIN_CAPACITY",
          "JHPC_POOL_MAX_BUFFERS"}) {
      ::unsetenv(v);
    }
  }
};

TEST_F(EnvOverrideTest, FabricFromEnv) {
  ::setenv("JHPC_PPN", "8", 1);
  ::setenv("JHPC_INTER_LAT_NS", "2500", 1);
  ::setenv("JHPC_INTER_BW_MBPS", "5000", 1);
  ::setenv("JHPC_INTRA_LAT_NS", "50", 1);
  const auto cfg = netsim::FabricConfig::from_env();
  EXPECT_EQ(cfg.ranks_per_node, 8);
  EXPECT_EQ(cfg.inter_latency_ns, 2500);
  EXPECT_DOUBLE_EQ(cfg.inter_bandwidth_mbps, 5000.0);
  EXPECT_EQ(cfg.intra_latency_ns, 50);
}

TEST_F(EnvOverrideTest, FabricDefaultsWhenUnset) {
  const auto cfg = netsim::FabricConfig::from_env();
  EXPECT_EQ(cfg.ranks_per_node, 0);
  EXPECT_EQ(cfg.inter_latency_ns, 1800);
  EXPECT_DOUBLE_EQ(cfg.inter_bandwidth_mbps, 12500.0);
}

TEST_F(EnvOverrideTest, PlacementFromEnv) {
  ::setenv("JHPC_PLACEMENT", "rr", 1);
  EXPECT_EQ(netsim::FabricConfig::from_env().placement,
            netsim::Placement::kRoundRobin);
  ::setenv("JHPC_PLACEMENT", "block", 1);
  EXPECT_EQ(netsim::FabricConfig::from_env().placement,
            netsim::Placement::kBlock);
  ::setenv("JHPC_PLACEMENT", "diagonal", 1);
  EXPECT_THROW(netsim::FabricConfig::from_env(), InvalidArgumentError);
  ::unsetenv("JHPC_PLACEMENT");
}

TEST_F(EnvOverrideTest, UniverseEagerLimitFromEnv) {
  ::setenv("JHPC_EAGER_LIMIT", "4096", 1);
  minimpi::UniverseConfig cfg;
  cfg.apply_env();
  EXPECT_EQ(cfg.eager_limit, 4096u);
}

TEST_F(EnvOverrideTest, JvmConfigFromEnv) {
  ::setenv("JHPC_HEAP_MB", "16", 1);
  ::setenv("JHPC_JNI_CROSS_NS", "123", 1);
  const auto cfg = minijvm::JvmConfig::from_env();
  EXPECT_EQ(cfg.heap_bytes, 16u << 20);
  EXPECT_EQ(cfg.jni_crossing_ns, 123);
}

TEST_F(EnvOverrideTest, PoolConfigFromEnv) {
  ::setenv("JHPC_POOL_MIN_CAPACITY", "1024", 1);
  ::setenv("JHPC_POOL_MAX_BUFFERS", "7", 1);
  const auto cfg = mpjbuf::FactoryConfig::from_env();
  EXPECT_EQ(cfg.min_capacity, 1024u);
  EXPECT_EQ(cfg.max_pooled_buffers, 7u);
}

TEST(SuiteProfileTest, Mv2jRunsOnMv2WithCheapShmChannel) {
  mv2j::RunOptions o;
  const auto cfg = o.universe_config();
  EXPECT_EQ(cfg.suite, minimpi::CollectiveSuite::kMv2);
  EXPECT_EQ(cfg.intra_send_overhead_ns, 0);
}

TEST(SuiteProfileTest, OmpijRunsOnBasicWithCostlierShmChannel) {
  ompij::RunOptions o;
  const auto cfg = o.universe_config();
  EXPECT_EQ(cfg.suite, minimpi::CollectiveSuite::kOmpiBasic);
  EXPECT_GT(cfg.intra_send_overhead_ns, 0);
}

// Both bindings can swap the hierarchical engine in underneath without
// changing their library identity/profile (docs/API.md).
TEST(SuiteProfileTest, HierCollectivesOverrideSelectsHierSuite) {
  mv2j::RunOptions m;
  m.hier_collectives = true;
  EXPECT_EQ(m.universe_config().suite, minimpi::CollectiveSuite::kHier);
  EXPECT_EQ(m.universe_config().intra_send_overhead_ns, 0);
  ompij::RunOptions o;
  o.hier_collectives = true;
  EXPECT_EQ(o.universe_config().suite, minimpi::CollectiveSuite::kHier);
}

TEST(SuiteProfileTest, IntraOverheadChargedInVirtualTime) {
  // Two universes differing only in the shm-channel profile: the costlier
  // one must measure a visibly higher intra-node ping-pong in vtime.
  auto measure = [](std::int64_t overhead_ns) {
    minimpi::UniverseConfig cfg;
    cfg.world_size = 2;
    cfg.intra_send_overhead_ns = overhead_ns;
    std::int64_t out = 0;
    minimpi::Universe::launch(cfg, [&](minimpi::Comm& world) {
      char b = 0;
      world.barrier();
      const auto t0 = world.vtime_ns();
      for (int i = 0; i < 50; ++i) {
        if (world.rank() == 0) {
          world.send(&b, 1, 1, 0);
          world.recv(&b, 1, 1, 0);
        } else {
          world.recv(&b, 1, 0, 0);
          world.send(&b, 1, 0, 0);
        }
      }
      if (world.rank() == 0) out = (world.vtime_ns() - t0) / 50;
    });
    return out;
  };
  const auto cheap = measure(0);
  const auto costly = measure(10'000);
  EXPECT_GT(costly, cheap + 15'000)
      << "2 x 10 us per round trip must be visible";
}

}  // namespace
}  // namespace jhpc
