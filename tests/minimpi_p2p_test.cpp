// Point-to-point semantics of the minimpi substrate: blocking and
// non-blocking transfer, matching (wildcards, ordering), eager vs
// rendezvous protocols, probe, sendrecv, error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

UniverseConfig cfg(int n) {
  UniverseConfig c;
  c.world_size = n;
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n, unsigned seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>((i * 31 + seed * 17) & 0xff);
  return v;
}

TEST(P2PTest, BlockingSendRecvSmall) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto msg = pattern(64, 1);
    if (world.rank() == 0) {
      world.send(msg.data(), msg.size(), 1, 7);
    } else {
      std::vector<std::uint8_t> buf(64, 0);
      Status st;
      world.recv(buf.data(), buf.size(), 0, 7, &st);
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count_bytes, 64u);
    }
  });
}

TEST(P2PTest, BlockingSendRecvRendezvousSize) {
  // Well above the default eager limit: exercises the rendezvous path.
  Universe::launch(cfg(2), [](Comm& world) {
    const std::size_t n = 1 << 20;
    if (world.rank() == 0) {
      const auto msg = pattern(n, 2);
      world.send(msg.data(), msg.size(), 1, 0);
    } else {
      std::vector<std::uint8_t> buf(n, 0);
      world.recv(buf.data(), buf.size(), 0, 0);
      EXPECT_EQ(buf, pattern(n, 2));
    }
  });
}

TEST(P2PTest, ZeroByteMessage) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 0) {
      world.send(nullptr, 0, 1, 3);
    } else {
      Status st;
      world.recv(nullptr, 0, 0, 3, &st);
      EXPECT_EQ(st.count_bytes, 0u);
    }
  });
}

TEST(P2PTest, SendBeforeRecvPostedUnexpectedQueue) {
  // Rank 1 delays its receive so the message parks in the unexpected
  // queue first.
  Universe::launch(cfg(2), [](Comm& world) {
    int v = 42;
    if (world.rank() == 0) {
      world.send(&v, sizeof(v), 1, 0);
      world.barrier();
    } else {
      world.barrier();  // ensure the send happened first
      int got = 0;
      world.recv(&got, sizeof(got), 0, 0);
      EXPECT_EQ(got, 42);
    }
  });
}

TEST(P2PTest, AnySourceWildcard) {
  Universe::launch(cfg(4), [](Comm& world) {
    if (world.rank() == 0) {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        int v = 0;
        Status st;
        world.recv(&v, sizeof(v), kAnySource, 5, &st);
        EXPECT_EQ(st.source + 100, v);
        sum += v;
      }
      EXPECT_EQ(sum, 101 + 102 + 103);
    } else {
      const int v = world.rank() + 100;
      world.send(&v, sizeof(v), 0, 5);
    }
  });
}

TEST(P2PTest, AnyTagWildcardReportsActualTag) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 0) {
      int v = 9;
      world.send(&v, sizeof(v), 1, 123);
    } else {
      int got = 0;
      Status st;
      world.recv(&got, sizeof(got), 0, kAnyTag, &st);
      EXPECT_EQ(st.tag, 123);
      EXPECT_EQ(got, 9);
    }
  });
}

TEST(P2PTest, TagSelectivityHoldsBackNonMatching) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 0) {
      int a = 1, b = 2;
      world.send(&a, sizeof(a), 1, 10);
      world.send(&b, sizeof(b), 1, 20);
    } else {
      int got = 0;
      // Receive the *second* message first by tag.
      world.recv(&got, sizeof(got), 0, 20);
      EXPECT_EQ(got, 2);
      world.recv(&got, sizeof(got), 0, 10);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(P2PTest, NonOvertakingSameTag) {
  // Messages with identical envelopes must arrive in send order.
  Universe::launch(cfg(2), [](Comm& world) {
    constexpr int kN = 200;
    if (world.rank() == 0) {
      for (int i = 0; i < kN; ++i) world.send(&i, sizeof(i), 1, 0);
    } else {
      for (int i = 0; i < kN; ++i) {
        int got = -1;
        world.recv(&got, sizeof(got), 0, 0);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(P2PTest, NonBlockingWindowedExchange) {
  // The osu_bw pattern: a window of isends against pre-posted irecvs.
  Universe::launch(cfg(2), [](Comm& world) {
    constexpr int kWindow = 32;
    const std::size_t n = 4096;
    if (world.rank() == 0) {
      const auto msg = pattern(n, 3);
      std::vector<Request> reqs;
      for (int i = 0; i < kWindow; ++i)
        reqs.push_back(world.isend(msg.data(), n, 1, 1));
      Request::wait_all(reqs);
      char ack = 0;
      world.recv(&ack, 1, 1, 2);
    } else {
      std::vector<std::vector<std::uint8_t>> bufs(
          kWindow, std::vector<std::uint8_t>(n));
      std::vector<Request> reqs;
      for (int i = 0; i < kWindow; ++i)
        reqs.push_back(world.irecv(bufs[static_cast<std::size_t>(i)].data(),
                                   n, 0, 1));
      Request::wait_all(reqs);
      for (const auto& b : bufs) EXPECT_EQ(b, pattern(n, 3));
      char ack = 1;
      world.send(&ack, 1, 0, 2);
    }
  });
}

TEST(P2PTest, IsendRendezvousCompletesAfterMatch) {
  Universe::launch(cfg(2), [](Comm& world) {
    const std::size_t n = 256 * 1024;  // rendezvous
    if (world.rank() == 0) {
      const auto msg = pattern(n, 4);
      Request r = world.isend(msg.data(), n, 1, 0);
      world.barrier();  // receiver posts after the barrier
      r.wait();
    } else {
      world.barrier();
      std::vector<std::uint8_t> buf(n);
      world.recv(buf.data(), n, 0, 0);
      EXPECT_EQ(buf, pattern(n, 4));
    }
  });
}

TEST(P2PTest, TestPollsToCompletion) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 0) {
      int v = 5;
      world.send(&v, sizeof(v), 1, 0);
    } else {
      int got = 0;
      Request r = world.irecv(&got, sizeof(got), 0, 0);
      Status st;
      while (!r.test(&st)) {
      }
      EXPECT_EQ(got, 5);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2PTest, WaitAnyFindsTheArrivedOne) {
  Universe::launch(cfg(3), [](Comm& world) {
    if (world.rank() == 0) {
      int a = 0, b = 0;
      std::vector<Request> reqs;
      reqs.push_back(world.irecv(&a, sizeof(a), 1, 0));
      reqs.push_back(world.irecv(&b, sizeof(b), 2, 0));
      Status st;
      const auto idx = Request::wait_any(reqs, &st);
      EXPECT_TRUE(idx == 0 || idx == 1);
      Request::wait_all(reqs);
      EXPECT_EQ(a, 101);
      EXPECT_EQ(b, 102);
    } else {
      const int v = 100 + world.rank();
      world.send(&v, sizeof(v), 0, 0);
    }
  });
}

TEST(P2PTest, SendRecvMirrorDoesNotDeadlock) {
  Universe::launch(cfg(2), [](Comm& world) {
    const std::size_t n = 512 * 1024;  // rendezvous-sized both ways
    const auto mine = pattern(n, static_cast<unsigned>(world.rank()));
    std::vector<std::uint8_t> theirs(n);
    const int peer = 1 - world.rank();
    world.sendrecv(mine.data(), n, peer, 0, theirs.data(), n, peer, 0);
    EXPECT_EQ(theirs, pattern(n, static_cast<unsigned>(peer)));
  });
}

TEST(P2PTest, ProbeSeesEnvelopeWithoutConsuming) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 0) {
      int v = 77;
      world.send(&v, sizeof(v), 1, 13);
    } else {
      const Status st = world.probe(0, 13);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 13);
      EXPECT_EQ(st.count_bytes, sizeof(int));
      int got = 0;
      world.recv(&got, sizeof(got), 0, 13);
      EXPECT_EQ(got, 77);
    }
  });
}

TEST(P2PTest, IprobeReturnsFalseWhenNothingPending) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 1) {
      Status st;
      EXPECT_FALSE(world.iprobe(0, 99, &st));
    }
    world.barrier();
  });
}

TEST(P2PTest, TruncationThrowsOnReceiver) {
  Universe::launch(cfg(2), [](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::uint8_t> big(128, 1);
      world.send(big.data(), big.size(), 1, 0);
    } else {
      std::vector<std::uint8_t> small(16);
      EXPECT_THROW(world.recv(small.data(), small.size(), 0, 0),
                   jhpc::Error);
    }
  });
}

TEST(P2PTest, InvalidPeerThrows) {
  Universe::launch(cfg(2), [](Comm& world) {
    int v = 0;
    EXPECT_THROW(world.send(&v, sizeof(v), 5, 0), InvalidArgumentError);
    EXPECT_THROW(world.recv(&v, sizeof(v), -3, 0), InvalidArgumentError);
    EXPECT_THROW(world.send(&v, sizeof(v), 1 - world.rank(), -1),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(P2PTest, SelfSendWorks) {
  Universe::launch(cfg(2), [](Comm& world) {
    // Eager self-send: buffered, then received.
    const int v = world.rank() + 1000;
    world.send(&v, sizeof(v), world.rank(), 0);
    int got = 0;
    world.recv(&got, sizeof(got), world.rank(), 0);
    EXPECT_EQ(got, v);
  });
}

TEST(P2PTest, NullRequestWaitIsNoop) {
  Request r;
  EXPECT_FALSE(r.valid());
  Status st;
  r.wait(&st);
  EXPECT_TRUE(r.test());
}

TEST(P2PTest, ExceptionInOneRankAbortsTheJob) {
  UniverseConfig c = cfg(2);
  Universe u(c);
  EXPECT_THROW(u.run([](Comm& world) {
                 if (world.rank() == 0) {
                   throw std::runtime_error("rank0 exploded");
                 }
                 // Rank 1 blocks forever; the abort must wake it.
                 int v = 0;
                 world.recv(&v, sizeof(v), 0, 0);
               }),
               std::runtime_error);
}

TEST(P2PTest, UniverseIsReusableAcrossRuns) {
  Universe u(cfg(2));
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> sum{0};
    u.run([&](Comm& world) {
      int v = world.rank();
      int got = 0;
      const int peer = 1 - world.rank();
      world.sendrecv(&v, sizeof(v), peer, 0, &got, sizeof(got), peer, 0);
      sum += got;
    });
    EXPECT_EQ(sum.load(), 1);
  }
}

TEST(P2PTest, ManyRanksRingExchange) {
  // Oversubscription sanity: 16 rank threads on any core count.
  Universe::launch(cfg(16), [](Comm& world) {
    const int n = world.size();
    const int right = (world.rank() + 1) % n;
    const int left = (world.rank() - 1 + n) % n;
    int token = world.rank();
    for (int step = 0; step < n; ++step) {
      int incoming = -1;
      world.sendrecv(&token, sizeof(token), right, 0, &incoming,
                     sizeof(incoming), left, 0);
      token = incoming;
    }
    // After n hops the token returns home.
    EXPECT_EQ(token, world.rank());
  });
}

TEST(PersistentTest, StartWaitCyclesReuseTheRequest) {
  Universe::launch(cfg(2), [](Comm& world) {
    constexpr int kRounds = 30;
    std::int32_t payload = 0;
    if (world.rank() == 0) {
      Prequest ps = world.send_init(&payload, sizeof(payload), 1, 4);
      for (int i = 0; i < kRounds; ++i) {
        payload = i * 11;
        ps.start();
        ps.wait();
        world.barrier();
      }
    } else {
      std::int32_t got = -1;
      Prequest pr = world.recv_init(&got, sizeof(got), 0, 4);
      for (int i = 0; i < kRounds; ++i) {
        pr.start();
        Status st;
        pr.wait(&st);
        EXPECT_EQ(got, i * 11);
        EXPECT_EQ(st.count_bytes, sizeof(std::int32_t));
        world.barrier();
      }
    }
  });
}

TEST(PersistentTest, StartAllAndRendezvousSizes) {
  UniverseConfig c = cfg(2);
  c.eager_limit = 64;  // force the rendezvous path
  Universe::launch(c, [](Comm& world) {
    const std::size_t n = 4096;
    std::vector<std::uint8_t> a(n), b(n);
    if (world.rank() == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<std::uint8_t>(i);
        b[i] = static_cast<std::uint8_t>(i * 3);
      }
      std::array<Prequest, 2> reqs{world.send_init(a.data(), n, 1, 1),
                                   world.send_init(b.data(), n, 1, 2)};
      Prequest::start_all(reqs);
      for (auto& r : reqs) r.wait();
    } else {
      std::array<Prequest, 2> reqs{world.recv_init(a.data(), n, 0, 1),
                                   world.recv_init(b.data(), n, 0, 2)};
      Prequest::start_all(reqs);
      for (auto& r : reqs) r.wait();
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a[i], static_cast<std::uint8_t>(i));
        ASSERT_EQ(b[i], static_cast<std::uint8_t>(i * 3));
      }
    }
  });
}

TEST(PersistentTest, DoubleStartRejected) {
  UniverseConfig c = cfg(2);
  c.eager_limit = 4;  // keep the first start active (rendezvous)
  Universe u(c);
  EXPECT_THROW(u.run([](Comm& world) {
                 if (world.rank() == 0) {
                   std::vector<std::uint8_t> buf(64);
                   Prequest p = world.send_init(buf.data(), 64, 1, 0);
                   p.start();
                   p.start();  // previous instance still active
                 } else {
                   std::vector<std::uint8_t> buf(64);
                   world.recv(buf.data(), 64, 0, 0);
                 }
               }),
               InvalidArgumentError);
}

class EagerLimitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EagerLimitTest, RoundTripAcrossProtocolBoundary) {
  // Sweep message sizes around the eager/rendezvous switch with a small
  // limit so both protocols are exercised cheaply.
  UniverseConfig c = cfg(2);
  c.eager_limit = 1024;
  const std::size_t n = GetParam();
  Universe::launch(c, [n](Comm& world) {
    if (world.rank() == 0) {
      const auto msg = pattern(n, 9);
      world.send(msg.data(), n, 1, 0);
    } else {
      std::vector<std::uint8_t> buf(n + 1, 0xAA);
      Status st;
      world.recv(buf.data(), n, 0, 0, &st);
      EXPECT_EQ(st.count_bytes, n);
      const auto want = pattern(n, 9);
      EXPECT_TRUE(std::memcmp(buf.data(), want.data(), n) == 0);
      EXPECT_EQ(buf[n], 0xAA);  // no overwrite past the message
    }
  });
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, EagerLimitTest,
                         ::testing::Values(1, 512, 1023, 1024, 1025, 4096,
                                           65536));

}  // namespace
}  // namespace jhpc::minimpi
