// The Open MPI-J baseline: same API as MVAPICH2-J, but per-call JNI array
// copies, no arrays with non-blocking p2p, and the basic collective suite.
#include <gtest/gtest.h>

#include <vector>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/ompij/ompij.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::ompij {
namespace {

RunOptions fast_opts(int ranks) {
  RunOptions o;
  o.ranks = ranks;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;
  return o;
}

TEST(OmpijBufferTest, SendRecvRoundTrip) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(512);
    if (world.getRank() == 0) {
      for (int i = 0; i < 128; ++i)
        buf.put_int(static_cast<std::size_t>(i) * 4, i - 7);
      world.send(buf, 128, mv2j::INT, 1, 3);
    } else {
      Status st = world.recv(buf, 128, mv2j::INT, 0, 3);
      EXPECT_EQ(st.getCount(mv2j::INT), 128);
      for (int i = 0; i < 128; ++i)
        EXPECT_EQ(buf.get_int(static_cast<std::size_t>(i) * 4), i - 7);
    }
  });
}

TEST(OmpijBufferTest, NonBlockingBuffersWork) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(1024);
    if (world.getRank() == 0) {
      Request r = world.iSend(buf, 1024, mv2j::BYTE, 1, 0);
      r.waitFor();
    } else {
      Request r = world.iRecv(buf, 1024, mv2j::BYTE, 0, 0);
      Status st = r.waitFor();
      EXPECT_EQ(st.bytes(), 1024u);
    }
  });
}

TEST(OmpijArrayTest, BlockingSendRecvViaJniCopies) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jint>(64);
      for (std::size_t i = 0; i < 64; ++i) arr[i] = static_cast<int>(2 * i);
      world.send(arr, 64, mv2j::INT, 1, 0);
    } else {
      auto arr = env.newArray<minijvm::jint>(64);
      world.recv(arr, 64, mv2j::INT, 0, 0);
      for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(arr[i], static_cast<int>(2 * i));
    }
    // The Get/Release pairs must be balanced: no leaked native copies.
    EXPECT_EQ(env.jvm().jni().outstanding_copies(), 0u);
  });
}

TEST(OmpijArrayTest, NonBlockingArraysThrowUnsupported) {
  // The restriction the paper calls out repeatedly: no Java arrays with
  // non-blocking point-to-point in Open MPI-J — which is why OMB-J cannot
  // produce array bandwidth numbers for it (Figures 7/8/12/13).
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto arr = env.newArray<minijvm::jint>(16);
    const int peer = 1 - world.getRank();
    EXPECT_THROW(world.iSend(arr, 16, mv2j::INT, peer, 0),
                 UnsupportedOperationError);
    EXPECT_THROW(world.iRecv(arr, 16, mv2j::INT, peer, 0),
                 UnsupportedOperationError);
    world.barrier();
  });
}

TEST(OmpijCollTest, BcastAllReduceBothApis) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();

    auto buf = env.newDirectBuffer(16);
    if (world.getRank() == 0) buf.put_double(0, 9.75);
    world.bcast(buf, 8, mv2j::BYTE, 0);
    EXPECT_DOUBLE_EQ(buf.get_double(0), 9.75);

    auto arr = env.newArray<minijvm::jint>(8);
    if (world.getRank() == 3)
      for (std::size_t i = 0; i < 8; ++i) arr[i] = static_cast<int>(i + 40);
    world.bcast(arr, 8, mv2j::INT, 3);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(arr[i], static_cast<int>(i + 40));

    auto s = env.newArray<minijvm::jlong>(2);
    auto r = env.newArray<minijvm::jlong>(2);
    s[0] = world.getRank();
    s[1] = 1;
    world.allReduce(s, r, 2, mv2j::LONG, mv2j::SUM);
    EXPECT_EQ(r[0], n * (n - 1) / 2);
    EXPECT_EQ(r[1], n);
    EXPECT_EQ(env.jvm().jni().outstanding_copies(), 0u);
  });
}

TEST(OmpijCollTest, GatherScatterAllGatherAllToAllArrays) {
  run(fast_opts(3), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();

    auto mine = env.newArray<minijvm::jint>(2);
    mine[0] = me;
    mine[1] = me * me;
    auto all = env.newArray<minijvm::jint>(static_cast<std::size_t>(2 * n));
    world.gather(mine, 2, mv2j::INT, all, 0);
    if (me == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * r);
      }
    }
    auto back = env.newArray<minijvm::jint>(2);
    world.scatter(all, 2, mv2j::INT, back, 0);
    if (me == 0 || true) {
      // Data is only meaningful if root had it; all ranks got their slice
      // of root's gathered array (valid only on root=0 content).
    }
    world.barrier();

    auto ag = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    auto agall = env.newArray<minijvm::jint>(static_cast<std::size_t>(n * n));
    for (int i = 0; i < n; ++i) ag[static_cast<std::size_t>(i)] = me;
    world.allGather(ag, n, mv2j::INT, agall);
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(agall[static_cast<std::size_t>(r * n + i)], r);

    auto sm = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    auto rm = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      sm[static_cast<std::size_t>(r)] = me * 1000 + r;
    world.allToAll(sm, 1, mv2j::INT, rm);
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(rm[static_cast<std::size_t>(r)], r * 1000 + me);
    EXPECT_EQ(env.jvm().jni().outstanding_copies(), 0u);
  });
}

TEST(OmpijCollTest, ReduceScatterBlockAndScan) {
  run(fast_opts(3), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();

    auto send = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < send.length(); ++i)
      send[i] = me + 1;
    auto block = env.newArray<minijvm::jint>(1);
    world.reduceScatterBlock(send, block, 1, mv2j::INT, mv2j::SUM);
    EXPECT_EQ(block[0], n * (n + 1) / 2);

    auto sa = env.newArray<minijvm::jlong>(1);
    auto ra = env.newArray<minijvm::jlong>(1);
    sa[0] = 2;
    world.scan(sa, ra, 1, mv2j::LONG, mv2j::PROD);
    EXPECT_EQ(ra[0], 1ll << (me + 1));
    EXPECT_EQ(env.jvm().jni().outstanding_copies(), 0u);
  });
}

TEST(OmpijProbeTest, ProbeSeesPendingMessage) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jbyte>(16);
      world.send(arr, 16, mv2j::BYTE, 1, 5);
    } else {
      Status st = world.probe(mv2j::ANY_SOURCE, mv2j::ANY_TAG);
      EXPECT_EQ(st.getSource(), 0);
      EXPECT_EQ(st.getTag(), 5);
      auto arr = env.newArray<minijvm::jbyte>(16);
      world.recv(arr, 16, mv2j::BYTE, 0, 5);
    }
  });
}

TEST(OmpijMgmtTest, DupSplitWork) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    Comm dup = world.dup();
    dup.barrier();
    Comm sub = world.split(world.getRank() < 2 ? 0 : 1, 0);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.getSize(), 2);
  });
}

TEST(OmpijSuiteTest, NativeSuiteIsBasic) {
  run(fast_opts(2), [](Env& env) {
    EXPECT_EQ(env.COMM_WORLD().native().suite(),
              minimpi::CollectiveSuite::kOmpiBasic);
  });
}

TEST(Mv2jSuiteTest, NativeSuiteIsMv2) {
  mv2j::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    EXPECT_EQ(env.COMM_WORLD().native().suite(),
              minimpi::CollectiveSuite::kMv2);
  });
}

}  // namespace
}  // namespace jhpc::ompij
