// The managed heap and its moving collector: the property everything else
// in this reproduction rests on is that GC really relocates objects.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {
namespace {

JvmConfig small_cfg(std::size_t heap_bytes = 1 << 20) {
  JvmConfig c;
  c.heap_bytes = heap_bytes;
  c.jni_crossing_ns = 0;  // keep unit tests fast
  return c;
}

TEST(HeapTest, AllocateZeroInitialised) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(100);
  EXPECT_EQ(a.length(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0);
}

TEST(HeapTest, ElementReadWrite) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jdouble>(8);
  for (std::size_t i = 0; i < 8; ++i) a[i] = 1.5 * static_cast<double>(i);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(a[i], 1.5 * static_cast<double>(i));
}

TEST(HeapTest, BoundsChecked) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(4);
  EXPECT_THROW(a[4], jhpc::InvalidArgumentError);
  JArray<jint> null_arr;
  EXPECT_THROW(null_arr[0], jhpc::InvalidArgumentError);
}

TEST(HeapTest, GcMovesObjectsAndPreservesContents) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(1000);
  for (std::size_t i = 0; i < 1000; ++i) a[i] = static_cast<jint>(i * 3);
  const std::byte* before = a.raw_address();
  ASSERT_TRUE(jvm.gc());
  const std::byte* after = a.raw_address();
  EXPECT_NE(before, after) << "a copying GC must relocate the object";
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(a[i], static_cast<jint>(i * 3));
  EXPECT_EQ(jvm.stats().collections, 1u);
  EXPECT_GE(jvm.stats().objects_moved, 1u);
}

TEST(HeapTest, StalePointerIsGenuinelyStale) {
  // The hazard the paper describes: a raw pointer taken before a GC does
  // not point at the array afterwards.
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(64);
  a[0] = 42;
  auto* stale = reinterpret_cast<jint*>(a.raw_address());
  ASSERT_TRUE(jvm.gc());
  // The live object moved; the old location is in the from-space.
  EXPECT_NE(reinterpret_cast<jint*>(a.raw_address()), stale);
  EXPECT_EQ(a[0], 42);
}

TEST(HeapTest, AllocationTriggersCollection) {
  // Heap of 1 MB -> 512 KB semispaces. Allocate-and-drop until a GC must
  // happen.
  Jvm jvm(small_cfg(1 << 20));
  for (int i = 0; i < 64; ++i) {
    auto junk = jvm.new_array<jbyte>(64 * 1024);  // dropped each loop
    (void)junk;
  }
  EXPECT_GE(jvm.stats().collections, 1u);
}

TEST(HeapTest, LiveDataSurvivesAllocationPressure) {
  Jvm jvm(small_cfg(1 << 20));
  auto keep = jvm.new_array<jint>(10000);
  for (std::size_t i = 0; i < keep.length(); ++i)
    keep[i] = static_cast<jint>(7 * i + 1);
  for (int round = 0; round < 50; ++round) {
    auto junk = jvm.new_array<jbyte>(100 * 1024);
    (void)junk;
  }
  for (std::size_t i = 0; i < keep.length(); ++i)
    ASSERT_EQ(keep[i], static_cast<jint>(7 * i + 1));
}

TEST(HeapTest, OutOfMemoryWhenLiveSetExceedsSemispace) {
  Jvm jvm(small_cfg(1 << 20));  // 512 KB usable
  std::vector<JArray<jbyte>> hold;
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i)
          hold.push_back(jvm.new_array<jbyte>(64 * 1024));
      },
      OutOfMemoryError);
}

TEST(HeapTest, ReleasedObjectsAreReclaimed) {
  Jvm jvm(small_cfg(1 << 20));
  const std::size_t live0 = jvm.stats().live_bytes;
  {
    auto a = jvm.new_array<jbyte>(100 * 1024);
    EXPECT_EQ(jvm.stats().live_bytes, live0 + 100 * 1024);
  }
  EXPECT_EQ(jvm.stats().live_bytes, live0);
  // After release + GC the space is reusable indefinitely.
  for (int i = 0; i < 100; ++i) {
    auto b = jvm.new_array<jbyte>(100 * 1024);
    (void)b;
  }
  SUCCEED();
}

TEST(HeapTest, SharedHandleSemantics) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(4);
  auto b = a;  // Java reference copy
  b[2] = 99;
  EXPECT_EQ(a[2], 99);
  EXPECT_TRUE(a == b);
}

TEST(HeapTest, PinBlocksCollection) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(100);
  jvm.heap().pin(a.handle());
  const std::byte* before = a.raw_address();
  EXPECT_FALSE(jvm.gc()) << "GC must not run while pinned";
  EXPECT_EQ(a.raw_address(), before) << "pinned object must not move";
  EXPECT_EQ(jvm.stats().blocked_collections, 1u);
  jvm.heap().unpin(a.handle());
  EXPECT_TRUE(jvm.gc());
  EXPECT_NE(a.raw_address(), before);
}

TEST(HeapTest, PinNests) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(10);
  jvm.heap().pin(a.handle());
  jvm.heap().pin(a.handle());
  jvm.heap().unpin(a.handle());
  EXPECT_FALSE(jvm.gc());
  jvm.heap().unpin(a.handle());
  EXPECT_TRUE(jvm.gc());
  EXPECT_THROW(jvm.heap().unpin(a.handle()), jhpc::InvalidArgumentError);
}

TEST(HeapTest, AllocationUnderPinThrowsInsteadOfMoving) {
  Jvm jvm(small_cfg(1 << 20));
  auto pinned = jvm.new_array<jbyte>(1024);
  jvm.heap().pin(pinned.handle());
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          auto junk = jvm.new_array<jbyte>(64 * 1024);
          (void)junk;
        }
      },
      OutOfMemoryError);
  jvm.heap().unpin(pinned.handle());
}

TEST(HeapTest, ReleasePinnedObjectRejected) {
  Jvm jvm(small_cfg());
  ManagedHeap& heap = jvm.heap();
  const int h = heap.allocate(128);
  heap.pin(h);
  EXPECT_THROW(heap.release(h), jhpc::InvalidArgumentError);
  heap.unpin(h);
  heap.release(h);
  EXPECT_THROW(heap.address(h), jhpc::InvalidArgumentError);
}

// --- JNI emulation -----------------------------------------------------------

TEST(JniTest, GetArrayElementsReturnsACopy) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(16);
  for (std::size_t i = 0; i < 16; ++i) a[i] = static_cast<jint>(i);
  bool is_copy = false;
  jint* elems = jvm.jni().get_array_elements(a, &is_copy);
  EXPECT_TRUE(is_copy) << "modern JVMs do not pin; always a copy";
  EXPECT_NE(reinterpret_cast<std::byte*>(elems), a.raw_address());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(elems[i], a[i]);
  // Native writes are invisible until release...
  elems[3] = 333;
  EXPECT_EQ(a[3], 3);
  jvm.jni().release_array_elements(a, elems);
  // ...then copied back.
  EXPECT_EQ(a[3], 333);
  EXPECT_EQ(jvm.jni().outstanding_copies(), 0u);
}

TEST(JniTest, ReleaseAbortDiscardsNativeWrites) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(4);
  a[0] = 1;
  jint* elems = jvm.jni().get_array_elements(a);
  elems[0] = 999;
  jvm.jni().release_array_elements(a, elems, ReleaseMode::kAbort);
  EXPECT_EQ(a[0], 1);
}

TEST(JniTest, ReleaseCommitKeepsCopyAlive) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(4);
  jint* elems = jvm.jni().get_array_elements(a);
  elems[1] = 7;
  jvm.jni().release_array_elements(a, elems, ReleaseMode::kCommit);
  EXPECT_EQ(a[1], 7);
  EXPECT_EQ(jvm.jni().outstanding_copies(), 1u);
  elems[1] = 8;
  jvm.jni().release_array_elements(a, elems);
  EXPECT_EQ(a[1], 8);
  EXPECT_EQ(jvm.jni().outstanding_copies(), 0u);
}

TEST(JniTest, ReleaseSurvivesGcBetweenGetAndRelease) {
  // The whole reason Get/Release works by handle: the array may move
  // between the two calls.
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(64);
  jint* elems = jvm.jni().get_array_elements(a);
  elems[5] = 55;
  ASSERT_TRUE(jvm.gc());  // the array moves; `elems` is a stable copy
  jvm.jni().release_array_elements(a, elems);
  EXPECT_EQ(a[5], 55);
}

TEST(JniTest, ReleasingForeignPointerRejected) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(4);
  jint local[4];
  EXPECT_THROW(jvm.jni().release_array_elements(a, local),
               jhpc::InvalidArgumentError);
}

TEST(JniTest, CriticalPinNoCopyAndBlocksGc) {
  Jvm jvm(small_cfg());
  auto a = jvm.new_array<jint>(32);
  a[0] = 11;
  jint* p = jvm.jni().get_primitive_array_critical(a);
  EXPECT_EQ(reinterpret_cast<std::byte*>(p), a.raw_address())
      << "critical access is the live storage, not a copy";
  p[0] = 22;
  EXPECT_EQ(a[0], 22) << "writes are immediately visible";
  EXPECT_FALSE(jvm.gc());
  jvm.jni().release_primitive_array_critical(a, p);
  EXPECT_TRUE(jvm.gc());
}

TEST(JniTest, DirectBufferAddressOnlyForDirect) {
  Jvm jvm(small_cfg());
  auto direct = ByteBuffer::allocate_direct(256);
  auto heap = ByteBuffer::allocate(jvm, 256);
  EXPECT_NE(jvm.jni().get_direct_buffer_address(direct), nullptr);
  EXPECT_EQ(jvm.jni().get_direct_buffer_address(heap), nullptr)
      << "JNI returns NULL for non-direct buffers";
  EXPECT_EQ(jvm.jni().get_direct_buffer_capacity(direct), 256u);
  EXPECT_EQ(jvm.jni().get_direct_buffer_capacity(heap), SIZE_MAX);
}

TEST(JniTest, DirectBufferAddressStableAcrossGc) {
  Jvm jvm(small_cfg());
  auto direct = ByteBuffer::allocate_direct(128);
  void* before = jvm.jni().get_direct_buffer_address(direct);
  ASSERT_TRUE(jvm.gc());
  EXPECT_EQ(jvm.jni().get_direct_buffer_address(direct), before)
      << "direct buffers live outside the managed heap";
}

TEST(JniTest, CrossingCostIsCharged) {
  JvmConfig cfg = small_cfg();
  cfg.jni_crossing_ns = 200'000;  // exaggerate so it is measurable
  Jvm jvm(cfg);
  // Measure consumed CPU (immune to scheduling noise); the burn is
  // calibrated in CPU time, allow a generous tolerance either way.
  const auto t0 = jhpc::thread_cpu_ns();
  jvm.jni().crossing();
  EXPECT_GE(jhpc::thread_cpu_ns() - t0, 60'000);
  // Utility functions pay only a tenth (handle check).
  auto buf = ByteBuffer::allocate_direct(8);
  const auto t1 = jhpc::thread_cpu_ns();
  (void)jvm.jni().get_direct_buffer_address(buf);
  const auto dt = jhpc::thread_cpu_ns() - t1;
  EXPECT_GE(dt, 6'000);
  EXPECT_LT(dt, 150'000);
}

}  // namespace
}  // namespace jhpc::minijvm
