// Cartesian topologies: dims factorisation, coordinate maps, shifts,
// periodicity, and a 2-D halo exchange built on them.
#include <gtest/gtest.h>

#include "jhpc/minimpi/cart.hpp"
#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

UniverseConfig cfg(int n) {
  UniverseConfig c;
  c.world_size = n;
  return c;
}

TEST(CartTest, DimsCreateBalances) {
  EXPECT_EQ(CartComm::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(CartComm::dims_create(16, 2), (std::vector<int>{4, 4}));
  EXPECT_EQ(CartComm::dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(CartComm::dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(CartComm::dims_create(1, 1), (std::vector<int>{1}));
  EXPECT_THROW(CartComm::dims_create(0, 2), InvalidArgumentError);
}

TEST(CartTest, CoordsRoundTripRowMajor) {
  Universe::launch(cfg(6), [](Comm& world) {
    auto cart = CartComm::create(world, {2, 3}, {false, false});
    ASSERT_TRUE(cart.valid());
    // Row-major: rank = row*3 + col.
    const auto c = cart.coords();
    EXPECT_EQ(c[0], world.rank() / 3);
    EXPECT_EQ(c[1], world.rank() % 3);
    EXPECT_EQ(cart.rank_of(c), cart.comm().rank());
    for (int r = 0; r < 6; ++r)
      EXPECT_EQ(cart.rank_of(cart.coords_of(r)), r);
  });
}

TEST(CartTest, SurplusRanksGetNullComm) {
  Universe::launch(cfg(5), [](Comm& world) {
    auto cart = CartComm::create(world, {2, 2}, {false, false});
    EXPECT_EQ(cart.valid(), world.rank() < 4);
    world.barrier();
  });
}

TEST(CartTest, OpenEdgesYieldProcNull) {
  Universe::launch(cfg(4), [](Comm& world) {
    auto cart = CartComm::create(world, {2, 2}, {false, false});
    ASSERT_TRUE(cart.valid());
    const auto c = cart.coords();
    const auto up = cart.shift(0, -1);
    if (c[0] == 0) {
      EXPECT_EQ(up.dest, -1) << "no neighbour above the top row";
    } else {
      EXPECT_EQ(cart.coords_of(up.dest)[0], c[0] - 1);
    }
  });
}

TEST(CartTest, PeriodicWrapsAround) {
  Universe::launch(cfg(4), [](Comm& world) {
    auto cart = CartComm::create(world, {4}, {true});
    ASSERT_TRUE(cart.valid());
    const auto s = cart.shift(0, 1);
    EXPECT_EQ(s.dest, (cart.comm().rank() + 1) % 4);
    EXPECT_EQ(s.source, (cart.comm().rank() + 3) % 4);
    // Large displacements wrap too.
    const auto s5 = cart.shift(0, 5);
    EXPECT_EQ(s5.dest, (cart.comm().rank() + 5) % 4);
  });
}

TEST(CartTest, TwoDimensionalHaloExchange) {
  // Each rank sends its rank id to all four neighbours on a periodic
  // 2x3 torus and checks what arrives.
  Universe::launch(cfg(6), [](Comm& world) {
    auto cart = CartComm::create(world, {2, 3}, {true, true});
    ASSERT_TRUE(cart.valid());
    const Comm& c = cart.comm();
    const int me = c.rank();
    for (int dim = 0; dim < 2; ++dim) {
      const auto s = cart.shift(dim, 1);
      int incoming = -1;
      c.sendrecv(&me, sizeof(me), s.dest, dim, &incoming, sizeof(incoming),
                 s.source, dim);
      EXPECT_EQ(incoming, s.source);
    }
  });
}

TEST(CartTest, GridLargerThanCommRejected) {
  Universe::launch(cfg(2), [](Comm& world) {
    EXPECT_THROW(CartComm::create(world, {2, 2}, {false, false}),
                 InvalidArgumentError);
    world.barrier();
  });
}

}  // namespace
}  // namespace jhpc::minimpi
