// Unit tests for the jhpc support library.
#include <gtest/gtest.h>

#include <cstdlib>

#include "jhpc/support/byte_order.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/sizes.hpp"
#include "jhpc/support/stats.hpp"
#include "jhpc/support/table.hpp"

namespace jhpc {
namespace {

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(JHPC_REQUIRE(false, "nope"), InvalidArgumentError);
  EXPECT_NO_THROW(JHPC_REQUIRE(true, "fine"));
}

TEST(ErrorTest, AssertThrowsInternal) {
  EXPECT_THROW(JHPC_ASSERT(false, "bug"), InternalError);
}

TEST(ErrorTest, MessageContainsContext) {
  try {
    JHPC_REQUIRE(1 == 2, "my context message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("my context message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(ClockTest, Monotonic) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
}

TEST(ClockTest, WaitUntilReachesDeadline) {
  const auto deadline = now_ns() + 200'000;  // 200 us
  const auto observed = wait_until_ns(deadline);
  EXPECT_GE(observed, deadline);
  // And not wildly past it (sanity on an oversubscribed box).
  EXPECT_LT(observed, deadline + 50'000'000);
}

TEST(ClockTest, WaitUntilPastDeadlineReturnsImmediately) {
  const auto t0 = now_ns();
  wait_until_ns(t0 - 1'000'000);
  EXPECT_LT(now_ns() - t0, 10'000'000);
}

TEST(ClockTest, BurnTakesRoughlyRequestedTime) {
  burn_ns(1000);  // warm the calibration
  const auto t0 = now_ns();
  burn_ns(2'000'000);  // 2 ms
  const auto dt = now_ns() - t0;
  EXPECT_GT(dt, 500'000);  // at least 0.5 ms even with noise
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(StatsTest, RunningStatsMergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, SampleSetPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(StatsTest, SampleSetEmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.min(), InvalidArgumentError);
  EXPECT_THROW(s.percentile(50), InvalidArgumentError);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(StatsTest, BandwidthFormula) {
  // 1e6 bytes in 1e6 ns = 1 byte/ns = 1000 MB/s.
  EXPECT_DOUBLE_EQ(bandwidth_mbps(1'000'000, 1'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(bandwidth_mbps(0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(bandwidth_mbps(1000, 0), 0.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(geometric_mean({5.0}), 5.0, 1e-9);
  EXPECT_THROW(geometric_mean({}), InvalidArgumentError);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), InvalidArgumentError);
}

TEST(StatsTest, BootstrapCI) {
  // Deterministic: same samples + seed give identical intervals.
  const std::vector<double> s{10, 11, 9, 12, 10, 11, 10, 9, 10, 12};
  const BootstrapCI a = bootstrap_ci(s);
  const BootstrapCI b = bootstrap_ci(s);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_NEAR(a.mean, 10.4, 1e-12);
  // The interval brackets the point estimate and is narrower than the
  // sample range.
  EXPECT_LE(a.lo, a.mean);
  EXPECT_GE(a.hi, a.mean);
  EXPECT_GE(a.lo, 9.0);
  EXPECT_LE(a.hi, 12.0);
  // Wider confidence never shrinks the interval.
  const BootstrapCI wide = bootstrap_ci(s, 1000, 0.99);
  EXPECT_LE(wide.lo, a.lo);
  EXPECT_GE(wide.hi, a.hi);
  // Degenerate cases.
  const BootstrapCI one = bootstrap_ci({42.0});
  EXPECT_DOUBLE_EQ(one.lo, 42.0);
  EXPECT_DOUBLE_EQ(one.hi, 42.0);
  EXPECT_THROW(bootstrap_ci({}), InvalidArgumentError);
  EXPECT_THROW(bootstrap_ci(s, 0), InvalidArgumentError);
  EXPECT_THROW(bootstrap_ci(s, 100, 1.5), InvalidArgumentError);
}

TEST(SizesTest, ParseSize) {
  EXPECT_EQ(parse_size("17"), 17u);
  EXPECT_EQ(parse_size("4K"), 4096u);
  EXPECT_EQ(parse_size("4k"), 4096u);
  EXPECT_EQ(parse_size("1M"), 1u << 20);
  EXPECT_EQ(parse_size("2G"), 2ull << 30);
  EXPECT_THROW(parse_size("abc"), InvalidArgumentError);
  EXPECT_THROW(parse_size("4X"), InvalidArgumentError);
  EXPECT_THROW(parse_size(""), InvalidArgumentError);
}

TEST(SizesTest, FormatSize) {
  EXPECT_EQ(format_size(17), "17");
  EXPECT_EQ(format_size(4096), "4K");
  EXPECT_EQ(format_size(1u << 20), "1M");
  EXPECT_EQ(format_size(3u << 20), "3M");
  EXPECT_EQ(format_size((1u << 20) + 1), std::to_string((1u << 20) + 1));
}

TEST(SizesTest, SweepIsPowersOfTwoInclusive) {
  const auto s = size_sweep(1, 16);
  const std::vector<std::size_t> want{1, 2, 4, 8, 16};
  EXPECT_EQ(s, want);
}

TEST(SizesTest, SweepFromZeroIncludesZero) {
  const auto s = size_sweep(0, 4);
  const std::vector<std::size_t> want{0, 1, 2, 4};
  EXPECT_EQ(s, want);
}

TEST(SizesTest, SweepRejectsNonPow2) {
  EXPECT_THROW(size_sweep(3, 16), InvalidArgumentError);
  EXPECT_THROW(size_sweep(1, 24), InvalidArgumentError);
  EXPECT_THROW(size_sweep(16, 4), InvalidArgumentError);
}

TEST(TableTest, TextAndCsv) {
  Table t({"Size", "Latency(us)"});
  t.add_row({"1", "0.50"});
  t.add_row({"2", "0.55"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string txt = t.to_text();
  EXPECT_NE(txt.find("Size"), std::string::npos);
  EXPECT_NE(txt.find("0.55"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("Size,Latency(us)\n"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"a"});
  t.add_row({"x,y"});
  t.add_row({"he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
}

TEST(TableTest, WriteCsvReportsIoErrors) {
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/out.csv"), Error);
}

TEST(EnvTest, Int64ParseAndDefault) {
  ::unsetenv("JHPC_TEST_ENV_I");
  EXPECT_EQ(env_int64("JHPC_TEST_ENV_I", 42), 42);
  ::setenv("JHPC_TEST_ENV_I", "17", 1);
  EXPECT_EQ(env_int64("JHPC_TEST_ENV_I", 42), 17);
  ::setenv("JHPC_TEST_ENV_I", "junk", 1);
  EXPECT_THROW(env_int64("JHPC_TEST_ENV_I", 42), InvalidArgumentError);
  ::unsetenv("JHPC_TEST_ENV_I");
}

TEST(EnvTest, Int64RangeValidates) {
  ::unsetenv("JHPC_TEST_ENV_R");
  EXPECT_EQ(env_int64_range("JHPC_TEST_ENV_R", 7, 1), 7);
  ::setenv("JHPC_TEST_ENV_R", "5", 1);
  EXPECT_EQ(env_int64_range("JHPC_TEST_ENV_R", 7, 1), 5);
  // Below the minimum: typed failure naming the knob.
  ::setenv("JHPC_TEST_ENV_R", "0", 1);
  try {
    env_int64_range("JHPC_TEST_ENV_R", 7, 1);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("JHPC_TEST_ENV_R"),
              std::string::npos);
  }
  // Above an explicit maximum.
  ::setenv("JHPC_TEST_ENV_R", "100", 1);
  EXPECT_THROW(env_int64_range("JHPC_TEST_ENV_R", 7, 1, 64),
               InvalidArgumentError);
  // No explicit maximum admits any large value.
  EXPECT_EQ(env_int64_range("JHPC_TEST_ENV_R", 7, 1), 100);
  // Garbage still fails the underlying parse.
  ::setenv("JHPC_TEST_ENV_R", "junk", 1);
  EXPECT_THROW(env_int64_range("JHPC_TEST_ENV_R", 7, 1),
               InvalidArgumentError);
  ::unsetenv("JHPC_TEST_ENV_R");
}

TEST(EnvTest, BoolForms) {
  ::setenv("JHPC_TEST_ENV_B", "TRUE", 1);
  EXPECT_TRUE(env_bool("JHPC_TEST_ENV_B", false));
  ::setenv("JHPC_TEST_ENV_B", "0", 1);
  EXPECT_FALSE(env_bool("JHPC_TEST_ENV_B", true));
  ::setenv("JHPC_TEST_ENV_B", "maybe", 1);
  EXPECT_THROW(env_bool("JHPC_TEST_ENV_B", true), InvalidArgumentError);
  ::unsetenv("JHPC_TEST_ENV_B");
}

TEST(ByteOrderTest, RoundTripBothOrders) {
  alignas(8) unsigned char buf[8];
  store_ordered<std::int32_t>(buf, 0x12345678, ByteOrder::kBigEndian);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(load_ordered<std::int32_t>(buf, ByteOrder::kBigEndian),
            0x12345678);
  store_ordered<std::int32_t>(buf, 0x12345678, ByteOrder::kLittleEndian);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(load_ordered<std::int32_t>(buf, ByteOrder::kLittleEndian),
            0x12345678);
}

TEST(ByteOrderTest, DoubleSurvivesSwap) {
  alignas(8) unsigned char buf[8];
  const double v = -12345.6789e-3;
  store_ordered(buf, v, ByteOrder::kBigEndian);
  EXPECT_DOUBLE_EQ(load_ordered<double>(buf, ByteOrder::kBigEndian), v);
  store_ordered(buf, v, ByteOrder::kLittleEndian);
  EXPECT_DOUBLE_EQ(load_ordered<double>(buf, ByteOrder::kLittleEndian), v);
}

}  // namespace
}  // namespace jhpc
