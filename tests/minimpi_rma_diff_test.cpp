// Differential oracle for the one-sided subsystem: a seeded program of
// put/get/accumulate operations is executed once over windows in each
// RMA sync mode (fence, post/start/complete/wait, lock/unlock) and once
// as a plain two-sided send/recv reference — every mode must produce
// BIT-IDENTICAL window memory and read results, on pow2 and non-pow2
// world sizes, with derived-datatype targets, and under an injected
// drop/jitter fault plan (the retransmit-idempotence regression: a
// double-applied put or accumulate diverges immediately).
//
// The program is a pure function of (seed, round, origin, target), so
// every rank — and every execution engine — derives the same op list.
// Writes keep per-origin target slices disjoint; accumulates fold
// commutative integer sums so arrival order cannot matter; reads only
// touch rounds' stable prefixes. Any difference is therefore a bug, not
// a race.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

constexpr std::size_t kSlice = 64;       // per-origin put slice, bytes
constexpr int kAccInts = 32;             // shared accumulate zone, int32s
constexpr int kRounds = 4;

std::size_t win_bytes(int nranks) {
  return static_cast<std::size_t>(nranks) * kSlice +
         kAccInts * sizeof(std::int32_t);
}

/// Deterministic mixing (splitmix64): the single source of every value,
/// length and mode choice in the program.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t op_key(std::uint64_t seed, int round, int origin, int target) {
  return mix(seed ^ mix(static_cast<std::uint64_t>(round) * 1000003 +
                        static_cast<std::uint64_t>(origin) * 1009 +
                        static_cast<std::uint64_t>(target)));
}

std::vector<std::uint8_t> put_payload(std::uint64_t key) {
  std::vector<std::uint8_t> v(kSlice);
  for (std::size_t i = 0; i < kSlice; ++i)
    v[i] = static_cast<std::uint8_t>(mix(key + i) & 0xff);
  return v;
}

std::vector<std::int32_t> acc_payload(std::uint64_t key) {
  std::vector<std::int32_t> v(kAccInts);
  for (int i = 0; i < kAccInts; ++i)
    v[i] = static_cast<std::int32_t>(mix(key + 100 + i) % 1000);
  return v;
}

/// Per-(round, origin, target) op shape, derived identically everywhere.
struct OpShape {
  bool do_put;
  bool typed_put;  // strided (vector of every-2nd-int) target layout
  bool do_acc;
};

OpShape shape(std::uint64_t seed, int round, int origin, int target) {
  const std::uint64_t k = op_key(seed, round, origin, target);
  return {(k & 1) != 0, (k & 2) != 0, (k & 4) != 0};
}

/// The strided target layout typed puts scatter into: every second int
/// of the 64-byte slice (8 ints, stride 2).
Datatype stride2() {
  return Datatype::vector(8, 1, 2, Datatype::basic(BasicKind::kInt));
}

/// Result of one engine run: each rank's final window memory plus its
/// ordered get-result log.
struct RunResult {
  std::vector<std::vector<std::uint8_t>> windows;  // per rank
  std::vector<std::vector<std::uint8_t>> reads;    // per rank
};

enum class SyncMode { kFence, kPscw, kLock };

UniverseConfig diff_cfg(int ranks, const std::string& tag, bool faults,
                        std::uint64_t fault_seed) {
  UniverseConfig c;
  c.world_size = ranks;
  c.fabric.ranks_per_node = ranks > 2 ? 2 : 1;  // mixed intra/inter links
  c.obs = obs::ObsConfig{};
  c.obs.trace_path = testing::TempDir() + "rma_diff_" + tag + ".json";
  if (faults) {
    c.fabric.faults.seed = fault_seed;
    c.fabric.faults.link_defaults.drop_prob = 0.05;
    c.fabric.faults.link_defaults.jitter_ns = 300;
  }
  return c;
}

/// Execute the seeded program one-sided, under the given sync mode.
RunResult run_rma(UniverseConfig c, std::uint64_t seed, SyncMode mode) {
  const int n = c.world_size;
  RunResult out;
  out.windows.assign(static_cast<std::size_t>(n), {});
  out.reads.assign(static_cast<std::size_t>(n), {});
  Universe::launch(c, [&](Comm& world) {
    const int me = world.rank();
    Win win = world.win_allocate(win_bytes(n));
    std::vector<int> others;
    for (int r = 0; r < n; ++r)
      if (r != me) others.push_back(r);

    auto open_epoch = [&] {
      switch (mode) {
        case SyncMode::kFence: win.fence(); break;
        case SyncMode::kPscw:
          win.post(others);
          win.start(others);
          break;
        case SyncMode::kLock: break;  // per-op locks
      }
    };
    auto close_epoch = [&] {
      switch (mode) {
        case SyncMode::kFence: win.fence(); break;
        case SyncMode::kPscw:
          win.complete();
          win.wait();
          world.barrier();  // round separator (fence/wait imply it)
          break;
        case SyncMode::kLock: world.barrier(); break;
      }
    };
    auto with_target = [&](int t, const std::function<void()>& body) {
      if (mode == SyncMode::kLock) {
        win.lock(LockType::kExclusive, t);
        body();
        win.unlock(t);
      } else {
        body();
      }
    };

    for (int round = 0; round < kRounds; ++round) {
      // Write phase: my slice of every target, plus accumulate folds.
      open_epoch();
      for (int t = 0; t < n; ++t) {
        // The program never targets self: pscw access groups exclude
        // self by construction, and skipping it everywhere keeps every
        // engine's window contents comparable (self slices stay zero).
        if (t == me) continue;
        const OpShape s = shape(seed, round, me, t);
        const std::uint64_t key = op_key(seed, round, me, t);
        with_target(t, [&] {
          if (s.do_put) {
            const std::size_t off = static_cast<std::size_t>(me) * kSlice;
            if (s.typed_put) {
              std::vector<std::int32_t> src(8);
              for (int i = 0; i < 8; ++i)
                src[i] = static_cast<std::int32_t>(mix(key + 50 + i));
              win.put(src.data(), 8, Datatype::basic(BasicKind::kInt), t,
                      off, stride2());
            } else {
              const auto payload = put_payload(key);
              win.put(payload.data(), payload.size(), t, off);
            }
          }
          if (s.do_acc) {
            const auto addend = acc_payload(key);
            win.accumulate(addend.data(), kAccInts,
                           Datatype::basic(BasicKind::kInt), ReduceOp::kSum,
                           t, static_cast<std::size_t>(n) * kSlice);
          }
        });
      }
      close_epoch();

      // Read phase: pull a (now stable) slice out of a rotating target.
      // shift in [1, n-1] keeps the target strictly non-self so the
      // same epoch code serves every sync mode.
      const int shift = 1 + (round % (n - 1));
      const int t = (me + shift) % n;
      const int src_rank = (me + round) % n;
      std::vector<std::uint8_t> got(kSlice);
      open_epoch();
      with_target(t, [&] {
        win.get(got.data(), got.size(), t,
                static_cast<std::size_t>(src_rank) * kSlice);
      });
      close_epoch();
      out.reads[static_cast<std::size_t>(me)].insert(
          out.reads[static_cast<std::size_t>(me)].end(), got.begin(),
          got.end());
    }

    const auto* mem = static_cast<const std::uint8_t*>(win.base());
    out.windows[static_cast<std::size_t>(me)].assign(mem,
                                                     mem + win_bytes(n));
    world.barrier();
    win.free();
  });
  return out;
}

/// Execute the same program with two-sided messaging only: the golden
/// reference the one-sided engine must match bit for bit.
RunResult run_twosided(UniverseConfig c, std::uint64_t seed) {
  const int n = c.world_size;
  RunResult out;
  out.windows.assign(static_cast<std::size_t>(n), {});
  out.reads.assign(static_cast<std::size_t>(n), {});
  Universe::launch(c, [&](Comm& world) {
    const int me = world.rank();
    std::vector<std::uint8_t> mem(win_bytes(n), 0);
    auto* acc_zone = reinterpret_cast<std::int32_t*>(
        mem.data() + static_cast<std::size_t>(n) * kSlice);

    for (int round = 0; round < kRounds; ++round) {
      // Write phase. Tags encode (origin, kind) so matching is exact.
      std::vector<Request> reqs;
      std::vector<std::vector<std::uint8_t>> put_bufs;
      std::vector<std::vector<std::int32_t>> int_bufs;
      std::vector<std::vector<std::int32_t>> acc_in(
          static_cast<std::size_t>(n));
      put_bufs.reserve(static_cast<std::size_t>(n));
      int_bufs.reserve(static_cast<std::size_t>(2 * n));
      // My sends (the program never targets self).
      for (int t = 0; t < n; ++t) {
        if (t == me) continue;
        const OpShape s = shape(seed, round, me, t);
        const std::uint64_t key = op_key(seed, round, me, t);
        if (s.do_put) {
          if (s.typed_put) {
            int_bufs.emplace_back(8);
            auto& src = int_bufs.back();
            for (int i = 0; i < 8; ++i)
              src[i] = static_cast<std::int32_t>(mix(key + 50 + i));
            reqs.push_back(world.isend(src.data(), 8,
                                       Datatype::basic(BasicKind::kInt), t,
                                       2 * me));
          } else {
            put_bufs.push_back(put_payload(key));
            reqs.push_back(world.isend(put_bufs.back().data(), kSlice, t,
                                       2 * me));
          }
        }
        if (s.do_acc) {
          int_bufs.push_back(acc_payload(key));
          reqs.push_back(world.isend(int_bufs.back().data(),
                                     kAccInts * sizeof(std::int32_t), t,
                                     2 * me + 1));
        }
      }
      // Receives targeting me.
      for (int o = 0; o < n; ++o) {
        if (o == me) continue;
        const OpShape s = shape(seed, round, o, me);
        if (s.do_put) {
          const std::size_t off = static_cast<std::size_t>(o) * kSlice;
          if (s.typed_put) {
            // 8 packed ints arrive as exactly one stride2 element.
            reqs.push_back(world.irecv(mem.data() + off, 1, stride2(), o,
                                       2 * o));
          } else {
            reqs.push_back(world.irecv(mem.data() + off, kSlice, o, 2 * o));
          }
        }
        if (s.do_acc) {
          acc_in[static_cast<std::size_t>(o)].resize(kAccInts);
          reqs.push_back(
              world.irecv(acc_in[static_cast<std::size_t>(o)].data(),
                          kAccInts * sizeof(std::int32_t), o, 2 * o + 1));
        }
      }
      Request::wait_all(reqs);
      for (int o = 0; o < n; ++o)
        if (!acc_in[static_cast<std::size_t>(o)].empty())
          apply_reduce(ReduceOp::kSum, BasicKind::kInt, acc_zone,
                       acc_in[static_cast<std::size_t>(o)].data(),
                       kAccInts);
      world.barrier();

      // Read phase: get(origin<-target) becomes send(target->origin).
      // Mirrors run_rma exactly: rank r reads from (r+shift)%n, so I
      // serve the rank for whom (reader+shift)%n == me.
      const int shift = 1 + (round % (n - 1));
      const int t = (me + shift) % n;           // I read from t
      const int reader = (me - shift + n) % n;  // t' == me for this rank
      std::vector<Request> rr;
      std::vector<std::uint8_t> got(kSlice);
      const int src_rank = (me + round) % n;
      rr.push_back(world.irecv(got.data(), kSlice, t, 7000 + round));
      const int their_src = (reader + round) % n;
      rr.push_back(world.isend(
          mem.data() + static_cast<std::size_t>(their_src) * kSlice, kSlice,
          reader, 7000 + round));
      Request::wait_all(rr);
      (void)src_rank;
      out.reads[static_cast<std::size_t>(me)].insert(
          out.reads[static_cast<std::size_t>(me)].end(), got.begin(),
          got.end());
      world.barrier();
    }

    out.windows[static_cast<std::size_t>(me)] = mem;
  });
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t r = 0; r < a.windows.size(); ++r) {
    EXPECT_EQ(a.windows[r], b.windows[r])
        << what << ": window memory of rank " << r << " diverged";
    EXPECT_EQ(a.reads[r], b.reads[r])
        << what << ": get results of rank " << r << " diverged";
  }
}

class RmaDiffTest : public testing::TestWithParam<int> {};

TEST_P(RmaDiffTest, AllSyncModesMatchTwoSidedReference) {
  const int ranks = GetParam();
  const std::uint64_t seed = 0xc0ffee ^ static_cast<std::uint64_t>(ranks);
  const std::string tag = "w" + std::to_string(ranks);
  const RunResult golden =
      run_twosided(diff_cfg(ranks, tag + "_ref", false, 0), seed);
  expect_identical(
      run_rma(diff_cfg(ranks, tag + "_fence", false, 0), seed,
              SyncMode::kFence),
      golden, "fence");
  expect_identical(
      run_rma(diff_cfg(ranks, tag + "_pscw", false, 0), seed,
              SyncMode::kPscw),
      golden, "pscw");
  expect_identical(
      run_rma(diff_cfg(ranks, tag + "_lock", false, 0), seed,
              SyncMode::kLock),
      golden, "lock");
}

TEST_P(RmaDiffTest, FaultInjectedRunsStayBitIdentical) {
  // Same program under a 5% drop plan: the reliable path retries and
  // the sequence floors must keep every retransmitted put/accumulate
  // exactly-once — any double application diverges from golden.
  const int ranks = GetParam();
  const std::uint64_t seed = 0xfeedface ^ static_cast<std::uint64_t>(ranks);
  const std::string tag = "f" + std::to_string(ranks);
  const RunResult golden =
      run_twosided(diff_cfg(ranks, tag + "_ref", false, 0), seed);
  expect_identical(
      run_rma(diff_cfg(ranks, tag + "_fence_drop", true, 4242), seed,
              SyncMode::kFence),
      golden, "fence+faults");
  expect_identical(
      run_rma(diff_cfg(ranks, tag + "_lock_drop", true, 777), seed,
              SyncMode::kLock),
      golden, "lock+faults");
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, RmaDiffTest,
                         testing::Values(2, 3, 5));

TEST(RmaIdempotenceTest, AccumulateCountExactUnderHeavyDrops) {
  // The sharpest idempotence probe: a counting accumulate under a heavy
  // drop plan. Every duplicate application inflates the count.
  UniverseConfig c;
  c.world_size = 3;
  c.fabric.ranks_per_node = 1;  // every pair crosses a droppable link
  c.obs = obs::ObsConfig{};
  c.obs.trace_path = testing::TempDir() + "rma_idem.json";
  c.fabric.faults.seed = 987654321;
  c.fabric.faults.link_defaults.drop_prob = 0.15;
  c.fabric.faults.link_defaults.jitter_ns = 500;
  constexpr int kFolds = 40;
  Universe::launch(c, [](Comm& world) {
    Win win = world.win_allocate(sizeof(std::int64_t));
    win.fence();
    const std::int64_t one = 1;
    for (int i = 0; i < kFolds; ++i)
      for (int t = 0; t < world.size(); ++t)
        win.accumulate(&one, 1, Datatype::basic(BasicKind::kLong),
                       ReduceOp::kSum, t, 0);
    win.fence();
    const auto* counter = static_cast<const std::int64_t*>(win.base());
    EXPECT_EQ(*counter, static_cast<std::int64_t>(kFolds) * world.size())
        << "retransmitted accumulate applied more than once";
    // The plan really dropped packets (the probe probed something).
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      EXPECT_GT(reg.total(reg.find("fault.retransmits")), 0);
    }
    world.barrier();
    win.free();
  });
}

}  // namespace
}  // namespace jhpc::minimpi
