// Typed buffer views (asIntBuffer() family).
#include <gtest/gtest.h>

#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/minijvm/typed_views.hpp"

namespace jhpc::minijvm {
namespace {

TEST(TypedViewTest, IntViewBasics) {
  auto bytes = ByteBuffer::allocate_direct(64);
  auto ints = as_int_buffer(bytes);
  EXPECT_EQ(ints.capacity(), 16u);
  EXPECT_EQ(ints.remaining(), 16u);
  ints.put(0, 0x01020304);
  EXPECT_EQ(ints.get(0), 0x01020304);
}

TEST(TypedViewTest, ViewSharesStorageWithParent) {
  auto bytes = ByteBuffer::allocate_direct(16);
  auto ints = as_int_buffer(bytes);
  ints.put(1, 0x11223344);
  // Parent sees the same bytes (both default big-endian).
  EXPECT_EQ(bytes.get_int(4), 0x11223344);
  bytes.put_int(0, 77);
  EXPECT_EQ(ints.get(0), 77);
}

TEST(TypedViewTest, ViewStartsAtParentPosition) {
  auto bytes = ByteBuffer::allocate_direct(32);
  bytes.put_int(1111);  // advances position to 4
  auto longs = as_long_buffer(bytes);
  EXPECT_EQ(longs.capacity(), 3u) << "28 remaining bytes -> 3 longs";
  longs.put(0, 42);
  EXPECT_EQ(bytes.get_long(4), 42);
}

TEST(TypedViewTest, RelativeCursorAndFlip) {
  auto bytes = ByteBuffer::allocate_direct(24);
  auto d = as_double_buffer(bytes);
  d.put(1.5).put(2.5).put(3.5);
  EXPECT_FALSE(d.has_remaining());
  d.flip();
  EXPECT_DOUBLE_EQ(d.get(), 1.5);
  EXPECT_DOUBLE_EQ(d.get(), 2.5);
  EXPECT_EQ(d.remaining(), 1u);
  d.rewind();
  EXPECT_DOUBLE_EQ(d.get(), 1.5);
}

TEST(TypedViewTest, BoundsChecked) {
  auto bytes = ByteBuffer::allocate_direct(8);
  auto s = as_short_buffer(bytes);
  EXPECT_EQ(s.capacity(), 4u);
  EXPECT_THROW(s.get(4), BufferError);
  EXPECT_THROW(s.put(4, 1), BufferError);
  s.position(4);
  EXPECT_THROW(s.get(), BufferError);
  EXPECT_THROW(s.position(5), BufferError);
}

TEST(TypedViewTest, OrderInheritedFromParent) {
  auto bytes =
      ByteBuffer::allocate_direct(8).order(ByteOrder::kLittleEndian);
  auto ints = as_int_buffer(bytes);
  EXPECT_EQ(ints.order(), ByteOrder::kLittleEndian);
  ints.put(0, 0x01020304);
  EXPECT_EQ(static_cast<unsigned>(bytes.storage_address(0)[0]), 0x04u);
}

TEST(TypedViewTest, HeapBackedViewFollowsGc) {
  Jvm jvm({.heap_bytes = 1 << 20, .jni_crossing_ns = 0});
  auto bytes = ByteBuffer::allocate(jvm, 32);
  auto f = as_float_buffer(bytes);
  f.put(2, 9.5f);
  ASSERT_TRUE(jvm.gc());
  EXPECT_FLOAT_EQ(f.get(2), 9.5f) << "view must follow the moved array";
}

TEST(TypedViewTest, CharView) {
  auto bytes = ByteBuffer::allocate_direct(8);
  auto c = as_char_buffer(bytes);
  c.put(0, u'A').put(1, u'€');
  EXPECT_EQ(c.get(0), u'A');
  EXPECT_EQ(c.get(1), u'€');
}

TEST(TypedViewTest, TruncatedCapacityForOddRemainder) {
  auto bytes = ByteBuffer::allocate_direct(10);
  auto ints = as_int_buffer(bytes);
  EXPECT_EQ(ints.capacity(), 2u) << "10 bytes -> 2 ints, 2 bytes unused";
}

}  // namespace
}  // namespace jhpc::minijvm
