// java.nio ByteBuffer emulation: state machine, typed accessors, byte
// order, views, direct vs heap storage.
#include <gtest/gtest.h>

#include <vector>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/direct_memory.hpp"
#include "jhpc/minijvm/jvm.hpp"

namespace jhpc::minijvm {
namespace {

JvmConfig fast_cfg() {
  JvmConfig c;
  c.heap_bytes = 1 << 20;
  c.jni_crossing_ns = 0;
  return c;
}

TEST(ByteBufferTest, FreshBufferState) {
  auto b = ByteBuffer::allocate_direct(64);
  EXPECT_TRUE(b.is_direct());
  EXPECT_EQ(b.capacity(), 64u);
  EXPECT_EQ(b.position(), 0u);
  EXPECT_EQ(b.limit(), 64u);
  EXPECT_EQ(b.remaining(), 64u);
  EXPECT_EQ(b.order(), ByteOrder::kBigEndian) << "java.nio default";
}

TEST(ByteBufferTest, HeapBufferIsNotDirect) {
  Jvm jvm(fast_cfg());
  auto b = ByteBuffer::allocate(jvm, 64);
  EXPECT_FALSE(b.is_direct());
  EXPECT_EQ(b.capacity(), 64u);
}

TEST(ByteBufferTest, RelativePutGetRoundTrip) {
  auto b = ByteBuffer::allocate_direct(64);
  b.put(1).put_short(2).put_int(3).put_long(4).put_float(5.5f).put_double(
      6.25);
  b.put_char(u'Z');
  b.flip();
  EXPECT_EQ(b.limit(), 1u + 2 + 4 + 8 + 4 + 8 + 2);
  EXPECT_EQ(b.get(), 1);
  EXPECT_EQ(b.get_short(), 2);
  EXPECT_EQ(b.get_int(), 3);
  EXPECT_EQ(b.get_long(), 4);
  EXPECT_FLOAT_EQ(b.get_float(), 5.5f);
  EXPECT_DOUBLE_EQ(b.get_double(), 6.25);
  EXPECT_EQ(b.get_char(), u'Z');
  EXPECT_FALSE(b.has_remaining());
}

TEST(ByteBufferTest, DefaultOrderIsBigEndianOnTheWire) {
  auto b = ByteBuffer::allocate_direct(8);
  b.put_int(0x01020304);
  const std::byte* raw = b.storage_address(0);
  EXPECT_EQ(static_cast<unsigned>(raw[0]), 0x01u);
  EXPECT_EQ(static_cast<unsigned>(raw[3]), 0x04u);
}

TEST(ByteBufferTest, LittleEndianOrderHonoured) {
  auto b = ByteBuffer::allocate_direct(8);
  b.order(ByteOrder::kLittleEndian).put_int(0x01020304);
  const std::byte* raw = b.storage_address(0);
  EXPECT_EQ(static_cast<unsigned>(raw[0]), 0x04u);
  b.flip();
  EXPECT_EQ(b.get_int(), 0x01020304);
}

TEST(ByteBufferTest, AbsoluteAccessDoesNotMovePosition) {
  auto b = ByteBuffer::allocate_direct(32);
  b.put_int(8, 1234);
  EXPECT_EQ(b.position(), 0u);
  EXPECT_EQ(b.get_int(8), 1234);
  b.put(0, 7);
  EXPECT_EQ(b.get(0), 7);
  b.put_long(16, -5);
  EXPECT_EQ(b.get_long(16), -5);
  b.put_double(24, 2.5);
  EXPECT_DOUBLE_EQ(b.get_double(24), 2.5);
}

TEST(ByteBufferTest, OverflowUnderflowThrow) {
  auto b = ByteBuffer::allocate_direct(4);
  b.put_int(1);
  EXPECT_THROW(b.put(0), BufferError);           // full
  b.flip();
  b.get_int();
  EXPECT_THROW(b.get(), BufferError);            // drained
  EXPECT_THROW(b.get_int(1), BufferError);       // absolute past limit
  EXPECT_THROW(b.position(99), BufferError);
  EXPECT_THROW(b.limit(99), BufferError);
}

TEST(ByteBufferTest, MarkAndReset) {
  auto b = ByteBuffer::allocate_direct(16);
  b.put_int(1).mark().put_int(2);
  b.reset();
  EXPECT_EQ(b.position(), 4u);
  auto c = ByteBuffer::allocate_direct(4);
  EXPECT_THROW(c.reset(), BufferError);
}

TEST(ByteBufferTest, FlipClearRewind) {
  auto b = ByteBuffer::allocate_direct(16);
  b.put_int(1).put_int(2);
  b.flip();
  EXPECT_EQ(b.position(), 0u);
  EXPECT_EQ(b.limit(), 8u);
  b.get_int();
  b.rewind();
  EXPECT_EQ(b.position(), 0u);
  EXPECT_EQ(b.limit(), 8u);
  b.clear();
  EXPECT_EQ(b.limit(), 16u);
}

TEST(ByteBufferTest, BulkTransfer) {
  auto b = ByteBuffer::allocate_direct(64);
  std::vector<std::uint8_t> src{1, 2, 3, 4, 5};
  b.put_bytes(src.data(), src.size());
  b.flip();
  std::vector<std::uint8_t> dst(5, 0);
  b.get_bytes(dst.data(), dst.size());
  EXPECT_EQ(dst, src);
}

TEST(ByteBufferTest, SliceSharesStorage) {
  auto b = ByteBuffer::allocate_direct(16);
  b.put_int(0x11111111);
  auto s = b.slice();  // starts at position 4
  EXPECT_EQ(s.capacity(), 12u);
  s.put_int(0x22222222);
  b.clear();
  EXPECT_EQ(b.get_int(0), 0x11111111);
  EXPECT_EQ(b.get_int(4), 0x22222222) << "slice writes into the parent";
}

TEST(ByteBufferTest, DuplicateIndependentState) {
  auto b = ByteBuffer::allocate_direct(8);
  auto d = b.duplicate();
  d.put_int(42);
  EXPECT_EQ(b.position(), 0u) << "duplicate has its own position";
  EXPECT_EQ(b.get_int(0), 42) << "but shares the content";
}

TEST(ByteBufferTest, HeapBufferSurvivesGcAndFollowsTheArray) {
  Jvm jvm(fast_cfg());
  auto b = ByteBuffer::allocate(jvm, 32);
  b.put_int(0, 777);
  const std::byte* before = b.storage_address(0);
  ASSERT_TRUE(jvm.gc());
  EXPECT_NE(b.storage_address(0), before)
      << "heap buffer storage moves with the collector";
  EXPECT_EQ(b.get_int(0), 777);
}

TEST(ByteBufferTest, WrapExistingArray) {
  Jvm jvm(fast_cfg());
  auto arr = jvm.new_array<jbyte>(8);
  arr[0] = 9;
  auto b = ByteBuffer::wrap(arr);
  EXPECT_EQ(b.get(0), 9);
  b.put(1, 10);
  EXPECT_EQ(arr[1], 10);
}

TEST(ByteBufferTest, NullBufferRejectsAccess) {
  ByteBuffer b;
  EXPECT_TRUE(b.is_null());
  EXPECT_THROW(b.get(), BufferError);
  EXPECT_THROW(b.put(1), BufferError);
}

TEST(DirectMemoryTest, AccountingTracksLifecycle) {
  auto& dm = DirectMemory::instance();
  const auto live0 = dm.stats().live_bytes;
  {
    auto b = ByteBuffer::allocate_direct(4096);
    EXPECT_EQ(dm.stats().live_bytes, live0 + 4096);
    auto dup = b.duplicate();  // shared storage: no extra accounting
    EXPECT_EQ(dm.stats().live_bytes, live0 + 4096);
  }
  EXPECT_EQ(dm.stats().live_bytes, live0);
}

TEST(DirectMemoryTest, LimitEnforcedLikeMaxDirectMemorySize) {
  auto& dm = DirectMemory::instance();
  const auto base = dm.stats().live_bytes;
  dm.set_limit(base + (1u << 20));
  std::vector<ByteBuffer> held;
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i)
          held.push_back(ByteBuffer::allocate_direct(64 * 1024));
      },
      OutOfMemoryError);
  held.clear();
  dm.set_limit(0);  // back to unlimited for other tests
  EXPECT_NO_THROW(ByteBuffer::allocate_direct(4 << 20));
}

TEST(DirectMemoryTest, FailedAllocationReleasesReservation) {
  auto& dm = DirectMemory::instance();
  const auto live0 = dm.stats().live_bytes;
  dm.set_limit(live0 + 1024);
  EXPECT_THROW(ByteBuffer::allocate_direct(2048), OutOfMemoryError);
  EXPECT_EQ(dm.stats().live_bytes, live0)
      << "a rejected reservation must not leak accounting";
  dm.set_limit(0);
}

class OrderRoundTrip : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(OrderRoundTrip, AllTypesAllOrders) {
  auto b = ByteBuffer::allocate_direct(64).order(GetParam());
  b.put(-7)
      .put_char(u'€')
      .put_short(-1234)
      .put_int(0x7FEEDDCC)
      .put_long(-0x123456789ALL)
      .put_float(3.14f)
      .put_double(-2.718281828);
  b.flip();
  EXPECT_EQ(b.get(), -7);
  EXPECT_EQ(b.get_char(), u'€');
  EXPECT_EQ(b.get_short(), -1234);
  EXPECT_EQ(b.get_int(), 0x7FEEDDCC);
  EXPECT_EQ(b.get_long(), -0x123456789ALL);
  EXPECT_FLOAT_EQ(b.get_float(), 3.14f);
  EXPECT_DOUBLE_EQ(b.get_double(), -2.718281828);
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderRoundTrip,
                         ::testing::Values(ByteOrder::kBigEndian,
                                           ByteOrder::kLittleEndian),
                         [](const auto& info) {
                           return info.param == ByteOrder::kBigEndian
                                      ? "big"
                                      : "little";
                         });

}  // namespace
}  // namespace jhpc::minijvm
