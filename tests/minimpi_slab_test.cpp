// The eager-path slab recycler, through the public transport API only:
// steady-state zero-allocation behaviour, payload integrity across slab
// reuse, agreement between the transport.slab.* pvars and the internal
// counters, retention-cap overflow, and the zero-cost-off contract.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/pvar.hpp"

namespace jhpc::minimpi {
namespace {

constexpr int kTag = 7;
constexpr int kAckTag = 8;
constexpr int kGoTag = 9;

UniverseConfig quiet_config(bool pvars) {
  UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.deterministic_clock = true;
  cfg.obs.pvars = pvars;
  cfg.obs.trace_path.clear();
  return cfg;
}

/// One gated burst per round: rank 0 parks `msgs` eager messages in
/// rank 1's unexpected queue (the receiver is held on the go tag, and
/// eager sends enqueue synchronously, so every payload goes through the
/// slab — no scheduling luck involved), then rank 1 drains and acks.
void gated_rounds(Comm& world, std::size_t size, int rounds, int msgs) {
  std::vector<std::byte> buf(size);
  std::byte token{};
  if (world.rank() == 0) {
    for (int r = 0; r < rounds; ++r) {
      for (int m = 0; m < msgs; ++m) world.send(buf.data(), size, 1, kTag);
      world.send(&token, 1, 1, kGoTag);
      world.recv(&token, 1, 1, kAckTag);
    }
  } else {
    for (int r = 0; r < rounds; ++r) {
      world.recv(&token, 1, 0, kGoTag);
      for (int m = 0; m < msgs; ++m)
        world.recv(buf.data(), size, 0, kTag);
      world.send(&token, 1, 0, kAckTag);
    }
  }
}

/// Warm the rank1 -> rank0 direction of the smallest size class: window
/// acks usually match an already-posted receive (no slab involved), but a
/// preemption can park one unexpected, and its slab must then come from a
/// warm list too. 80 gated one-byte messages leave rank 0 holding a full
/// local list plus a depot surplus the reverse direction can draw on.
void warm_reverse_small_class(Comm& world) {
  std::byte t{};
  if (world.rank() == 1) {
    for (int m = 0; m < 80; ++m) world.send(&t, 1, 0, kTag);
    world.send(&t, 1, 0, kGoTag);
    world.recv(&t, 1, 0, kAckTag);
  } else {
    world.recv(&t, 1, 1, kGoTag);
    for (int m = 0; m < 80; ++m) world.recv(&t, 1, 1, kTag);
    world.send(&t, 1, 1, kAckTag);
  }
}

TEST(SlabTest, SteadyStateHasZeroAllocationsPerMessage) {
  // The tentpole claim: once the free lists are warm, an eager message
  // costs no heap allocation. Asserted through the transport.slab.*
  // pvars across a measured phase after a generous warmup.
  UniverseConfig cfg = quiet_config(/*pvars=*/true);
  constexpr int kWarmupRounds = 30;
  constexpr int kMeasuredRounds = 50;
  constexpr int kMsgs = 48;
  std::int64_t misses_before = -1, misses_after = -1, hits_delta = -1;
  Universe u(cfg);
  u.run([&](Comm& world) {
    gated_rounds(world, 128, kWarmupRounds, kMsgs);
    warm_reverse_small_class(world);
    world.barrier();
    obs::PvarRegistry& reg = *world.pvars();
    const obs::PvarId misses = reg.find("transport.slab.misses");
    const obs::PvarId hits = reg.find("transport.slab.hits");
    const std::int64_t m1 = reg.total(misses);
    const std::int64_t h1 = reg.total(hits);
    world.barrier();
    gated_rounds(world, 128, kMeasuredRounds, kMsgs);
    world.barrier();
    if (world.rank() == 0) {
      misses_before = m1;
      misses_after = reg.total(misses);
      hits_delta = reg.total(hits) - h1;
    }
  });
  EXPECT_GT(misses_before, 0) << "cold start must have allocated";
  EXPECT_EQ(misses_after, misses_before)
      << "steady-state eager traffic must not allocate";
  // Every measured payload came off a free list.
  EXPECT_GE(hits_delta, kMeasuredRounds * kMsgs);
}

TEST(SlabTest, RecycledSlabsDeliverCorrectPayloads) {
  // Reuse correctness: park messages with distinct payloads unexpected,
  // drain, and repeat so later rounds run on recycled slabs.
  UniverseConfig cfg = quiet_config(/*pvars=*/false);
  constexpr int kRounds = 10;
  constexpr int kMsgs = 48;
  constexpr std::size_t kBytes = 200;
  Universe u(cfg);
  int bad = 0;
  u.run([&](Comm& world) {
    std::vector<std::byte> buf(kBytes);
    std::byte go{};
    if (world.rank() == 0) {
      for (int r = 0; r < kRounds; ++r) {
        for (int m = 0; m < kMsgs; ++m) {
          buf.assign(kBytes, static_cast<std::byte>(r * kMsgs + m));
          world.send(buf.data(), kBytes, 1, kTag);
        }
        world.send(&go, 1, 1, kGoTag);
        world.recv(&go, 1, 1, kAckTag);
      }
    } else {
      for (int r = 0; r < kRounds; ++r) {
        world.recv(&go, 1, 0, kGoTag);
        for (int m = 0; m < kMsgs; ++m) {
          buf.assign(kBytes, std::byte{0});
          world.recv(buf.data(), kBytes, 0, kTag);
          const auto want = static_cast<std::byte>(r * kMsgs + m);
          for (const std::byte b : buf) {
            if (b != want) ++bad;
          }
        }
        world.send(&go, 1, 0, kAckTag);
      }
    }
  });
  EXPECT_EQ(bad, 0) << "recycled slabs must not corrupt payloads";
  const SlabStats st = u.slab_stats();
  EXPECT_GT(st.hits, 0u) << "later rounds must actually reuse slabs";
  EXPECT_GT(st.recycled, 0u);
}

TEST(SlabTest, PvarsAgreeWithInternalCounters) {
  // The transport.slab.* pvars and Universe::slab_stats() count the same
  // events from different plumbing; a clean (no-truncation) run must
  // leave them identical.
  UniverseConfig cfg = quiet_config(/*pvars=*/true);
  std::int64_t pv_hits = -1, pv_misses = -1, pv_recycled_bytes = -1;
  std::int64_t pv_drops = -1;
  Universe u(cfg);
  u.run([&](Comm& world) {
    gated_rounds(world, 1024, /*rounds=*/20, /*msgs=*/32);
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      pv_hits = reg.total(reg.find("transport.slab.hits"));
      pv_misses = reg.total(reg.find("transport.slab.misses"));
      pv_recycled_bytes =
          reg.total(reg.find("transport.slab.recycled_bytes"));
      pv_drops = reg.total(reg.find("transport.slab.overflow_drops"));
    }
  });
  const SlabStats st = u.slab_stats();
  EXPECT_EQ(static_cast<std::uint64_t>(pv_hits), st.hits);
  EXPECT_EQ(static_cast<std::uint64_t>(pv_misses), st.misses);
  EXPECT_EQ(static_cast<std::uint64_t>(pv_recycled_bytes),
            st.recycled_bytes);
  EXPECT_EQ(static_cast<std::uint64_t>(pv_drops), st.overflow_drops);
  EXPECT_GT(st.hits + st.misses, 0u);
}

TEST(SlabTest, OverflowPastRetentionCapsDropsInsteadOfHoarding) {
  // Drain a very deep unexpected queue in one burst: the receiver's
  // releases overrun its per-rank list and then the shared depot, and the
  // excess must be freed (counted), not retained without bound.
  UniverseConfig cfg = quiet_config(/*pvars=*/true);
  constexpr int kMsgs = 600;  // far past per-rank (32) + depot (256) caps
  constexpr std::size_t kBytes = 1024;
  std::int64_t pv_drops = -1;
  Universe u(cfg);
  u.run([&](Comm& world) {
    std::vector<std::byte> buf(kBytes);
    std::byte go{};
    if (world.rank() == 0) {
      for (int m = 0; m < kMsgs; ++m)
        world.send(buf.data(), kBytes, 1, kTag);
      world.send(&go, 1, 1, kGoTag);
    } else {
      world.recv(&go, 1, 0, kGoTag);
      for (int m = 0; m < kMsgs; ++m)
        world.recv(buf.data(), kBytes, 0, kTag);
    }
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      pv_drops = reg.total(reg.find("transport.slab.overflow_drops"));
    }
  });
  const SlabStats st = u.slab_stats();
  EXPECT_GE(st.overflow_drops, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(pv_drops), st.overflow_drops);
  EXPECT_GT(st.recycled, 0u) << "the caps' worth of slabs is still kept";
}

TEST(SlabTest, ZeroCostOffRunsWithoutPvarsAndResetsPerRun) {
  // Observability off: no registry exists, yet the recycler still works
  // (internal counters tick). A second run() on the same Universe resets
  // the counters but keeps the free lists warm, so it starts with hits.
  UniverseConfig cfg = quiet_config(/*pvars=*/false);
  bool pvars_absent = false;
  Universe u(cfg);
  u.run([&](Comm& world) {
    if (world.rank() == 0) pvars_absent = world.pvars() == nullptr;
    gated_rounds(world, 256, /*rounds=*/8, /*msgs=*/32);
  });
  EXPECT_TRUE(pvars_absent);
  const SlabStats first = u.slab_stats();
  EXPECT_GT(first.misses, 0u) << "first run allocates its slabs";
  EXPECT_GT(first.recycled, 0u);

  u.run([&](Comm& world) { gated_rounds(world, 256, 2, 16); });
  const SlabStats second = u.slab_stats();
  EXPECT_LT(second.hits + second.misses, first.hits + first.misses)
      << "counters must reset per run";
  EXPECT_GT(second.hits, 0u) << "warm free lists carry across runs";
}

TEST(SlabDepotTest, SharedDepotDonatesWarmSlabsAcrossUniverses) {
  // Two tenant Universes on one fleet depot: the first job's spilled
  // slabs are visible (and reusable) through the second's stats view.
  SlabDepotPtr depot = make_slab_depot(64u << 20);
  UniverseConfig cfg = quiet_config(/*pvars=*/false);
  cfg.shared_depot = depot;

  Universe u1(cfg);
  u1.run([](Comm& world) { gated_rounds(world, 4096, /*rounds=*/4, /*msgs=*/48); });
  const SlabStats s1 = u1.slab_stats();
  EXPECT_TRUE(s1.depot_shared);
  const SlabDepotStats after_first = slab_depot_stats(depot);
  EXPECT_GT(after_first.retained_bytes, 0u)
      << "round bursts overflow the per-rank caps into the depot";

  Universe u2(cfg);
  const SlabStats s2 = u2.slab_stats();
  // Same depot tier behind both handles, before u2 ever ran.
  EXPECT_TRUE(s2.depot_shared);
  EXPECT_EQ(s2.depot_retained_bytes, after_first.retained_bytes);
  u2.run([](Comm& world) { gated_rounds(world, 4096, 2, 48); });
  EXPECT_GT(u2.slab_stats().hits, 0u)
      << "the second tenant starts on the first tenant's warm slabs";

  // A private Universe reports an unshared, initially-empty depot.
  Universe priv(quiet_config(false));
  EXPECT_FALSE(priv.slab_stats().depot_shared);
  EXPECT_EQ(priv.slab_stats().depot_retained_bytes, 0u);
}

TEST(SlabDepotTest, ByteCeilingBoundsRetentionAndTrimFrees) {
  SlabDepotPtr depot = make_slab_depot(/*max_bytes=*/32 * 1024);
  UniverseConfig cfg = quiet_config(/*pvars=*/false);
  cfg.shared_depot = depot;
  Universe u(cfg);
  // Far more slab traffic than the ceiling admits.
  u.run([](Comm& world) { gated_rounds(world, 8192, 6, 64); });
  const SlabDepotStats st = slab_depot_stats(depot);
  EXPECT_LE(st.retained_bytes, st.max_bytes);
  EXPECT_LE(st.hwm_bytes, st.max_bytes);
  EXPECT_EQ(st.max_bytes, 32u * 1024u);
  slab_depot_trim(depot);
  EXPECT_EQ(slab_depot_stats(depot).retained_bytes, 0u);
  // The high-water mark survives the trim (it is the bound evidence).
  EXPECT_EQ(slab_depot_stats(depot).hwm_bytes, st.hwm_bytes);
}

TEST(SlabDepotTest, PerJobRetainedGaugeTracksLists) {
  // The per-job view: retained_bytes is a live gauge of this Universe's
  // free lists, not a flow counter — it survives reset across runs and
  // never exceeds what the job actually parked.
  UniverseConfig cfg = quiet_config(/*pvars=*/false);
  Universe u(cfg);
  u.run([](Comm& world) { gated_rounds(world, 1024, 4, 32); });
  const SlabStats first = u.slab_stats();
  EXPECT_GT(first.retained_bytes, 0u);
  u.run([](Comm& world) { gated_rounds(world, 1024, 1, 8); });
  const SlabStats second = u.slab_stats();
  EXPECT_GT(second.retained_bytes, 0u)
      << "warm lists persist across runs even though flow counters reset";
}

}  // namespace
}  // namespace jhpc::minimpi
