// Type sweep: every Java primitive type through the full stack — mpjbuf
// staging, MVAPICH2-J send/recv, Open MPI-J send/recv, reductions — via
// gtest typed tests.
#include <gtest/gtest.h>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/ompij/ompij.hpp"

namespace jhpc {
namespace {

using minijvm::JArray;
using minijvm::Jvm;
using minijvm::JvmConfig;

// Deterministic non-trivial value of any primitive type.
template <typename T>
T sample_value(std::size_t i) {
  if constexpr (std::is_same_v<T, minijvm::jboolean>) {
    return static_cast<T>(i % 2);
  } else if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(i) * static_cast<T>(0.25) - static_cast<T>(10);
  } else {
    return static_cast<T>(i * 7 + 3);
  }
}

template <typename T>
mv2j::Datatype datatype_of() {
  return mv2j::Datatype(minimpi::Datatype::basic(mv2j::kind_of<T>()));
}

template <typename T>
class TypedStackTest : public ::testing::Test {};

using AllPrimitives =
    ::testing::Types<minijvm::jbyte, minijvm::jboolean, minijvm::jchar,
                     minijvm::jshort, minijvm::jint, minijvm::jlong,
                     minijvm::jfloat, minijvm::jdouble>;
TYPED_TEST_SUITE(TypedStackTest, AllPrimitives);

TYPED_TEST(TypedStackTest, MpjbufRoundTripWithSection) {
  Jvm jvm({.heap_bytes = 1 << 20, .jni_crossing_ns = 0});
  mpjbuf::BufferFactory factory;
  auto src = jvm.new_array<TypeParam>(32);
  for (std::size_t i = 0; i < 32; ++i) src[i] = sample_value<TypeParam>(i);

  mpjbuf::Buffer buf = factory.get(1024);
  buf.put_section_header(mpjbuf::section_type_of<TypeParam>(), 32);
  buf.write(src, 0, 32);
  buf.commit();

  std::size_t n = 0;
  EXPECT_EQ(buf.get_section_header(&n),
            mpjbuf::section_type_of<TypeParam>());
  ASSERT_EQ(n, 32u);
  auto dst = jvm.new_array<TypeParam>(32);
  buf.read(dst, 0, 32);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(dst[i], src[i]);
}

TYPED_TEST(TypedStackTest, Mv2jSendRecvRoundTrip) {
  mv2j::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    auto& world = env.COMM_WORLD();
    const auto type = datatype_of<TypeParam>();
    if (world.getRank() == 0) {
      auto arr = env.newArray<TypeParam>(50);
      for (std::size_t i = 0; i < 50; ++i)
        arr[i] = sample_value<TypeParam>(i);
      world.send(arr, 50, type, 1, 0);
    } else {
      auto arr = env.newArray<TypeParam>(50);
      mv2j::Status st = world.recv(arr, 50, type, 0, 0);
      EXPECT_EQ(st.getCount(type), 50);
      for (std::size_t i = 0; i < 50; ++i)
        ASSERT_EQ(arr[i], sample_value<TypeParam>(i));
    }
  });
}

TYPED_TEST(TypedStackTest, Mv2jNonBlockingWithOffset) {
  mv2j::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    auto& world = env.COMM_WORLD();
    const auto type = datatype_of<TypeParam>();
    if (world.getRank() == 0) {
      auto arr = env.newArray<TypeParam>(20);
      for (std::size_t i = 0; i < 20; ++i)
        arr[i] = sample_value<TypeParam>(i);
      world.iSend(arr, 5, 10, type, 1, 0).waitFor();
    } else {
      auto arr = env.newArray<TypeParam>(20);
      world.iRecv(arr, 2, 10, type, 0, 0).waitFor();
      for (std::size_t i = 0; i < 10; ++i)
        ASSERT_EQ(arr[i + 2], sample_value<TypeParam>(i + 5));
    }
  });
}

TYPED_TEST(TypedStackTest, OmpijSendRecvRoundTrip) {
  ompij::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  ompij::run(o, [](ompij::Env& env) {
    auto& world = env.COMM_WORLD();
    const auto type = datatype_of<TypeParam>();
    if (world.getRank() == 0) {
      auto arr = env.newArray<TypeParam>(50);
      for (std::size_t i = 0; i < 50; ++i)
        arr[i] = sample_value<TypeParam>(i);
      world.send(arr, 50, type, 1, 0);
    } else {
      auto arr = env.newArray<TypeParam>(50);
      world.recv(arr, 50, type, 0, 0);
      for (std::size_t i = 0; i < 50; ++i)
        ASSERT_EQ(arr[i], sample_value<TypeParam>(i));
    }
    EXPECT_EQ(env.jvm().jni().outstanding_copies(), 0u);
  });
}

TYPED_TEST(TypedStackTest, Mv2jBcastAllTypes) {
  mv2j::RunOptions o;
  o.ranks = 3;
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    auto& world = env.COMM_WORLD();
    const auto type = datatype_of<TypeParam>();
    auto arr = env.newArray<TypeParam>(16);
    if (world.getRank() == 1) {
      for (std::size_t i = 0; i < 16; ++i)
        arr[i] = sample_value<TypeParam>(i);
    }
    world.bcast(arr, 16, type, 1);
    for (std::size_t i = 0; i < 16; ++i)
      ASSERT_EQ(arr[i], sample_value<TypeParam>(i));
  });
}

TYPED_TEST(TypedStackTest, AllReduceMaxAllTypes) {
  // MAX is defined for every primitive kind (boolean: logical or).
  mv2j::RunOptions o;
  o.ranks = 4;
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    auto& world = env.COMM_WORLD();
    const auto type = datatype_of<TypeParam>();
    auto mine = env.newArray<TypeParam>(4);
    auto out = env.newArray<TypeParam>(4);
    for (std::size_t i = 0; i < 4; ++i)
      mine[i] = sample_value<TypeParam>(
          static_cast<std::size_t>(world.getRank()) + i);
    world.allReduce(mine, out, 4, type, mv2j::MAX);
    for (std::size_t i = 0; i < 4; ++i) {
      TypeParam want = sample_value<TypeParam>(i);
      for (int r = 1; r < world.getSize(); ++r)
        want = std::max(want,
                        sample_value<TypeParam>(
                            static_cast<std::size_t>(r) + i));
      ASSERT_EQ(out[i], want);
    }
  });
}

}  // namespace
}  // namespace jhpc
