// jhpcd scheduler suite: admission control, backpressure, quotas,
// fairness, fleet sharing and tenant fault isolation. The stress cases
// overlap healthy tenants with fault-injected ones and assert that
// failures never leak across job boundaries and that fleet memory
// stays under the depot ceiling (the `service` label runs this under
// TSan and ASan in CI).
#include "jhpc/jhpcd/jhpcd.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::jhpcd {
namespace {

using minimpi::Comm;

/// A world-2 pingpong of `iters` small messages.
JobSpec pingpong_job(const std::string& name, int iters = 4) {
  JobSpec spec;
  spec.name = name;
  spec.config.world_size = 2;
  spec.rank_main = [iters](Comm& world) {
    std::int32_t x = 0;
    for (int i = 0; i < iters; ++i) {
      if (world.rank() == 0) {
        world.send(&x, sizeof(x), 1, 7);
        world.recv(&x, sizeof(x), 1, 7);
      } else {
        world.recv(&x, sizeof(x), 0, 7);
        world.send(&x, sizeof(x), 0, 7);
      }
    }
  };
  return spec;
}

/// A job that spins until `gate` opens, then pingpongs once. Used to
/// wedge a worker so submissions pile up behind it.
JobSpec blocker_job(std::atomic<bool>* gate) {
  JobSpec spec;
  spec.name = "blocker";
  spec.config.world_size = 2;
  spec.rank_main = [gate](Comm& world) {
    if (world.rank() == 0) {
      while (!gate->load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    world.barrier();
  };
  return spec;
}

TEST(JhpcdTest, CompletesSimpleJobs) {
  ServiceConfig cfg;
  cfg.workers = 2;
  JobManager mgr(cfg);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(mgr.submit(pingpong_job("pp" + std::to_string(i))));
  }
  for (auto& h : handles) {
    const JobResult r = h.await();
    EXPECT_EQ(r.state, JobState::kCompleted);
    EXPECT_EQ(r.error, nullptr);
    EXPECT_GE(r.queue_wait_ns, 0);
    EXPECT_GT(r.run_ns, 0);
  }
  const ServiceStats s = mgr.stats();
  EXPECT_EQ(s.admitted, 8u);
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.active, 0u);
}

TEST(JhpcdTest, RanksQuotaRejectsAtSubmit) {
  JobManager mgr;
  JobSpec spec = pingpong_job("fat");
  spec.config.world_size = 4;
  spec.quota.max_ranks = 2;
  EXPECT_THROW(mgr.submit(spec), QuotaExceededError);

  ServiceConfig tight;
  tight.max_ranks_per_job = 2;
  JobManager small(tight);
  JobSpec wide = pingpong_job("wide");
  wide.config.world_size = 3;
  EXPECT_THROW(small.submit(wide), QuotaExceededError);
  // The rejection is synchronous: nothing was admitted.
  EXPECT_EQ(small.stats().admitted, 0u);
}

TEST(JhpcdTest, BackpressureRejectsWithGrowingRetryHint) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  JobManager mgr(cfg);

  std::atomic<bool> gate{false};
  JobHandle blocker = mgr.submit(blocker_job(&gate));
  // Wait until the blocker occupies the worker, so the queue is truly
  // empty before we fill it.
  while (mgr.stats().active == 0) std::this_thread::yield();

  JobHandle q1 = mgr.submit(pingpong_job("q1"));
  JobHandle q2 = mgr.submit(pingpong_job("q2"));

  std::int64_t first_hint = 0;
  try {
    mgr.submit(pingpong_job("overflow1"));
    FAIL() << "expected AdmissionRejectedError";
  } catch (const AdmissionRejectedError& e) {
    first_hint = e.retry_after_ns();
    EXPECT_GT(first_hint, 0);
    EXPECT_EQ(e.code(), ErrorCode::kAdmissionRejected);
  }
  try {
    mgr.submit(pingpong_job("overflow2"));
    FAIL() << "expected AdmissionRejectedError";
  } catch (const AdmissionRejectedError& e) {
    // Consecutive rejections back off exponentially.
    EXPECT_GT(e.retry_after_ns(), first_hint);
  }

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.await().state, JobState::kCompleted);
  EXPECT_EQ(q1.await().state, JobState::kCompleted);
  EXPECT_EQ(q2.await().state, JobState::kCompleted);

  // A successful admission resets the backoff.
  JobHandle after = mgr.submit(pingpong_job("after"));
  EXPECT_EQ(after.await().state, JobState::kCompleted);
  const ServiceStats s = mgr.stats();
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.shed, 0u);
}

TEST(JhpcdTest, ShedsLowestPriorityQueuedJobFirst) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  JobManager mgr(cfg);

  std::atomic<bool> gate{false};
  JobHandle blocker = mgr.submit(blocker_job(&gate));
  while (mgr.stats().active == 0) std::this_thread::yield();

  JobSpec low = pingpong_job("low");
  low.priority = 0;
  JobSpec mid = pingpong_job("mid");
  mid.priority = 3;
  JobHandle h_low = mgr.submit(low);
  JobHandle h_mid = mgr.submit(mid);

  // An equal-priority submission is rejected, not admitted by eviction.
  JobSpec equal = pingpong_job("equal");
  equal.priority = 0;
  EXPECT_THROW(mgr.submit(equal), AdmissionRejectedError);

  // A higher-priority submission sheds the lowest-priority queued job.
  JobSpec high = pingpong_job("high");
  high.priority = 5;
  JobHandle h_high = mgr.submit(high);

  const JobResult shed = h_low.await();
  EXPECT_EQ(shed.state, JobState::kShed);
  EXPECT_EQ(shed.code, ErrorCode::kAdmissionRejected);
  ASSERT_NE(shed.error, nullptr);
  EXPECT_THROW(std::rethrow_exception(shed.error), AdmissionRejectedError);

  gate.store(true, std::memory_order_release);
  EXPECT_EQ(blocker.await().state, JobState::kCompleted);
  EXPECT_EQ(h_mid.await().state, JobState::kCompleted);
  EXPECT_EQ(h_high.await().state, JobState::kCompleted);
  const ServiceStats s = mgr.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_GE(s.rejected, 2u);  // the shed victim plus the equal-priority one
}

TEST(JhpcdTest, WallClockQuotaTripsOnlyTheOffender) {
  ServiceConfig cfg;
  cfg.workers = 2;
  JobManager mgr(cfg);

  JobSpec hog = pingpong_job("hog");
  hog.quota.max_wall_ns = 10'000'000;  // 10 ms
  hog.rank_main = [](Comm& world) {
    const std::int64_t start = now_ns();
    std::int32_t x = 0;
    // Pingpong until well past the budget; the watchdog's kill unwinds
    // us long before the loop bound.
    while (now_ns() - start < 2'000'000'000) {
      if (world.rank() == 0) {
        world.send(&x, sizeof(x), 1, 7);
        world.recv(&x, sizeof(x), 1, 7);
      } else {
        world.recv(&x, sizeof(x), 0, 7);
        world.send(&x, sizeof(x), 0, 7);
      }
    }
  };
  JobHandle h_hog = mgr.submit(hog);
  JobHandle h_ok = mgr.submit(pingpong_job("bystander", /*iters=*/64));

  const JobResult r_hog = h_hog.await();
  EXPECT_EQ(r_hog.state, JobState::kFailed);
  EXPECT_EQ(r_hog.code, ErrorCode::kQuotaExceeded);
  ASSERT_NE(r_hog.error, nullptr);
  EXPECT_THROW(std::rethrow_exception(r_hog.error), QuotaExceededError);
  EXPECT_NE(r_hog.error_what.find("wall-clock"), std::string::npos);

  // The co-resident tenant never observes the neighbor's kill.
  EXPECT_EQ(h_ok.await().state, JobState::kCompleted);
  EXPECT_EQ(mgr.stats().quota_trips, 1u);
}

TEST(JhpcdTest, SlabQuotaTrips) {
  ServiceConfig cfg;
  cfg.workers = 1;
  JobManager mgr(cfg);

  JobSpec spec;
  spec.name = "slab-hog";
  spec.config.world_size = 2;
  spec.quota.max_slab_bytes = 1;  // any retained slab trips
  spec.rank_main = [](Comm& world) {
    const std::int64_t start = now_ns();
    std::vector<std::byte> buf(8192);
    // Eager traffic cycles transport slabs through the free lists, so
    // retained_bytes rises above the (absurdly low) quota quickly.
    while (now_ns() - start < 2'000'000'000) {
      if (world.rank() == 0) {
        world.send(buf.data(), buf.size(), 1, 9);
        world.recv(buf.data(), buf.size(), 1, 9);
      } else {
        world.recv(buf.data(), buf.size(), 0, 9);
        world.send(buf.data(), buf.size(), 0, 9);
      }
    }
  };
  const JobResult r = mgr.submit(spec).await();
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_EQ(r.code, ErrorCode::kQuotaExceeded);
  EXPECT_NE(r.error_what.find("slab"), std::string::npos);
}

TEST(JhpcdTest, OutstandingMessageQuotaTrips) {
  ServiceConfig cfg;
  cfg.workers = 1;
  JobManager mgr(cfg);

  JobSpec spec;
  spec.name = "flooder";
  spec.config.world_size = 2;
  spec.quota.max_outstanding_msgs = 4;
  spec.rank_main = [](Comm& world) {
    std::int32_t x = 0;
    if (world.rank() == 1) {
      // Flood the peer with unexpected eager messages.
      for (int i = 0; i < 64; ++i) world.send(&x, sizeof(x), 0, 11);
    } else {
      // Receive late, so the unexpected queue's high-water mark rises
      // well past the quota before the first recv posts.
      const std::int64_t start = now_ns();
      while (now_ns() - start < 100'000'000) std::this_thread::yield();
    }
    for (int i = 0; world.rank() == 0 && i < 64; ++i) {
      world.recv(&x, sizeof(x), 1, 11);
    }
    world.barrier();
  };
  const JobResult r = mgr.submit(spec).await();
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_EQ(r.code, ErrorCode::kQuotaExceeded);
  EXPECT_NE(r.error_what.find("outstanding"), std::string::npos);
}

// The acceptance stress: a seeded chaos plan keeps killing one
// tenant's ranks while healthy tenants churn through the same fleet,
// with drains interleaved. Chaos failures must surface as typed ULFM
// errors in the chaos tenant only, and fleet memory must stay under
// the depot ceiling throughout.
TEST(JhpcdTest, TenantFaultIsolationUnderChurn) {
  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.depot_max_bytes = 4u << 20;
  JobManager mgr(cfg);

  std::vector<JobHandle> healthy;
  std::vector<JobHandle> chaos;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 6; ++i) {
      healthy.push_back(mgr.submit(
          pingpong_job("healthy" + std::to_string(round * 6 + i), 16)));
    }
    JobSpec bad;
    bad.name = "chaos" + std::to_string(round);
    bad.config.world_size = 4;
    // Seeded fail-stop of rank 2 early in the job, via the ordinary
    // fault plan — the tenant brings its own chaos.
    bad.config.fabric.faults.seed = 42 + static_cast<std::uint64_t>(round);
    bad.config.fabric.faults.kills.push_back({/*rank=*/2, /*at_vns=*/50'000});
    bad.rank_main = [](Comm& world) {
      std::int64_t acc = world.rank();
      for (int i = 0; i < 64; ++i) {
        std::int64_t out = 0;
        world.allreduce(&acc, &out, 1, minimpi::BasicKind::kLong,
                        minimpi::ReduceOp::kSum);
        acc = out;
      }
    };
    chaos.push_back(mgr.submit(bad));
    if (round == 1) mgr.drain();  // overlap a drain with the churn
  }

  for (auto& h : healthy) {
    const JobResult r = h.await();
    EXPECT_EQ(r.state, JobState::kCompleted)
        << r.name << ": " << r.error_what;
  }
  for (auto& h : chaos) {
    const JobResult r = h.await();
    EXPECT_EQ(r.state, JobState::kFailed) << r.name;
    // Which ULFM error wins the race to be recorded first depends on
    // rank scheduling: the direct observer raises RankFailed, while a
    // rank that hits the already-revoked communicator raises
    // CommRevoked. Both are the kill surfacing as a typed error.
    EXPECT_TRUE(r.code == ErrorCode::kRankFailed ||
                r.code == ErrorCode::kCommRevoked)
        << r.error_what;
  }
  mgr.drain();
  const ServiceStats s = mgr.stats();
  EXPECT_EQ(s.completed, healthy.size());
  EXPECT_EQ(s.failed, chaos.size());
  EXPECT_LE(s.depot.hwm_bytes, cfg.depot_max_bytes);
}

TEST(JhpcdTest, BoundedMemorySteadyStateChurn) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.pool_capacity = 6;
  cfg.depot_max_bytes = 1u << 20;
  JobManager mgr(cfg);

  constexpr int kJobs = 200;
  std::vector<JobHandle> handles;
  handles.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.name = "churn" + std::to_string(i);
    spec.config.world_size = 2;
    spec.rank_main = [](Comm& world) {
      std::vector<std::byte> buf(8192);
      if (world.rank() == 0) {
        world.send(buf.data(), buf.size(), 1, 3);
        world.recv(buf.data(), buf.size(), 1, 3);
      } else {
        world.recv(buf.data(), buf.size(), 0, 3);
        world.send(buf.data(), buf.size(), 0, 3);
      }
    };
    handles.push_back(mgr.submit(spec));
    if ((i & 31) == 31) mgr.drain();
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.await().state, JobState::kCompleted);
  }
  const ServiceStats s = mgr.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kJobs));
  // Steady state reuses Universes instead of building one per job...
  EXPECT_GT(s.universes_reused, s.universes_created);
  EXPECT_LE(s.universes_created,
            static_cast<std::uint64_t>(cfg.workers + cfg.pool_capacity));
  // ...and the shared depot never grows past its ceiling.
  EXPECT_LE(s.depot.hwm_bytes, cfg.depot_max_bytes);
  EXPECT_LE(s.depot.retained_bytes, cfg.depot_max_bytes);
}

TEST(JhpcdTest, WeightedRoundRobinFavorsLatencyClass) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  cfg.latency_weight = 3;
  JobManager mgr(cfg);

  std::mutex order_mu;
  std::vector<JobClass> order;
  auto body = [&order_mu, &order](JobClass cls) {
    return [&order_mu, &order, cls](Comm& world) {
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lk(order_mu);
        order.push_back(cls);
      }
      world.barrier();
    };
  };

  std::atomic<bool> gate{false};
  JobHandle blocker = mgr.submit(blocker_job(&gate));
  while (mgr.stats().active == 0) std::this_thread::yield();

  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec;
    spec.name = "bw" + std::to_string(i);
    spec.config.world_size = 2;
    spec.job_class = JobClass::kBandwidth;
    spec.rank_main = body(JobClass::kBandwidth);
    handles.push_back(mgr.submit(spec));
  }
  for (int i = 0; i < 4; ++i) {
    JobSpec spec;
    spec.name = "lat" + std::to_string(i);
    spec.config.world_size = 2;
    spec.job_class = JobClass::kLatency;
    spec.rank_main = body(JobClass::kLatency);
    handles.push_back(mgr.submit(spec));
  }

  gate.store(true, std::memory_order_release);
  blocker.await();
  for (auto& h : handles) {
    EXPECT_EQ(h.await().state, JobState::kCompleted);
  }

  ASSERT_EQ(order.size(), 8u);
  // Latency jobs were submitted AFTER every bandwidth job, yet the
  // weighted round-robin dispatches them ahead of the hogs...
  EXPECT_EQ(order.front(), JobClass::kLatency);
  // ...without starving the bandwidth class: some hog runs before the
  // last latency job.
  std::size_t first_bw = order.size(), last_lat = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == JobClass::kBandwidth) {
      first_bw = std::min(first_bw, i);
    } else {
      last_lat = i;
    }
  }
  EXPECT_LT(first_bw, last_lat);
}

TEST(JhpcdTest, ServicePvarsAndFlightEvents) {
  ServiceConfig cfg;
  cfg.workers = 1;
  JobManager mgr(cfg);
  JobHandle h = mgr.submit(pingpong_job("observed"));
  EXPECT_EQ(h.await().state, JobState::kCompleted);
  mgr.drain();

  const obs::PvarRegistry& reg = mgr.pvars();
  EXPECT_EQ(reg.total(reg.find("jhpcd.jobs.admitted")), 1);
  EXPECT_EQ(reg.total(reg.find("jhpcd.jobs.completed")), 1);
  EXPECT_EQ(reg.total(reg.find("jhpcd.jobs.failed")), 0);
  EXPECT_GE(reg.total(reg.find("jhpcd.universes.created")), 1);
  // The per-job namespace exists for this job id...
  const std::string prefix = "job." + std::to_string(h.id());
  EXPECT_TRUE(reg.find(prefix + ".queue_wait_ns").valid());
  EXPECT_EQ(reg.total(reg.find(prefix + ".ranks")), 2);
  // ...and the queue-wait histogram recorded the dispatch.
  EXPECT_EQ(reg.read(reg.find("jhpcd.queue.wait.latency"), 0), 1);

  const std::string flight = mgr.flight_report();
  EXPECT_NE(flight.find("job_admit"), std::string::npos);
  EXPECT_NE(flight.find("job_drain"), std::string::npos);
}

TEST(JhpcdTest, PerJobPvarsStopAtRegistryCapacity) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.pvar_capacity = 32;  // room for the jhpcd.* base + a few jobs
  JobManager mgr(cfg);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 40; ++i) {
    handles.push_back(mgr.submit(pingpong_job("cap" + std::to_string(i), 1)));
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.await().state, JobState::kCompleted);
  }
  // The registry filled up and registration stopped silently; the
  // aggregates kept counting every job.
  EXPECT_LE(mgr.pvars().size(), cfg.pvar_capacity);
  EXPECT_EQ(mgr.pvars().total(mgr.pvars().find("jhpcd.jobs.completed")), 40);
}

TEST(JhpcdTest, SubmitAfterShutdownIsRejected) {
  JobManager mgr;
  EXPECT_EQ(mgr.submit(pingpong_job("last")).await().state,
            JobState::kCompleted);
  mgr.shutdown();
  try {
    mgr.submit(pingpong_job("late"));
    FAIL() << "expected AdmissionRejectedError";
  } catch (const AdmissionRejectedError& e) {
    EXPECT_EQ(e.retry_after_ns(), 0);  // never retry: we're going away
  }
}

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(JhpcdTest, ServiceConfigEnvValidation) {
  {
    EnvGuard g("JHPC_SVC_WORKERS", "12");
    EXPECT_EQ(ServiceConfig::from_env().workers, 12);
  }
  {
    EnvGuard g("JHPC_SVC_WORKERS", "0");
    EXPECT_THROW(ServiceConfig::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_SVC_QUEUE_CAP", "junk");
    EXPECT_THROW(ServiceConfig::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_SVC_LATENCY_WEIGHT", "65");
    EXPECT_THROW(ServiceConfig::from_env(), InvalidArgumentError);
  }
  EXPECT_EQ(ServiceConfig::from_env().workers, ServiceConfig{}.workers);
}

}  // namespace
}  // namespace jhpc::jhpcd
