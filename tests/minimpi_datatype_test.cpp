// Datatype descriptors (basic + derived) and reduction operators.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/op.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

TEST(DatatypeTest, BasicSizes) {
  EXPECT_EQ(Datatype::byte_type().size(), 1u);
  EXPECT_EQ(Datatype::boolean_type().size(), 1u);
  EXPECT_EQ(Datatype::char_type().size(), 2u);
  EXPECT_EQ(Datatype::short_type().size(), 2u);
  EXPECT_EQ(Datatype::int_type().size(), 4u);
  EXPECT_EQ(Datatype::float_type().size(), 4u);
  EXPECT_EQ(Datatype::long_type().size(), 8u);
  EXPECT_EQ(Datatype::double_type().size(), 8u);
  for (int i = 0; i < kBasicKindCount; ++i) {
    const auto k = static_cast<BasicKind>(i);
    EXPECT_EQ(Datatype::basic(k).extent(), basic_size(k));
    EXPECT_TRUE(Datatype::basic(k).is_basic());
    EXPECT_EQ(Datatype::basic(k).kind(), k);
    EXPECT_EQ(Datatype::basic(k).leaf_kind(), k);
  }
}

TEST(DatatypeTest, ContiguousSizeAndExtent) {
  const auto t = Datatype::contiguous(5, Datatype::int_type());
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.extent(), 20u);
  EXPECT_FALSE(t.is_basic());
  EXPECT_EQ(t.leaf_kind(), BasicKind::kInt);
  EXPECT_THROW(t.kind(), InvalidArgumentError);
}

TEST(DatatypeTest, VectorSizeAndExtent) {
  // 3 blocks of 2 ints, stride 4 ints: size 24, extent (2*4+2)*4 = 40.
  const auto t = Datatype::vector(3, 2, 4, Datatype::int_type());
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), 40u);
  EXPECT_THROW(Datatype::vector(3, 4, 2, Datatype::int_type()),
               InvalidArgumentError);
}

TEST(DatatypeTest, VectorPackGathersStridedColumns) {
  // A 4x4 int matrix; vector(4,1,4) describes one column.
  std::array<std::int32_t, 16> m{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      m[static_cast<std::size_t>(r * 4 + c)] = r * 10 + c;
  const auto col = Datatype::vector(4, 1, 4, Datatype::int_type());
  std::array<std::int32_t, 4> packed{};
  col.pack(&m[1], packed.data(), 1);  // column 1
  EXPECT_EQ(packed, (std::array<std::int32_t, 4>{1, 11, 21, 31}));
}

TEST(DatatypeTest, VectorUnpackScattersBack) {
  const auto col = Datatype::vector(4, 1, 4, Datatype::int_type());
  std::array<std::int32_t, 4> vals{100, 200, 300, 400};
  std::array<std::int32_t, 16> m{};
  col.unpack(vals.data(), &m[2], 1);  // write into column 2
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(m[static_cast<std::size_t>(r * 4 + 2)], (r + 1) * 100);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 0);
}

TEST(DatatypeTest, PackUnpackRoundTripNested) {
  // vector of contiguous pairs: 2 blocks of 1 pair, stride 2 pairs.
  const auto pair = Datatype::contiguous(2, Datatype::short_type());
  const auto t = Datatype::vector(2, 1, 2, pair);
  EXPECT_EQ(t.size(), 8u);  // 2 pairs of shorts
  std::array<std::int16_t, 8> src{1, 2, 3, 4, 5, 6, 7, 8};
  std::array<std::int16_t, 4> packed{};
  t.pack(src.data(), packed.data(), 1);
  EXPECT_EQ(packed, (std::array<std::int16_t, 4>{1, 2, 5, 6}));
  std::array<std::int16_t, 8> dst{};
  t.unpack(packed.data(), dst.data(), 1);
  EXPECT_EQ(dst, (std::array<std::int16_t, 8>{1, 2, 0, 0, 5, 6, 0, 0}));
}

TEST(DatatypeTest, MultiElementPackUsesExtent) {
  const auto t = Datatype::vector(2, 1, 2, Datatype::int_type());
  // Each element spans 3 ints (extent), carries 2 ints (size).
  EXPECT_EQ(t.extent(), 12u);
  std::array<std::int32_t, 6> src{1, 2, 3, 4, 5, 6};
  std::array<std::int32_t, 4> packed{};
  t.pack(src.data(), packed.data(), 2);
  // Element 0 reads offsets {0,2}; element 1 starts at extent = 3 ints.
  EXPECT_EQ(packed, (std::array<std::int32_t, 4>{1, 3, 4, 6}));
}

TEST(DatatypeTest, IndexedSizeAndExtent) {
  const std::vector<int> lens{2, 1, 3};
  const std::vector<int> offs{0, 4, 6};
  const auto t = Datatype::indexed(lens, offs, Datatype::int_type());
  EXPECT_EQ(t.size(), 6u * 4u);    // 6 elements
  EXPECT_EQ(t.extent(), 9u * 4u);  // spans to element 9
  EXPECT_EQ(t.leaf_kind(), BasicKind::kInt);
  const std::vector<int> two{1, 2}, one{0}, neg{-1};
  EXPECT_THROW(Datatype::indexed(two, one, Datatype::int_type()),
               InvalidArgumentError);
  EXPECT_THROW(Datatype::indexed(neg, one, Datatype::int_type()),
               InvalidArgumentError);
}

TEST(DatatypeTest, IndexedPackUnpackRoundTrip) {
  const std::vector<int> lens{2, 1, 2};
  const std::vector<int> offs{1, 4, 6};
  const auto t = Datatype::indexed(lens, offs, Datatype::short_type());
  std::array<std::int16_t, 8> src{10, 11, 12, 13, 14, 15, 16, 17};
  std::array<std::int16_t, 5> packed{};
  t.pack(src.data(), packed.data(), 1);
  EXPECT_EQ(packed, (std::array<std::int16_t, 5>{11, 12, 14, 16, 17}));
  std::array<std::int16_t, 8> dst{};
  t.unpack(packed.data(), dst.data(), 1);
  EXPECT_EQ(dst, (std::array<std::int16_t, 8>{0, 11, 12, 0, 14, 0, 16, 17}));
}

TEST(DatatypeTest, IndexedEquality) {
  const std::vector<int> lens{1, 2};
  const std::vector<int> offs{0, 3};
  const auto a = Datatype::indexed(lens, offs, Datatype::byte_type());
  const auto b = Datatype::indexed(lens, offs, Datatype::byte_type());
  const std::vector<int> offs2{0, 4};
  const auto c = Datatype::indexed(lens, offs2, Datatype::byte_type());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(DatatypeTest, StructuralEquality) {
  EXPECT_EQ(Datatype::int_type(), Datatype::basic(BasicKind::kInt));
  EXPECT_EQ(Datatype::contiguous(3, Datatype::int_type()),
            Datatype::contiguous(3, Datatype::int_type()));
  EXPECT_FALSE(Datatype::contiguous(3, Datatype::int_type()) ==
               Datatype::contiguous(4, Datatype::int_type()));
  EXPECT_FALSE(Datatype::int_type() == Datatype::float_type());
}

template <typename T>
std::vector<T> reduce_vec(ReduceOp op, BasicKind kind, std::vector<T> a,
                          const std::vector<T>& b) {
  apply_reduce(op, kind, a.data(), b.data(), a.size());
  return a;
}

TEST(ReduceOpTest, IntSumProdMinMax) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kSum, BasicKind::kInt,
                                     {1, 2, 3}, {10, 20, 30}),
            (std::vector<std::int32_t>{11, 22, 33}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kProd, BasicKind::kInt,
                                     {2, 3, 4}, {5, 6, 7}),
            (std::vector<std::int32_t>{10, 18, 28}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kMin, BasicKind::kInt,
                                     {5, -2, 9}, {3, 0, 12}),
            (std::vector<std::int32_t>{3, -2, 9}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kMax, BasicKind::kInt,
                                     {5, -2, 9}, {3, 0, 12}),
            (std::vector<std::int32_t>{5, 0, 12}));
}

TEST(ReduceOpTest, BitwiseOnIntegers) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kBand, BasicKind::kInt,
                                     {0b1100}, {0b1010}),
            (std::vector<std::int32_t>{0b1000}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kBor, BasicKind::kInt,
                                     {0b1100}, {0b1010}),
            (std::vector<std::int32_t>{0b1110}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kBxor, BasicKind::kInt,
                                     {0b1100}, {0b1010}),
            (std::vector<std::int32_t>{0b0110}));
}

TEST(ReduceOpTest, LogicalOnIntegers) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kLand, BasicKind::kInt,
                                     {3, 0, 1, 0}, {1, 1, 0, 0}),
            (std::vector<std::int32_t>{1, 0, 0, 0}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kLor, BasicKind::kInt,
                                     {3, 0, 1, 0}, {1, 1, 0, 0}),
            (std::vector<std::int32_t>{1, 1, 1, 0}));
}

TEST(ReduceOpTest, DoubleSumAndMin) {
  EXPECT_EQ(reduce_vec<double>(ReduceOp::kSum, BasicKind::kDouble, {1.5},
                               {2.25}),
            (std::vector<double>{3.75}));
  EXPECT_EQ(reduce_vec<double>(ReduceOp::kMin, BasicKind::kDouble, {1.5},
                               {-2.25}),
            (std::vector<double>{-2.25}));
}

TEST(ReduceOpTest, BitwiseOnFloatsRejected) {
  std::vector<float> a{1.0f}, b{2.0f};
  EXPECT_THROW(
      apply_reduce(ReduceOp::kBand, BasicKind::kFloat, a.data(), b.data(), 1),
      InvalidArgumentError);
}

TEST(ReduceOpTest, BooleanSemantics) {
  std::vector<std::uint8_t> a{1, 0, 1, 0}, b{1, 1, 0, 0};
  auto land = a;
  apply_reduce(ReduceOp::kLand, BasicKind::kBoolean, land.data(), b.data(),
               4);
  EXPECT_EQ(land, (std::vector<std::uint8_t>{1, 0, 0, 0}));
  auto lxor = a;
  apply_reduce(ReduceOp::kBxor, BasicKind::kBoolean, lxor.data(), b.data(),
               4);
  EXPECT_EQ(lxor, (std::vector<std::uint8_t>{0, 1, 1, 0}));
  EXPECT_THROW(apply_reduce(ReduceOp::kSum, BasicKind::kBoolean, a.data(),
                            b.data(), 4),
               InvalidArgumentError);
}

TEST(ReduceOpTest, OpNamesAreStable) {
  EXPECT_STREQ(reduce_op_name(ReduceOp::kSum), "SUM");
  EXPECT_STREQ(reduce_op_name(ReduceOp::kBxor), "BXOR");
}

}  // namespace
}  // namespace jhpc::minimpi
