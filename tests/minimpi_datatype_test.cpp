// Datatype descriptors (basic + derived) and reduction operators.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/op.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

TEST(DatatypeTest, BasicSizes) {
  EXPECT_EQ(Datatype::byte_type().size(), 1u);
  EXPECT_EQ(Datatype::boolean_type().size(), 1u);
  EXPECT_EQ(Datatype::char_type().size(), 2u);
  EXPECT_EQ(Datatype::short_type().size(), 2u);
  EXPECT_EQ(Datatype::int_type().size(), 4u);
  EXPECT_EQ(Datatype::float_type().size(), 4u);
  EXPECT_EQ(Datatype::long_type().size(), 8u);
  EXPECT_EQ(Datatype::double_type().size(), 8u);
  for (int i = 0; i < kBasicKindCount; ++i) {
    const auto k = static_cast<BasicKind>(i);
    EXPECT_EQ(Datatype::basic(k).extent(), basic_size(k));
    EXPECT_TRUE(Datatype::basic(k).is_basic());
    EXPECT_EQ(Datatype::basic(k).kind(), k);
    EXPECT_EQ(Datatype::basic(k).leaf_kind(), k);
  }
}

TEST(DatatypeTest, ContiguousSizeAndExtent) {
  const auto t = Datatype::contiguous(5, Datatype::int_type());
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.extent(), 20u);
  EXPECT_FALSE(t.is_basic());
  EXPECT_EQ(t.leaf_kind(), BasicKind::kInt);
  EXPECT_THROW(t.kind(), InvalidArgumentError);
}

TEST(DatatypeTest, VectorSizeAndExtent) {
  // 3 blocks of 2 ints, stride 4 ints: size 24, extent (2*4+2)*4 = 40.
  const auto t = Datatype::vector(3, 2, 4, Datatype::int_type());
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), 40u);
  // Overlapping blocks (stride < blocklen) are legal, as in MPI: the
  // last block ends at (2*2 + 4) ints.
  const auto overlap = Datatype::vector(3, 4, 2, Datatype::int_type());
  EXPECT_EQ(overlap.size(), 48u);
  EXPECT_EQ(overlap.extent(), 32u);
  // Only genuinely malformed shapes throw.
  EXPECT_THROW(Datatype::vector(-1, 2, 4, Datatype::int_type()),
               InvalidArgumentError);
  EXPECT_THROW(Datatype::vector(3, -2, 4, Datatype::int_type()),
               InvalidArgumentError);
}

TEST(DatatypeTest, NegativeStrideExtentAndRoundTrip) {
  // 3 blocks of 1 int, stride -2 ints: data at offsets {0, -2, -4} ints.
  const auto t = Datatype::vector(3, 1, -2, Datatype::int_type());
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.true_lb(), -16);       // lowest byte touched
  EXPECT_EQ(t.true_extent(), 20u);   // -16 .. +4
  // MPI extent rule: lb clamps at 0, so extent = ub - lb = 0 - (-16) + 4.
  EXPECT_EQ(t.extent(), 20u);

  std::array<std::int32_t, 5> src{10, 11, 12, 13, 14};
  std::array<std::int32_t, 3> packed{};
  // Apply at the last element: reads offsets 4, 2, 0 (descending).
  t.pack(&src[4], packed.data(), 1);
  EXPECT_EQ(packed, (std::array<std::int32_t, 3>{14, 12, 10}));

  std::array<std::int32_t, 5> dst{};
  t.unpack(packed.data(), &dst[4], 1);
  EXPECT_EQ(dst, (std::array<std::int32_t, 5>{10, 0, 12, 0, 14}));
}

TEST(DatatypeTest, HvectorByteStride) {
  // 2 blocks of 1 short, block starts 6 bytes apart (not a multiple of
  // the base extent — exactly what hvector exists for).
  const auto t =
      Datatype::hvector(2, 1, 6, Datatype::short_type());
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.extent(), 8u);
  std::array<std::int16_t, 4> src{1, 2, 3, 4};
  std::array<std::int16_t, 2> packed{};
  t.pack(src.data(), packed.data(), 1);
  EXPECT_EQ(packed, (std::array<std::int16_t, 2>{1, 4}));
}

TEST(DatatypeTest, StructTypePacksHeterogeneousFields) {
  // struct { int32 a; double b; } with explicit displacements 0 and 8.
  const std::array<int, 2> lens{1, 1};
  const std::array<std::ptrdiff_t, 2> displs{0, 8};
  const std::array<Datatype, 2> fields{Datatype::int_type(),
                                       Datatype::double_type()};
  const auto t = Datatype::struct_type(lens, displs, fields);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 16u);
  EXPECT_FALSE(t.uniform_leaf());
  EXPECT_TRUE(Datatype::vector(2, 1, 3, Datatype::int_type()).uniform_leaf());

  struct Rec {
    std::int32_t a;
    std::int32_t pad;
    double b;
  };
  std::array<Rec, 2> recs{{{1, 0, 2.5}, {3, 0, 4.5}}};
  std::array<std::byte, 24> packed{};
  t.pack(recs.data(), packed.data(), 2);
  std::int32_t a0 = 0, a1 = 0;
  double b0 = 0, b1 = 0;
  std::memcpy(&a0, packed.data(), 4);
  std::memcpy(&b0, packed.data() + 4, 8);
  std::memcpy(&a1, packed.data() + 12, 4);
  std::memcpy(&b1, packed.data() + 16, 8);
  EXPECT_EQ(a0, 1);
  EXPECT_EQ(b0, 2.5);
  EXPECT_EQ(a1, 3);
  EXPECT_EQ(b1, 4.5);

  std::array<Rec, 2> back{};
  t.unpack(packed.data(), back.data(), 2);
  EXPECT_EQ(back[0].a, 1);
  EXPECT_EQ(back[0].b, 2.5);
  EXPECT_EQ(back[1].a, 3);
  EXPECT_EQ(back[1].b, 4.5);
}

TEST(DatatypeTest, FlatteningMergesAndCompressesRuns) {
  // Adjacent-run merge: contiguous-of-contiguous flattens to ONE run.
  const auto dense =
      Datatype::contiguous(4, Datatype::contiguous(3, Datatype::int_type()));
  ASSERT_EQ(dense.flat_runs().size(), 1u);
  EXPECT_EQ(dense.flat_runs()[0], (FlatRun{0, 48, 1, 0}));
  EXPECT_TRUE(dense.contiguous_layout());

  // Repeat-count compression: a strided vector is one compressed run,
  // however many blocks it has.
  const auto col = Datatype::vector(1000, 1, 4, Datatype::int_type());
  ASSERT_EQ(col.flat_runs().size(), 1u);
  EXPECT_EQ(col.flat_runs()[0], (FlatRun{0, 4, 1000, 16}));
  EXPECT_FALSE(col.contiguous_layout());

  // Nesting a compressed run under another constructor keeps it
  // compressed: an hvector whose byte stride equals the inner
  // progression period (1000 * 16) chains the copies into ONE run
  // instead of appending 8.
  const auto face = Datatype::hvector(8, 1, 16000, col);
  ASSERT_EQ(face.flat_runs().size(), 1u);
  EXPECT_EQ(face.flat_runs()[0].count, 8000u);

  // Indexed blocks that touch merge with their neighbours.
  const std::vector<int> lens{2, 1, 3};
  const std::vector<int> offs{0, 2, 3};
  const auto ix = Datatype::indexed(lens, offs, Datatype::int_type());
  ASSERT_EQ(ix.flat_runs().size(), 1u);
  EXPECT_EQ(ix.flat_runs()[0], (FlatRun{0, 24, 1, 0}));
  EXPECT_TRUE(ix.contiguous_layout());
}

TEST(DatatypeTest, NestingDepthCapThrowsTypedError) {
  Datatype t = Datatype::byte_type();
  // Up to the cap is fine...
  for (int i = 1; i < kMaxTypeDepth; ++i) t = Datatype::contiguous(1, t);
  // ...one constructor past it is a typed error, not a stack overflow.
  EXPECT_THROW(Datatype::contiguous(1, t), InvalidArgumentError);
  EXPECT_THROW(Datatype::vector(1, 1, 1, t), InvalidArgumentError);
  const std::array<int, 1> lens{1};
  const std::array<std::ptrdiff_t, 1> displs{0};
  const std::array<Datatype, 1> fields{t};
  EXPECT_THROW(Datatype::struct_type(lens, displs, fields),
               InvalidArgumentError);
}

TEST(DatatypeTest, TypedReduceWalksFlatLayout) {
  // Reduce 2 elements of vector(2,1,2,int) in place: only the strided
  // payload ints are folded, the gap ints stay untouched.
  const auto t = Datatype::vector(2, 1, 2, Datatype::int_type());
  std::array<std::int32_t, 6> inout{1, 100, 2, 3, 100, 4};
  const std::array<std::int32_t, 6> in{10, 999, 20, 30, 999, 40};
  apply_reduce_typed(ReduceOp::kSum, t, inout.data(), in.data(), 2);
  EXPECT_EQ(inout, (std::array<std::int32_t, 6>{11, 100, 22, 33, 100, 44}));

  const std::array<int, 2> lens{1, 1};
  const std::array<std::ptrdiff_t, 2> displs{0, 8};
  const std::array<Datatype, 2> fields{Datatype::int_type(),
                                       Datatype::double_type()};
  const auto mixed = Datatype::struct_type(lens, displs, fields);
  std::array<std::byte, 16> a{}, b{};
  EXPECT_THROW(
      apply_reduce_typed(ReduceOp::kSum, mixed, a.data(), b.data(), 1),
      UnsupportedOperationError);
}

TEST(DatatypeTest, VectorPackGathersStridedColumns) {
  // A 4x4 int matrix; vector(4,1,4) describes one column.
  std::array<std::int32_t, 16> m{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      m[static_cast<std::size_t>(r * 4 + c)] = r * 10 + c;
  const auto col = Datatype::vector(4, 1, 4, Datatype::int_type());
  std::array<std::int32_t, 4> packed{};
  col.pack(&m[1], packed.data(), 1);  // column 1
  EXPECT_EQ(packed, (std::array<std::int32_t, 4>{1, 11, 21, 31}));
}

TEST(DatatypeTest, VectorUnpackScattersBack) {
  const auto col = Datatype::vector(4, 1, 4, Datatype::int_type());
  std::array<std::int32_t, 4> vals{100, 200, 300, 400};
  std::array<std::int32_t, 16> m{};
  col.unpack(vals.data(), &m[2], 1);  // write into column 2
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(m[static_cast<std::size_t>(r * 4 + 2)], (r + 1) * 100);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 0);
}

TEST(DatatypeTest, PackUnpackRoundTripNested) {
  // vector of contiguous pairs: 2 blocks of 1 pair, stride 2 pairs.
  const auto pair = Datatype::contiguous(2, Datatype::short_type());
  const auto t = Datatype::vector(2, 1, 2, pair);
  EXPECT_EQ(t.size(), 8u);  // 2 pairs of shorts
  std::array<std::int16_t, 8> src{1, 2, 3, 4, 5, 6, 7, 8};
  std::array<std::int16_t, 4> packed{};
  t.pack(src.data(), packed.data(), 1);
  EXPECT_EQ(packed, (std::array<std::int16_t, 4>{1, 2, 5, 6}));
  std::array<std::int16_t, 8> dst{};
  t.unpack(packed.data(), dst.data(), 1);
  EXPECT_EQ(dst, (std::array<std::int16_t, 8>{1, 2, 0, 0, 5, 6, 0, 0}));
}

TEST(DatatypeTest, MultiElementPackUsesExtent) {
  const auto t = Datatype::vector(2, 1, 2, Datatype::int_type());
  // Each element spans 3 ints (extent), carries 2 ints (size).
  EXPECT_EQ(t.extent(), 12u);
  std::array<std::int32_t, 6> src{1, 2, 3, 4, 5, 6};
  std::array<std::int32_t, 4> packed{};
  t.pack(src.data(), packed.data(), 2);
  // Element 0 reads offsets {0,2}; element 1 starts at extent = 3 ints.
  EXPECT_EQ(packed, (std::array<std::int32_t, 4>{1, 3, 4, 6}));
}

TEST(DatatypeTest, IndexedSizeAndExtent) {
  const std::vector<int> lens{2, 1, 3};
  const std::vector<int> offs{0, 4, 6};
  const auto t = Datatype::indexed(lens, offs, Datatype::int_type());
  EXPECT_EQ(t.size(), 6u * 4u);    // 6 elements
  EXPECT_EQ(t.extent(), 9u * 4u);  // spans to element 9
  EXPECT_EQ(t.leaf_kind(), BasicKind::kInt);
  const std::vector<int> two{1, 2}, one{0}, neg{-1};
  EXPECT_THROW(Datatype::indexed(two, one, Datatype::int_type()),
               InvalidArgumentError);
  EXPECT_THROW(Datatype::indexed(neg, one, Datatype::int_type()),
               InvalidArgumentError);
}

TEST(DatatypeTest, IndexedPackUnpackRoundTrip) {
  const std::vector<int> lens{2, 1, 2};
  const std::vector<int> offs{1, 4, 6};
  const auto t = Datatype::indexed(lens, offs, Datatype::short_type());
  std::array<std::int16_t, 8> src{10, 11, 12, 13, 14, 15, 16, 17};
  std::array<std::int16_t, 5> packed{};
  t.pack(src.data(), packed.data(), 1);
  EXPECT_EQ(packed, (std::array<std::int16_t, 5>{11, 12, 14, 16, 17}));
  std::array<std::int16_t, 8> dst{};
  t.unpack(packed.data(), dst.data(), 1);
  EXPECT_EQ(dst, (std::array<std::int16_t, 8>{0, 11, 12, 0, 14, 0, 16, 17}));
}

TEST(DatatypeTest, IndexedEquality) {
  const std::vector<int> lens{1, 2};
  const std::vector<int> offs{0, 3};
  const auto a = Datatype::indexed(lens, offs, Datatype::byte_type());
  const auto b = Datatype::indexed(lens, offs, Datatype::byte_type());
  const std::vector<int> offs2{0, 4};
  const auto c = Datatype::indexed(lens, offs2, Datatype::byte_type());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(DatatypeTest, StructuralEquality) {
  EXPECT_EQ(Datatype::int_type(), Datatype::basic(BasicKind::kInt));
  EXPECT_EQ(Datatype::contiguous(3, Datatype::int_type()),
            Datatype::contiguous(3, Datatype::int_type()));
  EXPECT_FALSE(Datatype::contiguous(3, Datatype::int_type()) ==
               Datatype::contiguous(4, Datatype::int_type()));
  EXPECT_FALSE(Datatype::int_type() == Datatype::float_type());
}

template <typename T>
std::vector<T> reduce_vec(ReduceOp op, BasicKind kind, std::vector<T> a,
                          const std::vector<T>& b) {
  apply_reduce(op, kind, a.data(), b.data(), a.size());
  return a;
}

TEST(ReduceOpTest, IntSumProdMinMax) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kSum, BasicKind::kInt,
                                     {1, 2, 3}, {10, 20, 30}),
            (std::vector<std::int32_t>{11, 22, 33}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kProd, BasicKind::kInt,
                                     {2, 3, 4}, {5, 6, 7}),
            (std::vector<std::int32_t>{10, 18, 28}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kMin, BasicKind::kInt,
                                     {5, -2, 9}, {3, 0, 12}),
            (std::vector<std::int32_t>{3, -2, 9}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kMax, BasicKind::kInt,
                                     {5, -2, 9}, {3, 0, 12}),
            (std::vector<std::int32_t>{5, 0, 12}));
}

TEST(ReduceOpTest, BitwiseOnIntegers) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kBand, BasicKind::kInt,
                                     {0b1100}, {0b1010}),
            (std::vector<std::int32_t>{0b1000}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kBor, BasicKind::kInt,
                                     {0b1100}, {0b1010}),
            (std::vector<std::int32_t>{0b1110}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kBxor, BasicKind::kInt,
                                     {0b1100}, {0b1010}),
            (std::vector<std::int32_t>{0b0110}));
}

TEST(ReduceOpTest, LogicalOnIntegers) {
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kLand, BasicKind::kInt,
                                     {3, 0, 1, 0}, {1, 1, 0, 0}),
            (std::vector<std::int32_t>{1, 0, 0, 0}));
  EXPECT_EQ(reduce_vec<std::int32_t>(ReduceOp::kLor, BasicKind::kInt,
                                     {3, 0, 1, 0}, {1, 1, 0, 0}),
            (std::vector<std::int32_t>{1, 1, 1, 0}));
}

TEST(ReduceOpTest, DoubleSumAndMin) {
  EXPECT_EQ(reduce_vec<double>(ReduceOp::kSum, BasicKind::kDouble, {1.5},
                               {2.25}),
            (std::vector<double>{3.75}));
  EXPECT_EQ(reduce_vec<double>(ReduceOp::kMin, BasicKind::kDouble, {1.5},
                               {-2.25}),
            (std::vector<double>{-2.25}));
}

TEST(ReduceOpTest, BitwiseOnFloatsRejected) {
  std::vector<float> a{1.0f}, b{2.0f};
  EXPECT_THROW(
      apply_reduce(ReduceOp::kBand, BasicKind::kFloat, a.data(), b.data(), 1),
      InvalidArgumentError);
}

TEST(ReduceOpTest, BooleanSemantics) {
  std::vector<std::uint8_t> a{1, 0, 1, 0}, b{1, 1, 0, 0};
  auto land = a;
  apply_reduce(ReduceOp::kLand, BasicKind::kBoolean, land.data(), b.data(),
               4);
  EXPECT_EQ(land, (std::vector<std::uint8_t>{1, 0, 0, 0}));
  auto lxor = a;
  apply_reduce(ReduceOp::kBxor, BasicKind::kBoolean, lxor.data(), b.data(),
               4);
  EXPECT_EQ(lxor, (std::vector<std::uint8_t>{0, 1, 1, 0}));
  EXPECT_THROW(apply_reduce(ReduceOp::kSum, BasicKind::kBoolean, a.data(),
                            b.data(), 4),
               InvalidArgumentError);
}

TEST(ReduceOpTest, OpNamesAreStable) {
  EXPECT_STREQ(reduce_op_name(ReduceOp::kSum), "SUM");
  EXPECT_STREQ(reduce_op_name(ReduceOp::kBxor), "BXOR");
}

}  // namespace
}  // namespace jhpc::minimpi
