// Collective semantics, exercised over BOTH algorithm suites and a range
// of communicator sizes (parameterized): every collective must produce
// identical results regardless of suite or rank count.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"

namespace jhpc::minimpi {
namespace {

using SuiteSize = std::tuple<CollectiveSuite, int>;

class CollTest : public ::testing::TestWithParam<SuiteSize> {
 protected:
  UniverseConfig make_cfg() const {
    UniverseConfig c;
    c.suite = std::get<0>(GetParam());
    c.world_size = std::get<1>(GetParam());
    // Small thresholds so "large message" algorithm variants are hit by
    // modest test payloads.
    c.bcast_binomial_max = 512;
    c.allreduce_rd_max = 512;
    c.allgather_rd_max = 1024;
    c.eager_limit = 2048;
    return c;
  }
};

TEST_P(CollTest, BarrierCompletes) {
  Universe::launch(make_cfg(), [](Comm& world) {
    for (int i = 0; i < 5; ++i) world.barrier();
  });
}

TEST_P(CollTest, BcastSmallFromEveryRoot) {
  Universe::launch(make_cfg(), [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<int> buf(16, world.rank() == root ? root * 7 + 1 : -1);
      world.bcast(buf.data(), buf.size() * sizeof(int), root);
      for (int v : buf) EXPECT_EQ(v, root * 7 + 1);
    }
  });
}

TEST_P(CollTest, BcastLargeHitsScatterRingPath) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const std::size_t n = 64 * 1024;  // far above bcast_binomial_max
    std::vector<std::uint8_t> buf(n);
    if (world.rank() == 2 % world.size()) {
      for (std::size_t i = 0; i < n; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 13 & 0xff);
    }
    world.bcast(buf.data(), n, 2 % world.size());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 13 & 0xff));
  });
}

TEST_P(CollTest, ReduceSumToEveryRoot) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    for (int root = 0; root < size; ++root) {
      std::vector<std::int32_t> mine(10);
      for (std::size_t i = 0; i < mine.size(); ++i)
        mine[i] = world.rank() + static_cast<int>(i);
      std::vector<std::int32_t> out(10, -1);
      world.reduce(mine.data(), out.data(), mine.size(), BasicKind::kInt,
                   ReduceOp::kSum, root);
      if (world.rank() == root) {
        const int ranksum = size * (size - 1) / 2;
        for (std::size_t i = 0; i < out.size(); ++i)
          EXPECT_EQ(out[i], ranksum + static_cast<int>(i) * size);
      }
    }
  });
}

TEST_P(CollTest, ReduceMinMax) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const std::int64_t mine = 1000 - 7 * world.rank();
    std::int64_t lo = 0, hi = 0;
    world.reduce(&mine, &lo, 1, BasicKind::kLong, ReduceOp::kMin, 0);
    world.reduce(&mine, &hi, 1, BasicKind::kLong, ReduceOp::kMax, 0);
    if (world.rank() == 0) {
      EXPECT_EQ(lo, 1000 - 7 * (world.size() - 1));
      EXPECT_EQ(hi, 1000);
    }
  });
}

TEST_P(CollTest, AllreduceSmallRecursiveDoubling) {
  Universe::launch(make_cfg(), [](Comm& world) {
    std::int32_t v = world.rank() + 1;
    std::int32_t sum = 0;
    world.allreduce(&v, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
    EXPECT_EQ(sum, world.size() * (world.size() + 1) / 2);
  });
}

TEST_P(CollTest, AllreduceLargeRingPath) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const std::size_t count = 8192;  // 32 KB of ints > allreduce_rd_max
    std::vector<std::int32_t> mine(count);
    for (std::size_t i = 0; i < count; ++i)
      mine[i] = world.rank() + static_cast<std::int32_t>(i % 97);
    std::vector<std::int32_t> out(count, 0);
    world.allreduce(mine.data(), out.data(), count, BasicKind::kInt,
                    ReduceOp::kSum);
    const int size = world.size();
    const int ranksum = size * (size - 1) / 2;
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(out[i], ranksum + static_cast<std::int32_t>(i % 97) * size);
  });
}

TEST_P(CollTest, AllreduceDoubleSum) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const double v = 0.5 * (world.rank() + 1);
    double sum = 0;
    world.allreduce(&v, &sum, 1, BasicKind::kDouble, ReduceOp::kSum);
    EXPECT_NEAR(sum, 0.5 * world.size() * (world.size() + 1) / 2, 1e-9);
  });
}

TEST_P(CollTest, GatherOrdersBlocksByRank) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    for (int root = 0; root < size; ++root) {
      std::array<std::int32_t, 4> mine{};
      mine.fill(world.rank() * 10 + root);
      std::vector<std::int32_t> all(static_cast<std::size_t>(size) * 4, -1);
      world.gather(mine.data(), sizeof(mine), all.data(), root);
      if (world.rank() == root) {
        for (int r = 0; r < size; ++r)
          for (int j = 0; j < 4; ++j)
            EXPECT_EQ(all[static_cast<std::size_t>(r * 4 + j)],
                      r * 10 + root);
      }
    }
  });
}

TEST_P(CollTest, ScatterDistributesBlocks) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    for (int root = 0; root < size; ++root) {
      std::vector<std::int32_t> all;
      if (world.rank() == root) {
        all.resize(static_cast<std::size_t>(size) * 3);
        for (int r = 0; r < size; ++r)
          for (int j = 0; j < 3; ++j)
            all[static_cast<std::size_t>(r * 3 + j)] = r * 100 + j;
      }
      std::array<std::int32_t, 3> mine{};
      world.scatter(all.data(), sizeof(mine), mine.data(), root);
      for (int j = 0; j < 3; ++j)
        EXPECT_EQ(mine[static_cast<std::size_t>(j)],
                  world.rank() * 100 + j);
    }
  });
}

TEST_P(CollTest, AllgatherSmallAndLarge) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    for (const std::size_t block : {8ul, 4096ul}) {
      std::vector<std::uint8_t> mine(block,
                                     static_cast<std::uint8_t>(world.rank()));
      std::vector<std::uint8_t> all(block * static_cast<std::size_t>(size));
      world.allgather(mine.data(), block, all.data());
      for (int r = 0; r < size; ++r)
        for (std::size_t j = 0; j < block; ++j)
          ASSERT_EQ(all[static_cast<std::size_t>(r) * block + j],
                    static_cast<std::uint8_t>(r));
    }
  });
}

TEST_P(CollTest, AlltoallTransposesBlocks) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    std::vector<std::int32_t> send(static_cast<std::size_t>(size) * 2);
    for (int r = 0; r < size; ++r) {
      send[static_cast<std::size_t>(2 * r)] = world.rank() * 1000 + r;
      send[static_cast<std::size_t>(2 * r + 1)] = -(world.rank() + r);
    }
    std::vector<std::int32_t> recv(static_cast<std::size_t>(size) * 2, 7777);
    world.alltoall(send.data(), 2 * sizeof(std::int32_t), recv.data());
    for (int r = 0; r < size; ++r) {
      EXPECT_EQ(recv[static_cast<std::size_t>(2 * r)],
                r * 1000 + world.rank());
      EXPECT_EQ(recv[static_cast<std::size_t>(2 * r + 1)],
                -(r + world.rank()));
    }
  });
}

TEST_P(CollTest, GathervVariableBlocks) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    // Rank r contributes r+1 ints.
    std::vector<std::size_t> counts(static_cast<std::size_t>(size));
    std::vector<std::size_t> displs(static_cast<std::size_t>(size));
    std::size_t total = 0;
    for (int r = 0; r < size; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r + 1) * sizeof(std::int32_t);
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<std::int32_t> mine(static_cast<std::size_t>(world.rank()) + 1,
                                   world.rank() + 1);
    std::vector<std::int32_t> all(total / sizeof(std::int32_t), -1);
    world.gatherv(mine.data(), mine.size() * sizeof(std::int32_t),
                  all.data(), counts, displs, 0);
    if (world.rank() == 0) {
      std::size_t idx = 0;
      for (int r = 0; r < size; ++r)
        for (int j = 0; j <= r; ++j) EXPECT_EQ(all[idx++], r + 1);
    }
  });
}

TEST_P(CollTest, ScattervVariableBlocks) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    std::vector<std::size_t> counts(static_cast<std::size_t>(size));
    std::vector<std::size_t> displs(static_cast<std::size_t>(size));
    std::size_t total = 0;
    for (int r = 0; r < size; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r + 1) * sizeof(std::int32_t);
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<std::int32_t> all;
    if (world.rank() == 0) {
      all.resize(total / sizeof(std::int32_t));
      std::size_t idx = 0;
      for (int r = 0; r < size; ++r)
        for (int j = 0; j <= r; ++j) all[idx++] = r * 7;
    }
    std::vector<std::int32_t> mine(static_cast<std::size_t>(world.rank()) + 1,
                                   -1);
    world.scatterv(all.data(), counts, displs, mine.data(),
                   mine.size() * sizeof(std::int32_t), 0);
    for (const auto v : mine) EXPECT_EQ(v, world.rank() * 7);
  });
}

TEST_P(CollTest, AllgathervRoundTrip) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    std::vector<std::size_t> counts(static_cast<std::size_t>(size));
    std::vector<std::size_t> displs(static_cast<std::size_t>(size));
    std::size_t total = 0;
    for (int r = 0; r < size; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>((r % 3) + 1) * 8;
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    const auto me = static_cast<std::size_t>(world.rank());
    std::vector<std::uint8_t> mine(counts[me],
                                   static_cast<std::uint8_t>(world.rank()));
    std::vector<std::uint8_t> all(total, 0xEE);
    world.allgatherv(mine.data(), mine.size(), all.data(), counts, displs);
    for (int r = 0; r < size; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      for (std::size_t j = 0; j < counts[ri]; ++j)
        ASSERT_EQ(all[displs[ri] + j], static_cast<std::uint8_t>(r));
    }
  });
}

TEST_P(CollTest, AlltoallvTransposesVariableBlocks) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    // Rank r sends (r + dst + 1) bytes to each dst.
    auto count_for = [](int from, int to) {
      return static_cast<std::size_t>(from + to + 1);
    };
    std::vector<std::size_t> scounts, sdispls, rcounts, rdispls;
    std::size_t stotal = 0, rtotal = 0;
    for (int r = 0; r < size; ++r) {
      scounts.push_back(count_for(world.rank(), r));
      sdispls.push_back(stotal);
      stotal += scounts.back();
      rcounts.push_back(count_for(r, world.rank()));
      rdispls.push_back(rtotal);
      rtotal += rcounts.back();
    }
    std::vector<std::uint8_t> send(stotal);
    for (int r = 0; r < size; ++r)
      for (std::size_t j = 0; j < scounts[static_cast<std::size_t>(r)]; ++j)
        send[sdispls[static_cast<std::size_t>(r)] + j] =
            static_cast<std::uint8_t>(world.rank() * 16 + r);
    std::vector<std::uint8_t> recv(rtotal, 0);
    world.alltoallv(send.data(), scounts, sdispls, recv.data(), rcounts,
                    rdispls);
    for (int r = 0; r < size; ++r)
      for (std::size_t j = 0; j < rcounts[static_cast<std::size_t>(r)]; ++j)
        ASSERT_EQ(recv[rdispls[static_cast<std::size_t>(r)] + j],
                  static_cast<std::uint8_t>(r * 16 + world.rank()));
  });
}

TEST_P(CollTest, ReduceScatterBlockDeliversOwnBlock) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    constexpr std::size_t kPerRank = 5;
    // Rank r contributes value (r+1) to every element; block b of the
    // reduction is (sum of ranks+1) * marker(b).
    std::vector<std::int32_t> mine(kPerRank * static_cast<std::size_t>(size));
    for (int b = 0; b < size; ++b)
      for (std::size_t j = 0; j < kPerRank; ++j)
        mine[static_cast<std::size_t>(b) * kPerRank + j] =
            (world.rank() + 1) * (b + 1);
    std::vector<std::int32_t> out(kPerRank, -1);
    world.reduce_scatter_block(mine.data(), out.data(), kPerRank,
                               BasicKind::kInt, ReduceOp::kSum);
    const int ranksum = size * (size + 1) / 2;
    for (std::size_t j = 0; j < kPerRank; ++j)
      EXPECT_EQ(out[j], ranksum * (world.rank() + 1));
  });
}

TEST_P(CollTest, ReduceScatterBlockLargeBlocks) {
  Universe::launch(make_cfg(), [](Comm& world) {
    const int size = world.size();
    const std::size_t per_rank = 3000;  // rendezvous-sized traffic
    std::vector<std::int64_t> mine(per_rank * static_cast<std::size_t>(size),
                                   1);
    std::vector<std::int64_t> out(per_rank, 0);
    world.reduce_scatter_block(mine.data(), out.data(), per_rank,
                               BasicKind::kLong, ReduceOp::kSum);
    for (std::size_t j = 0; j < per_rank; ++j) ASSERT_EQ(out[j], size);
  });
}

TEST_P(CollTest, ScanComputesInclusivePrefix) {
  Universe::launch(make_cfg(), [](Comm& world) {
    std::vector<std::int32_t> mine(4);
    for (std::size_t j = 0; j < 4; ++j)
      mine[j] = world.rank() + 1 + static_cast<int>(j);
    std::vector<std::int32_t> out(4, -1);
    world.scan(mine.data(), out.data(), 4, BasicKind::kInt, ReduceOp::kSum);
    const int r = world.rank();
    // sum over q=0..r of (q+1+j) = (r+1)(r+2)/2 + j*(r+1)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(out[j], (r + 1) * (r + 2) / 2 +
                            static_cast<int>(j) * (r + 1));
  });
}

TEST_P(CollTest, ScanWithMaxOperator) {
  Universe::launch(make_cfg(), [](Comm& world) {
    // Values zig-zag so the running max is non-trivial.
    const std::int32_t v = (world.rank() % 3) * 10;
    std::int32_t out = -1;
    world.scan(&v, &out, 1, BasicKind::kInt, ReduceOp::kMax);
    std::int32_t want = 0;
    for (int q = 0; q <= world.rank(); ++q)
      want = std::max(want, (q % 3) * 10);
    EXPECT_EQ(out, want);
  });
}

TEST_P(CollTest, ConsecutiveCollectivesDoNotCrossTalk) {
  Universe::launch(make_cfg(), [](Comm& world) {
    for (int round = 0; round < 10; ++round) {
      std::int32_t v = world.rank() + round;
      std::int32_t sum = 0;
      world.allreduce(&v, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
      const int size = world.size();
      ASSERT_EQ(sum, size * (size - 1) / 2 + round * size);
      int token = round * 31;
      world.bcast(&token, sizeof(token), round % size);
      ASSERT_EQ(token, round * 31);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SuitesAndSizes, CollTest,
    ::testing::Combine(::testing::Values(CollectiveSuite::kMv2,
                                         CollectiveSuite::kOmpiBasic),
                       ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16)),
    [](const ::testing::TestParamInfo<SuiteSize>& info) {
      const auto suite = std::get<0>(info.param) == CollectiveSuite::kMv2
                             ? "mv2"
                             : "basic";
      return std::string(suite) + "_np" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace jhpc::minimpi
