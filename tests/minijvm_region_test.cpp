// Get/Set<Type>ArrayRegion emulation (what the real Open MPI Java
// bindings use per call) and related JNI surface added for the baseline.
#include <gtest/gtest.h>

#include <vector>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minijvm {
namespace {

JvmConfig fast_cfg() {
  JvmConfig c;
  c.heap_bytes = 1 << 20;
  c.jni_crossing_ns = 0;
  return c;
}

TEST(ArrayRegionTest, GetCopiesRequestedWindowOnly) {
  Jvm jvm(fast_cfg());
  auto arr = jvm.new_array<jint>(10);
  for (std::size_t i = 0; i < 10; ++i) arr[i] = static_cast<jint>(i * 2);
  std::vector<jint> out(4, -1);
  jvm.jni().get_array_region(arr, 3, 4, out.data());
  EXPECT_EQ(out, (std::vector<jint>{6, 8, 10, 12}));
}

TEST(ArrayRegionTest, SetWritesRequestedWindowOnly) {
  Jvm jvm(fast_cfg());
  auto arr = jvm.new_array<jshort>(6);
  const std::vector<jshort> in{7, 8};
  jvm.jni().set_array_region(arr, 2, 2, in.data());
  EXPECT_EQ(arr[1], 0);
  EXPECT_EQ(arr[2], 7);
  EXPECT_EQ(arr[3], 8);
  EXPECT_EQ(arr[4], 0);
}

TEST(ArrayRegionTest, BoundsChecked) {
  Jvm jvm(fast_cfg());
  auto arr = jvm.new_array<jbyte>(8);
  jbyte buf[16];
  EXPECT_THROW(jvm.jni().get_array_region(arr, 4, 5, buf),
               jhpc::InvalidArgumentError);
  EXPECT_THROW(jvm.jni().set_array_region(arr, 9, 1, buf),
               jhpc::InvalidArgumentError);
  // Edge: exactly to the end is legal.
  EXPECT_NO_THROW(jvm.jni().get_array_region(arr, 4, 4, buf));
}

TEST(ArrayRegionTest, RegionSurvivesGcBetweenGetAndSet) {
  Jvm jvm(fast_cfg());
  auto arr = jvm.new_array<jlong>(32);
  std::vector<jlong> native(32);
  jvm.jni().get_array_region(arr, 0, 32, native.data());
  for (auto& v : native) v = 5;
  ASSERT_TRUE(jvm.gc());  // the array moves between the two calls
  jvm.jni().set_array_region(arr, 0, 32, native.data());
  EXPECT_EQ(arr[31], 5);
}

TEST(ArrayRegionTest, ZeroLengthIsFine) {
  Jvm jvm(fast_cfg());
  auto arr = jvm.new_array<jint>(4);
  jvm.jni().get_array_region(arr, 4, 0, static_cast<jint*>(nullptr));
  jvm.jni().set_array_region(arr, 0, 0, static_cast<const jint*>(nullptr));
  SUCCEED();
}

}  // namespace
}  // namespace jhpc::minijvm
