// MVAPICH2-J API extensions beyond the Open MPI Java bindings surface:
// sub-range (offset) array communication and derived datatypes, both
// built on the buffering layer exactly as the paper's Section IV-B
// anticipates.
#include <gtest/gtest.h>

#include <vector>

#include "jhpc/mv2j/env.hpp"
#include "jhpc/mv2j/win.hpp"
#include "jhpc/ompij/ompij.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mv2j {
namespace {

RunOptions fast_opts(int ranks) {
  RunOptions o;
  o.ranks = ranks;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;
  return o;
}

TEST(OffsetApiTest, SendRecvSubRange) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jint>(10);
      for (std::size_t i = 0; i < 10; ++i) arr[i] = static_cast<int>(i);
      world.send(arr, /*offset=*/3, /*count=*/4, INT, 1, 0);
    } else {
      auto arr = env.newArray<minijvm::jint>(10);
      Status st = world.recv(arr, /*offset=*/5, /*count=*/4, INT, 0, 0);
      EXPECT_EQ(st.getCount(INT), 4);
      EXPECT_EQ(arr[5], 3);
      EXPECT_EQ(arr[8], 6);
      EXPECT_EQ(arr[0], 0) << "bytes outside the sub-range stay untouched";
      EXPECT_EQ(arr[9], 0);
    }
  });
}

TEST(OffsetApiTest, NonBlockingSubRange) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jdouble>(8);
      for (std::size_t i = 0; i < 8; ++i) arr[i] = 1.5 * static_cast<double>(i);
      Request r = world.iSend(arr, 2, 3, DOUBLE, 1, 0);
      r.waitFor();
    } else {
      auto arr = env.newArray<minijvm::jdouble>(8);
      Request r = world.iRecv(arr, 4, 3, DOUBLE, 0, 0);
      r.waitFor();
      EXPECT_DOUBLE_EQ(arr[4], 3.0);
      EXPECT_DOUBLE_EQ(arr[6], 6.0);
      EXPECT_DOUBLE_EQ(arr[0], 0.0);
    }
  });
}

TEST(OffsetApiTest, OutOfRangeRejected) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto arr = env.newArray<minijvm::jint>(10);
    EXPECT_THROW(world.send(arr, 8, 4, INT, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    EXPECT_THROW(world.send(arr, -1, 2, INT, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(DerivedTypeTest, VectorColumnExchange) {
  // Send one column of a row-major 4x4 matrix: the staging buffer packs
  // the strided elements contiguously.
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype column = Datatype::vector(4, 1, 4, INT);
    EXPECT_EQ(column.size(), 16u);
    EXPECT_EQ(column.extent(), 52u);  // (3*4+1)*4 bytes
    if (world.getRank() == 0) {
      auto m = env.newArray<minijvm::jint>(16);
      for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
          m[static_cast<std::size_t>(4 * r + c)] = 10 * r + c;
      // Column 1 starts at element offset 1.
      world.send(m, /*offset=*/1, /*count=*/1, column, 1, 0);
    } else {
      // Receive the packed column into a contiguous 4-int array.
      auto col = env.newArray<minijvm::jint>(4);
      Status st = world.recv(col, 0, 4, INT, 0, 0);
      EXPECT_EQ(st.bytes(), 16u);
      EXPECT_EQ(col[0], 1);
      EXPECT_EQ(col[1], 11);
      EXPECT_EQ(col[2], 21);
      EXPECT_EQ(col[3], 31);
    }
  });
}

TEST(DerivedTypeTest, VectorToVectorScattersOnReceive) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype stride2 = Datatype::vector(5, 1, 2, LONG);
    if (world.getRank() == 0) {
      auto src = env.newArray<minijvm::jlong>(10);
      for (std::size_t i = 0; i < 10; ++i)
        src[i] = static_cast<minijvm::jlong>(100 + i);
      world.send(src, 0, 1, stride2, 1, 0);  // elements 0,2,4,6,8
    } else {
      auto dst = env.newArray<minijvm::jlong>(10);
      world.recv(dst, 0, 1, stride2, 0, 0);
      EXPECT_EQ(dst[0], 100);
      EXPECT_EQ(dst[2], 102);
      EXPECT_EQ(dst[8], 108);
      EXPECT_EQ(dst[1], 0) << "gaps must stay untouched";
      EXPECT_EQ(dst[9], 0);
    }
  });
}

TEST(DerivedTypeTest, ContiguousOfVectorNested) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype pair_skip = Datatype::vector(2, 2, 4, SHORT);
    const Datatype two = Datatype::contiguous(1, pair_skip);
    EXPECT_EQ(two.size(), 8u);
    if (world.getRank() == 0) {
      auto src = env.newArray<minijvm::jshort>(8);
      for (std::size_t i = 0; i < 8; ++i)
        src[i] = static_cast<minijvm::jshort>(i + 1);
      world.send(src, 0, 1, two, 1, 0);  // elements 1,2,5,6 (0-indexed 0,1,4,5)
    } else {
      auto packed = env.newArray<minijvm::jshort>(4);
      world.recv(packed, 0, 4, SHORT, 0, 0);
      EXPECT_EQ(packed[0], 1);
      EXPECT_EQ(packed[1], 2);
      EXPECT_EQ(packed[2], 5);
      EXPECT_EQ(packed[3], 6);
    }
  });
}

TEST(DerivedTypeTest, IndexedTypeThroughBindings) {
  // Send an irregular selection of array elements in one call.
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const std::vector<int> lens{1, 3, 2};
    const std::vector<int> offs{0, 3, 8};
    const Datatype picks = Datatype::indexed(lens, offs, INT);
    EXPECT_EQ(picks.size(), 6u * 4u);
    if (world.getRank() == 0) {
      auto src = env.newArray<minijvm::jint>(10);
      for (std::size_t i = 0; i < 10; ++i) src[i] = static_cast<int>(i + 1);
      world.send(src, 0, 1, picks, 1, 0);  // elements 0,3,4,5,8,9
    } else {
      auto dst = env.newArray<minijvm::jint>(6);
      Status st = world.recv(dst, 0, 6, INT, 0, 0);
      EXPECT_EQ(st.getCount(INT), 6);
      EXPECT_EQ(dst[0], 1);
      EXPECT_EQ(dst[1], 4);
      EXPECT_EQ(dst[2], 5);
      EXPECT_EQ(dst[3], 6);
      EXPECT_EQ(dst[4], 9);
      EXPECT_EQ(dst[5], 10);
    }
  });
}

TEST(DerivedTypeTest, LeafKindMismatchRejected) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype int_col = Datatype::vector(2, 1, 2, INT);
    auto wrong = env.newArray<minijvm::jdouble>(8);
    EXPECT_THROW(world.send(wrong, 0, 1, int_col, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(DerivedTypeTest, ByteBufferPathRoutesDerivedToTypedSubstrate) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype col = Datatype::vector(4, 1, 2, INT);
    if (world.getRank() == 0) {
      auto src = env.newDirectBuffer(32);
      for (int i = 0; i < 8; ++i)
        src.put_int(static_cast<std::size_t>(i) * 4, i);
      world.send(src, 1, col, 1, 0);  // ints 0,2,4,6
    } else {
      auto dst = env.newDirectBuffer(32);
      for (int i = 0; i < 8; ++i)
        dst.put_int(static_cast<std::size_t>(i) * 4, -1);
      Status st = world.recv(dst, 1, col, 0, 0);
      EXPECT_EQ(st.getCount(col), 1);
      EXPECT_EQ(dst.get_int(0), 0);
      EXPECT_EQ(dst.get_int(8), 2);
      EXPECT_EQ(dst.get_int(16), 4);
      EXPECT_EQ(dst.get_int(24), 6);
      EXPECT_EQ(dst.get_int(4), -1) << "gap bytes stay untouched";
      EXPECT_EQ(dst.get_int(12), -1);
    }
  });
}

TEST(DerivedTypeTest, ByteBufferDerivedCollectives) {
  run(fast_opts(3), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int rank = world.getRank();
    const Datatype col = Datatype::vector(2, 1, 2, INT);  // extent 12 B
    auto sbuf = env.newDirectBuffer(16);
    auto rbuf = env.newDirectBuffer(16);
    sbuf.put_int(0, rank + 1);
    sbuf.put_int(8, 10 * (rank + 1));
    rbuf.put_int(4, -7);  // gap sentinel
    world.allReduce(sbuf, rbuf, 1, col, SUM);
    EXPECT_EQ(rbuf.get_int(0), 6);
    EXPECT_EQ(rbuf.get_int(8), 60);
    EXPECT_EQ(rbuf.get_int(4), -7) << "reduction must not write the gap";

    auto bbuf = env.newDirectBuffer(16);
    if (rank == 1) {
      bbuf.put_int(0, 41);
      bbuf.put_int(8, 42);
    }
    world.bcast(bbuf, 1, col, /*root=*/1);
    EXPECT_EQ(bbuf.get_int(0), 41);
    EXPECT_EQ(bbuf.get_int(8), 42);
  });
}

TEST(DerivedTypeTest, ByteBufferVectoredAndScanStayBasicOnly) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype col = Datatype::vector(2, 1, 2, INT);
    auto sbuf = env.newDirectBuffer(64);
    auto rbuf = env.newDirectBuffer(64);
    EXPECT_THROW(world.scan(sbuf, rbuf, 1, col, SUM),
                 UnsupportedOperationError);
    world.barrier();
  });
}

TEST(DerivedTypeTest, NegativeLowerBoundRejectedOnByteBuffer) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    // Negative stride: element bytes reach below the buffer base pointer.
    const Datatype back = Datatype::vector(3, 1, -2, INT);
    auto buf = env.newDirectBuffer(64);
    EXPECT_THROW(world.send(buf, 1, back, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(DerivedTypeTest, OmpijByteBufferRoutesDerived) {
  ompij::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  ompij::run(o, [](ompij::Env& env) {
    ompij::Comm& world = env.COMM_WORLD();
    const Datatype col = Datatype::vector(3, 1, 2, INT);
    if (world.getRank() == 0) {
      auto src = env.newDirectBuffer(24);
      for (int i = 0; i < 6; ++i)
        src.put_int(static_cast<std::size_t>(i) * 4, 100 + i);
      world.send(src, 1, col, 1, 0);
    } else {
      auto dst = env.newDirectBuffer(24);
      ompij::Status st = world.recv(dst, 1, col, 0, 0);
      EXPECT_EQ(st.getCount(col), 1);
      EXPECT_EQ(dst.get_int(0), 100);
      EXPECT_EQ(dst.get_int(8), 102);
      EXPECT_EQ(dst.get_int(16), 104);
    }
  });
}

TEST(DerivedTypeTest, OmpijRejectsDerivedArrays) {
  ompij::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  ompij::run(o, [](ompij::Env& env) {
    ompij::Comm& world = env.COMM_WORLD();
    const Datatype col = Datatype::vector(2, 1, 2, INT);
    auto arr = env.newArray<minijvm::jint>(8);
    EXPECT_THROW(world.send(arr, 1, col, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(DerivedTypeTest, GcSafeDuringDerivedNonBlocking) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const Datatype stride2 = Datatype::vector(100, 1, 2, INT);
    if (world.getRank() == 0) {
      auto src = env.newArray<minijvm::jint>(200);
      for (std::size_t i = 0; i < 200; ++i) src[i] = static_cast<int>(i);
      Request r = world.iSend(src, 0, 1, stride2, 1, 0);
      ASSERT_TRUE(env.jvm().gc());
      world.barrier();
      r.waitFor();
    } else {
      auto dst = env.newArray<minijvm::jint>(100);
      Request r = world.iRecv(dst, 0, 100, INT, 0, 0);
      ASSERT_TRUE(env.jvm().gc());
      world.barrier();
      r.waitFor();
      for (std::size_t i = 0; i < 100; ++i)
        ASSERT_EQ(dst[i], static_cast<int>(2 * i));
    }
  });
}

// --- One-sided (mpi.Win) through the bindings --------------------------------

TEST(BindingRmaTest, Mv2jPutGetFenceRoundTrip) {
  run(fast_opts(3), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int me = world.getRank();
    const int n = world.getSize();
    Win win = world.winAllocate(static_cast<std::size_t>(n) * 4);
    EXPECT_EQ(win.getRank(), me);
    EXPECT_EQ(win.getSize(), n);
    EXPECT_EQ(win.getBytes((me + 1) % n), static_cast<std::size_t>(n) * 4);

    auto origin = env.newDirectBuffer(4);
    origin.put_int(0, 100 + me);
    win.fence();
    for (int t = 0; t < n; ++t) {
      if (t == me) continue;
      win.put(origin, 1, INT, t, static_cast<std::size_t>(me) * 4);
    }
    win.fence();
    auto readback = env.newDirectBuffer(4);
    for (int src = 0; src < n; ++src) {
      if (src == me) continue;
      win.get(readback, 1, INT, me, static_cast<std::size_t>(src) * 4);
      EXPECT_EQ(readback.get_int(0), 100 + src);
    }
    win.fence();
    win.free();
    EXPECT_FALSE(win.valid());
  });
}

TEST(BindingRmaTest, Mv2jDerivedPutAccumulateFetchOpUnderLocks) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int me = world.getRank();
    const Datatype stride2 = Datatype::vector(4, 1, 2, INT);  // 4 ints, gap
    Win win = world.winAllocate(64);
    if (me == 0) {
      auto packed = env.newDirectBuffer(16);
      for (int i = 0; i < 4; ++i)
        packed.put_int(static_cast<std::size_t>(i) * 4, 5 + i);
      win.lock(LOCK_EXCLUSIVE, 1);
      // Packed origin, strided target layout: ints land at 0,8,16,24.
      win.put(packed, 4, INT, 1, 0, stride2);
      win.unlock(1);

      auto one = env.newDirectBuffer(8);
      one.put_long(0, 3);
      win.lock(LOCK_EXCLUSIVE, 1);
      win.accumulate(one, 1, LONG, SUM, 1, 32);
      win.accumulate(one, 1, LONG, SUM, 1, 32);
      win.unlock(1);

      auto fetched = env.newDirectBuffer(8);
      win.lock(LOCK_EXCLUSIVE, 1);
      win.fetchOp(one, fetched, LONG, SUM, 1, 32);
      win.unlock(1);
      EXPECT_EQ(fetched.get_long(0), 6) << "fetchOp returns pre-op value";
    }
    world.barrier();
    if (me == 1) {
      auto self = env.newDirectBuffer(64);
      win.lock(LOCK_SHARED, 1);
      win.get(self, 64, BYTE, 1, 0);
      win.unlock(1);
      EXPECT_EQ(self.get_int(0), 5);
      EXPECT_EQ(self.get_int(8), 6);
      EXPECT_EQ(self.get_int(16), 7);
      EXPECT_EQ(self.get_int(24), 8);
      EXPECT_EQ(self.get_long(32), 9) << "two accumulates plus fetchOp";
    }
    world.barrier();
    win.free();
  });
}

TEST(BindingRmaTest, Mv2jWinCreateExposesBufferZeroCopy) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int me = world.getRank();
    auto exposed = env.newDirectBuffer(16);
    exposed.put_int(0, -1);
    Win win = world.winCreate(exposed, 16);
    std::vector<int> peer = {1 - me};
    if (me == 1) {
      win.post(peer);
      win.waitFor();
      // The put landed in the ByteBuffer itself — no mailbox copy to
      // drain; winCreate exposed this exact memory.
      EXPECT_EQ(exposed.get_int(0), 4242);
    } else {
      win.start(peer);
      auto origin = env.newDirectBuffer(4);
      origin.put_int(0, 4242);
      win.put(origin, 1, INT, 1, 0);
      win.complete();
    }
    world.barrier();
    win.free();
  });
}

TEST(BindingRmaTest, Mv2jRejectsHeapOriginBuffers) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    Win win = world.winAllocate(16);
    auto heap = minijvm::ByteBuffer::allocate(env.jvm(), 16);
    win.lockAll();
    EXPECT_THROW(win.put(heap, 1, INT, 1 - world.getRank(), 0),
                 UnsupportedOperationError);
    win.unlockAll();
    win.free();
  });
}

TEST(BindingRmaTest, OmpijWinMirrorsTheApi) {
  ompij::RunOptions o;
  o.ranks = 2;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;
  ompij::run(o, [](ompij::Env& env) {
    ompij::Comm& world = env.COMM_WORLD();
    const int me = world.getRank();
    ompij::Win win = world.winAllocate(8);
    auto origin = env.newDirectBuffer(4);
    origin.put_int(0, 77 + me);
    win.fence();
    win.put(origin, 1, INT, 1 - me, static_cast<std::size_t>(me) * 4);
    win.fence();
    auto readback = env.newDirectBuffer(4);
    win.lock(ompij::LOCK_SHARED, me);
    win.get(readback, 1, INT, me, static_cast<std::size_t>(1 - me) * 4);
    win.unlock(me);
    EXPECT_EQ(readback.get_int(0), 77 + (1 - me));
    world.barrier();
    win.free();
  });
}

}  // namespace
}  // namespace jhpc::mv2j
