// Unit tests for the virtual fabric model (virtual-time domain: callers
// pass the sender's virtual time and get the virtual delivery time).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "jhpc/netsim/fabric.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::netsim {
namespace {

FabricConfig two_node_cfg() {
  FabricConfig cfg;
  cfg.ranks_per_node = 2;
  cfg.inter_latency_ns = 1000;
  cfg.inter_bandwidth_mbps = 1000.0;  // 1 ns/byte
  cfg.intra_latency_ns = 100;
  return cfg;
}

TEST(FabricTest, NodePlacementIsBlockwise) {
  Fabric f(8, two_node_cfg());
  EXPECT_EQ(f.node_count(), 4);
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(1), 0);
  EXPECT_EQ(f.node_of(2), 1);
  EXPECT_EQ(f.node_of(7), 3);
  EXPECT_TRUE(f.same_node(0, 1));
  EXPECT_FALSE(f.same_node(1, 2));
}

TEST(FabricTest, SingleNodeWhenPpnUnset) {
  FabricConfig cfg;  // ranks_per_node = 0 -> all on one node
  Fabric f(16, cfg);
  EXPECT_EQ(f.node_count(), 1);
  EXPECT_TRUE(f.same_node(0, 15));
}

TEST(FabricTest, RoundRobinPlacement) {
  auto cfg = two_node_cfg();
  cfg.placement = Placement::kRoundRobin;
  Fabric f(8, cfg);  // 4 nodes
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(1), 1);
  EXPECT_EQ(f.node_of(4), 0);
  EXPECT_EQ(f.node_of(7), 3);
  EXPECT_TRUE(f.same_node(0, 4));
  EXPECT_FALSE(f.same_node(0, 1)) << "cyclic mapping splits neighbours";
}

TEST(FabricTest, UnevenLastNode) {
  auto cfg = two_node_cfg();
  cfg.ranks_per_node = 3;
  Fabric f(7, cfg);
  EXPECT_EQ(f.node_count(), 3);
  EXPECT_EQ(f.node_of(6), 2);
}

TEST(FabricTest, IntraNodeDeliveryPaysOnlyIntraLatency) {
  Fabric f(4, two_node_cfg());
  EXPECT_EQ(f.reserve_delivery(5000, 0, 1, 1 << 20), 5000 + 100);
}

TEST(FabricTest, InterNodeDeliveryPaysLatencyAndSerialization) {
  Fabric f(4, two_node_cfg());
  // 1000 bytes at 1 ns/byte + 1000 ns latency, starting at t=5000.
  EXPECT_EQ(f.reserve_delivery(5000, 0, 2, 1000), 5000 + 1000 + 1000);
}

TEST(FabricTest, ZeroByteMessagePaysOnlyLatency) {
  Fabric f(4, two_node_cfg());
  EXPECT_EQ(f.reserve_delivery(0, 0, 2, 0), 1000);
}

TEST(FabricTest, SerializationMatchesBandwidth) {
  Fabric f(4, two_node_cfg());
  EXPECT_EQ(f.serialization_ns(1000), 1000);  // 1 ns/byte
  EXPECT_EQ(f.serialization_ns(0), 0);
}

TEST(FabricTest, BackToBackTransfersQueueOnTheLink) {
  Fabric f(4, two_node_cfg());
  const auto d1 = f.reserve_delivery(0, 0, 2, 100'000);
  EXPECT_EQ(d1, 100'000 + 1000);
  // Second transfer entering at t=0 queues behind the first.
  const auto d2 = f.reserve_delivery(0, 0, 2, 100'000);
  EXPECT_EQ(d2, 200'000 + 1000);
  // A transfer entering after the link is free does not queue.
  const auto d3 = f.reserve_delivery(300'000, 0, 2, 1000);
  EXPECT_EQ(d3, 300'000 + 1000 + 1000);
}

TEST(FabricTest, OppositeDirectionsDoNotQueue) {
  Fabric f(4, two_node_cfg());
  (void)f.reserve_delivery(0, 0, 2, 1'000'000);  // busy 0->1 direction
  EXPECT_EQ(f.reserve_delivery(0, 2, 0, 100), 100 + 1000);
}

TEST(FabricTest, DistinctNodePairsAreDistinctLinks) {
  auto cfg = two_node_cfg();
  cfg.ranks_per_node = 1;
  Fabric f(4, cfg);
  (void)f.reserve_delivery(0, 0, 1, 1'000'000);  // node0 -> node1 busy
  // node0 -> node2 is a separate directed link.
  EXPECT_EQ(f.reserve_delivery(0, 0, 2, 100), 100 + 1000);
}

TEST(FabricTest, ResetClearsLinkClocks) {
  Fabric f(4, two_node_cfg());
  (void)f.reserve_delivery(0, 0, 2, 1'000'000);
  f.reset();
  EXPECT_EQ(f.reserve_delivery(0, 0, 2, 1000), 1000 + 1000);
}

TEST(FabricTest, ConcurrentReservationsNeverOverlap) {
  Fabric f(4, two_node_cfg());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  constexpr std::size_t kBytes = 1000;  // 1000 ns occupancy each
  std::vector<std::int64_t> ends(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        ends[static_cast<std::size_t>(t * kPerThread + i)] =
            f.reserve_delivery(0, 0, 2, kBytes);
    });
  }
  for (auto& th : threads) th.join();
  // 800 serialized transfers of 1000 ns each: the last one cannot
  // complete before 800'000 + latency, and all end times are distinct.
  std::sort(ends.begin(), ends.end());
  EXPECT_EQ(ends.back(), 800'000 + 1000);
  for (std::size_t i = 1; i < ends.size(); ++i)
    EXPECT_GE(ends[i] - ends[i - 1], 1000);
}

TEST(FabricTest, RejectsBadConfig) {
  FabricConfig cfg;
  cfg.inter_bandwidth_mbps = 0.0;
  EXPECT_THROW(Fabric(2, cfg), InvalidArgumentError);
  FabricConfig cfg2;
  cfg2.inter_latency_ns = -5;
  EXPECT_THROW(Fabric(2, cfg2), InvalidArgumentError);
  EXPECT_THROW(Fabric(0, FabricConfig{}), InvalidArgumentError);
}

TEST(FabricTest, RankOutOfRangeThrows) {
  Fabric f(4, two_node_cfg());
  EXPECT_THROW(f.node_of(4), InvalidArgumentError);
  EXPECT_THROW(f.node_of(-1), InvalidArgumentError);
}

// --- Fault plans -------------------------------------------------------------

TEST(FaultPlanTest, DefaultPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.seed = 424242;  // a seed alone injects nothing
  EXPECT_FALSE(plan.enabled());
  plan.link_defaults.drop_prob = 0.01;
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanTest, OverrideAloneEnablesAndResolves) {
  FaultPlan plan;
  plan.parse_links("0>1:drop=0.5,jitter=200;2>0:down=1000-2000,bw=0.25");
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.overrides.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.link(0, 1).drop_prob, 0.5);
  EXPECT_EQ(plan.link(0, 1).jitter_ns, 200);
  EXPECT_FALSE(plan.link(0, 1).has_down_window());
  EXPECT_EQ(plan.link(2, 0).down_from_ns, 1000);
  EXPECT_EQ(plan.link(2, 0).down_until_ns, 2000);
  EXPECT_DOUBLE_EQ(plan.link(2, 0).bandwidth_factor, 0.25);
  // Links without an override fall back to the (perfect) defaults.
  EXPECT_FALSE(plan.link(1, 0).active());
}

TEST(FaultPlanTest, OverridesInheritLinkDefaults) {
  FaultPlan plan;
  plan.link_defaults.jitter_ns = 300;
  plan.parse_links("0>1:drop=0.1");
  EXPECT_EQ(plan.link(0, 1).jitter_ns, 300) << "unspecified keys inherit";
  EXPECT_DOUBLE_EQ(plan.link(0, 1).drop_prob, 0.1);
}

TEST(FaultPlanTest, ParseLinksRejectsMalformedSpecs) {
  FaultPlan plan;
  EXPECT_THROW(plan.parse_links("0>1:drop=2.0"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("0>1:drop=-0.1"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("x>1:drop=0.1"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("-1>1:drop=0.1"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("0>1:teleport=1"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("0:drop=0.1"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("0>1:down=5000"), InvalidArgumentError);
  EXPECT_THROW(plan.parse_links("0>1:bw=0"), InvalidArgumentError);
}

TEST(FaultHashTest, PureFunctionOfItsInputs) {
  const auto h = fault_hash(7, 0, 1, 42, 3, 1);
  EXPECT_EQ(h, fault_hash(7, 0, 1, 42, 3, 1));
  EXPECT_NE(h, fault_hash(8, 0, 1, 42, 3, 1));  // seed
  EXPECT_NE(h, fault_hash(7, 1, 0, 42, 3, 1));  // direction
  EXPECT_NE(h, fault_hash(7, 0, 1, 43, 3, 1));  // message
  EXPECT_NE(h, fault_hash(7, 0, 1, 42, 4, 1));  // attempt
  EXPECT_NE(h, fault_hash(7, 0, 1, 42, 3, 2));  // salt
}

TEST(FaultHashTest, UniformIsInUnitInterval) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = fault_uniform(1, 0, 1, i, 0, 1);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

FabricConfig faulty_cfg(double drop) {
  FabricConfig cfg = two_node_cfg();
  cfg.ranks_per_node = 1;  // rank == node: every pair crosses the fabric
  cfg.faults.link_defaults.drop_prob = drop;
  return cfg;
}

TEST(FaultFabricTest, CleanPlanMatchesReserveDelivery) {
  FabricConfig cfg = faulty_cfg(0.0);
  cfg.faults.link_defaults.jitter_ns = 0;
  cfg.faults.link_defaults.bandwidth_factor = 0.5;  // active, but no drops
  Fabric f(4, cfg);
  EXPECT_TRUE(f.faults_enabled());
  // 1000 bytes at 1 ns/byte, stretched 2x by the degradation, + latency.
  const auto a = f.try_data(0, 0, 1, 1000, /*seq=*/0, /*attempt=*/0);
  EXPECT_FALSE(a.dropped);
  EXPECT_EQ(a.deliver_at_ns, 2000 + 1000);
}

TEST(FaultFabricTest, IntraNodeTrafficNeverFaults) {
  FabricConfig cfg = two_node_cfg();  // 2 ranks per node
  cfg.faults.link_defaults.drop_prob = 1.0;
  Fabric f(4, cfg);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    const auto a = f.try_data(0, 0, 1, 64, seq, 0);
    EXPECT_FALSE(a.dropped);
    EXPECT_EQ(a.deliver_at_ns, 100);  // intra latency only
  }
}

TEST(FaultFabricTest, FullDropAlwaysDropsInterNode) {
  Fabric f(4, faulty_cfg(1.0));
  for (std::uint64_t seq = 0; seq < 50; ++seq)
    EXPECT_TRUE(f.try_data(0, 0, 1, 64, seq, 0).dropped);
}

TEST(FaultFabricTest, DroppedAttemptsStillBurnLinkTime) {
  Fabric f(4, faulty_cfg(1.0));
  (void)f.try_data(0, 0, 1, 100'000, 0, 0);  // dropped, but serialized
  // A later clean fabric reservation queues behind the wasted occupancy.
  EXPECT_EQ(f.reserve_delivery(0, 0, 1, 0), 100'000 + 1000);
}

TEST(FaultFabricTest, ControlMessagesAreLatencyOnly) {
  Fabric f(4, faulty_cfg(0.0));
  const auto a = f.try_control(500, 0, 1, 0, 0, FaultSalt::kAck);
  EXPECT_FALSE(a.dropped);
  EXPECT_EQ(a.deliver_at_ns, 500 + 1000);
  // Controls must not touch the link serializer: the data path still sees
  // a free link.
  EXPECT_EQ(f.reserve_delivery(0, 0, 1, 1000), 1000 + 1000);
}

TEST(FaultFabricTest, DownWindowDropsByAttemptStartTime) {
  FabricConfig cfg = faulty_cfg(0.0);
  cfg.faults.link_defaults.down_from_ns = 1000;
  cfg.faults.link_defaults.down_until_ns = 2000;
  Fabric f(4, cfg);
  EXPECT_FALSE(f.try_control(999, 0, 1, 0, 0, FaultSalt::kRts).dropped);
  EXPECT_TRUE(f.try_control(1000, 0, 1, 0, 1, FaultSalt::kRts).dropped);
  EXPECT_TRUE(f.try_control(1999, 0, 1, 0, 2, FaultSalt::kRts).dropped);
  EXPECT_FALSE(f.try_control(2000, 0, 1, 0, 3, FaultSalt::kRts).dropped);
}

TEST(FaultFabricTest, JitterIsBoundedAndSeedStable) {
  FabricConfig cfg = faulty_cfg(0.0);
  cfg.faults.link_defaults.jitter_ns = 500;
  cfg.faults.seed = 99;
  Fabric f1(4, cfg), f2(4, cfg);
  bool saw_nonzero = false;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const auto a = f1.try_control(0, 0, 1, seq, 0, FaultSalt::kRts);
    const auto b = f2.try_control(0, 0, 1, seq, 0, FaultSalt::kRts);
    EXPECT_EQ(a.deliver_at_ns, b.deliver_at_ns) << "same seed, same jitter";
    EXPECT_GE(a.deliver_at_ns, 1000);
    EXPECT_LE(a.deliver_at_ns, 1000 + 500);
    saw_nonzero |= a.deliver_at_ns > 1000;
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(FaultFabricTest, MessageSequencesArePerDirectedPairAndReset) {
  Fabric f(4, faulty_cfg(0.5));
  EXPECT_EQ(f.next_msg_seq(0, 1), 0u);
  EXPECT_EQ(f.next_msg_seq(0, 1), 1u);
  EXPECT_EQ(f.next_msg_seq(1, 0), 0u) << "reverse direction counts apart";
  EXPECT_EQ(f.next_msg_seq(0, 2), 0u);
  f.reset();
  EXPECT_EQ(f.next_msg_seq(0, 1), 0u);
}

// --- Environment validation ---------------------------------------------------

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~EnvGuard() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvValidationTest, FabricRejectsNegativeKnobs) {
  {
    EnvGuard g("JHPC_PPN", "-1");
    EXPECT_THROW(FabricConfig::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_INTER_LAT_NS", "-10");
    EXPECT_THROW(FabricConfig::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_INTER_BW_MBPS", "0");
    EXPECT_THROW(FabricConfig::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_INTRA_LAT_NS", "-1");
    EXPECT_THROW(FabricConfig::from_env(), InvalidArgumentError);
  }
}

TEST(EnvValidationTest, FaultEnvRejectsBadValues) {
  {
    EnvGuard g("JHPC_FAULT_DROP", "1.5");
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_DROP", "-0.1");
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_JITTER_NS", "-5");
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_BW_FACTOR", "0");
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_RTO_NS", "0");
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_RTO_MAX_NS", "10");  // below the default RTO
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_TIMEOUT_NS", "-1");
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_DOWN", "1000");  // missing FROM:UNTIL separator
    EXPECT_THROW(FaultPlan::from_env(), InvalidArgumentError);
  }
}

TEST(FaultPlanTest, ParseKillsAcceptsASchedule) {
  FaultPlan plan;
  EXPECT_FALSE(plan.kills_enabled());
  plan.parse_kills("1@500000;3@2000000");
  ASSERT_EQ(plan.kills.size(), 2u);
  EXPECT_EQ(plan.kills[0].rank, 1);
  EXPECT_EQ(plan.kills[0].at_vns, 500000);
  EXPECT_EQ(plan.kills[1].rank, 3);
  EXPECT_EQ(plan.kills[1].at_vns, 2000000);
  EXPECT_TRUE(plan.kills_enabled());
  EXPECT_FALSE(plan.enabled())
      << "kills must not switch links to the retransmit protocol";
}

TEST(FaultPlanTest, ParseKillsRejectsMalformedSpecs) {
  for (const char* bad :
       {"1", "@5", "1@", "1@x", "-1@5", "1@-5", "1@5;1@9"}) {
    FaultPlan plan;
    EXPECT_THROW(plan.parse_kills(bad), jhpc::InvalidArgumentError)
        << "accepted: \"" << bad << '"';
  }
  // Empty clauses are tolerated (trailing/doubled separators).
  FaultPlan plan;
  plan.parse_kills("1@5;;2@7;");
  EXPECT_EQ(plan.kills.size(), 2u);
}

TEST(EnvValidationTest, KillEnvRoundTrips) {
  EnvGuard kill("JHPC_FAULT_KILL", "2@750000");
  EnvGuard hb("JHPC_FAULT_HB_NS", "250000");
  const FaultPlan plan = FaultPlan::from_env();
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].rank, 2);
  EXPECT_EQ(plan.kills[0].at_vns, 750000);
  EXPECT_EQ(plan.heartbeat_ns, 250000);
}

TEST(EnvValidationTest, KillEnvRejectsBadValues) {
  {
    EnvGuard g("JHPC_FAULT_KILL", "banana");
    EXPECT_THROW(FaultPlan::from_env(), jhpc::InvalidArgumentError);
  }
  {
    EnvGuard g("JHPC_FAULT_HB_NS", "-1");
    EXPECT_THROW(FaultPlan::from_env(), jhpc::InvalidArgumentError);
  }
}

TEST(EnvValidationTest, FaultEnvRoundTrips) {
  EnvGuard seed("JHPC_FAULT_SEED", "4242");
  EnvGuard drop("JHPC_FAULT_DROP", "0.25");
  EnvGuard jitter("JHPC_FAULT_JITTER_NS", "750");
  EnvGuard down("JHPC_FAULT_DOWN", "1000:2000");
  EnvGuard links("JHPC_FAULT_LINKS", "1>0:drop=1.0");
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 4242u);
  EXPECT_DOUBLE_EQ(plan.link_defaults.drop_prob, 0.25);
  EXPECT_EQ(plan.link_defaults.jitter_ns, 750);
  EXPECT_EQ(plan.link_defaults.down_from_ns, 1000);
  EXPECT_EQ(plan.link_defaults.down_until_ns, 2000);
  EXPECT_DOUBLE_EQ(plan.link(1, 0).drop_prob, 1.0);
  EXPECT_EQ(plan.link(1, 0).jitter_ns, 750) << "override inherits defaults";
}

}  // namespace
}  // namespace jhpc::netsim
