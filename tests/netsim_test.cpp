// Unit tests for the virtual fabric model (virtual-time domain: callers
// pass the sender's virtual time and get the virtual delivery time).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "jhpc/netsim/fabric.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::netsim {
namespace {

FabricConfig two_node_cfg() {
  FabricConfig cfg;
  cfg.ranks_per_node = 2;
  cfg.inter_latency_ns = 1000;
  cfg.inter_bandwidth_mbps = 1000.0;  // 1 ns/byte
  cfg.intra_latency_ns = 100;
  return cfg;
}

TEST(FabricTest, NodePlacementIsBlockwise) {
  Fabric f(8, two_node_cfg());
  EXPECT_EQ(f.node_count(), 4);
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(1), 0);
  EXPECT_EQ(f.node_of(2), 1);
  EXPECT_EQ(f.node_of(7), 3);
  EXPECT_TRUE(f.same_node(0, 1));
  EXPECT_FALSE(f.same_node(1, 2));
}

TEST(FabricTest, SingleNodeWhenPpnUnset) {
  FabricConfig cfg;  // ranks_per_node = 0 -> all on one node
  Fabric f(16, cfg);
  EXPECT_EQ(f.node_count(), 1);
  EXPECT_TRUE(f.same_node(0, 15));
}

TEST(FabricTest, RoundRobinPlacement) {
  auto cfg = two_node_cfg();
  cfg.placement = Placement::kRoundRobin;
  Fabric f(8, cfg);  // 4 nodes
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(1), 1);
  EXPECT_EQ(f.node_of(4), 0);
  EXPECT_EQ(f.node_of(7), 3);
  EXPECT_TRUE(f.same_node(0, 4));
  EXPECT_FALSE(f.same_node(0, 1)) << "cyclic mapping splits neighbours";
}

TEST(FabricTest, UnevenLastNode) {
  auto cfg = two_node_cfg();
  cfg.ranks_per_node = 3;
  Fabric f(7, cfg);
  EXPECT_EQ(f.node_count(), 3);
  EXPECT_EQ(f.node_of(6), 2);
}

TEST(FabricTest, IntraNodeDeliveryPaysOnlyIntraLatency) {
  Fabric f(4, two_node_cfg());
  EXPECT_EQ(f.reserve_delivery(5000, 0, 1, 1 << 20), 5000 + 100);
}

TEST(FabricTest, InterNodeDeliveryPaysLatencyAndSerialization) {
  Fabric f(4, two_node_cfg());
  // 1000 bytes at 1 ns/byte + 1000 ns latency, starting at t=5000.
  EXPECT_EQ(f.reserve_delivery(5000, 0, 2, 1000), 5000 + 1000 + 1000);
}

TEST(FabricTest, ZeroByteMessagePaysOnlyLatency) {
  Fabric f(4, two_node_cfg());
  EXPECT_EQ(f.reserve_delivery(0, 0, 2, 0), 1000);
}

TEST(FabricTest, SerializationMatchesBandwidth) {
  Fabric f(4, two_node_cfg());
  EXPECT_EQ(f.serialization_ns(1000), 1000);  // 1 ns/byte
  EXPECT_EQ(f.serialization_ns(0), 0);
}

TEST(FabricTest, BackToBackTransfersQueueOnTheLink) {
  Fabric f(4, two_node_cfg());
  const auto d1 = f.reserve_delivery(0, 0, 2, 100'000);
  EXPECT_EQ(d1, 100'000 + 1000);
  // Second transfer entering at t=0 queues behind the first.
  const auto d2 = f.reserve_delivery(0, 0, 2, 100'000);
  EXPECT_EQ(d2, 200'000 + 1000);
  // A transfer entering after the link is free does not queue.
  const auto d3 = f.reserve_delivery(300'000, 0, 2, 1000);
  EXPECT_EQ(d3, 300'000 + 1000 + 1000);
}

TEST(FabricTest, OppositeDirectionsDoNotQueue) {
  Fabric f(4, two_node_cfg());
  (void)f.reserve_delivery(0, 0, 2, 1'000'000);  // busy 0->1 direction
  EXPECT_EQ(f.reserve_delivery(0, 2, 0, 100), 100 + 1000);
}

TEST(FabricTest, DistinctNodePairsAreDistinctLinks) {
  auto cfg = two_node_cfg();
  cfg.ranks_per_node = 1;
  Fabric f(4, cfg);
  (void)f.reserve_delivery(0, 0, 1, 1'000'000);  // node0 -> node1 busy
  // node0 -> node2 is a separate directed link.
  EXPECT_EQ(f.reserve_delivery(0, 0, 2, 100), 100 + 1000);
}

TEST(FabricTest, ResetClearsLinkClocks) {
  Fabric f(4, two_node_cfg());
  (void)f.reserve_delivery(0, 0, 2, 1'000'000);
  f.reset();
  EXPECT_EQ(f.reserve_delivery(0, 0, 2, 1000), 1000 + 1000);
}

TEST(FabricTest, ConcurrentReservationsNeverOverlap) {
  Fabric f(4, two_node_cfg());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  constexpr std::size_t kBytes = 1000;  // 1000 ns occupancy each
  std::vector<std::int64_t> ends(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        ends[static_cast<std::size_t>(t * kPerThread + i)] =
            f.reserve_delivery(0, 0, 2, kBytes);
    });
  }
  for (auto& th : threads) th.join();
  // 800 serialized transfers of 1000 ns each: the last one cannot
  // complete before 800'000 + latency, and all end times are distinct.
  std::sort(ends.begin(), ends.end());
  EXPECT_EQ(ends.back(), 800'000 + 1000);
  for (std::size_t i = 1; i < ends.size(); ++i)
    EXPECT_GE(ends[i] - ends[i - 1], 1000);
}

TEST(FabricTest, RejectsBadConfig) {
  FabricConfig cfg;
  cfg.inter_bandwidth_mbps = 0.0;
  EXPECT_THROW(Fabric(2, cfg), InvalidArgumentError);
  FabricConfig cfg2;
  cfg2.inter_latency_ns = -5;
  EXPECT_THROW(Fabric(2, cfg2), InvalidArgumentError);
  EXPECT_THROW(Fabric(0, FabricConfig{}), InvalidArgumentError);
}

TEST(FabricTest, RankOutOfRangeThrows) {
  Fabric f(4, two_node_cfg());
  EXPECT_THROW(f.node_of(4), InvalidArgumentError);
  EXPECT_THROW(f.node_of(-1), InvalidArgumentError);
}

}  // namespace
}  // namespace jhpc::netsim
