// Derived-datatype transport paths through the public API: eager
// strided round trips in every pairing (strided->dense, dense->strided,
// strided->strided), rendezvous-sized typed transfers, truncation,
// steady-state zero-allocation with dt.* pvar accounting, typed
// sendrecv / nonblocking p2p, and the typed collective surface against
// densely computed expectations.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/pvar.hpp"

namespace jhpc::minimpi {
namespace {

constexpr int kTag = 11;
constexpr int kAckTag = 12;
constexpr int kGoTag = 13;

UniverseConfig cfg(int n, bool pvars = false) {
  UniverseConfig c;
  c.world_size = n;
  c.deterministic_clock = true;
  c.obs.pvars = pvars;
  c.obs.trace_path.clear();
  return c;
}

/// Every-other-int column type: n ints at stride 2 ints.
Datatype column(int n) {
  return Datatype::vector(n, 1, 2, Datatype::int_type());
}

/// A strided buffer for `elems` ints at stride 2, gaps poisoned with -1.
std::vector<std::int32_t> strided_buf(int elems) {
  return std::vector<std::int32_t>(2 * elems, -1);
}

TEST(DtTransportTest, EagerStridedToDense) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(8);
    if (world.rank() == 0) {
      auto src = strided_buf(8);
      for (int i = 0; i < 8; ++i) src[2 * i] = 100 + i;
      world.send(src.data(), 1, col, 1, kTag);
    } else {
      std::vector<std::int32_t> dense(8, 0);
      Status st;
      world.recv(dense.data(), 8, Datatype::int_type(), 0, kTag, &st);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dense[i], 100 + i);
      EXPECT_EQ(st.count_bytes, 32u);
    }
  });
}

TEST(DtTransportTest, EagerDenseToStrided) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(8);
    if (world.rank() == 0) {
      std::vector<std::int32_t> dense(8);
      std::iota(dense.begin(), dense.end(), 200);
      world.send(dense.data(), 8, Datatype::int_type(), 1, kTag);
    } else {
      auto dst = strided_buf(8);
      world.recv(dst.data(), 1, col, 0, kTag);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(dst[2 * i], 200 + i);
        if (2 * i + 1 < 16) {
          EXPECT_EQ(dst[2 * i + 1], -1) << "gap clobbered";
        }
      }
    }
  });
}

TEST(DtTransportTest, EagerStridedToStridedBothDirections) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(8);
    auto mine = strided_buf(8);
    for (int i = 0; i < 8; ++i) mine[2 * i] = world.rank() * 1000 + i;
    auto got = strided_buf(8);
    const int peer = 1 - world.rank();
    world.sendrecv(mine.data(), 1, col, peer, kTag, got.data(), 1, col,
                   peer, kTag);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(got[2 * i], peer * 1000 + i);
      EXPECT_EQ(got[2 * i + 1], -1) << "gap clobbered";
    }
  });
}

TEST(DtTransportTest, MultiElementSendUsesExtent) {
  // count > 1: element e of vector(4,1,2,int) starts at e * extent.
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(4);
    const auto ext_ints = static_cast<int>(col.extent() / 4);  // 7 ints
    if (world.rank() == 0) {
      std::vector<std::int32_t> src(2 * ext_ints + 2, -1);
      for (int e = 0; e < 2; ++e)
        for (int i = 0; i < 4; ++i) src[e * ext_ints + 2 * i] = e * 10 + i;
      world.send(src.data(), 2, col, 1, kTag);
    } else {
      std::vector<std::int32_t> dense(8, 0);
      world.recv(dense.data(), 8, Datatype::int_type(), 0, kTag);
      for (int e = 0; e < 2; ++e)
        for (int i = 0; i < 4; ++i) EXPECT_EQ(dense[4 * e + i], e * 10 + i);
    }
  });
}

TEST(DtTransportTest, RendezvousStridedRoundTrip) {
  // 32 KiB payload is past the 16 KiB eager limit: the rendezvous path
  // must pack from the live strided sender buffer and scatter into the
  // strided receiver buffer without corrupting the gaps.
  constexpr int kElems = 8192;  // 32 KiB payload
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(kElems);
    if (world.rank() == 0) {
      auto src = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) src[2 * i] = i ^ 0x5a5a;
      world.send(src.data(), 1, col, 1, kTag);
    } else {
      auto dst = strided_buf(kElems);
      Status st;
      world.recv(dst.data(), 1, col, 0, kTag, &st);
      EXPECT_EQ(st.count_bytes, static_cast<std::size_t>(kElems) * 4);
      int bad = 0;
      for (int i = 0; i < kElems; ++i) {
        if (dst[2 * i] != (i ^ 0x5a5a)) ++bad;
        if (dst[2 * i + 1] != -1) ++bad;
      }
      EXPECT_EQ(bad, 0);
    }
  });
}

TEST(DtTransportTest, RendezvousUnexpectedTypedSend) {
  // The sender's strided layout must survive parking in the unexpected
  // queue: the receiver posts only after the RTS has arrived.
  constexpr int kElems = 8192;
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(kElems);
    std::byte go{};
    if (world.rank() == 0) {
      auto src = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) src[2 * i] = 7 * i + 1;
      Request r = world.isend(src.data(), 1, col, 1, kTag);
      world.send(&go, 1, 1, kGoTag);  // RTS is already enqueued
      r.wait();
    } else {
      world.recv(&go, 1, 0, kGoTag);
      auto dst = strided_buf(kElems);
      world.recv(dst.data(), 1, col, 0, kTag);
      int bad = 0;
      for (int i = 0; i < kElems; ++i)
        if (dst[2 * i] != 7 * i + 1 || dst[2 * i + 1] != -1) ++bad;
      EXPECT_EQ(bad, 0);
    }
  });
}

TEST(DtTransportTest, TypedTruncationThrowsOnReceiver) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(8);
    if (world.rank() == 0) {
      auto src = strided_buf(8);
      world.send(src.data(), 1, col, 1, kTag);
    } else {
      auto dst = strided_buf(4);
      EXPECT_THROW(world.recv(dst.data(), 1, column(4), 0, kTag),
                   TruncationError);
    }
  });
}

TEST(DtTransportTest, TypedNonblockingP2P) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(16);
    if (world.rank() == 0) {
      auto src = strided_buf(16);
      for (int i = 0; i < 16; ++i) src[2 * i] = 3 * i;
      Request r = world.isend(src.data(), 1, col, 1, kTag);
      r.wait();
    } else {
      auto dst = strided_buf(16);
      Request r = world.irecv(dst.data(), 1, col, 0, kTag);
      r.wait();
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(dst[2 * i], 3 * i);
        EXPECT_EQ(dst[2 * i + 1], -1);
      }
    }
  });
}

TEST(DtTransportTest, SteadyStateTypedEagerIsZeroAllocation) {
  // The zero-copy claim for noncontiguous eager sends: once the slab
  // free lists are warm, a strided typed message gathers straight into
  // a recycled slab (no allocation) and the dt.* pvars account for it.
  UniverseConfig c = cfg(2, /*pvars=*/true);
  constexpr int kWarmupRounds = 30;
  constexpr int kMeasuredRounds = 50;
  constexpr int kMsgs = 48;
  constexpr int kElems = 32;  // 128-byte payload per message
  std::int64_t misses_before = -1, misses_after = -1;
  std::int64_t fastpath_delta = -1, pack_bytes_delta = -1, runs_delta = -1;
  Universe u(c);
  u.run([&](Comm& world) {
    const auto col = column(kElems);
    auto payload = strided_buf(kElems);
    std::byte token{};
    auto rounds = [&](int n) {
      if (world.rank() == 0) {
        for (int r = 0; r < n; ++r) {
          for (int m = 0; m < kMsgs; ++m)
            world.send(payload.data(), 1, col, 1, kTag);
          world.send(&token, 1, 1, kGoTag);
          world.recv(&token, 1, 1, kAckTag);
        }
      } else {
        for (int r = 0; r < n; ++r) {
          world.recv(&token, 1, 0, kGoTag);
          for (int m = 0; m < kMsgs; ++m)
            world.recv(payload.data(), 1, col, 0, kTag);
          world.send(&token, 1, 0, kAckTag);
        }
      }
    };
    rounds(kWarmupRounds);
    // Warm the rank1 -> rank0 direction of the smallest size class too:
    // a preempted ack can park unexpected and would otherwise take a
    // cold miss mid-measurement (same trick as the slab suite).
    if (world.rank() == 1) {
      for (int m = 0; m < 80; ++m) world.send(&token, 1, 0, kTag);
      world.send(&token, 1, 0, kGoTag);
      world.recv(&token, 1, 0, kAckTag);
    } else {
      world.recv(&token, 1, 1, kGoTag);
      for (int m = 0; m < 80; ++m) world.recv(&token, 1, 1, kTag);
      world.send(&token, 1, 1, kAckTag);
    }
    world.barrier();
    obs::PvarRegistry& reg = *world.pvars();
    const obs::PvarId misses = reg.find("transport.slab.misses");
    const obs::PvarId fastpath = reg.find("dt.fastpath_hits");
    const obs::PvarId pack_bytes = reg.find("dt.pack_bytes");
    const obs::PvarId flat_runs = reg.find("dt.flatten_runs");
    const std::int64_t m1 = reg.total(misses);
    const std::int64_t f1 = reg.total(fastpath);
    const std::int64_t p1 = reg.total(pack_bytes);
    const std::int64_t r1 = reg.total(flat_runs);
    world.barrier();
    rounds(kMeasuredRounds);
    world.barrier();
    if (world.rank() == 0) {
      misses_before = m1;
      misses_after = reg.total(misses);
      fastpath_delta = reg.total(fastpath) - f1;
      pack_bytes_delta = reg.total(pack_bytes) - p1;
      runs_delta = reg.total(flat_runs) - r1;
    }
  });
  EXPECT_GT(misses_before, 0) << "cold start must have allocated";
  EXPECT_EQ(misses_after, misses_before)
      << "steady-state typed eager traffic must not allocate";
  // Every measured message records at least the sender-side gather (the
  // drain unpack records a second hit when it is strided too).
  constexpr std::int64_t kMeasuredMsgs =
      static_cast<std::int64_t>(kMeasuredRounds) * kMsgs;
  EXPECT_GE(fastpath_delta, kMeasuredMsgs);
  EXPECT_GE(pack_bytes_delta, kMeasuredMsgs * kElems * 4);
  EXPECT_GE(runs_delta, fastpath_delta)
      << "each strided copy visits at least one run";
}

TEST(DtTransportTest, TypedBlockingCollectives) {
  // Non-power-of-two world; every rank's payload lives in a strided
  // buffer; expectations computed densely by hand.
  constexpr int kRanks = 3;
  constexpr int kElems = 6;
  Universe::launch(cfg(kRanks), [](Comm& world) {
    const auto col = column(kElems);
    const int rk = world.rank();

    // bcast: root 1's column reaches everyone, gaps intact.
    {
      auto buf = strided_buf(kElems);
      if (rk == 1)
        for (int i = 0; i < kElems; ++i) buf[2 * i] = 40 + i;
      world.bcast(buf.data(), 1, col, 1);
      for (int i = 0; i < kElems; ++i) {
        EXPECT_EQ(buf[2 * i], 40 + i);
        EXPECT_EQ(buf[2 * i + 1], -1);
      }
    }

    // reduce(SUM) to root 2: sum over ranks of (rank + 1) * (i + 1).
    {
      auto in = strided_buf(kElems);
      auto out = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) in[2 * i] = (rk + 1) * (i + 1);
      world.reduce(in.data(), out.data(), 1, col, ReduceOp::kSum, 2);
      if (rk == 2) {
        for (int i = 0; i < kElems; ++i) {
          EXPECT_EQ(out[2 * i], 6 * (i + 1));  // (1+2+3)*(i+1)
          EXPECT_EQ(out[2 * i + 1], -1);
        }
      }
    }

    // allreduce(MAX): max over ranks of rank * 10 + i.
    {
      auto in = strided_buf(kElems);
      auto out = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) in[2 * i] = rk * 10 + i;
      world.allreduce(in.data(), out.data(), 1, col, ReduceOp::kMax);
      for (int i = 0; i < kElems; ++i) EXPECT_EQ(out[2 * i], 20 + i);
    }

    // gather to root 0: block r occupies ints [r*extent, ...).
    {
      auto in = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) in[2 * i] = rk * 100 + i;
      const auto ext_ints = static_cast<int>(col.extent() / 4);
      std::vector<std::int32_t> out(
          rk == 0 ? kRanks * ext_ints + 1 : 0, -1);
      world.gather(in.data(), 1, col, rk == 0 ? out.data() : nullptr, 0);
      if (rk == 0) {
        for (int r = 0; r < kRanks; ++r)
          for (int i = 0; i < kElems; ++i)
            EXPECT_EQ(out[r * ext_ints + 2 * i], r * 100 + i);
      }
    }

    // scatter from root 2, then allgather the results back.
    {
      const auto ext_ints = static_cast<int>(col.extent() / 4);
      std::vector<std::int32_t> sendall(
          rk == 2 ? kRanks * ext_ints + 1 : 0, -1);
      if (rk == 2)
        for (int r = 0; r < kRanks; ++r)
          for (int i = 0; i < kElems; ++i)
            sendall[r * ext_ints + 2 * i] = r * 7 + i;
      auto mine = strided_buf(kElems);
      world.scatter(rk == 2 ? sendall.data() : nullptr, 1, col,
                    mine.data(), 2);
      for (int i = 0; i < kElems; ++i) {
        EXPECT_EQ(mine[2 * i], rk * 7 + i);
        EXPECT_EQ(mine[2 * i + 1], -1);
      }

      std::vector<std::int32_t> all(kRanks * ext_ints + 1, -1);
      world.allgather(mine.data(), 1, col, all.data());
      for (int r = 0; r < kRanks; ++r)
        for (int i = 0; i < kElems; ++i)
          EXPECT_EQ(all[r * ext_ints + 2 * i], r * 7 + i);
    }

    // alltoall: rank r sends column (r, p) to rank p.
    {
      const auto ext_ints = static_cast<int>(col.extent() / 4);
      std::vector<std::int32_t> in(kRanks * ext_ints + 1, -1);
      std::vector<std::int32_t> out(kRanks * ext_ints + 1, -1);
      for (int p = 0; p < kRanks; ++p)
        for (int i = 0; i < kElems; ++i)
          in[p * ext_ints + 2 * i] = rk * 1000 + p * 100 + i;
      world.alltoall(in.data(), 1, col, out.data());
      for (int p = 0; p < kRanks; ++p)
        for (int i = 0; i < kElems; ++i)
          EXPECT_EQ(out[p * ext_ints + 2 * i], p * 1000 + rk * 100 + i);
    }
  });
}

TEST(DtTransportTest, TypedNonblockingCollectives) {
  constexpr int kRanks = 3;
  constexpr int kElems = 5;
  Universe::launch(cfg(kRanks), [](Comm& world) {
    const auto col = column(kElems);
    const int rk = world.rank();

    // iallreduce(SUM): send buffer mutated after the call returns must
    // not change the result (typed i-collectives stage at start).
    {
      auto in = strided_buf(kElems);
      auto out = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) in[2 * i] = rk + i;
      Request r =
          world.iallreduce(in.data(), out.data(), 1, col, ReduceOp::kSum);
      for (int i = 0; i < kElems; ++i) in[2 * i] = -999;
      r.wait();
      for (int i = 0; i < kElems; ++i) {
        EXPECT_EQ(out[2 * i], 3 + 3 * i);  // (0+1+2) + kRanks*i
        EXPECT_EQ(out[2 * i + 1], -1);
      }
    }

    // igather to root 1.
    {
      auto in = strided_buf(kElems);
      for (int i = 0; i < kElems; ++i) in[2 * i] = rk * 50 + i;
      const auto ext_ints = static_cast<int>(col.extent() / 4);
      std::vector<std::int32_t> out(
          rk == 1 ? kRanks * ext_ints + 1 : 0, -1);
      Request r = world.igather(in.data(), 1, col,
                                rk == 1 ? out.data() : nullptr, 1);
      r.wait();
      if (rk == 1) {
        for (int q = 0; q < kRanks; ++q)
          for (int i = 0; i < kElems; ++i)
            EXPECT_EQ(out[q * ext_ints + 2 * i], q * 50 + i);
      }
    }

    // ibcast from root 0.
    {
      auto buf = strided_buf(kElems);
      if (rk == 0)
        for (int i = 0; i < kElems; ++i) buf[2 * i] = 9 * i;
      Request r = world.ibcast(buf.data(), 1, col, 0);
      r.wait();
      for (int i = 0; i < kElems; ++i) {
        EXPECT_EQ(buf[2 * i], 9 * i);
        EXPECT_EQ(buf[2 * i + 1], -1);
      }
    }
  });
}

TEST(DtTransportTest, MixedLeafReductionRejected) {
  Universe::launch(cfg(2), [](Comm& world) {
    const std::vector<int> lens{1, 1};
    const std::vector<std::ptrdiff_t> displs{0, 8};
    const std::vector<Datatype> fields{Datatype::int_type(),
                                       Datatype::double_type()};
    const auto mixed = Datatype::struct_type(lens, displs, fields);
    std::vector<std::byte> a(16), b(16);
    EXPECT_THROW(
        world.allreduce(a.data(), b.data(), 1, mixed, ReduceOp::kSum),
        jhpc::UnsupportedOperationError);
    EXPECT_THROW(
        world.ireduce(a.data(), b.data(), 1, mixed, ReduceOp::kSum, 0),
        jhpc::UnsupportedOperationError);
    world.barrier();
  });
}

TEST(DtTransportTest, ZeroCountTypedOpsAreNoops) {
  Universe::launch(cfg(2), [](Comm& world) {
    const auto col = column(4);
    if (world.rank() == 0) {
      world.send(nullptr, 0, col, 1, kTag);
    } else {
      Status st;
      world.recv(nullptr, 0, col, 0, kTag, &st);
      EXPECT_EQ(st.count_bytes, 0u);
    }
    auto buf = strided_buf(4);
    world.bcast(buf.data(), 0, col, 0);
    world.allreduce(nullptr, nullptr, 0, col, ReduceOp::kSum);
    world.barrier();
  });
}

}  // namespace
}  // namespace jhpc::minimpi
