// Communicator and group management: dup, split, create, group algebra,
// context isolation.
#include <gtest/gtest.h>

#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

UniverseConfig cfg(int n) {
  UniverseConfig c;
  c.world_size = n;
  return c;
}

TEST(GroupTest, ConstructionAndLookup) {
  Group g({4, 2, 7});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.world_rank(0), 4);
  EXPECT_EQ(g.world_rank(2), 7);
  EXPECT_EQ(g.rank_of(2), 1);
  EXPECT_EQ(g.rank_of(99), -1);
  EXPECT_THROW(g.world_rank(3), InvalidArgumentError);
  EXPECT_THROW(Group({1, 1}), InvalidArgumentError);
  EXPECT_THROW(Group({-1}), InvalidArgumentError);
}

TEST(GroupTest, InclExcl) {
  Group g({10, 11, 12, 13});
  const Group inc = g.incl({3, 0});
  EXPECT_EQ(inc.ranks(), (std::vector<int>{13, 10}));
  const Group exc = g.excl({1, 2});
  EXPECT_EQ(exc.ranks(), (std::vector<int>{10, 13}));
  EXPECT_THROW(g.excl({9}), InvalidArgumentError);
}

TEST(GroupTest, SetAlgebra) {
  Group a({0, 1, 2, 3});
  Group b({2, 3, 4, 5});
  EXPECT_EQ(a.union_with(b).ranks(), (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(a.intersection(b).ranks(), (std::vector<int>{2, 3}));
  EXPECT_EQ(a.difference(b).ranks(), (std::vector<int>{0, 1}));
  EXPECT_EQ(b.difference(a).ranks(), (std::vector<int>{4, 5}));
}

TEST(GroupTest, TranslateRanks) {
  Group a({5, 6, 7, 8});
  Group b({8, 5});
  const auto t = a.translate({0, 1, 3}, b);
  EXPECT_EQ(t, (std::vector<int>{1, -1, 0}));
}

TEST(CommMgmtTest, DupIsolatesTraffic) {
  Universe::launch(cfg(2), [](Comm& world) {
    Comm dup = world.dup();
    EXPECT_EQ(dup.rank(), world.rank());
    EXPECT_EQ(dup.size(), world.size());
    if (world.rank() == 0) {
      int a = 1, b = 2;
      world.send(&a, sizeof(a), 1, 0);
      dup.send(&b, sizeof(b), 1, 0);
    } else {
      // Receive from the dup'd communicator FIRST: if contexts leaked,
      // this would grab the world message instead.
      int got = 0;
      dup.recv(&got, sizeof(got), 0, 0);
      EXPECT_EQ(got, 2);
      world.recv(&got, sizeof(got), 0, 0);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(CommMgmtTest, SplitEvenOdd) {
  Universe::launch(cfg(6), [](Comm& world) {
    Comm half = world.split(world.rank() % 2, world.rank());
    ASSERT_TRUE(half.valid());
    EXPECT_EQ(half.size(), 3);
    EXPECT_EQ(half.rank(), world.rank() / 2);
    // Sum ranks within each half to confirm membership.
    std::int32_t v = world.rank();
    std::int32_t sum = 0;
    half.allreduce(&v, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
    EXPECT_EQ(sum, world.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommMgmtTest, SplitHonoursKeyOrdering) {
  Universe::launch(cfg(4), [](Comm& world) {
    // All the same color; key reverses the order.
    Comm rev = world.split(0, -world.rank());
    ASSERT_TRUE(rev.valid());
    EXPECT_EQ(rev.rank(), world.size() - 1 - world.rank());
  });
}

TEST(CommMgmtTest, SplitUndefinedYieldsInvalidComm) {
  Universe::launch(cfg(4), [](Comm& world) {
    const int color = world.rank() == 3 ? -1 : 0;
    Comm sub = world.split(color, 0);
    if (world.rank() == 3) {
      EXPECT_FALSE(sub.valid());
      int v = 0;
      EXPECT_THROW(sub.send(&v, sizeof(v), 0, 0), InvalidArgumentError);
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
      sub.barrier();
    }
  });
}

TEST(CommMgmtTest, CreateSubgroupCommunicator) {
  Universe::launch(cfg(5), [](Comm& world) {
    const Group sub = world.group().incl({4, 0, 2});
    Comm c = world.create(sub);
    if (world.rank() == 4 || world.rank() == 0 || world.rank() == 2) {
      ASSERT_TRUE(c.valid());
      EXPECT_EQ(c.size(), 3);
      // Group order defines rank order: 4 -> 0, 0 -> 1, 2 -> 2.
      const int want = world.rank() == 4 ? 0 : (world.rank() == 0 ? 1 : 2);
      EXPECT_EQ(c.rank(), want);
      std::int32_t v = 1, sum = 0;
      c.allreduce(&v, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
      EXPECT_EQ(sum, 3);
    } else {
      EXPECT_FALSE(c.valid());
    }
  });
}

TEST(CommMgmtTest, NestedSplitOfSplit) {
  Universe::launch(cfg(8), [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    ASSERT_TRUE(half.valid());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_TRUE(quarter.valid());
    EXPECT_EQ(quarter.size(), 2);
    std::int32_t v = world.rank(), sum = 0;
    quarter.allreduce(&v, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
    // Pairs: (0,1) (2,3) (4,5) (6,7).
    const int base = world.rank() / 2 * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

TEST(CommMgmtTest, WtimeAdvances) {
  const double a = Comm::wtime();
  const double b = Comm::wtime();
  EXPECT_GE(b, a);
}

TEST(CommMgmtTest, InvalidCommOperationsThrow) {
  Comm c;  // default: invalid
  EXPECT_FALSE(c.valid());
  int v = 0;
  EXPECT_THROW(c.send(&v, sizeof(v), 0, 0), InvalidArgumentError);
  EXPECT_THROW(c.barrier(), InvalidArgumentError);
  EXPECT_THROW(c.dup(), InvalidArgumentError);
}

}  // namespace
}  // namespace jhpc::minimpi
