// The mpjbuf buffering layer: typed staging, sections, encodings, and the
// pool that motivates its existence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/mpjbuf/buffer.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"
#include "jhpc/obs/pvar.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mpjbuf {
namespace {

using minijvm::jbyte;
using minijvm::jdouble;
using minijvm::jint;
using minijvm::jshort;
using minijvm::Jvm;
using minijvm::JvmConfig;

JvmConfig fast_cfg() {
  JvmConfig c;
  c.heap_bytes = 4 << 20;
  c.jni_crossing_ns = 0;
  return c;
}

FactoryConfig small_pool() {
  FactoryConfig c;
  c.min_capacity = 256;
  c.max_pooled_buffers = 4;
  return c;
}

TEST(BufferTest, WriteReadRoundTripFromArrays) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  auto src = jvm.new_array<jint>(10);
  for (std::size_t i = 0; i < 10; ++i) src[i] = static_cast<jint>(i * i);

  Buffer buf = factory.get(64);
  buf.write(src, 0, 10);
  EXPECT_EQ(buf.size(), 40u);
  buf.commit();

  auto dst = jvm.new_array<jint>(10);
  buf.read(dst, 0, 10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(BufferTest, SubRangeWriteHonoursOffsets) {
  // The capability the paper highlights: staging a SUBSET of an array
  // (lost in the Open MPI API when `offset` was removed).
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  auto src = jvm.new_array<jint>(10);
  for (std::size_t i = 0; i < 10; ++i) src[i] = static_cast<jint>(i);

  Buffer buf = factory.get(64);
  buf.write(src, 3, 4);  // elements 3..6
  buf.commit();

  auto dst = jvm.new_array<jint>(10);
  buf.read(dst, 5, 4);  // into positions 5..8
  EXPECT_EQ(dst[5], 3);
  EXPECT_EQ(dst[8], 6);
  EXPECT_EQ(dst[0], 0);
}

TEST(BufferTest, RangeValidation) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  auto a = jvm.new_array<jint>(4);
  Buffer buf = factory.get(64);
  EXPECT_THROW(buf.write(a, 2, 3), jhpc::InvalidArgumentError);
  buf.write(a, 0, 4);
  buf.commit();
  auto b = jvm.new_array<jint>(2);
  EXPECT_THROW(buf.read(b, 0, 3), jhpc::InvalidArgumentError);
}

TEST(BufferTest, UnderflowOverflowChecked) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  Buffer buf = factory.get(256);  // exact size-class capacity 256
  std::vector<jbyte> big(300, 1);
  EXPECT_THROW(buf.write(big.data(), big.size()),
               jhpc::InvalidArgumentError);
  buf.write(big.data(), 10);
  buf.commit();
  jbyte out[20];
  EXPECT_THROW(buf.read(out, 20), jhpc::InvalidArgumentError);
}

TEST(BufferTest, MultipleTypedSections) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  auto ints = jvm.new_array<jint>(3);
  auto doubles = jvm.new_array<jdouble>(2);
  ints[0] = 1; ints[1] = 2; ints[2] = 3;
  doubles[0] = 1.5; doubles[1] = 2.5;

  Buffer buf = factory.get(256);
  buf.put_section_header(SectionType::kInt, 3);
  buf.write(ints, 0, 3);
  buf.put_section_header(SectionType::kDouble, 2);
  buf.write(doubles, 0, 2);
  buf.commit();

  std::size_t n = 0;
  EXPECT_EQ(buf.get_section_header(&n), SectionType::kInt);
  EXPECT_EQ(n, 3u);
  auto ri = jvm.new_array<jint>(3);
  buf.read(ri, 0, n);
  EXPECT_EQ(ri[2], 3);
  EXPECT_EQ(buf.get_section_header(&n), SectionType::kDouble);
  EXPECT_EQ(n, 2u);
  auto rd = jvm.new_array<jdouble>(2);
  buf.read(rd, 0, n);
  EXPECT_DOUBLE_EQ(rd[1], 2.5);
  EXPECT_EQ(buf.get_section_size(), 2u);
}

TEST(BufferTest, EncodingRoundTripNonNative) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  const auto other = jhpc::native_order() == jhpc::ByteOrder::kBigEndian
                         ? jhpc::ByteOrder::kLittleEndian
                         : jhpc::ByteOrder::kBigEndian;
  auto src = jvm.new_array<jshort>(4);
  for (std::size_t i = 0; i < 4; ++i) src[i] = static_cast<jshort>(0x0102 + i);

  Buffer buf = factory.get(64);
  buf.set_encoding(other);
  EXPECT_EQ(buf.get_encoding(), other);
  buf.write(src, 0, 4);
  // On the wire the bytes must be swapped relative to native.
  const std::byte* raw = buf.native_address();
  EXPECT_EQ(static_cast<unsigned>(raw[0]), 0x01u);
  EXPECT_EQ(static_cast<unsigned>(raw[1]), 0x02u);
  buf.commit();
  auto dst = jvm.new_array<jshort>(4);
  buf.read(dst, 0, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(BufferTest, ReserveConsumeNativeCursors) {
  // The native-side path used for derived-datatype pack/unpack.
  BufferFactory factory(small_pool());
  Buffer buf = factory.get(64);
  std::byte* w = buf.reserve(8);
  for (int i = 0; i < 8; ++i) w[i] = static_cast<std::byte>(i * 3);
  EXPECT_EQ(buf.size(), 8u);
  buf.commit();
  const std::byte* r = buf.consume(8);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(r[i], static_cast<std::byte>(i * 3));
  EXPECT_THROW(buf.consume(1), jhpc::InvalidArgumentError);
  EXPECT_THROW(buf.reserve(10'000), jhpc::InvalidArgumentError);
}

TEST(BufferTest, ReserveInterleavesWithTypedWrites) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  Buffer buf = factory.get(64);
  jint v = 7;
  buf.write(&v, 1);
  std::byte* w = buf.reserve(4);
  std::memset(w, 0x5A, 4);
  buf.commit();
  jint out = 0;
  buf.read(&out, 1);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(buf.consume(4)[3], static_cast<std::byte>(0x5A));
}

TEST(BufferTest, ClearResetsCursors) {
  Jvm jvm(fast_cfg());
  BufferFactory factory(small_pool());
  Buffer buf = factory.get(64);
  jint v = 5;
  buf.write(&v, 1);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  buf.write(&v, 1);
  buf.commit();
  jint out = 0;
  buf.read(&out, 1);
  EXPECT_EQ(out, 5);
}

TEST(BufferTest, UseAfterFreeRejected) {
  BufferFactory factory(small_pool());
  Buffer buf = factory.get(64);
  buf.free();
  EXPECT_FALSE(buf.is_valid());
  jint v = 1;
  EXPECT_THROW(buf.write(&v, 1), jhpc::InvalidArgumentError);
  EXPECT_THROW(buf.free(), jhpc::InvalidArgumentError);
}

TEST(FactoryTest, PoolReusesStorage) {
  BufferFactory factory(small_pool());
  std::byte* first_addr = nullptr;
  {
    Buffer a = factory.get(100);
    first_addr = a.native_address();
  }  // destructor returns it to the pool
  Buffer b = factory.get(100);
  EXPECT_EQ(b.native_address(), first_addr)
      << "second request must reuse the pooled storage";
  const auto st = factory.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.pool_hits, 1u);
  EXPECT_EQ(st.pool_misses, 1u);
}

TEST(FactoryTest, SizeClassesArePowersOfTwoAboveMin) {
  BufferFactory factory(small_pool());
  EXPECT_EQ(factory.get(1).capacity(), 256u);
  EXPECT_EQ(factory.get(256).capacity(), 256u);
  EXPECT_EQ(factory.get(257).capacity(), 512u);
  EXPECT_EQ(factory.get(100'000).capacity(), 131072u);
}

TEST(FactoryTest, SmallestFittingBufferIsPreferred) {
  BufferFactory factory(small_pool());
  {
    Buffer big = factory.get(4096);
    Buffer small = factory.get(256);
  }  // both pooled now
  Buffer b = factory.get(200);
  EXPECT_EQ(b.capacity(), 256u) << "must not burn the 4K buffer on a 200B ask";
}

TEST(FactoryTest, RetentionCapDropsExcess) {
  BufferFactory factory(small_pool());  // cap = 4
  {
    std::vector<Buffer> bufs;
    for (int i = 0; i < 6; ++i) bufs.push_back(factory.get(256));
  }
  const auto st = factory.stats();
  EXPECT_EQ(st.returned, 6u);
  EXPECT_EQ(st.dropped, 2u);
  EXPECT_EQ(st.pooled_now, 4u);
}

TEST(FactoryTest, HugeRequestThrowsInsteadOfLooping) {
  // Rounding SIZE_MAX up to a power-of-two class cannot be represented;
  // the seed's doubling loop (cls <<= 1) wrapped to zero and spun
  // forever. The O(1) class math must refuse instead.
  BufferFactory factory(small_pool());
  EXPECT_THROW(factory.get(std::numeric_limits<std::size_t>::max()),
               jhpc::Error);
  EXPECT_THROW(
      factory.get((std::numeric_limits<std::size_t>::max() >> 1) + 2),
      jhpc::Error);
  // A large-but-representable request still works (no allocation here:
  // this only checks the class math doesn't overflow prematurely).
  EXPECT_NO_THROW(factory.get(1 << 20));
}

TEST(FactoryTest, ThreadedStressKeepsCountersConsistent) {
  // The factory is documented thread-safe; hammer one shared pool from
  // several threads with mixed sizes and check the counter algebra.
  // Run under -DJHPC_SANITIZE=thread (ctest -L obs) to race-check.
  constexpr int kThreads = 4;
  constexpr int kCycles = 2000;
  FactoryConfig cfg;
  cfg.min_capacity = 256;
  cfg.max_pooled_buffers = 8;
  BufferFactory factory(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&factory, t] {
      const std::size_t sizes[] = {64, 300, 1000, 5000};
      for (int i = 0; i < kCycles; ++i) {
        Buffer a = factory.get(sizes[(t + i) % 4]);
        Buffer b = factory.get(sizes[i % 4]);
        // Both returned to the pool at scope exit.
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = factory.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kCycles * 2;
  EXPECT_EQ(st.requests, total);
  EXPECT_EQ(st.pool_hits + st.pool_misses, total);
  EXPECT_EQ(st.returned, total);
  EXPECT_LE(st.pooled_now, cfg.max_pooled_buffers);
  // Every retained return was either re-issued as a hit or still pools.
  EXPECT_EQ(st.returned - st.dropped, st.pool_hits + st.pooled_now);
  EXPECT_GT(st.pool_hits, 0u);
}

TEST(FactoryTest, MoveSemantics) {
  BufferFactory factory(small_pool());
  Buffer a = factory.get(64);
  jint v = 3;
  a.write(&v, 1);
  Buffer b = std::move(a);
  EXPECT_FALSE(a.is_valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.is_valid());
  EXPECT_EQ(b.size(), sizeof(jint));
  b = factory.get(64);  // assignment frees the old storage back to pool
  EXPECT_EQ(factory.stats().returned, 1u);
}

TEST(FactoryTest, BindPvarsMirrorsStats) {
  obs::PvarRegistry reg(1);
  BufferFactory factory(small_pool());
  { Buffer a = factory.get(64); }  // miss + return BEFORE binding
  factory.bind_pvars(reg, /*rank=*/0);

  // Pre-binding activity is seeded, so registry == stats() from the start.
  EXPECT_EQ(reg.read(reg.find("mpjbuf.pool.requests"), 0), 1);
  EXPECT_EQ(reg.read(reg.find("mpjbuf.pool.misses"), 0), 1);
  EXPECT_EQ(reg.read(reg.find("mpjbuf.pool.returned"), 0), 1);

  { Buffer b = factory.get(64); }  // hit + return, live-tracked
  {
    std::vector<Buffer> bufs;  // overflow the cap of 4 so one drops
    for (int i = 0; i < 5; ++i) bufs.push_back(factory.get(256));
  }

  const auto st = factory.stats();
  auto pvar = [&](const char* name) { return reg.read(reg.find(name), 0); };
  EXPECT_EQ(pvar("mpjbuf.pool.requests"),
            static_cast<std::int64_t>(st.requests));
  EXPECT_EQ(pvar("mpjbuf.pool.hits"),
            static_cast<std::int64_t>(st.pool_hits));
  EXPECT_EQ(pvar("mpjbuf.pool.misses"),
            static_cast<std::int64_t>(st.pool_misses));
  EXPECT_EQ(pvar("mpjbuf.pool.returned"),
            static_cast<std::int64_t>(st.returned));
  EXPECT_EQ(pvar("mpjbuf.pool.dropped"),
            static_cast<std::int64_t>(st.dropped));
  EXPECT_EQ(st.dropped, 1u);
  // The level pvar is a high-water mark, so it may exceed pooled_now.
  EXPECT_GE(pvar("mpjbuf.pool.pooled"),
            static_cast<std::int64_t>(st.pooled_now));

  // Rebinding the same registry is idempotent: no double-seeding.
  factory.bind_pvars(reg, 0);
  EXPECT_EQ(pvar("mpjbuf.pool.requests"),
            static_cast<std::int64_t>(st.requests));
}

TEST(FactoryTest, StressManyCyclesNoGrowth) {
  BufferFactory factory(small_pool());
  for (int i = 0; i < 1000; ++i) {
    Buffer b = factory.get(static_cast<std::size_t>(64 + (i % 5) * 300));
    jint v = i;
    b.write(&v, 1);
  }
  EXPECT_LE(factory.stats().pooled_now, 4u);
  EXPECT_GT(factory.stats().pool_hits, 900u)
      << "steady state should be nearly all pool hits";
}

}  // namespace
}  // namespace jhpc::mpjbuf
