// One-sided (RMA) battery (docs/API.md §"One-sided communication"):
// epoch discipline is enforced with typed errors, fence orders like a
// barrier, lock/unlock really mutually excludes concurrent rank
// threads, post/start group violations are rejected, windows can be
// rebuilt on a shrunk communicator after a failure, the rma.* pvars
// account exactly, and a disabled-observability job pays none of it.
//
// Registered under `ctest -L rma` and part of the TSan/ASan sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

/// Hermetic config; observability on (trace to a scratch file) so the
/// pvar registry is alive without printing the finalize table.
UniverseConfig rma_cfg(int ranks, const std::string& tag, int ppn = 1) {
  UniverseConfig c;
  c.world_size = ranks;
  c.fabric.ranks_per_node = ppn;
  c.obs = obs::ObsConfig{};
  c.obs.trace_path = testing::TempDir() + "rma_" + tag + ".json";
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n, unsigned key) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>((i * 31 + key * 17) & 0xff);
  return v;
}

std::int64_t total(obs::PvarRegistry& reg, const char* name) {
  return reg.total(reg.find(name));
}

// --- Epoch discipline -------------------------------------------------------

TEST(RmaEpochTest, OpOutsideAnyEpochThrowsInvalidArgument) {
  UniverseConfig c = rma_cfg(2, "no_epoch");
  Universe::launch(c, [](Comm& world) {
    std::vector<std::uint8_t> mem(64, 0);
    Win win = world.win_create(mem.data(), mem.size());
    const std::uint8_t byte = 7;
    // No fence/start/lock yet: every operation must be rejected, typed.
    EXPECT_THROW(win.put(&byte, 1, 1 - world.rank(), 0),
                 jhpc::InvalidArgumentError);
    std::uint8_t out = 0;
    EXPECT_THROW(win.get(&out, 1, 1 - world.rank(), 0),
                 jhpc::InvalidArgumentError);
    std::int32_t v = 1, old = 0;
    EXPECT_THROW(win.fetch_op(&v, &old, BasicKind::kInt, ReduceOp::kSum,
                              1 - world.rank(), 0),
                 jhpc::InvalidArgumentError);
    // Closing calls without an open epoch are equally erroneous.
    EXPECT_THROW(win.complete(), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.wait(), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.unlock(0), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.unlock_all(), jhpc::InvalidArgumentError);
    win.free();
  });
}

TEST(RmaEpochTest, BoundsAndArgumentViolationsAreTyped) {
  UniverseConfig c = rma_cfg(2, "bounds");
  Universe::launch(c, [](Comm& world) {
    std::vector<std::uint8_t> mem(32, 0);
    Win win = world.win_create(mem.data(), mem.size());
    win.fence();
    const int peer = 1 - world.rank();
    std::vector<std::uint8_t> buf(64, 1);
    // Past-the-end and out-of-range targets.
    EXPECT_THROW(win.put(buf.data(), 64, peer, 0),
                 jhpc::InvalidArgumentError);
    EXPECT_THROW(win.put(buf.data(), 8, peer, 32),
                 jhpc::InvalidArgumentError);
    EXPECT_THROW(win.put(buf.data(), 8, 5, 0), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.get(buf.data(), 33, peer, 0),
                 jhpc::InvalidArgumentError);
    // Offset+span overflow must not wrap.
    EXPECT_THROW(win.put(buf.data(), 8, peer,
                         static_cast<std::size_t>(-4)),
                 jhpc::InvalidArgumentError);
    win.fence();
    win.free();
  });
}

TEST(RmaEpochTest, PostStartGroupMismatchRejected) {
  UniverseConfig c = rma_cfg(3, "group_mismatch");
  Universe::launch(c, [](Comm& world) {
    std::vector<std::uint8_t> mem(16, 0);
    Win win = world.win_create(mem.data(), mem.size());
    // Locally detectable group violations: own rank, duplicates, range.
    EXPECT_THROW(win.post({world.rank()}), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.start({world.rank()}), jhpc::InvalidArgumentError);
    const int other = (world.rank() + 1) % 3;
    EXPECT_THROW(win.post({other, other}), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.start({3}), jhpc::InvalidArgumentError);
    EXPECT_THROW(win.post({-1}), jhpc::InvalidArgumentError);
    // An op on a rank outside the access group is an epoch violation.
    if (world.rank() == 0) {
      win.start({1});
      const std::uint8_t b = 1;
      EXPECT_THROW(win.put(&b, 1, 2, 0), jhpc::InvalidArgumentError);
      win.put(&b, 1, 1, 0);
      win.complete();
    } else if (world.rank() == 1) {
      win.post({0});
      win.wait();
    }
    world.barrier();
    win.free();
  });
}

// --- Fence epochs -----------------------------------------------------------

TEST(RmaFenceTest, PutGetRoundtripAndFenceOrdering) {
  // Ring of puts: rank r writes its pattern into rank r+1's window.
  // After the closing fence every rank must see its predecessor's bytes
  // in its OWN memory (fence-as-barrier: target completion included).
  for (const int ranks : {2, 3, 5}) {
    UniverseConfig c = rma_cfg(ranks, "ring" + std::to_string(ranks));
    Universe::launch(c, [&](Comm& world) {
      const int n = world.size();
      const int me = world.rank();
      std::vector<std::uint8_t> mem(256, 0);
      Win win = world.win_create(mem.data(), mem.size());
      win.fence();
      const auto mine = pattern(256, static_cast<unsigned>(me));
      win.put(mine.data(), mine.size(), (me + 1) % n, 0);
      const std::int64_t before = world.vtime_ns();
      win.fence();
      EXPECT_GE(world.vtime_ns(), before);
      // Direct load from my own exposed memory — legal between epochs.
      EXPECT_EQ(mem, pattern(256, static_cast<unsigned>((me + n - 1) % n)));

      // Second epoch: everyone gets the successor's window back and must
      // read what the successor's predecessor put there.
      std::vector<std::uint8_t> back(256);
      win.get(back.data(), back.size(), (me + 1) % n, 0);
      win.fence();
      EXPECT_EQ(back, pattern(256, static_cast<unsigned>(me)));
      win.free();
    });
  }
}

TEST(RmaFenceTest, AccumulateSumsAllRanksAndDerivedTypedPut) {
  UniverseConfig c = rma_cfg(4, "acc");
  Universe::launch(c, [](Comm& world) {
    const int n = world.size();
    const int me = world.rank();
    Win win = world.win_allocate(64 * sizeof(std::int32_t));
    auto* ints = static_cast<std::int32_t*>(win.base());
    win.fence();  // win_allocate memory starts zeroed
    std::vector<std::int32_t> contrib(64);
    for (int i = 0; i < 64; ++i) contrib[i] = (me + 1) * (i + 1);
    for (int t = 0; t < n; ++t)
      win.accumulate(contrib.data(), 64, Datatype::basic(BasicKind::kInt),
                     ReduceOp::kSum, t, 0);
    win.fence();
    const int scale = n * (n + 1) / 2;  // sum of (me+1) over all ranks
    for (int i = 0; i < 64; ++i)
      ASSERT_EQ(ints[i], scale * (i + 1)) << "element " << i;

    // Derived-type put: pack a contiguous origin payload into every
    // second int of the target (vector type), rank 0 -> rank 1.
    win.fence();
    if (me == 0) {
      const Datatype stride2 =
          Datatype::vector(32, 1, 2, Datatype::basic(BasicKind::kInt));
      std::vector<std::int32_t> src(32);
      for (int i = 0; i < 32; ++i) src[i] = 1000 + i;
      win.put(src.data(), 32, Datatype::basic(BasicKind::kInt), 1, 0,
              stride2);
    }
    win.fence();
    if (me == 1) {
      for (int i = 0; i < 32; ++i)
        ASSERT_EQ(ints[2 * i], 1000 + i) << "strided slot " << i;
    }
    win.free();
  });
}

TEST(RmaFenceTest, FetchOpHandsOutDistinctTickets) {
  UniverseConfig c = rma_cfg(4, "fetch_op");
  Universe::launch(c, [](Comm& world) {
    Win win = world.win_allocate(sizeof(std::int64_t));
    win.fence();
    const std::int64_t one = 1;
    std::int64_t ticket = -1;
    win.fetch_op(&one, &ticket, BasicKind::kLong, ReduceOp::kSum, 0, 0);
    win.fence();
    // Every rank got a distinct pre-increment value in [0, n).
    EXPECT_GE(ticket, 0);
    EXPECT_LT(ticket, world.size());
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(world.size()));
    std::uint8_t mine = 1;
    world.gather(&mine, 1, seen.data(), 0);
    if (world.rank() == 0) {
      auto* counter = static_cast<std::int64_t*>(win.base());
      EXPECT_EQ(*counter, world.size());
    }
    std::vector<std::int64_t> tickets(
        static_cast<std::size_t>(world.size()));
    world.gather(&ticket, sizeof(ticket), tickets.data(), 0);
    if (world.rank() == 0) {
      std::sort(tickets.begin(), tickets.end());
      for (int r = 0; r < world.size(); ++r)
        EXPECT_EQ(tickets[static_cast<std::size_t>(r)], r);
    }
    win.free();
  });
}

// --- Generalized active target ---------------------------------------------

TEST(RmaPscwTest, PostStartCompleteWaitMovesData) {
  UniverseConfig c = rma_cfg(4, "pscw");
  Universe::launch(c, [](Comm& world) {
    // Ranks 1..3 put into rank 0's window; only rank 0 exposes.
    const int me = world.rank();
    std::vector<std::uint8_t> mem(3 * 64, 0);
    Win win = world.win_create(mem.data(), me == 0 ? mem.size() : 0);
    if (me == 0) {
      win.post({1, 2, 3});
      win.wait();
      for (int r = 1; r <= 3; ++r) {
        std::vector<std::uint8_t> slot(
            mem.begin() + (r - 1) * 64, mem.begin() + r * 64);
        EXPECT_EQ(slot, pattern(64, static_cast<unsigned>(r)));
      }
    } else {
      win.start({0});
      const auto mine = pattern(64, static_cast<unsigned>(me));
      win.put(mine.data(), mine.size(), 0,
              static_cast<std::size_t>(me - 1) * 64);
      win.complete();
    }
    world.barrier();
    win.free();
  });
}

// --- Passive target ---------------------------------------------------------

TEST(RmaLockTest, ExclusiveLockMutuallyExcludesRankThreads) {
  // Classic lost-update probe: every rank performs read-modify-write
  // increments on a counter in rank 0's window under an exclusive lock.
  // Any mutual-exclusion failure loses updates.
  UniverseConfig c = rma_cfg(4, "mutex");
  constexpr int kIncrements = 25;
  Universe::launch(c, [](Comm& world) {
    Win win = world.win_allocate(sizeof(std::int64_t));
    for (int i = 0; i < kIncrements; ++i) {
      win.lock(LockType::kExclusive, 0);
      std::int64_t v = 0;
      win.get(&v, sizeof(v), 0, 0);
      v += 1;
      win.put(&v, sizeof(v), 0, 0);
      win.unlock(0);
    }
    world.barrier();
    if (world.rank() == 0) {
      auto* counter = static_cast<std::int64_t*>(win.base());
      EXPECT_EQ(*counter, static_cast<std::int64_t>(world.size()) *
                              kIncrements)
          << "lost update: exclusive lock failed to exclude";
    }
    world.barrier();
    win.free();
  });
}

TEST(RmaLockTest, SharedLocksCoexistAndLockAllWorks) {
  UniverseConfig c = rma_cfg(4, "shared");
  Universe::launch(c, [](Comm& world) {
    const int me = world.rank();
    Win win = world.win_allocate(
        static_cast<std::size_t>(world.size()) * sizeof(std::int32_t));
    // Seed my own slot in everyone's window via a fence epoch.
    win.fence();
    const std::int32_t tag = 100 + me;
    for (int t = 0; t < world.size(); ++t)
      win.put(&tag, sizeof(tag), t,
              static_cast<std::size_t>(me) * sizeof(tag));
    win.fence();
    // All ranks shared-lock everything and read everyone's slots.
    win.lock_all();
    for (int t = 0; t < world.size(); ++t) {
      for (int s = 0; s < world.size(); ++s) {
        std::int32_t got = 0;
        win.get(&got, sizeof(got), t,
                static_cast<std::size_t>(s) * sizeof(got));
        EXPECT_EQ(got, 100 + s);
      }
    }
    win.unlock_all();
    world.barrier();
    win.free();
  });
}

TEST(RmaLockTest, LockEpochDisciplineEnforced) {
  UniverseConfig c = rma_cfg(2, "lock_discipline");
  Universe::launch(c, [](Comm& world) {
    std::vector<std::uint8_t> mem(16, 0);
    Win win = world.win_create(mem.data(), mem.size());
    win.lock(LockType::kShared, 0);
    // Op on a rank other than the locked one; wrong-target unlock;
    // double lock without unlock.
    if (world.size() > 1) {
      const std::uint8_t b = 1;
      EXPECT_THROW(win.put(&b, 1, 1, 0), jhpc::InvalidArgumentError);
      EXPECT_THROW(win.unlock(1), jhpc::InvalidArgumentError);
    }
    EXPECT_THROW(win.lock(LockType::kShared, 0),
                 jhpc::InvalidArgumentError);
    EXPECT_THROW(win.fence(), jhpc::InvalidArgumentError);
    win.unlock(0);
    world.barrier();
    win.free();
  });
}

// --- Failure recovery -------------------------------------------------------

TEST(RmaResilienceTest, WindowRebuiltOnShrunkCommAfterFailure) {
  // Rank 2 dies at t=0; survivors shrink and must be able to build and
  // drive a fresh window on the shrunk communicator.
  UniverseConfig c;
  c.world_size = 4;
  c.obs = obs::ObsConfig{};
  c.fabric.faults.kills = {{2, 0}};
  std::atomic<int> recovered{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    try {
      for (;;) {
        world.barrier();  // the dead rank eventually poisons this
      }
    } catch (const jhpc::Error& e) {
      ASSERT_TRUE(e.code() == ErrorCode::kRankFailed ||
                  e.code() == ErrorCode::kCommRevoked)
          << e.what();
    }
    Comm alive = world.shrink();
    ASSERT_EQ(alive.size(), 3);
    // The window lives on the SHRUNK comm: full fence/put cycle works.
    Win win = alive.win_allocate(128);
    auto* bytes = static_cast<std::uint8_t*>(win.base());
    win.fence();
    const auto mine = pattern(128, static_cast<unsigned>(alive.rank()));
    win.put(mine.data(), mine.size(), (alive.rank() + 1) % alive.size(), 0);
    win.fence();
    const int pred = (alive.rank() + alive.size() - 1) % alive.size();
    for (std::size_t i = 0; i < 128; ++i)
      ASSERT_EQ(bytes[i], pattern(128, static_cast<unsigned>(pred))[i]);
    win.free();
    recovered.fetch_add(1);
  });
  EXPECT_EQ(recovered.load(), 3);
}

// --- Observability ----------------------------------------------------------

TEST(RmaObsTest, PvarAccountingIsExact) {
  UniverseConfig c = rma_cfg(2, "pvars");
  Universe::launch(c, [](Comm& world) {
    Win win = world.win_allocate(4096);
    win.fence();  // epoch 1 closed per rank
    const int peer = 1 - world.rank();
    std::vector<std::uint8_t> buf(512, 42);
    for (int i = 0; i < 8; ++i)
      win.put(buf.data(), 512, peer, 0);  // 8 * 512 bytes per rank
    win.fence();  // epoch 2
    for (int i = 0; i < 3; ++i)
      win.get(buf.data(), 256, peer, 0);  // 3 * 256 bytes per rank
    const std::int32_t one = 1;
    std::int32_t old = 0;
    win.fetch_op(&one, &old, BasicKind::kInt, ReduceOp::kSum, peer, 0);
    std::vector<std::int32_t> addend(16, 1);
    win.accumulate(addend.data(), 16, Datatype::basic(BasicKind::kInt),
                   ReduceOp::kSum, peer, 64);
    win.fence();  // epoch 3
    world.barrier();
    obs::PvarRegistry& reg = *world.pvars();
    if (world.rank() == 0) {
      EXPECT_EQ(total(reg, "rma.put_bytes"), 2 * 8 * 512);
      EXPECT_EQ(total(reg, "rma.get_bytes"), 2 * 3 * 256);
      // fetch_op + accumulate per rank.
      EXPECT_EQ(total(reg, "rma.acc_ops"), 2 * 2);
      // Three fences per rank.
      EXPECT_EQ(total(reg, "rma.sync_epochs"), 2 * 3);
    }
    world.barrier();
    win.free();
  });
}

TEST(RmaObsTest, LockEpochsCountTowardSyncEpochs) {
  UniverseConfig c = rma_cfg(2, "lock_pvars");
  Universe::launch(c, [](Comm& world) {
    Win win = world.win_allocate(64);
    win.lock(LockType::kExclusive, 0);
    const std::uint8_t b = 9;
    win.put(&b, 1, 0, static_cast<std::size_t>(world.rank()));
    win.unlock(0);
    win.lock_all();
    win.unlock_all();
    world.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      // unlock + unlock_all per rank.
      EXPECT_EQ(total(reg, "rma.sync_epochs"), 2 * 2);
      EXPECT_EQ(total(reg, "rma.put_bytes"), 2);
    }
    world.barrier();
    win.free();
  });
}

TEST(RmaObsTest, ZeroCostOffJobStillWorks) {
  // Observability disabled entirely: no pvar registry, no recorder —
  // the RMA surface must behave identically.
  UniverseConfig c;
  c.world_size = 2;
  c.obs = obs::ObsConfig{};  // all sinks off
  Universe::launch(c, [](Comm& world) {
    EXPECT_EQ(world.pvars(), nullptr);
    Win win = world.win_allocate(256);
    auto* mem = static_cast<std::uint8_t*>(win.base());
    win.fence();
    const auto mine = pattern(256, static_cast<unsigned>(world.rank()));
    win.put(mine.data(), mine.size(), 1 - world.rank(), 0);
    win.fence();
    for (std::size_t i = 0; i < 256; ++i)
      ASSERT_EQ(mem[i],
                pattern(256, static_cast<unsigned>(1 - world.rank()))[i]);
    win.free();
  });
}

// --- Window lifecycle -------------------------------------------------------

TEST(RmaWindowTest, PerRankSizesAndAllocateZeroing) {
  UniverseConfig c = rma_cfg(3, "sizes");
  Universe::launch(c, [](Comm& world) {
    const int me = world.rank();
    // Heterogeneous slices, including a zero-byte (access-only) one.
    Win win = world.win_allocate(static_cast<std::size_t>(me) * 32);
    EXPECT_EQ(win.bytes(), static_cast<std::size_t>(me) * 32);
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(win.bytes(r), static_cast<std::size_t>(r) * 32);
    if (me > 0) {
      auto* mem = static_cast<std::uint8_t*>(win.base());
      for (std::size_t i = 0; i < win.bytes(); ++i)
        ASSERT_EQ(mem[i], 0) << "win_allocate memory not zeroed";
    } else {
      // A zero-byte slice is access-only; putting INTO it must fail.
      win.fence();
      const std::uint8_t b = 1;
      EXPECT_THROW(win.put(&b, 1, 0, 0), jhpc::InvalidArgumentError);
      win.fence();
    }
    if (me != 0) {
      win.fence();
      win.fence();
    }
    win.free();
    EXPECT_FALSE(win.valid());
    EXPECT_THROW(win.fence(), jhpc::InvalidArgumentError);
  });
}

TEST(RmaWindowTest, MultipleWindowsCoexistIndependently) {
  UniverseConfig c = rma_cfg(2, "multi");
  Universe::launch(c, [](Comm& world) {
    Win a = world.win_allocate(64);
    Win b = world.win_allocate(64);
    a.fence();
    b.fence();
    const std::uint8_t va = 11, vb = 22;
    a.put(&va, 1, 1 - world.rank(), 0);
    b.put(&vb, 1, 1 - world.rank(), 0);
    a.fence();
    b.fence();
    EXPECT_EQ(static_cast<std::uint8_t*>(a.base())[0], 11);
    EXPECT_EQ(static_cast<std::uint8_t*>(b.base())[0], 22);
    a.free();
    b.free();
  });
}

}  // namespace
}  // namespace jhpc::minimpi
