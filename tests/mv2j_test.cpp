// The MVAPICH2-J bindings: both API families (direct ByteBuffers and Java
// arrays), non-blocking array support, pooled staging, collectives,
// communicator management, and error semantics.
#include <gtest/gtest.h>

#include <vector>

#include "jhpc/mv2j/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mv2j {
namespace {

RunOptions fast_opts(int ranks) {
  RunOptions o;
  o.ranks = ranks;
  o.jvm.heap_bytes = 8 << 20;
  o.jvm.jni_crossing_ns = 0;  // keep unit tests fast
  return o;
}

TEST(Mv2jBufferTest, SendRecvRoundTrip) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(1024);
    if (world.getRank() == 0) {
      for (int i = 0; i < 256; ++i) buf.put_int(static_cast<size_t>(i) * 4, i * 3);
      world.send(buf, 256, INT, 1, 0);
    } else {
      Status st = world.recv(buf, 256, INT, 0, 0);
      EXPECT_EQ(st.getSource(), 0);
      EXPECT_EQ(st.getCount(INT), 256);
      for (int i = 0; i < 256; ++i)
        EXPECT_EQ(buf.get_int(static_cast<size_t>(i) * 4), i * 3);
    }
  });
}

TEST(Mv2jBufferTest, NonBlockingWindow) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    constexpr int kWin = 16;
    auto buf = env.newDirectBuffer(4096);
    std::vector<Request> reqs;
    if (world.getRank() == 0) {
      for (int i = 0; i < kWin; ++i)
        reqs.push_back(world.iSend(buf, 1024, BYTE, 1, 1));
      Request::waitAll(reqs);
    } else {
      std::vector<ByteBuffer> bufs;
      for (int i = 0; i < kWin; ++i) bufs.push_back(env.newDirectBuffer(1024));
      for (auto& b : bufs) reqs.push_back(world.iRecv(b, 1024, BYTE, 0, 1));
      Request::waitAll(reqs);
    }
  });
}

TEST(Mv2jBufferTest, HeapBufferRejected) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto heap = ByteBuffer::allocate(env.jvm(), 64);
    EXPECT_THROW(world.send(heap, 4, INT, 1 - world.getRank(), 0),
                 UnsupportedOperationError);
    world.barrier();
  });
}

TEST(Mv2jBufferTest, CountBeyondCapacityRejected) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(16);
    EXPECT_THROW(world.send(buf, 100, INT, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(Mv2jArrayTest, SendRecvRoundTrip) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jdouble>(100);
      for (std::size_t i = 0; i < 100; ++i)
        arr[i] = 0.25 * static_cast<double>(i);
      world.send(arr, 100, DOUBLE, 1, 5);
    } else {
      auto arr = env.newArray<minijvm::jdouble>(100);
      Status st = world.recv(arr, 100, DOUBLE, 0, 5);
      EXPECT_EQ(st.getCount(DOUBLE), 100);
      for (std::size_t i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(arr[i], 0.25 * static_cast<double>(i));
    }
  });
}

TEST(Mv2jArrayTest, NonBlockingArraysSupported) {
  // The capability Open MPI-J lacks: iSend/iRecv with Java arrays.
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jint>(512);
      for (std::size_t i = 0; i < 512; ++i) arr[i] = static_cast<int>(i);
      Request r = world.iSend(arr, 512, INT, 1, 0);
      r.waitFor();
    } else {
      auto arr = env.newArray<minijvm::jint>(512);
      Request r = world.iRecv(arr, 512, INT, 0, 0);
      Status st = r.waitFor();
      EXPECT_EQ(st.getCount(INT), 512);
      for (std::size_t i = 0; i < 512; ++i)
        ASSERT_EQ(arr[i], static_cast<int>(i));
    }
  });
}

TEST(Mv2jArrayTest, IRecvCopiesBackOnlyAfterWait) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      world.barrier();
      auto arr = env.newArray<minijvm::jint>(4);
      for (std::size_t i = 0; i < 4; ++i) arr[i] = 7;
      world.send(arr, 4, INT, 1, 0);
    } else {
      auto arr = env.newArray<minijvm::jint>(4);
      Request r = world.iRecv(arr, 4, INT, 0, 0);
      EXPECT_EQ(arr[0], 0) << "no data can be visible before completion";
      world.barrier();
      r.waitFor();
      EXPECT_EQ(arr[0], 7);
    }
  });
}

TEST(Mv2jArrayTest, GcBetweenPostAndCompletionIsSafe) {
  // The whole point of staging through direct buffers: a GC while a
  // non-blocking array operation is in flight must not corrupt anything.
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto arr = env.newArray<minijvm::jlong>(1000);
      for (std::size_t i = 0; i < 1000; ++i)
        arr[i] = static_cast<minijvm::jlong>(i * i);
      Request r = world.iSend(arr, 1000, LONG, 1, 0);
      ASSERT_TRUE(env.jvm().gc());  // the array moves; the staging doesn't
      world.barrier();
      r.waitFor();
    } else {
      auto arr = env.newArray<minijvm::jlong>(1000);
      Request r = world.iRecv(arr, 1000, LONG, 0, 0);
      ASSERT_TRUE(env.jvm().gc());
      world.barrier();
      r.waitFor();
      for (std::size_t i = 0; i < 1000; ++i)
        ASSERT_EQ(arr[i], static_cast<minijvm::jlong>(i * i));
    }
  });
}

TEST(Mv2jArrayTest, PoolIsReusedAcrossMessages) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto arr = env.newArray<minijvm::jint>(256);
    const int peer = 1 - world.getRank();
    for (int round = 0; round < 50; ++round) {
      if (world.getRank() == 0) {
        world.send(arr, 256, INT, peer, 0);
      } else {
        world.recv(arr, 256, INT, peer, 0);
      }
    }
    const auto st = env.pool().stats();
    EXPECT_EQ(st.requests, 50u);
    EXPECT_EQ(st.pool_misses, 1u)
        << "only the first message may allocate a direct buffer";
    EXPECT_EQ(st.pool_hits, 49u);
  });
}

TEST(Mv2jArrayTest, DatatypeMismatchRejected) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto arr = env.newArray<minijvm::jint>(4);
    EXPECT_THROW(world.send(arr, 4, DOUBLE, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    EXPECT_THROW(world.send(arr, 5, INT, 1 - world.getRank(), 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(Mv2jCollTest, BcastBothApis) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(64);
    if (world.getRank() == 1) buf.put_long(0, 0xABCDEF);
    world.bcast(buf, 8, BYTE, 1);
    EXPECT_EQ(buf.get_long(0), 0xABCDEF);

    auto arr = env.newArray<minijvm::jshort>(16);
    if (world.getRank() == 1)
      for (std::size_t i = 0; i < 16; ++i)
        arr[i] = static_cast<minijvm::jshort>(i + 100);
    world.bcast(arr, 16, SHORT, 1);
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_EQ(arr[i], static_cast<minijvm::jshort>(i + 100));
  });
}

TEST(Mv2jCollTest, AllReduceBothApis) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();

    auto sbuf = env.newDirectBuffer(8);
    auto rbuf = env.newDirectBuffer(8);
    sbuf.put_long(0, world.getRank() + 1);
    world.allReduce(sbuf, rbuf, 1, LONG, SUM);
    EXPECT_EQ(rbuf.get_long(0), n * (n + 1) / 2);

    auto sarr = env.newArray<minijvm::jfloat>(5);
    auto rarr = env.newArray<minijvm::jfloat>(5);
    for (std::size_t i = 0; i < 5; ++i)
      sarr[i] = 0.5f * static_cast<float>(world.getRank() + 1);
    world.allReduce(sarr, rarr, 5, FLOAT, SUM);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_FLOAT_EQ(rarr[i], 0.5f * static_cast<float>(n * (n + 1) / 2));

    // MAX as a second operator.
    auto marr = env.newArray<minijvm::jint>(1);
    auto xarr = env.newArray<minijvm::jint>(1);
    marr[0] = world.getRank() * 7;
    world.allReduce(marr, xarr, 1, INT, MAX);
    EXPECT_EQ(xarr[0], (n - 1) * 7);
  });
}

TEST(Mv2jCollTest, ReduceGatherScatterArrays) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();

    auto mine = env.newArray<minijvm::jint>(3);
    for (std::size_t i = 0; i < 3; ++i)
      mine[i] = world.getRank() * 10 + static_cast<int>(i);
    auto sum = env.newArray<minijvm::jint>(3);
    world.reduce(mine, sum, 3, INT, SUM, 0);
    if (world.getRank() == 0) {
      const int ranks10 = 10 * n * (n - 1) / 2;
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(sum[i], ranks10 + static_cast<int>(i) * n);
    }

    auto all = env.newArray<minijvm::jint>(static_cast<std::size_t>(3 * n));
    world.gather(mine, 3, INT, all, 2);
    if (world.getRank() == 2) {
      for (int r = 0; r < n; ++r)
        for (int j = 0; j < 3; ++j)
          EXPECT_EQ(all[static_cast<std::size_t>(3 * r + j)], r * 10 + j);
    }

    auto back = env.newArray<minijvm::jint>(3);
    world.scatter(all, 3, INT, back, 2);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(back[j], world.getRank() * 10 + static_cast<int>(j));
  });
}

TEST(Mv2jCollTest, AllGatherAllToAllArrays) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();

    auto mine = env.newArray<minijvm::jbyte>(2);
    mine[0] = static_cast<minijvm::jbyte>(world.getRank());
    mine[1] = static_cast<minijvm::jbyte>(world.getRank() + 50);
    auto all = env.newArray<minijvm::jbyte>(static_cast<std::size_t>(2 * n));
    world.allGather(mine, 2, BYTE, all);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r + 50);
    }

    auto sendm = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      sendm[static_cast<std::size_t>(r)] = world.getRank() * 100 + r;
    auto recvm = env.newArray<minijvm::jint>(static_cast<std::size_t>(n));
    world.allToAll(sendm, 1, INT, recvm);
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(recvm[static_cast<std::size_t>(r)],
                r * 100 + world.getRank());
  });
}

TEST(Mv2jCollTest, VectoredGathervScattervArrays) {
  run(fast_opts(3), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();

    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    auto mine = env.newArray<minijvm::jint>(static_cast<std::size_t>(me + 1));
    for (int i = 0; i <= me; ++i)
      mine[static_cast<std::size_t>(i)] = me * 10 + i;
    auto all = env.newArray<minijvm::jint>(static_cast<std::size_t>(total));
    world.gatherv(mine, me + 1, INT, all, counts, displs, 0);
    if (me == 0) {
      int idx = 0;
      for (int r = 0; r < n; ++r)
        for (int i = 0; i <= r; ++i)
          EXPECT_EQ(all[static_cast<std::size_t>(idx++)], r * 10 + i);
    }

    auto back = env.newArray<minijvm::jint>(static_cast<std::size_t>(me + 1));
    world.scatterv(all, counts, displs, INT, back, me + 1, 0);
    for (int i = 0; i <= me; ++i)
      EXPECT_EQ(back[static_cast<std::size_t>(i)], me * 10 + i);
  });
}

TEST(Mv2jCollTest, AllGathervBuffers) {
  run(fast_opts(3), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(2 * (r + 1));
      displs.push_back(total);
      total += counts.back();
    }
    auto mine = env.newDirectBuffer(static_cast<std::size_t>(counts[static_cast<std::size_t>(me)]));
    for (int i = 0; i < counts[static_cast<std::size_t>(me)]; ++i)
      mine.put(static_cast<std::size_t>(i), static_cast<minijvm::jbyte>(me));
    auto all = env.newDirectBuffer(static_cast<std::size_t>(total));
    world.allGatherv(mine, counts[static_cast<std::size_t>(me)], BYTE, all,
                     counts, displs);
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < counts[static_cast<std::size_t>(r)]; ++i)
        EXPECT_EQ(all.get(static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + i)),
                  static_cast<minijvm::jbyte>(r));
  });
}

TEST(Mv2jCollTest, ReduceScatterBlockAndScan) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    const int n = world.getSize();
    const int me = world.getRank();

    // reduceScatterBlock over arrays: everyone contributes 1s; each rank
    // gets its block summed across ranks.
    auto send = env.newArray<minijvm::jint>(static_cast<std::size_t>(2 * n));
    for (std::size_t i = 0; i < send.length(); ++i) send[i] = 1;
    auto block = env.newArray<minijvm::jint>(2);
    world.reduceScatterBlock(send, block, 2, INT, SUM);
    EXPECT_EQ(block[0], n);
    EXPECT_EQ(block[1], n);

    // scan over buffers: inclusive prefix sums of rank+1.
    auto sbuf = env.newDirectBuffer(8);
    auto rbuf = env.newDirectBuffer(8);
    sbuf.put_long(0, me + 1);
    world.scan(sbuf, rbuf, 1, LONG, SUM);
    EXPECT_EQ(rbuf.get_long(0), (me + 1) * (me + 2) / 2);

    // scan over arrays too.
    auto sa = env.newArray<minijvm::jdouble>(1);
    auto ra = env.newArray<minijvm::jdouble>(1);
    sa[0] = 0.5;
    world.scan(sa, ra, 1, DOUBLE, SUM);
    EXPECT_DOUBLE_EQ(ra[0], 0.5 * (me + 1));
  });
}

TEST(Mv2jProbeTest, ProbeAndIProbe) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto buf = env.newDirectBuffer(32);
      world.send(buf, 8, INT, 1, 77);
    } else {
      Status st = world.probe(0, 77);
      EXPECT_EQ(st.getSource(), 0);
      EXPECT_EQ(st.getTag(), 77);
      EXPECT_EQ(st.getCount(INT), 8);
      // The message is still there: receive it by the probed size.
      auto buf = env.newDirectBuffer(32);
      world.recv(buf, st.getCount(INT), INT, 0, 77);
      Status none;
      EXPECT_FALSE(world.iProbe(0, 77, &none));
    }
  });
}

TEST(Mv2jMgmtTest, DupAndSplit) {
  run(fast_opts(4), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    Comm dup = world.dup();
    EXPECT_EQ(dup.getSize(), 4);
    dup.barrier();

    Comm half = world.split(world.getRank() % 2, 0);
    ASSERT_TRUE(half.valid());
    EXPECT_EQ(half.getSize(), 2);
    auto v = env.newArray<minijvm::jint>(1);
    v[0] = world.getRank();
    auto s = env.newArray<minijvm::jint>(1);
    half.allReduce(v, s, 1, INT, SUM);
    EXPECT_EQ(s[0], world.getRank() % 2 == 0 ? 0 + 2 : 1 + 3);

    Comm undef = world.split(world.getRank() == 0 ? -1 : 0, 0);
    EXPECT_EQ(undef.valid(), world.getRank() != 0);
  });
}

TEST(Mv2jMgmtTest, StatusGetCountScalesByType) {
  run(fast_opts(2), [](Env& env) {
    Comm& world = env.COMM_WORLD();
    if (world.getRank() == 0) {
      auto buf = env.newDirectBuffer(64);
      world.send(buf, 16, INT, 1, 0);
    } else {
      auto buf = env.newDirectBuffer(64);
      Status st = world.recv(buf, 16, INT, 0, 0);
      EXPECT_EQ(st.getCount(INT), 16);
      EXPECT_EQ(st.getCount(BYTE), 64);
      EXPECT_EQ(st.getCount(DOUBLE), 8);
      EXPECT_EQ(st.bytes(), 64u);
    }
  });
}

}  // namespace
}  // namespace jhpc::mv2j
