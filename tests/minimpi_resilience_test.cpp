// ULFM-style rank-failure resilience suite (docs/FAULTS.md): scheduled
// and external fail-stops must surface as typed errors — never hangs —
// from every blocking entry point (p2p, collectives, nonblocking
// collectives, wait_all/wait_any); revoke/shrink/agree must recover a
// working communicator; teardown after a failed job must leave the
// Universe reusable; and a kill-free job must carry none of the
// machinery (no fault.rank.* pvars).
//
// Runs under `ctest -L faults` and is part of the TSan / ASan+UBSan
// sanitizer sweeps: the failure paths cross rank threads by design.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/ompij/ompij.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

/// A hermetic config with a scheduled kill list.
UniverseConfig kill_cfg(int ranks,
                        std::vector<netsim::FaultPlan::RankKill> kills) {
  UniverseConfig c;
  c.world_size = ranks;
  c.obs = obs::ObsConfig{};
  c.fabric.faults.kills = std::move(kills);
  return c;
}

/// Same, with the pvar registry alive (trace to a scratch file).
UniverseConfig obs_cfg(UniverseConfig c, const std::string& tag) {
  c.obs.trace_path = testing::TempDir() + "resilience_" + tag + ".json";
  return c;
}

bool failure_code(const jhpc::Error& e) {
  return e.code() == ErrorCode::kRankFailed ||
         e.code() == ErrorCode::kCommRevoked;
}

// --- Point-to-point ---------------------------------------------------------

TEST(ResilienceP2PTest, BlockingRecvFromKilledRankRaises) {
  UniverseConfig c = kill_cfg(2, {{1, 0}});
  std::atomic<int> observed{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    char b = 0;
    // SPMD: rank 1 dies at its first transport entry; rank 0 must get a
    // typed error instead of waiting forever.
    try {
      world.recv(&b, 1, 1 - world.rank(), 7);
      ADD_FAILURE() << "recv from a dead rank returned";
    } catch (const RankFailedError& e) {
      EXPECT_EQ(world.rank(), 0) << "only the survivor should see this";
      EXPECT_EQ(e.failed_ranks(), std::vector<int>{1});
      EXPECT_EQ(e.code(), ErrorCode::kRankFailed);
      observed.fetch_add(1);
      // Sends towards the corpse must fail too (eager would otherwise
      // buffer-and-forget).
      EXPECT_THROW(world.send(&b, 1, 1, 8), RankFailedError);
      EXPECT_EQ(world.failed_ranks(), std::vector<int>{1});
    }
  });
  EXPECT_EQ(observed.load(), 1);
}

TEST(ResilienceP2PTest, ExternalKillWakesParkedRecv) {
  UniverseConfig c = kill_cfg(3, {});
  Universe u(c);
  std::atomic<int> observed{0};
  u.run([&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 2) {
      // Let ranks 0 and 1 park in their receives, then shoot rank 1 from
      // another rank's thread (the documented test-hook contract).
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      u.kill_rank(1);
      return;
    }
    char b = 0;
    try {
      world.recv(&b, 1, 1 - world.rank(), 7);  // 0<-1 and 1<-0, both park
      ADD_FAILURE() << "parked recv survived the kill";
    } catch (const RankFailedError& e) {
      EXPECT_EQ(world.rank(), 0);
      EXPECT_EQ(e.failed_ranks(), std::vector<int>{1});
      observed.fetch_add(1);
    }
    // Rank 1 unwinds with the internal kill exception, which run()
    // swallows as part of the fault scenario; only rank 0 gets here.
  });
  EXPECT_EQ(observed.load(), 1);
}

// --- Blocking collectives: fail, revoke, shrink -----------------------------

TEST(ResilienceCollTest, CollectiveFailureThenShrinkGivesWorkingComm) {
  UniverseConfig c = kill_cfg(5, {{2, 0}});
  std::atomic<int> recovered{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 2) {
      world.barrier();  // dies here (first transport entry, kill at t=0)
      return;
    }
    double in = world.rank() + 1.0;
    double out = 0.0;
    bool caught = false;
    // The first observer raises RankFailedError and auto-revokes; the
    // rest see CommRevokedError on this or a later iteration.
    for (int i = 0; i < 64 && !caught; ++i) {
      try {
        world.allreduce(&in, &out, 1, BasicKind::kDouble, ReduceOp::kSum);
      } catch (const jhpc::Error& e) {
        ASSERT_TRUE(failure_code(e)) << e.what();
        caught = true;
      }
    }
    ASSERT_TRUE(caught) << "rank " << world.rank()
                        << " never observed the failure";
    Comm alive = world.shrink();
    EXPECT_EQ(alive.size(), 4);
    // Dense re-rank preserving world order: 0,1,3,4 -> 0,1,2,3.
    const int expect_rank = world.rank() < 2 ? world.rank() : world.rank() - 1;
    EXPECT_EQ(alive.rank(), expect_rank);
    // Bit-correct collective on the survivors: 1 + 2 + 4 + 5.
    out = 0.0;
    alive.allreduce(&in, &out, 1, BasicKind::kDouble, ReduceOp::kSum);
    EXPECT_EQ(out, 12.0);
    EXPECT_EQ(world.failed_ranks(), std::vector<int>{2});
    recovered.fetch_add(1);
  });
  EXPECT_EQ(recovered.load(), 4);
}

TEST(ResilienceCollTest, RevokeInterruptsWithoutFailuresAndShrinkRestores) {
  UniverseConfig c = kill_cfg(3, {});
  std::atomic<int> revoked_seen{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 0) world.revoke();
    // Everyone — including the revoker — gets CommRevokedError from the
    // next operation, even one already parked in the barrier.
    try {
      world.barrier();
      ADD_FAILURE() << "barrier completed on a revoked communicator";
    } catch (const CommRevokedError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCommRevoked);
      revoked_seen.fetch_add(1);
    }
    char b = 0;
    EXPECT_THROW(world.send(&b, 1, (world.rank() + 1) % 3, 1),
                 CommRevokedError);
    // No one died, so shrink reproduces the full membership on a fresh
    // (un-revoked) context.
    Comm alive = world.shrink();
    EXPECT_EQ(alive.size(), 3);
    EXPECT_EQ(alive.rank(), world.rank());
    alive.barrier();
  });
  EXPECT_EQ(revoked_seen.load(), 3);
}

// --- Nonblocking collectives: fail pending, poison dependents ---------------

TEST(ResilienceNbcTest, PendingScheduleFailsAndCommIsPoisoned) {
  UniverseConfig c = kill_cfg(4, {{3, 0}});
  std::atomic<int> surfaced{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 3) {
      world.barrier();  // dies here (first transport entry, kill at t=0)
      return;
    }
    float in = 1.0f, out = 0.0f;
    try {
      Request r =
          world.iallreduce(&in, &out, 1, BasicKind::kFloat, ReduceOp::kSum);
      r.wait();
      ADD_FAILURE() << "pending NBC completed over a dead rank";
    } catch (const jhpc::Error& e) {
      ASSERT_TRUE(failure_code(e)) << e.what();
      surfaced.fetch_add(1);
    }
    // The failure revoked the communicator: a second schedule must refuse
    // to run rather than wait on the corpse.
    try {
      Request r2 = world.ibarrier();
      r2.wait();
      ADD_FAILURE() << "NBC ran on a revoked communicator";
    } catch (const jhpc::Error& e) {
      EXPECT_TRUE(failure_code(e)) << e.what();
    }
    // Recovery works from NBC failures exactly as from blocking ones.
    Comm alive = world.shrink();
    Request r3 = alive.ibarrier();
    r3.wait();
  });
  EXPECT_EQ(surfaced.load(), 3);
}

// --- wait_all / wait_any with a mixed alive/dead request set ----------------

TEST(ResilienceWaitTest, WaitAllCompletesAliveThenSurfacesFailure) {
  UniverseConfig c = kill_cfg(3, {{2, 0}});
  std::atomic<bool> checked{false};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 1) {
      char payload = 42;
      world.send(&payload, 1, 0, 5);
      return;
    }
    if (world.rank() != 0) {
      // Rank 2: die at the first transport entry (SPMD recv).
      char b = 0;
      world.recv(&b, 1, 0, 99);
      return;
    }
    char from_alive = 0, from_dead = 0;
    std::vector<Request> reqs;
    reqs.push_back(world.irecv(&from_alive, 1, 1, 5));
    reqs.push_back(world.irecv(&from_dead, 1, 2, 6));
    try {
      Request::wait_all(reqs);
      ADD_FAILURE() << "wait_all completed over a dead sender";
    } catch (const RankFailedError& e) {
      EXPECT_EQ(e.failed_ranks(), std::vector<int>{2});
    }
    // The alive request was waited (in order) before the failure threw.
    EXPECT_EQ(from_alive, 42);
    checked.store(true);
  });
  EXPECT_TRUE(checked.load());
}

TEST(ResilienceWaitTest, WaitAnyEitherCompletesAliveOrThrows) {
  UniverseConfig c = kill_cfg(3, {{2, 0}});
  std::atomic<bool> checked{false};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 1) {
      char payload = 7;
      world.send(&payload, 1, 0, 5);
      return;
    }
    if (world.rank() != 0) {
      char b = 0;
      world.recv(&b, 1, 0, 99);
      return;
    }
    char from_dead = 0, from_alive = 0;
    std::vector<Request> reqs;
    reqs.push_back(world.irecv(&from_dead, 1, 2, 6));
    reqs.push_back(world.irecv(&from_alive, 1, 1, 5));
    // Both outcomes are legal: the failure may surface before or after
    // the alive completion, but the alive payload must never be lost and
    // the dead request must never complete.
    try {
      const std::size_t idx = Request::wait_any(reqs);
      EXPECT_EQ(idx, 1u);
      EXPECT_EQ(from_alive, 7);
      EXPECT_THROW(reqs[0].wait(), RankFailedError);
    } catch (const RankFailedError&) {
      reqs[1].wait();
      EXPECT_EQ(from_alive, 7);
    }
    checked.store(true);
  });
  EXPECT_TRUE(checked.load());
}

// --- Fault-tolerant agreement ----------------------------------------------

TEST(ResilienceAgreeTest, AgreeIsConsistentUnderMidAgreementFailure) {
  UniverseConfig c = kill_cfg(5, {{2, 0}});
  std::vector<int> results(5, -1);
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    // Rank 2 dies at its agree entry: the survivors must still converge,
    // and on the SAME value (the AND over surviving contributions).
    const int flag = world.rank() == 1 ? 0b101 : 0b111;
    results[static_cast<std::size_t>(world.rank())] = world.agree(flag);
    EXPECT_EQ(world.failed_ranks(), std::vector<int>{2});
  });
  EXPECT_EQ(results[0], 0b101);
  EXPECT_EQ(results[1], 0b101);
  EXPECT_EQ(results[2], -1) << "the dead rank must not have returned";
  EXPECT_EQ(results[3], 0b101);
  EXPECT_EQ(results[4], 0b101);
}

TEST(ResilienceAgreeTest, AgreeAndsAllFlagsWithoutFailures) {
  UniverseConfig c = kill_cfg(4, {});
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    EXPECT_EQ(world.agree(~0), ~0);
    EXPECT_EQ(world.agree(world.rank() == 3 ? 0 : 1), 0);
  });
}

// --- Error handlers ---------------------------------------------------------

TEST(ResilienceFatalTest, DefaultHandlerAbortsTheJob) {
  UniverseConfig c = kill_cfg(2, {{1, 0}});
  // No errhandler set: MPI.ERRORS_ARE_FATAL semantics — the failure
  // aborts every rank and run() rethrows it to the launcher.
  EXPECT_THROW(Universe::launch(c,
                                [](Comm& world) {
                                  char b = 0;
                                  world.recv(&b, 1, 1 - world.rank(), 7);
                                }),
               RankFailedError);
}

TEST(ResilienceFatalTest, RankKillDumpsFlightRecorderReport) {
  // A fatal rank failure must leave a black-box dump: the victim's ring
  // carries the kill event, the survivor's its stranded receive — the
  // post is recorded ahead of the dead-peer entry check, so it appears
  // even when the kill (instant 0) beats the survivor into recv.
  UniverseConfig c = kill_cfg(2, {{1, 0}});
  const std::string dump = testing::TempDir() + "flight_kill.txt";
  std::remove(dump.c_str());
  c.obs.flight_dump_path = dump;
  EXPECT_THROW(Universe::launch(c,
                                [](Comm& world) {
                                  char b = 0;
                                  world.recv(&b, 1, 1 - world.rank(), 7);
                                }),
               RankFailedError);
  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "flight dump not written to " << dump;
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("flight recorder"), std::string::npos);
  EXPECT_NE(report.find("involved ranks: 0 1"), std::string::npos);
  EXPECT_NE(report.find("rank 1:"), std::string::npos);  // the victim...
  EXPECT_NE(report.find("kill"), std::string::npos);
  EXPECT_NE(report.find("rank 0:"), std::string::npos);  // ...the survivor
  EXPECT_NE(report.find("post"), std::string::npos);
}

TEST(ResilienceFatalTest, ErrhandlerIsInheritedByDerivedComms) {
  UniverseConfig c = kill_cfg(4, {});
  Universe u(c);
  std::atomic<int> caught{0};
  u.run([&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    EXPECT_EQ(world.errhandler(), Errhandler::kErrorsReturn);
    Comm dup = world.dup();  // everyone alive: completes deterministically
    EXPECT_EQ(dup.errhandler(), Errhandler::kErrorsReturn);
    // Sync on WORLD (a different context id) so rank 3's death cannot
    // land inside this barrier: the dup's auto-revoke only poisons the
    // dup, and by the time anyone enters it rank 3 has already sent all
    // its world-barrier messages.
    world.barrier();
    if (world.rank() == 3) {
      u.kill_rank(3);
      dup.barrier();  // dies at entry; the kill unwinds this rank thread
      return;
    }
    try {
      dup.barrier();  // rank 3 dies here; the dup must RETURN the error
    } catch (const jhpc::Error& e) {
      EXPECT_TRUE(failure_code(e)) << e.what();
      caught.fetch_add(1);
    }
  });
  EXPECT_EQ(caught.load(), 3);
}

// --- Teardown / reuse after a failed job ------------------------------------

TEST(ResilienceTeardownTest, UniverseIsReusableAfterAFailedJob) {
  UniverseConfig c = kill_cfg(3, {});
  Universe u(c);
  // Job 1 ends with rank 1 shot mid-flight: parked receives, buffered
  // eager payloads and failure state are all left behind on purpose.
  u.run([&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    if (world.rank() == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      u.kill_rank(1);
      return;
    }
    char b = 0;
    try {
      world.recv(&b, 1, 1 - world.rank(), 7);
    } catch (const RankFailedError&) {
      EXPECT_EQ(world.rank(), 0);
    }
  });
  // Job 2 on the SAME Universe: everyone is alive again, no stale state
  // may match, and exact values must flow.
  u.run([](Comm& world) {
    EXPECT_TRUE(world.failed_ranks().empty());
    EXPECT_EQ(world.errhandler(), Errhandler::kErrorsAreFatal)
        << "errhandlers must reset between jobs";
    int token = world.rank() * 10;
    if (world.rank() == 0) {
      int got = 0;
      world.recv(&got, sizeof(got), 1, 3);
      EXPECT_EQ(got, 10);
    } else if (world.rank() == 1) {
      world.send(&token, sizeof(token), 0, 3);
    }
    int sum = 0;
    world.allreduce(&token, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
    EXPECT_EQ(sum, 30);
  });
}

// --- Zero cost when off -----------------------------------------------------

TEST(ResilienceZeroCostTest, KillFreeJobCarriesNoRankPvars) {
  UniverseConfig c = obs_cfg(kill_cfg(2, {}), "zerocost");
  Universe::launch(c, [](Comm& world) {
    char b = static_cast<char>(world.rank());
    if (world.rank() == 0) {
      world.send(&b, 1, 1, 1);
    } else {
      world.recv(&b, 1, 0, 1);
    }
    world.barrier();
    if (world.rank() == 0) {
      for (const auto& r : world.pvars()->snapshot()) {
        EXPECT_EQ(r.name.rfind("fault.rank.", 0), std::string::npos)
            << r.name << " registered in a kill-free job";
      }
    }
  });
}

TEST(ResilienceZeroCostTest, KilledJobAccountsItsRecovery) {
  UniverseConfig c = obs_cfg(kill_cfg(3, {{1, 0}}), "accounting");
  Universe::launch(c, [](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    double x = 1.0, y = 0.0;
    bool caught = false;
    for (int i = 0; i < 64 && !caught; ++i) {
      try {
        world.allreduce(&x, &y, 1, BasicKind::kDouble, ReduceOp::kSum);
      } catch (const jhpc::Error&) {
        caught = true;
      }
    }
    ASSERT_TRUE(caught);
    Comm alive = world.shrink();
    // Survivors drain through the shrunk comm so rank 0's pvar read
    // happens after every other survivor finished its transport calls.
    alive.barrier();
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      EXPECT_EQ(reg.total(reg.find("fault.rank.kills")), 1);
      EXPECT_GE(reg.total(reg.find("fault.rank.detected")), 1);
      EXPECT_GE(reg.total(reg.find("fault.rank.revokes")), 1);
      EXPECT_EQ(reg.total(reg.find("fault.rank.shrinks")), 2);
    }
  });
}

// --- Error taxonomy ---------------------------------------------------------

TEST(ResilienceTaxonomyTest, ErrorCodesAreStable) {
  // These values are API (docs/API.md): bindings and tools match on them.
  EXPECT_EQ(static_cast<int>(ErrorCode::kUnknown), 0);
  EXPECT_EQ(static_cast<int>(ErrorCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<int>(ErrorCode::kInternal), 2);
  EXPECT_EQ(static_cast<int>(ErrorCode::kUnsupported), 3);
  EXPECT_EQ(static_cast<int>(ErrorCode::kTransportTimeout), 4);
  EXPECT_EQ(static_cast<int>(ErrorCode::kTruncated), 5);
  EXPECT_EQ(static_cast<int>(ErrorCode::kRankFailed), 6);
  EXPECT_EQ(static_cast<int>(ErrorCode::kCommRevoked), 7);
  EXPECT_EQ(static_cast<int>(ErrorCode::kAborted), 8);

  EXPECT_EQ(jhpc::InvalidArgumentError("x").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(jhpc::InternalError("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(jhpc::UnsupportedOperationError("x").code(),
            ErrorCode::kUnsupported);
  EXPECT_EQ(TransportTimeoutError("x").code(), ErrorCode::kTransportTimeout);
  EXPECT_EQ(TruncationError("x").code(), ErrorCode::kTruncated);
  EXPECT_EQ(RankFailedError("x", {3}).code(), ErrorCode::kRankFailed);
  EXPECT_EQ(CommRevokedError("x").code(), ErrorCode::kCommRevoked);
}

// --- One-sided communication under rank failure -----------------------------

TEST(ResilienceRmaTest, TargetKillMidEpochSurfacesTypedErrorWithoutHang) {
  // Rank 2 dies mid-job while everyone loops put+fence epochs against a
  // ring neighbour. Every survivor must get a typed ULFM error out of an
  // epoch-closing call — never a hang (the suite TIMEOUT is the
  // no-hang assertion's teeth).
  UniverseConfig c = kill_cfg(3, {{2, 50'000}});
  std::atomic<int> typed{0};
  Universe::launch(c, [&](Comm& world) {
    world.set_errhandler(Errhandler::kErrorsReturn);
    try {
      // win_allocate is itself collective: when sanitizer-inflated
      // virtual clocks let the kill fire this early, the typed error
      // must surface here just as it would from a fence.
      Win win = world.win_allocate(256);
      win.fence();
      std::uint8_t payload[32] = {7};
      for (;;) {
        // The kill fires once the victim's virtual clock crosses the
        // scheduled instant; survivors' next epoch close must throw.
        win.put(payload, sizeof payload, (world.rank() + 1) % 3, 0);
        win.fence();
      }
    } catch (const RankFailedError& e) {
      // Concrete ULFM types only: the victim's own kill is a distinct
      // (same-code) exception type that must unwind to the harness.
      EXPECT_TRUE(world.rank() == 0 || world.rank() == 1)
          << "only survivors should observe the failure: " << e.what();
      typed.fetch_add(1);
    } catch (const CommRevokedError&) {
      EXPECT_TRUE(world.rank() == 0 || world.rank() == 1)
          << "only survivors should observe the failure";
      typed.fetch_add(1);
    }
  });
  EXPECT_EQ(typed.load(), 2) << "both survivors must see a typed error";
}

TEST(ResilienceRmaTest, TargetKillMidEpochDumpsRmaFlightEvents) {
  // Fatal-by-default semantics, with the black box on: the dump must
  // carry the survivor's one-sided activity (rma_put spans and the
  // epoch-close rma_sync marker), not just the stranded two-sided posts.
  // The kill instant must leave room for at least one full put+fence
  // epoch even when sanitizers inflate the CPU-time-driven virtual
  // clock (under TSan the initial fence alone crosses 100us).
  UniverseConfig c = kill_cfg(2, {{1, 2'000'000}});
  const std::string dump = testing::TempDir() + "flight_rma_kill.txt";
  std::remove(dump.c_str());
  c.obs.flight_dump_path = dump;
  EXPECT_THROW(Universe::launch(c,
                                [](Comm& world) {
                                  Win win = world.win_allocate(128);
                                  win.fence();
                                  std::uint8_t payload[32] = {42};
                                  for (;;) {
                                    win.put(payload, sizeof payload,
                                            (world.rank() + 1) % 2, 0);
                                    win.fence();
                                  }
                                }),
               RankFailedError);
  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "flight dump not written to " << dump;
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("flight recorder"), std::string::npos);
  EXPECT_NE(report.find("involved ranks: 0 1"), std::string::npos);
  EXPECT_NE(report.find("rma_put"), std::string::npos)
      << "one-sided puts missing from the black box:\n"
      << report;
  EXPECT_NE(report.find("rma_sync"), std::string::npos)
      << "epoch-close markers missing from the black box:\n"
      << report;
}

}  // namespace
}  // namespace jhpc::minimpi

// --- ULFM through the Java-style bindings -----------------------------------

namespace jhpc {
namespace {

TEST(ResilienceBindingsTest, Mv2jSurvivesAKillByShrinking) {
  mv2j::RunOptions opts;
  opts.ranks = 4;
  opts.obs = obs::ObsConfig{};
  opts.fabric.faults.kills = {{2, 0}};
  std::atomic<int> recovered{0};
  mv2j::run(opts, [&](mv2j::Env& env) {
    auto world = env.COMM_WORLD();
    world.setErrhandler(mv2j::ERRORS_RETURN);
    EXPECT_EQ(world.getErrhandler(), mv2j::ERRORS_RETURN);
    if (world.getRank() == 2) {
      world.barrier();  // dies here (first transport entry, kill at t=0)
      return;
    }
    auto in = env.newArray<minijvm::jint>(1);
    auto out = env.newArray<minijvm::jint>(1);
    in[0] = world.getRank() + 1;
    bool caught = false;
    for (int i = 0; i < 64 && !caught; ++i) {
      try {
        world.allReduce(in, out, 1, mv2j::INT, mv2j::SUM);
      } catch (const jhpc::Error& e) {
        ASSERT_TRUE(e.code() == ErrorCode::kRankFailed ||
                    e.code() == ErrorCode::kCommRevoked)
            << e.what();
        caught = true;
      }
    }
    ASSERT_TRUE(caught);
    mv2j::Comm alive = world.shrink();
    EXPECT_EQ(alive.getSize(), 3);
    EXPECT_EQ(alive.agree(1), 1);
    alive.allReduce(in, out, 1, mv2j::INT, mv2j::SUM);
    EXPECT_EQ(out[0], 1 + 2 + 4);  // world ranks 0, 1, 3
    EXPECT_EQ(world.getFailedRanks(), std::vector<int>{2});
    recovered.fetch_add(1);
  });
  EXPECT_EQ(recovered.load(), 3);
}

TEST(ResilienceBindingsTest, OmpijExposesTheUlfmSurface) {
  ompij::RunOptions opts;
  opts.ranks = 3;
  opts.obs = obs::ObsConfig{};
  ompij::run(opts, [&](ompij::Env& env) {
    auto world = env.COMM_WORLD();
    world.setErrhandler(ompij::ERRORS_RETURN);
    EXPECT_EQ(world.getErrhandler(), ompij::ERRORS_RETURN);
    EXPECT_TRUE(world.getFailedRanks().empty());
    EXPECT_EQ(world.agree(0b11), 0b11);
    if (world.getRank() == 0) world.revoke();
    try {
      world.barrier();
      ADD_FAILURE() << "barrier completed on a revoked communicator";
    } catch (const jhpc::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCommRevoked);
    }
    ompij::Comm alive = world.shrink();
    EXPECT_EQ(alive.getSize(), 3);
    alive.barrier();
  });
}

}  // namespace
}  // namespace jhpc
