// Differential collective-correctness suite: four engines, one oracle.
//
// Every sampled case (comm size, payload size, dtype, op, root) runs
// through the basic suite, the mv2 suite, the nonblocking schedule
// engine, AND the topology-aware hier suite, and each rank's output must
// be bit-identical to a single-threaded scalar oracle — including
// non-power-of-two comm sizes, zero-size payloads, single-rank comms,
// multi-node topologies (single-node, one-rank-per-node, and everything
// between), and (for a sampled subset) under seeded fault injection.
// Reduction inputs are drawn so every (kind, op) combination is exact
// and order-independent (small integers for float sums, bounded
// magnitudes for integer products), so an algorithm is never excused by
// "floating point reassociates" — hier's node-local fold order must
// yield the same bits as the oracle's rank-order fold.
//
// The file also carries the user-tag reservation regression (tags >=
// 2^28 rejected; kMaxUserTag still fine) and the mixed p2p + collective
// wait_all contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

enum class Engine { kBasic, kMv2, kNbc, kHier };

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kBasic:
      return "basic";
    case Engine::kMv2:
      return "mv2";
    case Engine::kNbc:
      return "nbc";
    case Engine::kHier:
      return "hier";
  }
  return "?";
}

constexpr Engine kEngines[] = {Engine::kBasic, Engine::kMv2, Engine::kNbc,
                               Engine::kHier};

CollectiveSuite suite_of(Engine e) {
  switch (e) {
    case Engine::kBasic:
      return CollectiveSuite::kOmpiBasic;
    case Engine::kHier:
      return CollectiveSuite::kHier;
    default:
      return CollectiveSuite::kMv2;  // nbc schedules run on the mv2 suite
  }
}

enum class CollOp {
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAllgather,
  kAlltoall,
};

constexpr CollOp kByteOps[] = {CollOp::kBcast, CollOp::kGather,
                               CollOp::kScatter, CollOp::kAllgather,
                               CollOp::kAlltoall};

/// Exact, order-independent (kind, op) combinations for the reductions.
struct ReduceCase {
  BasicKind kind;
  ReduceOp op;
};
constexpr ReduceCase kReduceCases[] = {
    {BasicKind::kInt, ReduceOp::kSum},   {BasicKind::kInt, ReduceOp::kMax},
    {BasicKind::kInt, ReduceOp::kMin},   {BasicKind::kInt, ReduceOp::kBand},
    {BasicKind::kInt, ReduceOp::kBor},   {BasicKind::kInt, ReduceOp::kBxor},
    {BasicKind::kLong, ReduceOp::kSum},  {BasicKind::kByte, ReduceOp::kBor},
    {BasicKind::kDouble, ReduceOp::kSum}, {BasicKind::kFloat, ReduceOp::kMax},
};

UniverseConfig diff_cfg(int ranks, CollectiveSuite suite) {
  UniverseConfig c;
  c.world_size = ranks;
  c.suite = suite;
  c.obs = obs::ObsConfig{};  // hermetic: ignore JHPC_PVARS/JHPC_TRACE
  return c;
}

/// Per-rank input block: seeded, rank-keyed, byte-exact.
std::vector<std::uint8_t> byte_input(std::uint32_t case_seed, int rank,
                                     std::size_t n) {
  std::mt19937 rng(case_seed * 7919u + static_cast<std::uint32_t>(rank));
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

/// Typed reduction input, constrained so every listed (kind, op) is
/// exact: integers stay small enough that sums cannot overflow and
/// float/double elements are small whole numbers (exactly representable,
/// associativity-safe).
std::vector<std::uint8_t> typed_input(std::uint32_t case_seed, int rank,
                                      std::size_t count, BasicKind kind) {
  std::mt19937 rng(case_seed * 104729u + static_cast<std::uint32_t>(rank));
  std::vector<std::uint8_t> v(count * basic_size(kind));
  for (std::size_t i = 0; i < count; ++i) {
    const auto r = static_cast<std::int64_t>(rng() % 2001) - 1000;
    switch (kind) {
      case BasicKind::kInt: {
        const auto x = static_cast<std::int32_t>(r);
        std::memcpy(v.data() + i * 4, &x, 4);
        break;
      }
      case BasicKind::kLong: {
        const std::int64_t x = r * 1000003;
        std::memcpy(v.data() + i * 8, &x, 8);
        break;
      }
      case BasicKind::kByte: {
        const auto x = static_cast<std::uint8_t>(rng());
        v[i] = x;
        break;
      }
      case BasicKind::kDouble: {
        const auto x = static_cast<double>(r % 64);
        std::memcpy(v.data() + i * 8, &x, 8);
        break;
      }
      case BasicKind::kFloat: {
        const auto x = static_cast<float>(r % 64);
        std::memcpy(v.data() + i * 4, &x, 4);
        break;
      }
      default:
        ADD_FAILURE() << "unsupported kind in generator";
    }
  }
  return v;
}

/// Scalar oracle for the reductions: fold the ranks in order 0..n-1.
/// Every sampled (kind, op) is exact, so any evaluation order an engine
/// picks must yield these bits.
std::vector<std::uint8_t> oracle_reduce(
    const std::vector<std::vector<std::uint8_t>>& inputs, std::size_t count,
    BasicKind kind, ReduceOp op) {
  std::vector<std::uint8_t> acc = inputs[0];
  for (std::size_t r = 1; r < inputs.size(); ++r) {
    apply_reduce(op, kind, acc.data(), inputs[r].data(), count);
  }
  return acc;
}

struct CaseResult {
  /// Output buffer of every rank, in rank order.
  std::vector<std::vector<std::uint8_t>> out;
};

/// Run one collective once on one engine and collect each rank's output.
CaseResult run_case(Engine eng, CollOp what, int ranks, std::size_t size,
                    BasicKind kind, ReduceOp op, int root,
                    std::uint32_t case_seed, const UniverseConfig* base) {
  UniverseConfig c = base != nullptr ? *base : diff_cfg(ranks, suite_of(eng));
  c.world_size = ranks;
  c.suite = suite_of(eng);

  const auto n = static_cast<std::size_t>(ranks);
  const bool typed = what == CollOp::kReduce || what == CollOp::kAllreduce;
  const std::size_t esz = typed ? basic_size(kind) : 1;
  const std::size_t block = size * esz;

  CaseResult res;
  res.out.assign(n, {});
  Universe::launch(c, [&](Comm& world) {
    const int r = world.rank();
    // Inputs are regenerated per rank inside the job (no sharing).
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    switch (what) {
      case CollOp::kBcast: {
        out = r == root ? byte_input(case_seed, root, size)
                        : std::vector<std::uint8_t>(size, 0xee);
        if (eng == Engine::kNbc) {
          world.ibcast(out.data(), out.size(), root).wait();
        } else {
          world.bcast(out.data(), out.size(), root);
        }
        break;
      }
      case CollOp::kReduce:
      case CollOp::kAllreduce: {
        in = typed_input(case_seed, r, size, kind);
        out.assign(block, 0xee);
        if (what == CollOp::kReduce) {
          if (eng == Engine::kNbc) {
            world.ireduce(in.data(), out.data(), size, kind, op, root)
                .wait();
          } else {
            world.reduce(in.data(), out.data(), size, kind, op, root);
          }
          // Only the root's buffer is defined after a reduce.
          if (r != root) out.assign(block, 0xee);
        } else {
          if (eng == Engine::kNbc) {
            world.iallreduce(in.data(), out.data(), size, kind, op).wait();
          } else {
            world.allreduce(in.data(), out.data(), size, kind, op);
          }
        }
        break;
      }
      case CollOp::kGather: {
        in = byte_input(case_seed, r, size);
        out.assign(r == root ? size * n : 0, 0xee);
        if (eng == Engine::kNbc) {
          world.igather(in.data(), size, out.data(), root).wait();
        } else {
          world.gather(in.data(), size, out.data(), root);
        }
        break;
      }
      case CollOp::kScatter: {
        in = r == root ? byte_input(case_seed, root, size * n)
                       : std::vector<std::uint8_t>{};
        out.assign(size, 0xee);
        if (eng == Engine::kNbc) {
          world.iscatter(in.data(), size, out.data(), root).wait();
        } else {
          world.scatter(in.data(), size, out.data(), root);
        }
        break;
      }
      case CollOp::kAllgather: {
        in = byte_input(case_seed, r, size);
        out.assign(size * n, 0xee);
        if (eng == Engine::kNbc) {
          world.iallgather(in.data(), size, out.data()).wait();
        } else {
          world.allgather(in.data(), size, out.data());
        }
        break;
      }
      case CollOp::kAlltoall: {
        in = byte_input(case_seed, r, size * n);
        out.assign(size * n, 0xee);
        if (eng == Engine::kNbc) {
          world.ialltoall(in.data(), size, out.data()).wait();
        } else {
          world.alltoall(in.data(), size, out.data());
        }
        break;
      }
    }
    res.out[static_cast<std::size_t>(r)] = out;
  });
  return res;
}

/// Oracle for every operation, built from the same generators.
CaseResult oracle_case(CollOp what, int ranks, std::size_t size,
                       BasicKind kind, ReduceOp op, int root,
                       std::uint32_t case_seed) {
  const auto n = static_cast<std::size_t>(ranks);
  const bool typed = what == CollOp::kReduce || what == CollOp::kAllreduce;
  const std::size_t esz = typed ? basic_size(kind) : 1;
  const std::size_t block = size * esz;

  CaseResult res;
  res.out.assign(n, {});
  switch (what) {
    case CollOp::kBcast: {
      const auto v = byte_input(case_seed, root, size);
      for (auto& o : res.out) o = v;
      break;
    }
    case CollOp::kReduce:
    case CollOp::kAllreduce: {
      std::vector<std::vector<std::uint8_t>> ins(n);
      for (std::size_t r = 0; r < n; ++r)
        ins[r] = typed_input(case_seed, static_cast<int>(r), size, kind);
      const auto red = oracle_reduce(ins, size, kind, op);
      for (std::size_t r = 0; r < n; ++r) {
        res.out[r] = what == CollOp::kAllreduce || static_cast<int>(r) == root
                         ? red
                         : std::vector<std::uint8_t>(block, 0xee);
      }
      break;
    }
    case CollOp::kGather: {
      std::vector<std::uint8_t> all;
      for (std::size_t r = 0; r < n; ++r) {
        const auto v = byte_input(case_seed, static_cast<int>(r), size);
        all.insert(all.end(), v.begin(), v.end());
      }
      for (std::size_t r = 0; r < n; ++r)
        res.out[r] = static_cast<int>(r) == root ? all
                                                 : std::vector<std::uint8_t>{};
      break;
    }
    case CollOp::kScatter: {
      const auto all = byte_input(case_seed, root, size * n);
      for (std::size_t r = 0; r < n; ++r)
        res.out[r].assign(all.begin() + static_cast<std::ptrdiff_t>(r * size),
                          all.begin() +
                              static_cast<std::ptrdiff_t>((r + 1) * size));
      break;
    }
    case CollOp::kAllgather: {
      std::vector<std::uint8_t> all;
      for (std::size_t r = 0; r < n; ++r) {
        const auto v = byte_input(case_seed, static_cast<int>(r), size);
        all.insert(all.end(), v.begin(), v.end());
      }
      for (auto& o : res.out) o = all;
      break;
    }
    case CollOp::kAlltoall: {
      std::vector<std::vector<std::uint8_t>> ins(n);
      for (std::size_t r = 0; r < n; ++r)
        ins[r] = byte_input(case_seed, static_cast<int>(r), size * n);
      for (std::size_t r = 0; r < n; ++r) {
        res.out[r].resize(size * n);
        for (std::size_t s = 0; s < n; ++s) {
          std::memcpy(res.out[r].data() + s * size,
                      ins[s].data() + r * size, size);
        }
      }
      break;
    }
  }
  return res;
}

std::string case_label(CollOp what, Engine eng, int ranks, std::size_t size,
                       int root) {
  return std::string("op=") + std::to_string(static_cast<int>(what)) +
         " engine=" + engine_name(eng) + " ranks=" + std::to_string(ranks) +
         " size=" + std::to_string(size) + " root=" + std::to_string(root);
}

void expect_case_matches_oracle(CollOp what, int ranks, std::size_t size,
                                BasicKind kind, ReduceOp op, int root,
                                std::uint32_t case_seed,
                                const UniverseConfig* base = nullptr) {
  const CaseResult want =
      oracle_case(what, ranks, size, kind, op, root, case_seed);
  for (const Engine eng : kEngines) {
    const CaseResult got =
        run_case(eng, what, ranks, size, kind, op, root, case_seed, base);
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(got.out[static_cast<std::size_t>(r)],
                want.out[static_cast<std::size_t>(r)])
          << case_label(what, eng, ranks, size, root) << " rank=" << r;
    }
  }
}

// --- Derived-datatype differential cases -----------------------------------
//
// The typed collective surface packs through the shared slab-scratch
// shim, so all four engines must stay bit-identical on strided payloads
// too — including the bytes the datatype does NOT own (gaps keep their
// poison). The oracle is the byte/scalar oracle above applied to the
// dense equivalent, unpacked into a poisoned buffer.

enum class DtShape { kVector, kIndexed, kStruct };

const char* shape_name(DtShape s) {
  switch (s) {
    case DtShape::kVector:
      return "vector";
    case DtShape::kIndexed:
      return "indexed";
    case DtShape::kStruct:
      return "struct";
  }
  return "?";
}

/// One representative noncontiguous type per constructor family, all
/// with int leaves so the reductions stay exact. Each has gaps (its
/// size is strictly less than its extent).
Datatype shape_type(DtShape s) {
  switch (s) {
    case DtShape::kVector:
      // 4 ints at stride 3 ints: size 16, extent 40.
      return Datatype::vector(4, 1, 3, Datatype::int_type());
    case DtShape::kIndexed: {
      const std::vector<int> lens{2, 1, 1};
      const std::vector<int> displs{0, 3, 5};
      return Datatype::indexed(lens, displs, Datatype::int_type());
    }
    case DtShape::kStruct: {
      const std::vector<int> lens{1, 2};
      const std::vector<std::ptrdiff_t> displs{0, 8};
      const std::vector<Datatype> fields{Datatype::int_type(),
                                         Datatype::int_type()};
      return Datatype::struct_type(lens, displs, fields);
    }
  }
  throw std::logic_error("bad shape");
}

/// A poisoned strided buffer with `elems` elements of dense payload
/// scattered into place; gap bytes keep the 0xee poison.
std::vector<std::uint8_t> raw_from_dense(
    const Datatype& dt, std::size_t elems,
    const std::vector<std::uint8_t>& dense) {
  std::vector<std::uint8_t> raw(dt.extent() * elems, 0xee);
  if (elems > 0) dt.unpack(dense.data(), raw.data(), static_cast<int>(elems));
  return raw;
}

std::vector<std::uint8_t> poison_raw(const Datatype& dt, std::size_t elems) {
  return std::vector<std::uint8_t>(dt.extent() * elems, 0xee);
}

/// Run one typed collective on one engine and collect each rank's raw
/// (strided, poison-gapped) output buffer.
CaseResult run_typed_case(Engine eng, CollOp what, int ranks, int count,
                          DtShape shape, ReduceOp op, int root,
                          std::uint32_t case_seed,
                          const UniverseConfig* base = nullptr) {
  UniverseConfig c = base != nullptr ? *base : diff_cfg(ranks, suite_of(eng));
  c.world_size = ranks;
  c.suite = suite_of(eng);

  const auto n = static_cast<std::size_t>(ranks);
  CaseResult res;
  res.out.assign(n, {});
  Universe::launch(c, [&](Comm& world) {
    const Datatype dt = shape_type(shape);
    const int r = world.rank();
    const bool red = what == CollOp::kReduce || what == CollOp::kAllreduce;
    const auto cnt = static_cast<std::size_t>(count);
    // The dense equivalent of `elems` typed elements, from the same
    // generators the byte oracle uses.
    auto dense_in = [&](int rank_, std::size_t elems) {
      return red ? typed_input(case_seed, rank_, dt.size() / 4 * elems,
                               BasicKind::kInt)
                 : byte_input(case_seed, rank_, dt.size() * elems);
    };
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    switch (what) {
      case CollOp::kBcast: {
        out = r == root ? raw_from_dense(dt, cnt, dense_in(root, cnt))
                        : poison_raw(dt, cnt);
        if (eng == Engine::kNbc) {
          world.ibcast(out.data(), count, dt, root).wait();
        } else {
          world.bcast(out.data(), count, dt, root);
        }
        break;
      }
      case CollOp::kReduce:
      case CollOp::kAllreduce: {
        in = raw_from_dense(dt, cnt, dense_in(r, cnt));
        out = poison_raw(dt, cnt);
        if (what == CollOp::kReduce) {
          if (eng == Engine::kNbc) {
            world.ireduce(in.data(), out.data(), count, dt, op, root).wait();
          } else {
            world.reduce(in.data(), out.data(), count, dt, op, root);
          }
          // Only the root's buffer is defined after a reduce.
          if (r != root) out = poison_raw(dt, cnt);
        } else {
          if (eng == Engine::kNbc) {
            world.iallreduce(in.data(), out.data(), count, dt, op).wait();
          } else {
            world.allreduce(in.data(), out.data(), count, dt, op);
          }
        }
        break;
      }
      case CollOp::kGather: {
        in = raw_from_dense(dt, cnt, dense_in(r, cnt));
        out = r == root ? poison_raw(dt, cnt * n) : std::vector<std::uint8_t>{};
        if (eng == Engine::kNbc) {
          world.igather(in.data(), count, dt, out.data(), root).wait();
        } else {
          world.gather(in.data(), count, dt, out.data(), root);
        }
        break;
      }
      case CollOp::kScatter: {
        in = r == root ? raw_from_dense(dt, cnt * n, dense_in(root, cnt * n))
                       : std::vector<std::uint8_t>{};
        out = poison_raw(dt, cnt);
        if (eng == Engine::kNbc) {
          world.iscatter(in.data(), count, dt, out.data(), root).wait();
        } else {
          world.scatter(in.data(), count, dt, out.data(), root);
        }
        break;
      }
      case CollOp::kAllgather: {
        in = raw_from_dense(dt, cnt, dense_in(r, cnt));
        out = poison_raw(dt, cnt * n);
        if (eng == Engine::kNbc) {
          world.iallgather(in.data(), count, dt, out.data()).wait();
        } else {
          world.allgather(in.data(), count, dt, out.data());
        }
        break;
      }
      case CollOp::kAlltoall: {
        in = raw_from_dense(dt, cnt * n, dense_in(r, cnt * n));
        out = poison_raw(dt, cnt * n);
        if (eng == Engine::kNbc) {
          world.ialltoall(in.data(), count, dt, out.data()).wait();
        } else {
          world.alltoall(in.data(), count, dt, out.data());
        }
        break;
      }
    }
    res.out[static_cast<std::size_t>(r)] = out;
  });
  return res;
}

/// Typed oracle: the dense oracle above, scattered into poisoned raw
/// buffers exactly as the typed surface is contracted to do.
CaseResult oracle_typed_case(CollOp what, int ranks, int count, DtShape shape,
                             ReduceOp op, int root, std::uint32_t case_seed) {
  const Datatype dt = shape_type(shape);
  const auto n = static_cast<std::size_t>(ranks);
  const auto cnt = static_cast<std::size_t>(count);
  const bool red = what == CollOp::kReduce || what == CollOp::kAllreduce;
  // Dense block size in the byte oracle's units: int elements for the
  // reductions, bytes for the data movers.
  const std::size_t size = red ? dt.size() / 4 * cnt : dt.size() * cnt;
  const CaseResult dense =
      oracle_case(what, ranks, size, BasicKind::kInt, op, root, case_seed);

  CaseResult res;
  res.out.assign(n, {});
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t elems = cnt;
    if (what == CollOp::kGather) {
      elems = static_cast<int>(r) == root ? cnt * n : 0;
    } else if (what == CollOp::kAllgather || what == CollOp::kAlltoall) {
      elems = cnt * n;
    }
    if (elems == 0 || dense.out[r].empty()) {
      res.out[r] = elems == 0 ? std::vector<std::uint8_t>{}
                              : poison_raw(dt, elems);
      continue;
    }
    res.out[r] = raw_from_dense(dt, elems, dense.out[r]);
  }
  return res;
}

void expect_typed_case_matches_oracle(CollOp what, int ranks, int count,
                                      DtShape shape, ReduceOp op, int root,
                                      std::uint32_t case_seed,
                                      const UniverseConfig* base = nullptr) {
  const CaseResult want =
      oracle_typed_case(what, ranks, count, shape, op, root, case_seed);
  for (const Engine eng : kEngines) {
    const CaseResult got = run_typed_case(eng, what, ranks, count, shape, op,
                                          root, case_seed, base);
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(got.out[static_cast<std::size_t>(r)],
                want.out[static_cast<std::size_t>(r)])
          << case_label(what, eng, ranks, static_cast<std::size_t>(count),
                        root)
          << " shape=" << shape_name(shape) << " rank=" << r;
    }
  }
}

// --- Seeded random sweep ---------------------------------------------------

TEST(CollDiffTest, RandomByteCollectivesMatchOracle) {
  std::mt19937 rng(20260807u);
  // Non-powers-of-two on purpose; 1 exercises the single-rank schedules.
  const int sizes[] = {1, 2, 3, 4, 5, 7, 8};
  const std::size_t blocks[] = {1, 3, 17, 257, 1024};
  for (int i = 0; i < 40; ++i) {
    const CollOp what = kByteOps[rng() % std::size(kByteOps)];
    const int ranks = sizes[rng() % std::size(sizes)];
    const std::size_t block = blocks[rng() % std::size(blocks)];
    const int root = static_cast<int>(rng() % static_cast<unsigned>(ranks));
    expect_case_matches_oracle(what, ranks, block, BasicKind::kByte,
                               ReduceOp::kSum, root, rng());
  }
}

TEST(CollDiffTest, RandomReductionsMatchOracleBitForBit) {
  std::mt19937 rng(777001u);
  const int sizes[] = {1, 2, 3, 5, 6, 8};
  const std::size_t counts[] = {1, 2, 33, 500};
  for (int i = 0; i < 30; ++i) {
    const CollOp what = (rng() & 1) != 0 ? CollOp::kReduce
                                         : CollOp::kAllreduce;
    const ReduceCase rc = kReduceCases[rng() % std::size(kReduceCases)];
    const int ranks = sizes[rng() % std::size(sizes)];
    const std::size_t count = counts[rng() % std::size(counts)];
    const int root = static_cast<int>(rng() % static_cast<unsigned>(ranks));
    expect_case_matches_oracle(what, ranks, count, rc.kind, rc.op, root,
                               rng());
  }
}

TEST(CollDiffTest, ZeroSizePayloadsCompleteOnEveryEngine) {
  for (const CollOp what :
       {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce, CollOp::kGather,
        CollOp::kScatter, CollOp::kAllgather, CollOp::kAlltoall}) {
    expect_case_matches_oracle(what, 3, 0, BasicKind::kInt, ReduceOp::kSum,
                               1, 42u);
  }
}

TEST(CollDiffTest, LargePayloadsCrossTheRendezvousThreshold) {
  // 64 KiB blocks with the default 16 KiB eager limit: every engine's
  // schedule must survive rendezvous sends parking unexpectedly.
  expect_case_matches_oracle(CollOp::kBcast, 5, 64 * 1024, BasicKind::kByte,
                             ReduceOp::kSum, 2, 99u);
  expect_case_matches_oracle(CollOp::kAllreduce, 4, 16 * 1024,
                             BasicKind::kInt, ReduceOp::kSum, 0, 98u);
  expect_case_matches_oracle(CollOp::kAlltoall, 3, 40 * 1024,
                             BasicKind::kByte, ReduceOp::kSum, 0, 97u);
}

TEST(CollDiffTest, TopologySweepAllEnginesMatchOracle) {
  // Every engine, with the hier suite as the protagonist, across the node
  // decompositions it specialises on: single node (ppn=0, pure intra),
  // one rank per node (pure inter: the hierarchy degenerates to the
  // leader team), and uneven multi-node splits (1..4 nodes, including a
  // last node with fewer ranks). Ranks include non-powers-of-two.
  std::mt19937 rng(60313u);
  const struct {
    int ranks;
    int ppn;  // FabricConfig::ranks_per_node; 0 = everyone on one node
  } topos[] = {
      {1, 0}, {2, 0}, {5, 0},          // single node
      {2, 1}, {5, 1},                  // one rank per node
      {4, 2}, {6, 2}, {7, 2}, {8, 2},  // 2..4 nodes, last node uneven
      {5, 3}, {8, 3},
  };
  const CollOp ops[] = {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
                        CollOp::kGather};
  for (const auto& t : topos) {
    UniverseConfig c;
    c.world_size = t.ranks;
    c.fabric.ranks_per_node = t.ppn;
    c.obs = obs::ObsConfig{};
    for (const CollOp what : ops) {
      const int root =
          static_cast<int>(rng() % static_cast<unsigned>(t.ranks));
      const bool typed =
          what == CollOp::kReduce || what == CollOp::kAllreduce;
      expect_case_matches_oracle(what, t.ranks, typed ? 65 : 129,
                                 BasicKind::kInt, ReduceOp::kSum, root,
                                 rng(), &c);
    }
  }
}

TEST(CollDiffTest, NonLeaderRootsAcrossTopologies) {
  // Rooted hier collectives special-case three root placements: root is
  // a node leader, root is a non-leader member, root shares or does not
  // share a node with other ranks. Pin each explicitly.
  UniverseConfig c;
  c.world_size = 6;
  c.fabric.ranks_per_node = 3;  // nodes {0,1,2} {3,4,5}; leaders 0 and 3
  c.obs = obs::ObsConfig{};
  for (const int root : {0, 1, 3, 5}) {
    expect_case_matches_oracle(CollOp::kBcast, 6, 257, BasicKind::kByte,
                               ReduceOp::kSum, root, 808u + root, &c);
    expect_case_matches_oracle(CollOp::kReduce, 6, 33, BasicKind::kLong,
                               ReduceOp::kSum, root, 909u + root, &c);
    expect_case_matches_oracle(CollOp::kGather, 6, 65, BasicKind::kByte,
                               ReduceOp::kSum, root, 1010u + root, &c);
  }
}

TEST(CollDiffTest, RendezvousPayloadsAcrossNodesOnEveryEngine) {
  // 64 KiB blocks over a 2-node topology with the default 16 KiB eager
  // limit: the hier inter-node leg and the single-copy intra leg must
  // both survive rendezvous parking.
  UniverseConfig c;
  c.world_size = 6;
  c.fabric.ranks_per_node = 3;
  c.obs = obs::ObsConfig{};
  expect_case_matches_oracle(CollOp::kBcast, 6, 64 * 1024, BasicKind::kByte,
                             ReduceOp::kSum, 4, 303u, &c);
  expect_case_matches_oracle(CollOp::kAllreduce, 6, 16 * 1024,
                             BasicKind::kInt, ReduceOp::kSum, 0, 304u, &c);
  expect_case_matches_oracle(CollOp::kGather, 6, 48 * 1024, BasicKind::kByte,
                             ReduceOp::kSum, 1, 305u, &c);
}

TEST(CollDiffTest, RandomCasesUnderFaultInjectionMatchOracle) {
  // The same differential contract with a seeded drop/jitter plan: the
  // reliable transport must make every engine's schedule exactly-once.
  std::mt19937 rng(5150u);
  for (int i = 0; i < 8; ++i) {
    const CollOp what = kByteOps[rng() % std::size(kByteOps)];
    const int ranks = 2 + static_cast<int>(rng() % 4u);  // 2..5
    const int root = static_cast<int>(rng() % static_cast<unsigned>(ranks));
    UniverseConfig c;
    c.world_size = ranks;
    c.fabric.ranks_per_node = 1;
    c.fabric.faults.seed = 1000u + static_cast<std::uint64_t>(i);
    c.fabric.faults.link_defaults.drop_prob = 0.04;
    c.fabric.faults.link_defaults.jitter_ns = 300;
    c.obs = obs::ObsConfig{};
    expect_case_matches_oracle(what, ranks, 513, BasicKind::kByte,
                               ReduceOp::kSum, root, rng(), &c);
  }
  // And one typed reduction under faults.
  UniverseConfig c;
  c.world_size = 4;
  c.fabric.ranks_per_node = 1;
  c.fabric.faults.seed = 31337u;
  c.fabric.faults.link_defaults.drop_prob = 0.05;
  c.fabric.faults.link_defaults.jitter_ns = 250;
  c.obs = obs::ObsConfig{};
  expect_case_matches_oracle(CollOp::kAllreduce, 4, 64, BasicKind::kInt,
                             ReduceOp::kSum, 0, 4242u, &c);
}

// --- Derived-datatype differential sweep -----------------------------------

TEST(CollDiffTest, DerivedDatatypeCollectivesMatchOracle) {
  // Every constructor family x every collective, non-power-of-two comm
  // sizes included, multi-element counts so the i*count*extent block
  // layout is exercised — across all four engines.
  std::mt19937 rng(314159u);
  const DtShape shapes[] = {DtShape::kVector, DtShape::kIndexed,
                            DtShape::kStruct};
  const int ranks_pool[] = {2, 3, 5};
  const int counts[] = {1, 2, 5};
  const CollOp ops[] = {CollOp::kBcast,     CollOp::kReduce,
                        CollOp::kAllreduce, CollOp::kGather,
                        CollOp::kScatter,   CollOp::kAllgather,
                        CollOp::kAlltoall};
  for (const DtShape shape : shapes) {
    for (const CollOp what : ops) {
      const int ranks = ranks_pool[rng() % std::size(ranks_pool)];
      const int count = counts[rng() % std::size(counts)];
      const int root = static_cast<int>(rng() % static_cast<unsigned>(ranks));
      const ReduceOp op = (rng() & 1) != 0 ? ReduceOp::kSum : ReduceOp::kMax;
      expect_typed_case_matches_oracle(what, ranks, count, shape, op, root,
                                       rng());
    }
  }
}

TEST(CollDiffTest, DerivedDatatypeZeroCountCompletesOnEveryEngine) {
  for (const CollOp what :
       {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce, CollOp::kGather,
        CollOp::kScatter, CollOp::kAllgather, CollOp::kAlltoall}) {
    expect_typed_case_matches_oracle(what, 3, 0, DtShape::kVector,
                                     ReduceOp::kSum, 1, 271u);
  }
}

TEST(CollDiffTest, DerivedDatatypeRendezvousSizedPayloads) {
  // 1500 vector elements = 24000 payload bytes per block, past the
  // 16 KiB eager limit: the typed pack shim must compose with the
  // rendezvous protocol on every engine.
  expect_typed_case_matches_oracle(CollOp::kBcast, 3, 1500, DtShape::kVector,
                                   ReduceOp::kSum, 2, 611u);
  expect_typed_case_matches_oracle(CollOp::kAllreduce, 4, 1500,
                                   DtShape::kVector, ReduceOp::kSum, 0, 612u);
  // And across a 2-node hier topology.
  UniverseConfig c;
  c.world_size = 6;
  c.fabric.ranks_per_node = 3;
  c.obs = obs::ObsConfig{};
  expect_typed_case_matches_oracle(CollOp::kBcast, 6, 1500, DtShape::kVector,
                                   ReduceOp::kSum, 4, 613u, &c);
}

TEST(CollDiffTest, DerivedDatatypeUnderFaultInjectionMatchesOracle) {
  // The typed surface with a seeded drop/jitter plan: the reliable
  // transport must keep the strided payloads exactly-once too.
  for (int i = 0; i < 3; ++i) {
    UniverseConfig c;
    c.world_size = 4;
    c.fabric.ranks_per_node = 1;
    c.fabric.faults.seed = 2000u + static_cast<std::uint64_t>(i);
    c.fabric.faults.link_defaults.drop_prob = 0.04;
    c.fabric.faults.link_defaults.jitter_ns = 300;
    c.obs = obs::ObsConfig{};
    const CollOp what = i == 0   ? CollOp::kAllreduce
                        : i == 1 ? CollOp::kAlltoall
                                 : CollOp::kBcast;
    expect_typed_case_matches_oracle(what, 4, 3, DtShape::kIndexed,
                                     ReduceOp::kSum, 1,
                                     7000u + static_cast<std::uint32_t>(i),
                                     &c);
  }
}

// --- Nonblocking-specific contracts ---------------------------------------

TEST(CollDiffTest, NbcOverlapsComputeAndTestPolls) {
  UniverseConfig c = diff_cfg(4, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    const int r = world.rank();
    std::vector<std::int64_t> in(256, r + 1);
    std::vector<std::int64_t> out(256, 0);
    Request req = world.iallreduce(in.data(), out.data(), in.size(),
                                   BasicKind::kLong, ReduceOp::kSum);
    // Genuine compute between post and wait; then drain via test().
    volatile std::int64_t sink = 0;
    for (int i = 0; i < 50000; ++i) sink = sink + i;
    while (!req.test()) {
    }
    const std::int64_t want = 1 + 2 + 3 + 4;
    for (const std::int64_t v : out) EXPECT_EQ(v, want);
    EXPECT_FALSE(req.valid()) << "test() success must null the request";
  });
}

TEST(CollDiffTest, ConcurrentNbcOpsOnOneCommCompleteOutOfOrder) {
  // Two collectives in flight at once, waited in the "wrong" order on
  // half the ranks: the progress engine must drive both.
  UniverseConfig c = diff_cfg(4, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    const int r = world.rank();
    std::int32_t a_in = r, a_out = -1;
    std::vector<std::uint8_t> b(512);
    if (r == 2) b = std::vector<std::uint8_t>(512, 0xab);
    Request a = world.iallreduce(&a_in, &a_out, 1, BasicKind::kInt,
                                 ReduceOp::kSum);
    Request bc = world.ibcast(b.data(), b.size(), 2);
    if (r % 2 == 0) {
      a.wait();
      bc.wait();
    } else {
      bc.wait();
      a.wait();
    }
    EXPECT_EQ(a_out, 0 + 1 + 2 + 3);
    EXPECT_EQ(b, std::vector<std::uint8_t>(512, 0xab));
  });
}

TEST(CollDiffTest, WaitAllOverMixedP2pAndCollectiveRequests) {
  UniverseConfig c = diff_cfg(3, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    const int r = world.rank();
    const int n = world.size();
    std::int32_t ring_in = -1;
    const std::int32_t ring_out = 100 + r;
    std::int64_t red_in = r + 1, red_out = 0;
    Request reqs[3];
    reqs[0] = world.irecv(&ring_in, sizeof(ring_in), (r + n - 1) % n, 5);
    reqs[1] = world.iallreduce(&red_in, &red_out, 1, BasicKind::kLong,
                               ReduceOp::kSum);
    reqs[2] = world.isend(&ring_out, sizeof(ring_out), (r + 1) % n, 5);
    Request::wait_all(reqs);
    EXPECT_EQ(ring_in, 100 + (r + n - 1) % n);
    EXPECT_EQ(red_out, 1 + 2 + 3);
    for (Request& q : reqs) EXPECT_FALSE(q.valid());
  });
}

TEST(CollDiffTest, IbarrierSynchronizes) {
  UniverseConfig c = diff_cfg(5, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    // An ibarrier between the two phases: no rank may observe phase-2
    // traffic before every rank entered the barrier. Completion +
    // correctness of the dissemination schedule is what we check here.
    for (int iter = 0; iter < 10; ++iter) {
      Request b = world.ibarrier();
      b.wait();
      EXPECT_FALSE(b.valid());
    }
  });
}

TEST(CollDiffTest, NbcOnDupAndSplitCommunicators) {
  // The per-context tag counters must keep schedules on different
  // communicators from cross-matching.
  UniverseConfig c = diff_cfg(4, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    Comm dup = world.dup();
    Comm half = world.split(world.rank() % 2, world.rank());
    std::int32_t in = world.rank() + 1, out_w = 0, out_h = 0;
    Request rw = dup.iallreduce(&in, &out_w, 1, BasicKind::kInt,
                                ReduceOp::kSum);
    Request rh = half.iallreduce(&in, &out_h, 1, BasicKind::kInt,
                                 ReduceOp::kSum);
    rh.wait();
    rw.wait();
    EXPECT_EQ(out_w, 1 + 2 + 3 + 4);
    // Ranks {0,2} -> colors 0 sums 1+3; ranks {1,3} -> color 1 sums 2+4.
    EXPECT_EQ(out_h, world.rank() % 2 == 0 ? 1 + 3 : 2 + 4);
  });
}

// --- User-tag reservation regression ---------------------------------------

TEST(TagReservationTest, MaxUserTagStillWorks) {
  UniverseConfig c = diff_cfg(2, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    char t = 'x';
    if (world.rank() == 0) {
      world.send(&t, 1, 1, kMaxUserTag);
    } else {
      Status st;
      world.recv(&t, 1, 0, kMaxUserTag, &st);
      EXPECT_EQ(st.tag, kMaxUserTag);
    }
  });
}

TEST(TagReservationTest, ReservedTagsThrowForUserTraffic) {
  UniverseConfig c = diff_cfg(2, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    char t = 'x';
    const int reserved = kMaxUserTag + 1;  // == kTagBase
    if (world.rank() == 0) {
      EXPECT_THROW(world.send(&t, 1, 1, reserved), Error);
      EXPECT_THROW(world.isend(&t, 1, 1, reserved), Error);
    } else {
      EXPECT_THROW(world.recv(&t, 1, 0, reserved), Error);
      EXPECT_THROW(world.irecv(&t, 1, 0, reserved), Error);
    }
    // Collectives still own the reserved space internally.
    world.barrier();
  });
}

TEST(TagReservationTest, NegativeTagStillRejected) {
  UniverseConfig c = diff_cfg(2, CollectiveSuite::kMv2);
  Universe::launch(c, [](Comm& world) {
    char t = 'x';
    if (world.rank() == 0) {
      EXPECT_THROW(world.send(&t, 1, 1, -3), Error);
    }
    world.barrier();
  });
}

}  // namespace
}  // namespace jhpc::minimpi
