// Cross-cutting coverage: GC statistics, virtual-clock lifecycle across
// jobs, error propagation through the bindings, request corner cases.
#include <gtest/gtest.h>

#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc {
namespace {

TEST(GcStatsTest, CountersAccumulate) {
  minijvm::Jvm jvm({.heap_bytes = 1 << 20, .jni_crossing_ns = 0});
  auto keep = jvm.new_array<minijvm::jint>(1000);
  const auto s0 = jvm.stats();
  EXPECT_EQ(s0.allocations, 1u);
  EXPECT_EQ(s0.allocated_bytes, 4000u);
  EXPECT_EQ(s0.live_bytes, 4000u);

  ASSERT_TRUE(jvm.gc());
  ASSERT_TRUE(jvm.gc());
  const auto s1 = jvm.stats();
  EXPECT_EQ(s1.collections, 2u);
  EXPECT_EQ(s1.objects_moved, 2u) << "one live object moved per GC";
  EXPECT_EQ(s1.bytes_copied, 8000u);
  EXPECT_EQ(s1.live_bytes, 4000u);

  {
    auto junk = jvm.new_array<minijvm::jbyte>(100);
    EXPECT_EQ(jvm.stats().live_bytes, 4100u);
  }
  EXPECT_EQ(jvm.stats().live_bytes, 4000u);
  EXPECT_EQ(jvm.stats().allocations, 2u);
}

TEST(VirtualClockTest, RestartsAtZeroPerRun) {
  minimpi::UniverseConfig cfg;
  cfg.world_size = 2;
  minimpi::Universe u(cfg);
  std::int64_t first_end = 0;
  u.run([&](minimpi::Comm& world) {
    for (int i = 0; i < 10; ++i) world.barrier();
    if (world.rank() == 0) first_end = world.vtime_ns();
  });
  EXPECT_GT(first_end, 0);
  u.run([&](minimpi::Comm& world) {
    if (world.rank() == 0) {
      // A fresh job starts near virtual zero, far below the last job's
      // accumulated time.
      EXPECT_LT(world.vtime_ns(), first_end / 2 + 1000);
    }
    world.barrier();
  });
}

TEST(BindingsErrorTest, TruncationSurfacesAsError) {
  mv2j::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  EXPECT_THROW(
      mv2j::run(o,
                [](mv2j::Env& env) {
                  mv2j::Comm& world = env.COMM_WORLD();
                  if (world.getRank() == 0) {
                    auto big = env.newArray<minijvm::jint>(100);
                    world.send(big, 100, mv2j::INT, 1, 0);
                  } else {
                    auto small = env.newArray<minijvm::jint>(10);
                    world.recv(small, 10, mv2j::INT, 0, 0);  // truncates
                  }
                }),
      jhpc::Error);
}

TEST(BindingsErrorTest, NegativeCountRejectedEverywhere) {
  mv2j::RunOptions o;
  o.ranks = 2;
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    auto buf = env.newDirectBuffer(64);
    auto arr = env.newArray<minijvm::jint>(16);
    const int peer = 1 - world.getRank();
    EXPECT_THROW(world.send(buf, -1, mv2j::INT, peer, 0),
                 InvalidArgumentError);
    EXPECT_THROW(world.send(arr, -1, mv2j::INT, peer, 0),
                 InvalidArgumentError);
    world.barrier();
  });
}

TEST(RequestCornerTest, WaitAllToleratesNullEntries) {
  minimpi::UniverseConfig cfg;
  cfg.world_size = 2;
  minimpi::Universe::launch(cfg, [](minimpi::Comm& world) {
    std::vector<minimpi::Request> reqs(3);  // all null
    if (world.rank() == 0) {
      int v = 1;
      reqs[1] = world.isend(&v, sizeof(v), 1, 0);  // may be null (eager)
      minimpi::Request::wait_all(reqs);
    } else {
      int got = 0;
      reqs[1] = world.irecv(&got, sizeof(got), 0, 0);
      minimpi::Request::wait_all(reqs);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(RequestCornerTest, WaitAnyRejectsAllNull) {
  std::vector<minimpi::Request> reqs(2);
  EXPECT_THROW(minimpi::Request::wait_any(reqs), InvalidArgumentError);
}

TEST(UniverseConfigTest, AccessibleFromComm) {
  minimpi::UniverseConfig cfg;
  cfg.world_size = 1;
  cfg.eager_limit = 777;
  minimpi::Universe::launch(cfg, [](minimpi::Comm& world) {
    EXPECT_EQ(world.universe_config().eager_limit, 777u);
    EXPECT_EQ(world.suite(), minimpi::CollectiveSuite::kMv2);
  });
}

TEST(PoolSharingTest, StagingSurvivesHeavyGcChurn) {
  // Allocation churn between array sends must not disturb the pooled
  // staging buffers (they live outside the managed heap).
  mv2j::RunOptions o;
  o.ranks = 2;
  o.jvm.heap_bytes = 1 << 20;  // tiny heap: GCs constantly
  o.jvm.jni_crossing_ns = 0;
  mv2j::run(o, [](mv2j::Env& env) {
    mv2j::Comm& world = env.COMM_WORLD();
    for (int round = 0; round < 30; ++round) {
      auto churn = env.newArray<minijvm::jbyte>(200 * 1024);  // forces GC
      (void)churn;
      if (world.getRank() == 0) {
        auto msg = env.newArray<minijvm::jint>(64);
        for (std::size_t i = 0; i < 64; ++i)
          msg[i] = round * 100 + static_cast<int>(i);
        world.send(msg, 64, mv2j::INT, 1, 0);
      } else {
        auto msg = env.newArray<minijvm::jint>(64);
        world.recv(msg, 64, mv2j::INT, 0, 0);
        ASSERT_EQ(msg[63], round * 100 + 63);
      }
    }
    EXPECT_GE(env.jvm().stats().collections, 1u)
        << "the churn must actually have triggered collections";
  });
}

}  // namespace
}  // namespace jhpc
