// Stress and property tests for the minimpi substrate: randomized message
// storms, mixed protocols, virtual-time invariants, failure injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

UniverseConfig cfg(int n) {
  UniverseConfig c;
  c.world_size = n;
  c.eager_limit = 512;  // force plenty of rendezvous traffic
  return c;
}

TEST(StressTest, RandomizedManyToOneStorm) {
  // Every rank fires messages of random sizes/tags at rank 0; rank 0
  // receives with wildcards and checks content integrity via checksums.
  Universe::launch(cfg(6), [](Comm& world) {
    constexpr int kPerRank = 60;
    const int senders = world.size() - 1;
    if (world.rank() == 0) {
      long long total = 0;
      for (int i = 0; i < kPerRank * senders; ++i) {
        std::vector<std::uint8_t> buf(9000);
        Status st;
        world.recv(buf.data(), buf.size(), kAnySource, kAnyTag, &st);
        // Payload bytes all carry (src * 7 + tag) & 0xff.
        const auto want = static_cast<std::uint8_t>((st.source * 7 + st.tag) & 0xff);
        for (std::size_t j = 0; j < st.count_bytes; ++j)
          ASSERT_EQ(buf[j], want);
        total += static_cast<long long>(st.count_bytes);
      }
      EXPECT_GT(total, 0);
    } else {
      std::mt19937 rng(static_cast<unsigned>(world.rank()) * 7919u);
      std::uniform_int_distribution<int> size_dist(0, 8192);
      std::uniform_int_distribution<int> tag_dist(0, 30);
      for (int i = 0; i < kPerRank; ++i) {
        const int tag = tag_dist(rng);
        const auto bytes = static_cast<std::size_t>(size_dist(rng));
        std::vector<std::uint8_t> buf(
            bytes, static_cast<std::uint8_t>((world.rank() * 7 + tag) & 0xff));
        world.send(buf.data(), bytes, 0, tag);
      }
    }
  });
}

TEST(StressTest, AllPairsRandomSizes) {
  // Every ordered pair exchanges a random-size message; non-blocking
  // receives posted first, sends afterwards, single waitall.
  Universe::launch(cfg(5), [](Comm& world) {
    const int n = world.size();
    const int me = world.rank();
    auto size_for = [](int src, int dst) {
      // Deterministic pseudo-random size both sides can compute.
      return static_cast<std::size_t>((src * 131 + dst * 313) % 3000);
    };
    std::vector<std::vector<std::uint8_t>> inbox(
        static_cast<std::size_t>(n));
    std::vector<Request> reqs;
    for (int src = 0; src < n; ++src) {
      if (src == me) continue;
      inbox[static_cast<std::size_t>(src)].resize(size_for(src, me) + 1);
      reqs.push_back(world.irecv(inbox[static_cast<std::size_t>(src)].data(),
                                 size_for(src, me), src, 42));
    }
    for (int dst = 0; dst < n; ++dst) {
      if (dst == me) continue;
      std::vector<std::uint8_t> payload(size_for(me, dst),
                                        static_cast<std::uint8_t>(me));
      world.send(payload.data(), payload.size(), dst, 42);
    }
    Request::wait_all(reqs);
    for (int src = 0; src < n; ++src) {
      if (src == me) continue;
      const auto& buf = inbox[static_cast<std::size_t>(src)];
      for (std::size_t j = 0; j < size_for(src, me); ++j)
        ASSERT_EQ(buf[j], static_cast<std::uint8_t>(src));
    }
  });
}

TEST(StressTest, CollectiveMarathonMixedSuites) {
  // A long alternating sequence of different collectives must stay
  // correct (no tag/context cross-talk) on both suites.
  for (const auto suite :
       {CollectiveSuite::kMv2, CollectiveSuite::kOmpiBasic}) {
    UniverseConfig c = cfg(6);
    c.suite = suite;
    Universe::launch(c, [](Comm& world) {
      const int n = world.size();
      for (int round = 0; round < 30; ++round) {
        std::int32_t v = world.rank() + round;
        std::int32_t sum = 0;
        world.allreduce(&v, &sum, 1, BasicKind::kInt, ReduceOp::kSum);
        ASSERT_EQ(sum, n * (n - 1) / 2 + round * n);

        std::vector<std::int32_t> all(static_cast<std::size_t>(n));
        world.allgather(&v, sizeof(v), all.data());
        for (int r = 0; r < n; ++r)
          ASSERT_EQ(all[static_cast<std::size_t>(r)], r + round);

        int token = round * 3;
        world.bcast(&token, sizeof(token), round % n);
        ASSERT_EQ(token, round * 3);
        world.barrier();
      }
    });
  }
}

TEST(VirtualTimeProperty, MonotoneNonDecreasingPerRank) {
  Universe::launch(cfg(4), [](Comm& world) {
    std::int64_t prev = world.vtime_ns();
    for (int i = 0; i < 50; ++i) {
      world.barrier();
      std::int32_t v = 1, s = 0;
      world.allreduce(&v, &s, 1, BasicKind::kInt, ReduceOp::kSum);
      const std::int64_t now = world.vtime_ns();
      ASSERT_GE(now, prev) << "virtual time must never run backwards";
      prev = now;
    }
  });
}

TEST(VirtualTimeProperty, MessageCausality) {
  // A receiver can never observe a message "before" it was sent: the
  // receive completion time must be >= the sender's virtual send time.
  UniverseConfig c = cfg(2);
  c.fabric.ranks_per_node = 1;
  Universe::launch(c, [](Comm& world) {
    for (int i = 0; i < 20; ++i) {
      if (world.rank() == 0) {
        const std::int64_t sent_at = world.vtime_ns();
        world.send(&sent_at, sizeof(sent_at), 1, 0);
      } else {
        std::int64_t sent_at = 0;
        world.recv(&sent_at, sizeof(sent_at), 0, 0);
        ASSERT_GE(world.vtime_ns(), sent_at)
            << "arrival cannot precede the send";
      }
      world.barrier();
    }
  });
}

TEST(FailureInjection, TruncationStormDoesNotWedgeOthers) {
  // One receive is deliberately too small; the error must surface as an
  // exception on the receiver and abort the whole job cleanly.
  Universe u(cfg(3));
  EXPECT_THROW(
      u.run([](Comm& world) {
        if (world.rank() == 0) {
          std::vector<std::uint8_t> big(4096, 1);
          world.send(big.data(), big.size(), 1, 0);
          world.barrier();  // never completes; abort wakes us
        } else if (world.rank() == 1) {
          std::uint8_t tiny[8];
          world.recv(tiny, sizeof(tiny), 0, 0);  // throws: truncation
          world.barrier();
        } else {
          world.barrier();
        }
      }),
      jhpc::Error);
  // The universe remains usable after the failed job.
  u.run([](Comm& world) { world.barrier(); });
}

TEST(FailureInjection, AbortWakesRendezvousSender) {
  Universe u(cfg(2));
  EXPECT_THROW(
      u.run([](Comm& world) {
        if (world.rank() == 0) {
          // Rendezvous send with no matching receive ever posted.
          std::vector<std::uint8_t> big(1 << 20, 2);
          world.send(big.data(), big.size(), 1, 0);
        } else {
          throw std::runtime_error("receiver dies first");
        }
      }),
      std::runtime_error);
}

TEST(StressTest, LongRunningPingPongStaysBalanced) {
  // Virtual clocks of the two partners must stay close (they exchange
  // messages constantly), demonstrating bounded clock drift.
  Universe::launch(cfg(2), [](Comm& world) {
    std::int64_t mine = 0, theirs = 0;
    for (int i = 0; i < 300; ++i) {
      mine = world.vtime_ns();
      const int peer = 1 - world.rank();
      world.sendrecv(&mine, sizeof(mine), peer, 0, &theirs, sizeof(theirs),
                     peer, 0);
    }
    // After a send+recv the partner's last timestamp cannot be far in the
    // past relative to us (each round trip resynchronises).
    EXPECT_LT(std::llabs(world.vtime_ns() - theirs), 50'000'000ll);
  });
}

}  // namespace
}  // namespace jhpc::minimpi
