// The observability subsystem: pvar registry semantics, trace-ring
// overflow, transport/collective instrumentation counts, and the Chrome
// trace JSON round-tripped through a real parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "jhpc/minimpi/universe.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/support/paths.hpp"

namespace jhpc::obs {
namespace {

// --- PvarRegistry ----------------------------------------------------------

TEST(PvarRegistryTest, RegisterAddReadTotal) {
  PvarRegistry reg(3);
  const PvarId msgs = reg.register_pvar("t.msgs", PvarClass::kCounter, "x");
  reg.add(msgs, 0, 2);
  reg.add(msgs, 1, 5);
  reg.add(msgs, 2, 1);
  EXPECT_EQ(reg.read(msgs, 0), 2);
  EXPECT_EQ(reg.read(msgs, 1), 5);
  EXPECT_EQ(reg.read(msgs, 2), 1);
  EXPECT_EQ(reg.total(msgs), 8);
}

TEST(PvarRegistryTest, RegistrationIsIdempotent) {
  PvarRegistry reg(2);
  const PvarId a = reg.register_pvar("t.same", PvarClass::kCounter, "first");
  const PvarId b = reg.register_pvar("t.same", PvarClass::kLevel, "second");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.size(), 1u);
  reg.add(a, 0, 1);
  reg.add(b, 0, 1);
  EXPECT_EQ(reg.read(a, 0), 2);
}

TEST(PvarRegistryTest, RaiseKeepsHighWaterMark) {
  PvarRegistry reg(1);
  const PvarId depth = reg.register_pvar("t.hwm", PvarClass::kLevel, "x");
  reg.raise(depth, 0, 4);
  reg.raise(depth, 0, 2);  // lower: ignored
  EXPECT_EQ(reg.read(depth, 0), 4);
  reg.raise(depth, 0, 9);
  EXPECT_EQ(reg.read(depth, 0), 9);
}

TEST(PvarRegistryTest, InvalidHandleIsInert) {
  PvarRegistry reg(1);
  PvarId none;  // default-constructed: invalid
  EXPECT_FALSE(none.valid());
  reg.add(none, 0, 5);
  reg.raise(none, 0, 5);
  EXPECT_EQ(reg.read(none, 0), 0);
  EXPECT_EQ(reg.total(none), 0);
  EXPECT_FALSE(reg.find("t.never_registered").valid());
}

TEST(PvarRegistryTest, SnapshotAndReset) {
  PvarRegistry reg(2);
  const PvarId a = reg.register_pvar("t.a", PvarClass::kCounter, "da");
  const PvarId t = reg.register_pvar("t.t", PvarClass::kTimer, "dt");
  reg.add(a, 0, 3);
  reg.add(t, 1, 1500);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "t.a");
  EXPECT_EQ(snap[0].values, (std::vector<std::int64_t>{3, 0}));
  EXPECT_EQ(snap[0].total, 3);
  EXPECT_EQ(snap[1].cls, PvarClass::kTimer);
  EXPECT_EQ(snap[1].values, (std::vector<std::int64_t>{0, 1500}));
  reg.reset_values();
  EXPECT_EQ(reg.read(a, 0), 0);
  EXPECT_EQ(reg.read(t, 1), 0);
  EXPECT_EQ(reg.size(), 2u);  // registrations survive
}

TEST(PvarRegistryTest, ConcurrentRegisterAndUpdate) {
  // The contract the transport relies on: registration is find-or-create
  // from any thread, updates are lock-free. Run under
  // -DJHPC_SANITIZE=thread (ctest -L obs) to race-check it.
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  PvarRegistry reg(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const PvarId id =
          reg.register_pvar("t.shared", PvarClass::kCounter, "x");
      const PvarId mine = reg.register_pvar("t.rank" + std::to_string(t),
                                            PvarClass::kCounter, "x");
      for (int i = 0; i < kAdds; ++i) {
        reg.add(id, t, 1);
        reg.add(mine, t, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.total(reg.find("t.shared")),
            static_cast<std::int64_t>(kThreads) * kAdds);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.read(reg.find("t.rank" + std::to_string(t)), t), kAdds);
  }
}

// --- TraceRing -------------------------------------------------------------

TEST(TraceRingTest, KeepsEventsInOrderBelowCapacity) {
  TraceRing ring(8);
  ring.push({"a", 10, true});
  ring.push({"a", 20, false});
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_TRUE(evs[0].is_begin);
  EXPECT_EQ(evs[1].vtime_ns, 20);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, OverflowDropsOldestAndCounts) {
  TraceRing ring(4);
  for (std::int64_t i = 0; i < 7; ++i)
    ring.push({"e", i, i % 2 == 0});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);  // events 0,1,2 evicted
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(evs[i].vtime_ns, static_cast<std::int64_t>(i) + 3);
}

TEST(TraceRingTest, ClearResetsEverything) {
  TraceRing ring(2);
  ring.push({"a", 1, true});
  ring.push({"a", 2, false});
  ring.push({"a", 3, true});
  EXPECT_EQ(ring.dropped(), 1u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

// --- A minimal JSON parser for the round-trip test -------------------------

struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    EXPECT_TRUE(it != obj.end()) << "missing key: " << key;
    static const Json kEmpty;
    return it != obj.end() ? it->second : kEmpty;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON value";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r' || s_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    ASSERT_OK(peek() == c);
    ++pos_;
  }
  static void ASSERT_OK(bool ok) { ASSERT_TRUE(ok) << "malformed JSON"; }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': literal("null"); return Json{};
      default: return number();
    }
  }
  Json object() {
    Json v; v.kind = Json::kObj;
    expect('{');
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      Json key = string_value();
      expect(':');
      v.obj[key.str] = value();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }
  Json array() {
    Json v; v.kind = Json::kArr;
    expect('[');
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.arr.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }
  Json string_value() {
    Json v; v.kind = Json::kStr;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            ASSERT_OK(pos_ + 4 <= s_.size());
            c = static_cast<char>(
                std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          default: c = esc; break;
        }
      }
      v.str.push_back(c);
    }
    expect('"');
    return v;
  }
  Json boolean() {
    Json v; v.kind = Json::kBool;
    if (s_[pos_] == 't') { literal("true"); v.boolean = true; }
    else { literal("false"); }
    return v;
  }
  Json number() {
    Json v; v.kind = Json::kNum;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    ASSERT_OK(end > pos_);
    v.number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }
  void literal(const char* lit) {
    const std::string want(lit);
    ASSERT_OK(s_.compare(pos_, want.size(), want) == 0);
    pos_ += want.size();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// --- Transport instrumentation --------------------------------------------

using minimpi::Comm;
using minimpi::Status;
using minimpi::Universe;
using minimpi::UniverseConfig;

UniverseConfig traced_config(int ranks, const std::string& trace_path) {
  UniverseConfig cfg;
  cfg.world_size = ranks;
  cfg.obs = ObsConfig{};  // discard env so the test is hermetic
  cfg.obs.trace_path = trace_path;
  return cfg;
}

TEST(TransportPvarsTest, CountsMessagesBytesAndProtocols) {
  UniverseConfig cfg = traced_config(2, testing::TempDir() + "p2p.json");
  cfg.eager_limit = 64;  // 16-byte sends go eager, 256-byte go rendezvous
  std::int64_t sent = -1, eager = -1, rndv = -1, sent_bytes = -1;
  std::int64_t recvd = -1, recvd_bytes = -1, wait_count = -1;
  Universe::launch(cfg, [&](Comm& world) {
    std::vector<char> small(16, 'x'), large(256, 'y');
    if (world.rank() == 0) {
      for (int i = 0; i < 3; ++i)
        world.send(small.data(), small.size(), 1, 7);
      for (int i = 0; i < 2; ++i)
        world.send(large.data(), large.size(), 1, 7);
      char ack = 0;
      world.recv(&ack, sizeof(ack), 1, 8);
      PvarRegistry& reg = *world.pvars();
      sent = reg.read(reg.find("mpi.msgs_sent"), 0);
      eager = reg.read(reg.find("mpi.eager_sent"), 0);
      rndv = reg.read(reg.find("mpi.rndv_sent"), 0);
      sent_bytes = reg.read(reg.find("mpi.bytes_sent"), 0);
      recvd = reg.read(reg.find("mpi.msgs_recvd"), 1);
      recvd_bytes = reg.read(reg.find("mpi.bytes_recvd"), 1);
      wait_count = reg.total(reg.find("mpi.wait_count"));
    } else {
      std::vector<char> buf(256);
      for (int i = 0; i < 5; ++i)
        world.recv(buf.data(), buf.size(), 0, 7);
      const char ack = 1;
      world.send(&ack, sizeof(ack), 0, 8);
    }
  });
  EXPECT_EQ(sent, 5);
  EXPECT_EQ(eager, 3);
  EXPECT_EQ(rndv, 2);
  EXPECT_EQ(sent_bytes, 3 * 16 + 2 * 256);
  EXPECT_EQ(recvd, 5);
  EXPECT_EQ(recvd_bytes, 3 * 16 + 2 * 256);
  EXPECT_GT(wait_count, 0);
}

TEST(TransportPvarsTest, UnexpectedQueueHighWaterMark) {
  UniverseConfig cfg = traced_config(2, testing::TempDir() + "uq.json");
  std::int64_t hwm = -1;
  Universe::launch(cfg, [&](Comm& world) {
    char token = 0;
    if (world.rank() == 0) {
      // Rank 1 only ever posts a recv for the "go" tag until it arrives,
      // and same-pair messages are non-overtaking, so the three payload
      // sends are parked in its unexpected queue first. The go message
      // itself may or may not land unexpected too, depending on thread
      // timing.
      for (int i = 0; i < 3; ++i)
        world.send(&token, sizeof(token), 1, i);
      world.send(&token, sizeof(token), 1, 9);  // go
      world.recv(&token, sizeof(token), 1, 10);  // ack: rank 1 drained
      PvarRegistry& reg = *world.pvars();
      hwm = reg.read(reg.find("mpi.unexpected_hwm"), 1);
    } else {
      world.recv(&token, sizeof(token), 0, 9);  // go
      for (int i = 0; i < 3; ++i)
        world.recv(&token, sizeof(token), 0, i);
      world.send(&token, sizeof(token), 0, 10);  // ack
    }
  });
  EXPECT_GE(hwm, 3);
  EXPECT_LE(hwm, 4);
}

TEST(TransportPvarsTest, DisabledByDefaultAndZeroObservableState) {
  UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.obs = ObsConfig{};  // no pvars, no trace: fully disabled
  Universe::launch(cfg, [&](Comm& world) {
    EXPECT_EQ(world.pvars(), nullptr);
    EXPECT_EQ(world.recorder(), nullptr);
    world.barrier();
  });
}

TEST(CollectivePvarsTest, BcastThresholdSelectsAlgorithm) {
  UniverseConfig cfg = traced_config(4, testing::TempDir() + "coll.json");
  cfg.suite = minimpi::CollectiveSuite::kMv2;
  std::int64_t binomial = -1, scatter_ring = -1, barrier_cnt = -1;
  Universe::launch(cfg, [&](Comm& world) {
    // Per-rank buffers: sharing one vector across rank threads would make
    // concurrent deliveries write the same bytes (a real data race).
    std::vector<char> small(64), large(64 * 1024);
    for (int i = 0; i < 3; ++i) world.bcast(small.data(), small.size(), 0);
    for (int i = 0; i < 2; ++i) world.bcast(large.data(), large.size(), 0);
    world.barrier();
    if (world.rank() == 0) {
      PvarRegistry& reg = *world.pvars();
      binomial = reg.total(reg.find("coll.bcast.binomial"));
      scatter_ring = reg.total(reg.find("coll.bcast.scatter_ring"));
      barrier_cnt = reg.read(reg.find("coll.barrier.dissemination"), 0);
    }
  });
  // Every rank counts each invocation once.
  EXPECT_EQ(binomial, 3 * 4);
  EXPECT_EQ(scatter_ring, 2 * 4);
  EXPECT_EQ(barrier_cnt, 1);
}

TEST(CollectivePvarsTest, BasicSuiteCountsLinearAlgorithms) {
  UniverseConfig cfg = traced_config(3, testing::TempDir() + "basic.json");
  cfg.suite = minimpi::CollectiveSuite::kOmpiBasic;
  std::int64_t linear = -1, binomial = -1;
  Universe::launch(cfg, [&](Comm& world) {
    int v = world.rank();
    world.bcast(&v, sizeof(v), 0);
    world.barrier();
    if (world.rank() == 0) {
      PvarRegistry& reg = *world.pvars();
      linear = reg.total(reg.find("coll.bcast.linear"));
      binomial = reg.total(reg.find("coll.bcast.binomial"));
    }
  });
  EXPECT_EQ(linear, 3);
  EXPECT_EQ(binomial, 0);
}

// --- Chrome trace round-trip -----------------------------------------------

TEST(ChromeTraceTest, RoundTripsThroughParserWithStrictNesting) {
  const std::string path = testing::TempDir() + "roundtrip.json";
  UniverseConfig cfg = traced_config(2, path);
  Universe::launch(cfg, [](Comm& world) {
    std::vector<char> buf(512);
    if (world.rank() == 0) {
      world.send(buf.data(), buf.size(), 1, 1);
      world.recv(buf.data(), buf.size(), 1, 2);
    } else {
      world.recv(buf.data(), buf.size(), 0, 1);
      world.send(buf.data(), buf.size(), 0, 2);
    }
    world.barrier();
  });

  const Json root = JsonParser(slurp(path)).parse();
  ASSERT_EQ(root.kind, Json::kObj);
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArr);
  ASSERT_FALSE(events.arr.empty());

  std::map<int, std::vector<std::string>> open_stacks;
  std::map<int, double> last_ts;
  int metadata = 0, durations = 0;
  for (const Json& ev : events.arr) {
    ASSERT_EQ(ev.kind, Json::kObj);
    const std::string ph = ev.at("ph").str;
    const int tid = static_cast<int>(ev.at("tid").number);
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").str, "thread_name");
      continue;
    }
    ++durations;
    const double ts = ev.at("ts").number;
    EXPECT_GE(ts, last_ts[tid]) << "timestamps must be non-decreasing";
    last_ts[tid] = ts;
    if (ph == "B") {
      open_stacks[tid].push_back(ev.at("name").str);
    } else {
      ASSERT_EQ(ph, "E");
      ASSERT_FALSE(open_stacks[tid].empty())
          << "E without matching B on tid " << tid;
      EXPECT_EQ(open_stacks[tid].back(), ev.at("name").str)
          << "B/E must nest strictly";
      open_stacks[tid].pop_back();
    }
  }
  EXPECT_EQ(metadata, 2);  // one thread_name record per rank
  EXPECT_GT(durations, 0);
  for (const auto& [tid, stack] : open_stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(ChromeTraceTest, OverflowedRingStillProducesBalancedJson) {
  // A tiny ring forces eviction mid-span; the writer must repair the
  // stream into strictly-nested B/E pairs anyway.
  const std::string path = testing::TempDir() + "overflow.json";
  UniverseConfig cfg = traced_config(2, path);
  cfg.obs.trace_capacity = 8;
  Universe::launch(cfg, [](Comm& world) {
    char token = 0;
    for (int i = 0; i < 50; ++i) {
      if (world.rank() == 0) {
        world.send(&token, sizeof(token), 1, 1);
        world.recv(&token, sizeof(token), 1, 2);
      } else {
        world.recv(&token, sizeof(token), 0, 1);
        world.send(&token, sizeof(token), 0, 2);
      }
    }
  });

  const Json root = JsonParser(slurp(path)).parse();
  std::map<int, int> depth;
  for (const Json& ev : root.at("traceEvents").arr) {
    const std::string ph = ev.at("ph").str;
    const int tid = static_cast<int>(ev.at("tid").number);
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0);
}

// --- Recorder + finalize summary -------------------------------------------

TEST(RecorderTest, SummaryTableReportsTracerCounters) {
  ObsConfig cfg;
  cfg.pvars = true;
  cfg.trace_path = testing::TempDir() + "summary.json";
  cfg.trace_capacity = 4;
  Recorder rec(cfg, 2);
  const PvarId id =
      rec.pvars().register_pvar("t.c", PvarClass::kCounter, "x");
  rec.pvars().add(id, 1, 3);
  for (int i = 0; i < 6; ++i) rec.begin(0, "s", i);
  const Table table = rec.summary_table();
  ASSERT_GE(table.rows(), 3u);
  const auto& rows = table.data();
  EXPECT_EQ(rows[rows.size() - 2][0], "obs.trace.events");
  EXPECT_EQ(rows[rows.size() - 2][1 + 1], "4");  // rank 0 retained
  EXPECT_EQ(rows[rows.size() - 1][0], "obs.trace.dropped");
  EXPECT_EQ(rows[rows.size() - 1][1 + 1], "2");
  rec.reset();
  EXPECT_EQ(rec.pvars().read(id, 1), 0);
  EXPECT_EQ(rec.dropped_events(), 0u);
}

// --- Bindings query API -----------------------------------------------------

TEST(BindingsPvarsTest, Mv2jEnvExposesPoolAndTransportPvars) {
  mv2j::RunOptions opts;
  opts.ranks = 2;
  opts.obs = ObsConfig{};
  opts.obs.trace_path = testing::TempDir() + "mv2j.json";
  opts.pool.min_capacity = 256;
  std::int64_t requests = -1, hits = -1, misses = -1, msgs = -1;
  mv2j::run(opts, [&](mv2j::Env& env) {
    auto& world = env.COMM_WORLD();
    // Arrays stage through the mpjbuf pool: first use misses (fresh
    // direct buffer), repeats hit.
    auto arr = env.newArray<minijvm::jint>(64);
    for (int iter = 0; iter < 4; ++iter) {
      if (world.getRank() == 0) {
        world.send(arr, 64, mv2j::INT, 1, 5);
      } else {
        world.recv(arr, 64, mv2j::INT, 0, 5);
      }
    }
    world.barrier();
    if (world.getRank() == 0) {
      ASSERT_NE(env.pvars(), nullptr);
      requests = env.readPvar("mpjbuf.pool.requests");
      hits = env.readPvar("mpjbuf.pool.hits");
      misses = env.readPvar("mpjbuf.pool.misses");
      msgs = env.readPvar("mpi.msgs_sent");
      // Registry and the pool's own stats must agree.
      const auto st = env.pool().stats();
      EXPECT_EQ(static_cast<std::uint64_t>(requests), st.requests);
      EXPECT_EQ(static_cast<std::uint64_t>(hits), st.pool_hits);
      EXPECT_EQ(static_cast<std::uint64_t>(misses), st.pool_misses);
    }
  });
  EXPECT_GE(requests, 4);  // one staging buffer per arrays send
  EXPECT_GE(misses, 1);    // the first request allocates fresh
  EXPECT_GE(hits, 1);      // later requests reuse the returned buffer
  EXPECT_EQ(requests, hits + misses);
  EXPECT_GE(msgs, 4);
}

TEST(BindingsPvarsTest, ReadPvarIsZeroWhenDisabled) {
  mv2j::RunOptions opts;
  opts.ranks = 1;
  opts.obs = ObsConfig{};  // disabled
  mv2j::run(opts, [&](mv2j::Env& env) {
    EXPECT_EQ(env.pvars(), nullptr);
    EXPECT_EQ(env.readPvar("mpi.msgs_sent"), 0);
  });
}

// --- path_with_tag (used by fig11 and per-series trace naming) --------------

TEST(PathWithTagTest, InsertsBeforeExtension) {
  EXPECT_EQ(path_with_tag("results/fig11.csv", "overhead"),
            "results/fig11.overhead.csv");
  EXPECT_EQ(path_with_tag("trace.json", "mv2j_buffer"),
            "trace.mv2j_buffer.json");
  EXPECT_EQ(path_with_tag("noext", "t"), "noext.t");
  EXPECT_EQ(path_with_tag("dir.v2/noext", "t"), "dir.v2/noext.t");
  EXPECT_EQ(path_with_tag(".hidden", "t"), ".hidden.t");
}

}  // namespace
}  // namespace jhpc::obs
