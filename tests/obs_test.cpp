// The observability subsystem: pvar registry semantics, trace-ring
// overflow, transport/collective instrumentation counts, and the Chrome
// trace JSON round-tripped through a real parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "jhpc/minimpi/universe.hpp"
#include "jhpc/mv2j/env.hpp"
#include "jhpc/obs/hist.hpp"
#include "jhpc/obs/obs.hpp"
#include "jhpc/obs/recorder.hpp"
#include "jhpc/obs/waitstate.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/paths.hpp"

namespace jhpc::obs {
namespace {

// --- PvarRegistry ----------------------------------------------------------

TEST(PvarRegistryTest, RegisterAddReadTotal) {
  PvarRegistry reg(3);
  const PvarId msgs = reg.register_pvar("t.msgs", PvarClass::kCounter, "x");
  reg.add(msgs, 0, 2);
  reg.add(msgs, 1, 5);
  reg.add(msgs, 2, 1);
  EXPECT_EQ(reg.read(msgs, 0), 2);
  EXPECT_EQ(reg.read(msgs, 1), 5);
  EXPECT_EQ(reg.read(msgs, 2), 1);
  EXPECT_EQ(reg.total(msgs), 8);
}

TEST(PvarRegistryTest, RegistrationIsIdempotent) {
  PvarRegistry reg(2);
  const PvarId a = reg.register_pvar("t.same", PvarClass::kCounter, "first");
  const PvarId b = reg.register_pvar("t.same", PvarClass::kLevel, "second");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.size(), 1u);
  reg.add(a, 0, 1);
  reg.add(b, 0, 1);
  EXPECT_EQ(reg.read(a, 0), 2);
}

TEST(PvarRegistryTest, RaiseKeepsHighWaterMark) {
  PvarRegistry reg(1);
  const PvarId depth = reg.register_pvar("t.hwm", PvarClass::kLevel, "x");
  reg.raise(depth, 0, 4);
  reg.raise(depth, 0, 2);  // lower: ignored
  EXPECT_EQ(reg.read(depth, 0), 4);
  reg.raise(depth, 0, 9);
  EXPECT_EQ(reg.read(depth, 0), 9);
}

TEST(PvarRegistryTest, InvalidHandleIsInert) {
  PvarRegistry reg(1);
  PvarId none;  // default-constructed: invalid
  EXPECT_FALSE(none.valid());
  reg.add(none, 0, 5);
  reg.raise(none, 0, 5);
  EXPECT_EQ(reg.read(none, 0), 0);
  EXPECT_EQ(reg.total(none), 0);
  EXPECT_FALSE(reg.find("t.never_registered").valid());
}

TEST(PvarRegistryTest, SnapshotAndReset) {
  PvarRegistry reg(2);
  const PvarId a = reg.register_pvar("t.a", PvarClass::kCounter, "da");
  const PvarId t = reg.register_pvar("t.t", PvarClass::kTimer, "dt");
  reg.add(a, 0, 3);
  reg.add(t, 1, 1500);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "t.a");
  EXPECT_EQ(snap[0].values, (std::vector<std::int64_t>{3, 0}));
  EXPECT_EQ(snap[0].total, 3);
  EXPECT_EQ(snap[1].cls, PvarClass::kTimer);
  EXPECT_EQ(snap[1].values, (std::vector<std::int64_t>{0, 1500}));
  reg.reset_values();
  EXPECT_EQ(reg.read(a, 0), 0);
  EXPECT_EQ(reg.read(t, 1), 0);
  EXPECT_EQ(reg.size(), 2u);  // registrations survive
}

TEST(PvarRegistryTest, ConcurrentRegisterAndUpdate) {
  // The contract the transport relies on: registration is find-or-create
  // from any thread, updates are lock-free. Run under
  // -DJHPC_SANITIZE=thread (ctest -L obs) to race-check it.
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  PvarRegistry reg(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const PvarId id =
          reg.register_pvar("t.shared", PvarClass::kCounter, "x");
      const PvarId mine = reg.register_pvar("t.rank" + std::to_string(t),
                                            PvarClass::kCounter, "x");
      for (int i = 0; i < kAdds; ++i) {
        reg.add(id, t, 1);
        reg.add(mine, t, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.total(reg.find("t.shared")),
            static_cast<std::int64_t>(kThreads) * kAdds);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.read(reg.find("t.rank" + std::to_string(t)), t), kAdds);
  }
}

// --- TraceRing -------------------------------------------------------------

TEST(TraceRingTest, KeepsEventsInOrderBelowCapacity) {
  TraceRing ring(8);
  ring.push({"a", 10, true});
  ring.push({"a", 20, false});
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_TRUE(evs[0].is_begin);
  EXPECT_EQ(evs[1].vtime_ns, 20);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, OverflowDropsOldestAndCounts) {
  TraceRing ring(4);
  for (std::int64_t i = 0; i < 7; ++i)
    ring.push({"e", i, i % 2 == 0});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);  // events 0,1,2 evicted
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(evs[i].vtime_ns, static_cast<std::int64_t>(i) + 3);
}

TEST(TraceRingTest, ClearResetsEverything) {
  TraceRing ring(2);
  ring.push({"a", 1, true});
  ring.push({"a", 2, false});
  ring.push({"a", 3, true});
  EXPECT_EQ(ring.dropped(), 1u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

// --- A minimal JSON parser for the round-trip test -------------------------

struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    EXPECT_TRUE(it != obj.end()) << "missing key: " << key;
    static const Json kEmpty;
    return it != obj.end() ? it->second : kEmpty;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON value";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r' || s_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    ASSERT_OK(peek() == c);
    ++pos_;
  }
  static void ASSERT_OK(bool ok) { ASSERT_TRUE(ok) << "malformed JSON"; }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': literal("null"); return Json{};
      default: return number();
    }
  }
  Json object() {
    Json v; v.kind = Json::kObj;
    expect('{');
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      Json key = string_value();
      expect(':');
      v.obj[key.str] = value();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }
  Json array() {
    Json v; v.kind = Json::kArr;
    expect('[');
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.arr.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }
  Json string_value() {
    Json v; v.kind = Json::kStr;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            ASSERT_OK(pos_ + 4 <= s_.size());
            c = static_cast<char>(
                std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          default: c = esc; break;
        }
      }
      v.str.push_back(c);
    }
    expect('"');
    return v;
  }
  Json boolean() {
    Json v; v.kind = Json::kBool;
    if (s_[pos_] == 't') { literal("true"); v.boolean = true; }
    else { literal("false"); }
    return v;
  }
  Json number() {
    Json v; v.kind = Json::kNum;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    ASSERT_OK(end > pos_);
    v.number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }
  void literal(const char* lit) {
    const std::string want(lit);
    ASSERT_OK(s_.compare(pos_, want.size(), want) == 0);
    pos_ += want.size();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// --- Transport instrumentation --------------------------------------------

using minimpi::Comm;
using minimpi::Status;
using minimpi::Universe;
using minimpi::UniverseConfig;

UniverseConfig traced_config(int ranks, const std::string& trace_path) {
  UniverseConfig cfg;
  cfg.world_size = ranks;
  cfg.obs = ObsConfig{};  // discard env so the test is hermetic
  cfg.obs.trace_path = trace_path;
  return cfg;
}

TEST(TransportPvarsTest, CountsMessagesBytesAndProtocols) {
  UniverseConfig cfg = traced_config(2, testing::TempDir() + "p2p.json");
  cfg.eager_limit = 64;  // 16-byte sends go eager, 256-byte go rendezvous
  std::int64_t sent = -1, eager = -1, rndv = -1, sent_bytes = -1;
  std::int64_t recvd = -1, recvd_bytes = -1, wait_count = -1;
  Universe::launch(cfg, [&](Comm& world) {
    std::vector<char> small(16, 'x'), large(256, 'y');
    if (world.rank() == 0) {
      for (int i = 0; i < 3; ++i)
        world.send(small.data(), small.size(), 1, 7);
      for (int i = 0; i < 2; ++i)
        world.send(large.data(), large.size(), 1, 7);
      char ack = 0;
      world.recv(&ack, sizeof(ack), 1, 8);
      PvarRegistry& reg = *world.pvars();
      sent = reg.read(reg.find("mpi.msgs_sent"), 0);
      eager = reg.read(reg.find("mpi.eager_sent"), 0);
      rndv = reg.read(reg.find("mpi.rndv_sent"), 0);
      sent_bytes = reg.read(reg.find("mpi.bytes_sent"), 0);
      recvd = reg.read(reg.find("mpi.msgs_recvd"), 1);
      recvd_bytes = reg.read(reg.find("mpi.bytes_recvd"), 1);
      wait_count = reg.total(reg.find("mpi.wait_count"));
    } else {
      std::vector<char> buf(256);
      for (int i = 0; i < 5; ++i)
        world.recv(buf.data(), buf.size(), 0, 7);
      const char ack = 1;
      world.send(&ack, sizeof(ack), 0, 8);
    }
  });
  EXPECT_EQ(sent, 5);
  EXPECT_EQ(eager, 3);
  EXPECT_EQ(rndv, 2);
  EXPECT_EQ(sent_bytes, 3 * 16 + 2 * 256);
  EXPECT_EQ(recvd, 5);
  EXPECT_EQ(recvd_bytes, 3 * 16 + 2 * 256);
  EXPECT_GT(wait_count, 0);
}

TEST(TransportPvarsTest, UnexpectedQueueHighWaterMark) {
  UniverseConfig cfg = traced_config(2, testing::TempDir() + "uq.json");
  std::int64_t hwm = -1;
  Universe::launch(cfg, [&](Comm& world) {
    char token = 0;
    if (world.rank() == 0) {
      // Rank 1 only ever posts a recv for the "go" tag until it arrives,
      // and same-pair messages are non-overtaking, so the three payload
      // sends are parked in its unexpected queue first. The go message
      // itself may or may not land unexpected too, depending on thread
      // timing.
      for (int i = 0; i < 3; ++i)
        world.send(&token, sizeof(token), 1, i);
      world.send(&token, sizeof(token), 1, 9);  // go
      world.recv(&token, sizeof(token), 1, 10);  // ack: rank 1 drained
      PvarRegistry& reg = *world.pvars();
      hwm = reg.read(reg.find("mpi.unexpected_hwm"), 1);
    } else {
      world.recv(&token, sizeof(token), 0, 9);  // go
      for (int i = 0; i < 3; ++i)
        world.recv(&token, sizeof(token), 0, i);
      world.send(&token, sizeof(token), 0, 10);  // ack
    }
  });
  EXPECT_GE(hwm, 3);
  EXPECT_LE(hwm, 4);
}

TEST(TransportPvarsTest, DisabledByDefaultAndZeroObservableState) {
  UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.eager_limit = 64;
  cfg.obs = ObsConfig{};  // no pvars, no trace: fully disabled
  Universe::launch(cfg, [&](Comm& world) {
    EXPECT_EQ(world.pvars(), nullptr);
    EXPECT_EQ(world.recorder(), nullptr);
    // Drive every instrumented site (eager, rendezvous, unexpected
    // matches, waits, collectives) with observability off: the null
    // pointer must carry histograms, wait states, the comm matrix and
    // the flight recorder along with the older counters.
    std::vector<char> small(16, 'a'), large(256, 'b'), buf(256);
    if (world.rank() == 0) {
      world.send(small.data(), small.size(), 1, 1);
      world.send(large.data(), large.size(), 1, 2);
    } else {
      world.recv(buf.data(), buf.size(), 0, 2);  // forces an unexpected
      world.recv(buf.data(), buf.size(), 0, 1);  // queue traversal
    }
    world.barrier();
  });
}

TEST(CollectivePvarsTest, BcastThresholdSelectsAlgorithm) {
  UniverseConfig cfg = traced_config(4, testing::TempDir() + "coll.json");
  cfg.suite = minimpi::CollectiveSuite::kMv2;
  std::int64_t binomial = -1, scatter_ring = -1, barrier_cnt = -1;
  Universe::launch(cfg, [&](Comm& world) {
    // Per-rank buffers: sharing one vector across rank threads would make
    // concurrent deliveries write the same bytes (a real data race).
    std::vector<char> small(64), large(64 * 1024);
    for (int i = 0; i < 3; ++i) world.bcast(small.data(), small.size(), 0);
    for (int i = 0; i < 2; ++i) world.bcast(large.data(), large.size(), 0);
    world.barrier();
    if (world.rank() == 0) {
      PvarRegistry& reg = *world.pvars();
      binomial = reg.total(reg.find("coll.bcast.binomial"));
      scatter_ring = reg.total(reg.find("coll.bcast.scatter_ring"));
      barrier_cnt = reg.read(reg.find("coll.barrier.dissemination"), 0);
    }
  });
  // Every rank counts each invocation once.
  EXPECT_EQ(binomial, 3 * 4);
  EXPECT_EQ(scatter_ring, 2 * 4);
  EXPECT_EQ(barrier_cnt, 1);
}

TEST(CollectivePvarsTest, BasicSuiteCountsLinearAlgorithms) {
  UniverseConfig cfg = traced_config(3, testing::TempDir() + "basic.json");
  cfg.suite = minimpi::CollectiveSuite::kOmpiBasic;
  std::int64_t linear = -1, binomial = -1;
  Universe::launch(cfg, [&](Comm& world) {
    int v = world.rank();
    world.bcast(&v, sizeof(v), 0);
    world.barrier();
    if (world.rank() == 0) {
      PvarRegistry& reg = *world.pvars();
      linear = reg.total(reg.find("coll.bcast.linear"));
      binomial = reg.total(reg.find("coll.bcast.binomial"));
    }
  });
  EXPECT_EQ(linear, 3);
  EXPECT_EQ(binomial, 0);
}

// --- Chrome trace round-trip -----------------------------------------------

TEST(ChromeTraceTest, RoundTripsThroughParserWithStrictNesting) {
  const std::string path = testing::TempDir() + "roundtrip.json";
  UniverseConfig cfg = traced_config(2, path);
  Universe::launch(cfg, [](Comm& world) {
    std::vector<char> buf(512);
    if (world.rank() == 0) {
      world.send(buf.data(), buf.size(), 1, 1);
      world.recv(buf.data(), buf.size(), 1, 2);
    } else {
      world.recv(buf.data(), buf.size(), 0, 1);
      world.send(buf.data(), buf.size(), 0, 2);
    }
    world.barrier();
  });

  const Json root = JsonParser(slurp(path)).parse();
  ASSERT_EQ(root.kind, Json::kObj);
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArr);
  ASSERT_FALSE(events.arr.empty());

  std::map<int, std::vector<std::string>> open_stacks;
  std::map<int, double> last_ts;
  int metadata = 0, durations = 0;
  for (const Json& ev : events.arr) {
    ASSERT_EQ(ev.kind, Json::kObj);
    const std::string ph = ev.at("ph").str;
    const int tid = static_cast<int>(ev.at("tid").number);
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").str, "thread_name");
      continue;
    }
    ++durations;
    const double ts = ev.at("ts").number;
    EXPECT_GE(ts, last_ts[tid]) << "timestamps must be non-decreasing";
    last_ts[tid] = ts;
    if (ph == "B") {
      open_stacks[tid].push_back(ev.at("name").str);
    } else {
      ASSERT_EQ(ph, "E");
      ASSERT_FALSE(open_stacks[tid].empty())
          << "E without matching B on tid " << tid;
      EXPECT_EQ(open_stacks[tid].back(), ev.at("name").str)
          << "B/E must nest strictly";
      open_stacks[tid].pop_back();
    }
  }
  EXPECT_EQ(metadata, 2);  // one thread_name record per rank
  EXPECT_GT(durations, 0);
  for (const auto& [tid, stack] : open_stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(ChromeTraceTest, OverflowedRingStillProducesBalancedJson) {
  // A tiny ring forces eviction mid-span; the writer must repair the
  // stream into strictly-nested B/E pairs anyway.
  const std::string path = testing::TempDir() + "overflow.json";
  UniverseConfig cfg = traced_config(2, path);
  cfg.obs.trace_capacity = 8;
  Universe::launch(cfg, [](Comm& world) {
    char token = 0;
    for (int i = 0; i < 50; ++i) {
      if (world.rank() == 0) {
        world.send(&token, sizeof(token), 1, 1);
        world.recv(&token, sizeof(token), 1, 2);
      } else {
        world.recv(&token, sizeof(token), 0, 1);
        world.send(&token, sizeof(token), 0, 2);
      }
    }
  });

  const Json root = JsonParser(slurp(path)).parse();
  std::map<int, int> depth;
  for (const Json& ev : root.at("traceEvents").arr) {
    const std::string ph = ev.at("ph").str;
    const int tid = static_cast<int>(ev.at("tid").number);
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0);
}

// --- Recorder + finalize summary -------------------------------------------

TEST(RecorderTest, SummaryTableReportsTracerCounters) {
  ObsConfig cfg;
  cfg.pvars = true;
  cfg.trace_path = testing::TempDir() + "summary.json";
  cfg.trace_capacity = 4;
  Recorder rec(cfg, 2);
  const PvarId id =
      rec.pvars().register_pvar("t.c", PvarClass::kCounter, "x");
  rec.pvars().add(id, 1, 3);
  for (int i = 0; i < 6; ++i) rec.begin(0, "s", i);
  // The tracer self-reports through real pvars: the recorded-event count
  // (not the retained ring size) and the eviction count, so overflow is
  // visible in the summary and in raw reads alike.
  EXPECT_EQ(rec.pvars().read(rec.pvars().find("obs.trace.events"), 0), 6);
  EXPECT_EQ(rec.pvars().read(rec.pvars().find("obs.trace.dropped"), 0), 2);
  EXPECT_EQ(rec.dropped_events(), 2u);
  const Table table = rec.summary_table();
  ASSERT_GE(table.rows(), 3u);
  auto row_named = [&table](const std::string& name)
      -> const std::vector<std::string>* {
    for (const auto& row : table.data())
      if (!row.empty() && row[0] == name) return &row;
    return nullptr;
  };
  const auto* events = row_named("obs.trace.events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ((*events)[2], "6");  // rank 0 recorded (4 retained + 2 dropped)
  const auto* dropped = row_named("obs.trace.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ((*dropped)[2], "2");
  rec.reset();
  EXPECT_EQ(rec.pvars().read(id, 1), 0);
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(RecorderTest, EnvCapacityKnobsRejectNonPositiveValues) {
  struct EnvGuard {
    explicit EnvGuard(const char* n) : name(n) {}
    ~EnvGuard() { ::unsetenv(name); }
    const char* name;
  };
  {
    EnvGuard g("JHPC_TRACE_CAPACITY");
    ::setenv(g.name, "0", 1);
    EXPECT_THROW(ObsConfig::from_env(), jhpc::InvalidArgumentError);
    ::setenv(g.name, "-3", 1);
    EXPECT_THROW(ObsConfig::from_env(), jhpc::InvalidArgumentError);
    ::setenv(g.name, "abc", 1);
    EXPECT_THROW(ObsConfig::from_env(), jhpc::InvalidArgumentError);
    ::setenv(g.name, "128", 1);
    EXPECT_EQ(ObsConfig::from_env().trace_capacity, 128u);
  }
  {
    EnvGuard g("JHPC_FLIGHT_RECORDER_CAPACITY");
    ::setenv(g.name, "0", 1);
    EXPECT_THROW(ObsConfig::from_env(), jhpc::InvalidArgumentError);
    ::setenv(g.name, "32", 1);
    EXPECT_EQ(ObsConfig::from_env().flight_capacity, 32u);
  }
}

// --- Bindings query API -----------------------------------------------------

TEST(BindingsPvarsTest, Mv2jEnvExposesPoolAndTransportPvars) {
  mv2j::RunOptions opts;
  opts.ranks = 2;
  opts.obs = ObsConfig{};
  opts.obs.trace_path = testing::TempDir() + "mv2j.json";
  opts.pool.min_capacity = 256;
  std::int64_t requests = -1, hits = -1, misses = -1, msgs = -1;
  mv2j::run(opts, [&](mv2j::Env& env) {
    auto& world = env.COMM_WORLD();
    // Arrays stage through the mpjbuf pool: first use misses (fresh
    // direct buffer), repeats hit.
    auto arr = env.newArray<minijvm::jint>(64);
    for (int iter = 0; iter < 4; ++iter) {
      if (world.getRank() == 0) {
        world.send(arr, 64, mv2j::INT, 1, 5);
      } else {
        world.recv(arr, 64, mv2j::INT, 0, 5);
      }
    }
    world.barrier();
    if (world.getRank() == 0) {
      ASSERT_NE(env.pvars(), nullptr);
      requests = env.readPvar("mpjbuf.pool.requests");
      hits = env.readPvar("mpjbuf.pool.hits");
      misses = env.readPvar("mpjbuf.pool.misses");
      msgs = env.readPvar("mpi.msgs_sent");
      // The histogram query API (MPI.T-style): eager-send latency was
      // charged to this sending rank, in raw virtual nanoseconds.
      const HistReading h = env.readHistogram("hist.eager_send");
      EXPECT_GE(h.count, 4);
      EXPECT_GE(h.max, env.histogramPercentile("hist.eager_send", 50));
      EXPECT_EQ(env.readHistogram("no.such.histogram").count, 0);
      // Registry and the pool's own stats must agree.
      const auto st = env.pool().stats();
      EXPECT_EQ(static_cast<std::uint64_t>(requests), st.requests);
      EXPECT_EQ(static_cast<std::uint64_t>(hits), st.pool_hits);
      EXPECT_EQ(static_cast<std::uint64_t>(misses), st.pool_misses);
    }
  });
  EXPECT_GE(requests, 4);  // one staging buffer per arrays send
  EXPECT_GE(misses, 1);    // the first request allocates fresh
  EXPECT_GE(hits, 1);      // later requests reuse the returned buffer
  EXPECT_EQ(requests, hits + misses);
  EXPECT_GE(msgs, 4);
}

// The binding-level engine switch reaches the native dispatch: a bcast
// under hier_collectives moves payload over the single-copy path, and
// the same job without the switch must not touch it.
TEST(BindingsPvarsTest, Mv2jHierCollectivesCountSingleCopies) {
  for (const bool hier : {true, false}) {
    mv2j::RunOptions opts;
    opts.ranks = 4;
    opts.fabric.ranks_per_node = 4;  // one node: pure intra-node fan-out
    opts.hier_collectives = hier;
    opts.obs = ObsConfig{};
    opts.obs.trace_path = testing::TempDir() +
                          (hier ? "mv2j_hier.json" : "mv2j_flat.json");
    std::int64_t copies = -1;
    mv2j::run(opts, [&](mv2j::Env& env) {
      auto& world = env.COMM_WORLD();
      auto arr = env.newArray<minijvm::jint>(64);
      world.bcast(arr, 64, mv2j::INT, 0);
      world.barrier();
      if (world.getRank() == 0) {
        // Copies are charged to the consuming members, so read the
        // job-wide total, not rank 0's slot.
        PvarRegistry& reg = *env.pvars();
        copies = reg.total(reg.find("coll.hier.single_copy"));
      }
    });
    if (hier) {
      EXPECT_GT(copies, 0);
    } else {
      EXPECT_EQ(copies, 0);
    }
  }
}

TEST(BindingsPvarsTest, ReadPvarIsZeroWhenDisabled) {
  mv2j::RunOptions opts;
  opts.ranks = 1;
  opts.obs = ObsConfig{};  // disabled
  mv2j::run(opts, [&](mv2j::Env& env) {
    EXPECT_EQ(env.pvars(), nullptr);
    EXPECT_EQ(env.readPvar("mpi.msgs_sent"), 0);
    EXPECT_EQ(env.readHistogram("hist.wait").count, 0);
    EXPECT_EQ(env.histogramPercentile("hist.wait", 99), 0);
  });
}

// --- Histograms ------------------------------------------------------------

TEST(HistTest, BucketIndexIsExactLogBucketing) {
  // Two buckets per octave: index 2k for [2^k, 1.5*2^k), 2k+1 for the
  // upper half-octave. 0 and 1 get their own buckets.
  EXPECT_EQ(hist_bucket_index(-5), 0u);
  EXPECT_EQ(hist_bucket_index(0), 0u);
  EXPECT_EQ(hist_bucket_index(1), 1u);
  EXPECT_EQ(hist_bucket_index(2), 2u);
  EXPECT_EQ(hist_bucket_index(3), 3u);
  EXPECT_EQ(hist_bucket_index(4), 4u);
  EXPECT_EQ(hist_bucket_index(5), 4u);
  EXPECT_EQ(hist_bucket_index(6), 5u);
  EXPECT_EQ(hist_bucket_index(7), 5u);
  EXPECT_EQ(hist_bucket_index(8), 6u);
  EXPECT_EQ(hist_bucket_index(11), 6u);
  EXPECT_EQ(hist_bucket_index(12), 7u);
  EXPECT_EQ(hist_bucket_index(1000), 19u);  // [768, 1024)
  EXPECT_EQ(hist_bucket_index(1023), 19u);
  EXPECT_EQ(hist_bucket_index(1024), 20u);
  // The largest int64 still fits the fixed bucket array.
  EXPECT_LT(hist_bucket_index(std::numeric_limits<std::int64_t>::max()),
            kHistBuckets);
}

TEST(HistTest, BucketFloorInvertsTheIndex) {
  EXPECT_EQ(hist_bucket_floor(0), 0);
  EXPECT_EQ(hist_bucket_floor(1), 1);
  EXPECT_EQ(hist_bucket_floor(2), 2);
  EXPECT_EQ(hist_bucket_floor(5), 6);
  EXPECT_EQ(hist_bucket_floor(6), 8);
  EXPECT_EQ(hist_bucket_floor(7), 12);
  EXPECT_EQ(hist_bucket_floor(19), 768);
  for (std::int64_t v : {1, 2, 3, 5, 17, 1000, 123456789}) {
    const std::size_t idx = hist_bucket_index(v);
    EXPECT_LE(hist_bucket_floor(idx), v) << "v=" << v;
    EXPECT_GT(hist_bucket_floor(idx + 1), v) << "v=" << v;
  }
}

TEST(HistTest, RegistryRecordsDecodesAndMerges) {
  PvarRegistry reg(2);
  const PvarId h =
      reg.register_pvar("t.h", PvarClass::kHistogram, "x");
  reg.record(h, 0, 100);
  reg.record(h, 0, 100);
  reg.record(h, 0, 3);
  reg.record(h, 1, 5000);
  // read() of a histogram is its sample count.
  EXPECT_EQ(reg.read(h, 0), 3);
  EXPECT_EQ(reg.read(h, 1), 1);
  const HistReading r0 = reg.read_hist(h, 0);
  EXPECT_EQ(r0.count, 3);
  EXPECT_EQ(r0.sum, 203);
  EXPECT_EQ(r0.max, 100);
  EXPECT_EQ(r0.buckets[hist_bucket_index(100)], 2);
  EXPECT_EQ(r0.buckets[hist_bucket_index(3)], 1);
  const HistReading all = reg.hist_total(h);
  EXPECT_EQ(all.count, 4);
  EXPECT_EQ(all.sum, 5203);
  EXPECT_EQ(all.max, 5000);
  reg.reset_values();
  EXPECT_EQ(reg.read_hist(h, 0).count, 0);
  EXPECT_EQ(reg.read_hist(h, 0).sum, 0);
  // Non-histogram pvars decode as empty; record() on them is ignored.
  const PvarId c = reg.register_pvar("t.c2", PvarClass::kCounter, "x");
  reg.record(c, 0, 9);
  EXPECT_EQ(reg.read(c, 0), 0);
  EXPECT_EQ(reg.read_hist(c, 0).count, 0);
}

TEST(HistTest, PercentilesAreExactOnKnownDistribution) {
  HistReading r;
  EXPECT_EQ(r.percentile(50), 0);  // empty
  PvarRegistry reg(1);
  const PvarId h = reg.register_pvar("t.p", PvarClass::kHistogram, "x");
  for (int i = 0; i < 100; ++i) reg.record(h, 0, 100);
  reg.record(h, 0, 10000);
  const HistReading hist = reg.read_hist(h, 0);
  // 101 samples: ranks 1..100 live in bucket [96,128) (floor 96), rank
  // 101 in 10000's bucket. Percentiles report the bucket lower bound;
  // p100 is the exact observed max.
  EXPECT_EQ(hist.percentile(50), 96);
  EXPECT_EQ(hist.percentile(90), 96);
  EXPECT_EQ(hist.percentile(99), 96);
  EXPECT_EQ(hist.percentile(100), 10000);
  EXPECT_DOUBLE_EQ(hist.mean(), (100.0 * 100 + 10000) / 101);
}

TEST(PvarRegistryTest, UnitsFollowTheContract) {
  PvarRegistry reg(1);
  const PvarId c = reg.register_pvar("t.cnt", PvarClass::kCounter, "x");
  const PvarId t = reg.register_pvar("t.tmr", PvarClass::kTimer, "x");
  const PvarId h = reg.register_pvar("t.hst", PvarClass::kHistogram, "x");
  const PvarId b = reg.register_pvar("t.byt", PvarClass::kCounter, "x",
                                     PvarUnit::kBytes);
  reg.add(t, 0, 1500);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].unit, PvarUnit::kNone);
  // Timers and histograms default to virtual nanoseconds, and raw reads
  // return those raw units (only rendered tables convert to us).
  EXPECT_EQ(snap[1].unit, PvarUnit::kNanoseconds);
  EXPECT_EQ(snap[2].unit, PvarUnit::kNanoseconds);
  EXPECT_EQ(snap[3].unit, PvarUnit::kBytes);
  EXPECT_EQ(reg.read(t, 0), 1500);
  EXPECT_STREQ(pvar_unit_name(PvarUnit::kNanoseconds), "ns");
  EXPECT_TRUE(reg.has_histograms());
  (void)c;
  (void)h;
  (void)b;
}

// The coll.hier.* pvars are registered up front (engine selection is
// per-config), so their unit contract must hold on every universe, even
// one that never runs the hier engine: copy counts are unitless
// counters, copied volume is a byte counter, and flag-wait time is a
// virtual-nanosecond timer. Tools keying on unit metadata (the rendered
// pvar table, trace consumers) rely on this.
TEST(PvarRegistryTest, HierPvarsCarryContractUnits) {
  UniverseConfig cfg =
      traced_config(2, testing::TempDir() + "hier_units.json");
  bool copies_ok = false, bytes_ok = false, wait_ok = false;
  Universe::launch(cfg, [&](Comm& world) {
    if (world.rank() != 0) return;
    for (const auto& r : world.pvars()->snapshot()) {
      if (r.name == "coll.hier.single_copy") {
        copies_ok =
            r.cls == PvarClass::kCounter && r.unit == PvarUnit::kNone;
      } else if (r.name == "coll.hier.single_copy_bytes") {
        bytes_ok =
            r.cls == PvarClass::kCounter && r.unit == PvarUnit::kBytes;
      } else if (r.name == "coll.hier.flag_wait_ns") {
        wait_ok =
            r.cls == PvarClass::kTimer && r.unit == PvarUnit::kNanoseconds;
      }
    }
  });
  EXPECT_TRUE(copies_ok) << "coll.hier.single_copy: counter, no unit";
  EXPECT_TRUE(bytes_ok) << "coll.hier.single_copy_bytes: counter, bytes";
  EXPECT_TRUE(wait_ok) << "coll.hier.flag_wait_ns: timer, nanoseconds";
}

// --- Wait-state classifier --------------------------------------------------

TEST(WaitStateTest, BarrierSkewChargedToEarlyRanks) {
  PvarRegistry reg(3);
  WaitState ws(reg);
  const std::vector<int> group{0, 1, 2};
  ws.coll_entry(0, group, 0, 100);
  ws.coll_entry(0, group, 1, 250);
  EXPECT_EQ(reg.total(reg.find("waitstate.wait_at_barrier_ns")), 0);
  ws.coll_entry(0, group, 2, 400);  // last arriver resolves the board
  const PvarId ns = reg.find("waitstate.wait_at_barrier_ns");
  const PvarId cnt = reg.find("waitstate.wait_at_barrier");
  EXPECT_EQ(reg.read(ns, 0), 300);
  EXPECT_EQ(reg.read(ns, 1), 150);
  EXPECT_EQ(reg.read(ns, 2), 0);
  EXPECT_EQ(reg.read(cnt, 0), 1);
  EXPECT_EQ(reg.read(cnt, 1), 1);
  EXPECT_EQ(reg.read(cnt, 2), 0);
  // A second collective on the same communicator opens a fresh board.
  ws.coll_entry(0, group, 2, 1000);
  ws.coll_entry(0, group, 1, 1000);
  ws.coll_entry(0, group, 0, 1010);
  EXPECT_EQ(reg.read(ns, 1), 150 + 10);
  EXPECT_EQ(reg.read(ns, 2), 10);
}

UniverseConfig det_pvars_config(int ranks) {
  UniverseConfig cfg;
  cfg.world_size = ranks;
  cfg.deterministic_clock = true;
  cfg.obs = ObsConfig{};  // discard env so the test is hermetic
  cfg.obs.pvars = true;
  return cfg;
}

TEST(WaitStateTest, PostedReceiveClassifiesAsLateSender) {
  // The receive is posted at virtual time ~0; the data cannot arrive
  // before the modelled hop latency, so the receiver idles: late sender.
  UniverseConfig cfg = det_pvars_config(2);
  std::int64_t ls = -1, ls_ns = -1, lr = -1;
  Universe::launch(cfg, [&](Comm& world) {
    char b = 0;
    if (world.rank() == 0) {
      world.send(&b, sizeof(b), 1, 7);
    } else {
      world.recv(&b, sizeof(b), 0, 7);
      PvarRegistry& reg = *world.pvars();
      ls = reg.read(reg.find("waitstate.late_sender"), 1);
      ls_ns = reg.read(reg.find("waitstate.late_sender_ns"), 1);
      lr = reg.total(reg.find("waitstate.late_receiver"));
    }
  });
  EXPECT_EQ(ls, 1);
  EXPECT_GT(ls_ns, 0);
  EXPECT_EQ(lr, 0);
}

TEST(WaitStateTest, UnexpectedMessageClassifiesAsLateReceiver) {
  // Rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 first. Same-pair
  // FIFO link occupancy delivers tag 2 strictly after tag 1 (one node per
  // rank so each eager payload really serializes onto the wire), and the
  // tag-2 completion advances rank 1's virtual clock past the parked
  // tag-1 message's arrival: when its receive is finally posted the data
  // has been sitting in the unexpected queue — late receiver.
  UniverseConfig cfg = det_pvars_config(2);
  cfg.fabric.ranks_per_node = 1;
  std::int64_t lr = -1, lr_ns = -1;
  Universe::launch(cfg, [&](Comm& world) {
    std::vector<char> b(4096, 'x');
    if (world.rank() == 0) {
      world.send(b.data(), b.size(), 1, 1);
      world.send(b.data(), b.size(), 1, 2);
    } else {
      world.recv(b.data(), b.size(), 0, 2);
      world.recv(b.data(), b.size(), 0, 1);
      PvarRegistry& reg = *world.pvars();
      lr = reg.read(reg.find("waitstate.late_receiver"), 1);
      lr_ns = reg.read(reg.find("waitstate.late_receiver_ns"), 1);
    }
  });
  EXPECT_EQ(lr, 1);
  EXPECT_GT(lr_ns, 0);
}

TEST(WaitStateTest, CollectiveEntrySkewChargedInJob) {
  // Ranks 0 and 1 exchange a message before the barrier (their virtual
  // clocks advance past the hop latency); ranks 2 and 3 enter at ~0 and
  // absorb the skew as wait-at-barrier time.
  UniverseConfig cfg = det_pvars_config(4);
  std::int64_t skew_cnt = -1, skew_ns = -1;
  Universe::launch(cfg, [&](Comm& world) {
    char b = 0;
    if (world.rank() == 0) world.send(&b, sizeof(b), 1, 3);
    if (world.rank() == 1) world.recv(&b, sizeof(b), 0, 3);
    world.barrier();
    if (world.rank() == 0) {
      PvarRegistry& reg = *world.pvars();
      skew_cnt = reg.total(reg.find("waitstate.wait_at_barrier"));
      skew_ns = reg.total(reg.find("waitstate.wait_at_barrier_ns"));
    }
  });
  EXPECT_GE(skew_cnt, 2);  // at least the two idle ranks were early
  EXPECT_GT(skew_ns, 0);
}

TEST(WaitStateTest, TransportHistogramsCollectSamples) {
  UniverseConfig cfg = det_pvars_config(2);
  cfg.eager_limit = 64;
  std::int64_t wait_n = -1, eager_n = -1, rndv_n = -1, eager_p100 = -1;
  Universe::launch(cfg, [&](Comm& world) {
    std::vector<char> small(16, 'x'), large(256, 'y');
    if (world.rank() == 0) {
      for (int i = 0; i < 3; ++i)
        world.send(small.data(), small.size(), 1, 7);
      world.send(large.data(), large.size(), 1, 7);
      char ack = 0;
      world.recv(&ack, sizeof(ack), 1, 8);
      PvarRegistry& reg = *world.pvars();
      wait_n = reg.total(reg.find("hist.wait"));
      eager_n = reg.read(reg.find("hist.eager_send"), 0);
      rndv_n = reg.read(reg.find("hist.rndv_send"), 0);
      eager_p100 = reg.hist_total(reg.find("hist.eager_send")).percentile(100);
    } else {
      std::vector<char> buf(256);
      for (int i = 0; i < 4; ++i)
        world.recv(buf.data(), buf.size(), 0, 7);
      const char ack = 1;
      world.send(&ack, sizeof(ack), 0, 8);
    }
  });
  EXPECT_GT(wait_n, 0);
  EXPECT_EQ(eager_n, 3);  // latency charged to the sending rank
  EXPECT_EQ(rndv_n, 1);
  EXPECT_GT(eager_p100, 0);  // eager latency includes the modelled hop
}

// --- Communication matrix ---------------------------------------------------

TEST(CommMatrixTest, RecordsPairsAndRendersTables) {
  CommMatrix m(3);
  m.record(0, 1, 64);
  m.record(0, 1, 64);
  m.record(2, 0, 128);
  EXPECT_EQ(m.msgs(0, 1), 2);
  EXPECT_EQ(m.bytes(0, 1), 128);
  EXPECT_EQ(m.msgs(1, 0), 0);
  const Table pairs = m.to_pairs_table();
  ASSERT_EQ(pairs.rows(), 2u);  // only nonzero pairs
  EXPECT_EQ(pairs.data()[0],
            (std::vector<std::string>{"0", "1", "2", "128"}));
  EXPECT_EQ(pairs.data()[1],
            (std::vector<std::string>{"2", "0", "1", "128"}));
  m.reset();
  EXPECT_EQ(m.msgs(0, 1), 0);
  EXPECT_EQ(m.to_pairs_table().rows(), 0u);
}

TEST(CommMatrixTest, RingExchangeProducesSymmetricCsv) {
  const std::string csv = testing::TempDir() + "matrix.csv";
  UniverseConfig cfg = det_pvars_config(4);
  cfg.obs.comm_matrix = true;
  cfg.obs.comm_matrix_csv = csv;
  Universe::launch(cfg, [&](Comm& world) {
    const int n = world.size();
    const int next = (world.rank() + 1) % n;
    const int prev = (world.rank() + n - 1) % n;
    std::vector<char> out(32, 'z'), in(32);
    minimpi::Request r = world.irecv(in.data(), in.size(), prev, 5);
    world.send(out.data(), out.size(), next, 5);
    r.wait();
    // The sender thread records its own deliveries, so this rank's own
    // outgoing pair is visible immediately.
    ASSERT_NE(world.recorder(), nullptr);
    const CommMatrix* m = world.recorder()->matrix();
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->msgs(world.rank(), next), 1);
    EXPECT_EQ(m->bytes(world.rank(), next), 32);
  });
  // The finalize CSV has every pair; the ring is symmetric under
  // rotation: each rank sent exactly one 32-byte message to its
  // successor and nothing anywhere else.
  std::ifstream f(csv);
  ASSERT_TRUE(f.good()) << "missing " << csv;
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_EQ(line, "src,dst,msgs,bytes");
  std::map<std::pair<int, int>, std::pair<int, int>> got;
  while (std::getline(f, line)) {
    int src, dst, msgs, bytes;
    ASSERT_EQ(std::sscanf(line.c_str(), "%d,%d,%d,%d", &src, &dst, &msgs,
                          &bytes),
              4)
        << line;
    got[{src, dst}] = {msgs, bytes};
  }
  ASSERT_EQ(got.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const auto it = got.find({r, (r + 1) % 4});
    ASSERT_TRUE(it != got.end()) << "missing pair " << r;
    EXPECT_EQ(it->second.first, 1);
    EXPECT_EQ(it->second.second, 32);
  }
}

// --- Machine-readable pvar dump ---------------------------------------------

TEST(PvarsJsonTest, DumpParsesAndCarriesHistogramsAndMatrix) {
  const std::string path = testing::TempDir() + "pvars.json";
  UniverseConfig cfg = det_pvars_config(2);
  cfg.obs.comm_matrix = true;
  cfg.obs.pvars_json_path = path;
  Universe::launch(cfg, [&](Comm& world) {
    char b = 0;
    if (world.rank() == 0) {
      world.send(&b, sizeof(b), 1, 7);
    } else {
      world.recv(&b, sizeof(b), 0, 7);
    }
  });
  const Json root = JsonParser(slurp(path)).parse();
  ASSERT_EQ(root.kind, Json::kObj);
  EXPECT_EQ(static_cast<int>(root.at("ranks").number), 2);
  const Json& pvars = root.at("pvars");
  ASSERT_EQ(pvars.kind, Json::kArr);
  bool saw_sent = false;
  for (const Json& p : pvars.arr) {
    if (p.at("name").str != "mpi.msgs_sent") continue;
    saw_sent = true;
    EXPECT_EQ(p.at("class").str, "counter");
    ASSERT_EQ(p.at("values").arr.size(), 2u);
    EXPECT_EQ(static_cast<int>(p.at("values").arr[0].number), 1);
    EXPECT_EQ(static_cast<int>(p.at("total").number), 1);
  }
  EXPECT_TRUE(saw_sent);
  const Json& hists = root.at("histograms");
  ASSERT_EQ(hists.kind, Json::kArr);
  bool saw_wait = false;
  for (const Json& h : hists.arr) {
    if (h.at("name").str != "hist.wait") continue;
    saw_wait = true;
    EXPECT_EQ(h.at("unit").str, "ns");
    EXPECT_GE(h.at("count").number, 1.0);
    EXPECT_GE(h.at("max").number, h.at("p50").number);
  }
  EXPECT_TRUE(saw_wait);
  const Json& matrix = root.at("comm_matrix");
  ASSERT_EQ(matrix.kind, Json::kArr);
  ASSERT_EQ(matrix.arr.size(), 1u);
  EXPECT_EQ(static_cast<int>(matrix.arr[0].at("src").number), 0);
  EXPECT_EQ(static_cast<int>(matrix.arr[0].at("dst").number), 1);
  EXPECT_EQ(static_cast<int>(matrix.arr[0].at("msgs").number), 1);
}

// --- Flight recorder --------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndReportsInvolvedRanks) {
  FlightRecorder fr(8, 3);
  EXPECT_TRUE(fr.on());
  EXPECT_TRUE(fr.empty());
  fr.record(0, {100, 64, 1, 7, FlightKind::kEagerSend});
  fr.record(1, {150, 64, 0, 7, FlightKind::kMatch});
  fr.record(1, {900, 3, 0, -1, FlightKind::kTimeout});
  EXPECT_FALSE(fr.empty());
  const auto evs = fr.events(1);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, FlightKind::kMatch);
  EXPECT_EQ(evs[1].vtime_ns, 900);
  const std::string rep = fr.report();
  EXPECT_NE(rep.find("involved ranks: 0 1"), std::string::npos);
  EXPECT_NE(rep.find("rank 0:"), std::string::npos);
  EXPECT_NE(rep.find("eager_send"), std::string::npos);
  EXPECT_NE(rep.find("timeout"), std::string::npos);
  EXPECT_NE(rep.find("seq=3"), std::string::npos);
  EXPECT_EQ(rep.find("rank 2:"), std::string::npos);  // recorded nothing
  fr.clear();
  EXPECT_TRUE(fr.empty());
  EXPECT_TRUE(fr.report().empty());
}

TEST(FlightRecorderTest, OverflowKeepsTheMostRecentEvents) {
  FlightRecorder fr(2, 1);
  for (std::int64_t i = 0; i < 5; ++i)
    fr.record(0, {i, 0, -1, -1, FlightKind::kPost});
  const auto evs = fr.events(0);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].vtime_ns, 3);
  EXPECT_EQ(evs[1].vtime_ns, 4);
}

TEST(FlightRecorderTest, ZeroCapacityDisablesRecording) {
  FlightRecorder fr(0, 4);
  EXPECT_FALSE(fr.on());
  fr.record(0, {1, 0, -1, -1, FlightKind::kKill});
  EXPECT_TRUE(fr.empty());
  EXPECT_TRUE(fr.events(0).empty());
  EXPECT_TRUE(fr.report().empty());
}

// --- path_with_tag (used by fig11 and per-series trace naming) --------------

TEST(PathWithTagTest, InsertsBeforeExtension) {
  EXPECT_EQ(path_with_tag("results/fig11.csv", "overhead"),
            "results/fig11.overhead.csv");
  EXPECT_EQ(path_with_tag("trace.json", "mv2j_buffer"),
            "trace.mv2j_buffer.json");
  EXPECT_EQ(path_with_tag("noext", "t"), "noext.t");
  EXPECT_EQ(path_with_tag("dir.v2/noext", "t"), "dir.v2/noext.t");
  EXPECT_EQ(path_with_tag(".hidden", "t"), ".hidden.t");
}

}  // namespace
}  // namespace jhpc::obs
