// Paper Figure 7: intra-node osu_bw, small messages. The Open MPI-J
// arrays series is absent (no Java arrays with non-blocking p2p) — this
// binary reproduces that as an "n/a" column.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig07";
  fig.title = "Intra-node bandwidth, small messages (paper Fig. 7)";
  fig.kind = BenchKind::kBandwidth;
  fig.ranks = 2;
  fig.ppn = 0;
  small_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
