// jhpcd service-mode throughput benchmark: how many short MPI jobs per
// minute one resident fleet sustains, with bounded memory.
//
// Two phases over REAL wall time:
//
//   short — a stream of world-2 single-pingpong jobs pushed through the
//           scheduler as fast as submit() admits them. This is the
//           steady-state churn the Universe pool and the shared slab
//           depot exist for: at rate, every job reuses a parked
//           Universe and warm slabs, so the fleet allocates nothing.
//           Summarised as bootstrap mean jobs/min with a 95% CI; the
//           --min-jobs-per-min floor (CI uses 10000) fails the run when
//           throughput regresses.
//   mixed — latency-class pingpongs submitted WHILE bandwidth-class
//           hogs (32 x 64 KiB exchanges) saturate the workers. Reports
//           mean queue wait per class: the weighted round-robin keeps
//           the latency class's wait near the hogs' service time, not
//           near the whole backlog.
//
// The JSON also records the depot high-water mark against its ceiling —
// the bounded-memory evidence EXPERIMENTS.md points at.
//
// Usage: bench_service [--quick] [--json PATH] [--min-jobs-per-min N]
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jhpc/jhpcd/jhpcd.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/stats.hpp"

namespace {

using jhpc::jhpcd::JobClass;
using jhpc::jhpcd::JobHandle;
using jhpc::jhpcd::JobManager;
using jhpc::jhpcd::JobResult;
using jhpc::jhpcd::JobSpec;
using jhpc::jhpcd::JobState;
using jhpc::jhpcd::ServiceConfig;
using jhpc::jhpcd::ServiceStats;
using jhpc::minimpi::Comm;

struct Result {
  std::string mode;  // "short" or "mixed"
  int jobs = 0;      // per sample
  int samples = 0;
  double seconds = 0.0;       // mean wall seconds per sample
  double jobs_per_min = 0.0;  // bootstrap mean (short mode)
  double jobs_per_min_lo = 0.0;
  double jobs_per_min_hi = 0.0;
  double latency_wait_us = 0.0;    // mixed mode: mean queue wait per class
  double bandwidth_wait_us = 0.0;
};

JobSpec short_job(int i) {
  JobSpec spec;
  spec.name = "s" + std::to_string(i);
  spec.config.world_size = 2;
  spec.rank_main = [](Comm& world) {
    std::int32_t x = 0;
    if (world.rank() == 0) {
      world.send(&x, sizeof(x), 1, 1);
      world.recv(&x, sizeof(x), 1, 1);
    } else {
      world.recv(&x, sizeof(x), 0, 1);
      world.send(&x, sizeof(x), 0, 1);
    }
  };
  return spec;
}

JobSpec hog_job(int i) {
  JobSpec spec;
  spec.name = "h" + std::to_string(i);
  spec.config.world_size = 2;
  spec.job_class = JobClass::kBandwidth;
  spec.rank_main = [](Comm& world) {
    std::vector<std::byte> buf(64 * 1024);
    for (int r = 0; r < 32; ++r) {
      if (world.rank() == 0) {
        world.send(buf.data(), buf.size(), 1, 2);
        world.recv(buf.data(), buf.size(), 1, 2);
      } else {
        world.recv(buf.data(), buf.size(), 0, 2);
        world.send(buf.data(), buf.size(), 0, 2);
      }
    }
  };
  return spec;
}

/// One short-mode sample: push `jobs` jobs through the resident manager
/// and await them all. Returns wall seconds.
double run_short_sample(JobManager& mgr, int jobs) {
  std::vector<JobHandle> handles;
  handles.reserve(static_cast<std::size_t>(jobs));
  const std::int64_t t0 = jhpc::now_ns();
  for (int i = 0; i < jobs; ++i) {
    handles.push_back(mgr.submit(short_job(i)));
  }
  int failed = 0;
  for (auto& h : handles) {
    if (h.await().state != JobState::kCompleted) ++failed;
  }
  const double secs = static_cast<double>(jhpc::now_ns() - t0) * 1e-9;
  if (failed > 0) {
    std::fprintf(stderr, "[bench_service] WARNING: %d short jobs failed\n",
                 failed);
  }
  return secs;
}

std::string fmt(double v) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.3f", v);
  return out;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                double jobs_per_min, double floor, const ServiceStats& stats,
                std::size_t depot_max_bytes) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"service\",\n";
  os << "  \"schema\": 2,\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"jobs\": " << r.jobs
       << ", \"samples\": " << r.samples
       << ", \"seconds\": " << fmt(r.seconds)
       << ", \"jobs_per_min\": " << fmt(r.jobs_per_min)
       << ", \"jobs_per_min_lo\": " << fmt(r.jobs_per_min_lo)
       << ", \"jobs_per_min_hi\": " << fmt(r.jobs_per_min_hi)
       << ", \"latency_wait_us\": " << fmt(r.latency_wait_us)
       << ", \"bandwidth_wait_us\": " << fmt(r.bandwidth_wait_us) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"jobs_per_min\": " << fmt(jobs_per_min) << ",\n";
  os << "  \"floor_jobs_per_min\": " << fmt(floor) << ",\n";
  os << "  \"universes_created\": " << stats.universes_created << ",\n";
  os << "  \"universes_reused\": " << stats.universes_reused << ",\n";
  os << "  \"depot_hwm_bytes\": " << stats.depot.hwm_bytes << ",\n";
  os << "  \"depot_max_bytes\": " << depot_max_bytes << "\n}\n";
  std::ofstream f(path);
  f << os.str();
  std::fprintf(stderr, "[bench_service] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_service.json";
  double min_jobs_per_min = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--min-jobs-per-min" && i + 1 < argc) {
      min_jobs_per_min = std::stod(argv[++i]);
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--quick] [--json PATH] [--min-jobs-per-min N]\n",
          argv[0]);
      return 2;
    }
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 4096;
  cfg.pool_capacity = 8;
  cfg.depot_max_bytes = 64u << 20;
  // Tens of thousands of jobs per run: the per-job pvar namespaces
  // would only burn registry capacity.
  cfg.per_job_pvars = false;
  JobManager mgr(cfg);

  const int samples = quick ? 3 : 5;
  const int jobs_per_sample = quick ? 300 : 2000;
  const int warmup_jobs = quick ? 50 : 200;

  std::vector<Result> results;

  // --- short: steady-state churn throughput ------------------------------
  run_short_sample(mgr, warmup_jobs);  // warm the pool and the depot
  Result shortr;
  shortr.mode = "short";
  shortr.jobs = jobs_per_sample;
  shortr.samples = samples;
  std::vector<double> rates;
  double total_secs = 0.0;
  for (int k = 0; k < samples; ++k) {
    const double secs = run_short_sample(mgr, jobs_per_sample);
    total_secs += secs;
    rates.push_back(secs > 0 ? 60.0 * jobs_per_sample / secs : 0.0);
  }
  const jhpc::BootstrapCI ci = jhpc::bootstrap_ci(rates);
  shortr.seconds = total_secs / samples;
  shortr.jobs_per_min = ci.mean;
  shortr.jobs_per_min_lo = ci.lo;
  shortr.jobs_per_min_hi = ci.hi;
  results.push_back(shortr);
  std::fprintf(stderr,
               "[bench_service] short: %10.0f jobs/min [%.0f, %.0f] "
               "(%d jobs x %d samples)\n",
               ci.mean, ci.lo, ci.hi, jobs_per_sample, samples);

  // --- mixed: latency-class wait under bandwidth hogs --------------------
  Result mixed;
  mixed.mode = "mixed";
  mixed.samples = 1;
  const int hogs = quick ? 6 : 16;
  const int lats = quick ? 30 : 100;
  mixed.jobs = hogs + lats;
  {
    std::vector<JobHandle> hog_handles, lat_handles;
    const std::int64_t t0 = jhpc::now_ns();
    for (int i = 0; i < hogs; ++i) hog_handles.push_back(mgr.submit(hog_job(i)));
    for (int i = 0; i < lats; ++i) {
      JobSpec spec = short_job(i);
      spec.job_class = JobClass::kLatency;
      lat_handles.push_back(mgr.submit(spec));
    }
    double lat_wait = 0.0, hog_wait = 0.0;
    for (auto& h : lat_handles) lat_wait += h.await().queue_wait_ns;
    for (auto& h : hog_handles) hog_wait += h.await().queue_wait_ns;
    mixed.seconds = static_cast<double>(jhpc::now_ns() - t0) * 1e-9;
    mixed.latency_wait_us = lat_wait / lats / 1e3;
    mixed.bandwidth_wait_us = hog_wait / hogs / 1e3;
  }
  results.push_back(mixed);
  std::fprintf(stderr,
               "[bench_service] mixed: latency wait %.0f us vs bandwidth "
               "wait %.0f us (%d hogs, %d latency jobs)\n",
               mixed.latency_wait_us, mixed.bandwidth_wait_us, hogs, lats);

  mgr.drain();
  const ServiceStats stats = mgr.stats();
  std::fprintf(stderr,
               "[bench_service] fleet: %llu universes created, %llu reused; "
               "depot hwm %llu / %zu bytes\n",
               static_cast<unsigned long long>(stats.universes_created),
               static_cast<unsigned long long>(stats.universes_reused),
               static_cast<unsigned long long>(stats.depot.hwm_bytes),
               cfg.depot_max_bytes);
  write_json(json_path, results, shortr.jobs_per_min, min_jobs_per_min, stats,
             cfg.depot_max_bytes);

  if (stats.depot.hwm_bytes > cfg.depot_max_bytes) {
    std::fprintf(stderr,
                 "[bench_service] FAIL: depot high-water mark exceeded the "
                 "ceiling\n");
    return 1;
  }
  if (min_jobs_per_min > 0 && shortr.jobs_per_min < min_jobs_per_min) {
    std::fprintf(stderr,
                 "[bench_service] FAIL: %.0f jobs/min is below the floor of "
                 "%.0f\n",
                 shortr.jobs_per_min, min_jobs_per_min);
    return 1;
  }
  return 0;
}
