// Ablation: the two native collective-algorithm suites head to head, per
// collective, with no Java layer. This isolates the cause the paper
// assigns to its Figures 14-17 gaps: "performance differences in the
// native MPI libraries".
#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  int rc = 0;
  for (const BenchKind kind :
       {BenchKind::kBcast, BenchKind::kReduce, BenchKind::kAllreduce,
        BenchKind::kGather, BenchKind::kScatter, BenchKind::kAllgather,
        BenchKind::kAlltoall}) {
    FigureSpec fig;
    fig.id = std::string("abl_coll_") + bench_name(kind);
    fig.title = std::string("native suite ablation: osu_") +
                bench_name(kind) + ", 16 ranks x 4 nodes";
    fig.kind = kind;
    fig.ranks = 16;
    fig.ppn = 4;
    fig.options.min_size = 4;
    fig.options.max_size = 256 * 1024;  // alltoall allocates size*ranks
    fig.options.iters_small = 60;
    fig.options.iters_large = 10;
    fig.series = {{Library::kNativeMv2, Api::kBuffer, "mv2 suite"},
                  {Library::kNativeOmpi, Api::kBuffer, "basic suite"}};
    fig.ratios = {{"basic suite", "mv2 suite"}};
    rc |= figure_main(std::move(fig), argc, argv);
    std::cout << "\n";
  }
  return rc;
}
