// Paper Figure 13: inter-node osu_bw, large messages (both buffer series
// approach the fabric's line rate).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig13";
  fig.title = "Inter-node bandwidth, large messages (paper Fig. 13)";
  fig.kind = BenchKind::kBandwidth;
  fig.ranks = 2;
  fig.ppn = 1;
  large_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
