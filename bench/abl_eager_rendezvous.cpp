// Ablation: the eager/rendezvous protocol switch. Sweeps the eager limit
// and shows the latency knee moving with it — the classic MPI tuning
// trade-off (eager buys latency via buffering, rendezvous buys memory
// safety and zero-copy for large payloads).
#include <iostream>
#include <string>

#include "jhpc/minimpi/universe.hpp"
#include "jhpc/ombj/benchmarks.hpp"
#include "jhpc/support/sizes.hpp"
#include "jhpc/support/table.hpp"

int main(int argc, char** argv) {
  using namespace jhpc;
  using namespace jhpc::ombj;
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  BenchOptions opt;
  opt.min_size = 1024;
  opt.max_size = 256 * 1024;
  opt.iters_small = quick ? 30 : 150;
  opt.warmup_small = quick ? 3 : 15;
  opt.iters_large = quick ? 10 : 40;
  opt.warmup_large = quick ? 2 : 5;

  const std::size_t kLimits[] = {1024, 16 * 1024, 256 * 1024};
  std::vector<std::string> headers{"Size"};
  for (const auto limit : kLimits)
    headers.push_back("eager<=" + format_size(limit) + " us");
  Table table(headers);

  std::vector<std::vector<ResultRow>> runs;
  for (const auto limit : kLimits) {
    minimpi::UniverseConfig cfg;
    cfg.world_size = 2;
    cfg.fabric.ranks_per_node = 1;  // inter-node: the protocols differ most
    cfg.eager_limit = limit;
    std::vector<ResultRow> rows;
    minimpi::Universe::launch(cfg, [&](minimpi::Comm& world) {
      auto r = run_latency_native(world, opt);
      if (world.rank() == 0) rows = std::move(r);
    });
    runs.push_back(std::move(rows));
  }

  std::cout << "== abl_eager_rendezvous: inter-node latency vs eager limit "
               "(native, 2 ranks) ==\n";
  for (std::size_t r = 0; r < runs[0].size(); ++r) {
    std::vector<std::string> row{format_size(runs[0][r].size)};
    for (const auto& run : runs) row.push_back(fmt_double(run[r].value, 2));
    table.add_row(std::move(row));
  }
  std::cout << table.to_text()
            << "note: sizes above the eager limit rendezvous (extra "
               "handshake, sender blocks until the receive is posted).\n";
  return 0;
}
