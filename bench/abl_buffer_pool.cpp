// Ablation (google-benchmark): why the buffering layer pools its direct
// ByteBuffers — acquiring staging storage from the pool vs allocating a
// fresh direct buffer per message ("avoids the overhead of creating a
// ByteBuffer every time a message ... is communicated", Section IV-A).
#include <benchmark/benchmark.h>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"

namespace {

using jhpc::minijvm::ByteBuffer;

void BM_PooledAcquireRelease(benchmark::State& state) {
  jhpc::mpjbuf::BufferFactory factory;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    jhpc::mpjbuf::Buffer b = factory.get(n);
    benchmark::DoNotOptimize(b.native_address());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PooledAcquireRelease)->Range(1 << 10, 4 << 20);

void BM_FreshDirectAllocation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ByteBuffer b = ByteBuffer::allocate_direct(n);
    benchmark::DoNotOptimize(b.storage_address(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FreshDirectAllocation)->Range(1 << 10, 4 << 20);

}  // namespace

BENCHMARK_MAIN();
