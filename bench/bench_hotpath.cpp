// Real wall-clock hot-path benchmark for the minimpi transport.
//
// Unlike the fig* binaries (which report *virtual* time on the simulated
// cluster), this harness measures how many real messages per second the
// transport moves on the host — the number the zero-allocation eager fast
// path exists to raise, and the repo's perf-regression tripwire
// (BENCH_hotpath.json). Two patterns, both well under the eager limit:
//
//   pingpong  — OSU-latency-style strict alternation (scheduler-bound on
//               an oversubscribed host; reported for completeness)
//   stream    — mbw_mr-style windowed streaming: the sender pushes a
//               window of eager messages, the receiver drains it and
//               acks. Sender-side per-message cost dominates, which is
//               exactly where the slab recycler and the matched-receive
//               fast path live.
//
// Each pattern runs in two universe configurations:
//   real — default clock (per-thread CPU passthrough feeds the virtual
//          clock, as the fig benches run)
//   det  — deterministic_clock=true (no CPU sampling: the pure software
//          path, the most repeatable view of transport overhead)
//
// allocations/op comes from a separate short instrumented pass that reads
// the transport.slab.* pvars (absent on pre-slab builds: reported as -1).
//
// Usage: bench_hotpath [--quick] [--json PATH] [--baseline PATH]
//                      [--min-msgs-per-sec N]
// Exit status is non-zero when the best stream rate is below the floor
// (CI catches order-of-magnitude regressions only, not noise).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/pvar.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/stats.hpp"

namespace {

using jhpc::minimpi::Comm;
using jhpc::minimpi::Status;
using jhpc::minimpi::Universe;
using jhpc::minimpi::UniverseConfig;

constexpr int kTag = 7;
constexpr int kAckTag = 8;
constexpr int kWindow = 64;

struct Result {
  std::string pattern;
  std::string mode;  // "real" or "det"
  std::size_t size = 0;
  std::uint64_t messages = 0;  // per sample
  int samples = 0;
  double seconds = 0.0;  // total across samples
  double msgs_per_sec = 0.0;  // bootstrap mean over per-sample rates
  double msgs_per_sec_lo = 0.0;  // 95% bootstrap CI
  double msgs_per_sec_hi = 0.0;
  double allocs_per_op = -1.0;  // -1: slab pvars unavailable
};

UniverseConfig base_config(bool det, bool pvars) {
  UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.deterministic_clock = det;
  cfg.obs.pvars = pvars;
  cfg.obs.trace_path.clear();
  return cfg;
}

/// One ping-pong run: rank 0 sends and awaits the echo. Returns wall
/// seconds spent on `iters` round trips (2*iters messages).
double run_pingpong(Universe& u, std::size_t size, int warmup, int iters) {
  std::int64_t wall_ns = 0;
  u.run([&](Comm& world) {
    std::vector<std::byte> buf(size == 0 ? 1 : size);
    const int me = world.rank();
    const int peer = 1 - me;
    for (int i = 0; i < warmup; ++i) {
      if (me == 0) {
        world.send(buf.data(), size, peer, kTag);
        world.recv(buf.data(), size, peer, kTag);
      } else {
        world.recv(buf.data(), size, peer, kTag);
        world.send(buf.data(), size, peer, kTag);
      }
    }
    world.barrier();
    const std::int64_t t0 = jhpc::now_ns();
    for (int i = 0; i < iters; ++i) {
      if (me == 0) {
        world.send(buf.data(), size, peer, kTag);
        world.recv(buf.data(), size, peer, kTag);
      } else {
        world.recv(buf.data(), size, peer, kTag);
        world.send(buf.data(), size, peer, kTag);
      }
    }
    world.barrier();
    if (me == 0) wall_ns = jhpc::now_ns() - t0;
  });
  return static_cast<double>(wall_ns) * 1e-9;
}

/// One streaming run: rank 0 fires kWindow eager sends per window, rank 1
/// drains them with blocking receives and acks the window. Returns wall
/// seconds for `windows` windows (kWindow*windows messages).
double run_stream(Universe& u, std::size_t size, int warmup, int windows) {
  std::int64_t wall_ns = 0;
  u.run([&](Comm& world) {
    std::vector<std::byte> buf(size == 0 ? 1 : size);
    std::byte ack{};
    const int me = world.rank();
    const int peer = 1 - me;
    auto window = [&] {
      if (me == 0) {
        for (int m = 0; m < kWindow; ++m)
          world.send(buf.data(), size, peer, kTag);
        world.recv(&ack, 1, peer, kAckTag);
      } else {
        for (int m = 0; m < kWindow; ++m)
          world.recv(buf.data(), size, peer, kTag);
        world.send(&ack, 1, peer, kAckTag);
      }
    };
    for (int w = 0; w < warmup; ++w) window();
    world.barrier();
    const std::int64_t t0 = jhpc::now_ns();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0) wall_ns = jhpc::now_ns() - t0;
  });
  return static_cast<double>(wall_ns) * 1e-9;
}

/// Instrumented pass: steady-state slab misses per message, read from the
/// transport.slab.misses pvar across a measured streaming phase. Returns
/// -1 when the pvar does not exist (pre-slab transport).
double measure_allocs_per_op(std::size_t size, int windows) {
  double allocs = -1.0;
  Universe u(base_config(/*det=*/true, /*pvars=*/true));
  u.run([&](Comm& world) {
    std::vector<std::byte> buf(size == 0 ? 1 : size);
    std::byte ack{};
    const int me = world.rank();
    const int peer = 1 - me;
    auto window = [&] {
      if (me == 0) {
        for (int m = 0; m < kWindow; ++m)
          world.send(buf.data(), size, peer, kTag);
        world.recv(&ack, 1, peer, kAckTag);
      } else {
        for (int m = 0; m < kWindow; ++m)
          world.recv(buf.data(), size, peer, kTag);
        world.send(&ack, 1, peer, kAckTag);
      }
    };
    // Warm the slab free lists, then measure the steady state.
    for (int w = 0; w < 4; ++w) window();
    world.barrier();
    jhpc::obs::PvarRegistry* reg = world.pvars();
    const jhpc::obs::PvarId misses =
        reg != nullptr ? reg->find("transport.slab.misses")
                       : jhpc::obs::PvarId{};
    const std::int64_t m1 = reg != nullptr ? reg->total(misses) : 0;
    world.barrier();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0 && reg != nullptr && misses.valid()) {
      const std::int64_t m2 = reg->total(misses);
      allocs = static_cast<double>(m2 - m1) /
               (static_cast<double>(windows) * kWindow);
    }
  });
  return allocs;
}

std::string json_escape_free(double v) {
  // JSON has no NaN/Inf; the harness never produces them, but be safe.
  char out[64];
  std::snprintf(out, sizeof(out), "%.3f", v);
  return out;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                const std::string& baseline_blob) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"hotpath\",\n";
  os << "  \"schema\": 2,\n";
  os << "  \"window\": " << kWindow << ",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"pattern\": \"" << r.pattern << "\", \"mode\": \"" << r.mode
       << "\", \"size\": " << r.size << ", \"messages\": " << r.messages
       << ", \"samples\": " << r.samples
       << ", \"seconds\": " << json_escape_free(r.seconds)
       << ", \"msgs_per_sec\": " << json_escape_free(r.msgs_per_sec)
       << ", \"msgs_per_sec_lo\": " << json_escape_free(r.msgs_per_sec_lo)
       << ", \"msgs_per_sec_hi\": " << json_escape_free(r.msgs_per_sec_hi)
       << ", \"allocs_per_op\": " << json_escape_free(r.allocs_per_op)
       << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!baseline_blob.empty()) {
    os << ",\n  \"baseline\": " << baseline_blob;
  }
  os << "\n}\n";
  std::ofstream f(path);
  f << os.str();
  std::fprintf(stderr, "[bench_hotpath] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_hotpath.json";
  std::string baseline_path;
  double floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (a == "--min-msgs-per-sec" && i + 1 < argc) {
      floor = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--baseline PATH] "
                   "[--min-msgs-per-sec N]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<std::size_t> sizes = {8, 128, 1024, 8192};
  // Each configuration is sampled repeatedly and summarised as a
  // bootstrap mean with a 95% CI (see jhpc::bootstrap_ci), so the JSON
  // carries an honest noise estimate instead of a single shot.
  const int samples = quick ? 3 : 5;
  const int pp_iters = quick ? 700 : 4000;
  const int pp_warmup = quick ? 100 : 800;
  const int st_windows = quick ? 50 : 300;
  const int st_warmup = quick ? 10 : 50;

  std::vector<Result> results;
  double best_stream = 0.0;
  for (const bool det : {false, true}) {
    const char* mode = det ? "det" : "real";
    Universe u(base_config(det, /*pvars=*/false));
    for (const std::size_t size : sizes) {
      {
        Result r;
        r.pattern = "pingpong";
        r.mode = mode;
        r.size = size;
        r.messages = static_cast<std::uint64_t>(pp_iters) * 2;
        r.samples = samples;
        std::vector<double> rates;
        for (int s = 0; s < samples; ++s) {
          const double secs =
              run_pingpong(u, size, s == 0 ? pp_warmup : 0, pp_iters);
          r.seconds += secs;
          rates.push_back(
              secs > 0 ? static_cast<double>(r.messages) / secs : 0);
        }
        const jhpc::BootstrapCI ci = jhpc::bootstrap_ci(rates);
        r.msgs_per_sec = ci.mean;
        r.msgs_per_sec_lo = ci.lo;
        r.msgs_per_sec_hi = ci.hi;
        results.push_back(r);
        std::fprintf(stderr,
                     "[bench_hotpath] pingpong %4s %5zu B  %10.0f msgs/s "
                     "[%.0f, %.0f]\n",
                     mode, size, r.msgs_per_sec, ci.lo, ci.hi);
      }
      {
        Result r;
        r.pattern = "stream";
        r.mode = mode;
        r.size = size;
        r.messages = static_cast<std::uint64_t>(st_windows) * kWindow;
        r.samples = samples;
        std::vector<double> rates;
        for (int s = 0; s < samples; ++s) {
          const double secs =
              run_stream(u, size, s == 0 ? st_warmup : 0, st_windows);
          r.seconds += secs;
          rates.push_back(
              secs > 0 ? static_cast<double>(r.messages) / secs : 0);
        }
        const jhpc::BootstrapCI ci = jhpc::bootstrap_ci(rates);
        r.msgs_per_sec = ci.mean;
        r.msgs_per_sec_lo = ci.lo;
        r.msgs_per_sec_hi = ci.hi;
        r.allocs_per_op = measure_allocs_per_op(size, quick ? 20 : 100);
        if (r.msgs_per_sec > best_stream) best_stream = r.msgs_per_sec;
        results.push_back(r);
        std::fprintf(
            stderr,
            "[bench_hotpath] stream   %4s %5zu B  %10.0f msgs/s "
            "[%.0f, %.0f]  %.3f allocs/op\n",
            mode, size, r.msgs_per_sec, ci.lo, ci.hi, r.allocs_per_op);
      }
    }
  }

  std::string baseline_blob;
  if (!baseline_path.empty()) {
    std::ifstream f(baseline_path);
    if (!f) {
      std::fprintf(stderr, "[bench_hotpath] cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    baseline_blob = ss.str();
    // Strip a trailing newline so the embedded object nests cleanly.
    while (!baseline_blob.empty() &&
           (baseline_blob.back() == '\n' || baseline_blob.back() == '\r')) {
      baseline_blob.pop_back();
    }
  }
  write_json(json_path, results, baseline_blob);

  if (floor > 0 && best_stream < floor) {
    std::fprintf(stderr,
                 "[bench_hotpath] FAIL: best stream rate %.0f msgs/s is "
                 "below the floor of %.0f msgs/s\n",
                 best_stream, floor);
    return 1;
  }
  return 0;
}
