// Paper Figure 17: osu_allreduce latency, large messages, 64 ranks.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig17";
  fig.title = "Allreduce latency, large messages, 64 ranks (paper Fig. 17)";
  fig.kind = BenchKind::kAllreduce;
  paper_collective_geometry(fig);
  large_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
