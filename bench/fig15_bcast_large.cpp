// Paper Figure 15: osu_bcast latency, large messages, 4 nodes x 16 ppn.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig15";
  fig.title = "Broadcast latency, large messages, 64 ranks (paper Fig. 15)";
  fig.kind = BenchKind::kBcast;
  paper_collective_geometry(fig);
  large_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
