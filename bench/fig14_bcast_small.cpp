// Paper Figure 14: osu_bcast latency, small messages, 4 nodes x 16 ppn.
// Headline: MVAPICH2-J beats Open MPI-J by ~6.2x (buffer) / ~2.2x
// (arrays) on average over all sizes — driven by the native suites.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig14";
  fig.title = "Broadcast latency, small messages, 64 ranks (paper Fig. 14)";
  fig.kind = BenchKind::kBcast;
  paper_collective_geometry(fig);
  small_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
