// Paper Figure 18 (Section VI-F): inter-node osu_latency WITH DATA
// VALIDATION — buffers/arrays are populated at the sender and verified at
// the receiver inside the timed region. Headline: past 256 B Java arrays
// beat direct ByteBuffers (3x at 4 MB), because element reads/writes are
// faster on arrays than through the ByteBuffer accessor machinery.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig18";
  fig.title =
      "Inter-node latency with data validation: MVAPICH2-J ByteBuffers vs "
      "Java arrays (paper Fig. 18)";
  fig.kind = BenchKind::kLatency;
  fig.ranks = 2;
  fig.ppn = 1;
  fig.options.min_size = 1;
  fig.options.max_size = 4u << 20;
  fig.options.validate = true;
  fig.series = {{Library::kMv2j, Api::kBuffer, "MVAPICH2-J buffer"},
                {Library::kMv2j, Api::kArrays, "MVAPICH2-J arrays"}};
  fig.ratios = {{"MVAPICH2-J buffer", "MVAPICH2-J arrays"}};
  return figure_main(std::move(fig), argc, argv);
}
