// Paper Figure 8: intra-node osu_bw, large messages ("MVAPICH2-J buffer
// picks up performance-wise with Open MPI-J buffer").
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig08";
  fig.title = "Intra-node bandwidth, large messages (paper Fig. 8)";
  fig.kind = BenchKind::kBandwidth;
  fig.ranks = 2;
  fig.ppn = 0;
  large_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
