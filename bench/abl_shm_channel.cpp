// Ablation: the vendor shared-memory channel model in isolation — native
// mv2 vs native basic suites, intra-node point-to-point, no Java layer.
// This is the single calibrated difference behind the paper's Figure 5
// (MVAPICH2-J ~2.46x ahead of Open MPI-J for small intra-node messages):
// a kernel-assisted single-copy channel vs a costlier per-message path.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  int rc = 0;
  for (const BenchKind kind : {BenchKind::kLatency, BenchKind::kBandwidth}) {
    FigureSpec fig;
    fig.id = std::string("abl_shm_") + bench_name(kind);
    fig.title = std::string("shared-memory channel ablation: osu_") +
                bench_name(kind) + ", 2 ranks, one node, native only";
    fig.kind = kind;
    fig.ranks = 2;
    fig.ppn = 0;
    fig.options.min_size = 1;
    fig.options.max_size = 64 * 1024;
    fig.series = {{Library::kNativeMv2, Api::kBuffer, "mv2 shm channel"},
                  {Library::kNativeOmpi, Api::kBuffer, "basic shm channel"}};
    fig.ratios = {{"basic shm channel", "mv2 shm channel"}};
    rc |= figure_main(std::move(fig), argc, argv);
  }
  return rc;
}
