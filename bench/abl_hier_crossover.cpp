// Ablation: where does the topology-aware hierarchical engine overtake
// the flat trees? Sweeps bcast and allreduce over ppn = {2, 8, 16, 32}
// (two virtual nodes each) with all three native engines — mv2, basic,
// hier — on identical fabrics, and reports the mv2/hier latency ratio
// per geometry. Under the deterministic clock the crossover is a pure
// model statement: a flat binomial pays log2(ppn) intra-node channel
// hops (intra_latency_ns each) where hier pays two shared-flag hops
// (hier_flag_ns each) plus one inter-node exchange among leaders.
//
// A per-geometry pvar probe also records coll.hier.single_copy /
// coll.hier.single_copy_bytes so the zero-bounce intra-node path is
// evidenced, not assumed (basic/mv2 runs must report 0).
//
// Output: figure tables per geometry, a combined CSV (--csv) and a
// BENCH-style JSON (--json, default BENCH_hier_crossover.json) for the
// perf-trajectory artifact. See docs/PERF.md.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/pvar.hpp"

namespace {

using namespace jhpc;
using namespace jhpc::ombj;

struct GeoResult {
  BenchKind kind{};
  int ppn = 0;
  int ranks = 0;
  std::vector<SeriesResult> series;  // mv2, basic, hier (in that order)
  double mv2_over_hier = 0.0;        // geometric-mean latency ratio
  std::int64_t single_copies = 0;    // hier probe at this geometry
  std::int64_t single_copy_bytes = 0;
};

FigureSpec crossover_fig(BenchKind kind, int ppn, bool quick) {
  FigureSpec fig;
  fig.id = std::string("hier_xover_") + bench_name(kind) + "_ppn" +
           std::to_string(ppn);
  fig.title = std::string("hier crossover: osu_") + bench_name(kind) +
              ", 2 nodes x " + std::to_string(ppn) + " ppn";
  fig.kind = kind;
  fig.ranks = 2 * ppn;
  fig.ppn = ppn;
  fig.options.min_size = 8;
  fig.options.max_size = 16 * 1024;
  fig.options.iters_small = quick ? 10 : 40;
  fig.options.warmup_small = quick ? 2 : 5;
  fig.options.iters_large = quick ? 4 : 10;
  fig.options.warmup_large = quick ? 1 : 2;
  // Same library (and therefore the same transport profile) for all
  // three series — only the collective engine differs.
  fig.series = {{Library::kNativeMv2, Api::kBuffer, "mv2", "mv2"},
                {Library::kNativeMv2, Api::kBuffer, "basic", "basic"},
                {Library::kNativeMv2, Api::kBuffer, "hier", "hier"}};
  fig.ratios = {{"mv2", "hier"}, {"basic", "hier"}};
  return fig;
}

/// One small hier job at the sweep geometry, reading the single-copy
/// pvars after a bcast + allreduce round: proof the intra-node fan-out
/// moved payload with one copy per consumer instead of tree hops.
void probe_single_copy(int ppn, GeoResult& geo,
                       const std::string& pvar_dump) {
  minimpi::UniverseConfig cfg;
  cfg.world_size = 2 * ppn;
  cfg.fabric.ranks_per_node = ppn;
  cfg.suite = minimpi::CollectiveSuite::kHier;
  cfg.apply_suite_profile();
  // Arms the registry without the stderr table dump; the last
  // geometry's dump survives as a machine-readable artifact.
  cfg.obs = obs::ObsConfig{};
  cfg.obs.pvars_json_path = pvar_dump;
  minimpi::Universe::launch(cfg, [&](minimpi::Comm& world) {
    std::vector<char> buf(8192, static_cast<char>(world.rank()));
    std::vector<int> acc(256, world.rank()), out(256);
    world.bcast(buf.data(), buf.size(), 0);
    world.allreduce(acc.data(), out.data(), acc.size(),
                    minimpi::BasicKind::kInt, minimpi::ReduceOp::kSum);
    if (world.rank() == 0) {
      obs::PvarRegistry& reg = *world.pvars();
      geo.single_copies = reg.total(reg.find("coll.hier.single_copy"));
      geo.single_copy_bytes =
          reg.total(reg.find("coll.hier.single_copy_bytes"));
    }
  });
}

void write_csv(const std::string& path, const std::vector<GeoResult>& geos) {
  std::ofstream f(path);
  f << "bench,ppn,ranks,size,mv2_us,basic_us,hier_us\n";
  for (const GeoResult& g : geos) {
    // Merge the three series' rows by size (all ran the same sweep).
    std::map<std::size_t, std::vector<double>> by_size;
    for (std::size_t s = 0; s < g.series.size(); ++s) {
      for (const ResultRow& row : g.series[s].rows) {
        auto& cells = by_size[row.size];
        cells.resize(g.series.size(), 0.0);
        cells[s] = row.value;
      }
    }
    for (const auto& [size, cells] : by_size) {
      f << bench_name(g.kind) << "," << g.ppn << "," << g.ranks << ","
        << size;
      for (const double v : cells) {
        char cell[32];
        std::snprintf(cell, sizeof(cell), ",%.3f", v);
        f << cell;
      }
      f << "\n";
    }
  }
  std::cerr << "[hier_crossover] csv written to " << path << "\n";
}

void write_json(const std::string& path, const std::vector<GeoResult>& geos) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"hier_crossover\",\n  \"schema\": 1,\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < geos.size(); ++i) {
    const GeoResult& g = geos[i];
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", g.mv2_over_hier);
    os << "    {\"kind\": \"" << bench_name(g.kind) << "\", \"ppn\": "
       << g.ppn << ", \"ranks\": " << g.ranks
       << ", \"mv2_over_hier\": " << ratio
       << ", \"hier_single_copies\": " << g.single_copies
       << ", \"hier_single_copy_bytes\": " << g.single_copy_bytes << "}"
       << (i + 1 < geos.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::ofstream f(path);
  f << os.str();
  std::cerr << "[hier_crossover] wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string csv_path;
  std::string json_path = "BENCH_hier_crossover.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--csv PATH] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<GeoResult> geos;
  for (const BenchKind kind : {BenchKind::kBcast, BenchKind::kAllreduce}) {
    for (const int ppn : {2, 8, 16, 32}) {
      FigureSpec fig = crossover_fig(kind, ppn, quick);
      std::cout << "== " << fig.id << ": " << fig.title << " ==\n";
      GeoResult geo;
      geo.kind = kind;
      geo.ppn = ppn;
      geo.ranks = fig.ranks;
      geo.series = run_figure(fig);
      std::cout << figure_table(fig, geo.series).to_text();
      geo.mv2_over_hier = average_ratio(geo.series, "mv2", "hier");
      probe_single_copy(ppn, geo, json_path + ".pvars.json");
      char line[128];
      std::snprintf(line, sizeof(line),
                    "mv2/hier avg ratio: %.2fx  (single_copies=%lld)\n\n",
                    geo.mv2_over_hier,
                    static_cast<long long>(geo.single_copies));
      std::cout << line;
      geos.push_back(std::move(geo));
    }
  }

  if (!csv_path.empty()) write_csv(csv_path, geos);
  write_json(json_path, geos);

  // The model's headline: with enough ranks sharing a node, two
  // shared-flag hops beat log2(ppn) channel hops. Fail loudly if the
  // crossover disappears so perf regressions surface in CI.
  int rc = 0;
  for (const GeoResult& g : geos) {
    if (g.ppn >= 16 && g.mv2_over_hier <= 1.0) {
      std::cerr << "FAIL: hier did not beat mv2 at ppn=" << g.ppn << " for "
                << bench_name(g.kind) << " (ratio "
                << g.mv2_over_hier << ")\n";
      rc = 1;
    }
    if (g.single_copies <= 0) {
      std::cerr << "FAIL: hier probe recorded no single-copy deliveries at "
                   "ppn=" << g.ppn << "\n";
      rc = 1;
    }
  }
  return rc;
}
