// Paper Figure 11: inter-node latency OVERHEAD of the Java bindings over
// their native libraries, with direct ByteBuffers. The paper reports
// overheads "in the ballpark of 1 microsecond", MVAPICH2-J slightly below
// Open MPI-J. This binary runs osu_latency four ways (each native library
// and each binding) and prints both the raw latencies and the per-size
// difference columns the paper plots.
#include <iostream>
#include <string>

#include "fig_common.hpp"
#include "jhpc/support/paths.hpp"
#include "jhpc/support/sizes.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  using jhpc::Table;
  FigureSpec fig;
  fig.id = "fig11";
  fig.title =
      "Inter-node latency overhead: Java bindings vs native libraries "
      "(paper Fig. 11)";
  fig.kind = BenchKind::kLatency;
  fig.ranks = 2;
  fig.ppn = 1;
  fig.options.min_size = 1;
  fig.options.max_size = 8192;  // the paper plots the small-message range
  fig.options.iters_small = 400;  // differences are sub-us: average harder
  fig.series = {{Library::kNativeMv2, Api::kBuffer, "MVAPICH2 native"},
                {Library::kMv2j, Api::kBuffer, "MVAPICH2-J"},
                {Library::kNativeOmpi, Api::kBuffer, "Open MPI native"},
                {Library::kOmpij, Api::kBuffer, "Open MPI-J"}};

  std::string csv_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--csv" && i + 1 < argc) {
        csv_path = argv[++i];
      } else if (arg == "--iters" && i + 1 < argc) {
        fig.options.iters_small = std::stoi(argv[++i]);
      } else if (arg == "--quick") {
        fig.options.iters_small = 50;
        fig.options.warmup_small = 5;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << fig.id << ": " << fig.title
                  << "\nflags: --iters N --csv PATH --quick\n";
        return 0;
      }
    }
    std::cout << "== " << fig.id << ": " << fig.title << " ==\n";
    const auto results = run_figure(fig);
    std::cout << figure_table(fig, results).to_text();

    Table diff({"Size", "MVAPICH2-J overhead us", "Open MPI-J overhead us"});
    for (const auto& base_row : results[0].rows) {
      auto value_of = [&](std::size_t series) {
        for (const auto& row : results[series].rows)
          if (row.size == base_row.size) return row.value;
        return 0.0;
      };
      diff.add_row({jhpc::format_size(base_row.size),
                    jhpc::fmt_double(value_of(1) - value_of(0), 2),
                    jhpc::fmt_double(value_of(3) - value_of(2), 2)});
    }
    std::cout << "\n-- Java-over-native overhead (the Fig. 11 plot) --\n"
              << diff.to_text();
    if (!csv_path.empty()) {
      figure_table(fig, results).write_csv(csv_path);
      // "figX.csv" -> "figX.overhead.csv" (not "figX.csv.overhead.csv").
      diff.write_csv(jhpc::path_with_tag(csv_path, "overhead"));
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fig11 failed: " << e.what() << "\n";
    return 1;
  }
}
