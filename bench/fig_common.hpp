// Shared helpers for the per-figure bench binaries.
#pragma once

#include "jhpc/ombj/harness.hpp"

namespace jhpc::ombj {

/// The paper's four-series comparison (both libraries x both APIs).
inline std::vector<SeriesSpec> four_series() {
  return {{Library::kMv2j, Api::kBuffer, "MVAPICH2-J buffer"},
          {Library::kMv2j, Api::kArrays, "MVAPICH2-J arrays"},
          {Library::kOmpij, Api::kBuffer, "Open MPI-J buffer"},
          {Library::kOmpij, Api::kArrays, "Open MPI-J arrays"}};
}

/// Standard comparison ratios the paper quotes for the four series.
inline std::vector<std::pair<std::string, std::string>> four_ratios() {
  return {{"Open MPI-J buffer", "MVAPICH2-J buffer"},
          {"Open MPI-J arrays", "MVAPICH2-J arrays"}};
}

/// Small-message window: 1 B .. 1 KB (the paper's "small" plots).
inline void small_sizes(FigureSpec& fig) {
  fig.options.min_size = 1;
  fig.options.max_size = 1024;
}

/// Large-message window: 2 KB .. 4 MB (the paper's "large" plots).
inline void large_sizes(FigureSpec& fig) {
  fig.options.min_size = 2048;
  fig.options.max_size = 4u << 20;
}

/// The paper's collective geometry: 4 nodes x 16 processes per node.
/// Iteration counts are scaled for 64 rank threads on a small host.
inline void paper_collective_geometry(FigureSpec& fig) {
  fig.ranks = 64;
  fig.ppn = 16;
  fig.options.iters_small = 100;
  fig.options.warmup_small = 10;
  fig.options.iters_large = 15;
  fig.options.warmup_large = 3;
}

}  // namespace jhpc::ombj
