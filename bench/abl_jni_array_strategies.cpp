// Ablation (google-benchmark): the three strategies for getting Java
// array data to native code, per paper Section IV:
//   1. Get<Type>ArrayElements / Release  — full copy out + copy back,
//   2. GetPrimitiveArrayCritical         — pin, no copy (GC blocked),
//   3. mpjbuf pooled staging             — MVAPICH2-J's buffering layer.
// Measured as "stage `size` bytes for a send, then release".
#include <benchmark/benchmark.h>

#include "jhpc/minijvm/jni.hpp"
#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"

namespace {

using jhpc::minijvm::jbyte;
using jhpc::minijvm::Jvm;
using jhpc::minijvm::JvmConfig;
using jhpc::minijvm::ReleaseMode;

JvmConfig bench_cfg() {
  JvmConfig c;
  c.heap_bytes = 64 << 20;
  c.jni_crossing_ns = 400;  // realistic crossing charged by the bindings
  return c;
}

void BM_GetReleaseArrayElements(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = jvm.new_array<jbyte>(n);
  for (auto _ : state) {
    jvm.jni().crossing();
    jbyte* p = jvm.jni().get_array_elements(arr);
    benchmark::DoNotOptimize(p);
    // Sender-side: no write-back needed.
    jvm.jni().release_array_elements(arr, p, ReleaseMode::kAbort);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GetReleaseArrayElements)->Range(1 << 10, 4 << 20);

void BM_PrimitiveArrayCritical(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = jvm.new_array<jbyte>(n);
  for (auto _ : state) {
    jvm.jni().crossing();
    jbyte* p = jvm.jni().get_primitive_array_critical(arr);
    benchmark::DoNotOptimize(p);
    jvm.jni().release_primitive_array_critical(arr, p);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrimitiveArrayCritical)->Range(1 << 10, 4 << 20);

void BM_MpjbufPooledStaging(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  jhpc::mpjbuf::BufferFactory factory;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = jvm.new_array<jbyte>(n);
  for (auto _ : state) {
    jhpc::mpjbuf::Buffer stage = factory.get(n);
    stage.write(arr, 0, n);
    stage.commit();
    jvm.jni().crossing();
    benchmark::DoNotOptimize(stage.native_address());
  }  // free() back to the pool via the destructor
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MpjbufPooledStaging)->Range(1 << 10, 4 << 20);

}  // namespace

BENCHMARK_MAIN();
