// Paper Figure 12: inter-node osu_bw, small messages (no Open MPI-J
// arrays series, as in the paper).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig12";
  fig.title = "Inter-node bandwidth, small messages (paper Fig. 12)";
  fig.kind = BenchKind::kBandwidth;
  fig.ranks = 2;
  fig.ppn = 1;
  small_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
