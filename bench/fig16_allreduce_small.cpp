// Paper Figure 16: osu_allreduce latency, small messages, 64 ranks.
// Headline: MVAPICH2-J beats Open MPI-J by ~2.76x (buffer) / ~1.62x
// (arrays) on average over all sizes.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig16";
  fig.title = "Allreduce latency, small messages, 64 ranks (paper Fig. 16)";
  fig.kind = BenchKind::kAllreduce;
  paper_collective_geometry(fig);
  fig.options.min_size = 4;
  fig.options.max_size = 1024;
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
