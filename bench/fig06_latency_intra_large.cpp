// Paper Figure 6: intra-node osu_latency, large messages. Buffers of the
// two libraries converge; MVAPICH2-J arrays pay the buffering-layer copy.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig06";
  fig.title = "Intra-node latency, large messages (paper Fig. 6)";
  fig.kind = BenchKind::kLatency;
  fig.ranks = 2;
  fig.ppn = 0;
  large_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
