// One-sided transfer benchmark: RDMA-emulating zero-copy puts versus a
// send/recv emulation of the same one-sided traffic.
//
// Two modes move the SAME payloads (kWindow puts per epoch, fence-style
// synchronization after every window):
//
//   rma      — win.put() on the zero-copy netsim path: payload lands
//              directly in the exposed window memory, no mailbox bounce,
//              no tag matching, fence closes the epoch.
//   twosided — what applications did before windows existed: the origin
//              send()s each payload, the target recv()s it into the
//              "window" region by hand, and a barrier stands in for the
//              fence. Every byte takes the full eager/rendezvous
//              two-sided path (mailbox copy + matching).
//
// The sweep covers eager-sized and rendezvous-sized payloads; the
// acceptance floor looks at the large (>= 256 KiB) puts where the copy
// saved per byte dominates. Every configuration is sampled repeatedly
// and summarised as a bootstrap mean with a 95% CI (jhpc::bootstrap_ci)
// over REAL wall time (the simulator's virtual clock would hide the
// mailbox copies this benchmark exists to expose).
//
// Usage: bench_rma [--quick] [--json PATH] [--min-speedup X]
// Exit status is non-zero when the geometric-mean rma/twosided speedup
// over the large payloads falls below the floor.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/minimpi/win.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/stats.hpp"

namespace {

using jhpc::minimpi::Comm;
using jhpc::minimpi::Universe;
using jhpc::minimpi::UniverseConfig;
using jhpc::minimpi::Win;

constexpr int kTag = 11;
constexpr int kWindow = 32;
constexpr std::size_t kLargeFloor = 256 * 1024;

struct Result {
  std::string mode;  // "rma" or "twosided"
  std::size_t size = 0;
  std::uint64_t messages = 0;  // per sample
  int samples = 0;
  double seconds = 0.0;  // mean wall seconds per sample
  double mbps = 0.0;
  double mbps_lo = 0.0;
  double mbps_hi = 0.0;
};

UniverseConfig base_config() {
  UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.deterministic_clock = true;
  cfg.obs.trace_path.clear();
  return cfg;
}

/// One streaming run in rma mode: `windows` epochs of kWindow puts from
/// rank 0 into rank 1's window, each closed by a fence. Returns wall
/// seconds.
double run_rma(Universe& u, std::size_t size, int warmup, int windows) {
  std::int64_t wall_ns = 0;
  u.run([&](Comm& world) {
    std::vector<std::byte> origin(size, std::byte{0x5a});
    Win win = world.win_allocate(size);
    const int me = world.rank();
    auto window = [&] {
      if (me == 0)
        for (int m = 0; m < kWindow; ++m)
          win.put(origin.data(), size, 1, 0);
      win.fence();
    };
    win.fence();
    for (int w = 0; w < warmup; ++w) window();
    world.barrier();
    const std::int64_t t0 = jhpc::now_ns();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0) wall_ns = jhpc::now_ns() - t0;
    win.free();
  });
  return static_cast<double>(wall_ns) * 1e-9;
}

/// The same traffic emulated with two-sided messaging: the target drains
/// each "put" with a recv into its window region and a barrier plays the
/// fence. This is the mailbox-bounce path RMA removes.
double run_twosided(Universe& u, std::size_t size, int warmup, int windows) {
  std::int64_t wall_ns = 0;
  u.run([&](Comm& world) {
    std::vector<std::byte> origin(size, std::byte{0x5a});
    std::vector<std::byte> window_mem(size);
    const int me = world.rank();
    auto window = [&] {
      if (me == 0) {
        for (int m = 0; m < kWindow; ++m)
          world.send(origin.data(), size, 1, kTag);
      } else {
        for (int m = 0; m < kWindow; ++m)
          world.recv(window_mem.data(), size, 0, kTag);
      }
      world.barrier();
    };
    for (int w = 0; w < warmup; ++w) window();
    world.barrier();
    const std::int64_t t0 = jhpc::now_ns();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0) wall_ns = jhpc::now_ns() - t0;
  });
  return static_cast<double>(wall_ns) * 1e-9;
}

std::string fmt(double v) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.3f", v);
  return out;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                const std::vector<double>& speedups, double geo,
                double large_geo) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"rma\",\n";
  os << "  \"schema\": 2,\n";
  os << "  \"window\": " << kWindow << ",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"size\": " << r.size
       << ", \"messages\": " << r.messages << ", \"samples\": " << r.samples
       << ", \"seconds\": " << fmt(r.seconds)
       << ", \"mb_per_sec\": " << fmt(r.mbps)
       << ", \"mb_per_sec_lo\": " << fmt(r.mbps_lo)
       << ", \"mb_per_sec_hi\": " << fmt(r.mbps_hi) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [";
  for (std::size_t i = 0; i < speedups.size(); ++i)
    os << fmt(speedups[i]) << (i + 1 < speedups.size() ? ", " : "");
  os << "],\n";
  os << "  \"geomean_speedup\": " << fmt(geo) << ",\n";
  os << "  \"geomean_speedup_large\": " << fmt(large_geo) << "\n}\n";
  std::ofstream f(path);
  f << os.str();
  std::fprintf(stderr, "[bench_rma] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_rma.json";
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  // 1 KiB and 8 KiB ride the eager path in twosided mode; 256 KiB and
  // 1 MiB are deep in rendezvous territory where the saved copy per
  // byte dominates.
  const std::vector<std::size_t> sizes = {1024, 8192, 256 * 1024,
                                          1024 * 1024};
  const int samples = quick ? 3 : 5;
  const int base_windows = quick ? 30 : 150;
  const int warmup = quick ? 5 : 20;

  std::vector<Result> results;
  std::vector<double> speedups;
  std::vector<double> large_speedups;
  Universe u(base_config());
  for (const std::size_t size : sizes) {
    // Keep per-sample byte volume roughly constant across sizes.
    const int windows =
        size >= kLargeFloor ? (quick ? 5 : 20) : base_windows;
    double rma_mean = 0.0;
    for (const bool rma : {true, false}) {
      Result r;
      r.mode = rma ? "rma" : "twosided";
      r.size = size;
      r.messages = static_cast<std::uint64_t>(windows) * kWindow;
      r.samples = samples;
      std::vector<double> rates;
      double total_secs = 0.0;
      for (int k = 0; k < samples; ++k) {
        const double secs =
            rma ? run_rma(u, size, k == 0 ? warmup : 0, windows)
                : run_twosided(u, size, k == 0 ? warmup : 0, windows);
        total_secs += secs;
        const double bytes =
            static_cast<double>(r.messages) * static_cast<double>(size);
        rates.push_back(secs > 0 ? bytes / secs / 1e6 : 0);
      }
      const jhpc::BootstrapCI ci = jhpc::bootstrap_ci(rates);
      r.seconds = total_secs / samples;
      r.mbps = ci.mean;
      r.mbps_lo = ci.lo;
      r.mbps_hi = ci.hi;
      if (rma) {
        rma_mean = ci.mean;
      } else if (rma_mean > 0 && ci.mean > 0) {
        const double sp = rma_mean / ci.mean;
        speedups.push_back(sp);
        if (size >= kLargeFloor) large_speedups.push_back(sp);
        std::fprintf(stderr,
                     "[bench_rma] size=%8zu B  speedup rma/twosided = "
                     "%.2fx\n",
                     size, sp);
      }
      results.push_back(r);
      std::fprintf(stderr,
                   "[bench_rma] %-8s size=%8zu B  %10.1f MB/s [%.1f, %.1f]\n",
                   r.mode.c_str(), size, r.mbps, r.mbps_lo, r.mbps_hi);
    }
  }

  const double geo = jhpc::geometric_mean(speedups);
  const double large_geo = jhpc::geometric_mean(large_speedups);
  std::fprintf(stderr,
               "[bench_rma] geomean speedup %.2fx (large-only %.2fx)\n", geo,
               large_geo);
  write_json(json_path, results, speedups, geo, large_geo);

  if (min_speedup > 0 && large_geo < min_speedup) {
    std::fprintf(stderr,
                 "[bench_rma] FAIL: large-put geomean speedup %.2fx is "
                 "below the floor of %.2fx\n",
                 large_geo, min_speedup);
    return 1;
  }
  return 0;
}
