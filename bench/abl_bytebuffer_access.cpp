// Ablation (google-benchmark): element-wise access cost of Java arrays vs
// ByteBuffers — the mechanism behind the paper's Figure 18 result that
// arrays win once populate/verify time counts. Measures per-element
// writes and reads for: JArray, direct ByteBuffer (native order), direct
// ByteBuffer (big-endian, java.nio's default), and heap ByteBuffer.
#include <benchmark/benchmark.h>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/jvm.hpp"

namespace {

using jhpc::minijvm::ByteBuffer;
using jhpc::minijvm::jbyte;
using jhpc::minijvm::jint;
using jhpc::minijvm::Jvm;
using jhpc::minijvm::JvmConfig;

JvmConfig bench_cfg() {
  JvmConfig c;
  c.heap_bytes = 64 << 20;
  c.jni_crossing_ns = 0;
  return c;
}

void BM_ArrayWriteByte(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = jvm.new_array<jbyte>(n);
  for (auto _ : state) {
    for (std::size_t j = 0; j < n; ++j)
      arr[j] = static_cast<jbyte>(j & 0x7f);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ArrayWriteByte)->Range(256, 1 << 20);

void BM_ArrayReadByte(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = jvm.new_array<jbyte>(n);
  for (auto _ : state) {
    jint sum = 0;
    for (std::size_t j = 0; j < n; ++j) sum += arr[j];
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ArrayReadByte)->Range(256, 1 << 20);

void BM_DirectBufferWriteByteNativeOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = ByteBuffer::allocate_direct(n).order(jhpc::native_order());
  for (auto _ : state) {
    for (std::size_t j = 0; j < n; ++j)
      buf.put(j, static_cast<jbyte>(j & 0x7f));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DirectBufferWriteByteNativeOrder)->Range(256, 1 << 20);

void BM_DirectBufferReadByte(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = ByteBuffer::allocate_direct(n);
  for (auto _ : state) {
    jint sum = 0;
    for (std::size_t j = 0; j < n; ++j) sum += buf.get(j);
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DirectBufferReadByte)->Range(256, 1 << 20);

void BM_HeapBufferWriteByte(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = ByteBuffer::allocate(jvm, n);
  for (auto _ : state) {
    for (std::size_t j = 0; j < n; ++j)
      buf.put(j, static_cast<jbyte>(j & 0x7f));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapBufferWriteByte)->Range(256, 1 << 20);

// Typed (int) access: byte-order handling shows up here.
void BM_DirectBufferPutIntBigEndian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = ByteBuffer::allocate_direct(n * 4)
                 .order(jhpc::ByteOrder::kBigEndian);
  for (auto _ : state) {
    for (std::size_t j = 0; j < n; ++j)
      buf.put_int(j * 4, static_cast<jint>(j));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_DirectBufferPutIntBigEndian)->Range(256, 1 << 18);

void BM_DirectBufferPutIntNativeOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = ByteBuffer::allocate_direct(n * 4).order(jhpc::native_order());
  for (auto _ : state) {
    for (std::size_t j = 0; j < n; ++j)
      buf.put_int(j * 4, static_cast<jint>(j));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_DirectBufferPutIntNativeOrder)->Range(256, 1 << 18);

void BM_ArrayWriteInt(benchmark::State& state) {
  Jvm jvm(bench_cfg());
  const auto n = static_cast<std::size_t>(state.range(0));
  auto arr = jvm.new_array<jint>(n);
  for (auto _ : state) {
    for (std::size_t j = 0; j < n; ++j) arr[j] = static_cast<jint>(j);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_ArrayWriteInt)->Range(256, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
