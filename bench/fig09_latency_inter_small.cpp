// Paper Figure 9: inter-node osu_latency, small messages (the two
// libraries' buffer series are comparable).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig09";
  fig.title = "Inter-node latency, small messages (paper Fig. 9)";
  fig.kind = BenchKind::kLatency;
  fig.ranks = 2;
  fig.ppn = 1;  // one rank per virtual node
  small_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
