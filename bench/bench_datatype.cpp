// Derived-datatype fast-path benchmark: zero-copy strided eager sends
// versus the manual pack the paper-era Java codes had to write by hand.
//
// Two modes move the SAME strided payload (a vector datatype: nblocks
// blocks of `blocklen` ints at a 2*blocklen-int stride, 50% density):
//
//   typed  — world.send(buf, 1, vector_type, ...): the transport
//            gathers the runs straight into the recycled eager slab
//            (one copy, zero steady-state allocations) and the matched
//            receiver scatters straight into its strided buffer.
//   manual — the application packs into a dense staging vector, sends
//            the staging bytes, and the receiver unpacks by hand: two
//            extra copies per message plus the staging buffers.
//
// The sweep crosses blocklen x payload size, including payloads past the
// 16 KiB eager limit where both modes ride the rendezvous pipeline.
// Every configuration is sampled repeatedly and summarised as a
// bootstrap mean with a 95% CI (jhpc::bootstrap_ci), and the typed mode
// additionally reports steady-state allocations per message from the
// transport.slab.misses pvar.
//
// Usage: bench_datatype [--quick] [--json PATH] [--min-speedup X]
// Exit status is non-zero when the geometric-mean typed/manual speedup
// over the eager-sized configurations falls below the floor (CI uses a
// generous floor to catch real regressions, not scheduler noise).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/obs/pvar.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/stats.hpp"

namespace {

using jhpc::minimpi::Comm;
using jhpc::minimpi::Datatype;
using jhpc::minimpi::Universe;
using jhpc::minimpi::UniverseConfig;

constexpr int kTag = 7;
constexpr int kAckTag = 8;
constexpr int kWindow = 32;

struct Shape {
  int blocklen;        // ints per block
  std::size_t payload; // payload bytes (sum of blocks)
};

struct Result {
  std::string mode;  // "typed" or "manual"
  int blocklen = 0;
  int stride = 0;  // ints
  std::size_t payload = 0;
  bool eager = false;
  std::uint64_t messages = 0;  // per sample
  int samples = 0;
  double msgs_per_sec = 0.0;
  double msgs_per_sec_lo = 0.0;
  double msgs_per_sec_hi = 0.0;
  double allocs_per_op = -1.0;  // typed mode only; -1 elsewhere
};

UniverseConfig base_config(bool pvars) {
  UniverseConfig cfg;
  cfg.world_size = 2;
  cfg.deterministic_clock = true;
  cfg.obs.pvars = pvars;
  cfg.obs.trace_path.clear();
  return cfg;
}

Datatype shape_type(const Shape& s) {
  const int nblocks = static_cast<int>(s.payload / 4) / s.blocklen;
  return Datatype::vector(nblocks, s.blocklen, 2 * s.blocklen,
                          Datatype::int_type());
}

/// Strided buffer big enough for one element of the shape's type.
std::vector<std::int32_t> strided_buf(const Shape& s) {
  const Datatype dt = shape_type(s);
  return std::vector<std::int32_t>(dt.extent() / 4, 1);
}

/// One windowed streaming run in typed mode. Returns wall seconds for
/// `windows` windows of kWindow messages.
double run_typed(Universe& u, const Shape& s, int warmup, int windows) {
  std::int64_t wall_ns = 0;
  u.run([&](Comm& world) {
    const Datatype dt = shape_type(s);
    auto buf = strided_buf(s);
    std::byte ack{};
    const int me = world.rank();
    const int peer = 1 - me;
    auto window = [&] {
      if (me == 0) {
        for (int m = 0; m < kWindow; ++m)
          world.send(buf.data(), 1, dt, peer, kTag);
        world.recv(&ack, 1, peer, kAckTag);
      } else {
        for (int m = 0; m < kWindow; ++m)
          world.recv(buf.data(), 1, dt, peer, kTag);
        world.send(&ack, 1, peer, kAckTag);
      }
    };
    for (int w = 0; w < warmup; ++w) window();
    world.barrier();
    const std::int64_t t0 = jhpc::now_ns();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0) wall_ns = jhpc::now_ns() - t0;
  });
  return static_cast<double>(wall_ns) * 1e-9;
}

/// The same traffic with an application-level pack/unpack through dense
/// staging buffers and the byte API — what user code does without a
/// datatype engine.
double run_manual(Universe& u, const Shape& s, int warmup, int windows) {
  std::int64_t wall_ns = 0;
  u.run([&](Comm& world) {
    auto buf = strided_buf(s);
    std::vector<std::int32_t> staging(s.payload / 4);
    const int nblocks = static_cast<int>(s.payload / 4) / s.blocklen;
    const int bl = s.blocklen;
    std::byte ack{};
    const int me = world.rank();
    const int peer = 1 - me;
    auto pack = [&] {
      for (int b = 0; b < nblocks; ++b)
        std::memcpy(staging.data() + b * bl, buf.data() + b * 2 * bl,
                    static_cast<std::size_t>(bl) * 4);
    };
    auto unpack = [&] {
      for (int b = 0; b < nblocks; ++b)
        std::memcpy(buf.data() + b * 2 * bl, staging.data() + b * bl,
                    static_cast<std::size_t>(bl) * 4);
    };
    auto window = [&] {
      if (me == 0) {
        for (int m = 0; m < kWindow; ++m) {
          pack();
          world.send(staging.data(), s.payload, peer, kTag);
        }
        world.recv(&ack, 1, peer, kAckTag);
      } else {
        for (int m = 0; m < kWindow; ++m) {
          world.recv(staging.data(), s.payload, peer, kTag);
          unpack();
        }
        world.send(&ack, 1, peer, kAckTag);
      }
    };
    for (int w = 0; w < warmup; ++w) window();
    world.barrier();
    const std::int64_t t0 = jhpc::now_ns();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0) wall_ns = jhpc::now_ns() - t0;
  });
  return static_cast<double>(wall_ns) * 1e-9;
}

/// Steady-state slab misses per typed message, plus a sanity check that
/// the dt.* pvars tick (the fast path is actually being taken).
double measure_typed_allocs(const Shape& s, int windows) {
  double allocs = -1.0;
  Universe u(base_config(/*pvars=*/true));
  u.run([&](Comm& world) {
    const Datatype dt = shape_type(s);
    auto buf = strided_buf(s);
    std::byte ack{};
    const int me = world.rank();
    const int peer = 1 - me;
    auto window = [&] {
      if (me == 0) {
        for (int m = 0; m < kWindow; ++m)
          world.send(buf.data(), 1, dt, peer, kTag);
        world.recv(&ack, 1, peer, kAckTag);
      } else {
        for (int m = 0; m < kWindow; ++m)
          world.recv(buf.data(), 1, dt, peer, kTag);
        world.send(&ack, 1, peer, kAckTag);
      }
    };
    for (int w = 0; w < 6; ++w) window();
    world.barrier();
    jhpc::obs::PvarRegistry* reg = world.pvars();
    const jhpc::obs::PvarId misses =
        reg != nullptr ? reg->find("transport.slab.misses")
                       : jhpc::obs::PvarId{};
    const std::int64_t m1 =
        reg != nullptr && misses.valid() ? reg->total(misses) : 0;
    world.barrier();
    for (int w = 0; w < windows; ++w) window();
    world.barrier();
    if (me == 0 && reg != nullptr && misses.valid()) {
      const std::int64_t m2 = reg->total(misses);
      allocs = static_cast<double>(m2 - m1) /
               (static_cast<double>(windows) * kWindow);
    }
  });
  return allocs;
}

std::string fmt(double v) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.3f", v);
  return out;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                const std::vector<double>& speedups, double geo,
                double eager_geo) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"datatype\",\n";
  os << "  \"schema\": 1,\n";
  os << "  \"window\": " << kWindow << ",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"blocklen\": " << r.blocklen
       << ", \"stride\": " << r.stride << ", \"payload\": " << r.payload
       << ", \"eager\": " << (r.eager ? "true" : "false")
       << ", \"messages\": " << r.messages << ", \"samples\": " << r.samples
       << ", \"msgs_per_sec\": " << fmt(r.msgs_per_sec)
       << ", \"msgs_per_sec_lo\": " << fmt(r.msgs_per_sec_lo)
       << ", \"msgs_per_sec_hi\": " << fmt(r.msgs_per_sec_hi)
       << ", \"allocs_per_op\": " << fmt(r.allocs_per_op) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [";
  for (std::size_t i = 0; i < speedups.size(); ++i)
    os << fmt(speedups[i]) << (i + 1 < speedups.size() ? ", " : "");
  os << "],\n";
  os << "  \"geomean_speedup\": " << fmt(geo) << ",\n";
  os << "  \"geomean_speedup_eager\": " << fmt(eager_geo) << "\n}\n";
  std::ofstream f(path);
  f << os.str();
  std::fprintf(stderr, "[bench_datatype] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_datatype.json";
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  // blocklen x payload sweep: 50% density throughout (stride =
  // 2*blocklen). 1 KiB..8 KiB ride the eager fast path; 64 KiB is past
  // the 16 KiB eager limit and rides the rendezvous pipeline.
  const std::vector<Shape> shapes = {
      {1, 1024},  {4, 1024},  {16, 1024},   // small eager
      {1, 4096},  {4, 4096},  {16, 4096},   // mid eager
      {1, 8192},  {4, 8192},  {16, 8192},   // large eager
      {4, 65536}, {16, 65536},              // rendezvous
  };
  const int samples = quick ? 3 : 5;
  const int windows = quick ? 40 : 250;
  const int warmup = quick ? 10 : 40;

  std::vector<Result> results;
  std::vector<double> speedups;
  std::vector<double> eager_speedups;
  Universe u(base_config(/*pvars=*/false));
  for (const Shape& s : shapes) {
    const bool eager = s.payload <= 16 * 1024;
    double typed_mean = 0.0;
    for (const bool typed : {true, false}) {
      Result r;
      r.mode = typed ? "typed" : "manual";
      r.blocklen = s.blocklen;
      r.stride = 2 * s.blocklen;
      r.payload = s.payload;
      r.eager = eager;
      r.messages = static_cast<std::uint64_t>(windows) * kWindow;
      r.samples = samples;
      std::vector<double> rates;
      for (int k = 0; k < samples; ++k) {
        const double secs =
            typed ? run_typed(u, s, k == 0 ? warmup : 0, windows)
                  : run_manual(u, s, k == 0 ? warmup : 0, windows);
        rates.push_back(secs > 0 ? static_cast<double>(r.messages) / secs
                                 : 0);
      }
      const jhpc::BootstrapCI ci = jhpc::bootstrap_ci(rates);
      r.msgs_per_sec = ci.mean;
      r.msgs_per_sec_lo = ci.lo;
      r.msgs_per_sec_hi = ci.hi;
      if (typed) {
        typed_mean = ci.mean;
        r.allocs_per_op = measure_typed_allocs(s, quick ? 15 : 60);
      } else if (typed_mean > 0 && ci.mean > 0) {
        const double sp = typed_mean / ci.mean;
        speedups.push_back(sp);
        if (eager) eager_speedups.push_back(sp);
        std::fprintf(stderr,
                     "[bench_datatype] bl=%-3d payload=%6zu B  "
                     "speedup typed/manual = %.2fx\n",
                     s.blocklen, s.payload, sp);
      }
      results.push_back(r);
      std::fprintf(stderr,
                   "[bench_datatype] %-6s bl=%-3d payload=%6zu B  "
                   "%10.0f msgs/s [%.0f, %.0f]  %.3f allocs/op\n",
                   r.mode.c_str(), s.blocklen, s.payload, r.msgs_per_sec,
                   r.msgs_per_sec_lo, r.msgs_per_sec_hi, r.allocs_per_op);
    }
  }

  const double geo = jhpc::geometric_mean(speedups);
  const double eager_geo = jhpc::geometric_mean(eager_speedups);
  std::fprintf(stderr,
               "[bench_datatype] geomean speedup %.2fx (eager-only %.2fx)\n",
               geo, eager_geo);
  write_json(json_path, results, speedups, geo, eager_geo);

  if (min_speedup > 0 && eager_geo < min_speedup) {
    std::fprintf(stderr,
                 "[bench_datatype] FAIL: eager geomean speedup %.2fx is "
                 "below the floor of %.2fx\n",
                 eager_geo, min_speedup);
    return 1;
  }
  return 0;
}
