// Paper Figure 5: intra-node osu_latency, small messages, both libraries
// and both APIs. Headline: MVAPICH2-J buffer beats Open MPI-J buffer by
// ~2.46x on average in the paper's runs.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig05";
  fig.title = "Intra-node latency, small messages (paper Fig. 5)";
  fig.kind = BenchKind::kLatency;
  fig.ranks = 2;
  fig.ppn = 0;  // same virtual node
  small_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
