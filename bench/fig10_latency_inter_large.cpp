// Paper Figure 10: inter-node osu_latency, large messages ("MVAPICH2-J
// arrays picks up in performance compared with Open MPI-J arrays").
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace jhpc::ombj;
  FigureSpec fig;
  fig.id = "fig10";
  fig.title = "Inter-node latency, large messages (paper Fig. 10)";
  fig.kind = BenchKind::kLatency;
  fig.ranks = 2;
  fig.ppn = 1;
  large_sizes(fig);
  fig.series = four_series();
  fig.ratios = four_ratios();
  return figure_main(std::move(fig), argc, argv);
}
