// Ablation (google-benchmark): staging-buffer encoding cost. The mpjbuf
// layer can stage in a non-native byte order (setEncoding); matching the
// native order makes write()/read() straight memcpys — the fast path a
// real implementation must hit.
#include <benchmark/benchmark.h>

#include "jhpc/minijvm/jvm.hpp"
#include "jhpc/mpjbuf/buffer_factory.hpp"

namespace {

using jhpc::minijvm::jint;
using jhpc::minijvm::Jvm;

jhpc::ByteOrder other_order() {
  return jhpc::native_order() == jhpc::ByteOrder::kBigEndian
             ? jhpc::ByteOrder::kLittleEndian
             : jhpc::ByteOrder::kBigEndian;
}

void stage_roundtrip(benchmark::State& state, jhpc::ByteOrder encoding) {
  Jvm jvm({.heap_bytes = 64 << 20, .jni_crossing_ns = 0});
  jhpc::mpjbuf::BufferFactory factory;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto src = jvm.new_array<jint>(n);
  auto dst = jvm.new_array<jint>(n);
  for (auto _ : state) {
    jhpc::mpjbuf::Buffer buf = factory.get(n * sizeof(jint));
    buf.set_encoding(encoding);
    buf.write(src, 0, n);
    buf.commit();
    buf.read(dst, 0, n);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

void BM_StagingNativeOrder(benchmark::State& state) {
  stage_roundtrip(state, jhpc::native_order());
}
BENCHMARK(BM_StagingNativeOrder)->Range(1 << 10, 1 << 18);

void BM_StagingSwappedOrder(benchmark::State& state) {
  stage_roundtrip(state, other_order());
}
BENCHMARK(BM_StagingSwappedOrder)->Range(1 << 10, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
