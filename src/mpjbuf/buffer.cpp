#include "jhpc/mpjbuf/buffer.hpp"

#include <cstring>

#include "jhpc/mpjbuf/buffer_factory.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mpjbuf {

Buffer::Buffer(BufferFactory* factory, minijvm::ByteBuffer storage)
    : factory_(factory), storage_(std::move(storage)) {}

Buffer::~Buffer() {
  if (factory_ != nullptr) free();
}

Buffer::Buffer(Buffer&& other) noexcept { *this = std::move(other); }

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    if (factory_ != nullptr) free();
    factory_ = other.factory_;
    storage_ = std::move(other.storage_);
    write_pos_ = other.write_pos_;
    read_pos_ = other.read_pos_;
    last_section_els_ = other.last_section_els_;
    encoding_ = other.encoding_;
    other.factory_ = nullptr;
  }
  return *this;
}

std::size_t Buffer::capacity() const {
  JHPC_REQUIRE(is_valid(), "capacity() on freed buffer");
  return storage_.capacity();
}

std::size_t Buffer::size() const { return write_pos_; }

std::byte* Buffer::native_address() const {
  JHPC_REQUIRE(is_valid(), "native_address() on freed buffer");
  return storage_.storage_address(0);
}

template <typename T>
void Buffer::write_impl(const T* src, std::size_t num_els) {
  JHPC_REQUIRE(is_valid(), "write() on freed buffer");
  const std::size_t bytes = num_els * sizeof(T);
  JHPC_REQUIRE(write_pos_ + bytes <= storage_.capacity(),
               "buffer overflow in mpjbuf write");
  std::byte* dst = storage_.storage_address(write_pos_);
  if (encoding_ == jhpc::native_order() || sizeof(T) == 1) {
    std::memcpy(dst, src, bytes);
  } else {
    for (std::size_t i = 0; i < num_els; ++i)
      jhpc::store_ordered(dst + i * sizeof(T), src[i], encoding_);
  }
  write_pos_ += bytes;
}

template <typename T>
void Buffer::read_impl(T* dst, std::size_t num_els) {
  JHPC_REQUIRE(is_valid(), "read() on freed buffer");
  const std::size_t bytes = num_els * sizeof(T);
  JHPC_REQUIRE(read_pos_ + bytes <= write_pos_,
               "buffer underflow in mpjbuf read");
  const std::byte* src = storage_.storage_address(read_pos_);
  if (encoding_ == jhpc::native_order() || sizeof(T) == 1) {
    std::memcpy(dst, src, bytes);
  } else {
    for (std::size_t i = 0; i < num_els; ++i)
      dst[i] = jhpc::load_ordered<T>(src + i * sizeof(T), encoding_);
  }
  read_pos_ += bytes;
}

template <JavaPrimitive T>
void Buffer::write(const JArray<T>& source, std::size_t src_off,
                   std::size_t num_els) {
  JHPC_REQUIRE(src_off + num_els <= source.length(),
               "mpjbuf write: source range out of bounds");
  // The array cannot move mid-copy (no allocation happens here), so one
  // bulk copy from its current address is safe and fast.
  write_impl(reinterpret_cast<const T*>(source.raw_address()) + src_off,
             num_els);
}

template <JavaPrimitive T>
void Buffer::write(const T* source, std::size_t num_els) {
  write_impl(source, num_els);
}

template <JavaPrimitive T>
void Buffer::read(JArray<T>& dest, std::size_t dst_off,
                  std::size_t num_els) {
  JHPC_REQUIRE(dst_off + num_els <= dest.length(),
               "mpjbuf read: destination range out of bounds");
  read_impl(reinterpret_cast<T*>(dest.raw_address()) + dst_off, num_els);
}

template <JavaPrimitive T>
void Buffer::read(T* dest, std::size_t num_els) {
  read_impl(dest, num_els);
}

std::byte* Buffer::reserve(std::size_t bytes) {
  JHPC_REQUIRE(is_valid(), "reserve() on freed buffer");
  JHPC_REQUIRE(write_pos_ + bytes <= storage_.capacity(),
               "buffer overflow in mpjbuf reserve");
  std::byte* p = storage_.storage_address(write_pos_);
  write_pos_ += bytes;
  return p;
}

const std::byte* Buffer::consume(std::size_t bytes) {
  JHPC_REQUIRE(is_valid(), "consume() on freed buffer");
  JHPC_REQUIRE(read_pos_ + bytes <= write_pos_,
               "buffer underflow in mpjbuf consume");
  const std::byte* p = storage_.storage_address(read_pos_);
  read_pos_ += bytes;
  return p;
}

void Buffer::put_section_header(SectionType type, std::size_t num_els) {
  JHPC_REQUIRE(is_valid(), "put_section_header on freed buffer");
  JHPC_REQUIRE(write_pos_ + 9 <= storage_.capacity(),
               "buffer overflow writing section header");
  std::byte* dst = storage_.storage_address(write_pos_);
  dst[0] = static_cast<std::byte>(type);
  jhpc::store_ordered<std::uint64_t>(dst + 1,
                                     static_cast<std::uint64_t>(num_els),
                                     encoding_);
  write_pos_ += 9;
  last_section_els_ = num_els;
}

SectionType Buffer::get_section_header(std::size_t* num_els) {
  JHPC_REQUIRE(is_valid(), "get_section_header on freed buffer");
  JHPC_REQUIRE(read_pos_ + 9 <= write_pos_,
               "buffer underflow reading section header");
  const std::byte* src = storage_.storage_address(read_pos_);
  const auto type = static_cast<SectionType>(src[0]);
  const auto els = static_cast<std::size_t>(
      jhpc::load_ordered<std::uint64_t>(src + 1, encoding_));
  read_pos_ += 9;
  if (num_els != nullptr) *num_els = els;
  last_section_els_ = els;
  return type;
}

void Buffer::commit() {
  JHPC_REQUIRE(is_valid(), "commit() on freed buffer");
  read_pos_ = 0;
}

void Buffer::notify_native_write(std::size_t bytes) {
  JHPC_REQUIRE(is_valid(), "notify_native_write() on freed buffer");
  JHPC_REQUIRE(bytes <= storage_.capacity(),
               "native wrote past the staging buffer capacity");
  write_pos_ = bytes;
  read_pos_ = 0;
}

void Buffer::clear() {
  JHPC_REQUIRE(is_valid(), "clear() on freed buffer");
  write_pos_ = 0;
  read_pos_ = 0;
  last_section_els_ = 0;
}

void Buffer::free() {
  JHPC_REQUIRE(is_valid(), "double free of mpjbuf buffer");
  BufferFactory* f = factory_;
  factory_ = nullptr;
  f->give_back(std::move(storage_));
  storage_ = minijvm::ByteBuffer{};
  write_pos_ = read_pos_ = 0;
}

// Explicit instantiations for the eight Java primitive types.
#define JHPC_MPJBUF_INSTANTIATE(T)                                          \
  template void Buffer::write<T>(const JArray<T>&, std::size_t,             \
                                 std::size_t);                              \
  template void Buffer::write<T>(const T*, std::size_t);                    \
  template void Buffer::read<T>(JArray<T>&, std::size_t, std::size_t);      \
  template void Buffer::read<T>(T*, std::size_t);

JHPC_MPJBUF_INSTANTIATE(minijvm::jbyte)
JHPC_MPJBUF_INSTANTIATE(minijvm::jboolean)
JHPC_MPJBUF_INSTANTIATE(minijvm::jchar)
JHPC_MPJBUF_INSTANTIATE(minijvm::jshort)
JHPC_MPJBUF_INSTANTIATE(minijvm::jint)
JHPC_MPJBUF_INSTANTIATE(minijvm::jlong)
JHPC_MPJBUF_INSTANTIATE(minijvm::jfloat)
JHPC_MPJBUF_INSTANTIATE(minijvm::jdouble)
#undef JHPC_MPJBUF_INSTANTIATE

}  // namespace jhpc::mpjbuf
