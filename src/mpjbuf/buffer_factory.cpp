#include "jhpc/mpjbuf/buffer_factory.hpp"

#include <algorithm>

#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mpjbuf {

FactoryConfig FactoryConfig::from_env() {
  FactoryConfig cfg;
  cfg.min_capacity = static_cast<std::size_t>(
      env_int64("JHPC_POOL_MIN_CAPACITY",
                static_cast<std::int64_t>(cfg.min_capacity)));
  cfg.max_pooled_buffers = static_cast<std::size_t>(
      env_int64("JHPC_POOL_MAX_BUFFERS",
                static_cast<std::int64_t>(cfg.max_pooled_buffers)));
  return cfg;
}

BufferFactory::BufferFactory(FactoryConfig config) : config_(config) {
  JHPC_REQUIRE(config_.min_capacity >= 64, "pool min_capacity too small");
}

std::size_t BufferFactory::size_class(std::size_t bytes,
                                      std::size_t min_capacity) {
  std::size_t cls = min_capacity;
  while (cls < bytes) cls <<= 1;
  return cls;
}

Buffer BufferFactory::get(std::size_t min_bytes) {
  const std::size_t want = size_class(min_bytes, config_.min_capacity);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.requests;
    // Smallest pooled buffer that fits.
    auto best = pool_.end();
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      if (it->capacity() >= want &&
          (best == pool_.end() || it->capacity() < best->capacity())) {
        best = it;
      }
    }
    if (best != pool_.end()) {
      ++stats_.pool_hits;
      minijvm::ByteBuffer storage = std::move(*best);
      pool_.erase(best);
      stats_.pooled_now = pool_.size();
      return Buffer(this, std::move(storage));
    }
    ++stats_.pool_misses;
  }
  // Miss: create a fresh direct buffer (outside the lock — creation is
  // the expensive part the pool exists to avoid).
  return Buffer(this, minijvm::ByteBuffer::allocate_direct(want));
}

void BufferFactory::give_back(minijvm::ByteBuffer storage) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.returned;
  if (pool_.size() >= config_.max_pooled_buffers) {
    ++stats_.dropped;
    return;  // storage destroyed here (direct memory released)
  }
  pool_.push_back(std::move(storage));
  stats_.pooled_now = pool_.size();
}

BufferFactory::Stats BufferFactory::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace jhpc::mpjbuf
