#include "jhpc/mpjbuf/buffer_factory.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::mpjbuf {

FactoryConfig FactoryConfig::from_env() {
  FactoryConfig cfg;
  cfg.min_capacity = static_cast<std::size_t>(
      env_int64("JHPC_POOL_MIN_CAPACITY",
                static_cast<std::int64_t>(cfg.min_capacity)));
  cfg.max_pooled_buffers = static_cast<std::size_t>(
      env_int64("JHPC_POOL_MAX_BUFFERS",
                static_cast<std::int64_t>(cfg.max_pooled_buffers)));
  return cfg;
}

BufferFactory::BufferFactory(FactoryConfig config) : config_(config) {
  JHPC_REQUIRE(config_.min_capacity >= 64, "pool min_capacity too small");
}

std::size_t BufferFactory::class_index(std::size_t bytes,
                                       std::size_t min_capacity) {
  if (bytes <= min_capacity) return 0;
  // Doublings of min_capacity needed to reach bytes: ceil(log2(q)) for
  // q = ceil(bytes / min_capacity). min_capacity need not be a power of
  // two, so work on the quotient rather than bit_ceil(bytes).
  const std::size_t q = (bytes - 1) / min_capacity + 1;
  const auto k = static_cast<std::size_t>(std::bit_width(q - 1));
  // min_capacity << k must be representable (the seed's doubling loop
  // simply never terminated here).
  JHPC_REQUIRE(
      k < std::numeric_limits<std::size_t>::digits &&
          min_capacity <= (std::numeric_limits<std::size_t>::max() >> k),
      "buffer request too large for any size class");
  return k;
}

std::size_t BufferFactory::size_class(std::size_t bytes,
                                      std::size_t min_capacity) {
  return min_capacity << class_index(bytes, min_capacity);
}

Buffer BufferFactory::get(std::size_t min_bytes) {
  const std::size_t cls = class_index(min_bytes, config_.min_capacity);
  const std::size_t want = config_.min_capacity << cls;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.requests;
    if (pvar_registry_ != nullptr)
      pvar_registry_->add(pv_requests_, pvar_rank_, 1);
    if (cls < classes_.size() && !classes_[cls].empty()) {
      ++stats_.pool_hits;
      if (pvar_registry_ != nullptr)
        pvar_registry_->add(pv_hits_, pvar_rank_, 1);
      minijvm::ByteBuffer storage = std::move(classes_[cls].back());
      classes_[cls].pop_back();
      --stats_.pooled_now;
      return Buffer(this, std::move(storage));
    }
    ++stats_.pool_misses;
    if (pvar_registry_ != nullptr)
      pvar_registry_->add(pv_misses_, pvar_rank_, 1);
  }
  // Miss: create a fresh direct buffer (outside the lock — creation is
  // the expensive part the pool exists to avoid).
  return Buffer(this, minijvm::ByteBuffer::allocate_direct(want));
}

void BufferFactory::give_back(minijvm::ByteBuffer storage) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.returned;
  if (pvar_registry_ != nullptr)
    pvar_registry_->add(pv_returned_, pvar_rank_, 1);
  if (stats_.pooled_now >= config_.max_pooled_buffers) {
    ++stats_.dropped;
    if (pvar_registry_ != nullptr)
      pvar_registry_->add(pv_dropped_, pvar_rank_, 1);
    return;  // storage destroyed here (direct memory released)
  }
  // Every pooled buffer came out of get(), so its capacity is exactly
  // min_capacity << k for some k and maps back to its own free list.
  const std::size_t cls =
      class_index(storage.capacity(), config_.min_capacity);
  if (cls >= classes_.size()) classes_.resize(cls + 1);
  classes_[cls].push_back(std::move(storage));
  ++stats_.pooled_now;
  if (pvar_registry_ != nullptr) {
    pvar_registry_->raise(pv_pooled_, pvar_rank_,
                          static_cast<std::int64_t>(stats_.pooled_now));
  }
}

void BufferFactory::bind_pvars(obs::PvarRegistry& registry, int rank) {
  using obs::PvarClass;
  std::lock_guard<std::mutex> lk(mu_);
  const bool rebind = pvar_registry_ == &registry && pvar_rank_ == rank;
  pvar_registry_ = &registry;
  pvar_rank_ = rank;
  pv_requests_ = registry.register_pvar("mpjbuf.pool.requests",
                                        PvarClass::kCounter,
                                        "staging-buffer requests");
  pv_hits_ = registry.register_pvar("mpjbuf.pool.hits", PvarClass::kCounter,
                                    "requests served from the pool");
  pv_misses_ = registry.register_pvar("mpjbuf.pool.misses",
                                      PvarClass::kCounter,
                                      "fresh direct-buffer allocations");
  pv_returned_ = registry.register_pvar("mpjbuf.pool.returned",
                                        PvarClass::kCounter,
                                        "buffers returned to the pool");
  pv_dropped_ = registry.register_pvar("mpjbuf.pool.dropped",
                                       PvarClass::kCounter,
                                       "buffers freed past the retention cap");
  pv_pooled_ = registry.register_pvar("mpjbuf.pool.pooled", PvarClass::kLevel,
                                      "pooled-buffer count high-water mark");
  // Seed with whatever this pool already counted so registry readbacks
  // match stats() regardless of when the binding happened. A re-bind to
  // the same (registry, rank) must not seed again: the live counts are
  // already there.
  if (rebind) return;
  registry.add(pv_requests_, rank, static_cast<std::int64_t>(stats_.requests));
  registry.add(pv_hits_, rank, static_cast<std::int64_t>(stats_.pool_hits));
  registry.add(pv_misses_, rank,
               static_cast<std::int64_t>(stats_.pool_misses));
  registry.add(pv_returned_, rank,
               static_cast<std::int64_t>(stats_.returned));
  registry.add(pv_dropped_, rank, static_cast<std::int64_t>(stats_.dropped));
  registry.raise(pv_pooled_, rank,
                 static_cast<std::int64_t>(stats_.pooled_now));
}

BufferFactory::Stats BufferFactory::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace jhpc::mpjbuf
