// The mpjbuf buffering layer (paper Section IV-A, Listing 1).
//
// Inspired by MPJ Express: a pool of direct ByteBuffers used as staging
// storage so that communicating Java arrays does not allocate a fresh
// direct buffer per message. A Buffer is a typed, sectioned view over one
// pooled direct ByteBuffer:
//
//   write(src, srcOff, numEls)  — copy from a Java array into the buffer
//   read(dst, dstOff, numEls)   — copy out into a Java array
//   put_section_header / get_section_header — multiple typed sections
//   set/get encoding            — byte order of the staged data
//   commit / clear / free       — lifecycle
//
// write/read use the element type's natural width and the configured
// encoding; when the encoding matches the native order the copy is a
// straight memcpy (the fast path a real implementation would take).
#pragma once

#include <cstddef>
#include <memory>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/minijvm/jarray.hpp"
#include "jhpc/minijvm/jtypes.hpp"
#include "jhpc/support/byte_order.hpp"

namespace jhpc::mpjbuf {

using minijvm::JArray;
using minijvm::JavaPrimitive;

/// Element type tag stored in section headers.
enum class SectionType : std::uint8_t {
  kUndefined = 0,
  kByte,
  kBoolean,
  kChar,
  kShort,
  kInt,
  kLong,
  kFloat,
  kDouble,
};

/// Map a Java primitive to its section tag.
template <JavaPrimitive T>
constexpr SectionType section_type_of();

class BufferFactory;

/// A staging buffer backed by a pooled direct ByteBuffer.
///
/// Buffers are created by a BufferFactory and returned to its pool by
/// free() (or the destructor). The usable payload capacity is fixed at
/// creation.
class Buffer {
 public:
  Buffer() = default;
  ~Buffer();
  Buffer(Buffer&&) noexcept;
  Buffer& operator=(Buffer&&) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  bool is_valid() const { return factory_ != nullptr; }
  std::size_t capacity() const;
  /// Bytes staged so far (the write cursor).
  std::size_t size() const;

  // --- Typed bulk copies (the paper's write()/read()) ----------------------
  /// Append `num_els` elements from `source[src_off...]`.
  template <JavaPrimitive T>
  void write(const JArray<T>& source, std::size_t src_off,
             std::size_t num_els);
  /// Append from a raw native array (used by the bindings' native side).
  template <JavaPrimitive T>
  void write(const T* source, std::size_t num_els);
  /// Consume `num_els` elements into `dest[dst_off...]`.
  template <JavaPrimitive T>
  void read(JArray<T>& dest, std::size_t dst_off, std::size_t num_els);
  template <JavaPrimitive T>
  void read(T* dest, std::size_t num_els);

  // --- Native-side cursor access ---------------------------------------------
  /// Reserve `bytes` at the write cursor for direct filling (e.g. a
  /// derived-datatype pack) and advance it; returns the stable pointer.
  std::byte* reserve(std::size_t bytes);
  /// Consume `bytes` at the read cursor (e.g. a derived-datatype unpack)
  /// and advance it; returns the stable pointer.
  const std::byte* consume(std::size_t bytes);

  // --- Sections -------------------------------------------------------------
  /// Begin a typed section at the write cursor (one header byte + element
  /// count), so one buffer can stage several arrays of different types.
  void put_section_header(SectionType type, std::size_t num_els);
  /// Read a section header at the read cursor.
  SectionType get_section_header(std::size_t* num_els);
  /// Size of the most recently written section header's payload.
  std::size_t get_section_size() const { return last_section_els_; }
  void set_section_size(std::size_t els) { last_section_els_ = els; }

  // --- Encoding ----------------------------------------------------------------
  void set_encoding(jhpc::ByteOrder order) { encoding_ = order; }
  jhpc::ByteOrder get_encoding() const { return encoding_; }

  // --- Lifecycle ------------------------------------------------------------------
  /// Freeze the staged bytes and rewind the read cursor (sender side
  /// hand-off point to the native layer).
  void commit();
  /// Receiver-side hand-off: the native layer deposited `bytes` directly
  /// into the backing storage; make them readable from the start.
  void notify_native_write(std::size_t bytes);
  /// Reset both cursors, keep the storage.
  void clear();
  /// Return the storage to the factory pool; the Buffer becomes invalid.
  void free();

  /// The backing direct storage (stable address) for the native side.
  std::byte* native_address() const;
  /// Direct view of the staged bytes (for the JNI layer).
  const minijvm::ByteBuffer& backing() const { return storage_; }

 private:
  friend class BufferFactory;
  Buffer(BufferFactory* factory, minijvm::ByteBuffer storage);

  template <typename T>
  void write_impl(const T* src, std::size_t num_els);
  template <typename T>
  void read_impl(T* dst, std::size_t num_els);

  BufferFactory* factory_ = nullptr;
  minijvm::ByteBuffer storage_;
  std::size_t write_pos_ = 0;
  std::size_t read_pos_ = 0;
  std::size_t last_section_els_ = 0;
  jhpc::ByteOrder encoding_ = jhpc::native_order();
};

template <JavaPrimitive T>
constexpr SectionType section_type_of() {
  if constexpr (std::is_same_v<T, minijvm::jbyte>) return SectionType::kByte;
  if constexpr (std::is_same_v<T, minijvm::jboolean>)
    return SectionType::kBoolean;
  if constexpr (std::is_same_v<T, minijvm::jchar>) return SectionType::kChar;
  if constexpr (std::is_same_v<T, minijvm::jshort>)
    return SectionType::kShort;
  if constexpr (std::is_same_v<T, minijvm::jint>) return SectionType::kInt;
  if constexpr (std::is_same_v<T, minijvm::jlong>) return SectionType::kLong;
  if constexpr (std::is_same_v<T, minijvm::jfloat>)
    return SectionType::kFloat;
  if constexpr (std::is_same_v<T, minijvm::jdouble>)
    return SectionType::kDouble;
}

}  // namespace jhpc::mpjbuf
