// The pool behind the buffering layer.
//
// "The buffering layer dynamically maintains a pool of direct ByteBuffers
//  ... The proposed buffering layer avoids the overhead of creating a
//  ByteBuffer every time a message comprising of Java arrays is
//  communicated." (paper, Section IV-A)
//
// Buffers are size-classed to powers of two and pooled in one free list
// per class: get() pops the request's class in O(1) (or allocates a fresh
// direct buffer on a miss) and give_back() pushes in O(1), instead of the
// previous linear scan of one mixed pool under the lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "jhpc/minijvm/bytebuffer.hpp"
#include "jhpc/mpjbuf/buffer.hpp"
#include "jhpc/obs/pvar.hpp"

namespace jhpc::mpjbuf {

/// Pool configuration (env-overridable).
struct FactoryConfig {
  /// Smallest buffer the pool hands out; requests below are rounded up.
  std::size_t min_capacity = 16 * 1024;
  /// Pool retention cap; buffers freed beyond this are dropped (their
  /// direct storage is released).
  std::size_t max_pooled_buffers = 64;

  /// Read JHPC_POOL_MIN_CAPACITY / JHPC_POOL_MAX_BUFFERS.
  static FactoryConfig from_env();
};

/// Factory + pool of direct staging buffers.
///
/// Thread-safe: in the bindings each rank owns one factory, but nothing
/// prevents sharing. Buffers must not outlive their factory.
class BufferFactory {
 public:
  explicit BufferFactory(FactoryConfig config = FactoryConfig::from_env());

  /// Obtain a staging buffer with capacity >= min_bytes. Pool hit: reuse
  /// (O(1) pop from the request's size class); miss: allocate a fresh
  /// direct ByteBuffer (costly, by design). Throws jhpc::Error when the
  /// rounded-up capacity would overflow std::size_t.
  Buffer get(std::size_t min_bytes);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;  ///< fresh direct allocations
    std::uint64_t returned = 0;
    std::uint64_t dropped = 0;      ///< freed past the retention cap
    std::size_t pooled_now = 0;
  };
  Stats stats() const;

  /// Mirror this pool's stats into the MPI_T-style pvar registry under
  /// mpjbuf.pool.* with values accounted to `rank`. Counts accumulated
  /// before binding are seeded so registry and stats() always agree.
  /// Find-or-create registration makes per-rank binding idempotent.
  void bind_pvars(obs::PvarRegistry& registry, int rank);

  const FactoryConfig& config() const { return config_; }

 private:
  friend class Buffer;
  /// Called by Buffer::free()/~Buffer to return storage to the pool.
  void give_back(minijvm::ByteBuffer storage);

  /// Capacity of the size class serving `bytes`: min_capacity doubled
  /// until it fits, computed in O(1). Throws on std::size_t overflow.
  static std::size_t size_class(std::size_t bytes, std::size_t min_capacity);

  /// Free-list index of that class (its number of doublings).
  static std::size_t class_index(std::size_t bytes, std::size_t min_capacity);

  FactoryConfig config_;
  mutable std::mutex mu_;
  /// classes_[k] holds idle buffers of capacity min_capacity << k.
  std::vector<std::vector<minijvm::ByteBuffer>> classes_;
  Stats stats_;

  // Pvar mirroring (null until bind_pvars; mutated under mu_).
  obs::PvarRegistry* pvar_registry_ = nullptr;
  int pvar_rank_ = -1;
  obs::PvarId pv_requests_, pv_hits_, pv_misses_;
  obs::PvarId pv_returned_, pv_dropped_, pv_pooled_;
};

}  // namespace jhpc::mpjbuf
