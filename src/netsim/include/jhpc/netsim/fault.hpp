// Deterministic fault injection for the virtual fabric.
//
// A FaultPlan describes how unreliable each directed node->node link is:
// per-transmission drop probability, uniform latency jitter, a transient
// link-down window (in virtual time) and a bandwidth degradation factor.
// The plan is *seeded*: every random decision is a pure hash of
//
//     (seed, src_rank, dst_rank, message_seq, attempt, salt)
//
// where `message_seq` is a per-directed-rank-pair counter advanced once
// per message ON THE SENDER'S THREAD (program order). No decision reads a
// global RNG stream, so two runs with the same seed make bit-identical
// drop/jitter choices regardless of how the host scheduler interleaves
// rank threads — the contract every chaos test relies on.
//
// The plan is carried inside FabricConfig, so it reaches every stack
// (native minimpi, the mv2j/ompij bindings, the ombj benchmarks) without
// extra plumbing. With the default (empty) plan, `FaultPlan::enabled()`
// is false and the fabric's fault entry points are never consulted: the
// perfect-network fast paths are byte-for-byte those of a fault-free
// build (strict zero-cost-off).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jhpc::netsim {

/// Fault behaviour of one directed node->node link (or the default for
/// all links). All-default means "perfect link".
struct LinkFaults {
  /// Probability that one transmission attempt (data packet or control
  /// message) is lost. In [0, 1].
  double drop_prob = 0.0;
  /// Extra one-way latency drawn uniformly from [0, jitter_ns] per
  /// attempt, ns.
  std::int64_t jitter_ns = 0;
  /// Transient outage: attempts STARTING at virtual time
  /// [down_from_ns, down_until_ns) are lost. down_until_ns <= down_from_ns
  /// means "no window".
  std::int64_t down_from_ns = 0;
  std::int64_t down_until_ns = 0;
  /// Serialization-rate degradation: effective bandwidth is
  /// `bandwidth * bandwidth_factor` (0 < factor <= 1 models a degraded
  /// link; 1 = nominal).
  double bandwidth_factor = 1.0;

  bool has_down_window() const { return down_until_ns > down_from_ns; }
  /// True when this link deviates from a perfect link in any way.
  bool active() const {
    return drop_prob > 0.0 || jitter_ns > 0 || has_down_window() ||
           bandwidth_factor != 1.0;
  }
};

/// The whole job's fault model: a default per-link behaviour plus
/// optional per-directed-link overrides, a seed, and the reliability
/// protocol's pacing knobs (carried here so they travel with the plan
/// through every stack's FabricConfig).
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaults link_defaults;

  struct LinkOverride {
    int src_node = 0;
    int dst_node = 0;
    LinkFaults faults;
  };
  std::vector<LinkOverride> overrides;

  // --- Rank-failure model (fail-stop) -----------------------------------
  /// One scheduled rank death: the rank fail-stops the first time its own
  /// thread enters the transport at virtual time >= at_vns. A dead rank
  /// never communicates again; survivors detect the death through the
  /// epitaph the failing rank publishes (see docs/FAULTS.md).
  struct RankKill {
    int rank = 0;
    std::int64_t at_vns = 0;
  };
  std::vector<RankKill> kills;

  /// Failure-detection latency: survivors observe a death no earlier than
  /// `dead_at + heartbeat_ns` of virtual time (models heartbeat rounds on
  /// a real fabric). Purely a virtual-time floor; detection itself is
  /// epitaph-based and therefore deterministic.
  std::int64_t heartbeat_ns = 1'000'000;

  // --- Reliable-delivery pacing (used by the minimpi transport) ---------
  /// Initial ack/CTS retransmit timeout, virtual ns.
  std::int64_t rto_ns = 50'000;
  /// Exponential-backoff cap for the retransmit timeout, virtual ns.
  std::int64_t rto_max_ns = 2'000'000;
  /// Total virtual-time budget for delivering one message (all
  /// retransmits included); exhausting it raises TransportTimeoutError.
  std::int64_t delivery_timeout_ns = 500'000'000;

  /// True when any link (default or override) injects faults. Gates every
  /// fault code path; false for a default-constructed plan. Deliberately
  /// does NOT cover `kills`: rank death must not switch the transport to
  /// the retransmit protocol (see kills_enabled()).
  bool enabled() const;

  /// True when any rank death is scheduled. Gates the rank-failure checks
  /// in the transport independently of the link-fault machinery.
  bool kills_enabled() const { return !kills.empty(); }

  /// Fault behaviour of the directed link src_node -> dst_node.
  const LinkFaults& link(int src_node, int dst_node) const;

  /// Read JHPC_FAULT_SEED / JHPC_FAULT_DROP / JHPC_FAULT_JITTER_NS /
  /// JHPC_FAULT_DOWN ("FROM:UNTIL" in virtual ns) / JHPC_FAULT_BW_FACTOR /
  /// JHPC_FAULT_LINKS / JHPC_FAULT_RTO_NS / JHPC_FAULT_RTO_MAX_NS /
  /// JHPC_FAULT_TIMEOUT_NS, plus the rank-failure model: JHPC_FAULT_KILL
  /// ("RANK@VNS[;RANK@VNS...]") and JHPC_FAULT_HB_NS. Values are
  /// validated (probabilities in [0,1], durations non-negative, factors
  /// positive); bad values throw InvalidArgumentError.
  static FaultPlan from_env();

  /// Parse a kill spec into `kills`:
  ///
  ///   "1@500000;3@2000000"
  ///
  /// Each clause is RANK@VNS (rank dies at virtual ns). Throws
  /// InvalidArgumentError on malformed input, negative values, or a rank
  /// listed twice.
  void parse_kills(const std::string& spec);

  /// Parse a per-link override spec into `overrides`:
  ///
  ///   "0>1:drop=0.5,jitter=200;2>0:down=1000-2000,bw=0.25"
  ///
  /// Each clause is SRC>DST:key=value[,key=value...] with keys drop,
  /// jitter (ns), down (FROM-UNTIL ns) and bw. Unspecified keys inherit
  /// `link_defaults`. Throws InvalidArgumentError on malformed input.
  void parse_links(const std::string& spec);
};

/// Salt values separating the independent decision streams of one
/// message (data-drop, ack-drop, RTS/CTS-drop, jitter draws).
enum class FaultSalt : std::uint32_t {
  kData = 1,  ///< payload packet drop
  kAck = 2,   ///< acknowledgement drop (reverse link)
  kRts = 3,   ///< rendezvous ready-to-send drop
  kCts = 4,   ///< rendezvous clear-to-send drop (reverse link)
};

/// Offset added to a FaultSalt to key the same attempt's latency-jitter
/// draw, so jitter stays identical whether or not drops are configured.
inline constexpr std::uint32_t kJitterSaltOffset = 0x100;

/// Stateless mixing hash (splitmix64 chain) behind every fault decision.
/// Exposed for tests: determinism here IS the feature.
std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t src,
                         std::uint64_t dst, std::uint64_t seq,
                         std::uint64_t attempt, std::uint64_t salt);

/// The same hash mapped to [0, 1).
double fault_uniform(std::uint64_t seed, std::uint64_t src, std::uint64_t dst,
                     std::uint64_t seq, std::uint64_t attempt,
                     std::uint64_t salt);

}  // namespace jhpc::netsim
