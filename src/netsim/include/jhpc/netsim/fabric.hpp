// Virtual cluster fabric: node placement and inter-node link cost model.
//
// The paper evaluates on TACC Frontera (Cascade Lake nodes, InfiniBand
// HDR-100). This environment has neither multiple nodes nor InfiniBand, so
// the fabric is simulated: ranks are mapped onto virtual nodes (block
// placement, `ppn` ranks per node) and every message that crosses a node
// boundary pays
//
//     serialization (bytes / bandwidth, on a per-directed-link clock)
//   + one-way latency
//
// before it is considered delivered. Messages between ranks on the same
// virtual node pay only a small fixed latency here — their dominant cost
// is the real shared-memory copy performed by the transport. The per-link
// clock makes concurrent transfers queue behind each other, which is what
// gives osu_bw its saturation plateau and keeps multi-rank collectives
// honest about link contention.
//
// All timestamps are VIRTUAL nanoseconds: the fabric never consults the
// wall clock. Callers (the minimpi transport) pass the sender's virtual
// time and obtain the virtual delivery time; rank virtual clocks advance
// by real per-thread CPU time plus these modelled delays, so tree-shaped
// collectives exhibit their true parallelism even when every rank thread
// shares one physical core.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "jhpc/netsim/fault.hpp"

namespace jhpc::netsim {

/// How ranks map onto virtual nodes (mpirun's block vs cyclic mapping;
/// OMB exercises both because collective locality depends on it).
enum class Placement : std::uint8_t {
  kBlock,       ///< ranks 0..ppn-1 on node 0, ppn..2ppn-1 on node 1, ...
  kRoundRobin,  ///< rank r on node r % node_count
};

/// Tunable fabric parameters. Defaults approximate an HDR-100 InfiniBand
/// fabric (the paper's testbed): ~1.8 us one-way small-message latency at
/// the native level and ~12.5 GB/s per-direction link bandwidth.
struct FabricConfig {
  /// Ranks per virtual node. <=0 means "all ranks on one node", i.e. a
  /// pure intra-node run.
  int ranks_per_node = 0;
  /// Rank-to-node mapping policy. Env: JHPC_PLACEMENT=block|rr.
  Placement placement = Placement::kBlock;
  /// Explicit rank→node map overriding ranks_per_node/placement when
  /// non-empty (one entry per rank, node ids 0..max contiguous). This is
  /// how tests exercise arbitrary shuffled placements that no
  /// block/round-robin layout produces; topology-aware collectives must
  /// be correct for any of them.
  std::vector<int> node_map{};
  /// One-way latency added to every inter-node message, ns.
  std::int64_t inter_latency_ns = 1800;
  /// Per-direction inter-node link bandwidth, MB/s (MB = 1e6 bytes).
  double inter_bandwidth_mbps = 12500.0;
  /// Latency added to intra-node messages, ns (models kernel/shared-memory
  /// hand-off; the copies themselves are real CPU work).
  std::int64_t intra_latency_ns = 100;

  /// Seeded fault-injection plan (drops, jitter, down windows, bandwidth
  /// degradation). Disabled by default; see jhpc/netsim/fault.hpp. Env:
  /// JHPC_FAULT_*.
  FaultPlan faults{};

  /// Read JHPC_PPN / JHPC_INTER_LAT_NS / JHPC_INTER_BW_MBPS /
  /// JHPC_INTRA_LAT_NS / JHPC_FAULT_*, falling back to the defaults
  /// above. Values are validated: JHPC_PPN and the latencies must be
  /// non-negative, the bandwidth positive; garbage throws
  /// InvalidArgumentError.
  static FabricConfig from_env();
};

/// The fabric instance shared by all ranks of one Universe.
///
/// Thread-safe: `reserve_delivery` may be called concurrently from any
/// rank thread.
class Fabric {
 public:
  Fabric(int world_size, FabricConfig config);

  int world_size() const { return world_size_; }
  int node_count() const { return node_count_; }
  const FabricConfig& config() const { return config_; }

  /// Virtual node hosting `rank`.
  int node_of(int rank) const;

  /// True when both ranks live on the same virtual node.
  bool same_node(int rank_a, int rank_b) const;

  /// World ranks hosted on `node`, ascending. The topology query behind
  /// hierarchical (node-aware) collectives; built once at construction.
  const std::vector<int>& ranks_on_node(int node) const;

  /// Reserve link time for a `bytes`-sized message from `src_rank` to
  /// `dst_rank` entering the fabric at virtual time `start_ns`; returns
  /// the virtual time at which the message is delivered. For intra-node
  /// pairs this is start_ns + intra_latency_ns and no link time is
  /// reserved.
  std::int64_t reserve_delivery(std::int64_t start_ns, int src_rank,
                                int dst_rank, std::size_t bytes);

  /// Serialization time for `bytes` on an inter-node link, ns.
  std::int64_t serialization_ns(std::size_t bytes) const;

  /// One-way control-message latency between two ranks (inter- or
  /// intra-node); what a rendezvous RTS/CTS hop costs.
  std::int64_t hop_latency_ns(int src_rank, int dst_rank) const {
    return same_node(src_rank, dst_rank) ? config_.intra_latency_ns
                                         : config_.inter_latency_ns;
  }

  /// Clear all link clocks and per-pair message sequence counters
  /// (virtual time restarts at 0 for a new job).
  void reset();

  // --- Fault injection (see jhpc/netsim/fault.hpp) -----------------------

  /// True when the configured FaultPlan injects anything. Cached so the
  /// transport's zero-cost-off guard is one bool load.
  bool faults_enabled() const { return faults_enabled_; }
  const FaultPlan& faults() const { return config_.faults; }

  /// Next message sequence number for the directed rank pair src->dst.
  /// Must be called on the SENDING rank's thread, once per message (not
  /// per attempt): per-pair program order is what keys the deterministic
  /// fault decisions. Only valid when faults_enabled().
  std::uint64_t next_msg_seq(int src_rank, int dst_rank);

  /// Outcome of one transmission attempt under the fault plan.
  struct TxAttempt {
    bool dropped = false;
    /// Virtual delivery time (jitter included); meaningless when dropped.
    std::int64_t deliver_at_ns = 0;
  };

  /// One DATA-packet attempt: reserves link occupancy (lost frames still
  /// occupy the sender's serializer; bandwidth degradation applies), then
  /// decides drop (down window or seeded draw) and jitter. Intra-node
  /// attempts never fault and pay only intra_latency_ns.
  TxAttempt try_data(std::int64_t start_ns, int src_rank, int dst_rank,
                     std::size_t bytes, std::uint64_t seq,
                     std::uint32_t attempt);

  /// One CONTROL-message attempt (ACK/RTS/CTS): latency-only, reserves no
  /// link time. `salt` separates the decision streams of the protocol's
  /// different control messages for the same (seq, attempt).
  TxAttempt try_control(std::int64_t start_ns, int src_rank, int dst_rank,
                        std::uint64_t seq, std::uint32_t attempt,
                        FaultSalt salt);

 private:
  struct Link {
    /// Timestamp (ns) at which this directed node->node link is free.
    std::atomic<std::int64_t> next_free_ns{0};
  };

  Link& link(int src_node, int dst_node);

  /// Drop/jitter decision shared by try_data/try_control. Returns true
  /// when the attempt is lost; otherwise *jitter_ns gets the extra
  /// latency draw.
  bool attempt_faults(const LinkFaults& lf, std::int64_t start_ns,
                      int src_rank, int dst_rank, std::uint64_t seq,
                      std::uint32_t attempt, std::uint32_t salt,
                      std::int64_t* jitter_ns) const;

  FabricConfig config_;
  int world_size_;
  int node_count_;
  int ranks_per_node_;
  /// node -> its world ranks, ascending (see ranks_on_node).
  std::vector<std::vector<int>> node_members_;
  bool faults_enabled_ = false;
  std::vector<std::unique_ptr<Link>> links_;  // node_count^2 directed links
  /// Per directed rank pair message counters (world_size^2; allocated only
  /// when faults are enabled). Each cell is written only by its source
  /// rank's thread; atomics keep the accounting race-checker clean.
  std::unique_ptr<std::atomic<std::uint64_t>[]> msg_seq_;
};

}  // namespace jhpc::netsim
