#include "jhpc/netsim/fabric.hpp"

#include <algorithm>

#include "jhpc/support/clock.hpp"
#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::netsim {

FabricConfig FabricConfig::from_env() {
  FabricConfig cfg;
  cfg.ranks_per_node = static_cast<int>(
      env_int64("JHPC_PPN", cfg.ranks_per_node));
  JHPC_REQUIRE(cfg.ranks_per_node >= 0,
               "$JHPC_PPN must be non-negative (0 = all ranks on one node)");
  cfg.inter_latency_ns = env_int64("JHPC_INTER_LAT_NS", cfg.inter_latency_ns);
  JHPC_REQUIRE(cfg.inter_latency_ns >= 0,
               "$JHPC_INTER_LAT_NS must be non-negative");
  cfg.inter_bandwidth_mbps =
      env_double("JHPC_INTER_BW_MBPS", cfg.inter_bandwidth_mbps);
  JHPC_REQUIRE(cfg.inter_bandwidth_mbps > 0.0,
               "$JHPC_INTER_BW_MBPS must be positive");
  cfg.intra_latency_ns = env_int64("JHPC_INTRA_LAT_NS", cfg.intra_latency_ns);
  JHPC_REQUIRE(cfg.intra_latency_ns >= 0,
               "$JHPC_INTRA_LAT_NS must be non-negative");
  cfg.faults = FaultPlan::from_env();
  if (auto p = env_string("JHPC_PLACEMENT")) {
    if (*p == "block") {
      cfg.placement = Placement::kBlock;
    } else if (*p == "rr") {
      cfg.placement = Placement::kRoundRobin;
    } else {
      throw InvalidArgumentError("$JHPC_PLACEMENT must be 'block' or 'rr'");
    }
  }
  return cfg;
}

Fabric::Fabric(int world_size, FabricConfig config)
    : config_(config), world_size_(world_size) {
  JHPC_REQUIRE(world_size >= 1, "fabric needs at least one rank");
  JHPC_REQUIRE(config_.inter_latency_ns >= 0, "negative inter-node latency");
  JHPC_REQUIRE(config_.intra_latency_ns >= 0, "negative intra-node latency");
  JHPC_REQUIRE(config_.inter_bandwidth_mbps > 0.0,
               "inter-node bandwidth must be positive");
  ranks_per_node_ =
      config_.ranks_per_node <= 0 ? world_size : config_.ranks_per_node;
  if (config_.node_map.empty()) {
    node_count_ = (world_size + ranks_per_node_ - 1) / ranks_per_node_;
  } else {
    JHPC_REQUIRE(config_.node_map.size() ==
                     static_cast<std::size_t>(world_size),
                 "node_map must have one entry per rank");
    int max_node = 0;
    for (const int n : config_.node_map) {
      JHPC_REQUIRE(n >= 0 && n < world_size, "node_map entry out of range");
      max_node = std::max(max_node, n);
    }
    node_count_ = max_node + 1;
  }
  node_members_.resize(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < world_size; ++r)
    node_members_[static_cast<std::size_t>(node_of(r))].push_back(r);
  for (int n = 0; n < node_count_; ++n) {
    JHPC_REQUIRE(!node_members_[static_cast<std::size_t>(n)].empty(),
                 "node_map node ids must be contiguous (empty node)");
  }
  links_.resize(static_cast<std::size_t>(node_count_) *
                static_cast<std::size_t>(node_count_));
  for (auto& l : links_) l = std::make_unique<Link>();
  faults_enabled_ = config_.faults.enabled();
  if (faults_enabled_) {
    const auto pairs = static_cast<std::size_t>(world_size_) *
                       static_cast<std::size_t>(world_size_);
    msg_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(pairs);
    for (std::size_t i = 0; i < pairs; ++i)
      msg_seq_[i].store(0, std::memory_order_relaxed);
  }
}

int Fabric::node_of(int rank) const {
  JHPC_REQUIRE(rank >= 0 && rank < world_size_, "rank out of range");
  if (!config_.node_map.empty())
    return config_.node_map[static_cast<std::size_t>(rank)];
  return config_.placement == Placement::kBlock ? rank / ranks_per_node_
                                                : rank % node_count_;
}

bool Fabric::same_node(int rank_a, int rank_b) const {
  return node_of(rank_a) == node_of(rank_b);
}

const std::vector<int>& Fabric::ranks_on_node(int node) const {
  JHPC_REQUIRE(node >= 0 && node < node_count_, "node out of range");
  return node_members_[static_cast<std::size_t>(node)];
}

std::int64_t Fabric::serialization_ns(std::size_t bytes) const {
  // MB/s with MB = 1e6 bytes  =>  ns per byte = 1e3 / MBps.
  return static_cast<std::int64_t>(static_cast<double>(bytes) * 1e3 /
                                   config_.inter_bandwidth_mbps);
}

void Fabric::reset() {
  for (auto& l : links_) l->next_free_ns.store(0, std::memory_order_relaxed);
  if (msg_seq_ != nullptr) {
    const auto pairs = static_cast<std::size_t>(world_size_) *
                       static_cast<std::size_t>(world_size_);
    for (std::size_t i = 0; i < pairs; ++i)
      msg_seq_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Fabric::next_msg_seq(int src_rank, int dst_rank) {
  JHPC_ASSERT(msg_seq_ != nullptr, "next_msg_seq without a fault plan");
  auto& cell = msg_seq_[static_cast<std::size_t>(src_rank) *
                            static_cast<std::size_t>(world_size_) +
                        static_cast<std::size_t>(dst_rank)];
  return cell.fetch_add(1, std::memory_order_relaxed);
}

bool Fabric::attempt_faults(const LinkFaults& lf, std::int64_t start_ns,
                            int src_rank, int dst_rank, std::uint64_t seq,
                            std::uint32_t attempt, std::uint32_t salt,
                            std::int64_t* jitter_ns) const {
  if (lf.has_down_window() && start_ns >= lf.down_from_ns &&
      start_ns < lf.down_until_ns) {
    return true;
  }
  const auto src = static_cast<std::uint64_t>(src_rank);
  const auto dst = static_cast<std::uint64_t>(dst_rank);
  if (lf.drop_prob > 0.0 &&
      fault_uniform(config_.faults.seed, src, dst, seq, attempt, salt) <
          lf.drop_prob) {
    return true;
  }
  if (lf.jitter_ns > 0) {
    // Separate draw stream: the same attempt must keep its jitter whether
    // or not a drop probability is configured.
    *jitter_ns = static_cast<std::int64_t>(
        fault_hash(config_.faults.seed, src, dst, seq, attempt,
                   salt + kJitterSaltOffset) %
        static_cast<std::uint64_t>(lf.jitter_ns + 1));
  }
  return false;
}

Fabric::TxAttempt Fabric::try_data(std::int64_t start_ns, int src_rank,
                                   int dst_rank, std::size_t bytes,
                                   std::uint64_t seq, std::uint32_t attempt) {
  const int sn = node_of(src_rank);
  const int dn = node_of(dst_rank);
  // Intra-node messages move through shared memory: the fault plan models
  // the fabric, so they never drop and pay only the hand-off latency.
  if (sn == dn) return {false, start_ns + config_.intra_latency_ns};

  const LinkFaults& lf = config_.faults.link(sn, dn);
  // Every attempt occupies the sender's serializer — retransmitted and
  // lost frames burn real link time, which is how drops degrade effective
  // bandwidth. Degradation stretches the occupancy.
  const std::int64_t occupy = static_cast<std::int64_t>(
      static_cast<double>(serialization_ns(bytes)) / lf.bandwidth_factor);
  Link& l = link(sn, dn);
  std::int64_t free_at = l.next_free_ns.load(std::memory_order_relaxed);
  std::int64_t begin, end;
  do {
    begin = free_at > start_ns ? free_at : start_ns;
    end = begin + occupy;
  } while (!l.next_free_ns.compare_exchange_weak(free_at, end,
                                                 std::memory_order_acq_rel));

  std::int64_t jitter = 0;
  if (attempt_faults(lf, start_ns, src_rank, dst_rank, seq, attempt,
                     static_cast<std::uint32_t>(FaultSalt::kData), &jitter)) {
    return {true, 0};
  }
  return {false, end + config_.inter_latency_ns + jitter};
}

Fabric::TxAttempt Fabric::try_control(std::int64_t start_ns, int src_rank,
                                      int dst_rank, std::uint64_t seq,
                                      std::uint32_t attempt, FaultSalt salt) {
  const int sn = node_of(src_rank);
  const int dn = node_of(dst_rank);
  if (sn == dn) return {false, start_ns + config_.intra_latency_ns};

  const LinkFaults& lf = config_.faults.link(sn, dn);
  std::int64_t jitter = 0;
  if (attempt_faults(lf, start_ns, src_rank, dst_rank, seq, attempt,
                     static_cast<std::uint32_t>(salt), &jitter)) {
    return {true, 0};
  }
  return {false, start_ns + config_.inter_latency_ns + jitter};
}

Fabric::Link& Fabric::link(int src_node, int dst_node) {
  return *links_[static_cast<std::size_t>(src_node) *
                     static_cast<std::size_t>(node_count_) +
                 static_cast<std::size_t>(dst_node)];
}

std::int64_t Fabric::reserve_delivery(std::int64_t start_ns, int src_rank,
                                      int dst_rank, std::size_t bytes) {
  const int sn = node_of(src_rank);
  const int dn = node_of(dst_rank);
  if (sn == dn) return start_ns + config_.intra_latency_ns;

  const std::int64_t occupy = serialization_ns(bytes);
  Link& l = link(sn, dn);
  std::int64_t free_at = l.next_free_ns.load(std::memory_order_relaxed);
  std::int64_t start, end;
  do {
    start = free_at > start_ns ? free_at : start_ns;
    end = start + occupy;
  } while (!l.next_free_ns.compare_exchange_weak(free_at, end,
                                                 std::memory_order_acq_rel));
  return end + config_.inter_latency_ns;
}

}  // namespace jhpc::netsim
