#include "jhpc/netsim/fabric.hpp"

#include "jhpc/support/clock.hpp"
#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::netsim {

FabricConfig FabricConfig::from_env() {
  FabricConfig cfg;
  cfg.ranks_per_node = static_cast<int>(
      env_int64("JHPC_PPN", cfg.ranks_per_node));
  cfg.inter_latency_ns = env_int64("JHPC_INTER_LAT_NS", cfg.inter_latency_ns);
  cfg.inter_bandwidth_mbps =
      env_double("JHPC_INTER_BW_MBPS", cfg.inter_bandwidth_mbps);
  cfg.intra_latency_ns = env_int64("JHPC_INTRA_LAT_NS", cfg.intra_latency_ns);
  if (auto p = env_string("JHPC_PLACEMENT")) {
    if (*p == "block") {
      cfg.placement = Placement::kBlock;
    } else if (*p == "rr") {
      cfg.placement = Placement::kRoundRobin;
    } else {
      throw InvalidArgumentError("$JHPC_PLACEMENT must be 'block' or 'rr'");
    }
  }
  return cfg;
}

Fabric::Fabric(int world_size, FabricConfig config)
    : config_(config), world_size_(world_size) {
  JHPC_REQUIRE(world_size >= 1, "fabric needs at least one rank");
  JHPC_REQUIRE(config_.inter_latency_ns >= 0, "negative inter-node latency");
  JHPC_REQUIRE(config_.intra_latency_ns >= 0, "negative intra-node latency");
  JHPC_REQUIRE(config_.inter_bandwidth_mbps > 0.0,
               "inter-node bandwidth must be positive");
  ranks_per_node_ =
      config_.ranks_per_node <= 0 ? world_size : config_.ranks_per_node;
  node_count_ = (world_size + ranks_per_node_ - 1) / ranks_per_node_;
  links_.resize(static_cast<std::size_t>(node_count_) *
                static_cast<std::size_t>(node_count_));
  for (auto& l : links_) l = std::make_unique<Link>();
}

int Fabric::node_of(int rank) const {
  JHPC_REQUIRE(rank >= 0 && rank < world_size_, "rank out of range");
  return config_.placement == Placement::kBlock ? rank / ranks_per_node_
                                                : rank % node_count_;
}

bool Fabric::same_node(int rank_a, int rank_b) const {
  return node_of(rank_a) == node_of(rank_b);
}

std::int64_t Fabric::serialization_ns(std::size_t bytes) const {
  // MB/s with MB = 1e6 bytes  =>  ns per byte = 1e3 / MBps.
  return static_cast<std::int64_t>(static_cast<double>(bytes) * 1e3 /
                                   config_.inter_bandwidth_mbps);
}

void Fabric::reset() {
  for (auto& l : links_) l->next_free_ns.store(0, std::memory_order_relaxed);
}

Fabric::Link& Fabric::link(int src_node, int dst_node) {
  return *links_[static_cast<std::size_t>(src_node) *
                     static_cast<std::size_t>(node_count_) +
                 static_cast<std::size_t>(dst_node)];
}

std::int64_t Fabric::reserve_delivery(std::int64_t start_ns, int src_rank,
                                      int dst_rank, std::size_t bytes) {
  const int sn = node_of(src_rank);
  const int dn = node_of(dst_rank);
  if (sn == dn) return start_ns + config_.intra_latency_ns;

  const std::int64_t occupy = serialization_ns(bytes);
  Link& l = link(sn, dn);
  std::int64_t free_at = l.next_free_ns.load(std::memory_order_relaxed);
  std::int64_t start, end;
  do {
    start = free_at > start_ns ? free_at : start_ns;
    end = start + occupy;
  } while (!l.next_free_ns.compare_exchange_weak(free_at, end,
                                                 std::memory_order_acq_rel));
  return end + config_.inter_latency_ns;
}

}  // namespace jhpc::netsim
