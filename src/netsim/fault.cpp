#include "jhpc/netsim/fault.hpp"

#include <cstddef>

#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::netsim {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void validate_link_faults(const LinkFaults& lf, const std::string& where) {
  JHPC_REQUIRE(lf.drop_prob >= 0.0 && lf.drop_prob <= 1.0,
               where + ": drop probability must be in [0, 1]");
  JHPC_REQUIRE(lf.jitter_ns >= 0, where + ": jitter must be non-negative");
  JHPC_REQUIRE(lf.down_from_ns >= 0 && lf.down_until_ns >= 0,
               where + ": down window bounds must be non-negative");
  JHPC_REQUIRE(lf.bandwidth_factor > 0.0,
               where + ": bandwidth factor must be positive");
}

/// "FROM-UNTIL" (or "FROM:UNTIL") -> the two bounds.
void parse_down_window(const std::string& s, char sep, LinkFaults* lf,
                       const std::string& where) {
  const std::size_t dash = s.find(sep);
  JHPC_REQUIRE(dash != std::string::npos,
               where + ": down window must be FROM" + sep + "UNTIL, got '" +
                   s + "'");
  try {
    std::size_t pos = 0;
    lf->down_from_ns = std::stoll(s.substr(0, dash), &pos);
    JHPC_REQUIRE(pos == dash, where + ": trailing garbage in down window");
    const std::string until = s.substr(dash + 1);
    lf->down_until_ns = std::stoll(until, &pos);
    JHPC_REQUIRE(pos == until.size(),
                 where + ": trailing garbage in down window");
  } catch (const std::logic_error&) {
    throw InvalidArgumentError(where + ": cannot parse down window '" + s +
                               "'");
  }
}

}  // namespace

bool FaultPlan::enabled() const {
  if (link_defaults.active()) return true;
  for (const LinkOverride& o : overrides) {
    if (o.faults.active()) return true;
  }
  return false;
}

const LinkFaults& FaultPlan::link(int src_node, int dst_node) const {
  for (const LinkOverride& o : overrides) {
    if (o.src_node == src_node && o.dst_node == dst_node) return o.faults;
  }
  return link_defaults;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(
      env_int64("JHPC_FAULT_SEED", static_cast<std::int64_t>(plan.seed)));
  plan.link_defaults.drop_prob =
      env_double("JHPC_FAULT_DROP", plan.link_defaults.drop_prob);
  plan.link_defaults.jitter_ns =
      env_int64("JHPC_FAULT_JITTER_NS", plan.link_defaults.jitter_ns);
  plan.link_defaults.bandwidth_factor =
      env_double("JHPC_FAULT_BW_FACTOR", plan.link_defaults.bandwidth_factor);
  if (auto w = env_string("JHPC_FAULT_DOWN")) {
    parse_down_window(*w, ':', &plan.link_defaults, "$JHPC_FAULT_DOWN");
  }
  validate_link_faults(plan.link_defaults, "$JHPC_FAULT_*");

  plan.rto_ns = env_int64_range("JHPC_FAULT_RTO_NS", plan.rto_ns,
                                /*min_value=*/1);
  plan.rto_max_ns = env_int64_range("JHPC_FAULT_RTO_MAX_NS", plan.rto_max_ns,
                                    /*min_value=*/plan.rto_ns);
  plan.delivery_timeout_ns = env_int64_range(
      "JHPC_FAULT_TIMEOUT_NS", plan.delivery_timeout_ns, /*min_value=*/1);

  if (auto links = env_string("JHPC_FAULT_LINKS")) plan.parse_links(*links);

  plan.heartbeat_ns = env_int64_range("JHPC_FAULT_HB_NS", plan.heartbeat_ns,
                                      /*min_value=*/0);
  if (auto kills = env_string("JHPC_FAULT_KILL")) plan.parse_kills(*kills);
  return plan;
}

void FaultPlan::parse_kills(const std::string& spec) {
  const std::string where = "$JHPC_FAULT_KILL";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    const std::size_t at = clause.find('@');
    JHPC_REQUIRE(at != std::string::npos,
                 where + ": clause must be RANK@VNS, got '" + clause + "'");
    RankKill kill;
    try {
      std::size_t parsed = 0;
      kill.rank = std::stoi(clause.substr(0, at), &parsed);
      JHPC_REQUIRE(parsed == at, where + ": trailing garbage in rank");
      const std::string when = clause.substr(at + 1);
      kill.at_vns = std::stoll(when, &parsed);
      JHPC_REQUIRE(parsed == when.size(),
                   where + ": trailing garbage in kill time");
    } catch (const std::logic_error&) {
      throw InvalidArgumentError(where + ": cannot parse clause '" + clause +
                                 "'");
    }
    JHPC_REQUIRE(kill.rank >= 0, where + ": rank must be non-negative");
    JHPC_REQUIRE(kill.at_vns >= 0,
                 where + ": kill time must be non-negative");
    for (const RankKill& k : kills) {
      JHPC_REQUIRE(k.rank != kill.rank,
                   where + ": rank " + std::to_string(kill.rank) +
                       " listed twice");
    }
    kills.push_back(kill);
  }
}

void FaultPlan::parse_links(const std::string& spec) {
  const std::string where = "$JHPC_FAULT_LINKS";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    const std::size_t gt = clause.find('>');
    const std::size_t colon = clause.find(':', gt == std::string::npos
                                                     ? 0
                                                     : gt + 1);
    JHPC_REQUIRE(gt != std::string::npos && colon != std::string::npos &&
                     gt < colon,
                 where + ": clause must be SRC>DST:key=value[,...], got '" +
                     clause + "'");
    LinkOverride ov;
    try {
      ov.src_node = std::stoi(clause.substr(0, gt));
      ov.dst_node = std::stoi(clause.substr(gt + 1, colon - gt - 1));
    } catch (const std::logic_error&) {
      throw InvalidArgumentError(where + ": cannot parse link endpoints in '" +
                                 clause + "'");
    }
    JHPC_REQUIRE(ov.src_node >= 0 && ov.dst_node >= 0,
                 where + ": link endpoints must be non-negative");
    ov.faults = link_defaults;  // unspecified keys inherit the defaults

    std::size_t kpos = colon + 1;
    while (kpos <= clause.size()) {
      std::size_t kend = clause.find(',', kpos);
      if (kend == std::string::npos) kend = clause.size();
      const std::string kv = clause.substr(kpos, kend - kpos);
      kpos = kend + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      JHPC_REQUIRE(eq != std::string::npos,
                   where + ": expected key=value, got '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      try {
        if (key == "drop") {
          ov.faults.drop_prob = std::stod(val);
        } else if (key == "jitter") {
          ov.faults.jitter_ns = std::stoll(val);
        } else if (key == "down") {
          parse_down_window(val, '-', &ov.faults, where);
        } else if (key == "bw") {
          ov.faults.bandwidth_factor = std::stod(val);
        } else {
          throw InvalidArgumentError(where + ": unknown key '" + key +
                                     "' (want drop|jitter|down|bw)");
        }
      } catch (const std::logic_error&) {
        throw InvalidArgumentError(where + ": cannot parse value '" + val +
                                   "' for key '" + key + "'");
      }
    }
    validate_link_faults(ov.faults, where);
    overrides.push_back(ov);
  }
}

std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t src,
                         std::uint64_t dst, std::uint64_t seq,
                         std::uint64_t attempt, std::uint64_t salt) {
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ (src + 0x517CC1B727220A95ull));
  h = splitmix64(h ^ (dst + 0x2545F4914F6CDD1Dull));
  h = splitmix64(h ^ seq);
  h = splitmix64(h ^ (attempt + (salt << 32)));
  return h;
}

double fault_uniform(std::uint64_t seed, std::uint64_t src, std::uint64_t dst,
                     std::uint64_t seq, std::uint64_t attempt,
                     std::uint64_t salt) {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(
             fault_hash(seed, src, dst, seq, attempt, salt) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace jhpc::netsim
