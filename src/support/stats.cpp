#include "jhpc/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "jhpc/support/error.hpp"

namespace jhpc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }
double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  JHPC_REQUIRE(!samples_.empty(), "min() on empty SampleSet");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  JHPC_REQUIRE(!samples_.empty(), "max() on empty SampleSet");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
  JHPC_REQUIRE(!samples_.empty(), "percentile() on empty SampleSet");
  JHPC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BootstrapCI bootstrap_ci(const std::vector<double>& samples, int resamples,
                         double confidence, std::uint64_t seed) {
  JHPC_REQUIRE(!samples.empty(), "bootstrap_ci on empty sample");
  JHPC_REQUIRE(resamples > 0, "bootstrap_ci needs resamples > 0");
  JHPC_REQUIRE(confidence > 0.0 && confidence < 1.0,
               "bootstrap_ci confidence must be in (0,1)");
  BootstrapCI ci;
  double s = 0.0;
  for (double x : samples) s += x;
  ci.mean = s / static_cast<double>(samples.size());
  if (samples.size() == 1) {
    ci.lo = ci.hi = samples[0];
    return ci;
  }
  // splitmix64: tiny, deterministic, and plenty for resampling indices.
  std::uint64_t state = seed;
  auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const std::size_t n = samples.size();
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += samples[next() % n];
    means.push_back(acc / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto last = static_cast<double>(means.size() - 1);
  ci.lo = means[static_cast<std::size_t>(alpha * last)];
  ci.hi = means[static_cast<std::size_t>((1.0 - alpha) * last)];
  return ci;
}

double bandwidth_mbps(std::int64_t total_bytes, std::int64_t elapsed_ns) {
  if (elapsed_ns <= 0) return 0.0;
  // bytes/ns == GB/s (1e9); MB/s = 1e3 * GB/s with MB = 1e6 bytes.
  return static_cast<double>(total_bytes) / static_cast<double>(elapsed_ns) *
         1e3;
}

double geometric_mean(const std::vector<double>& values) {
  JHPC_REQUIRE(!values.empty(), "geometric_mean of empty vector");
  double log_sum = 0.0;
  for (double v : values) {
    JHPC_REQUIRE(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace jhpc
