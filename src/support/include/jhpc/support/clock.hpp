// Monotonic time helpers used by the transport, the network model and the
// benchmark drivers. Everything in jhpc measures time in integer
// nanoseconds on std::chrono::steady_clock so values are directly
// comparable across modules.
#pragma once

#include <chrono>
#include <cstdint>

namespace jhpc {

/// Nanoseconds since an arbitrary (per-process) steady epoch.
std::int64_t now_ns();

/// CPU time consumed by the CALLING THREAD, in ns
/// (CLOCK_THREAD_CPUTIME_ID). Unlike wall time this excludes the time the
/// thread spent descheduled or parked — the basis of the virtual-time
/// passthrough that lets an oversubscribed single-core box simulate ranks
/// that really run in parallel.
std::int64_t thread_cpu_ns();

/// Sleep-or-spin until `deadline_ns` (same epoch as now_ns()).
///
/// Short waits (< 50 us) spin to keep injected network delays accurate;
/// long waits park the thread so heavily oversubscribed rank counts work
/// on small machines. Returns the time observed on exit.
std::int64_t wait_until_ns(std::int64_t deadline_ns);

/// Calibrated busy-work loop that takes roughly `ns` nanoseconds.
///
/// Used to model fixed CPU-side costs (e.g. the JNI crossing) without
/// descheduling the thread; unlike nanosleep it models work, not waiting.
void burn_ns(std::int64_t ns);

/// Simple scope timer: elapsed() gives ns since construction or reset().
class StopWatch {
 public:
  StopWatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  std::int64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }

 private:
  std::int64_t start_;
};

}  // namespace jhpc
