// Small output-path helpers shared by the bench and obs layers.
#pragma once

#include <string>

namespace jhpc {

/// Derive a companion output path by inserting `tag` before the final
/// extension of `path`:
///
///   path_with_tag("results/fig11.csv", "overhead") ->
///       "results/fig11.overhead.csv"
///   path_with_tag("out.json", "series2") -> "out.series2.json"
///   path_with_tag("trace", "rank0")      -> "trace.rank0"
///
/// Used wherever one base name fans out into several files (the fig11
/// overhead CSV, per-series trace files) so "name.csv" never degenerates
/// into "name.csv.overhead.csv".
std::string path_with_tag(const std::string& path, const std::string& tag);

}  // namespace jhpc
