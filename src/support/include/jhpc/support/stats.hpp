// Streaming and batch statistics for benchmark reporting.
//
// OMB reports average latency in microseconds and bandwidth in MB/s; the
// jhpc bench harness additionally records min/max and percentiles so the
// EXPERIMENTS.md tables can show distribution tails.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jhpc {

/// Welford-style running statistics over doubles.
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator into this one.
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with percentile queries (keeps all samples).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0,100]. Throws when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// Percentile bootstrap confidence interval for the mean of a sample.
struct BootstrapCI {
  double mean = 0.0;  ///< Point estimate (plain sample mean).
  double lo = 0.0;    ///< Lower bound of the interval.
  double hi = 0.0;    ///< Upper bound of the interval.
};

/// Nonparametric bootstrap CI for the mean: `resamples` resamples with
/// replacement, percentile method, deterministic (splitmix64-seeded) so
/// benchmark JSON is reproducible run-to-run. `confidence` in (0,1).
/// A single sample degenerates to [x, x]; throws on an empty sample.
BootstrapCI bootstrap_ci(const std::vector<double>& samples,
                         int resamples = 1000, double confidence = 0.95,
                         std::uint64_t seed = 0x9e3779b97f4a7c15ull);

/// OMB bandwidth formula: bytes transferred over elapsed ns, in MB/s
/// (MB = 1e6 bytes, as OMB reports).
double bandwidth_mbps(std::int64_t total_bytes, std::int64_t elapsed_ns);

/// Geometric mean of a series of positive ratios (used for the paper's
/// "average over all message sizes" speedup figures).
double geometric_mean(const std::vector<double>& values);

}  // namespace jhpc
