// Message-size utilities for OMB-style sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jhpc {

/// Parse "4", "4K", "1M", "2G" (case-insensitive, powers of 1024) to bytes.
std::size_t parse_size(const std::string& text);

/// Render a byte count the way OMB prints size columns ("1", "1K", "4M").
std::string format_size(std::size_t bytes);

/// Power-of-two sweep [min_bytes, max_bytes], both inclusive, both must be
/// powers of two (or min may be 0/1 to start the classic OMB sweep).
std::vector<std::size_t> size_sweep(std::size_t min_bytes,
                                    std::size_t max_bytes);

}  // namespace jhpc
