// Aligned console tables and CSV emission for the bench harness.
//
// Every fig*_ binary prints an OMB-style table (one row per message size,
// one column per library/API series) and can mirror it to CSV for
// EXPERIMENTS.md post-processing.
#pragma once

#include <string>
#include <vector>

namespace jhpc {

/// A simple column-aligned text table with an optional CSV mirror.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Render with right-aligned numeric-looking cells and padded columns.
  std::string to_text() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Write CSV to `path`; throws jhpc::Error on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 2), trimming to `prec`.
std::string fmt_double(double v, int prec = 2);

}  // namespace jhpc
