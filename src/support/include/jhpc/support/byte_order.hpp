// Byte-order utilities shared by the NIO ByteBuffer emulation and the
// mpjbuf encoding support.
//
// Java's ByteBuffer defaults to BIG_ENDIAN regardless of host order; the
// per-element byte (dis)assembly these helpers perform is exactly the
// structural overhead that makes ByteBuffer element access slower than raw
// array indexing — the mechanism behind the paper's Figure 18.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace jhpc {

/// Mirrors java.nio.ByteOrder.
enum class ByteOrder : std::uint8_t { kBigEndian, kLittleEndian };

/// The host's native order (what java.nio.ByteOrder.nativeOrder() returns).
constexpr ByteOrder native_order() {
  return std::endian::native == std::endian::big ? ByteOrder::kBigEndian
                                                 : ByteOrder::kLittleEndian;
}

namespace detail {

template <typename T>
constexpr T byteswap_value(T v) {
  static_assert(std::is_integral_v<T>);
  if constexpr (sizeof(T) == 1) {
    return v;
  } else if constexpr (sizeof(T) == 2) {
    return static_cast<T>(__builtin_bswap16(static_cast<std::uint16_t>(v)));
  } else if constexpr (sizeof(T) == 4) {
    return static_cast<T>(__builtin_bswap32(static_cast<std::uint32_t>(v)));
  } else {
    static_assert(sizeof(T) == 8);
    return static_cast<T>(__builtin_bswap64(static_cast<std::uint64_t>(v)));
  }
}

}  // namespace detail

/// Store `value` at `dst` in the requested order. T may be any primitive
/// (integral or floating); floats are stored via their bit pattern.
template <typename T>
inline void store_ordered(void* dst, T value, ByteOrder order) {
  static_assert(std::is_arithmetic_v<T>);
  using Bits = std::conditional_t<
      sizeof(T) == 1, std::uint8_t,
      std::conditional_t<sizeof(T) == 2, std::uint16_t,
                         std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                            std::uint64_t>>>;
  Bits bits;
  std::memcpy(&bits, &value, sizeof(T));
  if (order != native_order()) bits = detail::byteswap_value(bits);
  std::memcpy(dst, &bits, sizeof(T));
}

/// Load a T stored at `src` in the requested order.
template <typename T>
inline T load_ordered(const void* src, ByteOrder order) {
  static_assert(std::is_arithmetic_v<T>);
  using Bits = std::conditional_t<
      sizeof(T) == 1, std::uint8_t,
      std::conditional_t<sizeof(T) == 2, std::uint16_t,
                         std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                            std::uint64_t>>>;
  Bits bits;
  std::memcpy(&bits, src, sizeof(T));
  if (order != native_order()) bits = detail::byteswap_value(bits);
  T value;
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

}  // namespace jhpc
