// Typed environment-variable configuration.
//
// All jhpc tunables (network model parameters, eager limit, JNI crossing
// cost, heap size, pool caps) are read through these helpers so every
// module documents and parses its knobs the same way.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace jhpc {

/// Raw lookup; nullopt when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Integer lookup with default. Throws InvalidArgumentError on garbage.
std::int64_t env_int64(const char* name, std::int64_t default_value);

/// Integer knob with a validated inclusive range. THE way to read a
/// numeric JHPC_* tunable: every parse failure and every out-of-range
/// value throws InvalidArgumentError naming the offending knob, so a
/// typo'd environment fails loudly at startup instead of arming a
/// zero-sized ring or a negative timeout. The default is NOT range
/// checked (callers own their defaults).
std::int64_t env_int64_range(
    const char* name, std::int64_t default_value, std::int64_t min_value,
    std::int64_t max_value = std::numeric_limits<std::int64_t>::max());

/// Double lookup with default. Throws InvalidArgumentError on garbage.
double env_double(const char* name, double default_value);

/// Boolean lookup ("1"/"true"/"yes"/"on" case-insensitive) with default.
bool env_bool(const char* name, bool default_value);

}  // namespace jhpc
