// Typed environment-variable configuration.
//
// All jhpc tunables (network model parameters, eager limit, JNI crossing
// cost, heap size, pool caps) are read through these helpers so every
// module documents and parses its knobs the same way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace jhpc {

/// Raw lookup; nullopt when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Integer lookup with default. Throws InvalidArgumentError on garbage.
std::int64_t env_int64(const char* name, std::int64_t default_value);

/// Double lookup with default. Throws InvalidArgumentError on garbage.
double env_double(const char* name, double default_value);

/// Boolean lookup ("1"/"true"/"yes"/"on" case-insensitive) with default.
bool env_bool(const char* name, bool default_value);

}  // namespace jhpc
