// Error handling primitives shared by every jhpc library.
//
// The substrates in this repository are layered the way the paper's stack
// is layered (native MPI below, "JNI" in the middle, bindings on top), and
// each layer has its own exception family rooted here so tests can assert
// on the layer that failed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace jhpc {

/// Stable machine-readable classification of every jhpc exception,
/// mirroring MPI error classes. Bindings and tests switch on this instead
/// of string-matching what() or enumerating concrete exception types; the
/// numeric values are part of the API surface and must not be reordered.
enum class ErrorCode : std::uint8_t {
  kUnknown = 0,           ///< untyped legacy throw
  kInvalidArgument = 1,   ///< precondition/argument violation
  kInternal = 2,          ///< invariant violation (library bug)
  kUnsupported = 3,       ///< feature intentionally absent in this layer
  kTransportTimeout = 4,  ///< reliable-delivery budget exhausted
  kTruncated = 5,         ///< receive buffer smaller than the message
  kRankFailed = 6,        ///< a peer rank fail-stopped (ULFM)
  kCommRevoked = 7,       ///< communicator revoked (ULFM)
  kAborted = 8,           ///< job-wide abort tore the operation down
  kAdmissionRejected = 9,  ///< jhpcd scheduler refused to queue the job
  kQuotaExceeded = 10,     ///< a per-job jhpcd quota tripped
};

/// Root of all jhpc exceptions. Carries an ErrorCode so every layer can
/// classify a failure without downcasting; subclasses pass their code up.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_ = ErrorCode::kUnknown;
};

/// Precondition/argument violation (bad count, negative offset, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : Error(ErrorCode::kInvalidArgument, what) {}
};

/// Internal invariant violation — always a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error(ErrorCode::kInternal, what) {}
};

/// Feature intentionally unsupported by a layer (e.g. Open MPI-J baseline
/// rejecting Java arrays with non-blocking point-to-point primitives).
class UnsupportedOperationError : public Error {
 public:
  explicit UnsupportedOperationError(const std::string& what)
      : Error(ErrorCode::kUnsupported, what) {}
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace jhpc

/// Argument/precondition check: throws jhpc::InvalidArgumentError.
#define JHPC_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::jhpc::detail::throw_check_failed("require", #expr, __FILE__,         \
                                         __LINE__, (msg));                   \
    }                                                                        \
  } while (0)

/// Internal invariant check: throws jhpc::InternalError.
#define JHPC_ASSERT(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::jhpc::detail::throw_check_failed("assert", #expr, __FILE__,          \
                                         __LINE__, (msg));                   \
    }                                                                        \
  } while (0)
