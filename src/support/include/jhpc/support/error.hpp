// Error handling primitives shared by every jhpc library.
//
// The substrates in this repository are layered the way the paper's stack
// is layered (native MPI below, "JNI" in the middle, bindings on top), and
// each layer has its own exception family rooted here so tests can assert
// on the layer that failed.
#pragma once

#include <stdexcept>
#include <string>

namespace jhpc {

/// Root of all jhpc exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition/argument violation (bad count, negative offset, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Internal invariant violation — always a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Feature intentionally unsupported by a layer (e.g. Open MPI-J baseline
/// rejecting Java arrays with non-blocking point-to-point primitives).
class UnsupportedOperationError : public Error {
 public:
  explicit UnsupportedOperationError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace jhpc

/// Argument/precondition check: throws jhpc::InvalidArgumentError.
#define JHPC_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::jhpc::detail::throw_check_failed("require", #expr, __FILE__,         \
                                         __LINE__, (msg));                   \
    }                                                                        \
  } while (0)

/// Internal invariant check: throws jhpc::InternalError.
#define JHPC_ASSERT(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::jhpc::detail::throw_check_failed("assert", #expr, __FILE__,          \
                                         __LINE__, (msg));                   \
    }                                                                        \
  } while (0)
