#include "jhpc/support/sizes.hpp"

#include <cctype>

#include "jhpc/support/error.hpp"

namespace jhpc {

std::size_t parse_size(const std::string& text) {
  JHPC_REQUIRE(!text.empty(), "empty size string");
  std::size_t pos = 0;
  unsigned long long base = 0;
  try {
    base = std::stoull(text, &pos);
  } catch (const std::logic_error&) {
    throw InvalidArgumentError("cannot parse size: '" + text + "'");
  }
  std::size_t mult = 1;
  if (pos < text.size()) {
    JHPC_REQUIRE(pos + 1 == text.size(),
                 "trailing garbage in size: '" + text + "'");
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': mult = 1ull << 10; break;
      case 'M': mult = 1ull << 20; break;
      case 'G': mult = 1ull << 30; break;
      default:
        throw InvalidArgumentError("unknown size suffix in '" + text + "'");
    }
  }
  return static_cast<std::size_t>(base) * mult;
}

std::string format_size(std::size_t bytes) {
  if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0)
    return std::to_string(bytes >> 30) + "G";
  if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
    return std::to_string(bytes >> 20) + "M";
  if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
    return std::to_string(bytes >> 10) + "K";
  return std::to_string(bytes);
}

std::vector<std::size_t> size_sweep(std::size_t min_bytes,
                                    std::size_t max_bytes) {
  JHPC_REQUIRE(max_bytes >= min_bytes, "size sweep: max below min");
  std::vector<std::size_t> out;
  std::size_t s = min_bytes == 0 ? 1 : min_bytes;
  JHPC_REQUIRE((s & (s - 1)) == 0, "size sweep bounds must be powers of two");
  JHPC_REQUIRE((max_bytes & (max_bytes - 1)) == 0,
               "size sweep bounds must be powers of two");
  if (min_bytes == 0) out.push_back(0);
  for (; s <= max_bytes; s <<= 1) {
    out.push_back(s);
    if (s > max_bytes / 2) break;  // avoid overflow on huge maxima
  }
  return out;
}

}  // namespace jhpc
