#include "jhpc/support/error.hpp"

#include <sstream>

namespace jhpc::detail {

void throw_check_failed(const char* kind, const char* expr, const char* file,
                        int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " [" << kind << " failed: " << expr << " at " << file << ":"
     << line << "]";
  if (std::string(kind) == "require") throw InvalidArgumentError(os.str());
  throw InternalError(os.str());
}

}  // namespace jhpc::detail
