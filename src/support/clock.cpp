#include "jhpc/support/clock.hpp"

#include <ctime>

#include <atomic>
#include <thread>

namespace jhpc {
namespace {

// Calibration for burn_ns: iterations of the no-op loop per nanosecond
// of THREAD CPU TIME (not wall time — on a loaded machine wall-time
// calibration would be skewed by preemption). Computed once, lazily.
double calibrate_iters_per_ns() {
  constexpr std::int64_t kIters = 2'000'000;
  volatile std::uint64_t sink = 0;
  const std::int64_t t0 = thread_cpu_ns();
  for (std::int64_t i = 0; i < kIters; ++i) sink = sink + 1;
  const std::int64_t dt = thread_cpu_ns() - t0;
  if (dt <= 0) return 1.0;
  return static_cast<double>(kIters) / static_cast<double>(dt);
}

double iters_per_ns() {
  static const double v = calibrate_iters_per_ns();
  return v;
}

}  // namespace

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::int64_t wait_until_ns(std::int64_t deadline_ns) {
  constexpr std::int64_t kSpinThresholdNs = 50'000;
  std::int64_t now = now_ns();
  // Park for the bulk of a long wait, leaving a spin margin at the end.
  while (deadline_ns - now > kSpinThresholdNs) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(deadline_ns - now - kSpinThresholdNs));
    now = now_ns();
  }
  while (now < deadline_ns) {
    std::this_thread::yield();
    now = now_ns();
  }
  return now;
}

void burn_ns(std::int64_t ns) {
  if (ns <= 0) return;
  const auto iters =
      static_cast<std::int64_t>(static_cast<double>(ns) * iters_per_ns());
  volatile std::uint64_t sink = 0;
  for (std::int64_t i = 0; i < iters; ++i) sink = sink + 1;
}

}  // namespace jhpc
