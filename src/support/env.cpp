#include "jhpc/support/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "jhpc/support/error.hpp"

namespace jhpc {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int64(const char* name, std::int64_t default_value) {
  auto s = env_string(name);
  if (!s) return default_value;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(*s, &pos);
    JHPC_REQUIRE(pos == s->size(), std::string("trailing garbage in $") + name);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgumentError(std::string("cannot parse $") + name + "='" +
                               *s + "' as integer");
  }
}

std::int64_t env_int64_range(const char* name, std::int64_t default_value,
                             std::int64_t min_value,
                             std::int64_t max_value) {
  auto s = env_string(name);
  if (!s) return default_value;
  const std::int64_t v = env_int64(name, default_value);
  if (v < min_value || v > max_value) {
    std::string msg = std::string("$") + name + "=" + std::to_string(v) +
                      " out of range: must be >= " + std::to_string(min_value);
    if (max_value != std::numeric_limits<std::int64_t>::max()) {
      msg += " and <= " + std::to_string(max_value);
    }
    throw InvalidArgumentError(msg);
  }
  return v;
}

double env_double(const char* name, double default_value) {
  auto s = env_string(name);
  if (!s) return default_value;
  try {
    std::size_t pos = 0;
    const double v = std::stod(*s, &pos);
    JHPC_REQUIRE(pos == s->size(), std::string("trailing garbage in $") + name);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgumentError(std::string("cannot parse $") + name + "='" +
                               *s + "' as double");
  }
}

bool env_bool(const char* name, bool default_value) {
  auto s = env_string(name);
  if (!s) return default_value;
  std::string v = *s;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw InvalidArgumentError(std::string("cannot parse $") + name + "='" + *s +
                             "' as bool");
}

}  // namespace jhpc
