#include "jhpc/support/paths.hpp"

namespace jhpc {

std::string path_with_tag(const std::string& path, const std::string& tag) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t base = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  // A dot inside the directory part, or a leading dot in the file name
  // (".hidden"), is not an extension separator.
  if (dot == std::string::npos || dot <= base) return path + "." + tag;
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

}  // namespace jhpc
