#include "jhpc/support/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "jhpc/support/error.hpp"

namespace jhpc {
namespace {

bool needs_quotes(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string csv_escape(const std::string& s) {
  if (!needs_quotes(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  JHPC_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  JHPC_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c]
         << std::resetiosflags(std::ios::adjustfield);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("cannot open CSV output file: " + path);
  f << to_csv();
  if (!f) throw Error("failed writing CSV output file: " + path);
}

std::string fmt_double(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace jhpc
