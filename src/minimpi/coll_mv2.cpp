// The "mv2" collective suite: tuned algorithms in the MVAPICH2/MPICH
// style. Threshold switches between latency-optimal (trees, recursive
// doubling) and bandwidth-optimal (scatter+ring) algorithms come from the
// owning Universe's config.
#include <cstring>
#include <vector>

#include "detail/coll.hpp"
#include "detail/transport.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail::mv2 {
namespace {

/// Byte range of rank k's chunk when `total` bytes are split across
/// `size` ranks as evenly as possible.
struct Chunk {
  std::size_t off;
  std::size_t len;
};

Chunk chunk_of(std::size_t total, int size, int k) {
  const auto s = static_cast<std::size_t>(size);
  const auto i = static_cast<std::size_t>(k);
  const std::size_t off = total * i / s;
  const std::size_t end = total * (i + 1) / s;
  return Chunk{off, end - off};
}

/// Largest power of two <= n (n >= 1).
int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

void bcast_binomial(const Comm& c, void* buf, std::size_t bytes, int root) {
  const int size = c.size();
  const int rank = c.rank();
  const int relative = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int src = (relative - mask + root + size) % size;
      c.recv(buf, bytes, src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size) {
      const int dst = (relative + mask + root) % size;
      c.send(buf, bytes, dst, kTagBcast);
    }
    mask >>= 1;
  }
}

/// Large-message broadcast: root scatters chunks, then a ring allgather
/// circulates them. Root-link volume matches binomial scatter; the ring
/// keeps every link busy (bandwidth-optimal for large payloads).
void bcast_scatter_ring(const Comm& c, void* buf, std::size_t bytes,
                        int root) {
  const int size = c.size();
  const int rank = c.rank();
  auto* bytes_buf = static_cast<std::byte*>(buf);

  // Scatter phase: root sends every rank its chunk.
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      const Chunk ch = chunk_of(bytes, size, r);
      if (ch.len > 0) c.send(bytes_buf + ch.off, ch.len, r, kTagBcastScatter);
    }
  } else {
    const Chunk ch = chunk_of(bytes, size, rank);
    if (ch.len > 0)
      c.recv(bytes_buf + ch.off, ch.len, root, kTagBcastScatter);
  }

  // Ring allgather phase: in step s, rank sends the chunk it obtained
  // s steps ago to its right neighbour and receives one from the left.
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int s = 0; s < size - 1; ++s) {
    const int send_idx = (rank - s + size) % size;
    const int recv_idx = (rank - s - 1 + size) % size;
    const Chunk sc = chunk_of(bytes, size, send_idx);
    const Chunk rc = chunk_of(bytes, size, recv_idx);
    c.sendrecv(bytes_buf + sc.off, sc.len, right, kTagBcastRing,
               bytes_buf + rc.off, rc.len, left, kTagBcastRing);
  }
}

void reduce_binomial(const Comm& c, const void* sbuf, void* rbuf,
                     std::size_t count, BasicKind kind, ReduceOp op,
                     int root) {
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t bytes = count * basic_size(kind);
  const int relative = (rank - root + size) % size;

  std::vector<std::byte> acc(bytes);
  std::memcpy(acc.data(), sbuf, bytes);
  std::vector<std::byte> incoming(bytes);

  int mask = 1;
  while (mask < size) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < size) {
        const int src = (src_rel + root) % size;
        c.recv(incoming.data(), bytes, src, kTagReduce);
        apply_reduce(op, kind, acc.data(), incoming.data(), count);
      }
    } else {
      const int dst = ((relative & ~mask) + root) % size;
      c.send(acc.data(), bytes, dst, kTagReduce);
      break;
    }
    mask <<= 1;
  }
  if (rank == root) std::memcpy(rbuf, acc.data(), bytes);
}

/// Recursive-doubling allreduce with the standard fold-in of the ranks
/// beyond the largest power of two.
void allreduce_recursive_doubling(const Comm& c, const void* sbuf,
                                  void* rbuf, std::size_t count,
                                  BasicKind kind, ReduceOp op) {
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t bytes = count * basic_size(kind);
  const int pof2 = floor_pow2(size);
  const int rem = size - pof2;

  if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
  std::vector<std::byte> incoming(bytes);

  // Fold the first 2*rem ranks pairwise so pof2 participants remain.
  int newrank;
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      c.send(rbuf, bytes, rank + 1, kTagAllreduce);
      newrank = -1;  // sits out; receives the result at the end
    } else {
      c.recv(incoming.data(), bytes, rank - 1, kTagAllreduce);
      apply_reduce(op, kind, rbuf, incoming.data(), count);
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      c.sendrecv(rbuf, bytes, partner, kTagAllreduce, incoming.data(), bytes,
                 partner, kTagAllreduce);
      apply_reduce(op, kind, rbuf, incoming.data(), count);
    }
  }

  // Hand the result back to the folded-out even ranks.
  if (rank < 2 * rem) {
    if (rank % 2 != 0) {
      c.send(rbuf, bytes, rank - 1, kTagAllreduce);
    } else {
      c.recv(rbuf, bytes, rank + 1, kTagAllreduce);
    }
  }
}

/// Ring allreduce (reduce-scatter ring + allgather ring): bandwidth-optimal
/// for large payloads. Chunks are element-aligned so reductions stay typed.
void allreduce_ring(const Comm& c, const void* sbuf, void* rbuf,
                    std::size_t count, BasicKind kind, ReduceOp op) {
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t esz = basic_size(kind);
  const std::size_t bytes = count * esz;
  if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
  if (size == 1) return;

  auto elem_chunk = [&](int k) {
    const auto s = static_cast<std::size_t>(size);
    const auto i = static_cast<std::size_t>(k);
    const std::size_t first = count * i / s;
    const std::size_t last = count * (i + 1) / s;
    return Chunk{first * esz, (last - first) * esz};
  };
  auto* data = static_cast<std::byte*>(rbuf);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;

  std::size_t max_chunk = 0;
  for (int k = 0; k < size; ++k)
    max_chunk = std::max(max_chunk, elem_chunk(k).len);
  std::vector<std::byte> incoming(max_chunk);

  // Reduce-scatter: after size-1 steps rank owns the full reduction of
  // chunk (rank+1) % size.
  for (int s = 0; s < size - 1; ++s) {
    const int send_idx = (rank - s + size) % size;
    const int recv_idx = (rank - s - 1 + size) % size;
    const Chunk sc = elem_chunk(send_idx);
    const Chunk rc = elem_chunk(recv_idx);
    c.sendrecv(data + sc.off, sc.len, right, kTagAllreduceRs,
               incoming.data(), rc.len, left, kTagAllreduceRs);
    apply_reduce(op, kind, data + rc.off, incoming.data(), rc.len / esz);
  }

  // Allgather ring circulating the finished chunks.
  for (int s = 0; s < size - 1; ++s) {
    const int send_idx = (rank + 1 - s + 2 * size) % size;
    const int recv_idx = (rank - s + 2 * size) % size;
    const Chunk sc = elem_chunk(send_idx);
    const Chunk rc = elem_chunk(recv_idx);
    c.sendrecv(data + sc.off, sc.len, right, kTagAllreduceAg,
               data + rc.off, rc.len, left, kTagAllreduceAg);
  }
}

void allgather_recursive_doubling(const Comm& c, const void* sbuf,
                                  std::size_t bpr, void* rbuf) {
  const int size = c.size();
  const int rank = c.rank();
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + static_cast<std::size_t>(rank) * bpr, sbuf, bpr);
  for (int mask = 1; mask < size; mask <<= 1) {
    const int partner = rank ^ mask;
    const int my_group = rank & ~(mask - 1);
    const int partner_group = partner & ~(mask - 1);
    c.sendrecv(out + static_cast<std::size_t>(my_group) * bpr,
               static_cast<std::size_t>(mask) * bpr, partner, kTagAllgather,
               out + static_cast<std::size_t>(partner_group) * bpr,
               static_cast<std::size_t>(mask) * bpr, partner, kTagAllgather);
  }
}

void allgather_ring(const Comm& c, const void* sbuf, std::size_t bpr,
                    void* rbuf) {
  const int size = c.size();
  const int rank = c.rank();
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + static_cast<std::size_t>(rank) * bpr, sbuf, bpr);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int s = 0; s < size - 1; ++s) {
    const int send_idx = (rank - s + size) % size;
    const int recv_idx = (rank - s - 1 + size) % size;
    c.sendrecv(out + static_cast<std::size_t>(send_idx) * bpr, bpr, right,
               kTagAllgather, out + static_cast<std::size_t>(recv_idx) * bpr,
               bpr, left, kTagAllgather);
  }
}

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

void barrier(const Comm& c) {
  // Dissemination barrier: ceil(log2(n)) rounds.
  CollSpan span(c, CollAlg::kBarrierDissemination);
  const int size = c.size();
  const int rank = c.rank();
  // Distinct send/recv tokens: sendrecv posts the receive before the
  // send completes, so aliasing one byte for both directions lets the
  // peer's delivery write it while our own send is still reading it.
  const char token_out = 0;
  char token_in = 0;
  for (int mask = 1; mask < size; mask <<= 1) {
    const int dst = (rank + mask) % size;
    const int src = (rank - mask + size) % size;
    c.sendrecv(&token_out, sizeof(token_out), dst, kTagBarrier, &token_in,
               sizeof(token_in), src, kTagBarrier);
  }
}

void bcast(const Comm& c, void* buf, std::size_t bytes, int root) {
  if (c.size() == 1) return;
  // Small payloads (or tiny comms) use the binomial tree; large payloads
  // switch to scatter + ring allgather.
  if (bytes <= c.universe_config().bcast_binomial_max || c.size() <= 2) {
    CollSpan span(c, CollAlg::kBcastBinomial);
    bcast_binomial(c, buf, bytes, root);
  } else {
    CollSpan span(c, CollAlg::kBcastScatterRing);
    bcast_scatter_ring(c, buf, bytes, root);
  }
}

void reduce(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
            BasicKind kind, ReduceOp op, int root) {
  if (c.size() == 1) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, count * basic_size(kind));
    return;
  }
  CollSpan span(c, CollAlg::kReduceBinomial);
  reduce_binomial(c, sbuf, rbuf, count, kind, op, root);
}

void allreduce(const Comm& c, const void* sbuf, void* rbuf,
               std::size_t count, BasicKind kind, ReduceOp op) {
  const std::size_t bytes = count * basic_size(kind);
  if (c.size() == 1) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    return;
  }
  if (bytes <= c.universe_config().allreduce_rd_max ||
      count < static_cast<std::size_t>(c.size())) {
    CollSpan span(c, CollAlg::kAllreduceRecursiveDoubling);
    allreduce_recursive_doubling(c, sbuf, rbuf, count, kind, op);
  } else {
    CollSpan span(c, CollAlg::kAllreduceRing);
    allreduce_ring(c, sbuf, rbuf, count, kind, op);
  }
}

void reduce_scatter_block(const Comm& c, const void* sbuf, void* rbuf,
                          std::size_t count_per_rank, BasicKind kind,
                          ReduceOp op) {
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t esz = basic_size(kind);
  const std::size_t block = count_per_rank * esz;
  if (size == 1) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, block);
    return;
  }
  // Ring reduce-scatter: each block travels the ring accumulating
  // partial reductions and comes to rest at its owner. Labels are chosen
  // so rank r ends owning block r.
  CollSpan span(c, CollAlg::kReduceScatterRing);
  std::vector<std::byte> work(static_cast<std::size_t>(size) * block);
  std::memcpy(work.data(), sbuf, work.size());
  std::vector<std::byte> incoming(block);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int s = 0; s < size - 1; ++s) {
    const auto send_idx =
        static_cast<std::size_t>((rank - s - 1 + 2 * size) % size);
    const auto recv_idx =
        static_cast<std::size_t>((rank - s - 2 + 2 * size) % size);
    c.sendrecv(work.data() + send_idx * block, block, right,
               kTagReduceScatter, incoming.data(), block, left,
               kTagReduceScatter);
    apply_reduce(op, kind, work.data() + recv_idx * block, incoming.data(),
                 count_per_rank);
  }
  std::memcpy(rbuf, work.data() + static_cast<std::size_t>(rank) * block,
              block);
}

void scan(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
          BasicKind kind, ReduceOp op) {
  // Recursive-doubling inclusive scan (commutative operators): maintain a
  // running total of [rank-2^k+1, rank] and fold lower partials into the
  // result.
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t bytes = count * basic_size(kind);
  if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
  if (size == 1) return;
  CollSpan span(c, CollAlg::kScanRecursiveDoubling);
  std::vector<std::byte> partial(bytes);
  std::memcpy(partial.data(), sbuf, bytes);
  std::vector<std::byte> incoming(bytes);
  for (int mask = 1; mask < size; mask <<= 1) {
    const int dst = rank + mask;
    const int src = rank - mask;
    if (dst < size) c.send(partial.data(), bytes, dst, kTagScan);
    if (src >= 0) {
      c.recv(incoming.data(), bytes, src, kTagScan);
      apply_reduce(op, kind, partial.data(), incoming.data(), count);
      apply_reduce(op, kind, rbuf, incoming.data(), count);
    }
  }
}

void gather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
            int root) {
  // Binomial gather: each subtree root accumulates its subtree's blocks in
  // relative order, then the root rotates them into rank order.
  CollSpan span(c, CollAlg::kGatherBinomial);
  const int size = c.size();
  const int rank = c.rank();
  const int relative = (rank - root + size) % size;

  // Subtree of `relative` contains min(2^k, size - relative) ranks once
  // the loop exits at mask = 2^k.
  std::vector<std::byte> tmp(static_cast<std::size_t>(size) * bpr);
  std::memcpy(tmp.data(), sbuf, bpr);
  int have = 1;  // blocks accumulated so far (relative, contiguous)

  int mask = 1;
  while (mask < size) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < size) {
        const int src = (src_rel + root) % size;
        const int blocks = std::min(mask, size - src_rel);
        c.recv(tmp.data() + static_cast<std::size_t>(mask) * bpr,
               static_cast<std::size_t>(blocks) * bpr, src, kTagGather);
        have += blocks;
      }
    } else {
      const int dst = ((relative & ~mask) + root) % size;
      c.send(tmp.data(), static_cast<std::size_t>(have) * bpr, dst,
             kTagGather);
      break;
    }
    mask <<= 1;
  }

  if (rank == root) {
    auto* out = static_cast<std::byte*>(rbuf);
    for (int rel = 0; rel < size; ++rel) {
      const int r = (rel + root) % size;
      std::memcpy(out + static_cast<std::size_t>(r) * bpr,
                  tmp.data() + static_cast<std::size_t>(rel) * bpr, bpr);
    }
  }
}

void scatter(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
             int root) {
  // Binomial scatter (mirror of the gather): the root seeds a relative-
  // order staging buffer, internal nodes forward their subtree's tail.
  CollSpan span(c, CollAlg::kScatterBinomial);
  const int size = c.size();
  const int rank = c.rank();
  const int relative = (rank - root + size) % size;

  std::vector<std::byte> tmp;
  int have = 0;  // blocks held, starting at my own relative index

  if (rank == root) {
    tmp.resize(static_cast<std::size_t>(size) * bpr);
    const auto* in = static_cast<const std::byte*>(sbuf);
    for (int rel = 0; rel < size; ++rel) {
      const int r = (rel + root) % size;
      std::memcpy(tmp.data() + static_cast<std::size_t>(rel) * bpr,
                  in + static_cast<std::size_t>(r) * bpr, bpr);
    }
    have = size;
  } else {
    // Receive my subtree's blocks from my parent.
    int mask = 1;
    while ((relative & mask) == 0) mask <<= 1;
    const int parent = ((relative & ~mask) + root) % size;
    const int blocks = std::min(mask, size - relative);
    tmp.resize(static_cast<std::size_t>(blocks) * bpr);
    c.recv(tmp.data(), tmp.size(), parent, kTagScatter);
    have = blocks;
  }

  // Forward the upper halves to children, largest subtree first.
  int top = 1;
  while (top < size) top <<= 1;
  for (int mask = top >> 1; mask > 0; mask >>= 1) {
    if (relative + mask < size && mask < have) {
      const int dst = (relative + mask + root) % size;
      const int blocks = std::min(mask, size - (relative + mask));
      c.send(tmp.data() + static_cast<std::size_t>(mask) * bpr,
             static_cast<std::size_t>(blocks) * bpr, dst, kTagScatter);
      have = mask;
    }
  }
  std::memcpy(rbuf, tmp.data(), bpr);
}

void allgather(const Comm& c, const void* sbuf, std::size_t bpr,
               void* rbuf) {
  if (c.size() == 1) {
    std::memcpy(rbuf, sbuf, bpr);
    return;
  }
  if (is_pow2(c.size()) && bpr * static_cast<std::size_t>(c.size()) <=
                               c.universe_config().allgather_rd_max) {
    CollSpan span(c, CollAlg::kAllgatherRecursiveDoubling);
    allgather_recursive_doubling(c, sbuf, bpr, rbuf);
  } else {
    CollSpan span(c, CollAlg::kAllgatherRing);
    allgather_ring(c, sbuf, bpr, rbuf);
  }
}

void alltoall(const Comm& c, const void* sbuf, std::size_t bpp, void* rbuf) {
  // Pairwise exchange: size-1 balanced sendrecv rounds.
  CollSpan span(c, CollAlg::kAlltoallPairwise);
  const int size = c.size();
  const int rank = c.rank();
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + static_cast<std::size_t>(rank) * bpp,
              in + static_cast<std::size_t>(rank) * bpp, bpp);
  for (int s = 1; s < size; ++s) {
    const int dst = (rank + s) % size;
    const int src = (rank - s + size) % size;
    c.sendrecv(in + static_cast<std::size_t>(dst) * bpp, bpp, dst,
               kTagAlltoall, out + static_cast<std::size_t>(src) * bpp, bpp,
               src, kTagAlltoall);
  }
}

void allgatherv(const Comm& c, const void* sbuf, std::size_t sbytes,
                void* rbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs) {
  // Ring allgatherv: block k travels k hops right.
  const int size = c.size();
  const int rank = c.rank();
  JHPC_REQUIRE(counts.size() == static_cast<std::size_t>(size) &&
                   displs.size() == static_cast<std::size_t>(size),
               "allgatherv counts/displs must have comm-size entries");
  JHPC_REQUIRE(sbytes == counts[static_cast<std::size_t>(rank)],
               "allgatherv send size must equal my count");
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + displs[static_cast<std::size_t>(rank)], sbuf, sbytes);
  if (size == 1) return;
  CollSpan span(c, CollAlg::kAllgathervRing);
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int s = 0; s < size - 1; ++s) {
    const auto send_idx = static_cast<std::size_t>((rank - s + size) % size);
    const auto recv_idx =
        static_cast<std::size_t>((rank - s - 1 + size) % size);
    c.sendrecv(out + displs[send_idx], counts[send_idx], right,
               kTagAllgatherv, out + displs[recv_idx], counts[recv_idx],
               left, kTagAllgatherv);
  }
}

void alltoallv(const Comm& c, const void* sbuf,
               std::span<const std::size_t> scounts,
               std::span<const std::size_t> sdispls, void* rbuf,
               std::span<const std::size_t> rcounts,
               std::span<const std::size_t> rdispls) {
  // Pairwise exchange with per-pair sizes.
  CollSpan span(c, CollAlg::kAlltoallvPairwise);
  const int size = c.size();
  const int rank = c.rank();
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);
  const auto me = static_cast<std::size_t>(rank);
  std::memcpy(out + rdispls[me], in + sdispls[me], scounts[me]);
  for (int s = 1; s < size; ++s) {
    const auto dst = static_cast<std::size_t>((rank + s) % size);
    const auto src = static_cast<std::size_t>((rank - s + size) % size);
    c.sendrecv(in + sdispls[dst], scounts[dst], static_cast<int>(dst),
               kTagAlltoallv, out + rdispls[src], rcounts[src],
               static_cast<int>(src), kTagAlltoallv);
  }
}

}  // namespace jhpc::minimpi::detail::mv2
