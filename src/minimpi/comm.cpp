#include "jhpc/minimpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "detail/coll.hpp"
#include "detail/coll_hier.hpp"
#include "detail/transport.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

namespace {

void check_valid(const detail::UniverseImpl* impl) {
  JHPC_REQUIRE(impl != nullptr, "operation on an invalid communicator");
}

void check_peer(int peer, int size, const char* what) {
  JHPC_REQUIRE(peer >= 0 && peer < size,
               std::string(what) + ": peer rank out of range");
}

void check_tag_send(int tag) {
  // Tags at and above kTagBase (2^28) are reserved for the collective
  // algorithms; letting user traffic in there could cross-match with an
  // in-flight collective on the same communicator. Internal callers hold
  // an InternalTagScope.
  JHPC_REQUIRE(tag >= 0, "send tag must be non-negative");
  JHPC_REQUIRE(tag <= kMaxUserTag || detail::internal_tags_allowed(),
               "send tag must be <= kMaxUserTag (2^28 - 1): tags above it "
               "are reserved for collectives");
}

void check_tag_recv(int tag) {
  JHPC_REQUIRE(tag >= 0 || tag == kAnyTag,
               "recv tag must be non-negative or kAnyTag");
  JHPC_REQUIRE(tag <= kMaxUserTag || detail::internal_tags_allowed(),
               "recv tag must be <= kMaxUserTag (2^28 - 1): tags above it "
               "are reserved for collectives");
}

thread_local int internal_tag_depth = 0;

std::size_t typed_bytes(int count, const Datatype& type, const char* what) {
  JHPC_REQUIRE(count >= 0,
               std::string(what) + ": negative element count");
  return type.size() * static_cast<std::size_t>(count);
}

// Leaf kind for a typed reduction; even a dense (contiguous-layout)
// struct can mix leaves, so both routes must check.
BasicKind reduce_leaf(const Datatype& type) {
  if (!type.uniform_leaf()) {
    throw UnsupportedOperationError(
        "typed reduction requires a uniform leaf kind (mixed-leaf "
        "structs are not element-wise reducible)");
  }
  return type.leaf_kind();
}

// RAII scratch drawn from the transport slab recycler for the typed
// collective pack shim: steady state is a free-list pop, no allocation.
// Acquire and release both run on the owning rank's thread (true for
// every blocking collective, which runs start to finish on its rank).
class SlabScratch {
 public:
  SlabScratch(detail::UniverseImpl* impl, int world, std::size_t bytes)
      : impl_(impl), world_(world),
        slab_(impl->slab.acquire(bytes, world)) {}
  ~SlabScratch() { impl_->slab.release(std::move(slab_), world_); }
  SlabScratch(const SlabScratch&) = delete;
  SlabScratch& operator=(const SlabScratch&) = delete;

  std::byte* data() { return slab_.data(); }

 private:
  detail::UniverseImpl* impl_;
  int world_;
  detail::Slab slab_;
};

// A blocking collective that loses a rank mid-algorithm leaves peers
// parked in later rounds of the pattern with nobody left to wake them.
// Auto-revoking the communicator on the first RankFailedError (as ULFM
// implementations do for collectives) sweeps those parked operations, so
// every rank gets a prompt RankFailedError or CommRevokedError instead of
// a hang. Point-to-point deliberately does not auto-revoke: a dead peer
// there concerns only the caller.
template <typename Fn>
void revoke_on_failure(detail::UniverseImpl* impl, int cid, int my_world,
                       Fn&& fn) {
  try {
    fn();
  } catch (const RankFailedError&) {
    impl->revoke_comm(cid, my_world);
    throw;
  }
}

}  // namespace

namespace detail {

InternalTagScope::InternalTagScope() { ++internal_tag_depth; }
InternalTagScope::~InternalTagScope() { --internal_tag_depth; }

bool internal_tags_allowed() { return internal_tag_depth > 0; }

}  // namespace detail

namespace detail {

ObsAccess obs_access(const Comm& c) {
  check_valid(c.impl_);
  const int me = c.my_world();
  return ObsAccess{c.impl_->obs.get(), me,
                   &c.impl_->clocks[static_cast<std::size_t>(me)],
                   c.context_id_, c.impl_};
}

}  // namespace detail

obs::PvarRegistry* Comm::pvars() const {
  check_valid(impl_);
  detail::UniverseObs* o = impl_->obs.get();
  return o != nullptr ? &o->rec.pvars() : nullptr;
}

obs::Recorder* Comm::recorder() const {
  check_valid(impl_);
  detail::UniverseObs* o = impl_->obs.get();
  return o != nullptr ? &o->rec : nullptr;
}

CollectiveSuite Comm::suite() const {
  check_valid(impl_);
  return impl_->config.suite;
}

const UniverseConfig& Comm::universe_config() const {
  check_valid(impl_);
  return impl_->config;
}

Comm::Comm(detail::UniverseImpl* impl, Group group, int my_rank,
           int context_id)
    : impl_(impl),
      group_(std::move(group)),
      my_rank_(my_rank),
      context_id_(context_id) {
  // Every rank registers the same mapping; the registry keeps the first.
  impl_->register_comm(context_id_, group_.ranks());
}

// --- Fault tolerance (ULFM) -------------------------------------------------
// revoke/shrink/agree live in resilience.cpp with the agreement protocol.

void Comm::set_errhandler(Errhandler eh) const {
  check_valid(impl_);
  impl_->set_errhandler(context_id_, eh);
}

Errhandler Comm::errhandler() const {
  check_valid(impl_);
  return impl_->errhandler(context_id_);
}

std::vector<int> Comm::failed_ranks() const {
  check_valid(impl_);
  return impl_->dead_in_comm(context_id_);
}

// --- Point-to-point ---------------------------------------------------------

void Comm::send(const void* buf, std::size_t bytes, int dst, int tag) const {
  check_valid(impl_);
  check_peer(dst, size(), "send");
  check_tag_send(tag);
  const int me = my_world();
  detail::TransportSpan span(impl_->obs.get(), me, "send",
                             impl_->clocks[static_cast<std::size_t>(me)]);
  auto pending = impl_->deliver(me, world_of(dst), context_id_, my_rank_,
                                tag, buf, bytes);
  if (pending) detail::wait_request(*pending);
}

void Comm::recv(void* buf, std::size_t capacity, int src, int tag,
                Status* status) const {
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "recv");
  check_tag_recv(tag);
  const int me = my_world();
  detail::TransportSpan span(impl_->obs.get(), me, "recv",
                             impl_->clocks[static_cast<std::size_t>(me)]);
  const Status st =
      impl_->blocking_recv(me, context_id_, src, tag, buf, capacity);
  if (status != nullptr) *status = st;
}

Request Comm::isend(const void* buf, std::size_t bytes, int dst,
                    int tag) const {
  check_valid(impl_);
  check_peer(dst, size(), "isend");
  check_tag_send(tag);
  auto pending = impl_->deliver(my_world(), world_of(dst), context_id_,
                                my_rank_, tag, buf, bytes);
  if (!pending) return Request{};  // completed locally: null request
  return Request{std::move(pending)};
}

Request Comm::irecv(void* buf, std::size_t capacity, int src,
                    int tag) const {
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "irecv");
  check_tag_recv(tag);
  return Request{
      impl_->post_recv(my_world(), context_id_, src, tag, buf, capacity)};
}

void Comm::sendrecv(const void* send_buf, std::size_t send_bytes, int dst,
                    int send_tag, void* recv_buf, std::size_t recv_capacity,
                    int src, int recv_tag, Status* status) const {
  // Post the receive first, then run the (possibly blocking) send: the
  // mirror-image pattern cannot deadlock because every party's receive is
  // visible before anyone blocks in a rendezvous send.
  check_valid(impl_);
  const int me = my_world();
  detail::TransportSpan span(impl_->obs.get(), me, "sendrecv",
                             impl_->clocks[static_cast<std::size_t>(me)]);
  Request r = irecv(recv_buf, recv_capacity, src, recv_tag);
  try {
    send(send_buf, send_bytes, dst, send_tag);
    r.wait(status);
  } catch (...) {
    // The send half surfaced a failure (dead peer, revoked comm) with the
    // receive still posted: recv_buf unwinds with the caller, so the
    // request must stop being matchable first (see cancel_recv).
    if (r.state_ != nullptr) impl_->cancel_recv(*r.state_);
    throw;
  }
}

// --- Typed point-to-point ---------------------------------------------------
// Dense layouts route to the byte path unchanged; strided layouts hand
// the datatype to the transport, whose copy sites gather/scatter through
// the flattened runs (one copy end to end, no staging buffer).

void Comm::send(const void* buf, int count, const Datatype& type, int dst,
                int tag) const {
  const std::size_t bytes = typed_bytes(count, type, "send");
  if (type.contiguous_layout()) {
    send(buf, bytes, dst, tag);
    return;
  }
  check_valid(impl_);
  check_peer(dst, size(), "send");
  check_tag_send(tag);
  const int me = my_world();
  detail::TransportSpan span(impl_->obs.get(), me, "send",
                             impl_->clocks[static_cast<std::size_t>(me)]);
  auto pending = impl_->deliver(me, world_of(dst), context_id_, my_rank_,
                                tag, buf, bytes, &type, count);
  if (pending) detail::wait_request(*pending);
}

void Comm::recv(void* buf, int count, const Datatype& type, int src, int tag,
                Status* status) const {
  const std::size_t bytes = typed_bytes(count, type, "recv");
  if (type.contiguous_layout()) {
    recv(buf, bytes, src, tag, status);
    return;
  }
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "recv");
  check_tag_recv(tag);
  const int me = my_world();
  detail::TransportSpan span(impl_->obs.get(), me, "recv",
                             impl_->clocks[static_cast<std::size_t>(me)]);
  const Status st = impl_->blocking_recv(me, context_id_, src, tag, buf,
                                         bytes, &type, count);
  if (status != nullptr) *status = st;
}

Request Comm::isend(const void* buf, int count, const Datatype& type,
                    int dst, int tag) const {
  const std::size_t bytes = typed_bytes(count, type, "isend");
  if (type.contiguous_layout()) return isend(buf, bytes, dst, tag);
  check_valid(impl_);
  check_peer(dst, size(), "isend");
  check_tag_send(tag);
  auto pending = impl_->deliver(my_world(), world_of(dst), context_id_,
                                my_rank_, tag, buf, bytes, &type, count);
  if (!pending) return Request{};  // completed locally: null request
  return Request{std::move(pending)};
}

Request Comm::irecv(void* buf, int count, const Datatype& type, int src,
                    int tag) const {
  const std::size_t bytes = typed_bytes(count, type, "irecv");
  if (type.contiguous_layout()) return irecv(buf, bytes, src, tag);
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "irecv");
  check_tag_recv(tag);
  return Request{impl_->post_recv(my_world(), context_id_, src, tag, buf,
                                  bytes, &type, count)};
}

void Comm::sendrecv(const void* send_buf, int send_count,
                    const Datatype& send_type, int dst, int send_tag,
                    void* recv_buf, int recv_count,
                    const Datatype& recv_type, int src, int recv_tag,
                    Status* status) const {
  // Same shape as the byte sendrecv: post the receive first so the
  // mirror-image pattern cannot deadlock in a rendezvous send.
  check_valid(impl_);
  const int me = my_world();
  detail::TransportSpan span(impl_->obs.get(), me, "sendrecv",
                             impl_->clocks[static_cast<std::size_t>(me)]);
  Request r = irecv(recv_buf, recv_count, recv_type, src, recv_tag);
  try {
    send(send_buf, send_count, send_type, dst, send_tag);
    r.wait(status);
  } catch (...) {
    if (r.state_ != nullptr) impl_->cancel_recv(*r.state_);
    throw;
  }
}

Prequest Comm::send_init(const void* buf, std::size_t bytes, int dst,
                         int tag) const {
  check_valid(impl_);
  check_peer(dst, size(), "send_init");
  check_tag_send(tag);
  return Prequest(*this, Prequest::Kind::kSend, const_cast<void*>(buf),
                  bytes, dst, tag);
}

Prequest Comm::recv_init(void* buf, std::size_t capacity, int src,
                         int tag) const {
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "recv_init");
  check_tag_recv(tag);
  return Prequest(*this, Prequest::Kind::kRecv, buf, capacity, src, tag);
}

void Prequest::start() {
  JHPC_REQUIRE(valid(), "start() on an invalid persistent request");
  JHPC_REQUIRE(!active(), "start() while the previous instance is active");
  current_ = kind_ == Kind::kSend
                 ? comm_.isend(buf_, bytes_, peer_, tag_)
                 : comm_.irecv(buf_, bytes_, peer_, tag_);
}

void Prequest::wait(Status* status) {
  // A persistent send may have completed locally at start() (eager), in
  // which case current_ is the null request and wait is a no-op.
  current_.wait(status);
}

bool Prequest::test(Status* status) { return current_.test(status); }

void Prequest::start_all(std::span<Prequest> requests) {
  for (Prequest& r : requests) r.start();
}

Status Comm::probe(int src, int tag) const {
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "probe");
  check_tag_recv(tag);
  Status st;
  impl_->probe_match(my_world(), context_id_, src, tag, /*blocking=*/true,
                     &st);
  return st;
}

bool Comm::iprobe(int src, int tag, Status* status) const {
  check_valid(impl_);
  if (src != kAnySource) check_peer(src, size(), "iprobe");
  check_tag_recv(tag);
  return impl_->probe_match(my_world(), context_id_, src, tag,
                            /*blocking=*/false, status);
}

// --- Collectives: suite dispatch ----------------------------------------------
// Three suites: mv2 (tuned trees), basic (flat linear), hier (topology-
// aware two-level; coll_hier.cpp). hier specialises barrier/bcast/reduce/
// allreduce/gather and falls back to the mv2 algorithms for every other
// collective, so `suite() != kOmpiBasic` selects the mv2 path there.

void Comm::barrier() const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    switch (suite()) {
      case CollectiveSuite::kHier: detail::hier::barrier(*this); break;
      case CollectiveSuite::kMv2: detail::mv2::barrier(*this); break;
      case CollectiveSuite::kOmpiBasic: detail::basic::barrier(*this); break;
    }
  });
}

void Comm::bcast(void* buf, std::size_t bytes, int root) const {
  check_valid(impl_);
  check_peer(root, size(), "bcast");
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    switch (suite()) {
      case CollectiveSuite::kHier:
        detail::hier::bcast(*this, buf, bytes, root);
        break;
      case CollectiveSuite::kMv2:
        detail::mv2::bcast(*this, buf, bytes, root);
        break;
      case CollectiveSuite::kOmpiBasic:
        detail::basic::bcast(*this, buf, bytes, root);
        break;
    }
  });
}

void Comm::reduce(const void* send_buf, void* recv_buf, std::size_t count,
                  BasicKind kind, ReduceOp op, int root) const {
  check_valid(impl_);
  check_peer(root, size(), "reduce");
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    switch (suite()) {
      case CollectiveSuite::kHier:
        detail::hier::reduce(*this, send_buf, recv_buf, count, kind, op,
                             root);
        break;
      case CollectiveSuite::kMv2:
        detail::mv2::reduce(*this, send_buf, recv_buf, count, kind, op,
                            root);
        break;
      case CollectiveSuite::kOmpiBasic:
        detail::basic::reduce(*this, send_buf, recv_buf, count, kind, op,
                              root);
        break;
    }
  });
}

void Comm::allreduce(const void* send_buf, void* recv_buf, std::size_t count,
                     BasicKind kind, ReduceOp op) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    switch (suite()) {
      case CollectiveSuite::kHier:
        detail::hier::allreduce(*this, send_buf, recv_buf, count, kind, op);
        break;
      case CollectiveSuite::kMv2:
        detail::mv2::allreduce(*this, send_buf, recv_buf, count, kind, op);
        break;
      case CollectiveSuite::kOmpiBasic:
        detail::basic::allreduce(*this, send_buf, recv_buf, count, kind,
                                 op);
        break;
    }
  });
}

void Comm::reduce_scatter_block(const void* send_buf, void* recv_buf,
                                std::size_t count_per_rank, BasicKind kind,
                                ReduceOp op) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::reduce_scatter_block(*this, send_buf, recv_buf,
                                            count_per_rank, kind, op)
        : detail::basic::reduce_scatter_block(*this, send_buf, recv_buf,
                                              count_per_rank, kind, op);
  });
}

void Comm::scan(const void* send_buf, void* recv_buf, std::size_t count,
                BasicKind kind, ReduceOp op) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::scan(*this, send_buf, recv_buf, count, kind, op)
        : detail::basic::scan(*this, send_buf, recv_buf, count, kind, op);
  });
}

void Comm::gather(const void* send_buf, std::size_t bytes_per_rank,
                  void* recv_buf, int root) const {
  check_valid(impl_);
  check_peer(root, size(), "gather");
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    switch (suite()) {
      case CollectiveSuite::kHier:
        detail::hier::gather(*this, send_buf, bytes_per_rank, recv_buf,
                             root);
        break;
      case CollectiveSuite::kMv2:
        detail::mv2::gather(*this, send_buf, bytes_per_rank, recv_buf,
                            root);
        break;
      case CollectiveSuite::kOmpiBasic:
        detail::basic::gather(*this, send_buf, bytes_per_rank, recv_buf,
                              root);
        break;
    }
  });
}

void Comm::scatter(const void* send_buf, std::size_t bytes_per_rank,
                   void* recv_buf, int root) const {
  check_valid(impl_);
  check_peer(root, size(), "scatter");
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::scatter(*this, send_buf, bytes_per_rank, recv_buf,
                               root)
        : detail::basic::scatter(*this, send_buf, bytes_per_rank, recv_buf,
                                 root);
  });
}

void Comm::allgather(const void* send_buf, std::size_t bytes_per_rank,
                     void* recv_buf) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::allgather(*this, send_buf, bytes_per_rank, recv_buf)
        : detail::basic::allgather(*this, send_buf, bytes_per_rank,
                                   recv_buf);
  });
}

void Comm::alltoall(const void* send_buf, std::size_t bytes_per_pair,
                    void* recv_buf) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::alltoall(*this, send_buf, bytes_per_pair, recv_buf)
        : detail::basic::alltoall(*this, send_buf, bytes_per_pair, recv_buf);
  });
}

// --- Typed (derived-datatype) blocking collectives --------------------------
// Strided layouts are packed through a slab-drawn scratch and run the
// byte engines unchanged — every suite (basic/mv2/nbc/hier) executes the
// identical wire algorithm for typed and untyped payloads, which is what
// lets the differential oracle cross-check them. Dense layouts skip the
// shim entirely. The engines' own tags are protected by their
// InternalTagScope; the shim adds no communication of its own.

void Comm::bcast(void* buf, int count, const Datatype& type,
                 int root) const {
  const std::size_t bytes = typed_bytes(count, type, "bcast");
  if (type.contiguous_layout()) {
    bcast(buf, bytes, root);
    return;
  }
  check_valid(impl_);
  check_peer(root, size(), "bcast");
  SlabScratch scratch(impl_, my_world(), bytes);
  if (my_rank_ == root) type.pack(buf, scratch.data(), count);
  bcast(scratch.data(), bytes, root);
  if (my_rank_ != root) type.unpack(scratch.data(), buf, count);
}

void Comm::reduce(const void* send_buf, void* recv_buf, int count,
                  const Datatype& type, ReduceOp op, int root) const {
  const std::size_t bytes = typed_bytes(count, type, "reduce");
  const BasicKind leaf = reduce_leaf(type);
  const std::size_t elems = bytes / basic_size(leaf);
  if (type.contiguous_layout()) {
    reduce(send_buf, recv_buf, elems, leaf, op, root);
    return;
  }
  check_valid(impl_);
  check_peer(root, size(), "reduce");
  const int me = my_world();
  SlabScratch send_s(impl_, me, bytes);
  SlabScratch recv_s(impl_, me, bytes);
  type.pack(send_buf, send_s.data(), count);
  reduce(send_s.data(), recv_s.data(), elems, leaf, op, root);
  if (my_rank_ == root) type.unpack(recv_s.data(), recv_buf, count);
}

void Comm::allreduce(const void* send_buf, void* recv_buf, int count,
                     const Datatype& type, ReduceOp op) const {
  const std::size_t bytes = typed_bytes(count, type, "allreduce");
  const BasicKind leaf = reduce_leaf(type);
  const std::size_t elems = bytes / basic_size(leaf);
  if (type.contiguous_layout()) {
    allreduce(send_buf, recv_buf, elems, leaf, op);
    return;
  }
  check_valid(impl_);
  const int me = my_world();
  SlabScratch send_s(impl_, me, bytes);
  SlabScratch recv_s(impl_, me, bytes);
  type.pack(send_buf, send_s.data(), count);
  allreduce(send_s.data(), recv_s.data(), elems, leaf, op);
  type.unpack(recv_s.data(), recv_buf, count);
}

void Comm::gather(const void* send_buf, int count, const Datatype& type,
                  void* recv_buf, int root) const {
  const std::size_t bytes = typed_bytes(count, type, "gather");
  if (type.contiguous_layout()) {
    gather(send_buf, bytes, recv_buf, root);
    return;
  }
  check_valid(impl_);
  check_peer(root, size(), "gather");
  const int me = my_world();
  const std::size_t n = static_cast<std::size_t>(size());
  SlabScratch send_s(impl_, me, bytes);
  type.pack(send_buf, send_s.data(), count);
  if (my_rank_ == root) {
    SlabScratch recv_s(impl_, me, bytes * n);
    gather(send_s.data(), bytes, recv_s.data(), root);
    // Blocks are dense and rank-ordered in the scratch; one unpack lays
    // block i down at byte offset i * count * extent.
    type.unpack(recv_s.data(), recv_buf, count * size());
  } else {
    gather(send_s.data(), bytes, nullptr, root);
  }
}

void Comm::scatter(const void* send_buf, int count, const Datatype& type,
                   void* recv_buf, int root) const {
  const std::size_t bytes = typed_bytes(count, type, "scatter");
  if (type.contiguous_layout()) {
    scatter(send_buf, bytes, recv_buf, root);
    return;
  }
  check_valid(impl_);
  check_peer(root, size(), "scatter");
  const int me = my_world();
  const std::size_t n = static_cast<std::size_t>(size());
  SlabScratch recv_s(impl_, me, bytes);
  if (my_rank_ == root) {
    SlabScratch send_s(impl_, me, bytes * n);
    type.pack(send_buf, send_s.data(), count * size());
    scatter(send_s.data(), bytes, recv_s.data(), root);
  } else {
    scatter(nullptr, bytes, recv_s.data(), root);
  }
  type.unpack(recv_s.data(), recv_buf, count);
}

void Comm::allgather(const void* send_buf, int count, const Datatype& type,
                     void* recv_buf) const {
  const std::size_t bytes = typed_bytes(count, type, "allgather");
  if (type.contiguous_layout()) {
    allgather(send_buf, bytes, recv_buf);
    return;
  }
  check_valid(impl_);
  const int me = my_world();
  const std::size_t n = static_cast<std::size_t>(size());
  SlabScratch send_s(impl_, me, bytes);
  SlabScratch recv_s(impl_, me, bytes * n);
  type.pack(send_buf, send_s.data(), count);
  allgather(send_s.data(), bytes, recv_s.data());
  type.unpack(recv_s.data(), recv_buf, count * size());
}

void Comm::alltoall(const void* send_buf, int count, const Datatype& type,
                    void* recv_buf) const {
  const std::size_t bytes = typed_bytes(count, type, "alltoall");
  if (type.contiguous_layout()) {
    alltoall(send_buf, bytes, recv_buf);
    return;
  }
  check_valid(impl_);
  const int me = my_world();
  const std::size_t n = static_cast<std::size_t>(size());
  SlabScratch send_s(impl_, me, bytes * n);
  SlabScratch recv_s(impl_, me, bytes * n);
  type.pack(send_buf, send_s.data(), count * size());
  alltoall(send_s.data(), bytes, recv_s.data());
  type.unpack(recv_s.data(), recv_buf, count * size());
}

void Comm::gatherv(const void* send_buf, std::size_t send_bytes,
                   void* recv_buf, std::span<const std::size_t> counts,
                   std::span<const std::size_t> displs, int root) const {
  check_valid(impl_);
  check_peer(root, size(), "gatherv");
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    detail::gatherv_linear(*this, send_buf, send_bytes, recv_buf, counts,
                           displs, root);
  });
}

void Comm::scatterv(const void* send_buf,
                    std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs, void* recv_buf,
                    std::size_t recv_bytes, int root) const {
  check_valid(impl_);
  check_peer(root, size(), "scatterv");
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    detail::scatterv_linear(*this, send_buf, counts, displs, recv_buf,
                            recv_bytes, root);
  });
}

void Comm::allgatherv(const void* send_buf, std::size_t send_bytes,
                      void* recv_buf, std::span<const std::size_t> counts,
                      std::span<const std::size_t> displs) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::allgatherv(*this, send_buf, send_bytes, recv_buf,
                                  counts, displs)
        : detail::basic::allgatherv(*this, send_buf, send_bytes, recv_buf,
                                    counts, displs);
  });
}

void Comm::alltoallv(const void* send_buf,
                     std::span<const std::size_t> send_counts,
                     std::span<const std::size_t> send_displs,
                     void* recv_buf,
                     std::span<const std::size_t> recv_counts,
                     std::span<const std::size_t> recv_displs) const {
  check_valid(impl_);
  const detail::InternalTagScope tags;
  revoke_on_failure(impl_, context_id_, my_world(), [&] {
    suite() != CollectiveSuite::kOmpiBasic
        ? detail::mv2::alltoallv(*this, send_buf, send_counts, send_displs,
                                 recv_buf, recv_counts, recv_displs)
        : detail::basic::alltoallv(*this, send_buf, send_counts, send_displs,
                                   recv_buf, recv_counts, recv_displs);
  });
}

// --- Communicator management ---------------------------------------------------

Comm Comm::dup() const {
  check_valid(impl_);
  // Rank 0 allocates a fresh context id and broadcasts it over *this*
  // communicator (safe: dup is collective).
  int new_cid = 0;
  if (my_rank_ == 0)
    new_cid = impl_->next_context_id.fetch_add(1, std::memory_order_relaxed);
  bcast_cid(&new_cid);
  // New communicators inherit the parent's error handler (MPI semantics).
  impl_->set_errhandler(new_cid, impl_->errhandler(context_id_));
  return Comm(impl_, group_, my_rank_, new_cid);
}

Comm Comm::split(int color, int key) const {
  check_valid(impl_);
  const int size = this->size();

  // Gather (color, key) from everyone.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(size));
  const Entry mine{color, key, my_rank_};
  allgather(&mine, sizeof(Entry), entries.data());

  // Allocate one context id per distinct non-negative color, from rank 0,
  // deterministically (colors in ascending order).
  std::vector<int> colors;
  for (const Entry& e : entries)
    if (e.color >= 0) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());

  int base_cid = 0;
  if (my_rank_ == 0 && !colors.empty()) {
    base_cid = impl_->next_context_id.fetch_add(
        static_cast<int>(colors.size()), std::memory_order_relaxed);
  }
  bcast_cid(&base_cid);

  if (color < 0) return Comm{};  // MPI_UNDEFINED

  // My color group, ordered by (key, old rank).
  std::vector<Entry> members;
  for (const Entry& e : entries)
    if (e.color == color) members.push_back(e);
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });

  std::vector<int> world_ranks;
  world_ranks.reserve(members.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    world_ranks.push_back(group_.world_rank(members[i].rank));
    if (members[i].rank == my_rank_) my_new_rank = static_cast<int>(i);
  }
  const auto color_it = std::find(colors.begin(), colors.end(), color);
  const int cid =
      base_cid + static_cast<int>(color_it - colors.begin());
  impl_->set_errhandler(cid, impl_->errhandler(context_id_));
  return Comm(impl_, Group(std::move(world_ranks)), my_new_rank, cid);
}

Comm Comm::create(const Group& subgroup) const {
  check_valid(impl_);
  // Agree on a fresh context id over the parent.
  int new_cid = 0;
  if (my_rank_ == 0)
    new_cid = impl_->next_context_id.fetch_add(1, std::memory_order_relaxed);
  bcast_cid(&new_cid);

  const int my_pos = subgroup.rank_of(my_world());
  if (my_pos < 0) return Comm{};
  impl_->set_errhandler(new_cid, impl_->errhandler(context_id_));
  return Comm(impl_, subgroup, my_pos, new_cid);
}

double Comm::wtime() {
  return static_cast<double>(now_ns()) / 1e9;
}

std::int64_t Comm::vtime_ns() const {
  check_valid(impl_);
  detail::RankClock& clock =
      impl_->clocks[static_cast<std::size_t>(my_world())];
  clock.advance_cpu();
  return clock.vclock;
}

// Binomial broadcast of one int from rank 0 on the management tag; used by
// the context-id agreement above (cannot reuse bcast(): the suite may be
// "basic" but the agreement must work before the new comm exists, and it
// must not consume user-visible collective semantics).
void Comm::bcast_cid(int* value) const {
  const detail::InternalTagScope tags;
  const int size = this->size();
  const int rank = my_rank_;
  int mask = 1;
  while (mask < size) {
    if (rank & mask) {
      recv(value, sizeof(int), rank - mask, detail::kTagCommMgmt);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank + mask < size) {
      send(value, sizeof(int), rank + mask, detail::kTagCommMgmt);
    }
    mask >>= 1;
  }
}

}  // namespace jhpc::minimpi
