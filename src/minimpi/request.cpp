#include "jhpc/minimpi/request.hpp"

#include <chrono>
#include <thread>

#include "detail/coll_nbc.hpp"
#include "detail/transport.hpp"
#include "jhpc/support/clock.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

void Request::wait(Status* status) {
  if (nbc_) {
    try {
      const Status st = detail::nbc_wait(*nbc_);
      if (status != nullptr) *status = st;
    } catch (...) {
      nbc_.reset();
      throw;
    }
    nbc_.reset();
    return;
  }
  if (!state_) {
    if (status != nullptr) *status = Status{};
    return;
  }
  const Status st = detail::wait_request(*state_);
  if (status != nullptr) *status = st;
  state_.reset();
}

bool Request::test(Status* status) {
  if (nbc_) {
    try {
      if (!detail::nbc_test(*nbc_, status)) return false;
    } catch (...) {
      nbc_.reset();
      throw;
    }
    nbc_.reset();
    return true;
  }
  if (!state_) {
    if (status != nullptr) *status = Status{};
    return true;
  }
  Status st;
  try {
    if (!detail::test_request(*state_, &st)) return false;
  } catch (...) {
    state_.reset();
    throw;
  }
  if (status != nullptr) *status = st;
  state_.reset();
  return true;
}

void Request::wait_all(std::span<Request> requests) {
  for (Request& r : requests) r.wait();
}

std::size_t Request::wait_any(std::span<Request> requests, Status* status) {
  bool any_valid = false;
  for (const Request& r : requests) any_valid |= r.valid();
  JHPC_REQUIRE(any_valid, "wait_any on all-null request list");
  for (;;) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].valid() && requests[i].test(status)) return i;
    }
    std::this_thread::yield();
  }
}

}  // namespace jhpc::minimpi
