// Communicators: the central user-facing object of the minimpi substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/group.hpp"
#include "jhpc/minimpi/op.hpp"
#include "jhpc/minimpi/request.hpp"
#include "jhpc/minimpi/types.hpp"

namespace jhpc::obs {
class PvarRegistry;
class Recorder;
}  // namespace jhpc::obs

namespace jhpc::minimpi {

class Comm;
class Universe;
struct UniverseConfig;

namespace detail {
struct UniverseImpl;
struct UniverseObs;
struct RankClock;

/// Internal observability access for the collective suites (which are
/// built strictly on the public Comm API): the job's pre-registered pvar
/// handles, the caller's world rank and virtual clock. `obs` is null when
/// disabled (clock is still valid).
struct ObsAccess {
  UniverseObs* obs = nullptr;
  int world_rank = -1;
  RankClock* clock = nullptr;
  /// Context id of the communicator (wait-at-barrier attribution keys
  /// collective entries by it).
  int context_id = 0;
  /// The owning universe. The hier suite needs more than pvar handles:
  /// the fabric's rank→node map, the per-node shared segments, and the
  /// failure state its flag waits poll. Never null for a valid Comm.
  UniverseImpl* uni = nullptr;
};
ObsAccess obs_access(const Comm& c);
}  // namespace detail

/// A communicator: an isolated communication context over an ordered group
/// of ranks. Point-to-point traffic is matched on (communicator, source,
/// tag) with MPI's non-overtaking ordering; collectives must be entered by
/// every rank of the communicator in the same order.
///
/// Comm is a cheap value type (it holds the group and a context id); it is
/// only usable from the rank thread it belongs to.
class Comm {
 public:
  Comm() = default;

  /// True for a real communicator; false for the "undefined" result of
  /// split() with negative color or create() when not a member.
  bool valid() const { return impl_ != nullptr; }

  int rank() const { return my_rank_; }
  int size() const { return group_.size(); }
  const Group& group() const { return group_; }
  /// The collective-algorithm suite of the owning Universe.
  CollectiveSuite suite() const;
  /// Configuration of the owning Universe (tuning thresholds etc.).
  const UniverseConfig& universe_config() const;

  // --- Blocking point-to-point (byte-oriented payloads) -----------------
  /// Standard-mode blocking send. Completes locally: eager messages are
  /// buffered, rendezvous messages block until the receiver has copied.
  void send(const void* buf, std::size_t bytes, int dst, int tag) const;
  /// Blocking receive into a buffer of `capacity` bytes. Receiving a
  /// larger message throws (truncation is an error, as in MPI).
  void recv(void* buf, std::size_t capacity, int src, int tag,
            Status* status = nullptr) const;
  /// Combined send+receive that cannot deadlock against its mirror image.
  void sendrecv(const void* send_buf, std::size_t send_bytes, int dst,
                int send_tag, void* recv_buf, std::size_t recv_capacity,
                int src, int recv_tag, Status* status = nullptr) const;

  // --- Non-blocking point-to-point ---------------------------------------
  Request isend(const void* buf, std::size_t bytes, int dst, int tag) const;
  Request irecv(void* buf, std::size_t capacity, int src, int tag) const;

  // --- Typed point-to-point (derived datatypes) --------------------------
  // The payload is `count` elements of `type`; Status::bytes reports
  // payload bytes (count * type.size()), as in the byte API. Strided
  // layouts take the one-copy path: eager sends gather runs straight into
  // the recycled transport slab and matched receives scatter straight
  // from it (or, when both sides are live, copy layout-to-layout with no
  // staging at all). Dense layouts are routed to the byte path unchanged.
  void send(const void* buf, int count, const Datatype& type, int dst,
            int tag) const;
  void recv(void* buf, int count, const Datatype& type, int src, int tag,
            Status* status = nullptr) const;
  void sendrecv(const void* send_buf, int send_count,
                const Datatype& send_type, int dst, int send_tag,
                void* recv_buf, int recv_count, const Datatype& recv_type,
                int src, int recv_tag, Status* status = nullptr) const;
  Request isend(const void* buf, int count, const Datatype& type, int dst,
                int tag) const;
  Request irecv(void* buf, int count, const Datatype& type, int src,
                int tag) const;

  // --- Persistent requests ---------------------------------------------------
  /// Create a persistent send (MPI_Send_init): the envelope and buffer are
  /// fixed once; start()/wait() cycles reuse them without re-validation.
  class Prequest send_init(const void* buf, std::size_t bytes, int dst,
                           int tag) const;
  /// Create a persistent receive (MPI_Recv_init).
  class Prequest recv_init(void* buf, std::size_t capacity, int src,
                           int tag) const;

  // --- Probing ------------------------------------------------------------
  /// Block until a matching message is pending; returns its envelope.
  Status probe(int src, int tag) const;
  /// Non-blocking probe; true and fills `status` when a message is pending.
  bool iprobe(int src, int tag, Status* status) const;

  // --- Blocking collectives ------------------------------------------------
  void barrier() const;
  void bcast(void* buf, std::size_t bytes, int root) const;
  /// Element-wise reduction of `count` elements of `kind` to `root`.
  /// send_buf may equal recv_buf on the root (MPI_IN_PLACE semantics).
  void reduce(const void* send_buf, void* recv_buf, std::size_t count,
              BasicKind kind, ReduceOp op, int root) const;
  void allreduce(const void* send_buf, void* recv_buf, std::size_t count,
                 BasicKind kind, ReduceOp op) const;
  /// Element-wise reduction of size()*count elements, block i of the
  /// result delivered to rank i (MPI_Reduce_scatter_block).
  void reduce_scatter_block(const void* send_buf, void* recv_buf,
                            std::size_t count_per_rank, BasicKind kind,
                            ReduceOp op) const;
  /// Inclusive prefix reduction: rank r receives op(ranks 0..r)
  /// (MPI_Scan).
  void scan(const void* send_buf, void* recv_buf, std::size_t count,
            BasicKind kind, ReduceOp op) const;
  /// Fixed-size gather: every rank contributes `bytes_per_rank` bytes;
  /// root receives size()*bytes_per_rank bytes ordered by rank.
  void gather(const void* send_buf, std::size_t bytes_per_rank,
              void* recv_buf, int root) const;
  void scatter(const void* send_buf, std::size_t bytes_per_rank,
               void* recv_buf, int root) const;
  void allgather(const void* send_buf, std::size_t bytes_per_rank,
                 void* recv_buf) const;
  /// Personalised all-to-all: block i of send_buf goes to rank i.
  void alltoall(const void* send_buf, std::size_t bytes_per_pair,
                void* recv_buf) const;

  // --- Typed blocking collectives ----------------------------------------
  // Derived-datatype forms of the collectives above, valid on every
  // engine suite (basic/mv2/nbc/hier): strided payloads are packed
  // through a slab-drawn scratch into the byte engines — so all suites
  // stay bit-identical — and dense layouts skip the shim entirely.
  // Multi-rank buffers (gather/scatter/allgather/alltoall) hold size()
  // blocks of `count` elements each; block i starts at byte offset
  // i * count * type.extent().
  void bcast(void* buf, int count, const Datatype& type, int root) const;
  /// Typed reduction: the leaves of `type` are reduced element-wise with
  /// `op`. Requires type.uniform_leaf(); mixed-leaf structs throw
  /// UnsupportedOperationError.
  void reduce(const void* send_buf, void* recv_buf, int count,
              const Datatype& type, ReduceOp op, int root) const;
  void allreduce(const void* send_buf, void* recv_buf, int count,
                 const Datatype& type, ReduceOp op) const;
  void gather(const void* send_buf, int count, const Datatype& type,
              void* recv_buf, int root) const;
  void scatter(const void* send_buf, int count, const Datatype& type,
               void* recv_buf, int root) const;
  void allgather(const void* send_buf, int count, const Datatype& type,
                 void* recv_buf) const;
  void alltoall(const void* send_buf, int count, const Datatype& type,
                void* recv_buf) const;

  // --- Nonblocking collectives (schedule-based progress engine) ----------
  // Each call compiles a per-rank schedule of rounds, posts its first
  // round immediately and returns a Request handle; the schedule then
  // advances inside Request::wait()/test() (weak progress — compute
  // between the call and the wait overlaps the communication). Buffers
  // must stay untouched until the request completes. Collectives —
  // blocking or not — must be initiated in the same order on every rank
  // of the communicator; waits may then complete in any order.
  Request ibarrier() const;
  Request ibcast(void* buf, std::size_t bytes, int root) const;
  Request ireduce(const void* send_buf, void* recv_buf, std::size_t count,
                  BasicKind kind, ReduceOp op, int root) const;
  Request iallreduce(const void* send_buf, void* recv_buf, std::size_t count,
                     BasicKind kind, ReduceOp op) const;
  Request igather(const void* send_buf, std::size_t bytes_per_rank,
                  void* recv_buf, int root) const;
  Request iscatter(const void* send_buf, std::size_t bytes_per_rank,
                   void* recv_buf, int root) const;
  Request iallgather(const void* send_buf, std::size_t bytes_per_rank,
                     void* recv_buf) const;
  Request ialltoall(const void* send_buf, std::size_t bytes_per_pair,
                    void* recv_buf) const;

  // --- Typed nonblocking collectives --------------------------------------
  // Derived-datatype forms: send-side data is packed at initiation (the
  // buffer may be reused once the call returns, unlike the byte forms),
  // receive-side data is scattered into the strided buffer when the
  // schedule completes inside wait()/test().
  Request ibcast(void* buf, int count, const Datatype& type, int root) const;
  Request ireduce(const void* send_buf, void* recv_buf, int count,
                  const Datatype& type, ReduceOp op, int root) const;
  Request iallreduce(const void* send_buf, void* recv_buf, int count,
                     const Datatype& type, ReduceOp op) const;
  Request igather(const void* send_buf, int count, const Datatype& type,
                  void* recv_buf, int root) const;
  Request iscatter(const void* send_buf, int count, const Datatype& type,
                   void* recv_buf, int root) const;
  Request iallgather(const void* send_buf, int count, const Datatype& type,
                     void* recv_buf) const;
  Request ialltoall(const void* send_buf, int count, const Datatype& type,
                    void* recv_buf) const;

  // --- Vectored blocking collectives ---------------------------------------
  /// counts/displs are per-rank byte counts/offsets into the root buffer.
  void gatherv(const void* send_buf, std::size_t send_bytes, void* recv_buf,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root) const;
  void scatterv(const void* send_buf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, void* recv_buf,
                std::size_t recv_bytes, int root) const;
  void allgatherv(const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, std::span<const std::size_t> counts,
                  std::span<const std::size_t> displs) const;
  void alltoallv(const void* send_buf,
                 std::span<const std::size_t> send_counts,
                 std::span<const std::size_t> send_displs, void* recv_buf,
                 std::span<const std::size_t> recv_counts,
                 std::span<const std::size_t> recv_displs) const;

  // --- One-sided communication (RMA) ---------------------------------------
  /// Collectively expose `bytes` bytes at `base` as this rank's slice of
  /// a new window (MPI_Win_create). Sizes may differ per rank; 0 with a
  /// null base is a valid (access-only) slice. The memory must outlive
  /// the window.
  class Win win_create(void* base, std::size_t bytes) const;
  /// Collectively create a window over library-owned zeroed memory
  /// (MPI_Win_allocate); freed when the last handle drops.
  class Win win_allocate(std::size_t bytes) const;

  // --- Fault tolerance (ULFM) -----------------------------------------------
  /// Error-handling policy for rank-failure conditions on this
  /// communicator (default kErrorsAreFatal, as in MPI). The handler is a
  /// property of the communicator, shared by all its ranks; new
  /// communicators inherit the parent's handler.
  void set_errhandler(Errhandler eh) const;
  Errhandler errhandler() const;

  /// Revoke this communicator (MPIX_Comm_revoke): every pending and
  /// future operation on it — on every rank — raises CommRevokedError.
  /// Irreversible; survivors rebuild with shrink(). Idempotent.
  void revoke() const;

  /// Agree on the failed set and build a survivors-only communicator with
  /// dense re-ranking (MPIX_Comm_shrink). Collective over the survivors;
  /// works on revoked and failure-stricken communicators. The result
  /// inherits this communicator's error handler.
  Comm shrink() const;

  /// Fault-tolerant agreement (MPIX_Comm_agree): returns the bitwise AND
  /// of `flag` over all participating ranks, identically on every
  /// survivor, even when ranks fail mid-agreement (a rank that dies after
  /// contributing still counts; one that dies before does not).
  int agree(int flag) const;

  /// World ranks of this communicator's group currently known to have
  /// failed (sorted ascending). Purely local snapshot.
  std::vector<int> failed_ranks() const;

  // --- Communicator management ----------------------------------------------
  /// New communicator, same group, fresh context (collective).
  Comm dup() const;
  /// Partition by color; order within a color by (key, old rank).
  /// Negative color yields an invalid Comm for that rank (collective).
  Comm split(int color, int key) const;
  /// Communicator over a subgroup; invalid Comm for non-members
  /// (collective over the parent).
  Comm create(const Group& subgroup) const;

  /// Seconds since an arbitrary epoch (MPI_Wtime). Wall clock.
  static double wtime();

  /// This rank's VIRTUAL time in ns: real per-thread CPU consumed plus
  /// modelled network delays. This is what benchmarks must measure — it
  /// behaves as if every rank had its own core, regardless of how
  /// oversubscribed the host is. Advances the CPU passthrough on call.
  std::int64_t vtime_ns() const;

  // --- Observability (MPI_T-style tool access) ---------------------------
  /// The owning Universe's performance-variable registry, or nullptr when
  /// observability is disabled. Values are indexed by WORLD rank.
  obs::PvarRegistry* pvars() const;
  /// The owning Universe's event recorder, or nullptr when disabled.
  obs::Recorder* recorder() const;

 private:
  friend class Universe;
  friend detail::ObsAccess detail::obs_access(const Comm& c);

  /// Registers the (context id -> group) mapping with the Universe so the
  /// rank-failure reaper can map posted receives back to world identities
  /// (comm.cpp).
  Comm(detail::UniverseImpl* impl, Group group, int my_rank, int context_id);

  /// Binomial broadcast of one int from rank 0 on the internal management
  /// tag (context-id agreement during dup/split/create).
  void bcast_cid(int* value) const;

  /// World rank of communicator rank `r`.
  int world_of(int r) const { return group_.world_rank(r); }
  int my_world() const { return group_.world_rank(my_rank_); }

  detail::UniverseImpl* impl_ = nullptr;
  Group group_;
  int my_rank_ = -1;
  int context_id_ = -1;
};

/// A persistent communication request (MPI_Send_init / MPI_Recv_init):
/// the operation's buffer and envelope are bound at creation; each
/// start() launches one instance, each wait()/test() completes it. Used
/// by iteration-heavy codes (and OMB's persistent variants) to avoid
/// per-iteration request setup.
class Prequest {
 public:
  Prequest() = default;

  bool valid() const { return comm_.valid(); }
  /// True between start() and the completing wait()/test().
  bool active() const { return current_.valid(); }

  /// Launch one instance of the operation (MPI_Start). The previous
  /// instance must have completed.
  void start();
  /// Complete the active instance; the request stays reusable.
  void wait(Status* status = nullptr);
  bool test(Status* status = nullptr);

  /// Start every request in the span (MPI_Startall).
  static void start_all(std::span<Prequest> requests);

 private:
  friend class Comm;
  enum class Kind { kSend, kRecv };
  Prequest(Comm comm, Kind kind, void* buf, std::size_t bytes, int peer,
           int tag)
      : comm_(comm), kind_(kind), buf_(buf), bytes_(bytes), peer_(peer),
        tag_(tag) {}

  Comm comm_;
  Kind kind_ = Kind::kSend;
  void* buf_ = nullptr;
  std::size_t bytes_ = 0;
  int peer_ = -1;
  int tag_ = 0;
  Request current_;
};

}  // namespace jhpc::minimpi
