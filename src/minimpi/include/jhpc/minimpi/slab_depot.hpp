// Public handle on a fleet-shared slab depot.
//
// One Universe = one job, but a jhpcd fleet runs many Universes whose
// jobs churn. Sharing the depot tier of the slab recycler across the
// fleet means a completed tenant's warm slabs serve the next tenant's
// eager traffic (steady-state churn does zero allocations), and the
// depot's byte ceiling is the single fleet-wide memory bound the
// scheduler audits and sheds load against. The depot itself lives in
// minimpi's detail layer; this header exposes just enough to create one,
// hand it to UniverseConfig::shared_depot, and audit it.
#pragma once

#include <cstddef>
#include <memory>

namespace jhpc::minimpi {

namespace detail {
class SlabDepot;
}  // namespace detail

/// Shared-ownership handle; every Universe constructed with it keeps the
/// depot alive, so the fleet may retire Universes in any order.
using SlabDepotPtr = std::shared_ptr<detail::SlabDepot>;

/// A depot whose retained storage never exceeds `max_bytes` (releases
/// past the ceiling are freed outright, never queued). This is a HARD
/// bound on depot-resident memory however many Universes share it.
SlabDepotPtr make_slab_depot(std::size_t max_bytes);

/// Point-in-time accounting of one depot (relaxed reads; exact when the
/// fleet is quiescent).
struct SlabDepotStats {
  std::size_t retained_bytes = 0;  ///< bytes parked in the depot now
  std::size_t hwm_bytes = 0;       ///< lifetime high-water mark
  std::size_t max_bytes = 0;       ///< the retention ceiling
};
SlabDepotStats slab_depot_stats(const SlabDepotPtr& depot);

/// Free every slab the depot retains; returns the bytes released. The
/// jhpcd scheduler's shed-load path calls this when fleet memory
/// approaches the ceiling (per-Universe free lists are untouched — they
/// are bounded per rank and owned locklessly by rank threads).
std::size_t slab_depot_trim(const SlabDepotPtr& depot);

}  // namespace jhpc::minimpi
