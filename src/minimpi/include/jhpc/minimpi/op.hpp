// Reduction operators for reduce/allreduce/reduce-scatter.
#pragma once

#include <cstddef>
#include <cstdint>

#include "jhpc/minimpi/datatype.hpp"

namespace jhpc::minimpi {

/// The predefined commutative reduction operators the bindings expose
/// (MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX, logical and bitwise and/or/xor).
enum class ReduceOp : std::uint8_t {
  kSum,
  kProd,
  kMin,
  kMax,
  kLand,
  kLor,
  kBand,
  kBor,
  kBxor,
};

/// inout[i] = op(inout[i], in[i]) for `count` elements of basic `kind`.
///
/// Floating-point kinds reject bitwise operators; kChar/kBoolean reject
/// arithmetic where Java does (boolean supports logical ops only).
void apply_reduce(ReduceOp op, BasicKind kind, void* inout, const void* in,
                  std::size_t count);

/// Element-wise reduction over `count` elements of a (possibly strided)
/// datatype, both buffers laid out with the type's extent: walks the
/// flattened run-list of both sides in lockstep and folds `in` into
/// `inout` leaf-by-leaf, without packing either buffer. Requires
/// type.uniform_leaf() (throws UnsupportedOperationError otherwise);
/// run boundaries always fall on leaf boundaries, because flattening
/// merges whole leaves only.
void apply_reduce_typed(ReduceOp op, const Datatype& type, void* inout,
                        const void* in, int count);

/// Human-readable operator name (for error messages and bench labels).
const char* reduce_op_name(ReduceOp op);

}  // namespace jhpc::minimpi
