// Non-blocking communication requests.
#pragma once

#include <memory>
#include <span>

#include "jhpc/minimpi/types.hpp"

namespace jhpc::minimpi {

namespace detail {
struct RequestState;
struct NbcState;
}

/// Handle to an in-flight non-blocking operation: a point-to-point send
/// or receive, or a nonblocking collective's schedule (ibcast & co.).
///
/// Copyable (shared handle semantics, like MPI_Request values passed
/// around by value). A default-constructed Request is the null request:
/// wait() returns immediately with an empty Status.
///
/// Progress semantics for collective requests: the schedule advances
/// inside wait()/test() (and therefore wait_all()/wait_any()) — every
/// active collective of the calling rank is driven together, so mixed
/// p2p + collective request sets and out-of-order waits complete.
class Request {
 public:
  Request() = default;

  /// True when this handle refers to an actual operation.
  bool valid() const { return state_ != nullptr || nbc_ != nullptr; }

  /// Block until the operation completes; fills `status` if non-null.
  /// Waiting on the null request is a no-op (MPI_REQUEST_NULL semantics).
  void wait(Status* status = nullptr);

  /// Non-blocking completion check.
  bool test(Status* status = nullptr);

  /// Wait for every request in the span (MPI_Waitall).
  static void wait_all(std::span<Request> requests);

  /// Wait for any one request; returns its index (MPI_Waitany). Throws if
  /// all requests are null.
  static std::size_t wait_any(std::span<Request> requests,
                              Status* status = nullptr);

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}
  explicit Request(std::shared_ptr<detail::NbcState> nbc)
      : nbc_(std::move(nbc)) {}
  std::shared_ptr<detail::RequestState> state_;
  std::shared_ptr<detail::NbcState> nbc_;
};

}  // namespace jhpc::minimpi
