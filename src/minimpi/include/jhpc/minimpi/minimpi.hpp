// Umbrella header for the minimpi substrate.
#pragma once

#include "jhpc/minimpi/comm.hpp"
#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/group.hpp"
#include "jhpc/minimpi/op.hpp"
#include "jhpc/minimpi/request.hpp"
#include "jhpc/minimpi/types.hpp"
#include "jhpc/minimpi/universe.hpp"
#include "jhpc/minimpi/win.hpp"
