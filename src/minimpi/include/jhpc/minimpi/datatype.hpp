// Datatype descriptors: the eight Java-relevant basic types plus the
// derived constructors (contiguous, vector, hvector, indexed, struct)
// MPI programs build noncontiguous layouts from.
//
// Every derived type is flattened at construction ("commit time") into a
// normalized iovec run-list (`FlatRun`): adjacent byte ranges are merged
// and arithmetic progressions of equal-length blocks are compressed into
// a single (offset, length, count, stride) run. Pack/unpack and the
// transport's noncontiguous eager fast path walk that run-list
// iteratively — O(runs) per element, no recursion, no per-element
// dispatch — so a 2-D face of a halo exchange is one compressed run
// regardless of how deep the constructor nesting was.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace jhpc::minimpi {

/// Basic element kinds, mirroring Java's primitive types (the paper's
/// bindings communicate Java primitive arrays and ByteBuffers).
enum class BasicKind : int {
  kByte = 0,    // 1 byte  (Java byte / MPI.BYTE)
  kBoolean,     // 1 byte  (Java boolean)
  kChar,        // 2 bytes (Java char, UTF-16 code unit)
  kShort,       // 2 bytes
  kInt,         // 4 bytes
  kLong,        // 8 bytes
  kFloat,       // 4 bytes
  kDouble,      // 8 bytes
};

/// Number of distinct basic kinds.
inline constexpr int kBasicKindCount = 8;

/// Size in bytes of one element of `kind`.
std::size_t basic_size(BasicKind kind);

/// Maximum constructor nesting depth. Deeper types throw
/// InvalidArgumentError at construction instead of overflowing the stack
/// during a traversal.
inline constexpr int kMaxTypeDepth = 64;

/// Maximum number of flattened runs one datatype may expand to; a cap on
/// the memory an adversarial contiguous-of-irregular nesting can demand.
inline constexpr std::size_t kMaxFlatRuns = std::size_t{1} << 20;

/// One normalized run of the flattened layout: `count` blocks of
/// `length` contiguous bytes, the first at byte `offset` from the
/// element origin, successive block starts `stride` bytes apart.
/// Offsets (and strides) may be negative — a vector with a negative
/// stride reads *before* the pointer it is applied to, exactly as MPI
/// defines it.
struct FlatRun {
  std::ptrdiff_t offset = 0;
  std::size_t length = 0;
  std::size_t count = 1;
  std::ptrdiff_t stride = 0;

  bool operator==(const FlatRun&) const = default;
};

/// An immutable, shareable datatype descriptor.
///
/// `size()` is the number of payload bytes one element carries; `extent()`
/// is the distance between consecutive elements in user memory. As in
/// MPI, extent spans from min(lb, 0) to max(ub, 0) so that types whose
/// data lies entirely at non-negative offsets keep extent == span, while
/// negative-stride vectors get the symmetric rule. `true_lb()` /
/// `true_extent()` bound the bytes actually touched.
///
/// `pack` gathers `count` elements from a user buffer into a contiguous
/// destination; `unpack` is the inverse. Both are iterative walks over
/// `flat_runs()`. This is exactly the facility the paper says the
/// buffering layer provides for "copying scattered elements in the array
/// onto consecutive locations in the ByteBuffer" — now shared with the
/// transport, which gathers runs straight into its recycled slabs.
class Datatype {
 public:
  // Factories for basic types.
  static Datatype byte_type();
  static Datatype boolean_type();
  static Datatype char_type();
  static Datatype short_type();
  static Datatype int_type();
  static Datatype long_type();
  static Datatype float_type();
  static Datatype double_type();
  static Datatype basic(BasicKind kind);

  /// `count` consecutive elements of `base` (MPI_Type_contiguous).
  static Datatype contiguous(int count, const Datatype& base);

  /// `count` blocks of `blocklen` base elements, block starts separated
  /// by `stride` base extents (MPI_Type_vector). The stride may be
  /// negative or smaller than blocklen (overlapping blocks), as MPI
  /// allows; only negative counts/blocklens are malformed.
  static Datatype vector(int count, int blocklen, int stride,
                         const Datatype& base);

  /// Like vector, but the stride is given in bytes (MPI_Type_create_hvector).
  static Datatype hvector(int count, int blocklen, std::ptrdiff_t stride_bytes,
                          const Datatype& base);

  /// Irregular blocks: block i has `blocklens[i]` base elements starting
  /// at base-element displacement `displs[i]` (MPI_Type_indexed).
  /// Displacements must be non-negative; blocks may not overlap.
  static Datatype indexed(std::span<const int> blocklens,
                          std::span<const int> displs, const Datatype& base);

  /// Heterogeneous records: field i is `blocklens[i]` elements of
  /// `types[i]` at byte displacement `displs[i]` (MPI_Type_create_struct).
  static Datatype struct_type(std::span<const int> blocklens,
                              std::span<const std::ptrdiff_t> displs,
                              std::span<const Datatype> types);

  /// Payload bytes per element.
  std::size_t size() const;
  /// Distance between consecutive elements in user memory.
  std::size_t extent() const;
  /// Lowest byte offset one element touches (<= 0 only for
  /// negative-stride shapes).
  std::ptrdiff_t true_lb() const;
  /// Bytes from the first to one past the last byte an element touches.
  std::size_t true_extent() const;
  /// True for the eight basic kinds.
  bool is_basic() const;
  /// Basic kind; throws for derived types.
  BasicKind kind() const;
  /// The basic kind at the leaves of this type. For struct types mixing
  /// leaf kinds this reports the first field's leaf; see uniform_leaf().
  BasicKind leaf_kind() const;
  /// True when every leaf of the type is the same basic kind (always
  /// true except for mixed structs). Reductions require a uniform leaf.
  bool uniform_leaf() const;

  /// The normalized flattened layout of ONE element.
  std::span<const FlatRun> flat_runs() const;
  /// True when one element is a single dense byte range at offset 0 of
  /// exactly extent() == size() bytes — i.e. pack/unpack are memcpy and
  /// the transport needs no gather/scatter.
  bool contiguous_layout() const;

  /// Gather `count` elements from `src` (laid out with extent()) into the
  /// contiguous buffer `dst` (count * size() bytes).
  void pack(const void* src, void* dst, int count) const;
  /// Scatter the contiguous `src` (count * size() bytes) into `dst`.
  void unpack(const void* src, void* dst, int count) const;

  /// Structural equality (same shape, not just same size).
  bool operator==(const Datatype& other) const;

  /// Implementation descriptor; public only so the implementation file's
  /// free helpers can traverse it. Not part of the supported API.
  struct Desc;

 private:
  explicit Datatype(std::shared_ptr<const Desc> desc);
  std::shared_ptr<const Desc> desc_;
};

namespace detail {

/// Lockstep strided-to-strided copy: `bytes` payload bytes from `src`
/// (laid out as `sn` elements of `st`, or contiguous when st == nullptr)
/// into `dst` (laid out as `rn` elements of `rt`, or contiguous when
/// rt == nullptr). This is the transport's one-copy path: when exactly
/// one side is strided it degenerates to a gather or scatter; when both
/// are, runs are copied chunk-by-chunk with no staging buffer.
/// Returns the number of flattened runs visited (for the dt.* pvars).
std::size_t dt_copy(const Datatype* st, int sn, const void* src,
                    const Datatype* rt, int rn, void* dst,
                    std::size_t bytes);

}  // namespace detail

}  // namespace jhpc::minimpi
