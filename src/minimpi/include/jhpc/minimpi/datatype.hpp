// Datatype descriptors: the eight Java-relevant basic types plus the
// derived constructors (contiguous, vector, indexed) the bindings layer
// needs for packing non-contiguous data through the buffering layer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace jhpc::minimpi {

/// Basic element kinds, mirroring Java's primitive types (the paper's
/// bindings communicate Java primitive arrays and ByteBuffers).
enum class BasicKind : int {
  kByte = 0,    // 1 byte  (Java byte / MPI.BYTE)
  kBoolean,     // 1 byte  (Java boolean)
  kChar,        // 2 bytes (Java char, UTF-16 code unit)
  kShort,       // 2 bytes
  kInt,         // 4 bytes
  kLong,        // 8 bytes
  kFloat,       // 4 bytes
  kDouble,      // 8 bytes
};

/// Number of distinct basic kinds.
inline constexpr int kBasicKindCount = 8;

/// Size in bytes of one element of `kind`.
std::size_t basic_size(BasicKind kind);

/// An immutable, shareable datatype descriptor.
///
/// `size()` is the number of payload bytes one element carries; `extent()`
/// is the span it occupies in user memory (they differ for vector types
/// with stride > blocklen). `pack` gathers `count` elements from a user
/// buffer into a contiguous destination; `unpack` is the inverse. This is
/// exactly the facility the paper says the buffering layer provides for
/// "copying scattered elements in the array onto consecutive locations in
/// the ByteBuffer".
class Datatype {
 public:
  // Factories for basic types.
  static Datatype byte_type();
  static Datatype boolean_type();
  static Datatype char_type();
  static Datatype short_type();
  static Datatype int_type();
  static Datatype long_type();
  static Datatype float_type();
  static Datatype double_type();
  static Datatype basic(BasicKind kind);

  /// `count` consecutive elements of `base` (MPI_Type_contiguous).
  static Datatype contiguous(int count, const Datatype& base);

  /// `count` blocks of `blocklen` base elements, block starts separated by
  /// `stride` base extents (MPI_Type_vector). Requires stride >= blocklen.
  static Datatype vector(int count, int blocklen, int stride,
                         const Datatype& base);

  /// Irregular blocks: block i has `blocklens[i]` base elements starting
  /// at base-element displacement `displs[i]` (MPI_Type_indexed).
  /// Displacements must be non-negative; blocks may not overlap.
  static Datatype indexed(std::span<const int> blocklens,
                          std::span<const int> displs, const Datatype& base);

  /// Payload bytes per element.
  std::size_t size() const;
  /// Memory span per element.
  std::size_t extent() const;
  /// True for the eight basic kinds.
  bool is_basic() const;
  /// Basic kind; throws for derived types.
  BasicKind kind() const;
  /// The basic kind at the leaves of this type (derived types are built
  /// from exactly one basic type in this subset).
  BasicKind leaf_kind() const;

  /// Gather `count` elements from `src` (laid out with extent()) into the
  /// contiguous buffer `dst` (count * size() bytes).
  void pack(const void* src, void* dst, int count) const;
  /// Scatter the contiguous `src` (count * size() bytes) into `dst`.
  void unpack(const void* src, void* dst, int count) const;

  /// Structural equality (same shape, not just same size).
  bool operator==(const Datatype& other) const;

  /// Implementation descriptor; public only so the implementation file's
  /// free helpers can traverse it. Not part of the supported API.
  struct Desc;

 private:
  explicit Datatype(std::shared_ptr<const Desc> desc);
  std::shared_ptr<const Desc> desc_;
};

}  // namespace jhpc::minimpi
