// The Universe: one MPI "job". Owns the endpoints, the fabric model and
// the configuration; runs each rank as a thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "jhpc/minimpi/comm.hpp"
#include "jhpc/minimpi/slab_depot.hpp"
#include "jhpc/minimpi/types.hpp"
#include "jhpc/netsim/fabric.hpp"
#include "jhpc/obs/obs.hpp"

namespace jhpc::minimpi {

/// Per-job configuration (the mpirun command line, in effect).
struct UniverseConfig {
  /// Number of ranks.
  int world_size = 2;
  /// Virtual cluster layout and link parameters.
  netsim::FabricConfig fabric{};
  /// Messages up to this many bytes use the eager protocol (copied through
  /// an internal buffer, sender completes immediately); larger messages
  /// rendezvous (single direct copy once both sides are ready).
  /// Env override: JHPC_EAGER_LIMIT.
  std::size_t eager_limit = 16 * 1024;
  /// Collective-algorithm suite ("which native MPI library this is").
  CollectiveSuite suite = CollectiveSuite::kMv2;

  /// Extra per-message sender-side cost for INTRA-NODE messages, ns.
  /// Models the vendor's shared-memory channel: MVAPICH2's kernel-assisted
  /// single-copy path is markedly cheaper per message than a double-copy
  /// bounce-buffer design; the paper's Figure 5 (intra-node small-message
  /// latency, MVAPICH2-J ~2.46x ahead) is driven by exactly this native
  /// difference. Applied in the transport's deliver path. Calibrated via
  /// suite_profile().
  std::int64_t intra_send_overhead_ns = 0;

  /// Apply the per-suite point-to-point channel profile (see
  /// intra_send_overhead_ns); keeps all vendor calibration in one place.
  /// hier shares mv2's kernel-assisted shared-memory channel (it IS the
  /// MVAPICH2-style library, with smarter collectives on top).
  UniverseConfig& apply_suite_profile() {
    intra_send_overhead_ns =
        suite == CollectiveSuite::kOmpiBasic ? 3000 : 0;
    return *this;
  }

  /// Modelled cost of observing a peer's shared-flag update in the hier
  /// suite's intra-node release/gather trees, ns (one cache-line transfer
  /// between cores, not a trip through the shared-memory channel). This
  /// is what makes the hierarchy pay off: an intra-node hand-off costs
  /// hier_flag_ns instead of intra_latency_ns per tree hop. Env:
  /// JHPC_HIER_FLAG_NS.
  std::int64_t hier_flag_ns = 40;

  /// Fleet-shared slab depot (see jhpc/minimpi/slab_depot.hpp). Null —
  /// the default — gives the Universe a private, uncapped depot with the
  /// pre-fleet behavior. A jhpcd fleet passes one make_slab_depot()
  /// handle to every Universe it creates so completed jobs donate warm
  /// slabs to the next tenant and the depot ceiling bounds fleet memory.
  SlabDepotPtr shared_depot;

  /// Observability (MPI_T-style pvars + virtual-clock event tracing).
  /// Off by default and strictly zero-cost then: every instrumentation
  /// site guards on one null pointer. Env: JHPC_PVARS / JHPC_TRACE /
  /// JHPC_TRACE_CAPACITY.
  obs::ObsConfig obs = obs::ObsConfig::from_env();

  /// Deterministic virtual clock: disable the per-thread CPU-time
  /// passthrough so rank clocks advance ONLY by modelled costs (fabric
  /// delays, configured overheads). With one rank per node this makes
  /// final virtual times bit-reproducible across runs — the basis of the
  /// fault-injection determinism contract (docs/FAULTS.md). Benchmarks
  /// should keep this off: the CPU passthrough is what makes latencies
  /// real. Env: JHPC_DET_CLOCK.
  bool deterministic_clock = false;

  // Tuning thresholds of the mv2 suite (bytes).
  std::size_t bcast_binomial_max = 16 * 1024;
  std::size_t allreduce_rd_max = 16 * 1024;
  std::size_t allgather_rd_max = 32 * 1024;

  /// Apply JHPC_* environment overrides on top of the current values.
  UniverseConfig& apply_env();
};

/// One MPI job. Construct, then run() one or more SPMD functions; every
/// run launches world_size rank threads, passes each its COMM_WORLD, and
/// joins. If any rank throws, all collective/blocking calls of the other
/// ranks abort promptly and the first exception is rethrown from run().
class Universe {
 public:
  explicit Universe(UniverseConfig config);
  ~Universe();
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  /// Execute `rank_main` on every rank; blocks until all ranks return.
  void run(const std::function<void(Comm&)>& rank_main);

  /// Test hook: fail-stop `world_rank` immediately, from any thread
  /// (including another rank's), while a run is in progress. The target's
  /// thread unwinds at its next MPI call; survivors observe the death
  /// exactly as with a JHPC_FAULT_KILL schedule (RankFailedError under
  /// ErrorsReturn, job abort under the default ErrorsAreFatal). See
  /// docs/FAULTS.md.
  void kill_rank(int world_rank);

  /// Convenience: construct a Universe and run one function.
  static void launch(const UniverseConfig& config,
                     const std::function<void(Comm&)>& rank_main);

  const UniverseConfig& config() const;
  netsim::Fabric& fabric();

  /// Slab-recycler counters for the current job, plus the depot view.
  /// Flow counters reset at each run() start (the free lists stay warm,
  /// so a reused Universe's first acquires are hits); retained_bytes is
  /// a live gauge of this Universe's lists; the depot_* fields read the
  /// depot tier, which is GLOBAL across tenants when the Universe was
  /// built with UniverseConfig::shared_depot (see SlabStats for the full
  /// aggregation contract). Mirrored as transport.slab.* pvars when
  /// observability is on.
  SlabStats slab_stats() const;

  /// Sum of pvar `name` across ranks, or 0 when observability is off or
  /// the name is unknown. Safe from any thread while a run is in
  /// progress (pvar reads are relaxed-atomic) — this is how the jhpcd
  /// watchdog polls a tenant's transport counters against its quotas.
  std::int64_t pvar_total(const std::string& name) const;

 private:
  std::unique_ptr<detail::UniverseImpl> impl_;
};

}  // namespace jhpc::minimpi
