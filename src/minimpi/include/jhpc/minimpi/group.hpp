// Process groups (MPI_Group): ordered sets of world ranks with the usual
// set algebra. Purely local objects.
#pragma once

#include <vector>

namespace jhpc::minimpi {

/// An ordered list of distinct world ranks.
class Group {
 public:
  Group() = default;
  /// Build from an explicit ordered rank list (must be distinct).
  explicit Group(std::vector<int> world_ranks);

  int size() const { return static_cast<int>(ranks_.size()); }
  /// Position of `world_rank` in this group, or -1 (MPI_UNDEFINED).
  int rank_of(int world_rank) const;
  /// World rank at group position `group_rank`.
  int world_rank(int group_rank) const;
  const std::vector<int>& ranks() const { return ranks_; }

  /// Keep only the listed positions, in the listed order (MPI_Group_incl).
  Group incl(const std::vector<int>& group_ranks) const;
  /// Drop the listed positions (MPI_Group_excl).
  Group excl(const std::vector<int>& group_ranks) const;
  /// Elements of this, then elements of other not in this.
  Group union_with(const Group& other) const;
  /// Elements of this that are also in other, in this order.
  Group intersection(const Group& other) const;
  /// Elements of this that are not in other.
  Group difference(const Group& other) const;

  /// Translate positions in this group to positions in `other`
  /// (-1 where absent), MPI_Group_translate_ranks.
  std::vector<int> translate(const std::vector<int>& group_ranks,
                             const Group& other) const;

  bool operator==(const Group& other) const { return ranks_ == other.ranks_; }

 private:
  std::vector<int> ranks_;
};

}  // namespace jhpc::minimpi
