// Core constants and small value types of the minimpi substrate.
//
// minimpi plays the role of the native MPI libraries (MVAPICH2 / Open MPI)
// in the paper's stack: a message-passing runtime with communicators,
// tag/source matching, eager+rendezvous point-to-point protocols and a
// full set of blocking collectives. Ranks are threads inside one process;
// inter-node behaviour comes from jhpc::netsim.
#pragma once

#include <cstddef>
#include <cstdint>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

/// Raised when the reliable transport exhausts its delivery-timeout
/// budget: under an injected fault plan (jhpc/netsim/fault.hpp) a message
/// could not be delivered and acknowledged within
/// FaultPlan::delivery_timeout_ns of virtual time. Surfaces from
/// send/isend and from wait/test on the affected requests — graceful
/// degradation instead of a hang. Never thrown when faults are disabled.
class TransportTimeoutError : public jhpc::Error {
 public:
  explicit TransportTimeoutError(const std::string& what) : Error(what) {}
};

/// Wildcard source for receives (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Wildcard tag for receives (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Largest tag available to user code; higher tag values are reserved for
/// the collective algorithms.
inline constexpr int kMaxUserTag = (1 << 28) - 1;

/// Which vendor collective-algorithm suite a Universe uses.
///
/// The paper's collective results (Figures 14-17) are attributed to
/// "performance differences in the native MPI libraries"; we reproduce the
/// cause by shipping two suites over the same transport:
///   kMv2       — tuned algorithms (binomial trees, scatter-allgather
///                broadcast, recursive doubling, ring reduce-scatter),
///                modelling MVAPICH2-X.
///   kOmpiBasic — flat linear algorithms, modelling an untuned baseline.
enum class CollectiveSuite : std::uint8_t { kMv2, kOmpiBasic };

/// Completion information for a receive (subset of MPI_Status).
struct Status {
  int source = kAnySource;       ///< Matched source rank (in the comm).
  int tag = kAnyTag;             ///< Matched tag.
  std::size_t count_bytes = 0;   ///< Bytes actually received.
};

/// Counters of the transport's eager-payload slab recycler (see
/// Universe::slab_stats). In steady state every eager message is a hit
/// and misses stay flat: zero heap allocations per message.
struct SlabStats {
  std::uint64_t hits = 0;        ///< acquires served from a free list
  std::uint64_t misses = 0;      ///< acquires that heap-allocated
  std::uint64_t recycled = 0;    ///< releases retained for reuse
  std::uint64_t recycled_bytes = 0;  ///< capacity bytes of those releases
  std::uint64_t overflow_drops = 0;  ///< releases freed past the caps
};

}  // namespace jhpc::minimpi
