// Core constants and small value types of the minimpi substrate.
//
// minimpi plays the role of the native MPI libraries (MVAPICH2 / Open MPI)
// in the paper's stack: a message-passing runtime with communicators,
// tag/source matching, eager+rendezvous point-to-point protocols and a
// full set of blocking collectives. Ranks are threads inside one process;
// inter-node behaviour comes from jhpc::netsim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

/// Raised when the reliable transport exhausts its delivery-timeout
/// budget: under an injected fault plan (jhpc/netsim/fault.hpp) a message
/// could not be delivered and acknowledged within
/// FaultPlan::delivery_timeout_ns of virtual time. Surfaces from
/// send/isend and from wait/test on the affected requests — graceful
/// degradation instead of a hang. Never thrown when faults are disabled.
class TransportTimeoutError : public jhpc::Error {
 public:
  explicit TransportTimeoutError(const std::string& what)
      : Error(ErrorCode::kTransportTimeout, what) {}
};

/// Raised on the receiver when a matched message is larger than the
/// posted receive buffer (MPI_ERR_TRUNCATE).
class TruncationError : public jhpc::Error {
 public:
  explicit TruncationError(const std::string& what)
      : Error(ErrorCode::kTruncated, what) {}
};

/// Raised when an operation involves a rank that has fail-stopped
/// (MPIX_ERR_PROC_FAILED in ULFM terms). `failed_ranks()` lists the dead
/// ranks known to be involved, as WORLD ranks, sorted ascending. Only
/// raised when a rank-failure plan is configured (netsim
/// FaultPlan::kills) or Universe::kill_rank was called.
class RankFailedError : public jhpc::Error {
 public:
  RankFailedError(const std::string& what, std::vector<int> failed)
      : Error(ErrorCode::kRankFailed, what), failed_ranks_(std::move(failed)) {}

  const std::vector<int>& failed_ranks() const { return failed_ranks_; }

 private:
  std::vector<int> failed_ranks_;
};

/// Raised when an operation runs on (or is interrupted by) a revoked
/// communicator (MPIX_ERR_REVOKED). After Comm::revoke(), every pending
/// and future operation on that communicator raises this until survivors
/// rebuild via Comm::shrink().
class CommRevokedError : public jhpc::Error {
 public:
  explicit CommRevokedError(const std::string& what)
      : Error(ErrorCode::kCommRevoked, what) {}
};

/// Per-communicator error-handling policy for *rank-failure* conditions
/// (RankFailedError / CommRevokedError), set via Comm::set_errhandler.
///
///   kErrorsAreFatal — MPI default: the first failure observed on the
///                     communicator aborts the whole job (every rank's
///                     launch callback unwinds, Universe::run rethrows).
///   kErrorsReturn   — ULFM mode: the typed exception propagates to the
///                     caller only, who may revoke/shrink/agree and
///                     continue on the survivors.
///
/// TransportTimeoutError is not mediated by the handler: link-level
/// delivery failure keeps its PR-2 semantics either way.
enum class Errhandler : std::uint8_t { kErrorsAreFatal, kErrorsReturn };

/// Wildcard source for receives (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Wildcard tag for receives (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Largest tag available to user code; higher tag values are reserved for
/// the collective algorithms.
inline constexpr int kMaxUserTag = (1 << 28) - 1;

/// Which vendor collective-algorithm suite a Universe uses.
///
/// The paper's collective results (Figures 14-17) are attributed to
/// "performance differences in the native MPI libraries"; we reproduce the
/// cause by shipping three suites over the same transport:
///   kMv2       — tuned algorithms (binomial trees, scatter-allgather
///                broadcast, recursive doubling, ring reduce-scatter),
///                modelling MVAPICH2-X.
///   kOmpiBasic — flat linear algorithms, modelling an untuned baseline.
///   kHier      — topology-aware two-level algorithms (XHC/SMHC style):
///                per-node leaders run the mv2 trees inter-node; node
///                members synchronise over shared flag trees and copy
///                payloads single-copy out of the publisher's buffer.
///                Falls back to mv2 for collectives it does not
///                specialise. Env: JHPC_COLL=mv2|basic|hier.
enum class CollectiveSuite : std::uint8_t { kMv2, kOmpiBasic, kHier };

/// Completion information for a receive (subset of MPI_Status).
struct Status {
  int source = kAnySource;       ///< Matched source rank (in the comm).
  int tag = kAnyTag;             ///< Matched tag.
  std::size_t count_bytes = 0;   ///< Bytes actually received.
};

/// Counters of the transport's eager-payload slab recycler (see
/// Universe::slab_stats). In steady state every eager message is a hit
/// and misses stay flat: zero heap allocations per message.
///
/// Aggregation semantics under concurrent jobs: the flow counters (hits,
/// misses, recycled, recycled_bytes, overflow_drops) and retained_bytes
/// are PER JOB — they describe this Universe's own free lists and reset
/// (flow) at each run() start. The depot_* fields are the depot view:
/// for a Universe built with UniverseConfig::shared_depot they are
/// GLOBAL across every tenant sharing that depot (the fleet-wide number
/// the jhpcd memory ceiling is audited against); for a default Universe
/// the depot is private and they are per-job too. depot_shared says
/// which reading you are holding.
struct SlabStats {
  std::uint64_t hits = 0;        ///< acquires served from a free list
  std::uint64_t misses = 0;      ///< acquires that heap-allocated
  std::uint64_t recycled = 0;    ///< releases retained for reuse
  std::uint64_t recycled_bytes = 0;  ///< capacity bytes of those releases
  std::uint64_t overflow_drops = 0;  ///< releases freed past the caps
  /// Bytes currently parked in THIS Universe's per-rank free lists
  /// (gauge; survives run() boundaries — warm lists are the point).
  std::uint64_t retained_bytes = 0;
  /// Bytes currently parked in the depot tier (global when shared).
  std::uint64_t depot_retained_bytes = 0;
  /// Lifetime high-water mark of depot_retained_bytes.
  std::uint64_t depot_hwm_bytes = 0;
  /// The depot's retention ceiling (SIZE_MAX = uncapped private depot).
  std::uint64_t depot_max_bytes = 0;
  /// True when the depot is shared with other Universes (jhpcd fleet).
  bool depot_shared = false;
};

}  // namespace jhpc::minimpi
