// Cartesian process topologies (MPI_Cart_create and friends): the
// structured-grid decomposition stencil codes are written against.
#pragma once

#include <array>
#include <vector>

#include "jhpc/minimpi/comm.hpp"

namespace jhpc::minimpi {

/// A communicator with an attached N-dimensional Cartesian topology.
/// Ranks are laid out row-major over the dims (MPI's ordering).
class CartComm {
 public:
  CartComm() = default;

  /// Collective over `base`: build a topology with the given extents and
  /// per-dimension periodicity. The product of dims must not exceed
  /// base.size(); surplus ranks receive an invalid CartComm
  /// (MPI_COMM_NULL semantics).
  static CartComm create(const Comm& base, std::vector<int> dims,
                         std::vector<bool> periodic);

  /// Balanced factorisation of `nranks` into `ndims` extents
  /// (MPI_Dims_create).
  static std::vector<int> dims_create(int nranks, int ndims);

  bool valid() const { return comm_.valid(); }
  const Comm& comm() const { return comm_; }
  int ndims() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }

  /// My coordinates (MPI_Cart_coords of my rank).
  std::vector<int> coords() const { return coords_of(comm_.rank()); }
  /// Coordinates of any rank.
  std::vector<int> coords_of(int rank) const;
  /// Rank at `coords`; -1 when a non-periodic coordinate is off the grid
  /// (MPI_PROC_NULL semantics).
  int rank_of(std::vector<int> coords) const;

  /// Source/destination pair for a shift along `dim` by `disp`
  /// (MPI_Cart_shift): receive-from and send-to ranks, -1 at open edges.
  struct Shift {
    int source = -1;
    int dest = -1;
  };
  Shift shift(int dim, int disp) const;

 private:
  CartComm(Comm comm, std::vector<int> dims, std::vector<bool> periodic)
      : comm_(comm), dims_(std::move(dims)), periodic_(std::move(periodic)) {}

  Comm comm_;
  std::vector<int> dims_;
  std::vector<bool> periodic_;
};

}  // namespace jhpc::minimpi
