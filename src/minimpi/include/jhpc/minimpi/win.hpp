// One-sided communication (RMA): memory windows with MPI-3-shaped
// put/get/accumulate/fetch_op and all three synchronization flavors.
//
// A Win exposes one region of each member rank's memory to direct remote
// access. Transfers ride an RDMA-emulating path: the origin rank charges
// the netsim link cost model exactly as a message of that size would,
// but the payload is written straight into the exposed window memory —
// no mailbox bounce, no matching, no receiver CPU. Origin completion
// (origin buffer reusable) and target completion (window memory updated)
// are modeled as distinct virtual times, as on real RDMA hardware, and
// reconciled by the epoch-closing synchronization calls.
//
// Epoch discipline (enforced; violations throw InvalidArgumentError):
//   fence          — collective barrier-like epoch separator; after the
//                    first fence every member may target every other.
//   post/start/    — generalized active target: targets expose with
//   complete/wait    post(origins), origins access with start(targets).
//   lock/unlock    — passive target: exclusive or shared per-target
//                    locks; lock_all/unlock_all over every member.
// Every epoch-closing call routes typed RankFailedError /
// CommRevokedError out instead of hanging when ranks die (ULFM).
//
// Under an injected fault plan one-sided traffic uses the reliable
// transport: retransmitted puts are applied exactly once (a per-origin
// sequence floor suppresses duplicate application), so accumulates never
// double-fold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "jhpc/minimpi/comm.hpp"
#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/minimpi/op.hpp"

namespace jhpc::minimpi {

namespace detail {
struct WinState;
}  // namespace detail

/// Passive-target lock flavor (MPI_LOCK_EXCLUSIVE / MPI_LOCK_SHARED).
enum class LockType : std::uint8_t {
  kExclusive,
  kShared,
};

/// A one-sided communication window over the ranks of one communicator.
/// Cheap value type; like Comm, a Win is only usable from the rank
/// thread it was created on. All communication calls are nonblocking
/// until the enclosing epoch closes (fetch_op additionally delivers its
/// result before returning); buffers passed to put/accumulate must stay
/// unchanged, and get targets unread, until then.
class Win {
 public:
  Win() = default;

  bool valid() const { return st_ != nullptr; }
  /// This rank's number / the member count of the window's communicator.
  int rank() const { return my_rank_; }
  int size() const;
  /// This rank's exposed region (base is null for a zero-byte slice).
  void* base() const;
  std::size_t bytes() const;
  /// Size of `target`'s exposed region.
  std::size_t bytes(int target) const;

  // --- One-sided operations (byte-oriented) ------------------------------
  /// Write `bytes` bytes of `buf` into `target`'s window at byte offset
  /// `target_offset`. Requires an access epoch covering `target`.
  void put(const void* buf, std::size_t bytes, int target,
           std::size_t target_offset) const;
  /// Read `bytes` bytes from `target`'s window at `target_offset`.
  void get(void* buf, std::size_t bytes, int target,
           std::size_t target_offset) const;

  // --- Typed one-sided operations (derived datatypes) --------------------
  /// Put `count` elements of `type` from `buf` into `target`'s window,
  /// laid out there as elements of `target_type` starting at
  /// `target_offset`. The payload travels packed (count * type.size()
  /// bytes, which must be a whole number of target_type elements) and is
  /// scattered straight into the window through the flattened run-lists.
  void put(const void* buf, int count, const Datatype& type, int target,
           std::size_t target_offset, const Datatype& target_type) const;
  void get(void* buf, int count, const Datatype& type, int target,
           std::size_t target_offset, const Datatype& target_type) const;

  /// Element-wise `window = op(window, buf)` over `count` elements of
  /// `type` at `target_offset` in `target`'s window. Same type on both
  /// sides (requires type.uniform_leaf()); applied under the target's
  /// window mutex, so concurrent accumulates from different origins are
  /// atomic per element and any same-epoch overlap is well-defined for
  /// commutative ops.
  void accumulate(const void* buf, int count, const Datatype& type,
                  ReduceOp op, int target, std::size_t target_offset) const;

  /// Atomic read-modify-write of ONE element of `kind` at
  /// `target_offset`: fetches the old value into `result`, then applies
  /// `window = op(window, *value)`. Unlike the other operations the
  /// fetched value is valid as soon as the call returns (the origin
  /// clock observes the modeled round trip).
  void fetch_op(const void* value, void* result, BasicKind kind, ReduceOp op,
                int target, std::size_t target_offset) const;

  // --- Active-target synchronization -------------------------------------
  /// Collective epoch separator: closes the previous fence epoch (all
  /// members' operations complete at origin and target) and opens a new
  /// one in which every member may access every other.
  void fence() const;

  /// Expose this rank's window to the listed origin ranks (comm ranks;
  /// no self, no duplicates). Nonblocking.
  void post(const std::vector<int>& origins) const;
  /// Open an access epoch on the listed target ranks; blocks until each
  /// has posted a matching exposure epoch.
  void start(const std::vector<int>& targets) const;
  /// Close the start() epoch: operations are complete at the ORIGIN
  /// (buffers reusable); target completion is observed by the targets'
  /// wait().
  void complete() const;
  /// Close the post() epoch: blocks until every origin called
  /// complete(); all their operations are then applied to this window.
  void wait() const;

  // --- Passive-target synchronization -------------------------------------
  /// Acquire an exclusive or shared lock on `target`'s window and open
  /// an access epoch on it. Blocks while a conflicting lock is held;
  /// surfaces typed errors (never hangs) when ranks die.
  void lock(LockType type, int target) const;
  /// Close the lock epoch: all operations complete at origin AND target,
  /// then the lock is released.
  void unlock(int target) const;
  /// Shared-lock every member window (ascending rank order, deadlock
  /// free); any member may then be targeted until unlock_all().
  void lock_all() const;
  void unlock_all() const;

  /// Collectively destroy the window (barrier, then unregister). The
  /// handle becomes invalid; user memory passed to win_create is
  /// untouched.
  void free();

 private:
  friend class Comm;
  Win(std::shared_ptr<detail::WinState> st, Comm comm, int my_rank)
      : st_(std::move(st)), comm_(comm), my_rank_(my_rank) {}

  std::shared_ptr<detail::WinState> st_;
  Comm comm_;
  int my_rank_ = -1;
};

}  // namespace jhpc::minimpi
