// One-sided windows over the RDMA-emulating transport path.
//
// Data movement model: the origin thread IS the emulated RDMA engine.
// It charges the netsim link cost exactly as a message of that size
// would pay it, then copies the payload straight between its buffer and
// the exposed window memory under the target's window mutex — no
// mailbox bounce, no matching, no target-CPU involvement. Origin
// completion (ack / NIC drain) and target completion (payload landed in
// window memory) are separate virtual times, reconciled by whichever
// sync call closes the epoch.
//
// Under an injected fault plan, operations ride the reliable transport:
// reliable_transmit_each() invokes our application hook on EVERY data
// attempt that survives the plan — first delivery and ack-loss-provoked
// duplicates alike — and the per-origin sequence floor in WinState
// suppresses re-application, which is what keeps retransmitted puts
// exactly-once and accumulates single-fold.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <utility>

#include "detail/coll.hpp"
#include "detail/transport.hpp"
#include "detail/win.hpp"
#include "jhpc/minimpi/minimpi.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

using detail::WinState;

namespace {

using namespace std::chrono_literals;

/// Per-call context: the pieces of the universe an RMA call needs.
struct Rma {
  detail::UniverseImpl* uni;
  detail::UniverseObs* obs;
  detail::RankClock* clock;
  int me_w;  ///< calling rank's world rank
  int cid;
};

Rma rma_ctx(const Comm& c) {
  const detail::ObsAccess a = detail::obs_access(c);
  return {a.uni, a.obs, a.clock, a.world_rank, a.context_id};
}

void check_win(const WinState* st, const char* what) {
  if (st == nullptr)
    throw jhpc::InvalidArgumentError(std::string(what) +
                                     ": invalid (freed or default) window");
}

void check_target(const WinState& st, int target, const char* what) {
  if (target < 0 || target >= st.nranks)
    throw jhpc::InvalidArgumentError(
        std::string(what) + ": target rank " + std::to_string(target) +
        " out of range [0, " + std::to_string(st.nranks) + ")");
}

/// Epoch discipline: an operation on `target` needs an access epoch
/// covering it. Violations are programming errors -> InvalidArgumentError.
void check_access(const WinState::Epoch& ep, int target, const char* what) {
  switch (ep.kind) {
    case WinState::Epoch::kFence:
    case WinState::Epoch::kLockAll:
      return;
    case WinState::Epoch::kStart:
      if (std::find(ep.access_group.begin(), ep.access_group.end(), target) !=
          ep.access_group.end())
        return;
      throw jhpc::InvalidArgumentError(
          std::string(what) + ": target " + std::to_string(target) +
          " is not in the start() access group");
    case WinState::Epoch::kLock:
      if (target == ep.lock_target) return;
      throw jhpc::InvalidArgumentError(
          std::string(what) + ": target " + std::to_string(target) +
          " is not the locked rank (" + std::to_string(ep.lock_target) + ")");
    case WinState::Epoch::kNone:
      break;
  }
  throw jhpc::InvalidArgumentError(
      std::string(what) +
      ": no access epoch open (call fence, start or lock first)");
}

void check_bounds(const WinState::RankWin& rw, std::size_t offset,
                  std::size_t span, int target, const char* what) {
  if (span > rw.bytes || offset > rw.bytes - span)
    throw jhpc::InvalidArgumentError(
        std::string(what) + ": access [" + std::to_string(offset) + ", " +
        std::to_string(offset + span) + ") outside rank " +
        std::to_string(target) + "'s " + std::to_string(rw.bytes) +
        "-byte window");
}

/// Bytes a strided target-side layout of `count` elements touches, for
/// the bounds check (conservative for types whose extent undershoots
/// their true extent).
std::size_t layout_span(const Datatype& type, int count) {
  if (count <= 0) return 0;
  return static_cast<std::size_t>(count - 1) * type.extent() +
         std::max(type.extent(), type.true_extent());
}

/// Origin->target transfer core shared by put/accumulate/fetch_op.
/// Charges the link cost model, runs `apply` (which mutates the target
/// window; caller does NOT hold rw.mu) exactly once, and returns
/// {origin-completion, target-completion} virtual times.
struct XferTimes {
  std::int64_t origin_done;
  std::int64_t remote_done;
};

XferTimes rma_write(const Rma& x, WinState::RankWin& rw, int tgt_w,
                    std::size_t wire_bytes,
                    const std::function<void()>& apply, const char* what) {
  detail::UniverseImpl* uni = x.uni;
  const std::int64_t t0 = x.clock->vclock;
  if (!uni->faults_on) {
    const std::int64_t deliver =
        uni->fabric.reserve_delivery(t0, x.me_w, tgt_w, wire_bytes);
    {
      std::lock_guard<std::mutex> lk(rw.mu);
      detail::ChargedSection cs(*x.clock);
      apply();
    }
    // Origin completion = NIC drained the source buffer: the wire time
    // minus the final propagation hop (an RDMA write needs no ack when
    // the fabric is lossless).
    const std::int64_t hop = uni->fabric.hop_latency_ns(x.me_w, tgt_w);
    return {std::max(t0, deliver - hop), deliver};
  }
  // Faulty fabric: the reliable transport retries until acked; the hook
  // applies every surviving arrival and the sequence floor dedups.
  const std::uint64_t seq = uni->fabric.next_msg_seq(x.me_w, tgt_w);
  const auto tx = uni->reliable_transmit_each(
      x.me_w, tgt_w, wire_bytes, seq, t0, x.me_w, what,
      [&](std::int64_t) {
        std::lock_guard<std::mutex> lk(rw.mu);
        // The floor holds the lowest not-yet-applied sequence number for
        // this origin (pair seqs start at 0, so "highest applied" would
        // eat the very first message on an otherwise-quiet pair).
        std::uint64_t& floor = rw.last_seq[static_cast<std::size_t>(x.me_w)];
        if (seq < floor) return;  // retransmit of an applied payload
        floor = seq + 1;
        detail::ChargedSection cs(*x.clock);
        apply();
      });
  // Origin completion = the ack; target completion = first delivery.
  return {tx.acked_at_ns, tx.deliver_at_ns};
}

/// Per-operation epoch + frontier bookkeeping shared by every op.
void note_op(const Rma& x, WinState::Epoch& ep, WinState::RankWin& rw,
             const XferTimes& t) {
  ep.ops += 1;
  ep.max_origin_ns = std::max(ep.max_origin_ns, t.origin_done);
  ep.max_remote_ns = std::max(ep.max_remote_ns, t.remote_done);
  // Advance the target-completion frontier (CAS-max: any origin thread).
  std::int64_t prev = rw.target_vtime.load(std::memory_order_relaxed);
  while (prev < t.remote_done &&
         !rw.target_vtime.compare_exchange_weak(prev, t.remote_done,
                                                std::memory_order_release)) {
  }
  (void)x;
}

void flight_op(const Rma& x, obs::FlightKind kind, std::int64_t arg,
               int peer_w) {
  if (x.obs != nullptr)
    x.obs->flight.record(x.me_w,
                         {x.clock->vclock, arg, peer_w, -1, kind});
}

/// Close-of-epoch accounting: sync_epochs pvar, wait histogram, flight.
void note_sync(const Rma& x, std::int64_t wait_from, std::int64_t ops) {
  if (x.obs == nullptr) return;
  x.obs->rec.pvars().add(x.obs->rma_sync_epochs, x.me_w, 1);
  x.obs->rec.pvars().record(x.obs->hist_rma_wait, x.me_w,
                            x.clock->vclock - wait_from);
  x.obs->flight.record(x.me_w, {x.clock->vclock, ops, -1, -1,
                                obs::FlightKind::kRmaSync});
}

int win_post_tag(const WinState& st) {
  return detail::kTagWinSync + 2 * static_cast<int>(st.win_id);
}
int win_complete_tag(const WinState& st) {
  return detail::kTagWinSync + 2 * static_cast<int>(st.win_id) + 1;
}

void check_rank_list(const WinState& st, const std::vector<int>& ranks,
                     int me, const char* what) {
  std::set<int> seen;
  for (const int r : ranks) {
    if (r < 0 || r >= st.nranks)
      throw jhpc::InvalidArgumentError(std::string(what) + ": rank " +
                                       std::to_string(r) + " out of range");
    if (r == me)
      throw jhpc::InvalidArgumentError(
          std::string(what) + ": own rank in the group");
    if (!seen.insert(r).second)
      throw jhpc::InvalidArgumentError(std::string(what) +
                                       ": duplicate rank " +
                                       std::to_string(r) + " in the group");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Window creation (Comm members: they need the private impl fields).

namespace {

std::shared_ptr<WinState> win_build(const Comm& c, detail::UniverseImpl* uni,
                                    int my_rank, int my_world, int context_id,
                                    std::byte* base, std::size_t bytes,
                                    bool allocate) {
  detail::RankClock& clock = uni->clocks[static_cast<std::size_t>(my_world)];
  clock.advance_cpu();
  uni->entry_checks(my_world, context_id, -1);

  std::shared_ptr<WinState> st;
  {
    std::lock_guard<std::mutex> lk(uni->winboard.mu);
    auto& seqs = uni->winboard.seq;
    if (seqs.size() < static_cast<std::size_t>(uni->config.world_size))
      seqs.resize(static_cast<std::size_t>(uni->config.world_size));
    const std::uint32_t idx =
        seqs[static_cast<std::size_t>(my_world)][context_id]++;
    const auto key = std::make_pair(context_id, idx);
    auto it = uni->winboard.wins.find(key);
    if (it == uni->winboard.wins.end()) {
      auto fresh = std::make_shared<WinState>();
      fresh->uni = uni;
      fresh->context_id = context_id;
      fresh->win_id = idx;
      fresh->group = c.group();
      fresh->nranks = c.size();
      fresh->world_size = uni->config.world_size;
      fresh->ranks.reserve(static_cast<std::size_t>(fresh->nranks));
      for (int r = 0; r < fresh->nranks; ++r) {
        auto rw = std::make_unique<WinState::RankWin>();
        rw->last_seq.assign(static_cast<std::size_t>(fresh->world_size), 0);
        fresh->ranks.push_back(std::move(rw));
      }
      fresh->owned.resize(static_cast<std::size_t>(fresh->nranks));
      fresh->epochs.resize(static_cast<std::size_t>(fresh->nranks));
      // Stored as shared_ptr<void>: the deleter captured here keeps
      // destruction well-typed.
      it = uni->winboard.wins.emplace(key, fresh).first;
    }
    st = std::static_pointer_cast<WinState>(it->second);
  }

  WinState::RankWin& rw = *st->ranks[static_cast<std::size_t>(my_rank)];
  if (allocate) {
    auto& mem = st->owned[static_cast<std::size_t>(my_rank)];
    mem.assign(bytes, std::byte{0});
    rw.base = mem.data();
  } else {
    rw.base = base;
  }
  rw.bytes = bytes;
  clock.resync_cpu();
  // Registration barrier: no rank opens an epoch before every slice is
  // exposed (also the happens-before edge for the base pointers).
  c.barrier();
  return st;
}

}  // namespace

Win Comm::win_create(void* base, std::size_t bytes) const {
  JHPC_REQUIRE(valid(), "win_create on an invalid communicator");
  JHPC_REQUIRE(base != nullptr || bytes == 0,
               "win_create: null base with a non-zero size");
  return Win(win_build(*this, impl_, my_rank_, my_world(), context_id_,
                       static_cast<std::byte*>(base), bytes,
                       /*allocate=*/false),
             *this, my_rank_);
}

Win Comm::win_allocate(std::size_t bytes) const {
  JHPC_REQUIRE(valid(), "win_allocate on an invalid communicator");
  return Win(win_build(*this, impl_, my_rank_, my_world(), context_id_,
                       nullptr, bytes, /*allocate=*/true),
             *this, my_rank_);
}

// ---------------------------------------------------------------------------
// Accessors.

int Win::size() const {
  check_win(st_.get(), "Win::size");
  return st_->nranks;
}

void* Win::base() const {
  check_win(st_.get(), "Win::base");
  return st_->ranks[static_cast<std::size_t>(my_rank_)]->base;
}

std::size_t Win::bytes() const { return bytes(my_rank_); }

std::size_t Win::bytes(int target) const {
  check_win(st_.get(), "Win::bytes");
  check_target(*st_, target, "Win::bytes");
  return st_->ranks[static_cast<std::size_t>(target)]->bytes;
}

// ---------------------------------------------------------------------------
// One-sided operations.

void Win::put(const void* buf, std::size_t bytes, int target,
              std::size_t target_offset) const {
  check_win(st_.get(), "put");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "put");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  check_access(ep, target, "put");
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  check_bounds(rw, target_offset, bytes, target, "put");
  JHPC_REQUIRE(buf != nullptr || bytes == 0, "put: null origin buffer");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.put", *x.clock);
  const XferTimes t = rma_write(
      x, rw, tgt_w, bytes,
      [&] { std::memcpy(rw.base + target_offset, buf, bytes); }, "rma.put");
  note_op(x, ep, rw, t);
  if (x.obs != nullptr)
    x.obs->rec.pvars().add(x.obs->rma_put_bytes, x.me_w,
                           static_cast<std::int64_t>(bytes));
  flight_op(x, obs::FlightKind::kRmaPut, static_cast<std::int64_t>(bytes),
            tgt_w);
  x.clock->resync_cpu();
}

void Win::put(const void* buf, int count, const Datatype& type, int target,
              std::size_t target_offset, const Datatype& target_type) const {
  check_win(st_.get(), "put");
  JHPC_REQUIRE(count >= 0, "put: negative count");
  const std::size_t total = static_cast<std::size_t>(count) * type.size();
  JHPC_REQUIRE(target_type.size() > 0 && total % target_type.size() == 0,
               "put: origin payload is not a whole number of target "
               "elements");
  const int tcount = static_cast<int>(total / target_type.size());
  if (type.contiguous_layout() && target_type.contiguous_layout()) {
    put(buf, total, target, target_offset);
    return;
  }
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "put");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  check_access(ep, target, "put");
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  check_bounds(rw, target_offset, layout_span(target_type, tcount), target,
               "put");
  JHPC_REQUIRE(buf != nullptr || total == 0, "put: null origin buffer");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.put", *x.clock);
  // The wire carries the packed payload; the strided scatter into the
  // window walks both flattened run-lists directly (no staging copy).
  const XferTimes t = rma_write(
      x, rw, tgt_w, total,
      [&] {
        detail::dt_copy(&type, count, buf, &target_type, tcount,
                        rw.base + target_offset, total);
      },
      "rma.put");
  note_op(x, ep, rw, t);
  if (x.obs != nullptr)
    x.obs->rec.pvars().add(x.obs->rma_put_bytes, x.me_w,
                           static_cast<std::int64_t>(total));
  flight_op(x, obs::FlightKind::kRmaPut, static_cast<std::int64_t>(total),
            tgt_w);
  x.clock->resync_cpu();
}

namespace {

/// Get transfer core: a control-sized request hop out, the payload back.
/// `copy_out` reads the target window (caller does not hold rw.mu).
XferTimes rma_read(const Rma& x, WinState::RankWin& rw, int tgt_w,
                   std::size_t wire_bytes,
                   const std::function<void()>& copy_out, const char* what) {
  detail::UniverseImpl* uni = x.uni;
  const std::int64_t t0 = x.clock->vclock;
  std::int64_t req_at;    // read executed at the target
  std::int64_t deliver;   // payload back at the origin
  if (!uni->faults_on) {
    req_at = t0 + uni->fabric.hop_latency_ns(x.me_w, tgt_w);
    deliver = uni->fabric.reserve_delivery(req_at, tgt_w, x.me_w, wire_bytes);
  } else {
    const std::uint64_t rseq = uni->fabric.next_msg_seq(x.me_w, tgt_w);
    req_at = uni->reliable_control(x.me_w, tgt_w, rseq,
                                   netsim::FaultSalt::kRts, t0, x.me_w, what);
    const std::uint64_t dseq = uni->fabric.next_msg_seq(tgt_w, x.me_w);
    // Reads are idempotent: no application hook, no dedup needed.
    const auto tx = uni->reliable_transmit(tgt_w, x.me_w, wire_bytes, dseq,
                                           req_at, x.me_w, what);
    deliver = tx.deliver_at_ns;
  }
  {
    std::lock_guard<std::mutex> lk(rw.mu);
    detail::ChargedSection cs(*x.clock);
    copy_out();
  }
  // Origin completes when the payload lands; the target's exposed memory
  // was (conceptually) read at req_at.
  return {deliver, req_at};
}

}  // namespace

void Win::get(void* buf, std::size_t bytes, int target,
              std::size_t target_offset) const {
  check_win(st_.get(), "get");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "get");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  check_access(ep, target, "get");
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  check_bounds(rw, target_offset, bytes, target, "get");
  JHPC_REQUIRE(buf != nullptr || bytes == 0, "get: null origin buffer");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.get", *x.clock);
  const XferTimes t = rma_read(
      x, rw, tgt_w, bytes,
      [&] { std::memcpy(buf, rw.base + target_offset, bytes); }, "rma.get");
  note_op(x, ep, rw, t);
  if (x.obs != nullptr)
    x.obs->rec.pvars().add(x.obs->rma_get_bytes, x.me_w,
                           static_cast<std::int64_t>(bytes));
  flight_op(x, obs::FlightKind::kRmaGet, static_cast<std::int64_t>(bytes),
            tgt_w);
  x.clock->resync_cpu();
}

void Win::get(void* buf, int count, const Datatype& type, int target,
              std::size_t target_offset, const Datatype& target_type) const {
  check_win(st_.get(), "get");
  JHPC_REQUIRE(count >= 0, "get: negative count");
  const std::size_t total = static_cast<std::size_t>(count) * type.size();
  JHPC_REQUIRE(target_type.size() > 0 && total % target_type.size() == 0,
               "get: origin payload is not a whole number of target "
               "elements");
  const int tcount = static_cast<int>(total / target_type.size());
  if (type.contiguous_layout() && target_type.contiguous_layout()) {
    get(buf, total, target, target_offset);
    return;
  }
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "get");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  check_access(ep, target, "get");
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  check_bounds(rw, target_offset, layout_span(target_type, tcount), target,
               "get");
  JHPC_REQUIRE(buf != nullptr || total == 0, "get: null origin buffer");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.get", *x.clock);
  const XferTimes t = rma_read(
      x, rw, tgt_w, total,
      [&] {
        detail::dt_copy(&target_type, tcount, rw.base + target_offset, &type,
                        count, buf, total);
      },
      "rma.get");
  note_op(x, ep, rw, t);
  if (x.obs != nullptr)
    x.obs->rec.pvars().add(x.obs->rma_get_bytes, x.me_w,
                           static_cast<std::int64_t>(total));
  flight_op(x, obs::FlightKind::kRmaGet, static_cast<std::int64_t>(total),
            tgt_w);
  x.clock->resync_cpu();
}

void Win::accumulate(const void* buf, int count, const Datatype& type,
                     ReduceOp op, int target,
                     std::size_t target_offset) const {
  check_win(st_.get(), "accumulate");
  JHPC_REQUIRE(count >= 0, "accumulate: negative count");
  if (!type.uniform_leaf())
    throw jhpc::UnsupportedOperationError(
        "accumulate: datatype mixes leaf kinds (reduction undefined)");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "accumulate");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  check_access(ep, target, "accumulate");
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  check_bounds(rw, target_offset, layout_span(type, count), target,
               "accumulate");
  const std::size_t total = static_cast<std::size_t>(count) * type.size();
  JHPC_REQUIRE(buf != nullptr || total == 0,
               "accumulate: null origin buffer");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.acc", *x.clock);
  const XferTimes t = rma_write(
      x, rw, tgt_w, total,
      [&] {
        // Element-wise fold straight into the window, walking the
        // flattened run-list; the window mutex makes it atomic per
        // element against concurrent origins.
        apply_reduce_typed(op, type, rw.base + target_offset, buf, count);
      },
      "rma.acc");
  note_op(x, ep, rw, t);
  if (x.obs != nullptr)
    x.obs->rec.pvars().add(x.obs->rma_acc_ops, x.me_w, 1);
  flight_op(x, obs::FlightKind::kRmaAcc, static_cast<std::int64_t>(total),
            tgt_w);
  x.clock->resync_cpu();
}

void Win::fetch_op(const void* value, void* result, BasicKind kind,
                   ReduceOp op, int target, std::size_t target_offset) const {
  check_win(st_.get(), "fetch_op");
  JHPC_REQUIRE(value != nullptr && result != nullptr,
               "fetch_op: null value/result");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "fetch_op");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  check_access(ep, target, "fetch_op");
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  const std::size_t esize = basic_size(kind);
  check_bounds(rw, target_offset, esize, target, "fetch_op");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.fetch_op", *x.clock);
  XferTimes t = rma_write(
      x, rw, tgt_w, esize,
      [&] {
        // Fetch the pre-op value, then fold. On a duplicate arrival the
        // sequence floor skips this whole closure, so `result` keeps the
        // true pre-op value of the single application.
        std::memcpy(result, rw.base + target_offset, esize);
        apply_reduce(op, kind, rw.base + target_offset, value, 1);
      },
      "rma.fetch_op");
  if (!x.uni->faults_on) {
    // The fetched value needs a reply trip; with faults on, the ack IS
    // the reply (acked_at_ns already models it).
    t.origin_done = x.uni->fabric.reserve_delivery(t.remote_done, tgt_w,
                                                   x.me_w, esize);
  }
  note_op(x, ep, rw, t);
  // Unlike put/get, the fetched value is usable on return: synchronize
  // the origin clock with the modeled round trip now.
  x.clock->observe(t.origin_done);
  if (x.obs != nullptr)
    x.obs->rec.pvars().add(x.obs->rma_acc_ops, x.me_w, 1);
  flight_op(x, obs::FlightKind::kRmaAcc, static_cast<std::int64_t>(esize),
            tgt_w);
  x.clock->resync_cpu();
}

// ---------------------------------------------------------------------------
// Active-target synchronization.

void Win::fence() const {
  check_win(st_.get(), "fence");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kNone &&
      ep.kind != WinState::Epoch::kFence)
    throw jhpc::InvalidArgumentError(
        "fence: another access epoch (start/lock) is open");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.fence", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  // All my operations complete — at origin AND at their targets — before
  // I enter the barrier, so the barrier's exit time bounds everyone's.
  x.clock->observe(std::max(ep.max_origin_ns, ep.max_remote_ns));
  // Comm::barrier already routes RankFailedError/CommRevokedError and
  // auto-revokes on failure (ULFM collective semantics).
  comm_.barrier();
  // Operations targeting ME delivered during the closed epoch.
  WinState::RankWin& mine = *st.ranks[static_cast<std::size_t>(my_rank_)];
  x.clock->observe(mine.target_vtime.load(std::memory_order_acquire));
  note_sync(x, t0, ep.ops);
  const WinState::Epoch::Kind open = WinState::Epoch::kFence;
  ep = WinState::Epoch{};
  ep.kind = open;
  x.clock->resync_cpu();
}

void Win::post(const std::vector<int>& origins) const {
  check_win(st_.get(), "post");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_rank_list(st, origins, my_rank_, "post");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.exposed)
    throw jhpc::InvalidArgumentError(
        "post: an exposure epoch is already open (missing wait()?)");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.post", *x.clock);
  {
    const detail::InternalTagScope tags;
    const char token = 0;
    for (const int o : origins)
      comm_.send(&token, 1, o, win_post_tag(st));
  }
  ep.exposed = true;
  ep.post_group = origins;
  x.clock->resync_cpu();
}

void Win::start(const std::vector<int>& targets) const {
  check_win(st_.get(), "start");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_rank_list(st, targets, my_rank_, "start");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kNone &&
      ep.kind != WinState::Epoch::kFence)
    throw jhpc::InvalidArgumentError(
        "start: another access epoch is already open");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.start", *x.clock);
  {
    // Wait for each target's exposure token; a dead target surfaces a
    // typed RankFailedError from the transport instead of a hang.
    const detail::InternalTagScope tags;
    char token;
    for (const int t : targets)
      comm_.recv(&token, 1, t, win_post_tag(st));
  }
  ep.prev = ep.kind;
  ep.kind = WinState::Epoch::kStart;
  ep.access_group = targets;
  ep.max_origin_ns = 0;
  ep.max_remote_ns = 0;
  ep.ops = 0;
  x.clock->resync_cpu();
}

void Win::complete() const {
  check_win(st_.get(), "complete");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kStart)
    throw jhpc::InvalidArgumentError("complete: no start() epoch open");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.complete", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  // ORIGIN completion only: my buffers are reusable, but the targets
  // learn of target-completion through their own wait().
  x.clock->observe(ep.max_origin_ns);
  {
    const detail::InternalTagScope tags;
    const char token = 0;
    for (const int t : ep.access_group)
      comm_.send(&token, 1, t, win_complete_tag(st));
  }
  note_sync(x, t0, ep.ops);
  ep.kind = ep.prev;
  ep.prev = WinState::Epoch::kNone;
  ep.access_group.clear();
  ep.max_origin_ns = 0;
  ep.max_remote_ns = 0;
  ep.ops = 0;
  x.clock->resync_cpu();
}

void Win::wait() const {
  check_win(st_.get(), "wait");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (!ep.exposed)
    throw jhpc::InvalidArgumentError("wait: no post() epoch open");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.wait", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  {
    const detail::InternalTagScope tags;
    char token;
    for (const int o : ep.post_group)
      comm_.recv(&token, 1, o, win_complete_tag(st));
  }
  // Every origin completed; their operations into my window are applied
  // no later than my frontier says.
  WinState::RankWin& mine = *st.ranks[static_cast<std::size_t>(my_rank_)];
  x.clock->observe(mine.target_vtime.load(std::memory_order_acquire));
  note_sync(x, t0, 0);
  ep.exposed = false;
  ep.post_group.clear();
  x.clock->resync_cpu();
}

// ---------------------------------------------------------------------------
// Passive-target synchronization.

namespace {

/// Acquire one rank's window lock, polling for failure conditions so a
/// dead holder/target or an aborting job surfaces a typed error instead
/// of a hang. Returns the previous holder's release vtime.
std::int64_t lock_one(const Rma& x, WinState& st, WinState::RankWin& rw,
                      int target, int tgt_w, LockType type, int my_rank) {
  std::unique_lock<std::mutex> lk(rw.mu);
  for (;;) {
    const bool free_for_me = type == LockType::kExclusive
                                 ? (!rw.exclusive_held &&
                                    rw.shared_holders == 0)
                                 : !rw.exclusive_held;
    if (free_for_me) break;
    const int holder = rw.exclusive_owner;
    const bool holder_dead =
        rw.exclusive_held && holder >= 0 &&
        x.uni->rank_dead(st.group.world_rank(holder));
    if (x.uni->abort.load(std::memory_order_relaxed) ||
        x.uni->rank_dead(tgt_w) || holder_dead ||
        x.uni->fail.revoked_count.load(std::memory_order_acquire) > 0) {
      lk.unlock();
      // Raises for self-death, revocation and a dead target...
      x.uni->entry_checks(x.me_w, x.cid, tgt_w);
      if (holder_dead)
        // ...and a holder that died without unlocking strands every
        // waiter: that too is a rank-failure condition.
        x.uni->raise_failure(
            x.me_w, x.cid, jhpc::ErrorCode::kRankFailed,
            "rank " + std::to_string(st.group.world_rank(holder)) +
                " failed holding a window lock",
            {st.group.world_rank(holder)});
      if (x.uni->abort.load(std::memory_order_relaxed))
        throw detail::AbortError();
      lk.lock();  // spurious (e.g. unrelated comm revoked): keep waiting
      continue;
    }
    rw.cv.wait_for(lk, 1ms);
  }
  if (type == LockType::kExclusive) {
    rw.exclusive_held = true;
    rw.exclusive_owner = my_rank;
  } else {
    rw.shared_holders += 1;
  }
  (void)target;
  return rw.lock_release_vtime;
}

void unlock_one(WinState::RankWin& rw, LockType type,
                std::int64_t now_vns) {
  std::lock_guard<std::mutex> lk(rw.mu);
  if (type == LockType::kExclusive) {
    rw.exclusive_held = false;
    rw.exclusive_owner = -1;
  } else {
    rw.shared_holders -= 1;
  }
  rw.lock_release_vtime = std::max(rw.lock_release_vtime, now_vns);
  rw.cv.notify_all();
}

}  // namespace

void Win::lock(LockType type, int target) const {
  check_win(st_.get(), "lock");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  check_target(st, target, "lock");
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kNone &&
      ep.kind != WinState::Epoch::kFence)
    throw jhpc::InvalidArgumentError(
        "lock: another access epoch is already open");
  const int tgt_w = st.group.world_rank(target);
  x.uni->entry_checks(x.me_w, x.cid, tgt_w);
  detail::TransportSpan span(x.obs, x.me_w, "rma.lock", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  const std::int64_t released =
      lock_one(x, st, rw, target, tgt_w, type, my_rank_);
  // The epoch serializes after the previous holder in virtual time, plus
  // the lock-request round trip on the link.
  x.clock->observe(released);
  x.clock->charge(2 * x.uni->fabric.hop_latency_ns(x.me_w, tgt_w));
  if (x.obs != nullptr)
    x.obs->rec.pvars().record(x.obs->hist_rma_wait, x.me_w,
                              x.clock->vclock - t0);
  ep.prev = ep.kind;
  ep.kind = WinState::Epoch::kLock;
  ep.lock_target = target;
  ep.lock_type = type;
  ep.max_origin_ns = 0;
  ep.max_remote_ns = 0;
  ep.ops = 0;
  x.clock->resync_cpu();
}

void Win::unlock(int target) const {
  check_win(st_.get(), "unlock");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kLock || ep.lock_target != target)
    throw jhpc::InvalidArgumentError(
        "unlock: rank " + std::to_string(target) + " is not locked");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.unlock", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  // Passive-target close: EVERYTHING completes — origin and target side.
  x.clock->observe(std::max(ep.max_origin_ns, ep.max_remote_ns));
  WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(target)];
  unlock_one(rw, ep.lock_type, x.clock->vclock);
  note_sync(x, t0, ep.ops);
  ep.kind = ep.prev;
  ep.prev = WinState::Epoch::kNone;
  ep.lock_target = -1;
  ep.max_origin_ns = 0;
  ep.max_remote_ns = 0;
  ep.ops = 0;
  x.clock->resync_cpu();
}

void Win::lock_all() const {
  check_win(st_.get(), "lock_all");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kNone &&
      ep.kind != WinState::Epoch::kFence)
    throw jhpc::InvalidArgumentError(
        "lock_all: another access epoch is already open");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.lock_all", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  // Shared lock on every member, ascending order (no deadlock cycles).
  for (int r = 0; r < st.nranks; ++r) {
    const int r_w = st.group.world_rank(r);
    WinState::RankWin& rw = *st.ranks[static_cast<std::size_t>(r)];
    const std::int64_t released =
        lock_one(x, st, rw, r, r_w, LockType::kShared, my_rank_);
    x.clock->observe(released);
  }
  x.clock->charge(2 * x.uni->fabric.hop_latency_ns(
                          x.me_w, st.group.world_rank(st.nranks - 1)));
  if (x.obs != nullptr)
    x.obs->rec.pvars().record(x.obs->hist_rma_wait, x.me_w,
                              x.clock->vclock - t0);
  ep.prev = ep.kind;
  ep.kind = WinState::Epoch::kLockAll;
  ep.max_origin_ns = 0;
  ep.max_remote_ns = 0;
  ep.ops = 0;
  x.clock->resync_cpu();
}

void Win::unlock_all() const {
  check_win(st_.get(), "unlock_all");
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  x.clock->advance_cpu();
  WinState::Epoch& ep = st.epochs[static_cast<std::size_t>(my_rank_)];
  if (ep.kind != WinState::Epoch::kLockAll)
    throw jhpc::InvalidArgumentError("unlock_all: no lock_all() epoch open");
  x.uni->entry_checks(x.me_w, x.cid, -1);
  detail::TransportSpan span(x.obs, x.me_w, "rma.unlock_all", *x.clock);
  const std::int64_t t0 = x.clock->vclock;
  x.clock->observe(std::max(ep.max_origin_ns, ep.max_remote_ns));
  for (int r = st.nranks - 1; r >= 0; --r)
    unlock_one(*st.ranks[static_cast<std::size_t>(r)], LockType::kShared,
               x.clock->vclock);
  note_sync(x, t0, ep.ops);
  ep.kind = ep.prev;
  ep.prev = WinState::Epoch::kNone;
  ep.max_origin_ns = 0;
  ep.max_remote_ns = 0;
  ep.ops = 0;
  x.clock->resync_cpu();
}

// ---------------------------------------------------------------------------

void Win::free() {
  if (st_ == nullptr) return;
  WinState& st = *st_;
  Rma x = rma_ctx(comm_);
  // No member may tear the window down while a peer still has an epoch
  // in flight against it.
  comm_.barrier();
  {
    std::lock_guard<std::mutex> lk(x.uni->winboard.mu);
    x.uni->winboard.wins.erase(
        std::make_pair(st.context_id, st.win_id));
  }
  st_.reset();
  comm_ = Comm();
  my_rank_ = -1;
}

}  // namespace jhpc::minimpi
