#include "detail/transport.hpp"

#include <chrono>
#include <cstring>

#include "jhpc/support/clock.hpp"

namespace jhpc::minimpi::detail {

using namespace std::chrono_literals;

// Polling period for abort detection while parked on a condition variable.
// Only failure paths ever pay this latency.
constexpr auto kAbortPoll = 20ms;

namespace {

struct CollAlgNames {
  const char* pvar;
  const char* trace;
};

/// Indexed by CollAlg; order must match the enum.
constexpr CollAlgNames kCollAlgNames[] = {
    {"coll.barrier.dissemination", "barrier[dissemination]"},
    {"coll.bcast.binomial", "bcast[binomial]"},
    {"coll.bcast.scatter_ring", "bcast[scatter_ring]"},
    {"coll.reduce.binomial", "reduce[binomial]"},
    {"coll.allreduce.recursive_doubling", "allreduce[recursive_doubling]"},
    {"coll.allreduce.ring", "allreduce[ring]"},
    {"coll.reduce_scatter.ring", "reduce_scatter[ring]"},
    {"coll.scan.recursive_doubling", "scan[recursive_doubling]"},
    {"coll.gather.binomial", "gather[binomial]"},
    {"coll.scatter.binomial", "scatter[binomial]"},
    {"coll.allgather.recursive_doubling", "allgather[recursive_doubling]"},
    {"coll.allgather.ring", "allgather[ring]"},
    {"coll.alltoall.pairwise", "alltoall[pairwise]"},
    {"coll.allgatherv.ring", "allgatherv[ring]"},
    {"coll.alltoallv.pairwise", "alltoallv[pairwise]"},
    {"coll.barrier.linear", "barrier[linear]"},
    {"coll.bcast.linear", "bcast[linear]"},
    {"coll.reduce.linear", "reduce[linear]"},
    {"coll.allreduce.linear", "allreduce[linear]"},
    {"coll.reduce_scatter.linear", "reduce_scatter[linear]"},
    {"coll.scan.linear", "scan[linear]"},
    {"coll.gather.linear", "gather[linear]"},
    {"coll.scatter.linear", "scatter[linear]"},
    {"coll.allgather.linear", "allgather[linear]"},
    {"coll.alltoall.linear", "alltoall[linear]"},
    {"coll.allgatherv.linear", "allgatherv[linear]"},
    {"coll.alltoallv.linear", "alltoallv[linear]"},
    {"coll.gatherv.linear", "gatherv[linear]"},
    {"coll.scatterv.linear", "scatterv[linear]"},
    {"coll.nbc.barrier", "ibarrier[dissemination]"},
    {"coll.nbc.bcast", "ibcast[binomial]"},
    {"coll.nbc.reduce", "ireduce[binomial]"},
    {"coll.nbc.allreduce", "iallreduce[recursive_doubling]"},
    {"coll.nbc.gather", "igather[fanin]"},
    {"coll.nbc.scatter", "iscatter[fanout]"},
    {"coll.nbc.allgather", "iallgather[ring]"},
    {"coll.nbc.alltoall", "ialltoall[pairwise]"},
    {"coll.hier.barrier", "barrier[hier]"},
    {"coll.hier.bcast", "bcast[hier]"},
    {"coll.hier.reduce", "reduce[hier]"},
    {"coll.hier.allreduce", "allreduce[hier]"},
    {"coll.hier.gather", "gather[hier]"},
};
static_assert(sizeof(kCollAlgNames) / sizeof(kCollAlgNames[0]) ==
                  static_cast<std::size_t>(CollAlg::kCount),
              "kCollAlgNames must cover every CollAlg");

}  // namespace

const char* coll_alg_pvar_name(CollAlg alg) {
  return kCollAlgNames[static_cast<std::size_t>(alg)].pvar;
}

const char* coll_alg_trace_name(CollAlg alg) {
  return kCollAlgNames[static_cast<std::size_t>(alg)].trace;
}

UniverseObs::UniverseObs(const obs::ObsConfig& config, int ranks, bool faults,
                         bool kills)
    : rec(config, ranks),
      waitstate(rec.pvars()),
      flight(config.flight_recorder ? config.flight_capacity : 0, ranks) {
  obs::PvarRegistry& reg = rec.pvars();
  using obs::PvarClass;
  msgs_sent = reg.register_pvar("mpi.msgs_sent", PvarClass::kCounter,
                                "point-to-point messages sent");
  bytes_sent = reg.register_pvar("mpi.bytes_sent", PvarClass::kCounter,
                                 "payload bytes sent");
  msgs_recvd = reg.register_pvar("mpi.msgs_recvd", PvarClass::kCounter,
                                 "point-to-point messages received");
  bytes_recvd = reg.register_pvar("mpi.bytes_recvd", PvarClass::kCounter,
                                  "payload bytes received");
  eager_sent = reg.register_pvar("mpi.eager_sent", PvarClass::kCounter,
                                 "messages sent via the eager protocol");
  rndv_sent = reg.register_pvar("mpi.rndv_sent", PvarClass::kCounter,
                                "messages sent via rendezvous");
  unexpected_hwm =
      reg.register_pvar("mpi.unexpected_hwm", PvarClass::kLevel,
                        "unexpected-queue depth high-water mark");
  wait_count = reg.register_pvar("mpi.wait_count", PvarClass::kCounter,
                                 "blocking request completions");
  wait_ns = reg.register_pvar("mpi.wait_ns", PvarClass::kTimer,
                              "virtual time spent waiting on requests");
  hist_wait =
      reg.register_pvar("hist.wait", PvarClass::kHistogram,
                        "distribution of blocking wait times");
  hist_eager =
      reg.register_pvar("hist.eager_send", PvarClass::kHistogram,
                        "eager send-to-delivery latency distribution");
  hist_rndv = reg.register_pvar(
      "hist.rndv_send", PvarClass::kHistogram,
      "rendezvous send-to-completion latency distribution");
  hist_nbc_round =
      reg.register_pvar("hist.nbc_round", PvarClass::kHistogram,
                        "NBC schedule round latency distribution");
  hist_slab = reg.register_pvar(
      "hist.slab_acquire", PvarClass::kHistogram,
      "slab-depot acquire time distribution (measured CPU ns)");
  slab_hits = reg.register_pvar("transport.slab.hits", PvarClass::kCounter,
                                "eager slabs served from the recycler");
  slab_misses =
      reg.register_pvar("transport.slab.misses", PvarClass::kCounter,
                        "eager slab heap allocations");
  slab_recycled_bytes = reg.register_pvar(
      "transport.slab.recycled_bytes", PvarClass::kCounter,
      "slab capacity bytes returned to the recycler on receive");
  slab_overflow_drops = reg.register_pvar(
      "transport.slab.overflow_drops", PvarClass::kCounter,
      "slabs freed past the recycler's retention caps");
  dt_pack_bytes = reg.register_pvar(
      "dt.pack_bytes", PvarClass::kCounter,
      "payload bytes gathered/scattered through flattened datatype runs",
      obs::PvarUnit::kBytes);
  dt_fastpath_hits = reg.register_pvar(
      "dt.fastpath_hits", PvarClass::kCounter,
      "typed transfers moved with no intermediate staging buffer");
  dt_flatten_runs =
      reg.register_pvar("dt.flatten_runs", PvarClass::kCounter,
                        "flattened datatype runs walked on the hot path");
  if (faults) {
    // Registered only for faulty jobs so a fault-free job's pvar table
    // stays identical to the pre-fault-layer output (zero-cost-off).
    fault_data_drops =
        reg.register_pvar("fault.data_drops", PvarClass::kCounter,
                          "data packets lost by fault injection");
    fault_ack_drops =
        reg.register_pvar("fault.ack_drops", PvarClass::kCounter,
                          "acknowledgements lost by fault injection");
    fault_retransmits =
        reg.register_pvar("fault.retransmits", PvarClass::kCounter,
                          "data retransmissions by the reliable transport");
    fault_dups =
        reg.register_pvar("fault.dups", PvarClass::kCounter,
                          "duplicate deliveries suppressed at the receiver");
    fault_rndv_retries =
        reg.register_pvar("fault.rndv_retries", PvarClass::kCounter,
                          "rendezvous control-message retries");
    fault_timeouts =
        reg.register_pvar("fault.timeouts", PvarClass::kCounter,
                          "messages abandoned after the delivery timeout");
  }
  if (kills) {
    // Like the fault.* family: only a job with scheduled rank deaths
    // carries the ULFM counters, so a kill-free pvar table is unchanged.
    has_rank_pvars = true;
    fault_rank_kills =
        reg.register_pvar("fault.rank.kills", PvarClass::kCounter,
                          "rank fail-stops executed");
    fault_rank_detected =
        reg.register_pvar("fault.rank.detected", PvarClass::kCounter,
                          "rank-failure errors raised at this rank");
    fault_rank_revokes =
        reg.register_pvar("fault.rank.revokes", PvarClass::kCounter,
                          "communicator revocations initiated");
    fault_rank_shrinks =
        reg.register_pvar("fault.rank.shrinks", PvarClass::kCounter,
                          "shrink operations completed");
    fault_rank_agrees =
        reg.register_pvar("fault.rank.agrees", PvarClass::kCounter,
                          "fault-tolerant agreements completed");
  }
  coll.resize(static_cast<std::size_t>(CollAlg::kCount));
  for (int a = 0; a < static_cast<int>(CollAlg::kCount); ++a) {
    coll[static_cast<std::size_t>(a)] = reg.register_pvar(
        coll_alg_pvar_name(static_cast<CollAlg>(a)), PvarClass::kCounter,
        "collective algorithm invocations");
  }
  hier_single_copy = reg.register_pvar(
      "coll.hier.single_copy", PvarClass::kCounter,
      "payloads copied directly out of the publisher's buffer");
  hier_single_copy_bytes = reg.register_pvar(
      "coll.hier.single_copy_bytes", PvarClass::kCounter,
      "bytes moved by the single-copy path", obs::PvarUnit::kBytes);
  hier_flag_wait_ns = reg.register_pvar(
      "coll.hier.flag_wait_ns", PvarClass::kTimer,
      "virtual time spent waiting on hier shared flags",
      obs::PvarUnit::kNanoseconds);
  // One-sided counters are always present, like coll.*: a window-free
  // job simply reads zero, so the pvar table stays stable across jobs.
  rma_put_bytes =
      reg.register_pvar("rma.put_bytes", PvarClass::kCounter,
                        "one-sided put payload bytes (origin rank)",
                        obs::PvarUnit::kBytes);
  rma_get_bytes =
      reg.register_pvar("rma.get_bytes", PvarClass::kCounter,
                        "one-sided get payload bytes (origin rank)",
                        obs::PvarUnit::kBytes);
  rma_acc_ops =
      reg.register_pvar("rma.acc_ops", PvarClass::kCounter,
                        "accumulate/fetch_op applications (origin rank)");
  rma_sync_epochs =
      reg.register_pvar("rma.sync_epochs", PvarClass::kCounter,
                        "RMA epoch-closing calls completed");
  hist_rma_wait = reg.register_pvar(
      "hist.rma_wait", PvarClass::kHistogram,
      "virtual ns spent completing RMA sync (lock waits, epoch close)",
      obs::PvarUnit::kNanoseconds);
}

void complete_request(RequestState& rs, const Status& st,
                      std::int64_t ready_at_ns) {
  std::lock_guard<std::mutex> lk(rs.mu);
  rs.status = st;
  rs.ready_at_ns = ready_at_ns;
  rs.complete = true;
  rs.cv.notify_all();
}

void fail_request(RequestState& rs, jhpc::ErrorCode code, std::string error) {
  std::lock_guard<std::mutex> lk(rs.mu);
  rs.failed = true;
  rs.err_code = code;
  rs.error = std::move(error);
  rs.complete = true;
  rs.cv.notify_all();
}

void fail_request_timeout(RequestState& rs, std::string error) {
  std::lock_guard<std::mutex> lk(rs.mu);
  rs.failed = true;
  rs.timed_out = true;
  rs.err_code = jhpc::ErrorCode::kTransportTimeout;
  rs.error = std::move(error);
  rs.complete = true;
  rs.cv.notify_all();
}

void fail_request_rank(RequestState& rs, std::string error,
                       std::vector<int> failed, std::int64_t detect_at_ns) {
  std::lock_guard<std::mutex> lk(rs.mu);
  if (rs.complete) return;  // the reaper never overwrites a settled result
  rs.failed = true;
  rs.err_code = jhpc::ErrorCode::kRankFailed;
  rs.failed_ranks = std::move(failed);
  rs.error = std::move(error);
  rs.ready_at_ns = detect_at_ns;
  rs.complete = true;
  rs.cv.notify_all();
}

void fail_request_revoked(RequestState& rs, std::string error,
                          std::int64_t detect_at_ns) {
  std::lock_guard<std::mutex> lk(rs.mu);
  if (rs.complete) return;
  rs.failed = true;
  rs.err_code = jhpc::ErrorCode::kCommRevoked;
  rs.error = std::move(error);
  rs.ready_at_ns = detect_at_ns;
  rs.complete = true;
  rs.cv.notify_all();
}

void throw_failure(jhpc::ErrorCode code, const std::string& err,
                   std::vector<int> failed) {
  switch (code) {
    case jhpc::ErrorCode::kTransportTimeout:
      throw TransportTimeoutError(err);
    case jhpc::ErrorCode::kTruncated:
      throw TruncationError(err);
    case jhpc::ErrorCode::kRankFailed:
      throw RankFailedError(err, std::move(failed));
    case jhpc::ErrorCode::kCommRevoked:
      throw CommRevokedError(err);
    case jhpc::ErrorCode::kAborted:
      throw AbortError();
    default:
      throw jhpc::Error(code, err);
  }
}

namespace {

/// Depth of ResilienceScope nesting on this thread (shrink/agree run
/// inside one; the transport's revoked checks and fatal escalation stand
/// down there).
thread_local int resilience_depth = 0;

}  // namespace

ResilienceScope::ResilienceScope() { ++resilience_depth; }
ResilienceScope::~ResilienceScope() { --resilience_depth; }
bool ResilienceScope::active() { return resilience_depth > 0; }

Status wait_request(RequestState& rs) {
  // Fold in the CPU the owner spent since its last transport call so the
  // virtual clock is current before we observe the completion time.
  if (rs.owner_clock != nullptr) rs.owner_clock->advance_cpu();
  const std::int64_t wait_from =
      rs.owner_clock != nullptr ? rs.owner_clock->vclock : 0;
  if (rs.obs != nullptr && rs.owner_clock != nullptr)
    rs.obs->rec.begin(rs.owner_world, "wait", wait_from);
  std::unique_lock<std::mutex> lk(rs.mu);
  while (!rs.complete) {
    rs.cv.wait_for(lk, kAbortPoll);
    if (rs.complete) break;
    if (rs.abort != nullptr && rs.abort->load(std::memory_order_relaxed)) {
      throw AbortError();
    }
    // The waiter itself may have been fail-stopped (Universe::kill_rank
    // from another thread): unwind instead of waiting forever.
    if (rs.uni != nullptr && rs.uni->self_dead(rs.owner_world)) {
      throw RankKilledError();
    }
  }
  if (rs.failed) {
    const std::string err = rs.error;
    const jhpc::ErrorCode code =
        rs.timed_out ? jhpc::ErrorCode::kTransportTimeout : rs.err_code;
    std::vector<int> failed = rs.failed_ranks;
    const std::int64_t detect_at = rs.ready_at_ns;
    lk.unlock();
    if (rs.uni != nullptr && rs.uni->self_dead(rs.owner_world)) {
      throw RankKilledError();
    }
    // Failure detection has virtual-time latency too: a reaped request
    // carries the heartbeat-floored detection time.
    if (rs.owner_clock != nullptr) rs.owner_clock->observe(detect_at);
    if (rs.uni != nullptr && (code == jhpc::ErrorCode::kRankFailed ||
                              code == jhpc::ErrorCode::kCommRevoked)) {
      rs.uni->raise_failure(rs.owner_world, rs.context_id, code, err,
                            std::move(failed));
    }
    throw_failure(code, err, std::move(failed));
  }
  const Status st = rs.status;
  const std::int64_t ready_at = rs.ready_at_ns;
  lk.unlock();
  if (rs.owner_clock != nullptr) {
    rs.owner_clock->observe(ready_at);
    // Blocking machinery (futex wakeups, lock contention) is a host
    // artifact, not simulated work: drop it from the CPU passthrough.
    rs.owner_clock->resync_cpu();
    if (rs.obs != nullptr) {
      rs.obs->rec.pvars().add(rs.obs->wait_count, rs.owner_world, 1);
      rs.obs->rec.pvars().add(rs.obs->wait_ns, rs.owner_world,
                              rs.owner_clock->vclock - wait_from);
      rs.obs->rec.pvars().record(rs.obs->hist_wait, rs.owner_world,
                                 rs.owner_clock->vclock - wait_from);
      rs.obs->rec.end(rs.owner_world, "wait", rs.owner_clock->vclock);
    }
  }
  return st;
}

bool test_request(RequestState& rs, Status* out) {
  if (rs.owner_clock != nullptr) rs.owner_clock->advance_cpu();
  if (rs.uni != nullptr && rs.uni->self_dead(rs.owner_world)) {
    throw RankKilledError();
  }
  std::unique_lock<std::mutex> lk(rs.mu);
  if (!rs.complete) return false;
  if (rs.failed) {
    const std::string err = rs.error;
    const jhpc::ErrorCode code =
        rs.timed_out ? jhpc::ErrorCode::kTransportTimeout : rs.err_code;
    std::vector<int> failed = rs.failed_ranks;
    const std::int64_t detect_at = rs.ready_at_ns;
    lk.unlock();
    if (rs.owner_clock != nullptr) rs.owner_clock->observe(detect_at);
    if (rs.uni != nullptr && (code == jhpc::ErrorCode::kRankFailed ||
                              code == jhpc::ErrorCode::kCommRevoked)) {
      rs.uni->raise_failure(rs.owner_world, rs.context_id, code, err,
                            std::move(failed));
    }
    throw_failure(code, err, std::move(failed));
  }
  // Completed, but only observable once the owner's virtual time reaches
  // the delivery time; polling burns CPU and therefore advances it.
  if (rs.owner_clock != nullptr &&
      rs.ready_at_ns > rs.owner_clock->vclock) {
    return false;
  }
  const Status st = rs.status;
  lk.unlock();
  if (out != nullptr) *out = st;
  return true;
}

bool envelope_matches(int msg_cid, int msg_src, int msg_tag, int want_cid,
                      int want_src, int want_tag) {
  if (msg_cid != want_cid) return false;
  if (want_src != kAnySource && want_src != msg_src) return false;
  if (want_tag != kAnyTag && want_tag != msg_tag) return false;
  return true;
}

UniverseImpl::UniverseImpl(UniverseConfig cfg)
    : config(cfg),
      fabric(cfg.world_size, cfg.fabric),
      slab(cfg.world_size, cfg.shared_depot) {
  JHPC_REQUIRE(cfg.world_size >= 1, "world_size must be >= 1");
  endpoints.resize(static_cast<std::size_t>(cfg.world_size));
  for (auto& ep : endpoints) ep = std::make_unique<Endpoint>();
  clocks.resize(static_cast<std::size_t>(cfg.world_size));
  nbc.resize(static_cast<std::size_t>(cfg.world_size));
  faults_on = fabric.faults_enabled();
  if (faults_on) {
    const auto pairs = static_cast<std::size_t>(cfg.world_size) *
                       static_cast<std::size_t>(cfg.world_size);
    fifo_floor = std::make_unique<std::atomic<std::int64_t>[]>(pairs);
    reset_fault_state();
  }
  const auto n = static_cast<std::size_t>(cfg.world_size);
  fail.dead = std::make_unique<std::atomic<bool>[]>(n);
  fail.dead_at = std::make_unique<std::atomic<std::int64_t>[]>(n);
  fail.kill_at = std::make_unique<std::atomic<std::int64_t>[]>(n);
  reset_failure_state();
  if (cfg.obs.enabled()) {
    obs = std::make_unique<UniverseObs>(cfg.obs, cfg.world_size, faults_on,
                                        fabric.faults().kills_enabled());
  }
}

HierSeg& UniverseImpl::hier_segment(int context_id, int node,
                                    std::size_t nmembers) {
  std::lock_guard<std::mutex> lk(hier.mu);
  auto& slot = hier.segs[{context_id, node}];
  if (slot == nullptr) slot = std::make_unique<HierSeg>(nmembers);
  JHPC_ASSERT(slot->slots.size() == nmembers,
              "hier segment membership changed under one context id");
  return *slot;
}

void UniverseImpl::hier_reset() {
  std::lock_guard<std::mutex> lk(hier.mu);
  hier.segs.clear();
}

void UniverseImpl::reset_failure_state() {
  const netsim::FaultPlan& plan = fabric.faults();
  const auto n = static_cast<std::size_t>(config.world_size);
  for (std::size_t w = 0; w < n; ++w) {
    fail.dead[w].store(false, std::memory_order_relaxed);
    fail.dead_at[w].store(0, std::memory_order_relaxed);
    fail.kill_at[w].store(INT64_MAX, std::memory_order_relaxed);
  }
  fail.dead_count.store(0, std::memory_order_relaxed);
  fail.revoked_count.store(0, std::memory_order_relaxed);
  for (const netsim::FaultPlan::RankKill& k : plan.kills) {
    JHPC_REQUIRE(k.rank < config.world_size,
                 "fault plan kills rank " + std::to_string(k.rank) +
                     " outside a " + std::to_string(config.world_size) +
                     "-rank world");
    fail.kill_at[static_cast<std::size_t>(k.rank)].store(
        k.at_vns, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lk(fail.mu);
    fail.revoked.clear();
    fail.comm_groups.clear();
    fail.errhandlers.clear();
    fail.agree.clear();
    fail.agree_seq.clear();
  }
  fail.kills_on.store(plan.kills_enabled(), std::memory_order_release);
}

void UniverseImpl::check_self_alive(int my_world) {
  if (!kills_on()) return;
  const auto me = static_cast<std::size_t>(my_world);
  if (fail.dead[me].load(std::memory_order_acquire)) {
    // An external kill stamps the epitaph with kDeathTimeUnknown; refine
    // it here, on the owning thread, where reading the clock is safe.
    std::int64_t unknown = kDeathTimeUnknown;
    fail.dead_at[me].compare_exchange_strong(unknown, clocks[me].vclock,
                                             std::memory_order_relaxed);
    throw RankKilledError();
  }
  const std::int64_t at = fail.kill_at[me].load(std::memory_order_relaxed);
  if (clocks[me].vclock >= at) {
    mark_dead(my_world, std::max(at, clocks[me].vclock));
    throw RankKilledError();
  }
}

void UniverseImpl::external_kill(int world_rank) {
  // Arm the layer first so every subsequent transport entry sees it.
  fail.kills_on.store(true, std::memory_order_release);
  // The victim's clock is thread-local to the victim; an external
  // detector cannot read it. Stamp the epitaph "time unknown" — the
  // victim refines it in check_self_alive if it ever runs again.
  mark_dead(world_rank, kDeathTimeUnknown);
}

void UniverseImpl::mark_dead(int world_rank, std::int64_t at_vns) {
  const auto r = static_cast<std::size_t>(world_rank);
  bool expected = false;
  if (!fail.dead[r].compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return;  // already dead
  }
  fail.dead_at[r].store(at_vns, std::memory_order_relaxed);
  fail.dead_count.fetch_add(1, std::memory_order_relaxed);
  UniverseObs* const o = obs.get();
  if (o != nullptr) {
    if (o->has_rank_pvars)
      o->rec.pvars().add(o->fault_rank_kills, world_rank, 1);
    o->flight.record(world_rank,
                     {at_vns, 0, -1, -1, obs::FlightKind::kKill});
  }
  // Snapshot the comm registry; the bucket sweeps below must not nest
  // fail.mu inside bucket locks.
  std::unordered_map<int, std::vector<int>> groups;
  {
    std::lock_guard<std::mutex> lk(fail.mu);
    groups = fail.comm_groups;
  }
  const std::int64_t detect_at = at_vns + fabric.faults().heartbeat_ns;
  const std::string what =
      "rank " + std::to_string(world_rank) + " failed (fail-stop at " +
      std::to_string(at_vns) + " virtual ns)";
  for (std::size_t w = 0; w < endpoints.size(); ++w) {
    for (MatchBucket& bk : endpoints[w]->buckets) {
      std::lock_guard<std::mutex> lk(bk.mu);
      for (auto it = bk.posted.begin(); it != bk.posted.end();) {
        RequestState& rs = **it;
        bool stranded = rs.owner_world == world_rank;
        if (!stranded) {
          const auto g = groups.find(rs.context_id);
          if (g != groups.end()) {
            if (rs.match_src == kAnySource) {
              for (const int member : g->second) {
                if (member == world_rank) {
                  stranded = true;
                  break;
                }
              }
            } else if (rs.match_src >= 0 &&
                       rs.match_src < static_cast<int>(g->second.size())) {
              stranded =
                  g->second[static_cast<std::size_t>(rs.match_src)] ==
                  world_rank;
            }
          }
        }
        if (stranded) {
          const std::shared_ptr<RequestState> rq = *it;
          it = bk.posted.erase(it);
          fail_request_rank(*rq, what, {world_rank}, detect_at);
        } else {
          ++it;
        }
      }
      for (auto it = bk.unexpected.begin(); it != bk.unexpected.end();) {
        if (it->is_rndv() && it->src_world == world_rank) {
          // The dead sender's rendezvous source buffer unwinds with its
          // thread: the envelope must never match a receive again.
          it = bk.unexpected.erase(it);
        } else if (static_cast<int>(w) == world_rank && it->is_rndv()) {
          // A survivor's rendezvous send parked toward the dead endpoint
          // would wait forever for a CTS.
          fail_request_rank(*it->rndv_sender, what, {world_rank}, detect_at);
          it = bk.unexpected.erase(it);
        } else {
          ++it;
        }
      }
      bk.cv.notify_all();
    }
  }
  // Agreement rounds complete on contributed-or-dead: re-evaluate.
  {
    std::lock_guard<std::mutex> lk(fail.mu);
    fail.cv.notify_all();
  }
}

void UniverseImpl::register_comm(int context_id,
                                 std::vector<int> world_ranks) {
  std::lock_guard<std::mutex> lk(fail.mu);
  fail.comm_groups.emplace(context_id, std::move(world_ranks));
}

void UniverseImpl::set_errhandler(int context_id, Errhandler eh) {
  std::lock_guard<std::mutex> lk(fail.mu);
  fail.errhandlers[context_id] = eh;
}

Errhandler UniverseImpl::errhandler(int context_id) {
  std::lock_guard<std::mutex> lk(fail.mu);
  const auto it = fail.errhandlers.find(context_id);
  return it == fail.errhandlers.end() ? Errhandler::kErrorsAreFatal
                                      : it->second;
}

void UniverseImpl::revoke_comm(int context_id, int my_world) {
  {
    std::lock_guard<std::mutex> lk(fail.mu);
    if (!fail.revoked.insert(context_id).second) return;  // idempotent
  }
  fail.revoked_count.fetch_add(1, std::memory_order_release);
  UniverseObs* const o = obs.get();
  RankClock& rclock = clocks[static_cast<std::size_t>(my_world)];
  if (o != nullptr) {
    if (o->has_rank_pvars) {
      o->rec.pvars().add(o->fault_rank_revokes, my_world, 1);
      o->rec.begin(my_world, "revoke", rclock.vclock);
    }
    o->flight.record(my_world, {rclock.vclock, context_id, -1, -1,
                                obs::FlightKind::kRevoke});
  }
  const std::int64_t detect_at =
      rclock.vclock + fabric.faults().heartbeat_ns;
  const std::string what = "communicator (context id " +
                           std::to_string(context_id) + ") revoked";
  for (std::size_t w = 0; w < endpoints.size(); ++w) {
    MatchBucket& bk = endpoints[w]->bucket(context_id);
    std::lock_guard<std::mutex> lk(bk.mu);
    for (auto it = bk.posted.begin(); it != bk.posted.end();) {
      if ((*it)->context_id == context_id) {
        const std::shared_ptr<RequestState> rq = *it;
        it = bk.posted.erase(it);
        fail_request_revoked(*rq, what, detect_at);
      } else {
        ++it;
      }
    }
    for (auto it = bk.unexpected.begin(); it != bk.unexpected.end();) {
      if (it->context_id != context_id) {
        ++it;
        continue;
      }
      if (it->is_rndv()) {
        fail_request_revoked(*it->rndv_sender, what, detect_at);
      } else if (it->bytes > 0) {
        slab.release(std::move(it->eager), static_cast<int>(w));
      }
      // ULFM drops in-flight messages on a revoked communicator.
      it = bk.unexpected.erase(it);
    }
    bk.cv.notify_all();
  }
  if (o != nullptr && o->has_rank_pvars) {
    o->rec.end(my_world, "revoke", rclock.vclock);
  }
  std::lock_guard<std::mutex> lk(fail.mu);
  fail.cv.notify_all();
}

bool UniverseImpl::comm_revoked(int context_id) {
  if (fail.revoked_count.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lk(fail.mu);
  return fail.revoked.count(context_id) > 0;
}

std::vector<int> UniverseImpl::dead_in_comm(int context_id) {
  std::vector<int> group;
  {
    std::lock_guard<std::mutex> lk(fail.mu);
    const auto it = fail.comm_groups.find(context_id);
    if (it != fail.comm_groups.end()) group = it->second;
  }
  std::vector<int> out;
  for (const int w : group) {
    if (rank_dead(w)) out.push_back(w);
  }
  return out;
}

int UniverseImpl::dead_peer_for_recv(int context_id, int my_world,
                                     int match_src) {
  if (fail.dead_count.load(std::memory_order_acquire) == 0) return -1;
  std::vector<int> group;
  {
    std::lock_guard<std::mutex> lk(fail.mu);
    const auto it = fail.comm_groups.find(context_id);
    if (it != fail.comm_groups.end()) group = it->second;
  }
  if (match_src == kAnySource) {
    // ULFM: a wildcard receive raises once any group member is dead —
    // the awaited sender may be the dead one.
    for (const int w : group) {
      if (w != my_world && rank_dead(w)) return w;
    }
    return -1;
  }
  if (match_src >= 0 && match_src < static_cast<int>(group.size())) {
    const int w = group[static_cast<std::size_t>(match_src)];
    if (rank_dead(w)) return w;
  }
  return -1;
}

void UniverseImpl::raise_failure(int my_world, int context_id,
                                 jhpc::ErrorCode code,
                                 const std::string& what,
                                 std::vector<int> failed) {
  UniverseObs* const o = obs.get();
  if (o != nullptr && o->has_rank_pvars &&
      code == jhpc::ErrorCode::kRankFailed) {
    o->rec.pvars().add(o->fault_rank_detected, my_world, 1);
  }
  if (!ResilienceScope::active() &&
      errhandler(context_id) == Errhandler::kErrorsAreFatal) {
    // MPI_ERRORS_ARE_FATAL: the whole job comes down; this rank's typed
    // exception is the one Universe::run rethrows.
    abort_all();
  }
  throw_failure(code, what, std::move(failed));
}

void UniverseImpl::entry_checks(int my_world, int context_id,
                                int peer_world) {
  check_self_alive(my_world);
  if (fail.revoked_count.load(std::memory_order_acquire) > 0 &&
      !ResilienceScope::active() && comm_revoked(context_id)) {
    raise_failure(my_world, context_id, jhpc::ErrorCode::kCommRevoked,
                  "communicator (context id " + std::to_string(context_id) +
                      ") revoked",
                  {});
  }
  if (peer_world >= 0 && rank_dead(peer_world)) {
    raise_failure(
        my_world, context_id, jhpc::ErrorCode::kRankFailed,
        "rank " + std::to_string(peer_world) + " failed (fail-stop)",
        {peer_world});
  }
}

void UniverseImpl::quiesce() {
  for (std::size_t w = 0; w < endpoints.size(); ++w) {
    for (MatchBucket& bk : endpoints[w]->buckets) {
      std::lock_guard<std::mutex> lk(bk.mu);
      for (InMsg& m : bk.unexpected) {
        if (!m.is_rndv() && m.bytes > 0) {
          slab.release(std::move(m.eager), static_cast<int>(w));
        }
      }
      bk.unexpected.clear();
      bk.posted.clear();
    }
  }
  win_reset();
}

void UniverseImpl::win_reset() {
  std::lock_guard<std::mutex> lk(winboard.mu);
  winboard.wins.clear();
  winboard.seq.clear();
}

void UniverseImpl::reset_fault_state() {
  if (fifo_floor == nullptr) return;
  const auto pairs = static_cast<std::size_t>(config.world_size) *
                     static_cast<std::size_t>(config.world_size);
  for (std::size_t i = 0; i < pairs; ++i)
    fifo_floor[i].store(0, std::memory_order_relaxed);
}

std::int64_t UniverseImpl::fifo_raise(int src_world, int dst_world,
                                      std::int64_t t) {
  auto& cell = fifo_floor[static_cast<std::size_t>(src_world) *
                              static_cast<std::size_t>(config.world_size) +
                          static_cast<std::size_t>(dst_world)];
  std::int64_t prev = cell.load(std::memory_order_relaxed);
  while (prev < t) {
    if (cell.compare_exchange_weak(prev, t, std::memory_order_relaxed))
      return t;
  }
  // An earlier message from this source already delivered later: the
  // reliable transport holds this one back to preserve FIFO order.
  return prev;
}

UniverseImpl::ReliableTx UniverseImpl::reliable_transmit(
    int src_world, int dst_world, std::size_t bytes, std::uint64_t seq,
    std::int64_t start_ns, int trace_rank, const char* what) {
  return reliable_transmit_each(src_world, dst_world, bytes, seq, start_ns,
                                trace_rank, what, nullptr);
}

UniverseImpl::ReliableTx UniverseImpl::reliable_transmit_each(
    int src_world, int dst_world, std::size_t bytes, std::uint64_t seq,
    std::int64_t start_ns, int trace_rank, const char* what,
    const std::function<void(std::int64_t)>& on_arrival) {
  const netsim::FaultPlan& plan = fabric.faults();
  const std::int64_t budget_end = start_ns + plan.delivery_timeout_ns;
  std::int64_t rto = plan.rto_ns;
  std::int64_t t = start_ns;
  std::int64_t first_arrival = -1;
  UniverseObs* const o = obs.get();
  for (std::uint32_t attempt = 0;; ++attempt) {
    const auto data = fabric.try_data(t, src_world, dst_world, bytes, seq,
                                      attempt);
    if (!data.dropped) {
      // The receiver side sees EVERY surviving attempt — the hook is how
      // the RMA path applies (and seq-dedups) each arrival, duplicates
      // included.
      if (on_arrival) on_arrival(data.deliver_at_ns);
      if (first_arrival < 0) {
        first_arrival = data.deliver_at_ns;
      } else if (o != nullptr) {
        // Lost ack: the receiver got this payload again and suppressed it
        // by sequence number — delivered exactly once, at first_arrival.
        o->rec.pvars().add(o->fault_dups, dst_world, 1);
      }
      const auto ack = fabric.try_control(data.deliver_at_ns, dst_world,
                                          src_world, seq, attempt,
                                          netsim::FaultSalt::kAck);
      if (!ack.dropped) {
        if (o != nullptr) {
          o->flight.record(trace_rank,
                           {ack.deliver_at_ns,
                            static_cast<std::int64_t>(seq),
                            trace_rank == src_world ? dst_world : src_world,
                            -1, obs::FlightKind::kAck});
        }
        return {first_arrival, ack.deliver_at_ns};
      }
      if (o != nullptr) o->rec.pvars().add(o->fault_ack_drops, dst_world, 1);
    } else if (o != nullptr) {
      o->rec.pvars().add(o->fault_data_drops, src_world, 1);
    }
    // Failed round (data or ack lost): the retransmit timer fires `rto`
    // after the attempt went out, then backs off exponentially.
    const std::int64_t retry_at = t + rto;
    if (retry_at > budget_end) {
      if (o != nullptr) {
        o->rec.pvars().add(o->fault_timeouts, src_world, 1);
        o->flight.record(trace_rank,
                         {t, static_cast<std::int64_t>(seq),
                          trace_rank == src_world ? dst_world : src_world,
                          -1, obs::FlightKind::kTimeout});
      }
      throw TransportTimeoutError(
          std::string(what) + ": no acknowledgement from rank " +
          std::to_string(dst_world) + " within " +
          std::to_string(plan.delivery_timeout_ns) + " virtual ns (" +
          std::to_string(attempt + 1) + " attempts)");
    }
    if (o != nullptr) {
      o->rec.pvars().add(o->fault_retransmits, src_world, 1);
      o->rec.begin(trace_rank, "retransmit", t);
      o->rec.end(trace_rank, "retransmit", retry_at);
      o->flight.record(trace_rank,
                       {retry_at, static_cast<std::int64_t>(seq),
                        trace_rank == src_world ? dst_world : src_world,
                        -1, obs::FlightKind::kRetransmit});
    }
    t = retry_at;
    rto = std::min(rto * 2, plan.rto_max_ns);
  }
}

std::int64_t UniverseImpl::reliable_control(int src_world, int dst_world,
                                            std::uint64_t seq,
                                            netsim::FaultSalt salt,
                                            std::int64_t start_ns,
                                            int trace_rank,
                                            const char* what) {
  const netsim::FaultPlan& plan = fabric.faults();
  const std::int64_t budget_end = start_ns + plan.delivery_timeout_ns;
  std::int64_t rto = plan.rto_ns;
  std::int64_t t = start_ns;
  UniverseObs* const o = obs.get();
  for (std::uint32_t attempt = 0;; ++attempt) {
    const auto ctrl =
        fabric.try_control(t, src_world, dst_world, seq, attempt, salt);
    if (!ctrl.dropped) return ctrl.deliver_at_ns;
    const std::int64_t retry_at = t + rto;
    if (retry_at > budget_end) {
      if (o != nullptr) {
        o->rec.pvars().add(o->fault_timeouts, src_world, 1);
        o->flight.record(trace_rank,
                         {t, static_cast<std::int64_t>(seq),
                          trace_rank == src_world ? dst_world : src_world,
                          -1, obs::FlightKind::kTimeout});
      }
      throw TransportTimeoutError(
          std::string(what) + ": control message to rank " +
          std::to_string(dst_world) + " lost for " +
          std::to_string(plan.delivery_timeout_ns) + " virtual ns (" +
          std::to_string(attempt + 1) + " attempts)");
    }
    if (o != nullptr) {
      o->rec.pvars().add(o->fault_rndv_retries, src_world, 1);
      o->rec.begin(trace_rank, "retransmit", t);
      o->rec.end(trace_rank, "retransmit", retry_at);
      o->flight.record(trace_rank,
                       {retry_at, static_cast<std::int64_t>(seq),
                        trace_rank == src_world ? dst_world : src_world,
                        -1, obs::FlightKind::kRetransmit});
    }
    t = retry_at;
    rto = std::min(rto * 2, plan.rto_max_ns);
  }
}

void UniverseImpl::abort_all() {
  abort.store(true, std::memory_order_relaxed);
  for (auto& ep : endpoints) {
    for (MatchBucket& bk : ep->buckets) {
      std::lock_guard<std::mutex> lk(bk.mu);
      bk.cv.notify_all();
    }
  }
}

void UniverseImpl::throw_if_aborted() const {
  if (abort.load(std::memory_order_relaxed)) throw AbortError();
}

namespace {

// dt.* pvar bookkeeping for one typed copy. `runs` is the number of
// flattened runs dt_copy walked; zero means both sides were dense and
// the copy degenerated to a plain memcpy (not a fast-path event).
void record_dt_copy(UniverseObs* o, int world, std::size_t bytes,
                    std::size_t runs) {
  if (o == nullptr || runs == 0) return;
  obs::PvarRegistry& reg = o->rec.pvars();
  reg.add(o->dt_pack_bytes, world, static_cast<std::int64_t>(bytes));
  reg.add(o->dt_fastpath_hits, world, 1);
  reg.add(o->dt_flatten_runs, world, static_cast<std::int64_t>(runs));
}

}  // namespace

std::shared_ptr<RequestState> UniverseImpl::deliver(
    int src_world, int dst_world, int context_id, int src_comm_rank, int tag,
    const void* buf, std::size_t bytes, const Datatype* sdt, int sdt_count) {
  MatchBucket& bk =
      endpoints[static_cast<std::size_t>(dst_world)]->bucket(context_id);
  RankClock& sclock = clocks[static_cast<std::size_t>(src_world)];
  const bool eager = bytes <= config.eager_limit;

  sclock.advance_cpu();
  entry_checks(src_world, context_id, dst_world);
  UniverseObs* const o = obs.get();
  TransportSpan span(o, src_world, "deliver", sclock);
  if (o != nullptr) {
    obs::PvarRegistry& reg = o->rec.pvars();
    reg.add(o->msgs_sent, src_world, 1);
    reg.add(o->bytes_sent, src_world,
            static_cast<std::int64_t>(bytes));
    reg.add(eager ? o->eager_sent : o->rndv_sent, src_world, 1);
    if (obs::CommMatrix* m = o->rec.matrix()) {
      m->record(src_world, dst_world, static_cast<std::int64_t>(bytes));
    }
    o->flight.record(src_world,
                     {sclock.vclock, static_cast<std::int64_t>(bytes),
                      dst_world, tag,
                      eager ? obs::FlightKind::kEagerSend
                            : obs::FlightKind::kRndvSend});
  }
  // Vendor shared-memory channel cost (see UniverseConfig).
  if (config.intra_send_overhead_ns > 0 &&
      fabric.same_node(src_world, dst_world)) {
    sclock.charge(config.intra_send_overhead_ns);
  }

  std::lock_guard<std::mutex> lk(bk.mu);
  throw_if_aborted();

  // Try to match an already-posted receive (in post order: MPI's
  // non-overtaking rule for the receive side).
  for (auto it = bk.posted.begin(); it != bk.posted.end(); ++it) {
    RequestState& rs = **it;
    if (!envelope_matches(context_id, src_comm_rank, tag, rs.context_id,
                          rs.match_src, rs.match_tag)) {
      continue;
    }
    std::shared_ptr<RequestState> matched = *it;
    bk.posted.erase(it);
    if (bytes > matched->recv_capacity) {
      fail_request(*matched, jhpc::ErrorCode::kTruncated,
                   "message truncated: " + std::to_string(bytes) +
                       " bytes into a " +
                       std::to_string(matched->recv_capacity) +
                       "-byte receive buffer");
      // The send itself still completes locally (the data is gone).
      return nullptr;
    }
    std::size_t typed_runs = 0;
    {
      // One copy, sender layout to receiver layout: when either side is
      // strided this gathers/scatters directly between the two user
      // buffers with no staging (the matched-receive fast path, typed).
      ChargedSection copy_cost(sclock);
      typed_runs = dt_copy(sdt, sdt_count, buf,
                           matched->recv_dt ? &*matched->recv_dt : nullptr,
                           matched->recv_dt_count, matched->recv_buf, bytes);
    }
    record_dt_copy(o, src_world, bytes, typed_runs);
    const std::int64_t send_v = sclock.vclock;
    std::int64_t arrival;
    if (eager) {
      if (faults_on) {
        const std::uint64_t seq = fabric.next_msg_seq(src_world, dst_world);
        try {
          const ReliableTx tx = reliable_transmit(
              src_world, dst_world, bytes, seq, send_v, src_world,
              "eager send");
          arrival = fifo_raise(src_world, dst_world, tx.deliver_at_ns);
        } catch (const TransportTimeoutError& e) {
          fail_request_timeout(*matched, e.what());
          throw;
        }
      } else {
        arrival = fabric.reserve_delivery(send_v, src_world, dst_world,
                                          bytes);
      }
    } else if (faults_on) {
      // Rendezvous under faults: RTS and CTS each retry independently
      // until they get through, then the payload moves via the reliable
      // transport. The sender completes once the payload is acked.
      const std::uint64_t seq = fabric.next_msg_seq(src_world, dst_world);
      try {
        const std::int64_t rts_at = reliable_control(
            src_world, dst_world, seq, netsim::FaultSalt::kRts, send_v,
            src_world, "rendezvous RTS");
        const std::int64_t cts_at = reliable_control(
            dst_world, src_world, seq, netsim::FaultSalt::kCts,
            std::max(rts_at, matched->post_vtime), src_world,
            "rendezvous CTS");
        const ReliableTx tx = reliable_transmit(
            src_world, dst_world, bytes, seq, cts_at, src_world,
            "rendezvous payload");
        arrival = fifo_raise(src_world, dst_world, tx.deliver_at_ns);
        sclock.observe(tx.acked_at_ns);
      } catch (const TransportTimeoutError& e) {
        fail_request_timeout(*matched, e.what());
        throw;
      }
    } else {
      // Rendezvous with the receive already posted: RTS travels one hop,
      // the CTS answer another, then the payload moves (the handshake the
      // eager protocol exists to avoid).
      const std::int64_t hop = fabric.hop_latency_ns(src_world, dst_world);
      const std::int64_t start =
          std::max(send_v + hop, matched->post_vtime) + hop;
      arrival = fabric.reserve_delivery(start, src_world, dst_world, bytes);
      // The sender is locally complete when its data has left the node.
      sclock.observe(start + fabric.serialization_ns(bytes));
    }
    if (o != nullptr) {
      o->rec.pvars().add(o->msgs_recvd, dst_world, 1);
      o->rec.pvars().add(o->bytes_recvd, dst_world,
                         static_cast<std::int64_t>(bytes));
      o->rec.pvars().record(eager ? o->hist_eager : o->hist_rndv, src_world,
                            std::max<std::int64_t>(arrival - send_v, 0));
      // Wait-state attribution: the receive was posted at post_vtime and
      // the data lands at arrival. Whichever side is later in VIRTUAL
      // time is the late one. Trace marks go on the sender's ring — this
      // is the sender's thread and trace rings are single-writer.
      const std::int64_t ws = arrival - matched->post_vtime;
      if (ws > 0) {
        o->waitstate.late_sender(dst_world, ws);
        o->rec.begin(src_world, "ws.late_sender", sclock.vclock);
        o->rec.end(src_world, "ws.late_sender", sclock.vclock);
      } else if (ws < 0) {
        o->waitstate.late_receiver(dst_world, -ws);
        o->rec.begin(src_world, "ws.late_receiver", sclock.vclock);
        o->rec.end(src_world, "ws.late_receiver", sclock.vclock);
      }
      o->flight.record(dst_world,
                       {arrival, static_cast<std::int64_t>(bytes),
                        src_world, tag, obs::FlightKind::kMatch});
    }
    complete_request(*matched, Status{src_comm_rank, tag, bytes}, arrival);
    sclock.resync_cpu();
    return nullptr;
  }

  // No posted receive: park the message in the unexpected queue.
  InMsg msg;
  msg.src = src_comm_rank;
  msg.tag = tag;
  msg.context_id = context_id;
  msg.src_world = src_world;
  msg.bytes = bytes;
  if (eager) {
    if (bytes > 0) {
      // Draw an owned payload slab from the recycler (steady state: a
      // pointer pop, no allocation). Only the copy is simulated work; the
      // pool bookkeeping is host overhead and stays uncharged.
      bool hit = false;
      const std::int64_t acq0 =
          o != nullptr ? jhpc::thread_cpu_ns() : 0;
      msg.eager = slab.acquire(bytes, src_world, &hit);
      if (o != nullptr) {
        // Depot work is real host work, not modelled fabric time: the
        // acquire distribution is measured CPU ns.
        o->rec.pvars().record(o->hist_slab, src_world,
                              jhpc::thread_cpu_ns() - acq0);
        o->rec.pvars().add(hit ? o->slab_hits : o->slab_misses, src_world,
                           1);
        if (!hit) {
          // Cold-path heap allocation: leave a zero-width mark in the
          // trace so allocation storms are visible next to the sends.
          o->rec.begin(src_world, "slab_alloc", sclock.vclock);
          o->rec.end(src_world, "slab_alloc", sclock.vclock);
        }
      }
      std::size_t typed_runs = 0;
      {
        // Gather the (possibly strided) payload straight into the
        // recycled slab: the one copy of the noncontiguous eager path.
        ChargedSection copy_cost(sclock);
        typed_runs = dt_copy(sdt, sdt_count, buf, nullptr, 0,
                             msg.eager.data(), bytes);
      }
      record_dt_copy(o, src_world, bytes, typed_runs);
    }
    msg.send_vtime = sclock.vclock;
    if (faults_on) {
      msg.seq = fabric.next_msg_seq(src_world, dst_world);
      // Throws on timeout before the enqueue: the receiver never sees a
      // payload the transport gave up on.
      const ReliableTx tx = reliable_transmit(src_world, dst_world, bytes,
                                              msg.seq, msg.send_vtime,
                                              src_world, "eager send");
      msg.deliver_at_ns = fifo_raise(src_world, dst_world, tx.deliver_at_ns);
    } else {
      msg.deliver_at_ns = fabric.reserve_delivery(msg.send_vtime, src_world,
                                                  dst_world, bytes);
    }
    if (o != nullptr) {
      o->rec.pvars().record(
          o->hist_eager, src_world,
          std::max<std::int64_t>(msg.deliver_at_ns - msg.send_vtime, 0));
    }
    bk.unexpected.push_back(std::move(msg));
    if (o != nullptr) {
      o->rec.pvars().raise(
          o->unexpected_hwm, dst_world,
          static_cast<std::int64_t>(bk.unexpected.size()));
    }
    if (bk.probe_waiters > 0) bk.cv.notify_all();
    sclock.resync_cpu();
    return nullptr;  // sender completes locally (buffered)
  }
  msg.send_vtime = sclock.vclock;
  // Rendezvous: expose the sender's live buffer; the sender completes when
  // a matching receive is posted and the transfer is scheduled. The header
  // (what probe can see) arrives after one fabric hop.
  auto sender = std::make_shared<RequestState>();
  sender->abort = &abort;
  sender->owner_clock = &sclock;
  sender->obs = o;
  sender->owner_world = src_world;
  sender->context_id = context_id;
  sender->uni = this;
  if (faults_on) {
    msg.seq = fabric.next_msg_seq(src_world, dst_world);
    msg.deliver_at_ns = reliable_control(src_world, dst_world, msg.seq,
                                         netsim::FaultSalt::kRts,
                                         msg.send_vtime, src_world,
                                         "rendezvous RTS");
  } else {
    msg.deliver_at_ns = fabric.reserve_delivery(msg.send_vtime, src_world,
                                                dst_world, /*bytes=*/0);
  }
  msg.rndv_src = buf;
  msg.rndv_sender = sender;
  if (sdt != nullptr) {
    msg.rndv_dt = *sdt;
    msg.rndv_dt_count = sdt_count;
  }
  bk.unexpected.push_back(std::move(msg));
  if (o != nullptr) {
    o->rec.pvars().raise(
        o->unexpected_hwm, dst_world,
        static_cast<std::int64_t>(bk.unexpected.size()));
  }
  if (bk.probe_waiters > 0) bk.cv.notify_all();
  sclock.resync_cpu();
  return sender;
}

std::shared_ptr<RequestState> UniverseImpl::post_recv(
    int my_world, int context_id, int src, int tag, void* buf,
    std::size_t capacity, const Datatype* rdt, int rdt_count) {
  RankClock& rclock = clocks[static_cast<std::size_t>(my_world)];
  rclock.advance_cpu();
  UniverseObs* const o = obs.get();
  if (o != nullptr) {
    // peer here is the match spec (comm rank or kAnySource), the only
    // identity a post has before it matches. Recorded ahead of the
    // entry checks: a receive stranded by an already-dead peer is
    // exactly what the black-box dump exists to show.
    o->flight.record(my_world,
                     {rclock.vclock, static_cast<std::int64_t>(capacity),
                      src, tag, obs::FlightKind::kPost});
  }
  entry_checks(my_world, context_id,
               kills_on() ? dead_peer_for_recv(context_id, my_world, src)
                          : -1);
  TransportSpan span(o, my_world, "post", rclock);

  auto rs = std::make_shared<RequestState>();
  rs->abort = &abort;
  rs->owner_clock = &rclock;
  rs->obs = o;
  rs->owner_world = my_world;
  rs->uni = this;
  rs->post_vtime = rclock.vclock;
  rs->is_recv = true;
  rs->recv_buf = buf;
  rs->recv_capacity = capacity;
  if (rdt != nullptr) {
    rs->recv_dt = *rdt;
    rs->recv_dt_count = rdt_count;
  }
  rs->match_src = src;
  rs->match_tag = tag;
  rs->context_id = context_id;

  MatchBucket& bk =
      endpoints[static_cast<std::size_t>(my_world)]->bucket(context_id);
  std::lock_guard<std::mutex> lk(bk.mu);
  throw_if_aborted();

  // Scan the unexpected queue in arrival order (non-overtaking rule for
  // the send side).
  for (auto it = bk.unexpected.begin(); it != bk.unexpected.end(); ++it) {
    if (!envelope_matches(it->context_id, it->src, it->tag, context_id, src,
                          tag)) {
      continue;
    }
    InMsg msg = std::move(*it);
    bk.unexpected.erase(it);
    const Status st{msg.src, msg.tag, msg.bytes};
    Consumed c = consume_matched(std::move(msg), my_world, buf, capacity,
                                 rclock, rdt, rdt_count);
    if (!c.ok) {
      if (c.timed_out) {
        fail_request_timeout(*rs, std::move(c.error));
      } else {
        fail_request(*rs, c.code, std::move(c.error));
      }
      return rs;
    }
    complete_request(*rs, st, c.arrival_ns);
    rclock.resync_cpu();
    return rs;
  }

  bk.posted.push_back(rs);
  rclock.resync_cpu();
  return rs;
}

UniverseImpl::Consumed UniverseImpl::consume_matched(
    InMsg msg, int my_world, void* buf, std::size_t capacity,
    RankClock& rclock, const Datatype* rdt, int rdt_count) {
  UniverseObs* const o = obs.get();
  // The receive's virtual post time: the clock before the copy and
  // rendezvous costs below advance it (wait-state classification).
  const std::int64_t post_v = rclock.vclock;
  Consumed c;
  if (msg.bytes > capacity) {
    if (msg.is_rndv()) {
      // Release the sender; its data was never transferred.
      complete_request(*msg.rndv_sender, Status{}, 0);
    } else {
      // The eager payload is discarded; its slab goes back to the pool.
      slab.release(std::move(msg.eager), my_world);
    }
    c.ok = false;
    c.code = jhpc::ErrorCode::kTruncated;
    c.error = "message truncated: " + std::to_string(msg.bytes) +
              " bytes into a " + std::to_string(capacity) +
              "-byte receive buffer";
    return c;
  }
  // The sender's live rendezvous buffer may itself be strided; move it
  // into the receiver's layout in one lockstep pass, no staging buffer.
  const Datatype* const rndv_sdt = msg.rndv_dt ? &*msg.rndv_dt : nullptr;
  if (msg.is_rndv() && faults_on) {
    std::size_t typed_runs = 0;
    {
      ChargedSection copy_cost(rclock);
      typed_runs = dt_copy(rndv_sdt, msg.rndv_dt_count, msg.rndv_src, rdt,
                           rdt_count, buf, msg.bytes);
    }
    record_dt_copy(o, my_world, msg.bytes, typed_runs);
    // The RTS header already arrived (msg.deliver_at_ns, retried until
    // it got through); answer with a CTS and pull the payload reliably.
    // Both run on this receiver's thread, so their trace spans belong
    // to this rank's ring.
    const std::int64_t cts_start = std::max(msg.deliver_at_ns, rclock.vclock);
    try {
      const std::int64_t cts_at = reliable_control(
          my_world, msg.src_world, msg.seq, netsim::FaultSalt::kCts,
          cts_start, my_world, "rendezvous CTS");
      const ReliableTx tx = reliable_transmit(
          msg.src_world, my_world, msg.bytes, msg.seq, cts_at, my_world,
          "rendezvous payload");
      c.arrival_ns = fifo_raise(msg.src_world, my_world, tx.deliver_at_ns);
      complete_request(*msg.rndv_sender, Status{}, tx.acked_at_ns);
    } catch (const TransportTimeoutError& e) {
      fail_request_timeout(*msg.rndv_sender, e.what());
      c.ok = false;
      c.timed_out = true;
      c.code = jhpc::ErrorCode::kTransportTimeout;
      c.error = e.what();
      return c;
    }
  } else if (msg.is_rndv()) {
    std::size_t typed_runs = 0;
    {
      ChargedSection copy_cost(rclock);
      typed_runs = dt_copy(rndv_sdt, msg.rndv_dt_count, msg.rndv_src, rdt,
                           rdt_count, buf, msg.bytes);
    }
    record_dt_copy(o, my_world, msg.bytes, typed_runs);
    // RTS arrived at send_vtime + hop; we answer with CTS now, and the
    // payload starts moving when the CTS reaches the sender.
    const std::int64_t hop = fabric.hop_latency_ns(msg.src_world, my_world);
    const std::int64_t start =
        std::max(msg.send_vtime + hop, rclock.vclock) + hop;
    c.arrival_ns =
        fabric.reserve_delivery(start, msg.src_world, my_world, msg.bytes);
    complete_request(*msg.rndv_sender, Status{},
                     start + fabric.serialization_ns(msg.bytes));
  } else {
    if (msg.bytes > 0) {
      std::size_t typed_runs = 0;
      {
        // The slab payload was packed dense at send time; scatter it
        // straight into the receiver's (possibly strided) buffer.
        ChargedSection copy_cost(rclock);
        typed_runs = dt_copy(nullptr, 0, msg.eager.data(), rdt, rdt_count,
                             buf, msg.bytes);
      }
      record_dt_copy(o, my_world, msg.bytes, typed_runs);
      const SlabPool::Released rel =
          slab.release(std::move(msg.eager), my_world);
      if (o != nullptr) {
        if (rel == SlabPool::Released::kRecycled) {
          o->rec.pvars().add(
              o->slab_recycled_bytes, my_world,
              static_cast<std::int64_t>(
                  SlabPool::capacity_of(SlabPool::class_of(msg.bytes))));
        } else {
          o->rec.pvars().add(o->slab_overflow_drops, my_world, 1);
        }
      }
    }
    c.arrival_ns = msg.deliver_at_ns;
  }
  if (o != nullptr) {
    o->rec.pvars().add(o->msgs_recvd, my_world, 1);
    o->rec.pvars().add(o->bytes_recvd, my_world,
                       static_cast<std::int64_t>(msg.bytes));
    if (msg.is_rndv()) {
      o->rec.pvars().record(
          o->hist_rndv, msg.src_world,
          std::max<std::int64_t>(c.arrival_ns - msg.send_vtime, 0));
    }
    // Wait-state attribution: the message arrived (virtually) at
    // deliver_at_ns and the receive was posted at post_v. This runs on
    // the receiving rank's thread, so its trace ring takes the marks.
    const std::int64_t ws = post_v - msg.deliver_at_ns;
    if (ws > 0) {
      o->waitstate.late_receiver(my_world, ws);
      o->rec.begin(my_world, "ws.late_receiver", post_v);
      o->rec.end(my_world, "ws.late_receiver", post_v);
    } else if (ws < 0) {
      o->waitstate.late_sender(my_world, -ws);
      o->rec.begin(my_world, "ws.late_sender", post_v);
      o->rec.end(my_world, "ws.late_sender", post_v);
    }
    o->flight.record(my_world,
                     {c.arrival_ns, static_cast<std::int64_t>(msg.bytes),
                      msg.src_world, msg.tag, obs::FlightKind::kMatch});
  }
  return c;
}

Status UniverseImpl::blocking_recv(int my_world, int context_id, int src,
                                   int tag, void* buf, std::size_t capacity,
                                   const Datatype* rdt, int rdt_count) {
  if (obs != nullptr) {
    // Instrumented jobs keep the two-step path: the post/wait trace spans
    // and wait_count/wait_ns pvars are part of the observable contract.
    auto rs = post_recv(my_world, context_id, src, tag, buf, capacity, rdt,
                        rdt_count);
    return wait_request(*rs);
  }
  RankClock& rclock = clocks[static_cast<std::size_t>(my_world)];
  rclock.advance_cpu();
  entry_checks(my_world, context_id,
               kills_on() ? dead_peer_for_recv(context_id, my_world, src)
                          : -1);
  MatchBucket& bk =
      endpoints[static_cast<std::size_t>(my_world)]->bucket(context_id);
  std::shared_ptr<RequestState> rs;
  {
    std::lock_guard<std::mutex> lk(bk.mu);
    throw_if_aborted();
    for (auto it = bk.unexpected.begin(); it != bk.unexpected.end(); ++it) {
      if (!envelope_matches(it->context_id, it->src, it->tag, context_id,
                            src, tag)) {
        continue;
      }
      // Matched-receive fast path: consume in place, no RequestState, no
      // request lock/condvar round trip.
      InMsg msg = std::move(*it);
      bk.unexpected.erase(it);
      const Status st{msg.src, msg.tag, msg.bytes};
      Consumed c = consume_matched(std::move(msg), my_world, buf, capacity,
                                   rclock, rdt, rdt_count);
      if (!c.ok) {
        if (c.timed_out) throw TransportTimeoutError(c.error);
        throw_failure(c.code, c.error, {});
      }
      rclock.observe(c.arrival_ns);
      rclock.resync_cpu();
      return st;
    }
    // Nothing pending: park a posted receive. Scan-then-park must happen
    // under one bucket lock acquisition or deliver() could slot a message
    // into the queue between the two.
    rs = std::make_shared<RequestState>();
    rs->abort = &abort;
    rs->owner_clock = &rclock;
    rs->obs = nullptr;
    rs->owner_world = my_world;
    rs->uni = this;
    rs->post_vtime = rclock.vclock;
    rs->is_recv = true;
    rs->recv_buf = buf;
    rs->recv_capacity = capacity;
    if (rdt != nullptr) {
      rs->recv_dt = *rdt;
      rs->recv_dt_count = rdt_count;
    }
    rs->match_src = src;
    rs->match_tag = tag;
    rs->context_id = context_id;
    bk.posted.push_back(rs);
  }
  rclock.resync_cpu();
  try {
    return wait_request(*rs);
  } catch (...) {
    // Unwinding with the receive still posted (self fail-stop, abort):
    // the caller's buffer dies with this frame, so withdraw the request
    // before anyone can match it.
    cancel_recv(*rs);
    throw;
  }
}

void UniverseImpl::cancel_recv(const RequestState& rs) {
  MatchBucket& bk = endpoints[static_cast<std::size_t>(rs.owner_world)]
                        ->bucket(rs.context_id);
  std::lock_guard<std::mutex> lk(bk.mu);
  for (auto it = bk.posted.begin(); it != bk.posted.end(); ++it) {
    if (it->get() == &rs) {
      bk.posted.erase(it);
      return;
    }
  }
  // Not posted: either it completed, or a deliver() matched it and is
  // copying under bk.mu — which we just waited out, so the buffer is
  // quiescent either way.
}

bool UniverseImpl::probe_match(int my_world, int context_id, int src, int tag,
                               bool blocking, Status* out) {
  RankClock& rclock = clocks[static_cast<std::size_t>(my_world)];
  MatchBucket& bk =
      endpoints[static_cast<std::size_t>(my_world)]->bucket(context_id);
  std::unique_lock<std::mutex> lk(bk.mu);
  for (;;) {
    throw_if_aborted();
    rclock.advance_cpu();
    if (kills_on()) {
      // Under the bucket lock only the no-reap checks are safe; a
      // scheduled self-death fires at the next lock-free entry point.
      if (self_dead(my_world)) throw RankKilledError();
      const int dead = dead_peer_for_recv(context_id, my_world, src);
      if (dead >= 0) {
        lk.unlock();
        raise_failure(my_world, context_id, jhpc::ErrorCode::kRankFailed,
                      "rank " + std::to_string(dead) +
                          " failed (fail-stop)",
                      {dead});
      }
    }
    if (fail.revoked_count.load(std::memory_order_acquire) > 0 &&
        !ResilienceScope::active() && comm_revoked(context_id)) {
      lk.unlock();
      raise_failure(my_world, context_id, jhpc::ErrorCode::kCommRevoked,
                    "communicator (context id " +
                        std::to_string(context_id) + ") revoked",
                    {});
    }
    for (const auto& msg : bk.unexpected) {
      if (envelope_matches(msg.context_id, msg.src, msg.tag, context_id, src,
                           tag)) {
        // Respect the fabric: the envelope is visible only once it has
        // arrived in this rank's virtual time. A blocking probe would
        // simply have waited — jump the clock. A non-blocking probe
        // reports "nothing yet"; the caller's polling CPU advances the
        // clock until the arrival becomes visible.
        if (msg.deliver_at_ns > rclock.vclock) {
          if (!blocking) return false;
          rclock.observe(msg.deliver_at_ns);
        }
        if (out != nullptr) *out = Status{msg.src, msg.tag, msg.bytes};
        return true;
      }
    }
    if (!blocking) return false;
    ++bk.probe_waiters;
    bk.cv.wait_for(lk, kAbortPoll);
    --bk.probe_waiters;
  }
}

}  // namespace jhpc::minimpi::detail
