// ULFM recovery operations: the fault-tolerant agreement board behind
// Comm::agree and Comm::shrink, plus the Comm bodies of the
// revoke/shrink/agree triad. Kept apart from transport.cpp because
// nothing here is on a message hot path — these run only during
// recovery, after a failure has already surfaced.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "detail/transport.hpp"
#include "jhpc/minimpi/comm.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace detail {

namespace {

using namespace std::chrono_literals;

// Abort/death polling period while parked on the agreement board; only
// recovery paths pay this latency.
constexpr auto kAgreePoll = 20ms;

int ceil_log2(int n) {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return bits;
}

}  // namespace

UniverseImpl::AgreeResult UniverseImpl::agree_on(int context_id,
                                                 int my_world, int flag,
                                                 bool alloc_cid) {
  // A scheduled death fires here as at any transport entry (no locks yet).
  check_self_alive(my_world);
  RankClock& clock = clocks[static_cast<std::size_t>(my_world)];
  clock.advance_cpu();

  AgreeResult out;
  std::vector<int> group;
  {
    std::unique_lock<std::mutex> lk(fail.mu);
    auto git = fail.comm_groups.find(context_id);
    JHPC_REQUIRE(git != fail.comm_groups.end(),
                 "agree on an unregistered communicator");
    group = git->second;

    // Agreement rounds pair up by per-rank initiation count: agree/shrink
    // are collective and therefore entered in the same order on every
    // rank, so the r-th call on each rank joins the same slot (the same
    // scheme that matches collective tags).
    const std::uint64_t round = fail.agree_seq[{context_id, my_world}]++;
    AgreeSlot& slot = fail.agree[{context_id, round}];
    if (alloc_cid && slot.new_cid == 0)
      slot.new_cid = next_context_id.fetch_add(1, std::memory_order_relaxed);
    slot.flag_and &= flag;
    slot.contributed.insert(my_world);
    fail.cv.notify_all();

    for (;;) {
      if (slot.committed) break;
      // The round completes once every group member has contributed or
      // died. The first rank to see completion commits one snapshot; a
      // rank that dies after contributing still counts (its flag is in),
      // one that dies before does not — every survivor reads the same
      // committed result either way.
      bool complete = true;
      for (int w : group) {
        if (slot.contributed.count(w) == 0 && !rank_dead(w)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        slot.result_flag = slot.flag_and;
        slot.result_dead.clear();
        for (int w : group)
          if (rank_dead(w)) slot.result_dead.push_back(w);
        std::sort(slot.result_dead.begin(), slot.result_dead.end());
        slot.committed = true;
        fail.cv.notify_all();
        break;
      }
      if (abort.load(std::memory_order_relaxed)) {
        lk.unlock();
        throw AbortError();
      }
      if (self_dead(my_world)) {
        lk.unlock();
        throw RankKilledError();
      }
      fail.cv.wait_for(lk, kAgreePoll);
    }
    out.flag = slot.result_flag;
    out.new_cid = slot.new_cid;
    out.agreed_dead = slot.result_dead;
  }

  // Model the agreement's network cost: the depth of a reduce+bcast tree,
  // 2*ceil(log2 n) hops over the slowest link this rank talks across.
  std::int64_t hop = 0;
  for (int w : group)
    if (w != my_world) hop = std::max(hop, fabric.hop_latency_ns(my_world, w));
  clock.charge(2 * ceil_log2(static_cast<int>(group.size())) * hop);
  // Detection-latency floor: an agreed death cannot have been observed
  // before the dead rank's heartbeat deadline.
  const std::int64_t hb = fabric.faults().heartbeat_ns;
  for (int w : out.agreed_dead)
    clock.observe(fail.dead_at[static_cast<std::size_t>(w)].load(
                      std::memory_order_acquire) +
                  hb);
  clock.resync_cpu();
  return out;
}

}  // namespace detail

namespace {

void check_valid(const detail::UniverseImpl* impl) {
  JHPC_REQUIRE(impl != nullptr, "operation on an invalid communicator");
}

}  // namespace

// --- Comm: the ULFM triad ---------------------------------------------------

void Comm::revoke() const {
  check_valid(impl_);
  impl_->revoke_comm(context_id_, my_world());
}

Comm Comm::shrink() const {
  check_valid(impl_);
  const int me = my_world();
  detail::RankClock& clock = impl_->clocks[static_cast<std::size_t>(me)];
  detail::TransportSpan span(impl_->obs.get(), me, "shrink", clock);
  // Recovery must run on exactly the (possibly revoked, possibly
  // failure-stricken) communicator it repairs.
  const detail::ResilienceScope scope;
  const detail::UniverseImpl::AgreeResult res =
      impl_->agree_on(context_id_, me, /*flag=*/1, /*alloc_cid=*/true);

  // Survivors in parent-comm order: dense re-ranking preserves the
  // relative order of the live ranks.
  std::vector<int> survivors;
  survivors.reserve(group_.ranks().size());
  int my_new_rank = -1;
  for (int w : group_.ranks()) {
    if (std::binary_search(res.agreed_dead.begin(), res.agreed_dead.end(),
                           w))
      continue;
    if (w == me) my_new_rank = static_cast<int>(survivors.size());
    survivors.push_back(w);
  }
  // Killed between committing the agreement and reading it back.
  if (my_new_rank < 0) throw detail::RankKilledError();

  impl_->set_errhandler(res.new_cid, impl_->errhandler(context_id_));
  detail::UniverseObs* o = impl_->obs.get();
  if (o != nullptr && o->has_rank_pvars)
    o->rec.pvars().add(o->fault_rank_shrinks, me, 1);
  return Comm(impl_, Group(std::move(survivors)), my_new_rank, res.new_cid);
}

int Comm::agree(int flag) const {
  check_valid(impl_);
  const int me = my_world();
  detail::RankClock& clock = impl_->clocks[static_cast<std::size_t>(me)];
  detail::TransportSpan span(impl_->obs.get(), me, "agree", clock);
  const detail::ResilienceScope scope;
  const detail::UniverseImpl::AgreeResult res =
      impl_->agree_on(context_id_, me, flag, /*alloc_cid=*/false);
  detail::UniverseObs* o = impl_->obs.get();
  if (o != nullptr && o->has_rank_pvars)
    o->rec.pvars().add(o->fault_rank_agrees, me, 1);
  return res.flag;
}

}  // namespace jhpc::minimpi
