#include "jhpc/minimpi/universe.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "detail/transport.hpp"
#include "jhpc/support/env.hpp"
#include "jhpc/support/error.hpp"
#include "jhpc/support/table.hpp"

namespace jhpc::minimpi {

UniverseConfig& UniverseConfig::apply_env() {
  fabric = netsim::FabricConfig::from_env();
  eager_limit = static_cast<std::size_t>(
      env_int64("JHPC_EAGER_LIMIT", static_cast<std::int64_t>(eager_limit)));
  deterministic_clock = env_bool("JHPC_DET_CLOCK", deterministic_clock);
  if (auto s = env_string("JHPC_COLL")) {
    if (*s == "mv2") {
      suite = CollectiveSuite::kMv2;
    } else if (*s == "basic" || *s == "ompi") {
      suite = CollectiveSuite::kOmpiBasic;
    } else if (*s == "hier") {
      suite = CollectiveSuite::kHier;
    } else {
      throw InvalidArgumentError("$JHPC_COLL must be 'mv2', 'basic' or "
                                 "'hier'");
    }
    apply_suite_profile();
  }
  hier_flag_ns = env_int64_range("JHPC_HIER_FLAG_NS", hier_flag_ns,
                                 /*min_value=*/0);
  return *this;
}

Universe::Universe(UniverseConfig config)
    : impl_(std::make_unique<detail::UniverseImpl>(config)) {}

Universe::~Universe() = default;

const UniverseConfig& Universe::config() const { return impl_->config; }

netsim::Fabric& Universe::fabric() { return impl_->fabric; }

SlabStats Universe::slab_stats() const {
  const detail::SlabPool::Stats s = impl_->slab.stats();
  SlabStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.recycled = s.recycled;
  out.recycled_bytes = s.recycled_bytes;
  out.overflow_drops = s.overflow_drops;
  out.retained_bytes = s.retained_bytes;
  const detail::SlabDepot& depot = impl_->slab.depot();
  out.depot_retained_bytes = depot.retained_bytes();
  out.depot_hwm_bytes = depot.hwm_bytes();
  out.depot_max_bytes = depot.max_bytes();
  out.depot_shared = impl_->config.shared_depot != nullptr;
  return out;
}

std::int64_t Universe::pvar_total(const std::string& name) const {
  if (impl_->obs == nullptr) return 0;
  const obs::PvarRegistry& reg = impl_->obs->rec.pvars();
  return reg.total(reg.find(name));
}

void Universe::run(const std::function<void(Comm&)>& rank_main) {
  JHPC_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  const int n = impl_->config.world_size;

  // Reset the abort flag and the fabric's virtual link clocks so a
  // Universe can run several jobs in sequence. The recorder resets too:
  // each job reports its own workload.
  impl_->abort.store(false, std::memory_order_relaxed);
  impl_->fabric.reset();
  impl_->reset_fault_state();
  impl_->reset_failure_state();
  // A previous run that ended in failures (timeouts, kills, aborts) may
  // have left receives parked and payloads buffered; they must not match
  // this job's traffic (their buffers are long gone).
  impl_->quiesce();
  impl_->slab.reset_stats();
  if (impl_->obs != nullptr) {
    impl_->obs->rec.reset();
    impl_->obs->waitstate.reset();
    impl_->obs->flight.clear();
  }
  // Drop nonblocking-collective schedules and tag counters from the
  // previous job: an aborted run may leave schedules active, and the tag
  // sequence must restart identically on every rank.
  for (auto& nr : impl_->nbc) {
    nr.active.clear();
    nr.seq.clear();
  }
  // Drop the hier suite's per-node shared segments: their flag sequence
  // numbers must restart at zero together with every member's local
  // counter, and an aborted run may have left flags mid-operation.
  impl_->hier_reset();

  Group world_group = [n] {
    std::vector<int> ranks(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ranks[static_cast<std::size_t>(i)] = i;
    return Group(std::move(ranks));
  }();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, r, &world_group, &rank_main, &errors] {
      // Fresh virtual clock for this run, anchored to this thread's CPU.
      detail::RankClock& clock = impl_->clocks[static_cast<std::size_t>(r)];
      clock.cpu_passthrough = !impl_->config.deterministic_clock;
      clock.vclock = 0;
      clock.last_cpu = thread_cpu_ns();
      Comm world(impl_.get(), world_group, r, /*context_id=*/0);
      try {
        rank_main(world);
      } catch (const detail::AbortError&) {
        // Secondary failure: another rank already recorded the cause.
      } catch (const detail::RankKilledError&) {
        // Planned fail-stop: part of the fault scenario, not an error.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        impl_->abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Quiesce after the join too: drain parked requests and return buffered
  // eager slabs to the recycler so teardown after a failed job is clean
  // without relying on the abort flag.
  impl_->quiesce();

  // Finalize-time flush, after the join so the single-writer rings are
  // quiescent. Runs even for failed jobs: a trace of an aborted run is
  // exactly what one debugs with.
  if (impl_->obs != nullptr) {
    obs::Recorder& rec = impl_->obs->rec;
    if (rec.tracing()) rec.write_trace();
    if (rec.config().pvars && !rec.config().quiet) {
      std::fputs("\n[jhpc-obs] performance variables\n", stderr);
      std::fputs(rec.summary_table().to_text().c_str(), stderr);
      if (rec.pvars().has_histograms()) {
        std::fputs("\n[jhpc-obs] latency distributions (p50/p90/p99/max, us)\n",
                   stderr);
        std::fputs(rec.pvars().hist_table().to_text().c_str(), stderr);
      }
    }
    if (rec.config().comm_matrix && !rec.config().quiet &&
        rec.matrix() != nullptr) {
      std::fputs("\n[jhpc-obs] communication matrix (msgs/bytes)\n", stderr);
      std::fputs(rec.matrix()->to_table().to_text().c_str(), stderr);
    }
    if (!rec.config().comm_matrix_csv.empty() && rec.matrix() != nullptr) {
      rec.matrix()->write_csv(rec.config().comm_matrix_csv);
    }
    if (!rec.config().pvars_json_path.empty()) {
      rec.write_json(rec.config().pvars_json_path);
    }
    if (const std::uint64_t dropped = rec.dropped_events(); dropped > 0) {
      std::fprintf(stderr,
                   "[jhpc-obs] warning: trace ring overflow dropped %llu "
                   "events; raise JHPC_TRACE_CAPACITY\n",
                   static_cast<unsigned long long>(dropped));
    }
    // Black-box dump: when a rank failed on a transport timeout or a
    // peer death, the last protocol events are the evidence one debugs
    // with. stderr always; appended to the configured file too so CI can
    // collect it as an artifact.
    bool fatal = false;
    for (const auto& e : errors) {
      if (!e) continue;
      try {
        std::rethrow_exception(e);
      } catch (const TransportTimeoutError&) {
        fatal = true;
      } catch (const RankFailedError&) {
        fatal = true;
      } catch (...) {
      }
    }
    if (fatal && !impl_->obs->flight.empty()) {
      const std::string report = impl_->obs->flight.report();
      std::fputs(report.c_str(), stderr);
      std::string dump_path = rec.config().flight_dump_path;
      if (dump_path.empty()) {
        if (const char* env = std::getenv("JHPC_FLIGHT_RECORDER_DUMP");
            env != nullptr && *env != '\0') {
          dump_path = env;
        }
      }
      if (!dump_path.empty()) {
        if (std::FILE* f = std::fopen(dump_path.c_str(), "a")) {
          std::fputs(report.c_str(), f);
          std::fclose(f);
        } else {
          std::fprintf(stderr,
                       "[jhpc-obs] warning: cannot append flight dump to %s\n",
                       dump_path.c_str());
        }
      }
    }
  }

  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Universe::kill_rank(int world_rank) {
  JHPC_REQUIRE(world_rank >= 0 && world_rank < impl_->config.world_size,
               "kill_rank: rank out of range");
  impl_->external_kill(world_rank);
}

void Universe::launch(const UniverseConfig& config,
                      const std::function<void(Comm&)>& rank_main) {
  Universe u(config);
  u.run(rank_main);
}

}  // namespace jhpc::minimpi
