#include "jhpc/minimpi/group.hpp"

#include <algorithm>
#include <unordered_set>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

Group::Group(std::vector<int> world_ranks) : ranks_(std::move(world_ranks)) {
  std::unordered_set<int> seen;
  for (int r : ranks_) {
    JHPC_REQUIRE(r >= 0, "group ranks must be non-negative");
    JHPC_REQUIRE(seen.insert(r).second, "group ranks must be distinct");
  }
}

int Group::rank_of(int world_rank) const {
  for (std::size_t i = 0; i < ranks_.size(); ++i)
    if (ranks_[i] == world_rank) return static_cast<int>(i);
  return -1;
}

int Group::world_rank(int group_rank) const {
  JHPC_REQUIRE(group_rank >= 0 && group_rank < size(),
               "group rank out of range");
  return ranks_[static_cast<std::size_t>(group_rank)];
}

Group Group::incl(const std::vector<int>& group_ranks) const {
  std::vector<int> out;
  out.reserve(group_ranks.size());
  for (int r : group_ranks) out.push_back(world_rank(r));
  return Group(std::move(out));
}

Group Group::excl(const std::vector<int>& group_ranks) const {
  std::unordered_set<int> drop;
  for (int r : group_ranks) {
    JHPC_REQUIRE(r >= 0 && r < size(), "group rank out of range");
    drop.insert(r);
  }
  std::vector<int> out;
  for (int i = 0; i < size(); ++i)
    if (!drop.contains(i)) out.push_back(ranks_[static_cast<std::size_t>(i)]);
  return Group(std::move(out));
}

Group Group::union_with(const Group& other) const {
  std::vector<int> out = ranks_;
  std::unordered_set<int> have(ranks_.begin(), ranks_.end());
  for (int r : other.ranks_)
    if (!have.contains(r)) out.push_back(r);
  return Group(std::move(out));
}

Group Group::intersection(const Group& other) const {
  std::unordered_set<int> have(other.ranks_.begin(), other.ranks_.end());
  std::vector<int> out;
  for (int r : ranks_)
    if (have.contains(r)) out.push_back(r);
  return Group(std::move(out));
}

Group Group::difference(const Group& other) const {
  std::unordered_set<int> have(other.ranks_.begin(), other.ranks_.end());
  std::vector<int> out;
  for (int r : ranks_)
    if (!have.contains(r)) out.push_back(r);
  return Group(std::move(out));
}

std::vector<int> Group::translate(const std::vector<int>& group_ranks,
                                  const Group& other) const {
  std::vector<int> out;
  out.reserve(group_ranks.size());
  for (int r : group_ranks) out.push_back(other.rank_of(world_rank(r)));
  return out;
}

}  // namespace jhpc::minimpi
