#include "jhpc/minimpi/op.hpp"

#include <algorithm>
#include <cstring>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {
namespace {

template <typename T>
void apply_arith(ReduceOp op, T* inout, const T* in, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      return;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      return;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(inout[i], in[i]);
      return;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(inout[i], in[i]);
      return;
    default:
      break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (op) {
      case ReduceOp::kLand:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = static_cast<T>((inout[i] != 0) && (in[i] != 0));
        return;
      case ReduceOp::kLor:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = static_cast<T>((inout[i] != 0) || (in[i] != 0));
        return;
      case ReduceOp::kBand:
        for (std::size_t i = 0; i < count; ++i) inout[i] &= in[i];
        return;
      case ReduceOp::kBor:
        for (std::size_t i = 0; i < count; ++i) inout[i] |= in[i];
        return;
      case ReduceOp::kBxor:
        for (std::size_t i = 0; i < count; ++i) inout[i] ^= in[i];
        return;
      default:
        break;
    }
  }
  throw InvalidArgumentError(
      std::string("reduction operator ") + reduce_op_name(op) +
      " is not defined for this datatype");
}

void apply_boolean(ReduceOp op, std::uint8_t* inout, const std::uint8_t* in,
                   std::size_t count) {
  switch (op) {
    case ReduceOp::kLand:
    case ReduceOp::kBand:
    case ReduceOp::kMin:
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<std::uint8_t>((inout[i] != 0) && (in[i] != 0));
      return;
    case ReduceOp::kLor:
    case ReduceOp::kBor:
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<std::uint8_t>((inout[i] != 0) || (in[i] != 0));
      return;
    case ReduceOp::kBxor:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<std::uint8_t>((inout[i] != 0) != (in[i] != 0));
      return;
    default:
      throw InvalidArgumentError(
          std::string("reduction operator ") + reduce_op_name(op) +
          " is not defined for boolean");
  }
}

}  // namespace

void apply_reduce(ReduceOp op, BasicKind kind, void* inout, const void* in,
                  std::size_t count) {
  switch (kind) {
    case BasicKind::kByte:
      apply_arith(op, static_cast<std::int8_t*>(inout),
                  static_cast<const std::int8_t*>(in), count);
      return;
    case BasicKind::kBoolean:
      apply_boolean(op, static_cast<std::uint8_t*>(inout),
                    static_cast<const std::uint8_t*>(in), count);
      return;
    case BasicKind::kChar:
      apply_arith(op, static_cast<std::uint16_t*>(inout),
                  static_cast<const std::uint16_t*>(in), count);
      return;
    case BasicKind::kShort:
      apply_arith(op, static_cast<std::int16_t*>(inout),
                  static_cast<const std::int16_t*>(in), count);
      return;
    case BasicKind::kInt:
      apply_arith(op, static_cast<std::int32_t*>(inout),
                  static_cast<const std::int32_t*>(in), count);
      return;
    case BasicKind::kLong:
      apply_arith(op, static_cast<std::int64_t*>(inout),
                  static_cast<const std::int64_t*>(in), count);
      return;
    case BasicKind::kFloat:
      apply_arith(op, static_cast<float*>(inout),
                  static_cast<const float*>(in), count);
      return;
    case BasicKind::kDouble:
      apply_arith(op, static_cast<double*>(inout),
                  static_cast<const double*>(in), count);
      return;
  }
  throw InternalError("unknown BasicKind in apply_reduce");
}

void apply_reduce_typed(ReduceOp op, const Datatype& type, void* inout,
                        const void* in, int count) {
  JHPC_REQUIRE(count >= 0, "apply_reduce_typed: negative element count");
  if (!type.uniform_leaf()) {
    throw UnsupportedOperationError(
        "typed reduction requires a uniform leaf kind (mixed-leaf "
        "structs are not element-wise reducible)");
  }
  const BasicKind kind = type.leaf_kind();
  const std::size_t leaf = basic_size(kind);
  if (type.contiguous_layout()) {
    apply_reduce(op, kind, inout, in,
                 type.size() / leaf * static_cast<std::size_t>(count));
    return;
  }
  auto* dst = static_cast<std::byte*>(inout);
  const auto* src = static_cast<const std::byte*>(in);
  const auto ext = static_cast<std::ptrdiff_t>(type.extent());
  for (int e = 0; e < count; ++e) {
    for (const FlatRun& r : type.flat_runs()) {
      for (std::size_t b = 0; b < r.count; ++b) {
        const std::ptrdiff_t off =
            ext * e + r.offset + r.stride * static_cast<std::ptrdiff_t>(b);
        apply_reduce(op, kind, dst + off, src + off, r.length / leaf);
      }
    }
  }
}

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "SUM";
    case ReduceOp::kProd: return "PROD";
    case ReduceOp::kMin: return "MIN";
    case ReduceOp::kMax: return "MAX";
    case ReduceOp::kLand: return "LAND";
    case ReduceOp::kLor: return "LOR";
    case ReduceOp::kBand: return "BAND";
    case ReduceOp::kBor: return "BOR";
    case ReduceOp::kBxor: return "BXOR";
  }
  return "?";
}

}  // namespace jhpc::minimpi
