#include "jhpc/minimpi/datatype.hpp"

#include <array>
#include <cstring>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

std::size_t basic_size(BasicKind kind) {
  switch (kind) {
    case BasicKind::kByte:
    case BasicKind::kBoolean:
      return 1;
    case BasicKind::kChar:
    case BasicKind::kShort:
      return 2;
    case BasicKind::kInt:
    case BasicKind::kFloat:
      return 4;
    case BasicKind::kLong:
    case BasicKind::kDouble:
      return 8;
  }
  throw InternalError("unknown BasicKind");
}

struct Datatype::Desc {
  enum class Shape { kBasic, kContiguous, kVector, kIndexed };
  Shape shape = Shape::kBasic;
  BasicKind basic = BasicKind::kByte;
  std::size_t size = 1;    // payload bytes per element
  std::size_t extent = 1;  // memory span per element
  // Derived parameters (counts are in base elements).
  int count = 0;
  int blocklen = 0;
  int stride = 0;
  // Indexed parameters (in base elements).
  std::vector<int> blocklens;
  std::vector<int> displs;
  std::shared_ptr<const Desc> base;
};

namespace {

std::shared_ptr<const Datatype::Desc> make_basic_desc(BasicKind kind) {
  auto d = std::make_shared<Datatype::Desc>();
  d->shape = Datatype::Desc::Shape::kBasic;
  d->basic = kind;
  d->size = d->extent = basic_size(kind);
  return d;
}

// Recursive pack of one element described by `d` from src to dst; returns
// bytes written to dst.
std::size_t pack_one(const Datatype::Desc& d, const std::byte* src,
                     std::byte* dst) {
  using Shape = Datatype::Desc::Shape;
  switch (d.shape) {
    case Shape::kBasic:
      std::memcpy(dst, src, d.size);
      return d.size;
    case Shape::kContiguous: {
      std::size_t written = 0;
      for (int i = 0; i < d.count; ++i) {
        written += pack_one(*d.base, src + static_cast<std::size_t>(i) *
                                               d.base->extent,
                            dst + written);
      }
      return written;
    }
    case Shape::kVector: {
      std::size_t written = 0;
      for (int b = 0; b < d.count; ++b) {
        const std::byte* block_src =
            src + static_cast<std::size_t>(b) *
                      static_cast<std::size_t>(d.stride) * d.base->extent;
        for (int e = 0; e < d.blocklen; ++e) {
          written += pack_one(
              *d.base, block_src + static_cast<std::size_t>(e) *
                                       d.base->extent,
              dst + written);
        }
      }
      return written;
    }
    case Shape::kIndexed: {
      std::size_t written = 0;
      for (std::size_t b = 0; b < d.blocklens.size(); ++b) {
        const std::byte* block_src =
            src + static_cast<std::size_t>(d.displs[b]) * d.base->extent;
        for (int e = 0; e < d.blocklens[b]; ++e) {
          written += pack_one(
              *d.base,
              block_src + static_cast<std::size_t>(e) * d.base->extent,
              dst + written);
        }
      }
      return written;
    }
  }
  throw InternalError("unknown datatype shape");
}

std::size_t unpack_one(const Datatype::Desc& d, const std::byte* src,
                       std::byte* dst) {
  using Shape = Datatype::Desc::Shape;
  switch (d.shape) {
    case Shape::kBasic:
      std::memcpy(dst, src, d.size);
      return d.size;
    case Shape::kContiguous: {
      std::size_t consumed = 0;
      for (int i = 0; i < d.count; ++i) {
        consumed += unpack_one(*d.base, src + consumed,
                               dst + static_cast<std::size_t>(i) *
                                         d.base->extent);
      }
      return consumed;
    }
    case Shape::kVector: {
      std::size_t consumed = 0;
      for (int b = 0; b < d.count; ++b) {
        std::byte* block_dst =
            dst + static_cast<std::size_t>(b) *
                      static_cast<std::size_t>(d.stride) * d.base->extent;
        for (int e = 0; e < d.blocklen; ++e) {
          consumed += unpack_one(
              *d.base, src + consumed,
              block_dst + static_cast<std::size_t>(e) * d.base->extent);
        }
      }
      return consumed;
    }
    case Shape::kIndexed: {
      std::size_t consumed = 0;
      for (std::size_t b = 0; b < d.blocklens.size(); ++b) {
        std::byte* block_dst =
            dst + static_cast<std::size_t>(d.displs[b]) * d.base->extent;
        for (int e = 0; e < d.blocklens[b]; ++e) {
          consumed += unpack_one(
              *d.base, src + consumed,
              block_dst + static_cast<std::size_t>(e) * d.base->extent);
        }
      }
      return consumed;
    }
  }
  throw InternalError("unknown datatype shape");
}

bool desc_equal(const Datatype::Desc& a, const Datatype::Desc& b) {
  if (a.shape != b.shape) return false;
  using Shape = Datatype::Desc::Shape;
  switch (a.shape) {
    case Shape::kBasic:
      return a.basic == b.basic;
    case Shape::kContiguous:
      return a.count == b.count && desc_equal(*a.base, *b.base);
    case Shape::kVector:
      return a.count == b.count && a.blocklen == b.blocklen &&
             a.stride == b.stride && desc_equal(*a.base, *b.base);
    case Shape::kIndexed:
      return a.blocklens == b.blocklens && a.displs == b.displs &&
             desc_equal(*a.base, *b.base);
  }
  return false;
}

BasicKind leaf_of(const Datatype::Desc& d) {
  if (d.shape == Datatype::Desc::Shape::kBasic) return d.basic;
  return leaf_of(*d.base);
}

}  // namespace

Datatype::Datatype(std::shared_ptr<const Desc> desc)
    : desc_(std::move(desc)) {}

Datatype Datatype::basic(BasicKind kind) {
  // One shared immutable descriptor per basic kind.
  static const std::array<std::shared_ptr<const Desc>, kBasicKindCount>
      cache = [] {
        std::array<std::shared_ptr<const Desc>, kBasicKindCount> c;
        for (int i = 0; i < kBasicKindCount; ++i)
          c[static_cast<std::size_t>(i)] =
              make_basic_desc(static_cast<BasicKind>(i));
        return c;
      }();
  return Datatype(cache[static_cast<std::size_t>(kind)]);
}

Datatype Datatype::byte_type() { return basic(BasicKind::kByte); }
Datatype Datatype::boolean_type() { return basic(BasicKind::kBoolean); }
Datatype Datatype::char_type() { return basic(BasicKind::kChar); }
Datatype Datatype::short_type() { return basic(BasicKind::kShort); }
Datatype Datatype::int_type() { return basic(BasicKind::kInt); }
Datatype Datatype::long_type() { return basic(BasicKind::kLong); }
Datatype Datatype::float_type() { return basic(BasicKind::kFloat); }
Datatype Datatype::double_type() { return basic(BasicKind::kDouble); }

Datatype Datatype::contiguous(int count, const Datatype& base) {
  JHPC_REQUIRE(count >= 0, "contiguous datatype needs count >= 0");
  auto d = std::make_shared<Desc>();
  d->shape = Desc::Shape::kContiguous;
  d->count = count;
  d->base = base.desc_;
  d->size = static_cast<std::size_t>(count) * base.size();
  d->extent = static_cast<std::size_t>(count) * base.extent();
  return Datatype(std::move(d));
}

Datatype Datatype::vector(int count, int blocklen, int stride,
                          const Datatype& base) {
  JHPC_REQUIRE(count >= 0 && blocklen >= 0, "vector datatype needs counts >= 0");
  JHPC_REQUIRE(stride >= blocklen,
               "vector datatype requires stride >= blocklen");
  auto d = std::make_shared<Desc>();
  d->shape = Desc::Shape::kVector;
  d->count = count;
  d->blocklen = blocklen;
  d->stride = stride;
  d->base = base.desc_;
  d->size = static_cast<std::size_t>(count) *
            static_cast<std::size_t>(blocklen) * base.size();
  // MPI_Type_vector extent: span from first to one-past-last element.
  d->extent =
      count == 0
          ? 0
          : (static_cast<std::size_t>(count - 1) *
                 static_cast<std::size_t>(stride) +
             static_cast<std::size_t>(blocklen)) *
                base.extent();
  return Datatype(std::move(d));
}

Datatype Datatype::indexed(std::span<const int> blocklens,
                           std::span<const int> displs,
                           const Datatype& base) {
  JHPC_REQUIRE(blocklens.size() == displs.size(),
               "indexed datatype: blocklens/displs size mismatch");
  auto d = std::make_shared<Desc>();
  d->shape = Desc::Shape::kIndexed;
  d->base = base.desc_;
  std::size_t total_elems = 0;
  std::size_t span_end = 0;
  for (std::size_t b = 0; b < blocklens.size(); ++b) {
    JHPC_REQUIRE(blocklens[b] >= 0 && displs[b] >= 0,
                 "indexed datatype: negative blocklen/displacement");
    total_elems += static_cast<std::size_t>(blocklens[b]);
    span_end = std::max(span_end, static_cast<std::size_t>(displs[b]) +
                                      static_cast<std::size_t>(blocklens[b]));
  }
  d->blocklens.assign(blocklens.begin(), blocklens.end());
  d->displs.assign(displs.begin(), displs.end());
  d->size = total_elems * base.size();
  d->extent = span_end * base.extent();
  return Datatype(std::move(d));
}

std::size_t Datatype::size() const { return desc_->size; }
std::size_t Datatype::extent() const { return desc_->extent; }

bool Datatype::is_basic() const {
  return desc_->shape == Desc::Shape::kBasic;
}

BasicKind Datatype::kind() const {
  JHPC_REQUIRE(is_basic(), "kind() on a derived datatype");
  return desc_->basic;
}

BasicKind Datatype::leaf_kind() const { return leaf_of(*desc_); }

void Datatype::pack(const void* src, void* dst, int count) const {
  JHPC_REQUIRE(count >= 0, "pack with negative count");
  const auto* s = static_cast<const std::byte*>(src);
  auto* d = static_cast<std::byte*>(dst);
  std::size_t written = 0;
  for (int i = 0; i < count; ++i) {
    written += pack_one(*desc_,
                        s + static_cast<std::size_t>(i) * desc_->extent,
                        d + written);
  }
}

void Datatype::unpack(const void* src, void* dst, int count) const {
  JHPC_REQUIRE(count >= 0, "unpack with negative count");
  const auto* s = static_cast<const std::byte*>(src);
  auto* d = static_cast<std::byte*>(dst);
  std::size_t consumed = 0;
  for (int i = 0; i < count; ++i) {
    consumed += unpack_one(*desc_, s + consumed,
                           d + static_cast<std::size_t>(i) * desc_->extent);
  }
}

bool Datatype::operator==(const Datatype& other) const {
  return desc_ == other.desc_ || desc_equal(*desc_, *other.desc_);
}

}  // namespace jhpc::minimpi
