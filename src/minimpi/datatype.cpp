#include "jhpc/minimpi/datatype.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

std::size_t basic_size(BasicKind kind) {
  switch (kind) {
    case BasicKind::kByte:
    case BasicKind::kBoolean:
      return 1;
    case BasicKind::kChar:
    case BasicKind::kShort:
      return 2;
    case BasicKind::kInt:
    case BasicKind::kFloat:
      return 4;
    case BasicKind::kLong:
    case BasicKind::kDouble:
      return 8;
  }
  throw InternalError("unknown BasicKind");
}

struct Datatype::Desc {
  enum class Shape {
    kBasic,
    kContiguous,
    kVector,
    kHvector,
    kIndexed,
    kStruct,
  };
  Shape shape = Shape::kBasic;
  /// Leaf kind (first leaf for mixed structs).
  BasicKind basic = BasicKind::kByte;
  bool uniform_leaf = true;
  int depth = 1;
  std::size_t size = 1;          // payload bytes per element
  std::size_t extent = 1;        // step between consecutive elements
  std::ptrdiff_t true_lb = 0;    // lowest byte touched
  std::ptrdiff_t true_ub = 1;    // one past the highest byte touched
  // Constructor parameters, kept only for structural equality.
  int count = 0;
  int blocklen = 0;
  std::ptrdiff_t stride = 0;  // base elements (kVector) or bytes (kHvector)
  std::vector<int> blocklens;
  std::vector<int> displs;
  std::vector<std::ptrdiff_t> byte_displs;
  std::shared_ptr<const Desc> base;
  std::vector<std::shared_ptr<const Desc>> fields;
  /// Normalized flattened layout of one element.
  std::vector<FlatRun> flat;
  bool contiguous = false;
};

namespace {

using FlatLayout = std::vector<FlatRun>;

std::shared_ptr<const Datatype::Desc> make_basic_desc(BasicKind kind) {
  auto d = std::make_shared<Datatype::Desc>();
  d->shape = Datatype::Desc::Shape::kBasic;
  d->basic = kind;
  d->size = d->extent = basic_size(kind);
  d->true_lb = 0;
  d->true_ub = static_cast<std::ptrdiff_t>(d->size);
  d->flat = {FlatRun{0, d->size, 1, 0}};
  d->contiguous = true;
  return d;
}

/// Append one run, normalizing as we go: adjacent plain ranges merge
/// into one longer range; equal-length blocks continuing an arithmetic
/// progression fold into the previous run's repeat count.
void append_run(FlatLayout& out, FlatRun r) {
  if (r.length == 0 || r.count == 0) return;
  if (r.count == 1) r.stride = 0;
  if (!out.empty()) {
    FlatRun& p = out.back();
    if (p.count == 1 && r.count == 1 &&
        r.offset == p.offset + static_cast<std::ptrdiff_t>(p.length)) {
      p.length += r.length;
      return;
    }
    if (r.length == p.length) {
      if (p.count == 1 && r.count == 1) {
        p.stride = r.offset - p.offset;
        p.count = 2;
        return;
      }
      const std::ptrdiff_t next =
          p.offset + p.stride * static_cast<std::ptrdiff_t>(p.count);
      if (p.count > 1 && r.offset == next &&
          (r.count == 1 || r.stride == p.stride)) {
        p.count += r.count;
        return;
      }
    }
  }
  JHPC_REQUIRE(out.size() < kMaxFlatRuns,
               "datatype flattens to too many runs");
  out.push_back(r);
}

/// Lay `n` copies of `in` at successive multiples of `step`. Single-run
/// layouts compress in O(1); everything else replicates through the
/// normalizing appender.
FlatLayout replicate(const FlatLayout& in, std::size_t n,
                     std::ptrdiff_t step) {
  if (n == 0 || in.empty()) return {};
  if (n == 1) return in;
  if (in.size() == 1) {
    const FlatRun& r = in[0];
    if (r.count == 1 && step == static_cast<std::ptrdiff_t>(r.length)) {
      return {FlatRun{r.offset, r.length * n, 1, 0}};
    }
    if (r.count == 1) {
      return {FlatRun{r.offset, r.length, n, step}};
    }
    if (step == r.stride * static_cast<std::ptrdiff_t>(r.count)) {
      return {FlatRun{r.offset, r.length, r.count * n, r.stride}};
    }
  }
  FlatLayout out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::ptrdiff_t shift = step * static_cast<std::ptrdiff_t>(i);
    for (FlatRun r : in) {
      r.offset += shift;
      append_run(out, r);
    }
  }
  return out;
}

/// Lowest / one-past-highest byte offsets the layout touches.
void bounds_of(const FlatLayout& f, std::ptrdiff_t* lb, std::ptrdiff_t* ub) {
  if (f.empty()) {
    *lb = *ub = 0;
    return;
  }
  std::ptrdiff_t lo = f[0].offset;
  std::ptrdiff_t hi = f[0].offset;
  for (const FlatRun& r : f) {
    const std::ptrdiff_t span =
        r.stride * static_cast<std::ptrdiff_t>(r.count - 1);
    lo = std::min(lo, r.offset + std::min<std::ptrdiff_t>(span, 0));
    hi = std::max(hi, r.offset + std::max<std::ptrdiff_t>(span, 0) +
                          static_cast<std::ptrdiff_t>(r.length));
  }
  *lb = lo;
  *ub = hi;
}

/// Fill the derived fields every constructor shares: bounds, the MPI
/// extent rule (span from min(lb, 0) to max(ub, 0)), the dense-layout
/// flag, and the depth cap.
void finalize_desc(Datatype::Desc& d) {
  JHPC_REQUIRE(d.depth <= kMaxTypeDepth,
               "datatype nesting exceeds the depth cap");
  bounds_of(d.flat, &d.true_lb, &d.true_ub);
  const std::ptrdiff_t lb_eff = std::min<std::ptrdiff_t>(d.true_lb, 0);
  const std::ptrdiff_t ub_eff = std::max<std::ptrdiff_t>(d.true_ub, 0);
  d.extent = static_cast<std::size_t>(ub_eff - lb_eff);
  d.contiguous = d.size == 0 ||
                 (d.flat.size() == 1 && d.flat[0].count == 1 &&
                  d.flat[0].offset == 0 && d.flat[0].length == d.size &&
                  d.extent == d.size);
}

bool desc_equal(const Datatype::Desc& a, const Datatype::Desc& b) {
  if (a.shape != b.shape) return false;
  using Shape = Datatype::Desc::Shape;
  switch (a.shape) {
    case Shape::kBasic:
      return a.basic == b.basic;
    case Shape::kContiguous:
      return a.count == b.count && desc_equal(*a.base, *b.base);
    case Shape::kVector:
    case Shape::kHvector:
      return a.count == b.count && a.blocklen == b.blocklen &&
             a.stride == b.stride && desc_equal(*a.base, *b.base);
    case Shape::kIndexed:
      return a.blocklens == b.blocklens && a.displs == b.displs &&
             desc_equal(*a.base, *b.base);
    case Shape::kStruct: {
      if (a.blocklens != b.blocklens || a.byte_displs != b.byte_displs ||
          a.fields.size() != b.fields.size()) {
        return false;
      }
      for (std::size_t i = 0; i < a.fields.size(); ++i) {
        if (!desc_equal(*a.fields[i], *b.fields[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

Datatype::Datatype(std::shared_ptr<const Desc> desc)
    : desc_(std::move(desc)) {}

Datatype Datatype::basic(BasicKind kind) {
  // One shared immutable descriptor per basic kind.
  static const std::array<std::shared_ptr<const Desc>, kBasicKindCount>
      cache = [] {
        std::array<std::shared_ptr<const Desc>, kBasicKindCount> c;
        for (int i = 0; i < kBasicKindCount; ++i)
          c[static_cast<std::size_t>(i)] =
              make_basic_desc(static_cast<BasicKind>(i));
        return c;
      }();
  return Datatype(cache[static_cast<std::size_t>(kind)]);
}

Datatype Datatype::byte_type() { return basic(BasicKind::kByte); }
Datatype Datatype::boolean_type() { return basic(BasicKind::kBoolean); }
Datatype Datatype::char_type() { return basic(BasicKind::kChar); }
Datatype Datatype::short_type() { return basic(BasicKind::kShort); }
Datatype Datatype::int_type() { return basic(BasicKind::kInt); }
Datatype Datatype::long_type() { return basic(BasicKind::kLong); }
Datatype Datatype::float_type() { return basic(BasicKind::kFloat); }
Datatype Datatype::double_type() { return basic(BasicKind::kDouble); }

Datatype Datatype::contiguous(int count, const Datatype& base) {
  JHPC_REQUIRE(count >= 0, "contiguous datatype needs count >= 0");
  auto d = std::make_shared<Desc>();
  d->shape = Desc::Shape::kContiguous;
  d->count = count;
  d->base = base.desc_;
  d->basic = base.desc_->basic;
  d->uniform_leaf = base.desc_->uniform_leaf;
  d->depth = base.desc_->depth + 1;
  d->size = static_cast<std::size_t>(count) * base.size();
  d->flat = replicate(base.desc_->flat, static_cast<std::size_t>(count),
                      static_cast<std::ptrdiff_t>(base.extent()));
  finalize_desc(*d);
  return Datatype(std::move(d));
}

namespace {

std::shared_ptr<Datatype::Desc> make_vector_desc(
    Datatype::Desc::Shape shape, int count, int blocklen,
    std::ptrdiff_t stride, std::ptrdiff_t stride_bytes,
    const std::shared_ptr<const Datatype::Desc>& base) {
  auto d = std::make_shared<Datatype::Desc>();
  d->shape = shape;
  d->count = count;
  d->blocklen = blocklen;
  d->stride = stride;
  d->base = base;
  d->basic = base->basic;
  d->uniform_leaf = base->uniform_leaf;
  d->depth = base->depth + 1;
  d->size = static_cast<std::size_t>(count) *
            static_cast<std::size_t>(blocklen) * base->size;
  const FlatLayout block =
      replicate(base->flat, static_cast<std::size_t>(blocklen),
                static_cast<std::ptrdiff_t>(base->extent));
  d->flat = replicate(block, static_cast<std::size_t>(count), stride_bytes);
  finalize_desc(*d);
  return d;
}

}  // namespace

Datatype Datatype::vector(int count, int blocklen, int stride,
                          const Datatype& base) {
  JHPC_REQUIRE(count >= 0 && blocklen >= 0,
               "vector datatype needs counts >= 0");
  // Negative and overlapping strides are legal, as in MPI_Type_vector;
  // the extent rule (span from min(lb, 0) to max(ub, 0)) handles them.
  return Datatype(make_vector_desc(
      Desc::Shape::kVector, count, blocklen, stride,
      static_cast<std::ptrdiff_t>(stride) *
          static_cast<std::ptrdiff_t>(base.extent()),
      base.desc_));
}

Datatype Datatype::hvector(int count, int blocklen,
                           std::ptrdiff_t stride_bytes, const Datatype& base) {
  JHPC_REQUIRE(count >= 0 && blocklen >= 0,
               "hvector datatype needs counts >= 0");
  return Datatype(make_vector_desc(Desc::Shape::kHvector, count, blocklen,
                                   stride_bytes, stride_bytes, base.desc_));
}

Datatype Datatype::indexed(std::span<const int> blocklens,
                           std::span<const int> displs,
                           const Datatype& base) {
  JHPC_REQUIRE(blocklens.size() == displs.size(),
               "indexed datatype: blocklens/displs size mismatch");
  auto d = std::make_shared<Desc>();
  d->shape = Desc::Shape::kIndexed;
  d->base = base.desc_;
  d->basic = base.desc_->basic;
  d->uniform_leaf = base.desc_->uniform_leaf;
  d->depth = base.desc_->depth + 1;
  std::size_t total_elems = 0;
  const auto bext = static_cast<std::ptrdiff_t>(base.extent());
  for (std::size_t b = 0; b < blocklens.size(); ++b) {
    JHPC_REQUIRE(blocklens[b] >= 0 && displs[b] >= 0,
                 "indexed datatype: negative blocklen/displacement");
    total_elems += static_cast<std::size_t>(blocklens[b]);
    FlatLayout block =
        replicate(base.desc_->flat,
                  static_cast<std::size_t>(blocklens[b]), bext);
    const std::ptrdiff_t shift =
        static_cast<std::ptrdiff_t>(displs[b]) * bext;
    for (FlatRun r : block) {
      r.offset += shift;
      append_run(d->flat, r);
    }
  }
  d->blocklens.assign(blocklens.begin(), blocklens.end());
  d->displs.assign(displs.begin(), displs.end());
  d->size = total_elems * base.size();
  finalize_desc(*d);
  return Datatype(std::move(d));
}

Datatype Datatype::struct_type(std::span<const int> blocklens,
                               std::span<const std::ptrdiff_t> displs,
                               std::span<const Datatype> types) {
  JHPC_REQUIRE(blocklens.size() == displs.size() &&
                   blocklens.size() == types.size(),
               "struct datatype: blocklens/displs/types size mismatch");
  auto d = std::make_shared<Desc>();
  d->shape = Desc::Shape::kStruct;
  int depth = 0;
  std::size_t size = 0;
  for (std::size_t f = 0; f < types.size(); ++f) {
    JHPC_REQUIRE(blocklens[f] >= 0, "struct datatype: negative blocklen");
    const Desc& fd = *types[f].desc_;
    if (f == 0) {
      d->basic = fd.basic;
    } else if (fd.basic != d->basic || !fd.uniform_leaf) {
      d->uniform_leaf = false;
    }
    if (!fd.uniform_leaf) d->uniform_leaf = false;
    depth = std::max(depth, fd.depth);
    size += static_cast<std::size_t>(blocklens[f]) * fd.size;
    FlatLayout field =
        replicate(fd.flat, static_cast<std::size_t>(blocklens[f]),
                  static_cast<std::ptrdiff_t>(fd.extent));
    for (FlatRun r : field) {
      r.offset += displs[f];
      append_run(d->flat, r);
    }
    d->fields.push_back(types[f].desc_);
  }
  d->depth = depth + 1;
  d->size = size;
  d->blocklens.assign(blocklens.begin(), blocklens.end());
  d->byte_displs.assign(displs.begin(), displs.end());
  finalize_desc(*d);
  return Datatype(std::move(d));
}

std::size_t Datatype::size() const { return desc_->size; }
std::size_t Datatype::extent() const { return desc_->extent; }
std::ptrdiff_t Datatype::true_lb() const { return desc_->true_lb; }

std::size_t Datatype::true_extent() const {
  return static_cast<std::size_t>(desc_->true_ub - desc_->true_lb);
}

bool Datatype::is_basic() const {
  return desc_->shape == Desc::Shape::kBasic;
}

BasicKind Datatype::kind() const {
  JHPC_REQUIRE(is_basic(), "kind() on a derived datatype");
  return desc_->basic;
}

BasicKind Datatype::leaf_kind() const { return desc_->basic; }
bool Datatype::uniform_leaf() const { return desc_->uniform_leaf; }

std::span<const FlatRun> Datatype::flat_runs() const { return desc_->flat; }
bool Datatype::contiguous_layout() const { return desc_->contiguous; }

void Datatype::pack(const void* src, void* dst, int count) const {
  JHPC_REQUIRE(count >= 0, "pack with negative count");
  detail::dt_copy(this, count, src, nullptr, 0, dst,
                  size() * static_cast<std::size_t>(count));
}

void Datatype::unpack(const void* src, void* dst, int count) const {
  JHPC_REQUIRE(count >= 0, "unpack with negative count");
  detail::dt_copy(nullptr, 0, src, this, count, dst,
                  size() * static_cast<std::size_t>(count));
}

bool Datatype::operator==(const Datatype& other) const {
  return desc_ == other.desc_ || desc_equal(*desc_, *other.desc_);
}

namespace detail {

namespace {

/// Pull-style walk over the contiguous segments of a (buffer, datatype,
/// count) triple. A null or dense datatype yields the whole byte range
/// as one segment.
struct SegmentWalk {
  std::byte* buf = nullptr;
  std::span<const FlatRun> runs{};
  std::ptrdiff_t extent = 0;
  int elems = 0;
  bool strided = false;
  std::size_t total = 0;
  // Cursor state.
  int e = 0;
  std::size_t r = 0;
  std::size_t b = 0;
  bool emitted_contig = false;
  std::size_t visited = 0;

  SegmentWalk(const Datatype* t, int n, void* p)
      : buf(static_cast<std::byte*>(p)) {
    if (t != nullptr && !t->contiguous_layout()) {
      strided = true;
      runs = t->flat_runs();
      extent = static_cast<std::ptrdiff_t>(t->extent());
      elems = n;
    } else {
      total = t != nullptr
                  ? t->size() * static_cast<std::size_t>(n)
                  : 0;  // 0 => caller-supplied byte range, see next()
    }
  }

  std::pair<std::byte*, std::size_t> next(std::size_t fallback_total) {
    if (!strided) {
      if (emitted_contig) return {nullptr, 0};
      emitted_contig = true;
      return {buf, total != 0 ? total : fallback_total};
    }
    while (e < elems) {
      if (r >= runs.size()) {
        ++e;
        r = 0;
        b = 0;
        continue;
      }
      const FlatRun& run = runs[r];
      if (b == 0) ++visited;
      std::byte* p = buf + extent * static_cast<std::ptrdiff_t>(e) +
                     run.offset +
                     run.stride * static_cast<std::ptrdiff_t>(b);
      ++b;
      if (b >= run.count) {
        ++r;
        b = 0;
      }
      return {p, run.length};
    }
    return {nullptr, 0};
  }
};

/// Blocked copy of `blocks` fixed-length segments between a striding
/// cursor and a dense cursor. The compile-time length lets the memcpy
/// inline to word moves and the loop vectorize — this is what makes the
/// zero-copy gather competitive with a hand-written pack loop on
/// fine-grained (4..16 byte) runs.
template <std::size_t L, bool ToDense>
void copy_blocks_fixed(std::byte*& dense, std::byte*& p,
                       std::ptrdiff_t stride, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    if constexpr (ToDense) {
      std::memcpy(dense, p, L);
    } else {
      std::memcpy(p, dense, L);
    }
    dense += L;
    p += stride;
  }
}

template <bool ToDense>
void copy_blocks(std::byte*& dense, std::byte*& p, std::size_t length,
                 std::ptrdiff_t stride, std::size_t blocks) {
  switch (length) {
    case 1:
      copy_blocks_fixed<1, ToDense>(dense, p, stride, blocks);
      return;
    case 2:
      copy_blocks_fixed<2, ToDense>(dense, p, stride, blocks);
      return;
    case 4:
      copy_blocks_fixed<4, ToDense>(dense, p, stride, blocks);
      return;
    case 8:
      copy_blocks_fixed<8, ToDense>(dense, p, stride, blocks);
      return;
    case 16:
      copy_blocks_fixed<16, ToDense>(dense, p, stride, blocks);
      return;
    case 32:
      copy_blocks_fixed<32, ToDense>(dense, p, stride, blocks);
      return;
    case 64:
      copy_blocks_fixed<64, ToDense>(dense, p, stride, blocks);
      return;
    default:
      for (std::size_t b = 0; b < blocks; ++b) {
        if constexpr (ToDense) {
          std::memcpy(dense, p, length);
        } else {
          std::memcpy(p, dense, length);
        }
        dense += length;
        p += stride;
      }
  }
}

/// Fast path: one side dense, the other a flattened run-list. The dense
/// cursor just advances; each run is a tight blocked copy loop with no
/// per-segment dispatch. `to_dense` selects gather (strided -> dense)
/// versus scatter (dense -> strided). Returns runs visited.
template <bool ToDense>
std::size_t copy_dense_strided(const Datatype* t, int n, std::byte* strided,
                               std::byte* dense, std::size_t bytes) {
  const std::span<const FlatRun> runs = t->flat_runs();
  const auto ext = static_cast<std::ptrdiff_t>(t->extent());
  std::size_t visited = 0;
  std::size_t left = bytes;
  for (int e = 0; e < n && left > 0; ++e) {
    std::byte* const base = strided + ext * static_cast<std::ptrdiff_t>(e);
    for (const FlatRun& run : runs) {
      ++visited;
      std::byte* p = base + run.offset;
      std::size_t full = left / run.length;
      if (full > run.count) full = run.count;
      left -= full * run.length;
      copy_blocks<ToDense>(dense, p, run.length, run.stride, full);
      if (full < run.count) {
        // Truncated mid-run: move what remains and stop.
        if (left > 0) {
          if (ToDense) {
            std::memcpy(dense, p, left);
          } else {
            std::memcpy(p, dense, left);
          }
        }
        return visited;
      }
      if (left == 0) return visited;
    }
  }
  return visited;
}

/// True when two strided triples touch byte-identical segments, so a
/// lockstep per-run copy needs no dense intermediary cursor.
bool same_layout(const Datatype* a, int an, const Datatype* b, int bn) {
  if (an != bn || a->extent() != b->extent()) return false;
  const std::span<const FlatRun> ra = a->flat_runs();
  const std::span<const FlatRun> rb = b->flat_runs();
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (!(ra[i] == rb[i])) return false;
  }
  return true;
}

}  // namespace

std::size_t dt_copy(const Datatype* st, int sn, const void* src,
                    const Datatype* rt, int rn, void* dst,
                    std::size_t bytes) {
  const bool s_strided = st != nullptr && !st->contiguous_layout();
  const bool r_strided = rt != nullptr && !rt->contiguous_layout();
  if (!s_strided && !r_strided) {
    if (bytes != 0) std::memcpy(dst, src, bytes);
    return 0;
  }
  if (bytes == 0) return 0;
  if (!r_strided) {
    return copy_dense_strided</*ToDense=*/true>(
        st, sn, static_cast<std::byte*>(const_cast<void*>(src)),
        static_cast<std::byte*>(dst), bytes);
  }
  if (!s_strided) {
    // The dense side's span is exactly `bytes` (the payload), whether it
    // is a contiguous datatype or a raw slab buffer.
    return copy_dense_strided</*ToDense=*/false>(
        rt, rn, static_cast<std::byte*>(dst),
        static_cast<std::byte*>(const_cast<void*>(src)), bytes);
  }
  if (same_layout(st, sn, rt, rn)) {
    // Layout-to-layout with identical shapes: one blocked copy per run,
    // both cursors move in lockstep by construction.
    const std::span<const FlatRun> runs = st->flat_runs();
    const auto ext = static_cast<std::ptrdiff_t>(st->extent());
    const auto* sb = static_cast<const std::byte*>(src);
    auto* db = static_cast<std::byte*>(dst);
    std::size_t visited = 0;
    std::size_t left = bytes;
    for (int e = 0; e < sn && left > 0; ++e) {
      const std::ptrdiff_t eo = ext * static_cast<std::ptrdiff_t>(e);
      for (const FlatRun& run : runs) {
        visited += 2;  // one visit per side, as the generic walk counts
        std::ptrdiff_t off = eo + run.offset;
        for (std::size_t b = 0; b < run.count; ++b) {
          const std::size_t len = run.length < left ? run.length : left;
          std::memcpy(db + off, sb + off, len);
          left -= len;
          if (len < run.length) return visited;
          off += run.stride;
        }
        if (left == 0) return visited;
      }
    }
    return visited;
  }
  SegmentWalk sw(st, sn, const_cast<void*>(src));
  SegmentWalk rw(rt, rn, dst);
  std::byte* sp = nullptr;
  std::byte* rp = nullptr;
  std::size_t sl = 0;
  std::size_t rl = 0;
  std::size_t copied = 0;
  while (copied < bytes) {
    if (sl == 0) std::tie(sp, sl) = sw.next(bytes);
    if (rl == 0) std::tie(rp, rl) = rw.next(bytes);
    const std::size_t n = std::min({sl, rl, bytes - copied});
    if (n == 0) break;  // a layout ran dry: bytes was an overestimate
    std::memcpy(rp, sp, n);
    sp += n;
    rp += n;
    sl -= n;
    rl -= n;
    copied += n;
  }
  return sw.visited + rw.visited;
}

}  // namespace detail

}  // namespace jhpc::minimpi
