// The "basic" collective suite: flat linear algorithms, modelling an
// untuned baseline library. Everything funnels through the root (rank 0
// for rootless operations), which is exactly the serialisation the paper
// blames for Open MPI's collective numbers relative to MVAPICH2's.
#include <cstring>
#include <vector>

#include "detail/coll.hpp"
#include "detail/transport.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail::basic {
namespace {

/// Linear fan-in of zero-byte tokens to `root`.
void sync_to_root(const Comm& c, int root, int tag) {
  const int size = c.size();
  const int rank = c.rank();
  char token = 0;
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      c.recv(&token, sizeof(token), r, tag);
    }
  } else {
    c.send(&token, sizeof(token), root, tag);
  }
}

/// Linear fan-out of zero-byte tokens from `root`.
void release_from_root(const Comm& c, int root, int tag) {
  const int size = c.size();
  const int rank = c.rank();
  char token = 0;
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      c.send(&token, sizeof(token), r, tag);
    }
  } else {
    c.recv(&token, sizeof(token), root, tag);
  }
}

}  // namespace

void barrier(const Comm& c) {
  CollSpan span(c, CollAlg::kBarrierLinear);
  sync_to_root(c, 0, kTagBarrier);
  release_from_root(c, 0, kTagBarrier);
}

void bcast(const Comm& c, void* buf, std::size_t bytes, int root) {
  const int size = c.size();
  const int rank = c.rank();
  if (size == 1) return;
  CollSpan span(c, CollAlg::kBcastLinear);
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      c.send(buf, bytes, r, kTagBcast);
    }
  } else {
    c.recv(buf, bytes, root, kTagBcast);
  }
}

void reduce(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
            BasicKind kind, ReduceOp op, int root) {
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t bytes = count * basic_size(kind);
  CollSpan span(c, CollAlg::kReduceLinear);
  if (rank == root) {
    if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
    std::vector<std::byte> incoming(bytes);
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      c.recv(incoming.data(), bytes, r, kTagReduce);
      apply_reduce(op, kind, rbuf, incoming.data(), count);
    }
  } else {
    c.send(sbuf, bytes, root, kTagReduce);
  }
}

void allreduce(const Comm& c, const void* sbuf, void* rbuf,
               std::size_t count, BasicKind kind, ReduceOp op) {
  CollSpan span(c, CollAlg::kAllreduceLinear);
  reduce(c, sbuf, rbuf, count, kind, op, 0);
  bcast(c, rbuf, count * basic_size(kind), 0);
}

void reduce_scatter_block(const Comm& c, const void* sbuf, void* rbuf,
                          std::size_t count_per_rank, BasicKind kind,
                          ReduceOp op) {
  // Flat: reduce everything to rank 0, scatter the blocks back out.
  CollSpan span(c, CollAlg::kReduceScatterLinear);
  const int size = c.size();
  const std::size_t block = count_per_rank * basic_size(kind);
  std::vector<std::byte> full(static_cast<std::size_t>(size) * block);
  reduce(c, sbuf, full.data(), count_per_rank * static_cast<std::size_t>(size),
         kind, op, 0);
  scatter(c, full.data(), block, rbuf, 0);
}

void scan(const Comm& c, const void* sbuf, void* rbuf, std::size_t count,
          BasicKind kind, ReduceOp op) {
  // Linear chain: fold the predecessor's prefix, pass mine downstream.
  CollSpan span(c, CollAlg::kScanLinear);
  const int size = c.size();
  const int rank = c.rank();
  const std::size_t bytes = count * basic_size(kind);
  if (rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
  if (rank > 0) {
    std::vector<std::byte> incoming(bytes);
    c.recv(incoming.data(), bytes, rank - 1, kTagScan);
    apply_reduce(op, kind, rbuf, incoming.data(), count);
  }
  if (rank + 1 < size) c.send(rbuf, bytes, rank + 1, kTagScan);
}

void gather(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
            int root) {
  const int size = c.size();
  const int rank = c.rank();
  CollSpan span(c, CollAlg::kGatherLinear);
  if (rank == root) {
    auto* out = static_cast<std::byte*>(rbuf);
    std::memcpy(out + static_cast<std::size_t>(root) * bpr, sbuf, bpr);
    // Post all receives first so senders never block on an absent match.
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      reqs.push_back(c.irecv(out + static_cast<std::size_t>(r) * bpr, bpr, r,
                             kTagGather));
    }
    Request::wait_all(reqs);
  } else {
    c.send(sbuf, bpr, root, kTagGather);
  }
}

void scatter(const Comm& c, const void* sbuf, std::size_t bpr, void* rbuf,
             int root) {
  const int size = c.size();
  const int rank = c.rank();
  CollSpan span(c, CollAlg::kScatterLinear);
  if (rank == root) {
    const auto* in = static_cast<const std::byte*>(sbuf);
    std::memcpy(rbuf, in + static_cast<std::size_t>(root) * bpr, bpr);
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      c.send(in + static_cast<std::size_t>(r) * bpr, bpr, r, kTagScatter);
    }
  } else {
    c.recv(rbuf, bpr, root, kTagScatter);
  }
}

void allgather(const Comm& c, const void* sbuf, std::size_t bpr,
               void* rbuf) {
  CollSpan span(c, CollAlg::kAllgatherLinear);
  gather(c, sbuf, bpr, rbuf, 0);
  bcast(c, rbuf, bpr * static_cast<std::size_t>(c.size()), 0);
}

void alltoall(const Comm& c, const void* sbuf, std::size_t bpp, void* rbuf) {
  CollSpan span(c, CollAlg::kAlltoallLinear);
  const int size = c.size();
  const int rank = c.rank();
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + static_cast<std::size_t>(rank) * bpp,
              in + static_cast<std::size_t>(rank) * bpp, bpp);
  // Everyone posts all receives, then sends linearly.
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    reqs.push_back(c.irecv(out + static_cast<std::size_t>(r) * bpp, bpp, r,
                           kTagAlltoall));
  }
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    c.send(in + static_cast<std::size_t>(r) * bpp, bpp, r, kTagAlltoall);
  }
  Request::wait_all(reqs);
}

void allgatherv(const Comm& c, const void* sbuf, std::size_t sbytes,
                void* rbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs) {
  const int size = c.size();
  const int rank = c.rank();
  JHPC_REQUIRE(counts.size() == static_cast<std::size_t>(size) &&
                   displs.size() == static_cast<std::size_t>(size),
               "allgatherv counts/displs must have comm-size entries");
  JHPC_REQUIRE(sbytes == counts[static_cast<std::size_t>(rank)],
               "allgatherv send size must equal my count");
  CollSpan span(c, CollAlg::kAllgathervLinear);
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + displs[static_cast<std::size_t>(rank)], sbuf, sbytes);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    const auto ri = static_cast<std::size_t>(r);
    reqs.push_back(
        c.irecv(out + displs[ri], counts[ri], r, kTagAllgatherv));
  }
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    c.send(sbuf, sbytes, r, kTagAllgatherv);
  }
  Request::wait_all(reqs);
}

void alltoallv(const Comm& c, const void* sbuf,
               std::span<const std::size_t> scounts,
               std::span<const std::size_t> sdispls, void* rbuf,
               std::span<const std::size_t> rcounts,
               std::span<const std::size_t> rdispls) {
  CollSpan span(c, CollAlg::kAlltoallvLinear);
  const int size = c.size();
  const int rank = c.rank();
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);
  const auto me = static_cast<std::size_t>(rank);
  std::memcpy(out + rdispls[me], in + sdispls[me], scounts[me]);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    const auto ri = static_cast<std::size_t>(r);
    reqs.push_back(
        c.irecv(out + rdispls[ri], rcounts[ri], r, kTagAlltoallv));
  }
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    const auto ri = static_cast<std::size_t>(r);
    c.send(in + sdispls[ri], scounts[ri], r, kTagAlltoallv);
  }
  Request::wait_all(reqs);
}

}  // namespace jhpc::minimpi::detail::basic
