#include "jhpc/minimpi/slab_depot.hpp"

#include "detail/slab.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

SlabDepotPtr make_slab_depot(std::size_t max_bytes) {
  JHPC_REQUIRE(max_bytes > 0, "slab depot ceiling must be positive");
  return std::make_shared<detail::SlabDepot>(max_bytes);
}

SlabDepotStats slab_depot_stats(const SlabDepotPtr& depot) {
  JHPC_REQUIRE(depot != nullptr, "null slab depot handle");
  SlabDepotStats s;
  s.retained_bytes = depot->retained_bytes();
  s.hwm_bytes = depot->hwm_bytes();
  s.max_bytes = depot->max_bytes();
  return s;
}

std::size_t slab_depot_trim(const SlabDepotPtr& depot) {
  JHPC_REQUIRE(depot != nullptr, "null slab depot handle");
  return depot->trim();
}

}  // namespace jhpc::minimpi
