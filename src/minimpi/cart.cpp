#include "jhpc/minimpi/cart.hpp"

#include <algorithm>
#include <numeric>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi {

CartComm CartComm::create(const Comm& base, std::vector<int> dims,
                          std::vector<bool> periodic) {
  JHPC_REQUIRE(!dims.empty() && dims.size() == periodic.size(),
               "cart_create: dims/periodic must be non-empty and equal");
  long long total = 1;
  for (int d : dims) {
    JHPC_REQUIRE(d >= 1, "cart_create: dimension extents must be >= 1");
    total *= d;
  }
  JHPC_REQUIRE(total <= base.size(),
               "cart_create: grid larger than the communicator");
  // Ranks [0, total) form the grid; the rest get MPI_COMM_NULL.
  const int color = base.rank() < total ? 0 : -1;
  Comm grid = base.split(color, base.rank());
  if (!grid.valid()) return CartComm{};
  return CartComm(grid, std::move(dims), std::move(periodic));
}

std::vector<int> CartComm::dims_create(int nranks, int ndims) {
  JHPC_REQUIRE(nranks >= 1 && ndims >= 1, "dims_create: bad arguments");
  // Balanced factorisation: assign prime factors, largest first, to the
  // currently smallest extent (what MPI_Dims_create implementations do).
  std::vector<int> factors;
  int remaining = nranks;
  for (int f = 2; remaining > 1; ) {
    if (remaining % f == 0) {
      factors.push_back(f);
      remaining /= f;
    } else {
      ++f;
    }
  }
  std::sort(factors.rbegin(), factors.rend());
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  for (int f : factors) {
    *std::min_element(dims.begin(), dims.end()) *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

std::vector<int> CartComm::coords_of(int rank) const {
  JHPC_REQUIRE(valid(), "coords_of on invalid CartComm");
  JHPC_REQUIRE(rank >= 0 && rank < comm_.size(), "rank off the grid");
  std::vector<int> c(dims_.size());
  int rem = rank;
  for (int d = static_cast<int>(dims_.size()) - 1; d >= 0; --d) {
    const auto di = static_cast<std::size_t>(d);
    c[di] = rem % dims_[di];
    rem /= dims_[di];
  }
  return c;
}

int CartComm::rank_of(std::vector<int> coords) const {
  JHPC_REQUIRE(valid(), "rank_of on invalid CartComm");
  JHPC_REQUIRE(coords.size() == dims_.size(),
               "rank_of: coordinate dimensionality mismatch");
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    int c = coords[d];
    if (c < 0 || c >= dims_[d]) {
      if (!periodic_[d]) return -1;  // off an open edge: MPI_PROC_NULL
      c = ((c % dims_[d]) + dims_[d]) % dims_[d];
    }
    rank = rank * dims_[d] + c;
  }
  return rank;
}

CartComm::Shift CartComm::shift(int dim, int disp) const {
  JHPC_REQUIRE(valid(), "shift on invalid CartComm");
  JHPC_REQUIRE(dim >= 0 && dim < ndims(), "shift: dimension out of range");
  const auto my = coords();
  Shift s;
  auto to = my;
  to[static_cast<std::size_t>(dim)] += disp;
  s.dest = rank_of(to);
  auto from = my;
  from[static_cast<std::size_t>(dim)] -= disp;
  s.source = rank_of(from);
  return s;
}

}  // namespace jhpc::minimpi
