// The nonblocking-collective schedule engine (see detail/coll_nbc.hpp).
//
// Split in two halves: schedule COMPILERS that turn one collective call
// into rounds of send/recv/reduce/copy steps (mirroring the mv2 shapes
// in coll_mv2.cpp), and the PROGRESS machinery that drives every active
// schedule of a rank from inside wait()/test().

#include "detail/coll_nbc.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "jhpc/minimpi/comm.hpp"
#include "jhpc/minimpi/datatype.hpp"
#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail {

using namespace std::chrono_literals;

namespace {

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

int mod(int a, int n) { return ((a % n) + n) % n; }

std::byte* buf_ptr(NbcState& st, NbcBuf which, std::size_t off) {
  switch (which) {
    case NbcBuf::kUserIn:
      // Never written through: only send payloads and copy/reduce sources
      // address the user's input buffer.
      return const_cast<std::byte*>(st.user_in) + off;
    case NbcBuf::kUserOut:
      return st.user_out + off;
    case NbcBuf::kScratch:
      return st.scratch.data() + off;
  }
  return nullptr;
}

NbcStep send_step(int peer, NbcBuf src, std::size_t off, std::size_t bytes) {
  NbcStep s;
  s.kind = NbcStepKind::kSend;
  s.peer = peer;
  s.src = src;
  s.src_off = off;
  s.bytes = bytes;
  return s;
}

NbcStep recv_step(int peer, NbcBuf dst, std::size_t off, std::size_t bytes) {
  NbcStep s;
  s.kind = NbcStepKind::kRecv;
  s.peer = peer;
  s.dst = dst;
  s.dst_off = off;
  s.bytes = bytes;
  return s;
}

NbcStep copy_step(NbcBuf src, std::size_t soff, NbcBuf dst, std::size_t doff,
                  std::size_t bytes) {
  NbcStep s;
  s.kind = NbcStepKind::kCopy;
  s.src = src;
  s.src_off = soff;
  s.dst = dst;
  s.dst_off = doff;
  s.bytes = bytes;
  return s;
}

NbcStep reduce_step(NbcBuf src, std::size_t soff, NbcBuf acc,
                    std::size_t aoff, std::size_t count) {
  NbcStep s;
  s.kind = NbcStepKind::kReduce;
  s.src = src;
  s.src_off = soff;
  s.dst = acc;
  s.dst_off = aoff;
  s.count = count;
  return s;
}

// --- Schedule compilers ----------------------------------------------------
//
// Each builds st.rounds for this rank and returns the scratch size it
// needs; offsets into scratch are handed out by a bump allocator so a
// later round never aliases an earlier round's in-flight buffer.

std::size_t build_barrier(NbcState& st) {
  // Dissemination: log2(n) rounds of send-to (r+mask), recv-from
  // (r-mask). Distinct out/in token bytes (the blocking version learned
  // that aliasing lesson under TSan).
  const int n = st.group.size();
  const int r = st.my_rank;
  for (int mask = 1; mask < n; mask <<= 1) {
    NbcRound rd;
    rd.comm.push_back(recv_step(mod(r - mask, n), NbcBuf::kScratch, 1, 1));
    rd.comm.push_back(send_step(mod(r + mask, n), NbcBuf::kScratch, 0, 1));
    st.rounds.push_back(std::move(rd));
  }
  return 2;
}

std::size_t build_bcast(NbcState& st, std::size_t bytes, int root) {
  // Binomial tree on relative ranks: receive from the parent, then fan
  // out to every child in one round (largest stride first, matching the
  // blocking order).
  const int n = st.group.size();
  const int rel = mod(st.my_rank - root, n);
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int parent = mod(rel - mask + root, n);
      NbcRound rd;
      rd.comm.push_back(recv_step(parent, NbcBuf::kUserOut, 0, bytes));
      st.rounds.push_back(std::move(rd));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  NbcRound fan;
  while (mask > 0) {
    if (rel + mask < n) {
      const int child = mod(rel + mask + root, n);
      fan.comm.push_back(send_step(child, NbcBuf::kUserOut, 0, bytes));
    }
    mask >>= 1;
  }
  if (!fan.comm.empty()) st.rounds.push_back(std::move(fan));
  return 0;
}

std::size_t build_reduce(NbcState& st, std::size_t count, int root) {
  // Binomial fan-in on relative ranks (reduce_binomial's shape): each
  // child round receives a partial result and folds it into the
  // accumulator; a non-root rank finally sends its accumulator up.
  const int n = st.group.size();
  const int r = st.my_rank;
  const std::size_t bytes = count * basic_size(st.kind);
  const int rel = mod(r - root, n);

  std::size_t scratch = 0;
  auto alloc = [&scratch](std::size_t b) {
    const std::size_t off = scratch;
    scratch += b;
    return off;
  };

  // Accumulator: the root reduces straight into the user's output; other
  // ranks stage in scratch.
  const NbcBuf acc = r == root ? NbcBuf::kUserOut : NbcBuf::kScratch;
  const std::size_t acc_off = r == root ? 0 : alloc(bytes);
  NbcRound init;
  init.local.push_back(copy_step(NbcBuf::kUserIn, 0, acc, acc_off, bytes));
  st.rounds.push_back(std::move(init));

  int mask = 1;
  while (mask < n) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < n) {
        const std::size_t tmp = alloc(bytes);
        NbcRound rd;
        rd.comm.push_back(recv_step(mod(src_rel + root, n), NbcBuf::kScratch,
                                    tmp, bytes));
        rd.local.push_back(
            reduce_step(NbcBuf::kScratch, tmp, acc, acc_off, count));
        st.rounds.push_back(std::move(rd));
      }
    } else {
      NbcRound rd;
      rd.comm.push_back(
          send_step(mod((rel & ~mask) + root, n), acc, acc_off, bytes));
      st.rounds.push_back(std::move(rd));
      break;
    }
    mask <<= 1;
  }
  return scratch;
}

std::size_t build_allreduce(NbcState& st, std::size_t count) {
  // Recursive doubling with the standard fold of the ranks beyond the
  // largest power of two (allreduce_recursive_doubling's shape).
  const int n = st.group.size();
  const int r = st.my_rank;
  const std::size_t bytes = count * basic_size(st.kind);
  const int pof2 = floor_pow2(n);
  const int rem = n - pof2;

  std::size_t scratch = 0;
  auto alloc = [&scratch](std::size_t b) {
    const std::size_t off = scratch;
    scratch += b;
    return off;
  };

  NbcRound init;
  init.local.push_back(
      copy_step(NbcBuf::kUserIn, 0, NbcBuf::kUserOut, 0, bytes));
  st.rounds.push_back(std::move(init));

  // Fold-in: the first 2*rem ranks pair up so pof2 participants remain.
  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      NbcRound rd;
      rd.comm.push_back(send_step(r + 1, NbcBuf::kUserOut, 0, bytes));
      st.rounds.push_back(std::move(rd));
      newrank = -1;  // sits out; receives the result at the end
    } else {
      const std::size_t tmp = alloc(bytes);
      NbcRound rd;
      rd.comm.push_back(recv_step(r - 1, NbcBuf::kScratch, tmp, bytes));
      rd.local.push_back(
          reduce_step(NbcBuf::kScratch, tmp, NbcBuf::kUserOut, 0, count));
      st.rounds.push_back(std::move(rd));
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      const std::size_t tmp = alloc(bytes);
      NbcRound rd;
      rd.comm.push_back(recv_step(partner, NbcBuf::kScratch, tmp, bytes));
      rd.comm.push_back(send_step(partner, NbcBuf::kUserOut, 0, bytes));
      rd.local.push_back(
          reduce_step(NbcBuf::kScratch, tmp, NbcBuf::kUserOut, 0, count));
      st.rounds.push_back(std::move(rd));
    }
  }

  // Fold-out: hand the result back to the even folded ranks.
  if (r < 2 * rem) {
    NbcRound rd;
    if (r % 2 != 0) {
      rd.comm.push_back(send_step(r - 1, NbcBuf::kUserOut, 0, bytes));
    } else {
      rd.comm.push_back(recv_step(r + 1, NbcBuf::kUserOut, 0, bytes));
    }
    st.rounds.push_back(std::move(rd));
  }
  return scratch;
}

std::size_t build_gather(NbcState& st, std::size_t bpr, int root) {
  // Flat fan-in: the root posts every receive in one round, so all
  // children stream concurrently while the caller computes.
  const int n = st.group.size();
  const int r = st.my_rank;
  NbcRound rd;
  if (r == root) {
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      rd.comm.push_back(recv_step(i, NbcBuf::kUserOut,
                                  static_cast<std::size_t>(i) * bpr, bpr));
    }
    rd.local.push_back(copy_step(NbcBuf::kUserIn, 0, NbcBuf::kUserOut,
                                 static_cast<std::size_t>(root) * bpr, bpr));
  } else {
    rd.comm.push_back(send_step(root, NbcBuf::kUserIn, 0, bpr));
  }
  st.rounds.push_back(std::move(rd));
  return 0;
}

std::size_t build_scatter(NbcState& st, std::size_t bpr, int root) {
  // Flat fan-out, mirror of build_gather.
  const int n = st.group.size();
  const int r = st.my_rank;
  NbcRound rd;
  if (r == root) {
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      rd.comm.push_back(send_step(i, NbcBuf::kUserIn,
                                  static_cast<std::size_t>(i) * bpr, bpr));
    }
    rd.local.push_back(copy_step(NbcBuf::kUserIn,
                                 static_cast<std::size_t>(root) * bpr,
                                 NbcBuf::kUserOut, 0, bpr));
  } else {
    rd.comm.push_back(recv_step(root, NbcBuf::kUserOut, 0, bpr));
  }
  st.rounds.push_back(std::move(rd));
  return 0;
}

std::size_t build_allgather(NbcState& st, std::size_t bpr) {
  // Ring: n-1 rounds, each forwarding the block received the round
  // before (allgather_ring's shape; works for any n).
  const int n = st.group.size();
  const int r = st.my_rank;
  NbcRound init;
  init.local.push_back(copy_step(NbcBuf::kUserIn, 0, NbcBuf::kUserOut,
                                 static_cast<std::size_t>(r) * bpr, bpr));
  st.rounds.push_back(std::move(init));
  const int right = mod(r + 1, n);
  const int left = mod(r - 1, n);
  for (int k = 0; k < n - 1; ++k) {
    const auto send_blk = static_cast<std::size_t>(mod(r - k, n));
    const auto recv_blk = static_cast<std::size_t>(mod(r - k - 1, n));
    NbcRound rd;
    rd.comm.push_back(
        recv_step(left, NbcBuf::kUserOut, recv_blk * bpr, bpr));
    rd.comm.push_back(
        send_step(right, NbcBuf::kUserOut, send_blk * bpr, bpr));
    st.rounds.push_back(std::move(rd));
  }
  return 0;
}

std::size_t build_alltoall(NbcState& st, std::size_t bpp) {
  // Pairwise exchange: round k trades blocks with (r+k) / (r-k)
  // (alltoall_pairwise's shape).
  const int n = st.group.size();
  const int r = st.my_rank;
  NbcRound init;
  init.local.push_back(copy_step(NbcBuf::kUserIn,
                                 static_cast<std::size_t>(r) * bpp,
                                 NbcBuf::kUserOut,
                                 static_cast<std::size_t>(r) * bpp, bpp));
  st.rounds.push_back(std::move(init));
  for (int k = 1; k < n; ++k) {
    const int dst = mod(r + k, n);
    const int src = mod(r - k, n);
    NbcRound rd;
    rd.comm.push_back(recv_step(src, NbcBuf::kUserOut,
                                static_cast<std::size_t>(src) * bpp, bpp));
    rd.comm.push_back(send_step(dst, NbcBuf::kUserIn,
                                static_cast<std::size_t>(dst) * bpp, bpp));
    st.rounds.push_back(std::move(rd));
  }
  return 0;
}

// --- Progress machinery ----------------------------------------------------

void run_local_steps(NbcState& st, const NbcRound& rd, RankClock& clock) {
  if (rd.local.empty()) return;
  ChargedSection cost(clock);
  for (const NbcStep& s : rd.local) {
    if (s.kind == NbcStepKind::kCopy) {
      const std::byte* src = buf_ptr(st, s.src, s.src_off);
      std::byte* dst = buf_ptr(st, s.dst, s.dst_off);
      if (s.bytes != 0 && dst != src) std::memcpy(dst, src, s.bytes);
    } else {  // kReduce: accumulator op= incoming
      apply_reduce(st.op, st.kind, buf_ptr(st, s.dst, s.dst_off),
                   buf_ptr(st, s.src, s.src_off), s.count);
    }
  }
}

void post_round(NbcState& st, int world, RankClock& clock, UniverseObs* o) {
  const NbcRound& rd = st.rounds[st.round];
  clock.advance_cpu();
  st.round_start_v = clock.vclock;
  if (o != nullptr) o->rec.begin(world, "nbc.round", clock.vclock);
  // Receives first, then sends: every peer's receive is visible before
  // any send might park as an unexpected rendezvous.
  for (const NbcStep& s : rd.comm) {
    if (s.kind != NbcStepKind::kRecv) continue;
    st.pending.push_back(st.impl->post_recv(world, st.context_id, s.peer,
                                            st.tag,
                                            buf_ptr(st, s.dst, s.dst_off),
                                            s.bytes));
  }
  for (const NbcStep& s : rd.comm) {
    if (s.kind != NbcStepKind::kSend) continue;
    auto p = st.impl->deliver(world, st.group.world_rank(s.peer),
                              st.context_id, st.my_rank, st.tag,
                              buf_ptr(st, s.src, s.src_off), s.bytes);
    if (p) st.pending.push_back(std::move(p));
  }
  st.posted = true;
}

bool round_requests_complete(NbcState& st) {
  for (const auto& rs : st.pending) {
    std::lock_guard<std::mutex> lk(rs->mu);
    if (!rs->complete) return false;
  }
  return true;
}

/// Poison a schedule whose round failed (rank death, revocation,
/// timeout): cancel its still-parked receives, record the exception for
/// every subsequent wait/test, and mark it done so the progress set
/// prunes it. A rank failure also revokes the communicator — the other
/// ranks of the operation are parked in rounds that now have no
/// counterpart, and only a revocation sweep turns those hangs into
/// CommRevokedError.
void fail_schedule(NbcState& st, int world, RankClock& clock, UniverseObs* o,
                   std::exception_ptr ep) {
  // Cancel parked receives FIRST: their targets point into this
  // schedule's scratch, and a late match would write through a dangling
  // buffer once the state is pruned.
  MatchBucket& bk =
      st.impl->endpoints[static_cast<std::size_t>(world)]->bucket(
          st.context_id);
  {
    std::lock_guard<std::mutex> lk(bk.mu);
    for (const auto& rs : st.pending) {
      if (rs->is_recv) std::erase(bk.posted, rs);
    }
  }
  st.pending.clear();
  st.failed = true;
  st.failure = ep;
  st.done = true;
  try {
    std::rethrow_exception(ep);
  } catch (const RankFailedError&) {
    st.impl->revoke_comm(st.context_id, world);
  } catch (...) {
    // Timeouts and other transport failures poison only this schedule.
  }
  if (o != nullptr) {
    clock.advance_cpu();
    if (st.posted) o->rec.end(world, "nbc.round", clock.vclock);
    o->rec.end(world, coll_alg_trace_name(st.alg), clock.vclock);
  }
  st.posted = false;
}

/// Completion hook for typed schedules: scatter the dense result into
/// the user's strided buffer. Idempotent — nbc_start_typed also calls it
/// when a schedule completes inside initiation, before the staging
/// fields were set.
void finish_typed(NbcState& st) {
  if (!st.unpack_dt) return;
  st.unpack_dt->unpack(st.typed_out.data(), st.unpack_dst, st.unpack_count);
  st.unpack_dt.reset();
}

/// Drive one schedule as far as it can go without blocking; returns true
/// once it is done.
bool try_advance(NbcState& st) {
  if (st.done) return true;
  const int world = st.group.world_rank(st.my_rank);
  RankClock& clock = st.impl->clocks[static_cast<std::size_t>(world)];
  UniverseObs* o = st.impl->obs.get();
  try {
    for (;;) {
      if (!st.posted) {
        if (st.round >= st.rounds.size()) {
          finish_typed(st);
          st.done = true;
          if (o != nullptr) {
            clock.advance_cpu();
            o->rec.end(world, coll_alg_trace_name(st.alg), clock.vclock);
          }
          return true;
        }
        post_round(st, world, clock, o);
      }
      if (!round_requests_complete(st)) return false;
      // Finalize in posting order: wait_request returns immediately on a
      // completed request but still observes its delivery time (the rank's
      // clock jumps to the round's critical path) and charges the wait
      // pvars — identical accounting to the blocking suites.
      for (const auto& rs : st.pending) wait_request(*rs);
      st.pending.clear();
      run_local_steps(st, st.rounds[st.round], clock);
      if (o != nullptr) {
        o->rec.end(world, "nbc.round", clock.vclock);
        o->rec.pvars().record(o->hist_nbc_round, world,
                              clock.vclock - st.round_start_v);
      }
      ++st.round;
      st.posted = false;
    }
  } catch (const AbortError&) {
    throw;  // job is aborting: unwind the rank thread, don't poison
  } catch (const RankKilledError&) {
    throw;  // this rank's own planned death: unwind
  } catch (...) {
    fail_schedule(st, world, clock, o, std::current_exception());
    return true;
  }
}

/// Park briefly on an incomplete request; wakes on completion, abort, or
/// timeout (so the caller can progress its other schedules).
void park_on(RequestState& rs, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(rs.mu);
  if (rs.complete) return;
  rs.cv.wait_for(lk, timeout);
  if (!rs.complete && rs.abort != nullptr &&
      rs.abort->load(std::memory_order_relaxed)) {
    throw AbortError();
  }
}

}  // namespace

void nbc_progress_rank(UniverseImpl& impl, int world_rank) {
  NbcRank& nr = impl.nbc[static_cast<std::size_t>(world_rank)];
  bool any_done = false;
  for (const auto& st : nr.active) {
    if (try_advance(*st)) any_done = true;
  }
  if (any_done) {
    std::erase_if(nr.active,
                  [](const std::shared_ptr<NbcState>& s) { return s->done; });
  }
}

Status nbc_wait(NbcState& st) {
  const int world = st.group.world_rank(st.my_rank);
  UniverseImpl& impl = *st.impl;
  for (;;) {
    nbc_progress_rank(impl, world);
    if (st.done) {
      if (st.failed) std::rethrow_exception(st.failure);
      return Status{};
    }
    // Blocked on this round: park on its first incomplete request. With
    // a single active schedule the park can be long (completion notifies
    // the condvar); with siblings outstanding it stays short so their
    // rounds keep advancing while we wait out of order.
    const std::size_t live = impl.nbc[static_cast<std::size_t>(world)]
                                 .active.size();
    std::shared_ptr<RequestState> first;
    for (const auto& rs : st.pending) {
      std::lock_guard<std::mutex> lk(rs->mu);
      if (!rs->complete) {
        first = rs;
        break;
      }
    }
    if (first) park_on(*first, live > 1 ? 1ms : 20ms);
    impl.throw_if_aborted();
  }
}

bool nbc_test(NbcState& st, Status* out) {
  nbc_progress_rank(*st.impl, st.group.world_rank(st.my_rank));
  if (!st.done) return false;
  if (st.failed) std::rethrow_exception(st.failure);
  if (out != nullptr) *out = Status{};
  return true;
}

std::shared_ptr<NbcState> nbc_start(UniverseImpl* impl, const Group& group,
                                    int my_rank, int context_id, NbcOp what,
                                    const void* send_buf, void* recv_buf,
                                    std::size_t size, BasicKind kind,
                                    ReduceOp op, int root) {
  auto st = std::make_shared<NbcState>();
  st->impl = impl;
  st->group = group;
  st->my_rank = my_rank;
  st->context_id = context_id;
  st->user_in = static_cast<const std::byte*>(send_buf);
  st->user_out = static_cast<std::byte*>(recv_buf);
  st->kind = kind;
  st->op = op;

  const int world = group.world_rank(my_rank);
  NbcRank& nr = impl->nbc[static_cast<std::size_t>(world)];
  const std::uint32_t seq = nr.seq[context_id]++;
  st->tag = kTagNbcBase + static_cast<int>(seq % kNbcTagSpan);

  std::size_t scratch = 0;
  switch (what) {
    case NbcOp::kBarrier:
      st->alg = CollAlg::kNbcBarrier;
      scratch = build_barrier(*st);
      break;
    case NbcOp::kBcast:
      st->alg = CollAlg::kNbcBcast;
      scratch = build_bcast(*st, size, root);
      break;
    case NbcOp::kReduce:
      st->alg = CollAlg::kNbcReduce;
      scratch = build_reduce(*st, size, root);
      break;
    case NbcOp::kAllreduce:
      st->alg = CollAlg::kNbcAllreduce;
      scratch = build_allreduce(*st, size);
      break;
    case NbcOp::kGather:
      st->alg = CollAlg::kNbcGather;
      scratch = build_gather(*st, size, root);
      break;
    case NbcOp::kScatter:
      st->alg = CollAlg::kNbcScatter;
      scratch = build_scatter(*st, size, root);
      break;
    case NbcOp::kAllgather:
      st->alg = CollAlg::kNbcAllgather;
      scratch = build_allgather(*st, size);
      break;
    case NbcOp::kAlltoall:
      st->alg = CollAlg::kNbcAlltoall;
      scratch = build_alltoall(*st, size);
      break;
  }
  st->scratch.resize(scratch);

  RankClock& clock = impl->clocks[static_cast<std::size_t>(world)];
  clock.advance_cpu();
  if (UniverseObs* o = impl->obs.get()) {
    o->rec.pvars().add(o->coll[static_cast<std::size_t>(st->alg)], world, 1);
    o->rec.begin(world, coll_alg_trace_name(st->alg), clock.vclock);
  }

  nr.active.push_back(st);
  // Post round 0 now — the overlap window opens at initiation, not at
  // the first wait/test.
  nbc_progress_rank(*impl, world);
  return st;
}

std::shared_ptr<NbcState> nbc_start_typed(
    UniverseImpl* impl, const Group& group, int my_rank, int context_id,
    NbcOp what, const void* send_buf, void* recv_buf, int count,
    const Datatype& type, ReduceOp op, int root) {
  JHPC_REQUIRE(count >= 0, "typed collective: negative element count");
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  const std::size_t n = static_cast<std::size_t>(group.size());
  const int total = count * group.size();
  const bool is_root = my_rank == root;

  BasicKind kind = BasicKind::kByte;
  std::size_t size_param = bytes;
  if (what == NbcOp::kReduce || what == NbcOp::kAllreduce) {
    if (!type.uniform_leaf()) {
      throw UnsupportedOperationError(
          "typed reduction requires a uniform leaf kind (mixed-leaf "
          "structs are not element-wise reducible)");
    }
    kind = type.leaf_kind();
    size_param = bytes / basic_size(kind);
  }

  // Pack the send-side payload into staging the schedule will own. The
  // vectors are moved into the state after nbc_start — a move transfers
  // the heap storage, so the user_in/user_out pointers captured by the
  // already-posted round 0 stay valid.
  std::vector<std::byte> tin;
  std::vector<std::byte> tout;
  switch (what) {
    case NbcOp::kBarrier:
      break;
    case NbcOp::kBcast:
      tout.resize(bytes);
      if (is_root) type.pack(recv_buf, tout.data(), count);
      break;
    case NbcOp::kReduce:
    case NbcOp::kAllreduce:
      tin.resize(bytes);
      tout.resize(bytes);
      type.pack(send_buf, tin.data(), count);
      break;
    case NbcOp::kGather:
      tin.resize(bytes);
      type.pack(send_buf, tin.data(), count);
      if (is_root) tout.resize(bytes * n);
      break;
    case NbcOp::kScatter:
      if (is_root) {
        tin.resize(bytes * n);
        type.pack(send_buf, tin.data(), total);
      }
      tout.resize(bytes);
      break;
    case NbcOp::kAllgather:
      tin.resize(bytes);
      type.pack(send_buf, tin.data(), count);
      tout.resize(bytes * n);
      break;
    case NbcOp::kAlltoall:
      tin.resize(bytes * n);
      type.pack(send_buf, tin.data(), total);
      tout.resize(bytes * n);
      break;
  }

  auto st = nbc_start(impl, group, my_rank, context_id, what,
                      tin.empty() ? nullptr : tin.data(),
                      tout.empty() ? nullptr : tout.data(), size_param, kind,
                      op, root);
  st->typed_in = std::move(tin);
  st->typed_out = std::move(tout);

  // Which ranks scatter the dense result back out, and how much of it.
  bool unpack = false;
  int elems = count;
  switch (what) {
    case NbcOp::kBarrier:
      break;
    case NbcOp::kBcast:
      unpack = !is_root;
      break;
    case NbcOp::kReduce:
      unpack = is_root;
      break;
    case NbcOp::kAllreduce:
    case NbcOp::kScatter:
      unpack = true;
      break;
    case NbcOp::kGather:
      unpack = is_root;
      elems = total;
      break;
    case NbcOp::kAllgather:
    case NbcOp::kAlltoall:
      unpack = true;
      elems = total;
      break;
  }
  if (unpack) {
    st->unpack_dt = type;
    st->unpack_count = elems;
    st->unpack_dst = recv_buf;
    // The schedule may have drained entirely inside nbc_start (all-eager
    // round 0 on a small comm): the completion hook ran before the
    // staging fields existed, so run it now.
    if (st->done && !st->failed) finish_typed(*st);
  }
  return st;
}

}  // namespace jhpc::minimpi::detail

namespace jhpc::minimpi {

namespace {

void check_comm(const Comm& c, const char* what) {
  JHPC_REQUIRE(c.valid(), std::string(what) + " on an invalid communicator");
}

void check_root(const Comm& c, int root, const char* what) {
  JHPC_REQUIRE(root >= 0 && root < c.size(),
               std::string(what) + ": root rank out of range");
}

}  // namespace

Request Comm::ibarrier() const {
  check_comm(*this, "ibarrier");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kBarrier, nullptr, nullptr,
                                   0, BasicKind::kByte, ReduceOp::kSum, 0)};
}

Request Comm::ibcast(void* buf, std::size_t bytes, int root) const {
  check_comm(*this, "ibcast");
  check_root(*this, root, "ibcast");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kBcast, buf, buf, bytes,
                                   BasicKind::kByte, ReduceOp::kSum, root)};
}

Request Comm::ireduce(const void* send_buf, void* recv_buf, std::size_t count,
                      BasicKind kind, ReduceOp op, int root) const {
  check_comm(*this, "ireduce");
  check_root(*this, root, "ireduce");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kReduce, send_buf, recv_buf,
                                   count, kind, op, root)};
}

Request Comm::iallreduce(const void* send_buf, void* recv_buf,
                         std::size_t count, BasicKind kind,
                         ReduceOp op) const {
  check_comm(*this, "iallreduce");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kAllreduce, send_buf,
                                   recv_buf, count, kind, op, 0)};
}

Request Comm::igather(const void* send_buf, std::size_t bytes_per_rank,
                      void* recv_buf, int root) const {
  check_comm(*this, "igather");
  check_root(*this, root, "igather");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kGather, send_buf, recv_buf,
                                   bytes_per_rank, BasicKind::kByte,
                                   ReduceOp::kSum, root)};
}

Request Comm::iscatter(const void* send_buf, std::size_t bytes_per_rank,
                       void* recv_buf, int root) const {
  check_comm(*this, "iscatter");
  check_root(*this, root, "iscatter");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kScatter, send_buf,
                                   recv_buf, bytes_per_rank, BasicKind::kByte,
                                   ReduceOp::kSum, root)};
}

Request Comm::iallgather(const void* send_buf, std::size_t bytes_per_rank,
                         void* recv_buf) const {
  check_comm(*this, "iallgather");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kAllgather, send_buf,
                                   recv_buf, bytes_per_rank, BasicKind::kByte,
                                   ReduceOp::kSum, 0)};
}

Request Comm::ialltoall(const void* send_buf, std::size_t bytes_per_pair,
                        void* recv_buf) const {
  check_comm(*this, "ialltoall");
  return Request{detail::nbc_start(impl_, group_, my_rank_, context_id_,
                                   detail::NbcOp::kAlltoall, send_buf,
                                   recv_buf, bytes_per_pair, BasicKind::kByte,
                                   ReduceOp::kSum, 0)};
}

// --- Typed (derived-datatype) nonblocking collectives -----------------------
// Dense layouts route straight to the byte forms above; strided layouts
// go through nbc_start_typed's schedule-owned staging.

namespace {

std::size_t inbc_bytes(int count, const Datatype& type, const char* what) {
  JHPC_REQUIRE(count >= 0,
               std::string(what) + ": negative element count");
  return type.size() * static_cast<std::size_t>(count);
}

// Leaf kind for a typed reduction; even a dense (contiguous-layout)
// struct can mix leaves, so both routes must check.
BasicKind inbc_reduce_leaf(const Datatype& type) {
  if (!type.uniform_leaf()) {
    throw UnsupportedOperationError(
        "typed reduction requires a uniform leaf kind (mixed-leaf "
        "structs are not element-wise reducible)");
  }
  return type.leaf_kind();
}

}  // namespace

Request Comm::ibcast(void* buf, int count, const Datatype& type,
                     int root) const {
  check_comm(*this, "ibcast");
  check_root(*this, root, "ibcast");
  const std::size_t bytes = inbc_bytes(count, type, "ibcast");
  if (type.contiguous_layout()) return ibcast(buf, bytes, root);
  return Request{detail::nbc_start_typed(impl_, group_, my_rank_,
                                         context_id_, detail::NbcOp::kBcast,
                                         buf, buf, count, type,
                                         ReduceOp::kSum, root)};
}

Request Comm::ireduce(const void* send_buf, void* recv_buf, int count,
                      const Datatype& type, ReduceOp op, int root) const {
  check_comm(*this, "ireduce");
  check_root(*this, root, "ireduce");
  const std::size_t bytes = inbc_bytes(count, type, "ireduce");
  const BasicKind leaf = inbc_reduce_leaf(type);
  if (type.contiguous_layout()) {
    return ireduce(send_buf, recv_buf, bytes / basic_size(leaf), leaf, op,
                   root);
  }
  return Request{detail::nbc_start_typed(impl_, group_, my_rank_,
                                         context_id_, detail::NbcOp::kReduce,
                                         send_buf, recv_buf, count, type, op,
                                         root)};
}

Request Comm::iallreduce(const void* send_buf, void* recv_buf, int count,
                         const Datatype& type, ReduceOp op) const {
  check_comm(*this, "iallreduce");
  const std::size_t bytes = inbc_bytes(count, type, "iallreduce");
  const BasicKind leaf = inbc_reduce_leaf(type);
  if (type.contiguous_layout()) {
    return iallreduce(send_buf, recv_buf, bytes / basic_size(leaf), leaf,
                      op);
  }
  return Request{detail::nbc_start_typed(
      impl_, group_, my_rank_, context_id_, detail::NbcOp::kAllreduce,
      send_buf, recv_buf, count, type, op, 0)};
}

Request Comm::igather(const void* send_buf, int count, const Datatype& type,
                      void* recv_buf, int root) const {
  check_comm(*this, "igather");
  check_root(*this, root, "igather");
  const std::size_t bytes = inbc_bytes(count, type, "igather");
  if (type.contiguous_layout()) {
    return igather(send_buf, bytes, recv_buf, root);
  }
  return Request{detail::nbc_start_typed(impl_, group_, my_rank_,
                                         context_id_, detail::NbcOp::kGather,
                                         send_buf, recv_buf, count, type,
                                         ReduceOp::kSum, root)};
}

Request Comm::iscatter(const void* send_buf, int count, const Datatype& type,
                       void* recv_buf, int root) const {
  check_comm(*this, "iscatter");
  check_root(*this, root, "iscatter");
  const std::size_t bytes = inbc_bytes(count, type, "iscatter");
  if (type.contiguous_layout()) {
    return iscatter(send_buf, bytes, recv_buf, root);
  }
  return Request{detail::nbc_start_typed(impl_, group_, my_rank_,
                                         context_id_, detail::NbcOp::kScatter,
                                         send_buf, recv_buf, count, type,
                                         ReduceOp::kSum, root)};
}

Request Comm::iallgather(const void* send_buf, int count,
                         const Datatype& type, void* recv_buf) const {
  check_comm(*this, "iallgather");
  const std::size_t bytes = inbc_bytes(count, type, "iallgather");
  if (type.contiguous_layout()) {
    return iallgather(send_buf, bytes, recv_buf);
  }
  return Request{detail::nbc_start_typed(
      impl_, group_, my_rank_, context_id_, detail::NbcOp::kAllgather,
      send_buf, recv_buf, count, type, ReduceOp::kSum, 0)};
}

Request Comm::ialltoall(const void* send_buf, int count, const Datatype& type,
                        void* recv_buf) const {
  check_comm(*this, "ialltoall");
  const std::size_t bytes = inbc_bytes(count, type, "ialltoall");
  if (type.contiguous_layout()) {
    return ialltoall(send_buf, bytes, recv_buf);
  }
  return Request{detail::nbc_start_typed(
      impl_, group_, my_rank_, context_id_, detail::NbcOp::kAlltoall,
      send_buf, recv_buf, count, type, ReduceOp::kSum, 0)};
}

}  // namespace jhpc::minimpi
