// The eager-path slab recycler: a per-Universe pool of transport buffers
// in power-of-two size classes, with per-rank free lists (touched only by
// the owning rank thread, no lock) and one bounded shared depot that
// rebalances slabs between ranks in batches.
//
// Why it exists: every eager message that lands unexpected needs an owned
// payload copy. The seed transport heap-allocated a fresh
// std::vector<std::byte> per message — exactly the per-call
// allocation+copy overhead the paper's buffering layer removes on the
// Java side (and Ibdxnet removes for IB messaging). In steady state the
// recycler serves every eager send from a free list: zero allocations per
// message.
//
// Concurrency contract: acquire(rank)/release(rank) must be called from
// rank `rank`'s thread (the sender acquires with its own rank, the
// receiver releases with its own rank). Per-rank lists are therefore
// single-threaded; only the depot takes a mutex, and only in batches of
// kTransferBatch, so a one-way stream pays the lock ~1/16 messages.
// Stats counters are relaxed atomics and may be read from any thread.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "jhpc/support/error.hpp"

namespace jhpc::minimpi::detail {

/// Owning handle on one slab of transport-buffer storage. Destroying a
/// Slab frees it outright (teardown with messages still parked); the
/// normal fate is SlabPool::release() back onto a free list.
class Slab {
 public:
  Slab() = default;
  Slab(Slab&& o) noexcept : p_(o.p_), cls_(o.cls_) { o.p_ = nullptr; }
  Slab& operator=(Slab&& o) noexcept {
    if (this != &o) {
      delete[] p_;
      p_ = o.p_;
      cls_ = o.cls_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~Slab() { delete[] p_; }
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  std::byte* data() const { return p_; }
  bool empty() const { return p_ == nullptr; }

 private:
  friend class SlabPool;
  Slab(std::byte* p, std::uint32_t cls) : p_(p), cls_(cls) {}

  std::byte* p_ = nullptr;
  std::uint32_t cls_ = 0;  // size-class index (capacity = kMinBytes << cls_)
};

/// Per-Universe recycler of eager payload slabs.
class SlabPool {
 public:
  /// Smallest slab handed out; requests round up to kMinBytes << k.
  static constexpr std::size_t kMinBytes = 64;
  /// Distinct size classes (64 B .. 2 GiB); larger requests are served
  /// unpooled (allocate on acquire, free on release).
  static constexpr std::uint32_t kClasses = 26;
  /// Per-rank retention: at most this many slabs per class, and at most
  /// kPerRankCapBytes of storage per class (big classes keep fewer).
  static constexpr std::size_t kPerRankCap = 32;
  static constexpr std::size_t kPerRankCapBytes = 256 * 1024;
  /// Shared-depot retention cap per class.
  static constexpr std::size_t kDepotCap = 256;
  /// Slabs moved per depot round trip (amortizes the depot lock).
  static constexpr std::size_t kTransferBatch = 16;

  struct Stats {
    std::uint64_t hits = 0;        ///< acquires served without allocating
    std::uint64_t misses = 0;      ///< acquires that heap-allocated
    std::uint64_t recycled = 0;    ///< releases retained on a free list
    std::uint64_t recycled_bytes = 0;  ///< capacity bytes of those slabs
    std::uint64_t overflow_drops = 0;  ///< releases freed past every cap
  };

  explicit SlabPool(int ranks) : per_rank_(static_cast<std::size_t>(ranks)) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (PerRank& pr : per_rank_)
      for (auto& list : pr.free)
        for (std::byte* p : list) delete[] p;
    for (auto& list : depot_)
      for (std::byte* p : list) delete[] p;
  }

  /// A slab with capacity >= bytes, recycled when possible. `hit` (may be
  /// null) reports whether the free lists served it. Must run on rank
  /// `rank`'s thread. bytes == 0 yields an empty slab (no storage).
  Slab acquire(std::size_t bytes, int rank, bool* hit = nullptr) {
    if (bytes == 0) {
      if (hit != nullptr) *hit = true;
      return Slab{};
    }
    const std::uint32_t cls = class_of(bytes);
    if (cls >= kClasses) {  // beyond every pooled class: one-shot slab
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = false;
      return Slab{new std::byte[bytes], cls};
    }
    auto& list = per_rank_[static_cast<std::size_t>(rank)].free[cls];
    if (list.empty()) refill_from_depot(list, cls);
    if (!list.empty()) {
      std::byte* p = list.back();
      list.pop_back();
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = true;
      return Slab{p, cls};
    }
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    if (hit != nullptr) *hit = false;
    return Slab{new std::byte[capacity_of(cls)], cls};
  }

  enum class Released { kRecycled, kDropped };

  /// Return a slab to the free lists (or free it past the caps). Must run
  /// on rank `rank`'s thread. Empty slabs are a no-op (kRecycled).
  Released release(Slab&& slab, int rank) {
    std::byte* p = slab.p_;
    if (p == nullptr) return Released::kRecycled;
    const std::uint32_t cls = slab.cls_;
    slab.p_ = nullptr;
    if (cls >= kClasses) {  // unpooled one-shot slab
      delete[] p;
      stats_.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      return Released::kDropped;
    }
    auto& list = per_rank_[static_cast<std::size_t>(rank)].free[cls];
    if (list.size() >= per_rank_cap(cls) && !spill_to_depot(list, cls)) {
      delete[] p;
      stats_.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      return Released::kDropped;
    }
    list.push_back(p);
    stats_.recycled.fetch_add(1, std::memory_order_relaxed);
    stats_.recycled_bytes.fetch_add(capacity_of(cls),
                                    std::memory_order_relaxed);
    return Released::kRecycled;
  }

  /// Relaxed snapshot; exact once the mutating threads are quiescent (or,
  /// per counter, once its owning paths synchronized with the reader).
  Stats stats() const {
    Stats s;
    s.hits = stats_.hits.load(std::memory_order_relaxed);
    s.misses = stats_.misses.load(std::memory_order_relaxed);
    s.recycled = stats_.recycled.load(std::memory_order_relaxed);
    s.recycled_bytes =
        stats_.recycled_bytes.load(std::memory_order_relaxed);
    s.overflow_drops =
        stats_.overflow_drops.load(std::memory_order_relaxed);
    return s;
  }

  /// Zero the counters (new job on a reused Universe; free lists keep
  /// their slabs, so a warm pool stays warm across runs).
  void reset_stats() {
    stats_.hits.store(0, std::memory_order_relaxed);
    stats_.misses.store(0, std::memory_order_relaxed);
    stats_.recycled.store(0, std::memory_order_relaxed);
    stats_.recycled_bytes.store(0, std::memory_order_relaxed);
    stats_.overflow_drops.store(0, std::memory_order_relaxed);
  }

  static std::size_t capacity_of(std::uint32_t cls) {
    return kMinBytes << cls;
  }

  /// Size-class index for a payload of `bytes` (>= kClasses: unpooled).
  static std::uint32_t class_of(std::size_t bytes) {
    JHPC_REQUIRE(bytes <= (std::numeric_limits<std::size_t>::max() >> 1) + 1,
                 "slab request too large");
    const std::size_t cap = std::bit_ceil(std::max(bytes, kMinBytes));
    return static_cast<std::uint32_t>(std::countr_zero(cap) -
                                      std::countr_zero(kMinBytes));
  }

  /// Per-rank retention cap for one class (bytes-aware: big classes keep
  /// fewer slabs so a 64-rank job cannot pin hundreds of MB).
  static std::size_t per_rank_cap(std::uint32_t cls) {
    const std::size_t by_bytes = kPerRankCapBytes / capacity_of(cls);
    return std::max<std::size_t>(2, std::min(kPerRankCap, by_bytes));
  }

 private:
  struct alignas(64) PerRank {  // padded: no false sharing between ranks
    std::array<std::vector<std::byte*>, kClasses> free;
  };

  /// Pull up to kTransferBatch slabs of `cls` from the depot. One lock
  /// per batch, not per message.
  void refill_from_depot(std::vector<std::byte*>& list, std::uint32_t cls) {
    std::lock_guard<std::mutex> lk(depot_mu_);
    auto& d = depot_[cls];
    const std::size_t take = std::min(kTransferBatch, d.size());
    list.insert(list.end(), d.end() - static_cast<std::ptrdiff_t>(take),
                d.end());
    d.resize(d.size() - take);
  }

  /// Move half a full per-rank list into the depot; false when the depot
  /// is full too (the caller drops its slab).
  bool spill_to_depot(std::vector<std::byte*>& list, std::uint32_t cls) {
    std::lock_guard<std::mutex> lk(depot_mu_);
    auto& d = depot_[cls];
    if (d.size() >= kDepotCap) return false;
    const std::size_t move = std::min({kTransferBatch, list.size(),
                                       kDepotCap - d.size()});
    d.insert(d.end(), list.end() - static_cast<std::ptrdiff_t>(move),
             list.end());
    list.resize(list.size() - move);
    return true;
  }

  std::vector<PerRank> per_rank_;
  std::mutex depot_mu_;
  std::array<std::vector<std::byte*>, kClasses> depot_;

  struct {
    std::atomic<std::uint64_t> hits{0}, misses{0}, recycled{0};
    std::atomic<std::uint64_t> recycled_bytes{0}, overflow_drops{0};
  } stats_;
};

}  // namespace jhpc::minimpi::detail
